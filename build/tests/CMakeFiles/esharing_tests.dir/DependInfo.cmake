
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_charging_ops.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_charging_ops.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_charging_ops.cpp.o.d"
  "/root/repo/tests/test_core_daytype_router.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_daytype_router.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_daytype_router.cpp.o.d"
  "/root/repo/tests/test_core_demand_forecast.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_demand_forecast.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_demand_forecast.cpp.o.d"
  "/root/repo/tests/test_core_deviation_placer.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_deviation_placer.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_deviation_placer.cpp.o.d"
  "/root/repo/tests/test_core_esharing.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_esharing.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_esharing.cpp.o.d"
  "/root/repo/tests/test_core_incentive.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_incentive.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_incentive.cpp.o.d"
  "/root/repo/tests/test_core_penalty.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_penalty.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_penalty.cpp.o.d"
  "/root/repo/tests/test_core_properties.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_properties.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_properties.cpp.o.d"
  "/root/repo/tests/test_core_stations_io.cpp" "tests/CMakeFiles/esharing_tests.dir/test_core_stations_io.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_core_stations_io.cpp.o.d"
  "/root/repo/tests/test_data_binning.cpp" "tests/CMakeFiles/esharing_tests.dir/test_data_binning.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_data_binning.cpp.o.d"
  "/root/repo/tests/test_data_csv.cpp" "tests/CMakeFiles/esharing_tests.dir/test_data_csv.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_data_csv.cpp.o.d"
  "/root/repo/tests/test_data_statistics.cpp" "tests/CMakeFiles/esharing_tests.dir/test_data_statistics.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_data_statistics.cpp.o.d"
  "/root/repo/tests/test_data_synthetic_city.cpp" "tests/CMakeFiles/esharing_tests.dir/test_data_synthetic_city.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_data_synthetic_city.cpp.o.d"
  "/root/repo/tests/test_data_trip.cpp" "tests/CMakeFiles/esharing_tests.dir/test_data_trip.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_data_trip.cpp.o.d"
  "/root/repo/tests/test_energy_battery.cpp" "tests/CMakeFiles/esharing_tests.dir/test_energy_battery.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_energy_battery.cpp.o.d"
  "/root/repo/tests/test_energy_charge_curve.cpp" "tests/CMakeFiles/esharing_tests.dir/test_energy_charge_curve.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_energy_charge_curve.cpp.o.d"
  "/root/repo/tests/test_energy_charging_cost.cpp" "tests/CMakeFiles/esharing_tests.dir/test_energy_charging_cost.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_energy_charging_cost.cpp.o.d"
  "/root/repo/tests/test_geo_geohash.cpp" "tests/CMakeFiles/esharing_tests.dir/test_geo_geohash.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_geo_geohash.cpp.o.d"
  "/root/repo/tests/test_geo_grid.cpp" "tests/CMakeFiles/esharing_tests.dir/test_geo_grid.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_geo_grid.cpp.o.d"
  "/root/repo/tests/test_geo_latlon.cpp" "tests/CMakeFiles/esharing_tests.dir/test_geo_latlon.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_geo_latlon.cpp.o.d"
  "/root/repo/tests/test_geo_point.cpp" "tests/CMakeFiles/esharing_tests.dir/test_geo_point.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_geo_point.cpp.o.d"
  "/root/repo/tests/test_geo_polygon.cpp" "tests/CMakeFiles/esharing_tests.dir/test_geo_polygon.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_geo_polygon.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/esharing_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ml_forecasters.cpp" "tests/CMakeFiles/esharing_tests.dir/test_ml_forecasters.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_ml_forecasters.cpp.o.d"
  "/root/repo/tests/test_ml_gru.cpp" "tests/CMakeFiles/esharing_tests.dir/test_ml_gru.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_ml_gru.cpp.o.d"
  "/root/repo/tests/test_ml_linalg.cpp" "tests/CMakeFiles/esharing_tests.dir/test_ml_linalg.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_ml_linalg.cpp.o.d"
  "/root/repo/tests/test_ml_lstm.cpp" "tests/CMakeFiles/esharing_tests.dir/test_ml_lstm.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_ml_lstm.cpp.o.d"
  "/root/repo/tests/test_ml_series.cpp" "tests/CMakeFiles/esharing_tests.dir/test_ml_series.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_ml_series.cpp.o.d"
  "/root/repo/tests/test_privacy.cpp" "tests/CMakeFiles/esharing_tests.dir/test_privacy.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_privacy.cpp.o.d"
  "/root/repo/tests/test_rebalance.cpp" "tests/CMakeFiles/esharing_tests.dir/test_rebalance.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_rebalance.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/esharing_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sim_event_engine.cpp" "tests/CMakeFiles/esharing_tests.dir/test_sim_event_engine.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_sim_event_engine.cpp.o.d"
  "/root/repo/tests/test_sim_microsim.cpp" "tests/CMakeFiles/esharing_tests.dir/test_sim_microsim.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_sim_microsim.cpp.o.d"
  "/root/repo/tests/test_sim_simulation.cpp" "tests/CMakeFiles/esharing_tests.dir/test_sim_simulation.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_sim_simulation.cpp.o.d"
  "/root/repo/tests/test_solver_exact.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_exact.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_exact.cpp.o.d"
  "/root/repo/tests/test_solver_fl.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_fl.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_fl.cpp.o.d"
  "/root/repo/tests/test_solver_jms.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_jms.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_jms.cpp.o.d"
  "/root/repo/tests/test_solver_jv.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_jv.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_jv.cpp.o.d"
  "/root/repo/tests/test_solver_kmedian_capacitated.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_kmedian_capacitated.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_kmedian_capacitated.cpp.o.d"
  "/root/repo/tests/test_solver_local_search.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_local_search.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_local_search.cpp.o.d"
  "/root/repo/tests/test_solver_meyerson.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_meyerson.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_meyerson.cpp.o.d"
  "/root/repo/tests/test_solver_online_kmeans.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_online_kmeans.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_online_kmeans.cpp.o.d"
  "/root/repo/tests/test_solver_tsp.cpp" "tests/CMakeFiles/esharing_tests.dir/test_solver_tsp.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_solver_tsp.cpp.o.d"
  "/root/repo/tests/test_stats_ks1d.cpp" "tests/CMakeFiles/esharing_tests.dir/test_stats_ks1d.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_stats_ks1d.cpp.o.d"
  "/root/repo/tests/test_stats_ks2d.cpp" "tests/CMakeFiles/esharing_tests.dir/test_stats_ks2d.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_stats_ks2d.cpp.o.d"
  "/root/repo/tests/test_stats_rng.cpp" "tests/CMakeFiles/esharing_tests.dir/test_stats_rng.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_stats_rng.cpp.o.d"
  "/root/repo/tests/test_stats_spatial.cpp" "tests/CMakeFiles/esharing_tests.dir/test_stats_spatial.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_stats_spatial.cpp.o.d"
  "/root/repo/tests/test_stats_summary.cpp" "tests/CMakeFiles/esharing_tests.dir/test_stats_summary.cpp.o" "gcc" "tests/CMakeFiles/esharing_tests.dir/test_stats_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/esharing_data.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/esharing_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esharing_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/esharing_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esharing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esharing_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rebalance/CMakeFiles/esharing_rebalance.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/esharing_privacy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
