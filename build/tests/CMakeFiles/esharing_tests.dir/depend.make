# Empty dependencies file for esharing_tests.
# This may be replaced when dependencies are built.
