# Empty dependencies file for charging_ops.
# This may be replaced when dependencies are built.
