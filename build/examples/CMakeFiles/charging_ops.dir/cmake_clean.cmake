file(REMOVE_RECURSE
  "CMakeFiles/charging_ops.dir/charging_ops.cpp.o"
  "CMakeFiles/charging_ops.dir/charging_ops.cpp.o.d"
  "charging_ops"
  "charging_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charging_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
