# Empty compiler generated dependencies file for fleet_rebalance.
# This may be replaced when dependencies are built.
