file(REMOVE_RECURSE
  "CMakeFiles/fleet_rebalance.dir/fleet_rebalance.cpp.o"
  "CMakeFiles/fleet_rebalance.dir/fleet_rebalance.cpp.o.d"
  "fleet_rebalance"
  "fleet_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
