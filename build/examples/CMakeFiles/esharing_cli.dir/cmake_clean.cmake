file(REMOVE_RECURSE
  "CMakeFiles/esharing_cli.dir/esharing_cli.cpp.o"
  "CMakeFiles/esharing_cli.dir/esharing_cli.cpp.o.d"
  "esharing_cli"
  "esharing_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
