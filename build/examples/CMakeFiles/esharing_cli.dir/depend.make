# Empty dependencies file for esharing_cli.
# This may be replaced when dependencies are built.
