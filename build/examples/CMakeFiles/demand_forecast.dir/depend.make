# Empty dependencies file for demand_forecast.
# This may be replaced when dependencies are built.
