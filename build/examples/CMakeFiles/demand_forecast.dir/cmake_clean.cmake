file(REMOVE_RECURSE
  "CMakeFiles/demand_forecast.dir/demand_forecast.cpp.o"
  "CMakeFiles/demand_forecast.dir/demand_forecast.cpp.o.d"
  "demand_forecast"
  "demand_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
