# Empty compiler generated dependencies file for bench_fig05_penalty_shapes.
# This may be replaced when dependencies are built.
