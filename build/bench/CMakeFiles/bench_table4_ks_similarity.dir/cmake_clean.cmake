file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ks_similarity.dir/bench_table4_ks_similarity.cpp.o"
  "CMakeFiles/bench_table4_ks_similarity.dir/bench_table4_ks_similarity.cpp.o.d"
  "bench_table4_ks_similarity"
  "bench_table4_ks_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ks_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
