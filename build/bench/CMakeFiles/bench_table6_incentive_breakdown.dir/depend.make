# Empty dependencies file for bench_table6_incentive_breakdown.
# This may be replaced when dependencies are built.
