# Empty dependencies file for bench_fig06_deviation_penalty_example.
# This may be replaced when dependencies are built.
