# Empty dependencies file for bench_ablation_placer.
# This may be replaced when dependencies are built.
