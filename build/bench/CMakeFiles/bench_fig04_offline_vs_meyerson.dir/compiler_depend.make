# Empty compiler generated dependencies file for bench_fig04_offline_vs_meyerson.
# This may be replaced when dependencies are built.
