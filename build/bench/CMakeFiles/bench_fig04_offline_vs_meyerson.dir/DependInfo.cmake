
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig04_offline_vs_meyerson.cpp" "bench/CMakeFiles/bench_fig04_offline_vs_meyerson.dir/bench_fig04_offline_vs_meyerson.cpp.o" "gcc" "bench/CMakeFiles/bench_fig04_offline_vs_meyerson.dir/bench_fig04_offline_vs_meyerson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/esharing_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esharing_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esharing_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esharing_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/esharing_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/esharing_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/esharing_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/esharing_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rebalance/CMakeFiles/esharing_rebalance.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
