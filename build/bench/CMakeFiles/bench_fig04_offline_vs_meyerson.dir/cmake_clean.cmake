file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_offline_vs_meyerson.dir/bench_fig04_offline_vs_meyerson.cpp.o"
  "CMakeFiles/bench_fig04_offline_vs_meyerson.dir/bench_fig04_offline_vs_meyerson.cpp.o.d"
  "bench_fig04_offline_vs_meyerson"
  "bench_fig04_offline_vs_meyerson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_offline_vs_meyerson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
