# Empty dependencies file for bench_fig11_lowenergy_heatmap.
# This may be replaced when dependencies are built.
