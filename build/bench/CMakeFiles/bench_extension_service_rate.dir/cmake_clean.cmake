file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_service_rate.dir/bench_extension_service_rate.cpp.o"
  "CMakeFiles/bench_extension_service_rate.dir/bench_extension_service_rate.cpp.o.d"
  "bench_extension_service_rate"
  "bench_extension_service_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_service_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
