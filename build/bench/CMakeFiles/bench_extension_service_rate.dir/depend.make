# Empty dependencies file for bench_extension_service_rate.
# This may be replaced when dependencies are built.
