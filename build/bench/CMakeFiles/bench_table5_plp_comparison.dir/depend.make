# Empty dependencies file for bench_table5_plp_comparison.
# This may be replaced when dependencies are built.
