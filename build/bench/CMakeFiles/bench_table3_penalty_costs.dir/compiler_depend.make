# Empty compiler generated dependencies file for bench_table3_penalty_costs.
# This may be replaced when dependencies are built.
