# Empty dependencies file for bench_fig07_saving_ratio.
# This may be replaced when dependencies are built.
