file(REMOVE_RECURSE
  "libesharing_bench_common.a"
)
