# Empty compiler generated dependencies file for esharing_bench_common.
# This may be replaced when dependencies are built.
