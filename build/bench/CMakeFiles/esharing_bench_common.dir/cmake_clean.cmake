file(REMOVE_RECURSE
  "CMakeFiles/esharing_bench_common.dir/plp_compare.cpp.o"
  "CMakeFiles/esharing_bench_common.dir/plp_compare.cpp.o.d"
  "CMakeFiles/esharing_bench_common.dir/tier2.cpp.o"
  "CMakeFiles/esharing_bench_common.dir/tier2.cpp.o.d"
  "libesharing_bench_common.a"
  "libesharing_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
