file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_rebalance.dir/bench_extension_rebalance.cpp.o"
  "CMakeFiles/bench_extension_rebalance.dir/bench_extension_rebalance.cpp.o.d"
  "bench_extension_rebalance"
  "bench_extension_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
