# Empty dependencies file for bench_extension_rebalance.
# This may be replaced when dependencies are built.
