file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cost_vs_parking.dir/bench_fig10_cost_vs_parking.cpp.o"
  "CMakeFiles/bench_fig10_cost_vs_parking.dir/bench_fig10_cost_vs_parking.cpp.o.d"
  "bench_fig10_cost_vs_parking"
  "bench_fig10_cost_vs_parking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cost_vs_parking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
