# Empty compiler generated dependencies file for bench_fig10_cost_vs_parking.
# This may be replaced when dependencies are built.
