file(REMOVE_RECURSE
  "libesharing_solver.a"
)
