
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/capacitated.cpp" "src/solver/CMakeFiles/esharing_solver.dir/capacitated.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/capacitated.cpp.o.d"
  "/root/repo/src/solver/exact.cpp" "src/solver/CMakeFiles/esharing_solver.dir/exact.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/exact.cpp.o.d"
  "/root/repo/src/solver/facility_location.cpp" "src/solver/CMakeFiles/esharing_solver.dir/facility_location.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/facility_location.cpp.o.d"
  "/root/repo/src/solver/jms_greedy.cpp" "src/solver/CMakeFiles/esharing_solver.dir/jms_greedy.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/jms_greedy.cpp.o.d"
  "/root/repo/src/solver/jv_primal_dual.cpp" "src/solver/CMakeFiles/esharing_solver.dir/jv_primal_dual.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/jv_primal_dual.cpp.o.d"
  "/root/repo/src/solver/k_median.cpp" "src/solver/CMakeFiles/esharing_solver.dir/k_median.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/k_median.cpp.o.d"
  "/root/repo/src/solver/local_search.cpp" "src/solver/CMakeFiles/esharing_solver.dir/local_search.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/local_search.cpp.o.d"
  "/root/repo/src/solver/meyerson.cpp" "src/solver/CMakeFiles/esharing_solver.dir/meyerson.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/meyerson.cpp.o.d"
  "/root/repo/src/solver/online_kmeans.cpp" "src/solver/CMakeFiles/esharing_solver.dir/online_kmeans.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/online_kmeans.cpp.o.d"
  "/root/repo/src/solver/tsp.cpp" "src/solver/CMakeFiles/esharing_solver.dir/tsp.cpp.o" "gcc" "src/solver/CMakeFiles/esharing_solver.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
