# Empty dependencies file for esharing_solver.
# This may be replaced when dependencies are built.
