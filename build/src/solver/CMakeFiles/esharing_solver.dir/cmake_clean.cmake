file(REMOVE_RECURSE
  "CMakeFiles/esharing_solver.dir/capacitated.cpp.o"
  "CMakeFiles/esharing_solver.dir/capacitated.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/exact.cpp.o"
  "CMakeFiles/esharing_solver.dir/exact.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/facility_location.cpp.o"
  "CMakeFiles/esharing_solver.dir/facility_location.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/jms_greedy.cpp.o"
  "CMakeFiles/esharing_solver.dir/jms_greedy.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/jv_primal_dual.cpp.o"
  "CMakeFiles/esharing_solver.dir/jv_primal_dual.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/k_median.cpp.o"
  "CMakeFiles/esharing_solver.dir/k_median.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/local_search.cpp.o"
  "CMakeFiles/esharing_solver.dir/local_search.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/meyerson.cpp.o"
  "CMakeFiles/esharing_solver.dir/meyerson.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/online_kmeans.cpp.o"
  "CMakeFiles/esharing_solver.dir/online_kmeans.cpp.o.d"
  "CMakeFiles/esharing_solver.dir/tsp.cpp.o"
  "CMakeFiles/esharing_solver.dir/tsp.cpp.o.d"
  "libesharing_solver.a"
  "libesharing_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
