# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geo")
subdirs("stats")
subdirs("data")
subdirs("solver")
subdirs("ml")
subdirs("energy")
subdirs("rebalance")
subdirs("privacy")
subdirs("core")
subdirs("sim")
