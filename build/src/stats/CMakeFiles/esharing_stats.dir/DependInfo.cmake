
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ks1d.cpp" "src/stats/CMakeFiles/esharing_stats.dir/ks1d.cpp.o" "gcc" "src/stats/CMakeFiles/esharing_stats.dir/ks1d.cpp.o.d"
  "/root/repo/src/stats/ks2d.cpp" "src/stats/CMakeFiles/esharing_stats.dir/ks2d.cpp.o" "gcc" "src/stats/CMakeFiles/esharing_stats.dir/ks2d.cpp.o.d"
  "/root/repo/src/stats/spatial.cpp" "src/stats/CMakeFiles/esharing_stats.dir/spatial.cpp.o" "gcc" "src/stats/CMakeFiles/esharing_stats.dir/spatial.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/esharing_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/esharing_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
