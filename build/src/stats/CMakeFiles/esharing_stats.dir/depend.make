# Empty dependencies file for esharing_stats.
# This may be replaced when dependencies are built.
