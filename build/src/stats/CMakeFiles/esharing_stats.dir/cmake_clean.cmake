file(REMOVE_RECURSE
  "CMakeFiles/esharing_stats.dir/ks1d.cpp.o"
  "CMakeFiles/esharing_stats.dir/ks1d.cpp.o.d"
  "CMakeFiles/esharing_stats.dir/ks2d.cpp.o"
  "CMakeFiles/esharing_stats.dir/ks2d.cpp.o.d"
  "CMakeFiles/esharing_stats.dir/spatial.cpp.o"
  "CMakeFiles/esharing_stats.dir/spatial.cpp.o.d"
  "CMakeFiles/esharing_stats.dir/summary.cpp.o"
  "CMakeFiles/esharing_stats.dir/summary.cpp.o.d"
  "libesharing_stats.a"
  "libesharing_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
