file(REMOVE_RECURSE
  "libesharing_stats.a"
)
