file(REMOVE_RECURSE
  "libesharing_data.a"
)
