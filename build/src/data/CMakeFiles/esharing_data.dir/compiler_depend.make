# Empty compiler generated dependencies file for esharing_data.
# This may be replaced when dependencies are built.
