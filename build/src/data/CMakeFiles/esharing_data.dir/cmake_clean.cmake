file(REMOVE_RECURSE
  "CMakeFiles/esharing_data.dir/binning.cpp.o"
  "CMakeFiles/esharing_data.dir/binning.cpp.o.d"
  "CMakeFiles/esharing_data.dir/csv.cpp.o"
  "CMakeFiles/esharing_data.dir/csv.cpp.o.d"
  "CMakeFiles/esharing_data.dir/statistics.cpp.o"
  "CMakeFiles/esharing_data.dir/statistics.cpp.o.d"
  "CMakeFiles/esharing_data.dir/synthetic_city.cpp.o"
  "CMakeFiles/esharing_data.dir/synthetic_city.cpp.o.d"
  "CMakeFiles/esharing_data.dir/trip.cpp.o"
  "CMakeFiles/esharing_data.dir/trip.cpp.o.d"
  "libesharing_data.a"
  "libesharing_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
