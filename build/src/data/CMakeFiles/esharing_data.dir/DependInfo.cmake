
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/binning.cpp" "src/data/CMakeFiles/esharing_data.dir/binning.cpp.o" "gcc" "src/data/CMakeFiles/esharing_data.dir/binning.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/esharing_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/esharing_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/statistics.cpp" "src/data/CMakeFiles/esharing_data.dir/statistics.cpp.o" "gcc" "src/data/CMakeFiles/esharing_data.dir/statistics.cpp.o.d"
  "/root/repo/src/data/synthetic_city.cpp" "src/data/CMakeFiles/esharing_data.dir/synthetic_city.cpp.o" "gcc" "src/data/CMakeFiles/esharing_data.dir/synthetic_city.cpp.o.d"
  "/root/repo/src/data/trip.cpp" "src/data/CMakeFiles/esharing_data.dir/trip.cpp.o" "gcc" "src/data/CMakeFiles/esharing_data.dir/trip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
