file(REMOVE_RECURSE
  "libesharing_privacy.a"
)
