# Empty compiler generated dependencies file for esharing_privacy.
# This may be replaced when dependencies are built.
