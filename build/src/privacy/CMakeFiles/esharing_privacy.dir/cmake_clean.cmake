file(REMOVE_RECURSE
  "CMakeFiles/esharing_privacy.dir/privacy.cpp.o"
  "CMakeFiles/esharing_privacy.dir/privacy.cpp.o.d"
  "libesharing_privacy.a"
  "libesharing_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
