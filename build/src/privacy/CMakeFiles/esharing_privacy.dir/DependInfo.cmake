
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/privacy.cpp" "src/privacy/CMakeFiles/esharing_privacy.dir/privacy.cpp.o" "gcc" "src/privacy/CMakeFiles/esharing_privacy.dir/privacy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/esharing_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
