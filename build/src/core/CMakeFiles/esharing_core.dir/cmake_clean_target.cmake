file(REMOVE_RECURSE
  "libesharing_core.a"
)
