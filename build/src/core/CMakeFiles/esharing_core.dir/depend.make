# Empty dependencies file for esharing_core.
# This may be replaced when dependencies are built.
