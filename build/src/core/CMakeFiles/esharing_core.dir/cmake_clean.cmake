file(REMOVE_RECURSE
  "CMakeFiles/esharing_core.dir/charging_ops.cpp.o"
  "CMakeFiles/esharing_core.dir/charging_ops.cpp.o.d"
  "CMakeFiles/esharing_core.dir/daytype_router.cpp.o"
  "CMakeFiles/esharing_core.dir/daytype_router.cpp.o.d"
  "CMakeFiles/esharing_core.dir/demand_forecast.cpp.o"
  "CMakeFiles/esharing_core.dir/demand_forecast.cpp.o.d"
  "CMakeFiles/esharing_core.dir/deviation_placer.cpp.o"
  "CMakeFiles/esharing_core.dir/deviation_placer.cpp.o.d"
  "CMakeFiles/esharing_core.dir/esharing.cpp.o"
  "CMakeFiles/esharing_core.dir/esharing.cpp.o.d"
  "CMakeFiles/esharing_core.dir/incentive.cpp.o"
  "CMakeFiles/esharing_core.dir/incentive.cpp.o.d"
  "CMakeFiles/esharing_core.dir/penalty.cpp.o"
  "CMakeFiles/esharing_core.dir/penalty.cpp.o.d"
  "CMakeFiles/esharing_core.dir/stations_io.cpp.o"
  "CMakeFiles/esharing_core.dir/stations_io.cpp.o.d"
  "libesharing_core.a"
  "libesharing_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
