
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/charging_ops.cpp" "src/core/CMakeFiles/esharing_core.dir/charging_ops.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/charging_ops.cpp.o.d"
  "/root/repo/src/core/daytype_router.cpp" "src/core/CMakeFiles/esharing_core.dir/daytype_router.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/daytype_router.cpp.o.d"
  "/root/repo/src/core/demand_forecast.cpp" "src/core/CMakeFiles/esharing_core.dir/demand_forecast.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/demand_forecast.cpp.o.d"
  "/root/repo/src/core/deviation_placer.cpp" "src/core/CMakeFiles/esharing_core.dir/deviation_placer.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/deviation_placer.cpp.o.d"
  "/root/repo/src/core/esharing.cpp" "src/core/CMakeFiles/esharing_core.dir/esharing.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/esharing.cpp.o.d"
  "/root/repo/src/core/incentive.cpp" "src/core/CMakeFiles/esharing_core.dir/incentive.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/incentive.cpp.o.d"
  "/root/repo/src/core/penalty.cpp" "src/core/CMakeFiles/esharing_core.dir/penalty.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/penalty.cpp.o.d"
  "/root/repo/src/core/stations_io.cpp" "src/core/CMakeFiles/esharing_core.dir/stations_io.cpp.o" "gcc" "src/core/CMakeFiles/esharing_core.dir/stations_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/esharing_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/esharing_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/esharing_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/esharing_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
