# Empty compiler generated dependencies file for esharing_geo.
# This may be replaced when dependencies are built.
