file(REMOVE_RECURSE
  "CMakeFiles/esharing_geo.dir/geohash.cpp.o"
  "CMakeFiles/esharing_geo.dir/geohash.cpp.o.d"
  "CMakeFiles/esharing_geo.dir/grid.cpp.o"
  "CMakeFiles/esharing_geo.dir/grid.cpp.o.d"
  "CMakeFiles/esharing_geo.dir/latlon.cpp.o"
  "CMakeFiles/esharing_geo.dir/latlon.cpp.o.d"
  "CMakeFiles/esharing_geo.dir/point.cpp.o"
  "CMakeFiles/esharing_geo.dir/point.cpp.o.d"
  "CMakeFiles/esharing_geo.dir/polygon.cpp.o"
  "CMakeFiles/esharing_geo.dir/polygon.cpp.o.d"
  "libesharing_geo.a"
  "libesharing_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
