file(REMOVE_RECURSE
  "libesharing_geo.a"
)
