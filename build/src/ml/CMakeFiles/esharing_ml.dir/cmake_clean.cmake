file(REMOVE_RECURSE
  "CMakeFiles/esharing_ml.dir/arima.cpp.o"
  "CMakeFiles/esharing_ml.dir/arima.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/forecaster.cpp.o"
  "CMakeFiles/esharing_ml.dir/forecaster.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/gru.cpp.o"
  "CMakeFiles/esharing_ml.dir/gru.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/linalg.cpp.o"
  "CMakeFiles/esharing_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/lstm.cpp.o"
  "CMakeFiles/esharing_ml.dir/lstm.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/moving_average.cpp.o"
  "CMakeFiles/esharing_ml.dir/moving_average.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/seasonal_naive.cpp.o"
  "CMakeFiles/esharing_ml.dir/seasonal_naive.cpp.o.d"
  "CMakeFiles/esharing_ml.dir/series.cpp.o"
  "CMakeFiles/esharing_ml.dir/series.cpp.o.d"
  "libesharing_ml.a"
  "libesharing_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
