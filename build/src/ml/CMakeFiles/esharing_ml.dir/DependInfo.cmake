
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/arima.cpp" "src/ml/CMakeFiles/esharing_ml.dir/arima.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/arima.cpp.o.d"
  "/root/repo/src/ml/forecaster.cpp" "src/ml/CMakeFiles/esharing_ml.dir/forecaster.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/forecaster.cpp.o.d"
  "/root/repo/src/ml/gru.cpp" "src/ml/CMakeFiles/esharing_ml.dir/gru.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/gru.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/esharing_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/lstm.cpp" "src/ml/CMakeFiles/esharing_ml.dir/lstm.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/lstm.cpp.o.d"
  "/root/repo/src/ml/moving_average.cpp" "src/ml/CMakeFiles/esharing_ml.dir/moving_average.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/moving_average.cpp.o.d"
  "/root/repo/src/ml/seasonal_naive.cpp" "src/ml/CMakeFiles/esharing_ml.dir/seasonal_naive.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/seasonal_naive.cpp.o.d"
  "/root/repo/src/ml/series.cpp" "src/ml/CMakeFiles/esharing_ml.dir/series.cpp.o" "gcc" "src/ml/CMakeFiles/esharing_ml.dir/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/esharing_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/esharing_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
