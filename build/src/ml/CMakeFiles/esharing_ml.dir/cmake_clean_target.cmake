file(REMOVE_RECURSE
  "libesharing_ml.a"
)
