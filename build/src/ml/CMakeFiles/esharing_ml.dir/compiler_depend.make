# Empty compiler generated dependencies file for esharing_ml.
# This may be replaced when dependencies are built.
