file(REMOVE_RECURSE
  "CMakeFiles/esharing_energy.dir/battery.cpp.o"
  "CMakeFiles/esharing_energy.dir/battery.cpp.o.d"
  "CMakeFiles/esharing_energy.dir/charge_curve.cpp.o"
  "CMakeFiles/esharing_energy.dir/charge_curve.cpp.o.d"
  "CMakeFiles/esharing_energy.dir/charging_cost.cpp.o"
  "CMakeFiles/esharing_energy.dir/charging_cost.cpp.o.d"
  "libesharing_energy.a"
  "libesharing_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
