# Empty dependencies file for esharing_energy.
# This may be replaced when dependencies are built.
