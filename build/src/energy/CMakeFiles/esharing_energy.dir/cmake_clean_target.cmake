file(REMOVE_RECURSE
  "libesharing_energy.a"
)
