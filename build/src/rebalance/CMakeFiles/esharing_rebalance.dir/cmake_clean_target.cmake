file(REMOVE_RECURSE
  "libesharing_rebalance.a"
)
