file(REMOVE_RECURSE
  "CMakeFiles/esharing_rebalance.dir/rebalance.cpp.o"
  "CMakeFiles/esharing_rebalance.dir/rebalance.cpp.o.d"
  "libesharing_rebalance.a"
  "libesharing_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
