# Empty compiler generated dependencies file for esharing_rebalance.
# This may be replaced when dependencies are built.
