file(REMOVE_RECURSE
  "libesharing_sim.a"
)
