file(REMOVE_RECURSE
  "CMakeFiles/esharing_sim.dir/event_engine.cpp.o"
  "CMakeFiles/esharing_sim.dir/event_engine.cpp.o.d"
  "CMakeFiles/esharing_sim.dir/microsim.cpp.o"
  "CMakeFiles/esharing_sim.dir/microsim.cpp.o.d"
  "CMakeFiles/esharing_sim.dir/simulation.cpp.o"
  "CMakeFiles/esharing_sim.dir/simulation.cpp.o.d"
  "libesharing_sim.a"
  "libesharing_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esharing_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
