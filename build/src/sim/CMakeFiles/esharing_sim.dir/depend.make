# Empty dependencies file for esharing_sim.
# This may be replaced when dependencies are built.
