/// Streaming demo: the esharing::stream serving pipeline end to end.
///
/// 1. Generate synthetic-city history, plan parkings offline and start the
///    online placer (tier one).
/// 2. Configure a stream::Pipeline (one validated config: bus + placer +
///    incentive), publish a live day of trip events onto its 2-shard bus
///    and serve them incrementally — parallel lane drains, merge-by-seq,
///    per-event placer decisions plus per-shard KS regime checks off the
///    sliding windows.
/// 3. Open a tier-two incentive session from the telemetry-fed low-battery
///    watchlist and route pickups through it.
/// 4. Checkpoint the drained pipeline to a file and restore it — the
///    restored run continues bit-identically.
///
/// Build & run:  ./build/examples/stream_demo

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/esharing.h"
#include "data/binning.h"
#include "data/synthetic_city.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "stream/pipeline.h"

using namespace esharing;

int main() {
  obs::set_enabled(true);

  // --- 1. history + tier-one bootstrap ------------------------------------
  data::CityConfig city_cfg;
  city_cfg.num_days = 2;
  city_cfg.trips_per_weekday = 400;
  city_cfg.trips_per_weekend_day = 300;
  data::SyntheticCity city(city_cfg, /*seed=*/11);
  const auto history = city.generate_trips();

  core::ESharing system(core::ESharingConfig{}, /*seed=*/11);
  const auto sites = data::demand_sites_in_window(
      city.grid(), city.projection(), history, 0,
      city_cfg.num_days * data::kSecondsPerDay);
  (void)system.plan_offline(sites, [](geo::Point) { return 10000.0; });
  auto ks_reference = data::destinations_in_window(
      city.projection(), history, 0, city_cfg.num_days * data::kSecondsPerDay);
  if (ks_reference.size() > 400) ks_reference.resize(400);
  system.start_online(ks_reference);
  std::cout << "bootstrapped: " << system.parking_locations().size()
            << " offline parkings, " << ks_reference.size()
            << "-point KS reference\n";

  // --- 2. live trips through the pipeline facade --------------------------
  stream::PipelineConfig pipe_cfg;
  pipe_cfg.bus.shard_count = 2;
  pipe_cfg.bus.queue_capacity = 256;
  pipe_cfg.bus.max_batch = 64;
  pipe_cfg.placer.state.window_length = 12 * 3600;  // half-day demand window
  pipe_cfg.placer.regime_check_period = 100;
  pipe_cfg.placer.regime_min_samples = 32;
  stream::Pipeline pipeline(system, ks_reference, pipe_cfg);

  const auto live = city.generate_trips();
  std::vector<stream::Event> log;
  log.reserve(live.size());
  for (const auto& trip : live) {
    stream::Event e;
    e.kind = stream::EventKind::kTripEnd;
    e.time = trip.start_time;
    e.where = city.end_point(trip);
    e.origin = city.start_point(trip);
    e.bike_id = static_cast<std::int64_t>(trip.bike_id);
    e.user_max_walk_m = 400.0;
    e.user_min_reward = 0.05;
    log.push_back(e);
    if (trip.bike_id % 7 == 0) {  // sparse battery telemetry
      stream::Event b;
      b.kind = stream::EventKind::kBatteryLevel;
      b.time = trip.start_time + 1;
      b.where = e.where;
      b.bike_id = e.bike_id;
      b.soc = 0.1 + 0.01 * static_cast<double>(trip.bike_id % 5);
      log.push_back(b);
    }
  }
  const auto replay = pipeline.replay(log);
  std::size_t opened = 0;
  for (const auto& d : replay.decisions) opened += d.opened ? 1 : 0;
  std::cout << "streamed " << replay.consumed << " events over "
            << pipeline.bus().shard_count() << " shards: " << opened
            << " stations opened online, "
            << system.placer().active_locations().size() << " active\n";
  const auto& driver = pipeline.placer_driver();
  for (std::size_t s = 0; s < driver.shard_count(); ++s) {
    const auto& regime = driver.shard_regime(s);
    std::cout << "  shard " << s << ": " << driver.shard_state(s).window_size()
              << " window points, " << regime.checks
              << " KS checks, similarity " << regime.similarity << "%\n";
  }
  const auto stats = pipeline.stats();
  std::cout << "pump cycle: " << stats.pump_rounds << " rounds, "
            << stats.lane_events << " lane events, " << stats.merge_stalls
            << " merge stalls, last lane occupancy "
            << 100.0 * stats.lane_occupancy << "%\n";

  // --- 3. tier two off the watchlist --------------------------------------
  auto& incentives = pipeline.incentive_driver();
  incentives.open_session(system.parking_locations(), driver.watchlist());
  const auto can_ride = [](std::size_t, double) { return true; };
  const auto stations = system.placer().active_locations();
  for (std::size_t i = 0; i < 50 && i < log.size(); ++i) {
    (void)incentives.handle_trip(log[i], stations[i % stations.size()],
                                 can_ride);
  }
  std::cout << "incentive session: " << driver.watchlist().size()
            << " watchlisted bikes, " << incentives.offers_made()
            << " offers, " << incentives.relocations() << " relocations, $"
            << incentives.total_incentives_paid() << " paid\n";

  // --- 4. checkpoint round-trip -------------------------------------------
  const char* path = "stream_demo.ckpt";
  pipeline.save_checkpoint_file(path);
  const auto info = pipeline.restore_checkpoint_file(path);
  std::cout << "checkpoint v" << info.version << ": " << info.events_consumed
            << " events consumed, resumes at seq " << info.last_seq + 1
            << '\n';
  std::remove(path);

  obs::set_enabled(false);
  const std::string snapshot_path = obs::metrics_snapshot_path("stream_demo");
  if (obs::write_snapshot_json(obs::Registry::global(), snapshot_path)) {
    std::cout << "metrics snapshot: " << snapshot_path << '\n';
  }
  return 0;
}
