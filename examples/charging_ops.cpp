/// Charging operations: a tier-two deep dive for the maintenance team.
///
/// Runs the full simulated deployment (sim::Simulation) for two weeks at
/// several incentive levels alpha and reports the maintenance economics:
/// incentives paid, relocations, charging rounds, percentage of low-energy
/// bikes covered and the operator's driven distance — the decision data an
/// operator would use to pick alpha (the paper lands on 0.4).
///
/// Build & run:  ./build/examples/charging_ops

#include <iomanip>
#include <iostream>

#include "sim/simulation.h"

using namespace esharing;

int main() {
  data::CityConfig ccfg;
  ccfg.num_days = 5;
  ccfg.trips_per_weekday = 1200;
  ccfg.trips_per_weekend_day = 1000;
  ccfg.num_bikes = 300;
  data::SyntheticCity city(ccfg, 33);
  const auto history = city.generate_trips();
  const auto live = city.generate_trips();
  std::cout << "city: " << history.size() << " historical + " << live.size()
            << " live trips, " << ccfg.num_bikes << " bikes\n\n";

  std::cout << std::left << std::setw(8) << "alpha" << std::right
            << std::setw(12) << "offers" << std::setw(12) << "relocated"
            << std::setw(12) << "incentives" << std::setw(14) << "charge $"
            << std::setw(12) << "% charged" << std::setw(12) << "dist km"
            << '\n'
            << std::string(82, '-') << '\n';

  for (double alpha : {0.0, 0.2, 0.4, 0.7, 1.0}) {
    sim::SimConfig scfg;
    scfg.esharing.incentive.alpha = alpha;
    scfg.esharing.incentive.mileage_slack_m = 300.0;
    // Offers are priced per shift-length rounds; users have meaningful
    // reservation values so the acceptance rate actually depends on alpha.
    scfg.esharing.incentive.max_sequence_position = 10;
    scfg.user_min_reward_hi = 12.0;
    scfg.esharing.charging_operator.work_seconds = 5.0 * 3600.0;
    scfg.charging_period = data::kSecondsPerDay;

    // Average a few seeds: single runs of a small city are noisy.
    struct Row {
      double offers{0}, relocated{0}, incentives{0}, charge{0}, pct{0},
          dist_km{0};
    } row;
    constexpr int kSeeds = 3;
    for (int s = 0; s < kSeeds; ++s) {
      sim::Simulation simulation(city, scfg, 34 + s);
      simulation.bootstrap(history);
      const auto metrics = simulation.run(live);
      row.offers += static_cast<double>(metrics.offers_made) / kSeeds;
      row.relocated += static_cast<double>(metrics.relocations) / kSeeds;
      row.incentives += metrics.incentives_paid / kSeeds;
      row.charge += metrics.total_charging_cost() / kSeeds;
      row.pct += metrics.mean_pct_charged() / kSeeds;
      row.dist_km += metrics.total_moving_distance_m() / 1000.0 / kSeeds;
    }
    std::cout << std::left << std::setw(8) << alpha << std::right
              << std::fixed << std::setprecision(0) << std::setw(12)
              << row.offers << std::setw(12) << row.relocated << std::setw(12)
              << row.incentives << std::setw(14) << row.charge
              << std::setw(12) << std::setprecision(1) << row.pct
              << std::setw(12) << row.dist_km << '\n';
  }

  std::cout << "\nReading the table: raising alpha buys more cooperation\n"
               "(relocations and charged coverage go up) at linearly growing\n"
               "incentive payments. The operator picks the knee of this\n"
               "curve; the paper's full-cost accounting (Table VI, see\n"
               "bench_table6_incentive_breakdown) lands on alpha = 0.4.\n";
  return 0;
}
