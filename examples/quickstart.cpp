/// Quickstart: the smallest complete E-Sharing flow.
///
/// 1. Generate a week of synthetic city trips (Mobike schema).
/// 2. Plan near-optimal parking locations offline from that history
///    (tier one, Algorithm 1).
/// 3. Serve a live day of requests online with the deviation-penalty
///    placer (tier one, Algorithm 2).
/// 4. Aggregate low-battery bikes with incentives and run one charging
///    round (tier two, Algorithm 3).
///
/// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/esharing.h"
#include "data/binning.h"
#include "data/synthetic_city.h"
#include "energy/battery.h"

using namespace esharing;

int main() {
  // --- 1. a week of history --------------------------------------------
  data::CityConfig city_cfg;
  city_cfg.num_days = 7;
  data::SyntheticCity city(city_cfg, /*seed=*/7);
  const auto history = city.generate_trips();
  std::cout << "generated " << history.size() << " historical trips\n";

  // --- 2. offline plan ----------------------------------------------------
  core::ESharingConfig cfg;
  cfg.charging_operator.work_seconds = 8.0 * 3600.0;
  core::ESharing system(cfg, /*seed=*/7);
  const auto sites = data::demand_sites_in_window(
      city.grid(), city.projection(), history, 0,
      city_cfg.num_days * data::kSecondsPerDay);
  const auto& plan =
      system.plan_offline(sites, [](geo::Point) { return 10000.0; });
  std::cout << "offline plan: " << plan.num_open() << " parking locations, "
            << "total cost " << plan.total_cost() / 1000.0 << " km\n";

  // --- 3. online day ------------------------------------------------------
  auto ks_reference = data::destinations_in_window(
      city.projection(), history, 0, city_cfg.num_days * data::kSecondsPerDay);
  if (ks_reference.size() > 300) ks_reference.resize(300);
  system.start_online(std::move(ks_reference));

  const auto live = city.generate_trips();  // the next week
  for (const auto& trip : live) {
    (void)system.handle_request(city.end_point(trip));
  }
  std::cout << "after " << live.size() << " live requests: "
            << system.placer().num_active() << " active parkings ("
            << system.placer().num_online_opened()
            << " opened online), mean walk "
            << system.placer().total_connection_cost() /
                   static_cast<double>(live.size())
            << " m\n";

  // --- 4. one charging round ----------------------------------------------
  energy::BikeFleet fleet(city_cfg.num_bikes, energy::EnergyConfig{}, 7);
  std::vector<std::size_t> bike_station(fleet.size());
  const auto parkings = system.parking_locations();
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    bike_station[b] = b % parkings.size();
  }
  const auto session = system.make_incentive_session(fleet, bike_station);
  const auto round = system.charge(session);
  std::cout << "charging round: " << round.stations_visited << "/"
            << round.stations_total << " stations served, "
            << round.bikes_charged << " bikes charged, cost $"
            << round.total_cost() << "\n";
  return 0;
}
