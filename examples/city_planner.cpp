/// City planner: a tier-one deep dive for an operations team.
///
/// Plays out the paper's motivating scenario (Section II): parking
/// placement must track live demand, including a demand surge at a
/// previously quiet location (a concert). The example
///   * persists/reloads trips through the Mobike CSV codec,
///   * plans offline landmarks from a historical week,
///   * streams a live week through the deviation-penalty placer,
///   * injects an event burst and shows the KS test catching the shift and
///     the penalty switching to the tolerant Type I,
///   * compares the final cost against plain Meyerson.
///
/// Build & run:  ./build/examples/city_planner

#include <cstdio>
#include <iostream>

#include "core/deviation_placer.h"
#include "data/binning.h"
#include "data/csv.h"
#include "data/synthetic_city.h"
#include "solver/jms_greedy.h"
#include "solver/meyerson.h"

using namespace esharing;
using geo::Point;

int main() {
  // --- build the dataset and round-trip it through CSV -----------------
  data::CityConfig ccfg;
  ccfg.num_days = 7;
  data::SyntheticCity city(ccfg, 21);
  {
    const auto week1 = city.generate_trips();
    data::save_trips_csv("city_planner_trips.csv", week1);
  }
  const auto history = data::load_trips_csv("city_planner_trips.csv");
  std::remove("city_planner_trips.csv");
  std::cout << "loaded " << history.size() << " trips from CSV\n";

  // --- offline landmarks from the historical week -------------------------
  const auto sites = data::demand_sites_in_window(
      city.grid(), city.projection(), history, 0,
      ccfg.num_days * data::kSecondsPerDay);
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (const auto& s : sites) {
    clients.push_back({s.location, s.arrivals});
    costs.push_back(10000.0);
  }
  const auto plan =
      solver::jms_greedy(solver::colocated_instance(clients, costs));
  std::vector<Point> landmarks;
  for (std::size_t i : plan.open) landmarks.push_back(sites[i].location);
  std::cout << "offline plan: " << landmarks.size() << " landmarks\n";

  // --- stream a live week through Algorithm 2 ------------------------------
  auto ks_ref = data::destinations_in_window(
      city.projection(), history, 0, ccfg.num_days * data::kSecondsPerDay);
  if (ks_ref.size() > 300) ks_ref.resize(300);

  core::DeviationPlacerConfig pcfg;
  pcfg.tolerance = 200.0;
  pcfg.ks_period = 150;
  core::DeviationPenaltyPlacer placer(landmarks, ks_ref,
                                      [](Point) { return 10000.0; }, pcfg, 22);
  solver::MeyersonPlacer meyerson(10000.0, 22);

  const auto live = city.generate_trips();
  for (const auto& trip : live) {
    const Point dest = city.end_point(trip);
    (void)placer.process(dest);
    (void)meyerson.process(dest);
  }
  std::cout << "normal week: similarity "
            << placer.last_similarity() << "%, penalty "
            << core::penalty_type_name(placer.penalty_type()) << ", "
            << placer.num_active() << " parkings ("
            << placer.num_online_opened() << " online)\n";

  // --- a concert at a quiet corner ------------------------------------------
  const Point venue{2700.0, 300.0};
  const auto surge = city.generate_event_burst(
      14 * data::kSecondsPerDay + 19 * data::kSecondsPerHour,
      3 * data::kSecondsPerHour, venue, 80.0, 400);
  const std::size_t online_before = placer.num_online_opened();
  for (const auto& trip : surge) {
    (void)placer.process(city.end_point(trip));
  }
  std::cout << "after concert surge at (" << venue.x << ", " << venue.y
            << "): similarity " << placer.last_similarity() << "%, penalty "
            << core::penalty_type_name(placer.penalty_type()) << ", "
            << placer.num_online_opened() - online_before
            << " new online parkings near the venue\n";

  // --- final comparison -------------------------------------------------------
  std::cout << "\ncost comparison (km):\n"
            << "  E-sharing: walking "
            << placer.total_connection_cost() / 1000.0 << ", space "
            << placer.total_opening_cost() / 1000.0 << ", total "
            << placer.total_cost() / 1000.0 << '\n'
            << "  Meyerson:  walking "
            << meyerson.total_connection_cost() / 1000.0 << ", space "
            << meyerson.total_opening_cost() / 1000.0 << ", total "
            << meyerson.total_cost() / 1000.0 << '\n';
  return 0;
}
