/// Fleet rebalancing + privacy pipeline: the morning routine of an
/// operations team.
///
/// 1. Yesterday's trips are anonymized before leaving the ingestion layer
///    (pseudonymized ids + planar-Laplace location obfuscation), as the
///    paper's system model suggests.
/// 2. Per-station demand for the coming day is forecast from the
///    (anonymized) history.
/// 3. Rebalancing targets proportional to forecast demand are computed and
///    a capacity-limited truck route is planned to meet them — the
///    "balanced reserves" assumption of the paper's system model, made
///    concrete.
///
/// Build & run:  ./build/examples/fleet_rebalance

#include <iomanip>
#include <iostream>

#include "data/binning.h"
#include "data/synthetic_city.h"
#include "ml/moving_average.h"
#include "privacy/privacy.h"
#include "rebalance/rebalance.h"
#include "solver/jms_greedy.h"

using namespace esharing;
using geo::Point;

int main() {
  data::CityConfig ccfg;
  ccfg.num_days = 7;
  ccfg.num_bikes = 400;
  data::SyntheticCity city(ccfg, 55);
  const auto raw_trips = city.generate_trips();

  // --- 1. privacy at the ingestion boundary -----------------------------
  stats::Rng rng(56);
  privacy::AnonymizeConfig pcfg;
  pcfg.epsilon = 0.02;  // ~100 m expected obfuscation
  const auto trips =
      privacy::anonymize_trips(raw_trips, city.projection(), pcfg, rng);
  std::cout << "anonymized " << trips.size() << " trips (E[noise] = "
            << privacy::PlanarLaplace(pcfg.epsilon).expected_displacement()
            << " m, ids pseudonymized)\n";

  // --- station set from the anonymized history -----------------------------
  const auto sites = data::demand_sites_in_window(
      city.grid(), city.projection(), trips, 0,
      ccfg.num_days * data::kSecondsPerDay);
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (const auto& s : sites) {
    clients.push_back({s.location, s.arrivals});
    costs.push_back(10000.0);
  }
  const auto plan =
      solver::jms_greedy(solver::colocated_instance(clients, costs));
  std::cout << "station network: " << plan.num_open() << " parkings\n";

  // --- 2. forecast per-station demand for tomorrow morning -----------------
  // Hourly arrivals near each station, forecast with a short moving average
  // over the same hour of previous days.
  const auto grid = city.grid();
  const auto matrix = data::bin_trips(grid, city.projection(), trips,
                                      static_cast<std::size_t>(ccfg.num_days) * 24);
  std::vector<rebalance::StationInventory> stations;
  std::vector<double> forecast_demand;
  stats::Rng inv_rng(57);
  ml::MovingAverageForecaster ma(24);  // daily-mean level estimate
  for (std::size_t k = 0; k < plan.open.size(); ++k) {
    const Point loc = clients[plan.open[k]].location;
    const auto cell = grid.index_of(grid.clamped_cell_of(loc));
    const auto series = matrix.cell_series(cell);
    ma.fit(series);
    const double demand = std::max(0.0, ma.forecast(series, 1)[0]) * 24.0;
    forecast_demand.push_back(demand);
    // Overnight inventories: whatever yesterday's chaos left behind.
    stations.push_back({loc, static_cast<int>(inv_rng.index(2 * ccfg.num_bikes /
                                                            plan.num_open() + 1)),
                        0});
  }

  // --- 3. targets + truck route ---------------------------------------------
  const auto targets = rebalance::proportional_targets(stations, forecast_demand);
  for (std::size_t k = 0; k < stations.size(); ++k) {
    stations[k].target = targets[k];
  }
  const int before = rebalance::total_imbalance(stations);

  rebalance::TruckConfig truck;
  truck.capacity = 16;
  truck.depot = {0.0, 0.0};
  const auto route = rebalance::plan_rebalancing(stations, truck);
  const auto after_bikes = rebalance::apply_plan(stations, route, truck);
  int after = 0;
  for (std::size_t k = 0; k < stations.size(); ++k) {
    after += std::abs(after_bikes[k] - stations[k].target);
  }

  std::cout << std::fixed << std::setprecision(1)
            << "rebalancing: imbalance " << before << " -> " << after
            << " bikes, " << route.stops.size() << " stops, "
            << route.bikes_moved << " bikes moved, route "
            << route.route_length_m / 1000.0 << " km\n";

  std::cout << "\nfirst stops of the truck route:\n";
  for (std::size_t s = 0; s < std::min<std::size_t>(route.stops.size(), 8); ++s) {
    const auto& stop = route.stops[s];
    std::cout << "  station " << std::setw(3) << stop.station << " at ("
              << std::setw(6) << std::setprecision(0)
              << stations[stop.station].location.x << ", " << std::setw(6)
              << stations[stop.station].location.y << "): "
              << (stop.delta > 0 ? "load " : "drop ")
              << std::abs(stop.delta) << " bikes\n";
  }
  return 0;
}
