/// esharing_cli — a small command-line front end over the library, the
/// kind of tool an operations team scripts against:
///
///   esharing_cli generate <days> <trips.csv>        synthesize a city
///   esharing_cli summarize <trips.csv>              dataset statistics
///   esharing_cli plan <trips.csv> <stations.csv>    offline PLP plan
///   esharing_cli anonymize <in.csv> <out.csv> <eps> privacy pipeline
///
/// All commands operate on the Mobike CSV schema and exercise the public
/// API end to end (generator -> statistics -> planner -> stations CSV).

#include <iomanip>
#include <iostream>
#include <string>

#include "core/stations_io.h"
#include "data/binning.h"
#include "data/csv.h"
#include "data/statistics.h"
#include "data/synthetic_city.h"
#include "privacy/privacy.h"
#include "solver/jms_greedy.h"

using namespace esharing;

namespace {

/// Every command shares the default city geometry so CSVs interoperate.
data::CityConfig base_config() { return data::CityConfig{}; }

geo::LocalProjection projection() {
  return geo::LocalProjection(base_config().sw_corner);
}

int cmd_generate(int days, const std::string& path) {
  data::CityConfig cfg = base_config();
  cfg.num_days = days;
  data::SyntheticCity city(cfg, /*seed=*/2017);
  const auto trips = city.generate_trips();
  data::save_trips_csv(path, trips);
  std::cout << "wrote " << trips.size() << " trips over " << days
            << " days to " << path << '\n';
  return 0;
}

int cmd_summarize(const std::string& path) {
  const auto trips = data::load_trips_csv(path);
  const auto proj = projection();
  const auto s = data::summarize(trips, proj);
  std::cout << "trips:          " << s.trips << " over " << s.days
            << " days (" << std::fixed << std::setprecision(0)
            << s.trips_per_day << "/day)\n"
            << "fleet:          " << s.unique_bikes << " bikes ("
            << std::setprecision(1) << s.trips_per_bike << " trips/bike), "
            << s.unique_users << " users\n"
            << "trip length:    mean " << std::setprecision(0) << s.mean_trip_m
            << " m, median " << s.median_trip_m << " m, p90 " << s.p90_trip_m
            << " m\n"
            << "hourly profile (share x100):\n  ";
  for (int h = 0; h < 24; ++h) {
    std::cout << std::setw(5) << std::setprecision(1)
              << 100.0 * s.hourly_share[static_cast<std::size_t>(h)];
    if (h == 11) std::cout << "\n  ";
  }
  std::cout << '\n';

  const geo::Grid grid({{0, 0}, {base_config().field_size_m,
                                 base_config().field_size_m}},
                       base_config().grid_cell_m);
  std::cout << "top OD flows (cell -> cell: trips):\n";
  for (const auto& flow : data::top_od_flows(grid, proj, trips, 5)) {
    std::cout << "  " << flow.from_cell << " -> " << flow.to_cell << ": "
              << flow.count << '\n';
  }
  return 0;
}

int cmd_plan(const std::string& trips_path, const std::string& stations_path) {
  const auto trips = data::load_trips_csv(trips_path);
  const auto proj = projection();
  const geo::Grid grid({{0, 0}, {base_config().field_size_m,
                                 base_config().field_size_m}},
                       base_config().grid_cell_m);
  data::Seconds lo = trips.front().start_time, hi = lo;
  for (const auto& t : trips) {
    lo = std::min(lo, t.start_time);
    hi = std::max(hi, t.start_time);
  }
  const auto sites = data::demand_sites_in_window(grid, proj, trips, lo, hi + 1);
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (const auto& site : sites) {
    clients.push_back({site.location, site.arrivals});
    costs.push_back(10000.0);
  }
  const auto plan =
      solver::jms_greedy(solver::colocated_instance(clients, costs));
  std::vector<core::Station> stations;
  for (std::size_t i : plan.open) {
    stations.push_back({clients[i].location, false, true});
  }
  core::save_stations_csv(stations_path, stations);
  std::cout << "planned " << stations.size() << " parkings (walking "
            << std::fixed << std::setprecision(1)
            << plan.connection_cost / 1000.0 << " km, space "
            << plan.opening_cost / 1000.0 << " km) -> " << stations_path
            << '\n';
  return 0;
}

int cmd_anonymize(const std::string& in_path, const std::string& out_path,
                  double epsilon) {
  const auto trips = data::load_trips_csv(in_path);
  stats::Rng rng(99);
  privacy::AnonymizeConfig cfg;
  cfg.epsilon = epsilon;
  const auto anon = privacy::anonymize_trips(trips, projection(), cfg, rng);
  data::save_trips_csv(out_path, anon);
  std::cout << "anonymized " << anon.size() << " trips (epsilon " << epsilon
            << ", E[noise] "
            << (epsilon > 0 ? privacy::PlanarLaplace(epsilon).expected_displacement()
                            : 0.0)
            << " m) -> " << out_path << '\n';
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  esharing_cli generate <days> <trips.csv>\n"
               "  esharing_cli summarize <trips.csv>\n"
               "  esharing_cli plan <trips.csv> <stations.csv>\n"
               "  esharing_cli anonymize <in.csv> <out.csv> <epsilon>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "generate" && argc == 4) {
      return cmd_generate(std::stoi(argv[2]), argv[3]);
    }
    if (cmd == "summarize" && argc == 3) return cmd_summarize(argv[2]);
    if (cmd == "plan" && argc == 4) return cmd_plan(argv[2], argv[3]);
    if (cmd == "anonymize" && argc == 5) {
      return cmd_anonymize(argv[2], argv[3], std::stod(argv[4]));
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
