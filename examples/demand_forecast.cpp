/// Demand forecasting: the prediction engine in isolation.
///
/// Trains the from-scratch LSTM next to the MA and ARIMA baselines on the
/// synthetic city's hourly weekday demand and prints a 24-hour forecast
/// next to the actual values — the data behind Table II / Fig. 8.
///
/// Build & run:  ./build/examples/demand_forecast

#include <iomanip>
#include <iostream>

#include <memory>
#include <vector>

#include "data/binning.h"
#include "data/synthetic_city.h"
#include "ml/factory.h"

using namespace esharing;

int main() {
  // Hourly city-wide demand over four weeks, weekdays only.
  data::CityConfig ccfg;
  ccfg.num_days = 28;
  data::SyntheticCity city(ccfg, 44);
  const auto trips = city.generate_trips();
  const auto matrix = data::bin_trips(city.grid(), city.projection(), trips,
                                      static_cast<std::size_t>(ccfg.num_days) * 24);
  const auto hourly = matrix.total_per_hour();
  ml::Series weekdays;
  for (int day = 0; day < ccfg.num_days; ++day) {
    if (data::is_weekend(day * data::kSecondsPerDay)) continue;
    for (int h = 0; h < 24; ++h) {
      weekdays.push_back(hourly[static_cast<std::size_t>(day * 24 + h)]);
    }
  }
  const auto [train, test] = ml::split(weekdays, 0.8);
  std::cout << "weekday demand series: " << weekdays.size() << " hours\n";

  // Every model comes out of the same factory; the spec fields a model
  // does not understand are ignored.
  ml::ForecasterSpec spec;
  spec.layers = 2;
  spec.hidden = 24;
  spec.lookback = 12;
  spec.epochs = 25;
  spec.seed = 44;
  spec.ma_window = 3;
  spec.arima_p = 8;
  spec.arima_d = 0;
  std::vector<std::unique_ptr<ml::Forecaster>> models;
  for (const char* name : {"lstm", "ma", "arima"}) {
    models.push_back(ml::make_forecaster(name, spec));
    models.back()->fit(train);
  }
  const ml::Forecaster& lstm = *models.front();

  std::cout << "\nrolling one-step RMSE over the test weeks:\n";
  for (const auto& model : models) {
    std::cout << "  " << std::left << std::setw(24) << model->name()
              << std::right << std::fixed << std::setprecision(1)
              << ml::evaluate_rmse(*model, train, test) << '\n';
  }

  std::cout << "\nnext 24 hours (LSTM vs actual):\n"
            << std::setw(6) << "hour" << std::setw(10) << "actual"
            << std::setw(12) << "forecast" << '\n';
  ml::Series day(test.begin(), test.begin() + 24);
  const auto preds = ml::rolling_predictions(lstm, train, day);
  for (std::size_t h = 0; h < day.size(); ++h) {
    std::cout << std::setw(6) << h << std::setw(10) << std::setprecision(0)
              << day[h] << std::setw(12) << std::setprecision(1) << preds[h]
              << '\n';
  }
  return 0;
}
