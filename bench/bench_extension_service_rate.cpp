/// Extension experiment: customer loss at agent level. The paper motivates
/// PLP with customer loss ("if no station is available nearby to return
/// the E-bike ... she may choose not to buy the service") but never
/// quantifies availability; the micro-simulation does. We sweep fleet size
/// and the rider's walking tolerance and report the service rate, split by
/// loss cause (no bike in reach vs reachable bikes too drained), plus the
/// effect of parallel charging operators on battery-caused losses.

#include <iostream>

#include "bench/util.h"
#include "sim/microsim.h"

using namespace esharing;

namespace {

sim::MicroSimMetrics run_once(std::size_t bikes, double walk_radius,
                              std::size_t operators, std::uint64_t seed) {
  data::CityConfig ccfg;
  ccfg.num_days = 3;
  ccfg.trips_per_weekday = 900;
  ccfg.trips_per_weekend_day = 750;
  ccfg.num_bikes = bikes;
  data::SyntheticCity city(ccfg, seed);
  const auto history = city.generate_trips();
  const auto live = city.generate_trips();

  sim::MicroSimConfig cfg;
  cfg.esharing.placer.ks_period = 0;
  cfg.walk_radius_m = walk_radius;
  cfg.n_operators = operators;
  cfg.esharing.charging_operator.work_seconds = 6.0 * 3600.0;
  sim::MicroSimulation sim(city, cfg, seed ^ 0xabcULL);
  sim.bootstrap(history);
  return sim.run(live);
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_extension_service_rate");
  bench::print_title(
      "Extension -- service rate (1 - customer loss) at agent level");

  std::cout << "\n(a) fleet size (walk radius 400 m, 1 operator)\n"
            << bench::cell("bikes", 8) << bench::cell("served %", 10)
            << bench::cell("no-bike %", 11) << bench::cell("battery %", 11)
            << '\n';
  bench::print_rule(40);
  for (std::size_t bikes : {60, 120, 240, 480}) {
    const auto m = run_once(bikes, 400.0, 1, 91);
    const auto pct = [&](std::size_t n) {
      return 100.0 * static_cast<double>(n) / static_cast<double>(m.demand);
    };
    std::cout << bench::cell(static_cast<double>(bikes), 8, 0)
              << bench::cell(100.0 * m.service_rate(), 10, 1)
              << bench::cell(pct(m.lost_no_bike), 11, 1)
              << bench::cell(pct(m.lost_low_battery), 11, 1) << '\n';
  }

  std::cout << "\n(b) rider walking tolerance (240 bikes, 1 operator)\n"
            << bench::cell("radius m", 10) << bench::cell("served %", 10)
            << '\n';
  bench::print_rule(20);
  for (double radius : {150.0, 300.0, 600.0, 1200.0}) {
    const auto m = run_once(240, radius, 1, 92);
    std::cout << bench::cell(radius, 10, 0)
              << bench::cell(100.0 * m.service_rate(), 10, 1) << '\n';
  }

  std::cout << "\n(c) parallel charging operators (120 bikes, 400 m)\n"
            << bench::cell("operators", 10) << bench::cell("served %", 10)
            << bench::cell("battery %", 11) << '\n';
  bench::print_rule(31);
  for (std::size_t ops : {1, 2, 4}) {
    const auto m = run_once(120, 400.0, ops, 93);
    std::cout << bench::cell(static_cast<double>(ops), 10, 0)
              << bench::cell(100.0 * m.service_rate(), 10, 1)
              << bench::cell(100.0 * static_cast<double>(m.lost_low_battery) /
                                 static_cast<double>(m.demand),
                             11, 1)
              << '\n';
  }

  std::cout << "\nShape: service rate saturates with fleet size (the last\n"
               "doubling buys little), grows with walking tolerance, and\n"
               "battery-caused losses shrink with more charging operators --\n"
               "the availability economics behind the paper's maintenance\n"
               "optimization.\n";
  return 0;
}
