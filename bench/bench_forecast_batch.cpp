/// Batched forecasting runtime bench — the tentpole number behind the
/// ml/batch engine: refresh every modeled cell of a 100x100-cell city's
/// hourly forecast in one fused batched pass and compare against the
/// per-cell scalar forecaster the repo shipped first. The sweep covers
/// cells x hidden x kernel widths; every cell of the table re-checks the
/// determinism contract (forecast_one bit-equals its batch row, widths
/// bit-agree) and the int8 path must stay inside the Table II RMSE
/// envelope of fp32. All four gates drive the exit code, so CI's
/// bench-smoke run fails loudly when the runtime loses either its speedup
/// or its equivalence guarantees.
///
/// The per-cell baseline times the double-precision LstmForecaster on a
/// deterministic subsample of cells and extrapolates linearly to the full
/// city (documented in the output); per-cell inference is embarrassingly
/// parallel with zero shared state, so linear extrapolation is generous to
/// the baseline — the measured speedup is a floor.
///
/// Reduced sizes for CI: ESHARING_FORECAST_BENCH_CELLS caps the largest
/// city swept (default 10000 = the paper's 100x100 grid);
/// ESHARING_FORECAST_BENCH_REPS sets best-of reps (default 3).

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/util.h"
#include "ml/batch.h"
#include "ml/lstm.h"

using namespace esharing;
using ml::Series;

namespace {

constexpr std::size_t kLookback = 12;
constexpr std::size_t kHistoryHours = 48;   // per-cell forecast history
constexpr std::size_t kFitCells = 64;       // pooled series behind one fit
constexpr std::size_t kFitHours = 120;
constexpr std::size_t kBaselineSample = 256;  // per-cell timing subsample

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Diurnal hourly demand with a per-cell phase, amplitude and level —
/// the same family the MlBatch tests fit.
Series cell_series(std::size_t cell, std::size_t hours) {
  Series s(hours);
  const double phase = static_cast<double>(cell) * 1.7;
  const double amp = 4.0 + static_cast<double>(cell % 5);
  const double offset = 10.0 + 3.0 * static_cast<double>(cell % 7);
  for (std::size_t t = 0; t < hours; ++t) {
    s[t] = offset +
           amp * std::sin(2.0 * 3.141592653589793 *
                              static_cast<double>(t % 24) / 24.0 +
                          phase);
  }
  return s;
}

std::vector<Series> city(std::size_t cells, std::size_t hours) {
  std::vector<Series> out;
  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) out.push_back(cell_series(c, hours));
  return out;
}

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn, std::size_t reps) {
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_forecasts(const std::vector<Series>& a, const std::vector<Series>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_forecast_batch");
  const std::size_t max_cells = env_size("ESHARING_FORECAST_BENCH_CELLS", 10000);
  const std::size_t reps = env_size("ESHARING_FORECAST_BENCH_REPS", 3);

  bench::print_title(
      "batched forecasting runtime: fused multi-cell refresh vs per-cell");
  std::cout << "hourly refresh (horizon 1) over every cell; per-cell column is\n"
            << "the double-precision LstmForecaster timed on "
            << kBaselineSample << " cells and\n"
            << "extrapolated linearly (generous to the baseline).\n\n";

  std::vector<std::size_t> cell_sweep;
  if (max_cells > 10) cell_sweep.push_back(max_cells / 10);
  cell_sweep.push_back(max_cells);

  bool all_identical = true;
  bool speedup_ok = false;
  double headline_batch = 0.0;
  double headline_percell = 0.0;

  for (const int hidden : {8, 16}) {
    // One shared-weight fit per hidden size; forecasts reuse it across the
    // cell sweep (histories need not be the fit series).
    ml::batch::BatchRnnConfig cfg;
    cfg.kind = ml::batch::RnnKind::kLstm;
    cfg.layers = 1;
    cfg.hidden = hidden;
    cfg.lookback = kLookback;
    cfg.epochs = 12;
    cfg.seed = 1;
    ml::batch::BatchRnn model(cfg);
    model.fit(city(kFitCells, kFitHours));

    // The per-cell baseline: same shape, double precision, one cell at a
    // time. Fit cost is excluded from both sides — the table times the
    // hourly refresh only.
    ml::LstmConfig scfg;
    scfg.layers = 1;
    scfg.hidden = hidden;
    scfg.lookback = kLookback;
    scfg.epochs = 12;
    scfg.seed = 1;
    ml::LstmForecaster scalar(scfg);
    scalar.fit(cell_series(0, kFitHours));

    std::cout << "hidden " << hidden << " (shared fit over " << kFitCells
              << " cells, " << model.param_count() << " params)\n";
    std::cout << bench::cell("cells", 8) << bench::cell("width", 7)
              << bench::cell("batch ms", 11) << bench::cell("int8 ms", 11)
              << bench::cell("percell ms", 12) << bench::cell("speedup", 9)
              << bench::cell("identical", 11) << '\n';
    bench::print_rule();

    for (const std::size_t cells : cell_sweep) {
      const auto histories = city(cells, kHistoryHours);

      // Per-cell baseline on a subsample, extrapolated.
      const std::size_t sample =
          cells < kBaselineSample ? cells : kBaselineSample;
      double baseline_sink = 0.0;
      const double sample_ms = time_ms(
          [&] {
            for (std::size_t c = 0; c < sample; ++c) {
              baseline_sink += scalar.forecast(histories[c], 1).front();
            }
          },
          reps);
      // Finite-sum sanity doubles as a sink so the loop cannot be elided.
      all_identical = all_identical && std::isfinite(baseline_sink);
      const double percell_ms =
          sample_ms * static_cast<double>(cells) / static_cast<double>(sample);

      // Width sweep: 0 = auto lanes. All widths must agree bitwise.
      const auto ref = model.forecast(histories, 1, /*width=*/1);
      bool widths_identical = true;
      for (const std::size_t width :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
        std::vector<Series> out;
        const double batch_ms =
            time_ms([&] { out = model.forecast(histories, 1, width); }, reps);
        widths_identical = widths_identical && same_forecasts(out, ref);

        std::vector<Series> out_i8;
        const double int8_ms = time_ms(
            [&] {
              out_i8 = model.forecast_with(histories, 1,
                                           ml::batch::Precision::kInt8, width);
            },
            reps);

        // forecast_one must bit-equal its batch row (spot-check the head).
        bool one_identical = true;
        for (std::size_t c = 0; c < (cells < 8 ? cells : 8); ++c) {
          one_identical =
              one_identical && model.forecast_one(histories[c], 1) == out[c];
        }
        const bool identical = widths_identical && one_identical;
        all_identical = all_identical && identical;

        if (hidden == 16 && cells == max_cells && width == 0) {
          headline_batch = batch_ms;
          headline_percell = percell_ms;
          speedup_ok = percell_ms >= 10.0 * batch_ms;
        }
        std::cout << bench::cell(std::to_string(cells), 8)
                  << bench::cell(width == 0 ? "auto" : std::to_string(width), 7)
                  << bench::cell(batch_ms, 11, 3) << bench::cell(int8_ms, 11, 3)
                  << bench::cell(percell_ms, 12, 2)
                  << bench::cell(percell_ms / batch_ms, 9, 1)
                  << bench::cell(identical ? "yes" : "NO", 11) << '\n';
      }
    }
    bench::print_rule();
  }

  // Table II accuracy gate: the int8 path must stay inside the pinned
  // envelope of fp32 on the rolling one-step protocol.
  const Series accuracy = cell_series(2, 200);
  const Series train(accuracy.begin(), accuracy.begin() + 160);
  const Series test(accuracy.begin() + 160, accuracy.end());
  ml::batch::BatchRnnConfig acfg;
  acfg.kind = ml::batch::RnnKind::kLstm;
  acfg.layers = 1;
  acfg.hidden = 12;
  acfg.lookback = kLookback;
  acfg.epochs = 30;
  acfg.seed = 1;
  ml::batch::BatchRnn amodel(acfg);
  amodel.fit({train});
  const double rmse_fp32 =
      ml::batch::batch_rolling_rmse(amodel, train, test,
                                    ml::batch::Precision::kFp32);
  const double rmse_int8 =
      ml::batch::batch_rolling_rmse(amodel, train, test,
                                    ml::batch::Precision::kInt8);
  const bool int8_ok = rmse_int8 <= rmse_fp32 * 1.25 + 0.25;

  std::cout << "\nTable II A/B (rolling one-step RMSE, teacher forcing):\n"
            << "  fp32 " << bench::fmt(rmse_fp32, 4) << "   int8 "
            << bench::fmt(rmse_int8, 4) << "   envelope fp32*1.25+0.25 = "
            << bench::fmt(rmse_fp32 * 1.25 + 0.25, 4)
            << (int8_ok ? "  [ok]\n" : "  [FAIL]\n");

  std::cout << "\nheadline (" << max_cells << " cells, hidden 16, auto width): "
            << bench::fmt(headline_batch, 3) << " ms batched vs "
            << bench::fmt(headline_percell, 2) << " ms per-cell ("
            << bench::fmt(headline_percell / headline_batch, 1) << "x)\n";
  std::cout << (all_identical
                    ? "equivalence: forecast_one and all widths bit-matched\n"
                    : "equivalence: MISMATCH (determinism contract violated)\n");
  std::cout << (speedup_ok ? "speedup gate (>= 10x): passed\n"
                           : "speedup gate (>= 10x): FAILED\n");
  return (all_identical && int8_ok && speedup_ok) ? 0 : 1;
}
