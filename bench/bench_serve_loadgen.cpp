/// Open-loop load generator for the esharing-serve daemon: drives the
/// decide path at increasing offered arrival rates until saturation and
/// reports p50/p99/p999 per stage from obs::Histogram quantiles
/// (EXPERIMENTS.md "Serving saturation").
///
/// Open loop means send times follow the schedule (t_j = j / rate) no
/// matter how slowly responses come back — the honest way to measure a
/// server's latency under load (closed loops self-throttle and hide
/// saturation). A sender thread paces requests on one connection; a reader
/// thread matches responses by the echoed ref token.
///
/// Saturation rule: a stage saturates when achieved throughput drops below
/// 90% of offered or p99 exceeds the budget; the sweep stops after the
/// first saturated stage. Exit code is 0 only when the first stage is
/// clean (all responses received, quantiles monotone, un-saturated) — the
/// bench-smoke gate.
///
///   bench_serve_loadgen [--port N] [--start-rps F] [--growth F]
///                       [--stages N] [--requests N] [--p99-budget-ms F]
///                       [--seed N]
///
/// Without --port an in-process daemon is booted on an ephemeral port;
/// with --port an externally started esharing-serve is driven instead
/// (the serve-smoke CI job does this).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>  // lint-ok: raw-thread loadgen reader blocks on a socket, not compute; the exec pool must stay free for the daemon under test
#include <vector>

#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/workload.h"

using namespace esharing;
using Clock = std::chrono::steady_clock;

namespace {

struct Args {
  std::optional<std::uint16_t> port;
  double start_rps{500.0};
  double growth{2.0};
  std::size_t stages{5};
  std::size_t requests{2000};
  double p99_budget_ms{50.0};
  std::uint64_t seed{17};
};

struct StageResult {
  double offered_rps{0.0};
  double achieved_rps{0.0};
  std::size_t sent{0};
  std::size_t answered{0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  double p999_ms{0.0};
  bool saturated{false};
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--port" && (v = value())) {
      a.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--start-rps" && (v = value())) {
      a.start_rps = std::strtod(v, nullptr);
    } else if (flag == "--growth" && (v = value())) {
      a.growth = std::strtod(v, nullptr);
    } else if (flag == "--stages" && (v = value())) {
      a.stages = std::strtoull(v, nullptr, 10);
    } else if (flag == "--requests" && (v = value())) {
      a.requests = std::strtoull(v, nullptr, 10);
    } else if (flag == "--p99-budget-ms" && (v = value())) {
      a.p99_budget_ms = std::strtod(v, nullptr);
    } else if (flag == "--seed" && (v = value())) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "bench_serve_loadgen: unknown flag %s\n",
                   flag.c_str());
      return false;
    }
  }
  return true;
}

StageResult run_stage(std::uint16_t port, double rate,
                      const std::vector<stream::Event>& events,
                      double p99_budget_ms) {
  StageResult res;
  res.offered_rps = rate;
  const std::size_t n = events.size();

  serve::ServeClient client = serve::ServeClient::connect(port);
  std::vector<std::atomic<std::int64_t>> send_ns(n);
  for (auto& s : send_ns) s.store(0, std::memory_order_relaxed);
  obs::Histogram latency(obs::default_latency_buckets());
  std::atomic<std::size_t> answered{0};
  std::atomic<bool> reader_failed{false};

  // lint-ok: raw-thread the reader must block in recv() concurrently with the send loop; pool lanes stay free for the daemon under test
  std::thread reader([&] {
    try {
      for (std::size_t i = 0; i < n; ++i) {
        const serve::Message reply = client.recv();
        const auto now = Clock::now().time_since_epoch().count();
        if (reply.type != serve::MsgType::kDecision) continue;
        const auto ref = reply.decision.ref;
        if (ref < 0 || static_cast<std::size_t>(ref) >= n) continue;
        const auto sent_at = send_ns[static_cast<std::size_t>(ref)].load(
            std::memory_order_acquire);
        latency.observe(static_cast<double>(now - sent_at) * 1e-9);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (const std::exception&) {
      reader_failed.store(true, std::memory_order_release);
    }
  });

  const auto t0 = Clock::now();
  try {
    for (std::size_t j = 0; j < n; ++j) {
      const auto due =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(static_cast<double>(j) /
                                                 rate));
      std::this_thread::sleep_until(due);
      stream::Event e = events[j];
      e.ref = static_cast<std::int64_t>(j);
      send_ns[j].store(Clock::now().time_since_epoch().count(),
                       std::memory_order_release);
      client.send(serve::encode_decide(e));
      ++res.sent;
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bench_serve_loadgen: send failed: %s\n", ex.what());
  }
  reader.join();
  const std::chrono::duration<double> elapsed = Clock::now() - t0;

  res.answered = answered.load(std::memory_order_relaxed);
  res.achieved_rps =
      elapsed.count() > 0.0
          ? static_cast<double>(res.answered) / elapsed.count()
          : 0.0;
  res.p50_ms = latency.quantile(0.50) * 1e3;
  res.p99_ms = latency.quantile(0.99) * 1e3;
  res.p999_ms = latency.quantile(0.999) * 1e3;
  res.saturated = reader_failed.load(std::memory_order_acquire) ||
                  res.answered < res.sent ||
                  res.achieved_rps < 0.9 * res.offered_rps ||
                  res.p99_ms > p99_budget_ms;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  // The in-process daemon when no --port was given.
  std::optional<core::ESharing> system;
  std::optional<serve::ServeDaemon> daemon;
  std::uint16_t port = 0;
  try {
    if (args.port) {
      port = *args.port;
    } else {
      system.emplace(core::ESharingConfig{}, args.seed);
      const auto ks =
          serve::bootstrap_system(*system, args.seed, 2000, 4000.0);
      serve::ServeConfig cfg;
      daemon.emplace(*system, ks, cfg);
      daemon->start();
      port = daemon->port();
    }

    serve::WorkloadConfig wl;
    wl.seed = args.seed + 1;
    wl.count = args.requests;
    wl.inter_arrival_s = 2.0;
    const auto events = serve::make_workload(wl);

    std::printf("# esharing-serve saturation sweep (port %u, %zu requests "
                "per stage, p99 budget %.1f ms)\n",
                static_cast<unsigned>(port), args.requests,
                args.p99_budget_ms);
    std::printf("%12s %12s %8s %8s %10s %10s %10s  %s\n", "offered_rps",
                "achieved_rps", "sent", "answered", "p50_ms", "p99_ms",
                "p999_ms", "verdict");

    std::vector<StageResult> results;
    double rate = args.start_rps;
    for (std::size_t s = 0; s < args.stages; ++s, rate *= args.growth) {
      const StageResult r =
          run_stage(port, rate, events, args.p99_budget_ms);
      results.push_back(r);
      std::printf("%12.1f %12.1f %8zu %8zu %10.3f %10.3f %10.3f  %s\n",
                  r.offered_rps, r.achieved_rps, r.sent, r.answered,
                  r.p50_ms, r.p99_ms, r.p999_ms,
                  r.saturated ? "SATURATED" : "ok");
      std::fflush(stdout);
      if (r.saturated) break;
    }

    if (daemon) {
      serve::ServeClient ctl = serve::ServeClient::connect(port);
      ctl.shutdown();
      daemon->wait();
    }

    // Gate: the lowest offered rate must be comfortably within capacity
    // and its quantiles must be sane — this is what bench-smoke asserts.
    const StageResult& first = results.front();
    const bool sane = !first.saturated && first.answered == first.sent &&
                      first.p50_ms <= first.p99_ms &&
                      first.p99_ms <= first.p999_ms;
    if (!sane) {
      std::fprintf(stderr,
                   "bench_serve_loadgen: FAILED — first stage saturated or "
                   "quantiles inconsistent\n");
      return 1;
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bench_serve_loadgen: fatal: %s\n", ex.what());
    return 1;
  }
  return 0;
}
