/// Table IV reproduction: Peacock 2-D KS similarity (100*(1-D)%) between
/// the destination distributions of different days of the week, compared at
/// the same hour interval and averaged over 24 hours. The paper's shape:
/// weekday-weekday and weekend-weekend pairs are markedly more similar than
/// weekday-weekend pairs.

#include <array>
#include <iostream>

#include "bench/util.h"
#include "data/binning.h"
#include "data/synthetic_city.h"
#include "stats/ks2d.h"
#include "stats/summary.h"

using namespace esharing;
using geo::Point;

int main() {
  const bench::MetricsSession metrics("bench_table4_ks_similarity");
  bench::print_title(
      "Table IV -- similarity (%) between destination distributions of "
      "days\n(same hour interval, averaged over 24 h)");

  data::CityConfig cfg;
  cfg.num_days = 14;  // 2017-05-10 (Wed) .. 05-23
  cfg.trips_per_weekday = 7000;
  cfg.trips_per_weekend_day = 5600;
  cfg.num_bikes = 400;
  data::SyntheticCity city(cfg, 2017);
  const auto trips = city.generate_trips();

  // First occurrence of each weekday in the dataset (epoch is Wednesday).
  const std::array<std::pair<const char*, int>, 7> days{
      {{"Mon", 5}, {"Tue", 6}, {"Wed", 0}, {"Thu", 1}, {"Fri", 2},
       {"Sat", 3}, {"Sun", 4}}};

  // Pre-extract per-(day, hour) destination samples.
  std::array<std::array<std::vector<Point>, 24>, 7> samples;
  for (std::size_t di = 0; di < days.size(); ++di) {
    for (int h = 0; h < 24; ++h) {
      auto pts = data::destinations_in_window(
          city.projection(), trips,
          days[di].second * data::kSecondsPerDay + h * data::kSecondsPerHour,
          days[di].second * data::kSecondsPerDay +
              (h + 1) * data::kSecondsPerHour);
      if (pts.size() > 400) pts.resize(400);  // cap for the O(n^2) FF statistic
      samples[di][static_cast<std::size_t>(h)] = std::move(pts);
    }
  }

  auto day_similarity = [&](std::size_t a, std::size_t b) {
    stats::Accumulator acc;
    for (int h = 0; h < 24; ++h) {
      const auto& sa = samples[a][static_cast<std::size_t>(h)];
      const auto& sb = samples[b][static_cast<std::size_t>(h)];
      if (sa.size() < 40 || sb.size() < 40) continue;  // dead-of-night hours
      acc.add(stats::ks2d_test(sa, sb, /*peacock_limit=*/0).similarity);
    }
    return acc.count() > 0 ? acc.mean() : 0.0;
  };

  std::cout << bench::cell("", 5);
  for (const auto& [name, day] : days) std::cout << bench::cell(name, 7);
  std::cout << '\n';
  bench::print_rule(56);

  stats::Accumulator within_block, across_block;
  for (std::size_t r = 0; r < days.size(); ++r) {
    std::cout << bench::cell(days[r].first, 5);
    for (std::size_t c = 0; c < days.size(); ++c) {
      if (r == c) {
        std::cout << bench::cell("", 7);
        continue;
      }
      const double sim = day_similarity(r, c);
      std::cout << bench::cell(sim, 7, 1);
      const bool r_weekend = r >= 5;
      const bool c_weekend = c >= 5;
      (r_weekend == c_weekend ? within_block : across_block).add(sim);
    }
    std::cout << '\n';
  }
  bench::print_rule(56);
  std::cout << "mean within-block similarity (wd-wd, we-we): "
            << bench::fmt(within_block.mean(), 1) << "%\n"
            << "mean across-block similarity (wd-we):        "
            << bench::fmt(across_block.mean(), 1) << "%\n"
            << "Paper Table IV: weekdays ~90-97% among themselves, weekends\n"
               "~89% with each other, cross pairs ~58-79%.\n";
  return 0;
}
