#pragma once

/// \file tier2.h
/// Shared tier-two experiment harness for Fig. 11, Fig. 12 and Table VI.
/// Builds a city-scale charging scenario — stations scattered over the
/// field, a fleet with the Fig. 2(d) low-battery tail, a stream of user
/// pickups — runs the incentive phase at a given alpha and then the
/// operator's shift-limited charging round.

#include <cstdint>
#include <vector>

#include "core/charging_ops.h"
#include "core/incentive.h"
#include "energy/battery.h"
#include "geo/point.h"

namespace esharing::bench {

struct Tier2Config {
  std::size_t n_stations{30};
  std::size_t n_bikes{500};
  double field_m{3000.0};
  double alpha{0.4};
  energy::ChargingCostParams costs{};
  /// Shift-limited operator: 300 s setup + 1200 s parallel charging per
  /// stop within a 6 h shift (calibrated so the no-incentive baseline
  /// charges roughly the paper's 42% of low bikes).
  core::OperatorConfig op{5.0, 300.0, 1200.0, 6.0 * 3600.0, {0.0, 0.0}};
  std::size_t n_pickups{700};
  double mileage_slack_m{250.0};
  double user_max_walk_lo_m{100.0};
  double user_max_walk_hi_m{500.0};
  double user_min_reward_lo{0.0};
  double user_min_reward_hi{30.0};
  std::uint64_t seed{1};
};

struct Tier2Result {
  std::vector<core::EnergyStation> before;  ///< station piles pre-incentive
  std::vector<core::EnergyStation> after;   ///< station piles post-incentive
  std::size_t sites_before{0};              ///< stations needing service before
  std::size_t sites_after{0};
  double incentives_paid{0.0};
  std::size_t relocations{0};
  core::ChargingRoundResult round;       ///< shift-limited round on `after`
  core::ChargingRoundResult full_round;  ///< unlimited round on `after`:
                                         ///< the Eq. 10 cost of the whole job

  /// Total maintenance cost of the full charging job plus incentives paid
  /// (the paper's Fig. 12(a) / Table VI accounting; the shift-limited
  /// `round` only determines the percentage charged).
  [[nodiscard]] double total_cost() const {
    return full_round.total_cost(incentives_paid);
  }
};

/// Run one tier-two experiment. Deterministic per config/seed.
[[nodiscard]] Tier2Result run_tier2(const Tier2Config& config);

/// Render station piles as a coarse ASCII heat map (Fig. 11 style).
void print_heatmap(const std::vector<core::EnergyStation>& stations,
                   double field_m, int cells = 15);

}  // namespace esharing::bench
