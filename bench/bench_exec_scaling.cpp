/// Thread-scaling bench for the shared execution runtime (src/exec): the
/// JMS greedy star scan, CostOracle batch row materialization and
/// SpatialIndex batch nearest queries at pool widths 1/2/4/8. Each kernel
/// is bit-identity checked against its single-thread run, so the table
/// doubles as a determinism smoke test: speedup may vary with the host,
/// results may not.
///
/// Numbers are only meaningful relative to the reported hardware
/// concurrency — on a single-core container every width degenerates to
/// ~1x and the interesting signal is the (small) scheduling overhead.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>  // lint-ok: raw-thread hardware_concurrency query only, no spawning
#include <vector>

#include "bench/util.h"
#include "exec/thread_pool.h"
#include "geo/spatial_index.h"
#include "solver/cost_oracle.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"

using namespace esharing;
using geo::Point;

namespace {

constexpr std::size_t kJmsN = 240;         // facilities == clients (n >= 200)
constexpr std::size_t kOracleN = 1200;     // oracle rows x clients
constexpr std::size_t kIndexPoints = 40000;
constexpr std::size_t kQueries = 20000;
constexpr int kReps = 3;                   // best-of reps per cell

std::vector<Point> points(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  return stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n);
}

solver::FlInstance colocated(std::size_t n, std::uint64_t seed) {
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (Point p : points(n, seed)) {
    clients.push_back({p, 1.0});
    costs.push_back(10000.0);
  }
  return solver::colocated_instance(std::move(clients), std::move(costs));
}

/// Best-of-kReps wall time of `fn` in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_exec_scaling");
  bench::print_title("exec runtime scaling: JMS / oracle rows / nearest_batch");
  // lint-ok: raw-thread hardware_concurrency query only; no thread is spawned
  std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency()
            << "  (speedups are bounded by physical cores; outputs are\n"
            << "   checked bit-identical across widths regardless)\n\n";

  const auto jms_inst = colocated(kJmsN, 1);
  const auto oracle_inst = colocated(kOracleN, 2);
  const auto pts = points(kIndexPoints, 3);
  const auto queries = points(kQueries, 4);
  const geo::SpatialIndex index(pts);

  // Single-thread reference outputs for the bit-identity check.
  const auto ref_solution = solver::jms_greedy(jms_inst, {.num_threads = 1});
  const auto ref_nearest = index.nearest_batch(queries, /*width=*/1);
  const solver::CostOracle ref_oracle(oracle_inst);
  ref_oracle.ensure_all_rows(/*width=*/1);

  std::cout << bench::cell("threads", 8) << bench::cell("jms ms", 12)
            << bench::cell("speedup", 9) << bench::cell("oracle ms", 12)
            << bench::cell("speedup", 9) << bench::cell("nearest ms", 12)
            << bench::cell("speedup", 9) << bench::cell("identical", 11)
            << '\n';
  bench::print_rule();

  double jms1 = 0.0;
  double oracle1 = 0.0;
  double nearest1 = 0.0;
  bool all_identical = true;
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    exec::set_global_threads(t);

    solver::FlSolution solution;
    const double jms_ms = time_ms(
        [&] { solution = solver::jms_greedy(jms_inst, {.num_threads = 0}); });

    double oracle_ms = 0.0;
    for (int r = 0; r < kReps; ++r) {
      // Fresh oracle per rep: ensure_all_rows is a one-shot materialization,
      // so best-of must time first touches, not warm no-ops.
      const solver::CostOracle oracle(oracle_inst);
      const auto t0 = std::chrono::steady_clock::now();
      oracle.ensure_all_rows();
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < oracle_ms) oracle_ms = ms;
      if (r == 0) {
        for (std::size_t f = 0; all_identical && f < kOracleN; ++f) {
          all_identical = oracle.row(f) == ref_oracle.row(f);
        }
      }
    }

    std::vector<std::size_t> nearest;
    const double nearest_ms =
        time_ms([&] { nearest = index.nearest_batch(queries); });

    const bool identical = all_identical &&
                           solution.open == ref_solution.open &&
                           solution.assignment == ref_solution.assignment &&
                           solution.connection_cost == ref_solution.connection_cost &&
                           solution.opening_cost == ref_solution.opening_cost &&
                           nearest == ref_nearest;
    all_identical = all_identical && identical;
    if (t == 1) {
      jms1 = jms_ms;
      oracle1 = oracle_ms;
      nearest1 = nearest_ms;
    }
    std::cout << bench::cell(std::to_string(t), 8)
              << bench::cell(jms_ms, 12, 2) << bench::cell(jms1 / jms_ms, 9, 2)
              << bench::cell(oracle_ms, 12, 2)
              << bench::cell(oracle1 / oracle_ms, 9, 2)
              << bench::cell(nearest_ms, 12, 2)
              << bench::cell(nearest1 / nearest_ms, 9, 2)
              << bench::cell(identical ? "yes" : "NO", 11) << '\n';
  }
  bench::print_rule();
  std::cout << (all_identical
                    ? "bit-identity: all widths matched the single-thread run\n"
                    : "bit-identity: MISMATCH (determinism contract violated)\n");
  return all_identical ? 0 : 1;
}
