/// Table III reproduction: cost of the deviation-penalty online algorithm
/// under different request distributions (uniform / Poisson-radial /
/// normal), for each penalty function, averaged over 100 trials of 200
/// requests. The offline-derived parking sits at the origin (the paper's
/// Fig. 9 setup), L = 200 m, and space cost is reported as 2 km per
/// established station in the paper's km units. The isolated single-
/// landmark test uses a fixed opening cost (no beta-doubling) so the
/// penalty shapes alone drive the outcome, mirroring Fig. 9's setup.
///
/// Shape to reproduce (Table III): no-penalty has the lowest walking cost
/// but by far the highest space cost; Type I wins on total for the uniform
/// workload (long tolerance tail), Type III for the mid-range Poisson
/// workload, Type II for the origin-concentrated normal workload.

#include <array>
#include <iostream>

#include "bench/util.h"
#include "core/deviation_placer.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stats/summary.h"

using namespace esharing;
using geo::Point;

namespace {

constexpr double kTolerance = 200.0;
constexpr double kSpaceCostPerStationKm = 2.0;
constexpr double kOpeningCost = 600.0;
constexpr int kTrials = 100;
constexpr std::size_t kRequests = 200;

enum class Workload { kUniform, kPoisson, kNormal };

std::vector<Point> draw(Workload w, stats::Rng& rng) {
  switch (w) {
    case Workload::kUniform:
      return stats::uniform_points(rng, {{-1000, -1000}, {1000, 1000}},
                                   kRequests);
    case Workload::kPoisson:
      return stats::radial_poisson_points(rng, {0, 0}, 100.0, 2.8, kRequests);
    case Workload::kNormal:
      return stats::normal_points(rng, {0, 0}, 100.0, kRequests);
  }
  return {};
}

struct Costs {
  double walking_km{0.0};
  double space_km{0.0};
  [[nodiscard]] double total() const { return walking_km + space_km; }
};

Costs run_once(Workload w, core::PenaltyType type, std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto requests = draw(w, rng);

  core::DeviationPlacerConfig cfg;
  cfg.tolerance = kTolerance;
  cfg.initial_penalty = type;
  cfg.adaptive_type = false;  // Table III pins the penalty per column
  cfg.ks_period = 0;
  cfg.w_star_override = kOpeningCost;  // single landmark at the origin
  cfg.initial_scale_multiplier = 1.0;
  cfg.beta = 1e12;  // fixed f: isolate the penalty shapes
  core::DeviationPenaltyPlacer placer(
      {{0.0, 0.0}}, {}, [](Point) { return 8.0; }, cfg, seed ^ 0xabcdefULL);
  for (Point p : requests) (void)placer.process(p);

  return {placer.total_connection_cost() / 1000.0,
          static_cast<double>(placer.num_active()) * kSpaceCostPerStationKm};
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_table3_penalty_costs");
  bench::print_title(
      "Table III -- cost of penalty functions under uniform / Poisson / "
      "normal\nrequest distributions (km, averaged over 100 trials)");

  const std::array<std::pair<Workload, const char*>, 3> workloads{
      {{Workload::kUniform, "uniform"},
       {Workload::kPoisson, "Poisson"},
       {Workload::kNormal, "normal"}}};
  const std::array<std::pair<core::PenaltyType, const char*>, 4> penalties{
      {{core::PenaltyType::kNone, "NoPenalty"},
       {core::PenaltyType::kTypeI, "TypeI"},
       {core::PenaltyType::kTypeII, "TypeII"},
       {core::PenaltyType::kTypeIII, "TypeIII"}}};

  std::cout << bench::cell("distr.", 9) << bench::cell("cost", 14);
  for (const auto& [ptype, pname] : penalties) {
    std::cout << bench::cell(pname, 11);
  }
  std::cout << '\n';
  bench::print_rule(68);

  for (const auto& [wl, wname] : workloads) {
    std::array<stats::Accumulator, 4> walking, space, total;
    for (int trial = 0; trial < kTrials; ++trial) {
      for (std::size_t pi = 0; pi < penalties.size(); ++pi) {
        const Costs c = run_once(wl, penalties[pi].first,
                                 1000 + static_cast<std::uint64_t>(trial));
        walking[pi].add(c.walking_km);
        space[pi].add(c.space_km);
        total[pi].add(c.total());
      }
    }
    // Minimum-total marker mirrors the paper's bold entries.
    std::size_t best = 0;
    for (std::size_t pi = 1; pi < penalties.size(); ++pi) {
      if (total[pi].mean() < total[best].mean()) best = pi;
    }
    std::cout << bench::cell(wname, 9) << bench::cell("walking", 14);
    for (std::size_t pi = 0; pi < penalties.size(); ++pi) {
      std::cout << bench::cell(walking[pi].mean(), 11, 2);
    }
    std::cout << '\n' << bench::cell("", 9) << bench::cell("public space", 14);
    for (std::size_t pi = 0; pi < penalties.size(); ++pi) {
      std::cout << bench::cell(space[pi].mean(), 11, 2);
    }
    std::cout << '\n' << bench::cell("", 9) << bench::cell("total", 14);
    for (std::size_t pi = 0; pi < penalties.size(); ++pi) {
      std::string s = bench::fmt(total[pi].mean(), 2);
      if (pi == best) s += "*";
      std::cout << bench::cell(s, 11);
    }
    std::cout << "\n";
    bench::print_rule(68);
  }
  std::cout << "* = minimum total cost for the row's distribution.\n"
               "Paper Table III: TypeI wins uniform, TypeIII wins Poisson,\n"
               "TypeII wins normal; NoPenalty always has minimum walking but\n"
               "maximum space cost.\n";
  return 0;
}
