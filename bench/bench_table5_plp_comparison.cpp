/// Table V reproduction: mean number of parkings and cost breakdown (km)
/// across regions for Offline* / Meyerson / Online k-means / E-sharing
/// (actual) / E-sharing (predicted).
///
/// Paper's Table V shape: offline 16 parkings* is the lower bound;
/// E-sharing opens ~25 (23% fewer than Meyerson's ~33, 44% fewer than
/// k-means' ~45); E-sharing total cost is ~25% below Meyerson and ~74%
/// below online k-means, within 20-25% of the offline bound; predictions
/// cost only a few percent extra; average walking distance stays around a
/// 2-minute walk.

#include <array>
#include <iostream>

#include "bench/plp_compare.h"
#include "bench/util.h"
#include "stats/summary.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_table5_plp_comparison");
  bench::print_title("Table V -- comparison of #parking and costs (km)");
  const auto scenarios = bench::make_scenarios(8, 1013);
  std::cout << "regions: " << scenarios.size() << " (values are means)\n\n";

  constexpr std::size_t kMethods = 5;
  std::array<stats::Accumulator, kMethods> parkings, walking, space, total;
  std::array<std::string, kMethods> names;
  double live_requests_total = 0.0;

  for (std::size_t r = 0; r < scenarios.size(); ++r) {
    const auto& s = scenarios[r];
    const std::uint64_t seed = 5000 + r;
    const std::array<bench::MethodResult, kMethods> results{
        bench::run_offline_oracle(s), bench::run_meyerson(s, seed),
        bench::run_online_kmeans(s, seed),
        bench::run_esharing(s, /*predicted=*/false, seed),
        bench::run_esharing(s, /*predicted=*/true, seed)};
    for (std::size_t m = 0; m < kMethods; ++m) {
      names[m] = results[m].method;
      parkings[m].add(results[m].parkings);
      walking[m].add(results[m].walking_km);
      space[m].add(results[m].space_km);
      total[m].add(results[m].total_km());
    }
    live_requests_total += static_cast<double>(s.live_requests.size());
  }

  std::cout << bench::cell("method", 24) << bench::cell("#parking", 10)
            << bench::cell("walking", 10) << bench::cell("space", 10)
            << bench::cell("total", 10) << '\n';
  bench::print_rule(64);
  for (std::size_t m = 0; m < kMethods; ++m) {
    std::cout << bench::cell(names[m] + (m == 0 ? "*" : ""), 24)
              << bench::cell(parkings[m].mean(), 10, 1)
              << bench::cell(walking[m].mean(), 10, 1)
              << bench::cell(space[m].mean(), 10, 1)
              << bench::cell(total[m].mean(), 10, 1) << '\n';
  }
  bench::print_rule(64);

  const double vs_meyerson =
      100.0 * (total[1].mean() - total[3].mean()) / total[1].mean();
  const double vs_kmeans =
      100.0 * (total[2].mean() - total[3].mean()) / total[2].mean();
  const double vs_offline =
      100.0 * (total[3].mean() - total[0].mean()) / total[0].mean();
  const double vs_offline_pred =
      100.0 * (total[4].mean() - total[0].mean()) / total[0].mean();
  const double pred_penalty =
      100.0 * (total[4].mean() - total[3].mean()) / total[3].mean();
  const double avg_walk_m = 1000.0 * walking[3].mean() *
                            static_cast<double>(scenarios.size()) /
                            std::max(live_requests_total, 1.0);

  std::cout << "E-sharing vs Meyerson total:        -"
            << bench::fmt(vs_meyerson, 1) << "%   (paper: -25%)\n"
            << "E-sharing vs online k-means total:  -"
            << bench::fmt(vs_kmeans, 1) << "%   (paper: -74%)\n"
            << "E-sharing (actual) over offline*:   +"
            << bench::fmt(vs_offline, 1) << "%   (paper: within 20%)\n"
            << "E-sharing (predicted) over offline*: +"
            << bench::fmt(vs_offline_pred, 1) << "%  (paper: within 25%)\n"
            << "prediction error cost penalty:      +"
            << bench::fmt(pred_penalty, 1) << "%   (paper: ~6%)\n"
            << "mean walk per E-sharing request:    "
            << bench::fmt(avg_walk_m, 0) << " m  (paper: ~180 m)\n";

  // Offline solver frontier on one region, driven by the unified solver
  // registry: how the offline approximation families compare on the same
  // live demand ("jms" reproduces the Offline* row for region 0).
  if (!scenarios.empty()) {
    std::cout << "\noffline solver frontier (region 0, via solver::solve):\n";
    std::cout << bench::cell("solver", 24) << bench::cell("#parking", 10)
              << bench::cell("walking", 10) << bench::cell("space", 10)
              << bench::cell("total", 10) << '\n';
    bench::print_rule(64);
    for (const char* name : {"jms", "jv"}) {
      const auto res = bench::run_offline_solver(scenarios[0], name);
      std::cout << bench::cell(res.method, 24)
                << bench::cell(res.parkings, 10, 1)
                << bench::cell(res.walking_km, 10, 1)
                << bench::cell(res.space_km, 10, 1)
                << bench::cell(res.total_km(), 10, 1) << '\n';
    }
    bench::print_rule(64);
  }
  return 0;
}
