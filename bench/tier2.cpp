#include "bench/tier2.h"

#include <algorithm>
#include <iostream>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::bench {

using geo::Point;

Tier2Result run_tier2(const Tier2Config& config) {
  stats::Rng rng(config.seed);

  // Stations scattered uniformly over the field (the tier-one output in a
  // real deployment; the exact layout is immaterial for tier two).
  const geo::BoundingBox field{{0, 0}, {config.field_m, config.field_m}};
  const auto locations = stats::uniform_points(rng, field, config.n_stations);

  // Fleet with the low-battery tail; bikes sit at random stations.
  energy::BikeFleet fleet(config.n_bikes, energy::EnergyConfig{},
                          config.seed ^ 0x1234567890abcdefULL);
  std::vector<core::EnergyStation> stations;
  stations.reserve(locations.size());
  for (Point p : locations) stations.push_back({p, {}});
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    if (fleet.is_low(b)) {
      stations[rng.index(stations.size())].low_bikes.push_back(b);
    }
  }

  Tier2Result result;
  result.before = stations;
  for (const auto& s : stations) {
    result.sites_before += s.low_bikes.empty() ? 0 : 1;
  }

  // Incentive phase: users pick up at a random station and ride to another
  // station (their assigned destination parking).
  core::IncentiveConfig icfg;
  icfg.alpha = config.alpha;
  icfg.costs = config.costs;
  icfg.mileage_slack_m = config.mileage_slack_m;
  // Bound the offer's delay term by what one shift can actually serve.
  const double per_stop_s = config.op.stop_overhead_s + config.op.charge_time_s;
  icfg.max_sequence_position = static_cast<std::size_t>(
      std::max(1.0, config.op.work_seconds / std::max(per_stop_s, 1.0)));
  core::IncentiveMechanism mech(stations, icfg);
  for (std::size_t i = 0; i < config.n_pickups; ++i) {
    const std::size_t at = rng.index(config.n_stations);
    std::size_t to = rng.index(config.n_stations);
    if (to == at) to = (to + 1) % config.n_stations;
    const core::UserBehavior user{
        rng.uniform(config.user_max_walk_lo_m, config.user_max_walk_hi_m),
        rng.uniform(config.user_min_reward_lo, config.user_min_reward_hi)};
    const auto offer = mech.handle_pickup(
        at, locations[to], user,
        [&fleet](std::size_t bike, double dist) {
          return fleet.can_ride(bike, dist);
        });
    if (offer.accepted) fleet.ride(offer.bike, offer.ride_m);
  }

  result.after = mech.stations();
  for (const auto& s : result.after) {
    result.sites_after += s.low_bikes.empty() ? 0 : 1;
  }
  result.incentives_paid = mech.total_incentives_paid();
  result.relocations = mech.relocations();
  result.round = core::run_charging_round(result.after, config.costs, config.op);
  core::OperatorConfig unlimited = config.op;
  unlimited.work_seconds = 1e12;
  result.full_round =
      core::run_charging_round(result.after, config.costs, unlimited);
  return result;
}

void print_heatmap(const std::vector<core::EnergyStation>& stations,
                   double field_m, int cells) {
  std::vector<std::vector<std::size_t>> grid(
      static_cast<std::size_t>(cells),
      std::vector<std::size_t>(static_cast<std::size_t>(cells), 0));
  for (const auto& s : stations) {
    const auto cx = std::clamp(
        static_cast<int>(s.location.x / field_m * cells), 0, cells - 1);
    const auto cy = std::clamp(
        static_cast<int>(s.location.y / field_m * cells), 0, cells - 1);
    grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] +=
        s.low_bikes.size();
  }
  const char shades[] = " .:-=+*#%@";
  for (int row = cells - 1; row >= 0; --row) {
    std::cout << "    ";
    for (int col = 0; col < cells; ++col) {
      const std::size_t v =
          grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      std::cout << shades[std::min<std::size_t>(v, 9)];
    }
    std::cout << '\n';
  }
}

}  // namespace esharing::bench
