/// \file bench_stream_throughput.cpp
/// Shard-scaling of the esharing::stream serving pipeline: one synthetic
/// trip-event log is replayed through a stream::Pipeline at increasing
/// shard counts and the end-to-end event rate is measured.
///
/// The dominant recurring cost of the serving path is the 2-D KS regime
/// check (Algorithm 2 step 9): Fasano–Franceschini is O(n*m + n^2 + m^2) in
/// the window size n and reference size m. Sharding routes each grid cell
/// to exactly one shard, so both the shard window and the shard's slice of
/// the historical reference hold ~1/S of the points — every check gets
/// ~S^2 cheaper while the checked coverage stays identical (the stratified
/// analogue of the paper's Table IV per-region blocks). The speedup below
/// is therefore algorithmic, not parallelism: the replay runs with
/// lanes = 1 and the numbers hold on a single core (bench_stream_metro
/// covers the parallel lanes).
///
/// Two sweeps are printed: the legacy exact-KS configuration
/// (ks_peacock_limit = 400, the pre-fix default) that pays the O((n+m)^3)
/// Peacock path once shard windows shrink below the limit — the "8-shard
/// cliff" — and the current default (always Fasano–Franeschini), which
/// restores monotone scaling.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/util.h"
#include "core/esharing.h"
#include "data/binning.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stream/pipeline.h"

namespace {

using esharing::geo::Point;
namespace stream = esharing::stream;

constexpr int kEvents = 3000;
constexpr std::size_t kHistorySample = 1500;
constexpr double kAreaM = 6000.0;

std::vector<esharing::data::DemandSite> demand_sites(esharing::stats::Rng& rng) {
  std::vector<esharing::data::DemandSite> sites;
  for (std::size_t i = 0; i < 40; ++i) {
    sites.push_back({{rng.uniform(0.0, kAreaM), rng.uniform(0.0, kAreaM)},
                     rng.uniform(2.0, 12.0),
                     i});
  }
  return sites;
}

std::vector<stream::Event> event_log(esharing::stats::Rng& rng) {
  std::vector<stream::Event> log;
  log.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    stream::Event e;
    e.kind = stream::EventKind::kTripEnd;
    e.time = static_cast<esharing::data::Seconds>(i) * 30;
    e.where = {rng.uniform(0.0, kAreaM), rng.uniform(0.0, kAreaM)};
    log.push_back(e);
    if (i % 25 == 7) {
      stream::Event b;
      b.kind = stream::EventKind::kBatteryLevel;
      b.time = e.time + 1;
      b.where = e.where;
      b.bike_id = i % 200;
      b.soc = rng.uniform(0.05, 0.95);
      log.push_back(b);
    }
  }
  return log;
}

struct RunResult {
  double elapsed_ms{0.0};
  double events_per_s{0.0};
  std::uint64_t regime_checks{0};
  std::size_t stations{0};
};

RunResult run_shards(std::size_t shards, std::size_t peacock_limit,
                     const std::vector<stream::Event>& log,
                     const std::vector<Point>& history) {
  esharing::core::ESharingConfig cfg;
  cfg.placer.ks_period = 0;  // the stream-side check replaces the full rescan
  cfg.placer.adaptive_type = false;
  esharing::core::ESharing system(cfg, 17);
  esharing::stats::Rng rng(17);
  auto sites = demand_sites(rng);
  (void)system.plan_offline(sites, [](Point) { return 4000.0; });
  system.start_online(history);

  stream::PipelineConfig pipe_cfg;
  pipe_cfg.bus.shard_count = shards;
  pipe_cfg.bus.queue_capacity = 512;
  pipe_cfg.bus.max_batch = 128;
  pipe_cfg.placer.state.window_length = 200000;  // window spans the whole log
  pipe_cfg.placer.regime_check_period = 128;
  pipe_cfg.placer.regime_min_samples = 16;
  pipe_cfg.placer.ks_peacock_limit = peacock_limit;
  pipe_cfg.lanes = 1;  // single-threaded: the scaling here is algorithmic
  stream::Pipeline pipeline(system, history, pipe_cfg);

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = pipeline.replay(log);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events_per_s = static_cast<double>(result.consumed) /
                     (out.elapsed_ms / 1000.0);
  const auto& driver = pipeline.placer_driver();
  for (std::size_t s = 0; s < driver.shard_count(); ++s) {
    out.regime_checks += driver.shard_regime(s).checks;
  }
  out.stations = system.placer().active_locations().size();
  return out;
}

void sweep(const std::string& title, std::size_t peacock_limit,
           const std::vector<stream::Event>& log,
           const std::vector<Point>& history) {
  using esharing::bench::cell;
  using esharing::bench::fmt;
  esharing::bench::print_title(title);
  std::cout << cell("shards", 8) << cell("elapsed ms", 12)
            << cell("events/s", 12) << cell("speedup", 10)
            << cell("KS checks", 11) << cell("stations", 10) << '\n';
  esharing::bench::print_rule(63);
  double base_rate = 0.0;
  for (std::size_t shards : {1, 2, 4, 8}) {
    const RunResult r = run_shards(shards, peacock_limit, log, history);
    if (shards == 1) base_rate = r.events_per_s;
    std::cout << cell(static_cast<double>(shards), 8, 0)
              << cell(r.elapsed_ms, 12, 1)
              << cell(r.events_per_s, 12, 0)
              << cell(fmt(r.events_per_s / base_rate, 2) + "x", 10)
              << cell(static_cast<double>(r.regime_checks), 11, 0)
              << cell(static_cast<double>(r.stations), 10, 0) << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  esharing::bench::MetricsSession metrics("bench_stream_throughput");

  esharing::stats::Rng rng(99);
  const auto log = event_log(rng);
  const auto history = esharing::stats::uniform_points(
      rng, {{0.0, 0.0}, {kAreaM, kAreaM}}, kHistorySample);

  sweep("esharing::stream shard scaling, legacy exact-KS path "
        "(ks_peacock_limit = 400) — " + std::to_string(log.size()) +
            " events",
        400, log, history);
  sweep("esharing::stream shard scaling, default FF-only path "
        "(ks_peacock_limit = 0) — " + std::to_string(log.size()) +
            " events",
        0, log, history);

  std::cout << "Each grid cell lives in exactly one shard, so shard "
               "windows and reference\nslices hold ~1/S of the points: the "
               "O(n^2) Fasano-Franceschini check gets\n~S^2 cheaper per "
               "shard while total coverage is unchanged. The legacy table\n"
               "shows the 8-shard cliff: windows below the exact-KS limit "
               "trip the\nO((n+m)^3) Peacock path; the default keeps "
               "Fasano-Franceschini at every\nsize and scaling stays "
               "monotone.\n";
  return 0;
}
