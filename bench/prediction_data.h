#pragma once

/// \file prediction_data.h
/// Shared demand-series construction for the prediction benches (Table II,
/// Fig. 8). Builds the synthetic city, bins trips into hourly arrival
/// counts and extracts weekday-only / weekend-only series, mirroring the
/// paper's protocol ("weekdays are split as 7 days for training and 3 days
/// for testing; weekends are split as 3 days for training and 1 day for
/// testing" — scaled up on our longer synthetic horizon).

#include <utility>
#include <vector>

#include "data/binning.h"
#include "data/synthetic_city.h"
#include "ml/series.h"

namespace esharing::bench {

struct DemandSeries {
  ml::Series weekday;  ///< concatenated hourly counts of weekday days
  ml::Series weekend;  ///< concatenated hourly counts of weekend days
};

/// Generate `days` days of city demand and split per-hour totals by day
/// type.
inline DemandSeries make_demand_series(int days = 28, std::uint64_t seed = 2017) {
  data::CityConfig cfg;
  cfg.num_days = days;
  cfg.trips_per_weekday = 2000;
  cfg.trips_per_weekend_day = 1600;
  cfg.num_bikes = 400;
  data::SyntheticCity city(cfg, seed);
  const auto trips = city.generate_trips();
  const auto grid = city.grid();
  const auto matrix = data::bin_trips(grid, city.projection(), trips,
                                      static_cast<std::size_t>(days) * 24);
  const auto hourly = matrix.total_per_hour();

  DemandSeries out;
  for (int day = 0; day < days; ++day) {
    auto& dst = data::is_weekend(day * data::kSecondsPerDay) ? out.weekend
                                                             : out.weekday;
    for (int h = 0; h < 24; ++h) {
      dst.push_back(hourly[static_cast<std::size_t>(day * 24 + h)]);
    }
  }
  return out;
}

}  // namespace esharing::bench
