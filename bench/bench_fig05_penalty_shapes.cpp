/// Fig. 5 reproduction: the three penalty functions (Eq. 6-8) and their
/// first derivatives over walking cost c in [0, 3L], L = 200 m. The series
/// reproduce the figure's shape: Type II plunges linearly to zero at L;
/// Type I declines mildly and keeps probability > 0.2 beyond 3L; Type III
/// sits between the two.

#include <iostream>

#include "bench/util.h"
#include "core/penalty.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig05_penalty_shapes");
  const double L = 200.0;
  const auto g1 = core::PenaltyFunction::type1(L);
  const auto g2 = core::PenaltyFunction::type2(L);
  const auto g3 = core::PenaltyFunction::type3(L);

  bench::print_title("Fig. 5(a) -- penalty functions g(c), L = 200 m");
  std::cout << bench::cell("c [m]", 8) << bench::cell("TypeI", 10)
            << bench::cell("TypeII", 10) << bench::cell("TypeIII", 10)
            << '\n';
  bench::print_rule(40);
  for (double c = 0.0; c <= 3.0 * L + 1e-9; c += 50.0) {
    std::cout << bench::cell(c, 8, 0) << bench::cell(g1(c), 10, 4)
              << bench::cell(g2(c), 10, 4) << bench::cell(g3(c), 10, 4)
              << '\n';
  }

  bench::print_title("Fig. 5(b) -- first derivatives dg/dc  [1/m]");
  std::cout << bench::cell("c [m]", 8) << bench::cell("TypeI", 12)
            << bench::cell("TypeII", 12) << bench::cell("TypeIII", 12)
            << '\n';
  bench::print_rule(46);
  for (double c = 0.0; c <= 3.0 * L + 1e-9; c += 50.0) {
    std::cout << bench::cell(c, 8, 0) << bench::cell(g1.derivative(c), 12, 6)
              << bench::cell(g2.derivative(c), 12, 6)
              << bench::cell(g3.derivative(c), 12, 6) << '\n';
  }

  std::cout << "\nShape checks: TypeII hits 0 at c = L = " << L
            << "; TypeI(3L) = " << bench::fmt(g1(3 * L), 3)
            << " (> 0.2, long tail); TypeIII between the two.\n";
  return 0;
}
