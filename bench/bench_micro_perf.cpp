/// Micro-benchmarks (google-benchmark) of the computational kernels: the
/// JMS offline solver (the paper's O(N^3) Algorithm 1), the two KS-test
/// variants (Peacock O(n^3)-family vs Fasano-Franceschini O(n^2)), the
/// online placers' per-request latency, TSP routing and one LSTM training
/// sample. These establish that the online path is micro-second scale per
/// request, i.e. deployable on a live request stream.

#include <benchmark/benchmark.h>

#include "bench/util.h"
#include "core/deviation_placer.h"
#include "geo/spatial_index.h"
#include "ml/lstm.h"
#include "solver/jms_greedy.h"
#include "solver/meyerson.h"
#include "solver/reference.h"
#include "solver/tsp.h"
#include "stats/ks2d.h"
#include "stats/rng.h"
#include "stats/spatial.h"

using namespace esharing;
using geo::Point;

namespace {

std::vector<Point> points(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  return stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n);
}

solver::FlInstance colocated(std::size_t n, std::uint64_t seed) {
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (Point p : points(n, seed)) {
    clients.push_back({p, 1.0});
    costs.push_back(10000.0);
  }
  return solver::colocated_instance(std::move(clients), std::move(costs));
}

void BM_JmsGreedy(benchmark::State& state) {
  const auto inst = colocated(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::jms_greedy(inst));
  }
}
BENCHMARK(BM_JmsGreedy)->Arg(50)->Arg(100)->Arg(200);

/// The frozen pre-oracle JMS (per-iteration cost recompute + full re-sort)
/// against the oracle-backed production solver above — same instances, so
/// the ratio is the refactor's speedup.
void BM_JmsGreedyReference(benchmark::State& state) {
  const auto inst = colocated(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::reference::jms_greedy(inst));
  }
}
BENCHMARK(BM_JmsGreedyReference)->Arg(50)->Arg(100)->Arg(200);

/// Nearest-neighbor queries: the old linear scan (geo::nearest_index) vs
/// the grid-bucket SpatialIndex, over identical point sets and queries.
void BM_NearestLinear(benchmark::State& state) {
  const auto pts = points(static_cast<std::size_t>(state.range(0)), 21);
  const auto queries = points(1024, 22);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::nearest_index(pts, queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_NearestLinear)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NearestIndexed(benchmark::State& state) {
  const auto pts = points(static_cast<std::size_t>(state.range(0)), 21);
  const auto queries = points(1024, 22);
  const geo::SpatialIndex index(pts);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_NearestIndexed)->Arg(1000)->Arg(10000)->Arg(100000);

/// One-off cost of building the index (amortized over the queries above).
void BM_SpatialIndexBuild(benchmark::State& state) {
  const auto pts = points(static_cast<std::size_t>(state.range(0)), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::SpatialIndex(pts));
  }
}
BENCHMARK(BM_SpatialIndexBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PeacockKs(benchmark::State& state) {
  const auto a = points(static_cast<std::size_t>(state.range(0)), 2);
  const auto b = points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::peacock_statistic(a, b));
  }
}
BENCHMARK(BM_PeacockKs)->Arg(50)->Arg(100)->Arg(200);

void BM_FasanoFranceschiniKs(benchmark::State& state) {
  const auto a = points(static_cast<std::size_t>(state.range(0)), 2);
  const auto b = points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fasano_franceschini_statistic(a, b));
  }
}
BENCHMARK(BM_FasanoFranceschiniKs)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_MeyersonPerRequest(benchmark::State& state) {
  const auto pts = points(100000, 4);
  solver::MeyersonPlacer placer(10000.0, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.process(pts[i++ % pts.size()]));
  }
}
BENCHMARK(BM_MeyersonPerRequest);

void BM_DeviationPlacerPerRequest(benchmark::State& state) {
  const auto landmarks = points(20, 6);
  const auto history = points(300, 7);
  core::DeviationPlacerConfig cfg;
  cfg.ks_period = 200;
  core::DeviationPenaltyPlacer placer(landmarks, history,
                                      [](Point) { return 10000.0; }, cfg, 8);
  const auto pts = points(100000, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placer.process(pts[i++ % pts.size()]));
  }
}
BENCHMARK(BM_DeviationPlacerPerRequest);

void BM_TspHeuristic(benchmark::State& state) {
  const auto sites = points(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver::tsp_two_opt(sites, solver::tsp_nearest_neighbor(sites)));
  }
}
BENCHMARK(BM_TspHeuristic)->Arg(20)->Arg(50);

void BM_LstmTrainingSample(benchmark::State& state) {
  ml::LstmConfig cfg;
  cfg.layers = 2;
  cfg.hidden = 24;
  cfg.lookback = 12;
  ml::LstmForecaster lstm(cfg);
  stats::Rng rng(11);
  ml::Window w;
  for (std::size_t i = 0; i < cfg.lookback; ++i) {
    w.input.push_back(rng.uniform(-1, 1));
  }
  w.target = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.sample_gradient(w));
  }
}
BENCHMARK(BM_LstmTrainingSample);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the run is wrapped in a MetricsSession:
// kernels execute with the obs layer enabled (ESHARING_METRICS=0 reverts to
// the disabled baseline for overhead A/B runs) and the session drops
// bench_micro_perf.metrics.json on exit.
int main(int argc, char** argv) {
  const esharing::bench::MetricsSession metrics("bench_micro_perf");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
