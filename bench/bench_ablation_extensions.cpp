/// Extension experiments beyond the paper's evaluation:
///  (a) the polynomial penalty (the paper's stated future work: "design
///      the penalty function as high-order polynomials to approximate an
///      incoming distribution") against Types I-III on the Table III
///      workloads;
///  (b) GRU vs LSTM vs the statistical baselines on hourly demand — the
///      framework "can be integrated with any prediction engine";
///  (c) placement quality vs location-privacy budget: the offline plan is
///      computed on planar-Laplace-obfuscated destinations (Section II's
///      differential-privacy option) and evaluated on the true demand.

#include <array>
#include <iostream>

#include "bench/prediction_data.h"
#include "bench/util.h"
#include "core/deviation_placer.h"
#include "geo/spatial_index.h"
#include "ml/gru.h"
#include "ml/lstm.h"
#include "ml/moving_average.h"
#include "ml/seasonal_naive.h"
#include "privacy/privacy.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"

using namespace esharing;
using geo::Point;



int main() {
  const bench::MetricsSession metrics("bench_ablation_extensions");
  bench::print_title("Extensions -- polynomial penalty, GRU engine, privacy");

  // --- (a) polynomial penalty --------------------------------------------
  // A quadratic bump g(c) = clamp(a0 + a1 (c/L) + a2 (c/L)^2) can be fitted
  // to tolerate a mid-range band — the regime where Type III wins Table
  // III. We compare the shapes pointwise and report band coverage.
  std::cout << "\n(a) polynomial penalty vs built-ins (L = 200 m)\n";
  const double L = 200.0;
  const auto poly = core::PenaltyFunction::polynomial(L, {1.0, 0.4, -0.55});
  const auto g1 = core::PenaltyFunction::type1(L);
  const auto g2 = core::PenaltyFunction::type2(L);
  const auto g3 = core::PenaltyFunction::type3(L);
  std::cout << bench::cell("c [m]", 8) << bench::cell("TypeI", 9)
            << bench::cell("TypeII", 9) << bench::cell("TypeIII", 9)
            << bench::cell("poly", 9) << '\n';
  bench::print_rule(44);
  for (double c = 0.0; c <= 500.0 + 1e-9; c += 100.0) {
    std::cout << bench::cell(c, 8, 0) << bench::cell(g1(c), 9, 3)
              << bench::cell(g2(c), 9, 3) << bench::cell(g3(c), 9, 3)
              << bench::cell(poly(c), 9, 3) << '\n';
  }
  std::cout << "The fitted quadratic keeps g high through the mid-range band"
            << "\n(~1-1.5 L) where Type II is already 0 and Type III decays,"
            << "\nthen cuts off — the shape the paper's future work asks for.\n";

  // --- (b) GRU vs LSTM ------------------------------------------------------
  std::cout << "\n(b) alternative prediction engines (hourly weekday demand)\n";
  const auto series = bench::make_demand_series(28, 2017);
  const auto [train, test] = ml::split(series.weekday, 0.75);
  std::cout << bench::cell("model", 26) << bench::cell("RMSE", 10) << '\n';
  bench::print_rule(36);
  {
    ml::LstmConfig cfg;
    cfg.layers = 2;
    cfg.hidden = 24;
    cfg.lookback = 12;
    cfg.epochs = 15;
    cfg.seed = 42;
    ml::LstmForecaster lstm(cfg);
    lstm.fit(train);
    std::cout << bench::cell(lstm.name(), 26)
              << bench::cell(ml::evaluate_rmse(lstm, train, test), 10, 1)
              << '\n';
  }
  {
    ml::GruConfig cfg;
    cfg.layers = 2;
    cfg.hidden = 24;
    cfg.lookback = 12;
    cfg.epochs = 15;
    cfg.seed = 42;
    ml::GruForecaster gru(cfg);
    gru.fit(train);
    std::cout << bench::cell(gru.name(), 26)
              << bench::cell(ml::evaluate_rmse(gru, train, test), 10, 1)
              << '\n';
  }
  {
    ml::SeasonalNaiveForecaster sn(24);
    sn.fit(train);
    std::cout << bench::cell(sn.name(), 26)
              << bench::cell(ml::evaluate_rmse(sn, train, test), 10, 1)
              << '\n';
  }
  {
    ml::MovingAverageForecaster ma(1);
    ma.fit(train);
    std::cout << bench::cell(ma.name(), 26)
              << bench::cell(ml::evaluate_rmse(ma, train, test), 10, 1)
              << '\n';
  }

  // --- (c) privacy vs planning quality ---------------------------------------
  std::cout << "\n(c) offline plan computed on obfuscated demand, evaluated "
               "on true demand\n";
  std::cout << bench::cell("epsilon", 10) << bench::cell("E[noise] m", 12)
            << bench::cell("cost vs exact", 14) << '\n';
  bench::print_rule(36);
  stats::Rng rng(11);
  const auto true_pts = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 250);
  const double f = 10000.0;
  auto plan_cost_on_true = [&](const std::vector<Point>& observed) {
    std::vector<solver::FlClient> clients;
    std::vector<double> costs;
    for (Point p : observed) {
      clients.push_back({p, 1.0});
      costs.push_back(f);
    }
    const auto plan =
        solver::jms_greedy(solver::colocated_instance(clients, costs));
    std::vector<Point> open;
    for (std::size_t i : plan.open) open.push_back(observed[i]);
    const geo::SpatialIndex open_index(open);
    double walking = 0.0;
    for (Point p : true_pts) {
      walking += geo::distance(open[open_index.nearest(p)], p);
    }
    return walking + static_cast<double>(open.size()) * f;
  };
  const double exact_cost = plan_cost_on_true(true_pts);
  for (double eps : {0.1, 0.02, 0.01, 0.005, 0.002}) {
    privacy::PlanarLaplace mech(eps);
    stats::Rng noise_rng(12);
    std::vector<Point> observed;
    observed.reserve(true_pts.size());
    for (Point p : true_pts) observed.push_back(mech.obfuscate(p, noise_rng));
    const double cost = plan_cost_on_true(observed);
    const double pct = 100.0 * (cost - exact_cost) / exact_cost;
    std::cout << bench::cell(eps, 10, 3)
              << bench::cell(mech.expected_displacement(), 12, 0)
              << bench::cell(std::string(pct >= 0 ? "+" : "") + bench::fmt(pct, 1) + "%",
                             14)
              << '\n';
  }
  std::cout << "\nModerate geo-indistinguishability (noise well under the\n"
               "inter-station spacing) costs little placement quality; the\n"
               "degradation grows once the noise reaches station spacing.\n";
  return 0;
}
