/// Fig. 10 reproduction: total PLP cost (Eq. 1) vs number of parking
/// locations, one point per randomly selected city region, for the offline
/// oracle, Meyerson, online k-means and E-sharing with actual / predicted
/// guidance. The paper's shape: E-sharing sits close to the offline
/// frontier; Meyerson opens more stations at higher cost; online k-means
/// opens the most at the highest cost; predictions add only a small bias.

#include <iostream>

#include "bench/plp_compare.h"
#include "bench/util.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig10_cost_vs_parking");
  bench::print_title(
      "Fig. 10 -- total cost vs #parking per region (a: actual, b: "
      "predicted)");
  const auto scenarios = bench::make_scenarios(12, 1013);
  std::cout << "regions: " << scenarios.size() << "\n\n";

  std::cout << "(a) actual requests\n";
  std::cout << bench::cell("region", 8) << bench::cell("method", 24)
            << bench::cell("#parking", 10) << bench::cell("total [km]", 12)
            << '\n';
  bench::print_rule(54);
  for (std::size_t r = 0; r < scenarios.size(); ++r) {
    const auto& s = scenarios[r];
    const std::uint64_t seed = 7000 + r;
    for (const auto& result :
         {bench::run_offline_oracle(s), bench::run_meyerson(s, seed),
          bench::run_online_kmeans(s, seed),
          bench::run_esharing(s, /*predicted=*/false, seed)}) {
      std::cout << bench::cell(static_cast<double>(r), 8, 0)
                << bench::cell(result.method, 24)
                << bench::cell(result.parkings, 10, 0)
                << bench::cell(result.total_km(), 12, 1) << '\n';
    }
  }

  std::cout << "\n(b) predicted requests (online k-means omitted as in the "
               "paper)\n";
  std::cout << bench::cell("region", 8) << bench::cell("method", 24)
            << bench::cell("#parking", 10) << bench::cell("total [km]", 12)
            << '\n';
  bench::print_rule(54);
  for (std::size_t r = 0; r < scenarios.size(); ++r) {
    const auto& s = scenarios[r];
    const std::uint64_t seed = 9000 + r;
    for (const auto& result :
         {bench::run_offline_oracle(s), bench::run_meyerson(s, seed),
          bench::run_esharing(s, /*predicted=*/true, seed)}) {
      std::cout << bench::cell(static_cast<double>(r), 8, 0)
                << bench::cell(result.method, 24)
                << bench::cell(result.parkings, 10, 0)
                << bench::cell(result.total_km(), 12, 1) << '\n';
    }
  }
  std::cout << "\nShape: E-sharing tracks the offline frontier; Meyerson and\n"
               "especially online k-means open more stations at higher cost.\n";
  return 0;
}
