/// Table II reproduction: rolling one-step RMSE of the prediction engine on
/// hourly weekday demand — LSTM (1-3 layers x lookback 24/12/6/3/1) vs
/// Moving Average (window 1..5) vs ARIMA (p in {2,4,6,8,10}, d in {0,1,2}).
///
/// The paper's shape to reproduce: the LSTM family beats the statistical
/// baselines (~30% RMSE improvement), a mid-depth/mid-lookback LSTM is
/// best (2-layer, back=12 in the paper), back=1 is the worst LSTM setting,
/// and MA degrades as the window grows. Absolute RMSE differs because the
/// workload is synthetic.

#include <iostream>
#include <limits>

#include "bench/prediction_data.h"
#include "bench/util.h"
#include "ml/factory.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_table2_prediction_rmse");
  bench::print_title(
      "Table II -- RMSE of prediction algorithms on hourly weekday demand");
  const auto series = bench::make_demand_series(28, 2017);
  const auto [train, test] = ml::split(series.weekday, 0.75);
  std::cout << "weekday series: " << series.weekday.size() << " hours ("
            << train.size() << " train / " << test.size() << " test)\n\n";

  double best_rmse = std::numeric_limits<double>::infinity();
  std::string best_name;
  const auto record = [&](const std::string& name, double rmse) {
    if (rmse < best_rmse) {
      best_rmse = rmse;
      best_name = name;
    }
  };

  // --- LSTM ---------------------------------------------------------------
  const int backs[] = {24, 12, 6, 3, 1};
  std::cout << bench::cell("LSTM", 8);
  for (int b : backs) std::cout << bench::cell("back=" + std::to_string(b), 10);
  std::cout << '\n';
  bench::print_rule(58);
  double lstm_best = std::numeric_limits<double>::infinity();
  for (int layers = 1; layers <= 3; ++layers) {
    std::cout << bench::cell(std::to_string(layers) + "-layer", 8);
    for (int back : backs) {
      ml::ForecasterSpec spec;
      spec.layers = layers;
      spec.hidden = 24;
      spec.lookback = static_cast<std::size_t>(back);
      spec.epochs = 15;
      spec.seed = 42 + static_cast<std::uint64_t>(layers * 100 + back);
      const auto lstm = ml::make_forecaster("lstm", spec);
      lstm->fit(train);
      const double rmse = ml::evaluate_rmse(*lstm, train, test);
      lstm_best = std::min(lstm_best, rmse);
      record(lstm->name(), rmse);
      std::cout << bench::cell(rmse, 10, 1) << std::flush;
    }
    std::cout << '\n';
  }

  // --- Moving Average ------------------------------------------------------
  std::cout << '\n' << bench::cell("MA", 8);
  for (int wz = 1; wz <= 5; ++wz) {
    std::cout << bench::cell("wz=" + std::to_string(wz), 10);
  }
  std::cout << '\n';
  bench::print_rule(58);
  std::cout << bench::cell("", 8);
  double ma_best = std::numeric_limits<double>::infinity();
  for (int wz = 1; wz <= 5; ++wz) {
    ml::ForecasterSpec spec;
    spec.ma_window = static_cast<std::size_t>(wz);
    const auto ma = ml::make_forecaster("ma", spec);
    ma->fit(train);
    const double rmse = ml::evaluate_rmse(*ma, train, test);
    ma_best = std::min(ma_best, rmse);
    record(ma->name(), rmse);
    std::cout << bench::cell(rmse, 10, 1);
  }
  std::cout << '\n';

  // --- ARIMA ----------------------------------------------------------------
  std::cout << '\n' << bench::cell("ARIMA", 8);
  for (int p = 2; p <= 10; p += 2) {
    std::cout << bench::cell("p=" + std::to_string(p), 10);
  }
  std::cout << '\n';
  bench::print_rule(58);
  double arima_best = std::numeric_limits<double>::infinity();
  for (int d = 0; d <= 2; ++d) {
    std::cout << bench::cell("d=" + std::to_string(d), 8);
    for (int p = 2; p <= 10; p += 2) {
      ml::ForecasterSpec spec;
      spec.arima_p = p;
      spec.arima_d = d;
      const auto arima = ml::make_forecaster("arima", spec);
      arima->fit(train);
      const double rmse = ml::evaluate_rmse(*arima, train, test);
      arima_best = std::min(arima_best, rmse);
      record(arima->name(), rmse);
      std::cout << bench::cell(rmse, 10, 1);
    }
    std::cout << '\n';
  }

  bench::print_rule();
  std::cout << "Best model: " << best_name << " (RMSE "
            << bench::fmt(best_rmse, 1) << ")\n"
            << "Best LSTM " << bench::fmt(lstm_best, 1) << " vs best MA "
            << bench::fmt(ma_best, 1) << " vs best ARIMA "
            << bench::fmt(arima_best, 1) << "  -> LSTM improvement over best "
            << "statistical baseline: "
            << bench::fmt(100.0 * (std::min(ma_best, arima_best) - lstm_best) /
                              std::min(ma_best, arima_best),
                          1)
            << "%  (paper: ~30%)\n";
  return 0;
}
