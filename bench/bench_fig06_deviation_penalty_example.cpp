/// Fig. 6 reproduction: the proposed online algorithm with deviation
/// penalty on the Fig. 4 workload.
///  (a) Known distribution: guided by an offline plan computed on a
///      statistically identical historical sample, the algorithm opens only
///      a couple of extra online stations and cuts total cost vs Meyerson
///      (paper: 7 parkings incl. 2 online, 50542 total, -23% vs Meyerson).
///  (b) Unknown distribution: live arrivals from a shifted cluster; the KS
///      test detects the divergence and a few extra online stations open
///      near the new demand (paper: 3 more online stations).

#include <iostream>

#include "bench/util.h"
#include "core/deviation_placer.h"
#include "solver/jms_greedy.h"
#include "solver/meyerson.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stats/summary.h"

using namespace esharing;
using geo::Point;

namespace {

std::vector<Point> offline_landmarks(const std::vector<Point>& sample,
                                     double f) {
  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (Point p : sample) {
    clients.push_back({p, 1.0});
    costs.push_back(f);
  }
  const auto plan =
      solver::jms_greedy(solver::colocated_instance(clients, costs));
  std::vector<Point> landmarks;
  for (std::size_t i : plan.open) landmarks.push_back(sample[i]);
  return landmarks;
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_fig06_deviation_penalty_example");
  const double f = 5000.0;
  const geo::BoundingBox field{{0, 0}, {1000, 1000}};

  bench::print_title(
      "Fig. 6(a) -- deviation-penalty online algorithm, known distribution");
  std::cout << bench::cell("seed", 6) << bench::cell("#park", 8)
            << bench::cell("online", 8) << bench::cell("walking", 10)
            << bench::cell("space", 10) << bench::cell("total", 10)
            << bench::cell("meyerson", 10) << bench::cell("reduction", 10)
            << '\n';
  bench::print_rule(72);

  stats::Accumulator reduction;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    stats::Rng rng(seed);
    const auto history = stats::uniform_points(rng, field, 100);
    const auto live = stats::uniform_points(rng, field, 100);
    const auto landmarks = offline_landmarks(history, f);

    core::DeviationPlacerConfig cfg;
    cfg.tolerance = 200.0;
    cfg.ks_period = 50;
    core::DeviationPenaltyPlacer placer(
        landmarks, history, [f](Point) { return f; }, cfg, seed * 31337);
    solver::MeyersonPlacer meyerson(f, seed * 7919);
    for (Point p : live) {
      (void)placer.process(p);
      (void)meyerson.process(p);
    }
    const double pct = 100.0 * (meyerson.total_cost() - placer.total_cost()) /
                       meyerson.total_cost();
    reduction.add(pct);
    std::cout << bench::cell(static_cast<double>(seed), 6, 0)
              << bench::cell(static_cast<double>(placer.num_active()), 8, 0)
              << bench::cell(static_cast<double>(placer.num_online_opened()), 8, 0)
              << bench::cell(placer.total_connection_cost(), 10, 0)
              << bench::cell(placer.total_opening_cost(), 10, 0)
              << bench::cell(placer.total_cost(), 10, 0)
              << bench::cell(meyerson.total_cost(), 10, 0)
              << bench::cell(bench::fmt(pct, 1) + "%", 10) << '\n';
  }
  bench::print_rule(72);
  std::cout << "Mean total-cost reduction vs Meyerson: "
            << bench::fmt(reduction.mean(), 1) << "%  (paper instance: 23%)\n";

  bench::print_title(
      "Fig. 6(b) -- arrivals from an unknown (shifted) distribution");
  std::cout << bench::cell("seed", 6) << bench::cell("similarity", 12)
            << bench::cell("penalty", 10) << bench::cell("new online", 12)
            << '\n';
  bench::print_rule(40);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    stats::Rng rng(100 + seed);
    const auto history = stats::uniform_points(rng, field, 100);
    const auto landmarks = offline_landmarks(history, f);
    core::DeviationPlacerConfig cfg;
    cfg.tolerance = 200.0;
    cfg.ks_period = 40;
    core::DeviationPenaltyPlacer placer(
        landmarks, history, [f](Point) { return f; }, cfg, seed * 10007);
    // Demand surge at a previously unpopular corner (concert/sports game).
    const auto surge = stats::normal_points(rng, {900, 120}, 60.0, 120);
    for (Point p : surge) (void)placer.process(p);
    std::cout << bench::cell(static_cast<double>(seed), 6, 0)
              << bench::cell(placer.last_similarity(), 12, 1)
              << bench::cell(core::penalty_type_name(placer.penalty_type()), 10)
              << bench::cell(static_cast<double>(placer.num_online_opened()), 12, 0)
              << '\n';
  }
  std::cout << "\nThe KS test flags the shift (similarity drops), the penalty\n"
               "switches toward the tolerant Type I, and extra online\n"
               "stations open near the new demand (paper: 3 more stations).\n";
  return 0;
}
