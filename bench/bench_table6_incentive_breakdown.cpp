/// Table VI reproduction: charging cost breakdown and fleet coverage for
/// incentive levels alpha in {0, 1, 0.7, 0.4}. Paper's headline numbers:
/// alpha = 0.4 saves 47% of total cost vs no incentives, service cost drops
/// ~64%, delay cost ~88%, % charged rises from 42.3% to 80.8%, and the
/// operator's moving distance shrinks ~17.5%.

#include <array>
#include <iostream>

#include "bench/tier2.h"
#include "bench/util.h"
#include "stats/summary.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_table6_incentive_breakdown");
  bench::print_title(
      "Table VI -- charging costs ($) and distance (km) per incentive "
      "level");

  const std::array<double, 4> alphas{0.0, 1.0, 0.7, 0.4};
  constexpr int kSeeds = 8;

  struct Row {
    stats::Accumulator service, delay, energy, incentives, total, pct, dist;
  };
  std::array<Row, 4> rows;

  for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
    for (int s = 0; s < kSeeds; ++s) {
      bench::Tier2Config cfg;
      cfg.alpha = alphas[ai];
      cfg.costs.service_cost_q = 20.0;  // populated-downtown service cost
      cfg.seed = 600 + static_cast<std::uint64_t>(s);
      const auto r = bench::run_tier2(cfg);
      rows[ai].service.add(r.full_round.service_cost);
      rows[ai].delay.add(r.full_round.delay_cost);
      rows[ai].energy.add(r.full_round.energy_cost);
      rows[ai].incentives.add(r.incentives_paid);
      rows[ai].total.add(r.total_cost());
      rows[ai].pct.add(r.round.pct_charged());
      rows[ai].dist.add(r.full_round.moving_distance_m / 1000.0);
    }
  }

  std::cout << bench::cell("", 24);
  for (double a : alphas) {
    std::cout << bench::cell("alpha=" + bench::fmt(a, 1), 12);
  }
  std::cout << '\n';
  bench::print_rule(74);
  const auto print_row = [&](const char* label, auto getter, int prec) {
    std::cout << bench::cell(label, 24);
    for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
      std::cout << bench::cell(getter(rows[ai]).mean(), 12, prec);
    }
    std::cout << '\n';
  };
  print_row("Service cost", [](const Row& r) -> const auto& { return r.service; }, 0);
  print_row("Delay cost", [](const Row& r) -> const auto& { return r.delay; }, 0);
  print_row("Energy cost", [](const Row& r) -> const auto& { return r.energy; }, 0);
  print_row("Incentives", [](const Row& r) -> const auto& { return r.incentives; }, 0);
  print_row("Total cost (sum above)", [](const Row& r) -> const auto& { return r.total; }, 0);
  print_row("% have been charged", [](const Row& r) -> const auto& { return r.pct; }, 1);
  print_row("Moving distance (km)", [](const Row& r) -> const auto& { return r.dist; }, 1);
  bench::print_rule(74);

  const double total0 = rows[0].total.mean();
  const double total04 = rows[3].total.mean();
  const double service_saving =
      100.0 * (rows[0].service.mean() - rows[3].service.mean()) /
      rows[0].service.mean();
  const double delay_saving =
      100.0 * (rows[0].delay.mean() - rows[3].delay.mean()) /
      std::max(rows[0].delay.mean(), 1e-9);
  const double dist_saving =
      100.0 * (rows[0].dist.mean() - rows[3].dist.mean()) /
      std::max(rows[0].dist.mean(), 1e-9);
  std::cout << "alpha=0.4 total-cost saving vs alpha=0: "
            << bench::fmt(100.0 * (total0 - total04) / total0, 1)
            << "%  (paper: 47%)\n"
            << "service-cost saving: " << bench::fmt(service_saving, 1)
            << "%  (paper: ~64%)\n"
            << "delay-cost saving:   " << bench::fmt(delay_saving, 1)
            << "%  (paper: ~88%)\n"
            << "distance saving:     " << bench::fmt(dist_saving, 1)
            << "%  (paper: ~17.5%)\n"
            << "% charged:           " << bench::fmt(rows[0].pct.mean(), 1)
            << "% -> " << bench::fmt(rows[3].pct.mean(), 1)
            << "%  (paper: 42.3% -> 80.8%)\n";
  return 0;
}
