/// Fig. 7 reproduction: the closed-form aggregation saving ratio (Eq. 11).
///  (a) saving vs m for several n (fixed q = d = 5): quadratically higher
///      saving for smaller m; m/n = 0.65 yields ~50% saving.
///  (b) saving vs service cost q and delay cost d for different m (n = 20):
///      saving climbs sharply as delay cost grows from small values, and
///      declines slowly as service cost grows.

#include <iostream>

#include "bench/util.h"
#include "energy/charging_cost.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig07_saving_ratio");
  energy::ChargingCostParams p{.service_cost_q = 5.0, .delay_cost_d = 5.0,
                               .energy_cost_b = 2.0};

  bench::print_title("Fig. 7(a) -- saving ratio vs m for fixed n (q=d=5)");
  std::cout << bench::cell("m", 6);
  for (std::size_t n : {10, 20, 30, 40}) {
    std::cout << bench::cell("n=" + std::to_string(n), 10);
  }
  std::cout << '\n';
  bench::print_rule(48);
  for (std::size_t m = 1; m <= 40; m += 3) {
    std::cout << bench::cell(static_cast<double>(m), 6, 0);
    for (std::size_t n : {10, 20, 30, 40}) {
      if (m > n) {
        std::cout << bench::cell("--", 10);
      } else {
        std::cout << bench::cell(100.0 * energy::saving_ratio(m, n, p), 10, 1);
      }
    }
    std::cout << '\n';
  }
  std::cout << "m/n = 0.65 at n=40 (m=26): "
            << bench::fmt(100.0 * energy::saving_ratio(26, 40, p), 1)
            << "% saving  (paper: ~50%)\n";

  bench::print_title(
      "Fig. 7(b) -- saving ratio vs delay cost d (q=5, n=20, rows) and vs\n"
      "service cost q (d=5, n=20), for different m");
  std::cout << "saving [%] vs d:\n"
            << bench::cell("d", 6) << bench::cell("m=5", 10)
            << bench::cell("m=10", 10) << bench::cell("m=15", 10) << '\n';
  bench::print_rule(36);
  for (double d : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    energy::ChargingCostParams pd = p;
    pd.delay_cost_d = d;
    std::cout << bench::cell(d, 6, 1);
    for (std::size_t m : {5, 10, 15}) {
      std::cout << bench::cell(100.0 * energy::saving_ratio(m, 20, pd), 10, 1);
    }
    std::cout << '\n';
  }
  std::cout << "\nsaving [%] vs q:\n"
            << bench::cell("q", 6) << bench::cell("m=5", 10)
            << bench::cell("m=10", 10) << bench::cell("m=15", 10) << '\n';
  bench::print_rule(36);
  for (double q : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    energy::ChargingCostParams pq = p;
    pq.service_cost_q = q;
    std::cout << bench::cell(q, 6, 1);
    for (std::size_t m : {5, 10, 15}) {
      std::cout << bench::cell(100.0 * energy::saving_ratio(m, 20, pq), 10, 1);
    }
    std::cout << '\n';
  }
  std::cout << "\nShape: saving rises steeply with d (quadratic delay term)\n"
               "and falls toward m/n as q dominates -- matching Fig. 7(b).\n";
  return 0;
}
