/// Fig. 8 reproduction: actual vs LSTM-predicted hourly requests for a
/// weekday and a weekend day. The best Table II configuration (2 layers,
/// lookback 12) is trained separately on the weekday and the weekend
/// series (the paper validates via the KS test that the two day types have
/// different distributions and treats them separately).

#include <algorithm>
#include <iostream>

#include "bench/prediction_data.h"
#include "bench/util.h"
#include "ml/lstm.h"
#include "stats/summary.h"

using namespace esharing;

namespace {

void run_day_type(const char* label, const ml::Series& series,
                  std::uint64_t seed) {
  const auto [train, test_full] = ml::split(series, 0.8);
  // Show the first 24 test hours (one day).
  ml::Series test(test_full.begin(),
                  test_full.begin() + std::min<std::ptrdiff_t>(
                                          24, static_cast<std::ptrdiff_t>(
                                                  test_full.size())));

  ml::LstmConfig cfg;
  cfg.layers = 2;
  cfg.hidden = 24;
  cfg.lookback = 12;
  cfg.epochs = 25;
  cfg.seed = seed;
  ml::LstmForecaster lstm(cfg);
  lstm.fit(train);
  const auto preds = ml::rolling_predictions(lstm, train, test);

  std::cout << '\n' << label << " (one test day, hourly):\n";
  std::cout << bench::cell("hour", 6) << bench::cell("actual", 10)
            << bench::cell("predicted", 10) << "  bar (actual #, predicted o)\n";
  bench::print_rule();
  const double peak = *std::max_element(test.begin(), test.end());
  for (std::size_t h = 0; h < test.size(); ++h) {
    std::string bar(52, ' ');
    const auto apos = static_cast<std::size_t>(
        std::clamp(test[h] / std::max(peak, 1.0), 0.0, 1.0) * 50.0);
    const auto ppos = static_cast<std::size_t>(
        std::clamp(preds[h] / std::max(peak, 1.0), 0.0, 1.0) * 50.0);
    bar[apos] = '#';
    if (bar[ppos] == ' ') bar[ppos] = 'o';
    std::cout << bench::cell(static_cast<double>(h), 6, 0)
              << bench::cell(test[h], 10, 0) << bench::cell(preds[h], 10, 1)
              << "  " << bar << '\n';
  }
  std::cout << label << " one-day RMSE: " << bench::fmt(stats::rmse(preds, test), 1)
            << '\n';
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_fig08_actual_vs_predicted");
  bench::print_title(
      "Fig. 8 -- actual requests vs LSTM prediction (2-layer, back=12)");
  const auto series = bench::make_demand_series(28, 2017);
  run_day_type("(a) weekday", series.weekday, 8101);
  run_day_type("(b) weekend", series.weekend, 8102);
  std::cout << "\nThe prediction tracks the diurnal pattern on both day\n"
               "types, with the weekday double rush-hour peaks and the\n"
               "weekend midday hump (paper Fig. 8).\n";
  return 0;
}
