/// Fig. 12 reproduction: total charging cost and percentage of E-bikes
/// charged vs the per-stop service cost q, for incentive levels
/// alpha in {0, 0.4, 0.7, 1}. The paper's shape: incentives cut total cost
/// most where service cost is high; % charged rises steeply with even a
/// moderate alpha; alpha = 0.4 attains the lowest total cost.

#include <array>
#include <iostream>

#include "bench/tier2.h"
#include "bench/util.h"
#include "stats/summary.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig12_charging_cost");
  bench::print_title(
      "Fig. 12 -- total charging cost and % charged vs service cost,\nfor "
      "alpha in {0, 0.4, 0.7, 1}");

  const std::array<double, 4> alphas{0.0, 0.4, 0.7, 1.0};
  const std::array<double, 5> service_costs{2.0, 5.0, 10.0, 20.0, 40.0};
  constexpr int kSeeds = 5;

  std::cout << "\n(a) total cost [$] (cost of service + delay + energy + "
               "incentives)\n";
  std::cout << bench::cell("q [$]", 8);
  for (double a : alphas) {
    std::cout << bench::cell("alpha=" + bench::fmt(a, 1), 12);
  }
  std::cout << '\n';
  bench::print_rule(56);
  for (double q : service_costs) {
    std::cout << bench::cell(q, 8, 0);
    for (double a : alphas) {
      stats::Accumulator acc;
      for (int s = 0; s < kSeeds; ++s) {
        bench::Tier2Config cfg;
        cfg.alpha = a;
        cfg.costs.service_cost_q = q;
        cfg.seed = 120 + static_cast<std::uint64_t>(s);
        acc.add(bench::run_tier2(cfg).total_cost());
      }
      std::cout << bench::cell(acc.mean(), 12, 0);
    }
    std::cout << '\n';
  }

  std::cout << "\n(b) percentage of low-energy E-bikes charged within the "
               "shift [%]\n";
  std::cout << bench::cell("q [$]", 8);
  for (double a : alphas) {
    std::cout << bench::cell("alpha=" + bench::fmt(a, 1), 12);
  }
  std::cout << '\n';
  bench::print_rule(56);
  for (double q : service_costs) {
    std::cout << bench::cell(q, 8, 0);
    for (double a : alphas) {
      stats::Accumulator acc;
      for (int s = 0; s < kSeeds; ++s) {
        bench::Tier2Config cfg;
        cfg.alpha = a;
        cfg.costs.service_cost_q = q;
        cfg.seed = 120 + static_cast<std::uint64_t>(s);
        acc.add(bench::run_tier2(cfg).round.pct_charged());
      }
      std::cout << bench::cell(acc.mean(), 12, 1);
    }
    std::cout << '\n';
  }
  std::cout << "\nShape: any alpha > 0 lifts the charged percentage sharply\n"
               "(paper: >75% already at alpha = 0.4) and cuts total cost,\n"
               "with the moderate alpha = 0.4 cheapest overall.\n";
  return 0;
}
