/// Fig. 11 reproduction: spatial distribution of low-energy E-bikes before
/// and after incentivizing, plus the operator's TSP route length. The
/// paper's heat maps show scattered piles collapsing onto fewer aggregation
/// sites, with a reduction in charging sites and route length.

#include <iostream>

#include "bench/tier2.h"
#include "bench/util.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig11_lowenergy_heatmap");
  bench::print_title(
      "Fig. 11 -- low-energy bike distribution before/after incentives");

  bench::Tier2Config cfg;
  cfg.alpha = 0.6;
  cfg.op.work_seconds = 1e9;  // serve everything so route lengths compare
  cfg.seed = 11;
  const auto result = bench::run_tier2(cfg);

  std::cout << "\n(a) before incentivizing -- " << result.sites_before
            << " sites hold low-energy bikes\n";
  bench::print_heatmap(result.before, cfg.field_m);
  const auto before_round =
      core::run_charging_round(result.before, cfg.costs, cfg.op);

  std::cout << "\n(b) after incentivizing (alpha = " << cfg.alpha << ") -- "
            << result.sites_after << " sites remain ("
            << result.relocations << " bikes relocated)\n";
  bench::print_heatmap(result.after, cfg.field_m);

  bench::print_rule();
  std::cout << "charging sites:   " << result.sites_before << " -> "
            << result.sites_after << '\n'
            << "TSP route length: " << bench::fmt(before_round.moving_distance_m / 1000.0, 1)
            << " km -> " << bench::fmt(result.round.moving_distance_m / 1000.0, 1)
            << " km\n"
            << "operator cost:    " << bench::fmt(before_round.total_cost(), 0)
            << " $ -> " << bench::fmt(result.round.total_cost(result.incentives_paid), 0)
            << " $ (incl. " << bench::fmt(result.incentives_paid, 0)
            << " $ incentives)\n"
            << "\nShape: piles collapse onto fewer, denser sites; the route\n"
               "shortens and the operator visits fewer stops (paper Fig. 11).\n";
  return 0;
}
