/// Warm-vs-cold re-optimization over a simulated week of hourly demand
/// deltas (the tentpole experiment of the incremental re-optimization
/// engine, solver/reopt.h). A synthetic city of ~200 colocated candidate
/// sites drifts every epoch — diurnal arrival-rate modulation, multiplicative
/// noise, and cell churn (sites whose demand drops below a floor vanish,
/// sites above it reappear) — and each epoch is solved twice on the same
/// post-delta demand:
///
///   warm: ReoptimizationSession::reoptimize_to(target) — diff against the
///         previous instance, patch only changed oracle rows, carry the
///         previous open set and polish (never costlier than the carry);
///   cold: colocated instance rebuilt from scratch + jms_greedy, the exact
///         path plan_offline would take without the session.
///
/// The table reports per-day wall time totals and cost drift
/// (warm - cold) / cold. The bench FAILS (exit 1) if the mean per-epoch
/// drift exceeds 2% (individual epochs get a loose 5% tail guard: the
/// add/drop polish deterministically lags the cold solve by ~2.5% in a
/// few epochs per week, see EXPERIMENTS.md), if the week-long warm path is
/// not at least 3x faster than the cold path (measured ~5x; both sides run
/// single-threaded on the same host, so the ratio is stable), if a warm
/// re-solve ever ends costlier than its carried baseline, or if a repeated
/// identical snapshot is not a zero-delta cache hit.

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/util.h"
#include "geo/point.h"
#include "solver/facility_location.h"
#include "solver/jms_greedy.h"
#include "solver/reopt.h"
#include "stats/rng.h"
#include "stats/spatial.h"

using namespace esharing;
using geo::Point;

namespace {

constexpr std::size_t kSites = 200;      // candidate cells in the city
constexpr int kDays = 7;                 // one simulated week ...
constexpr int kEpochs = kDays * 24;      // ... of hourly re-anchor epochs
constexpr double kOpeningCost = 9000.0;  // flat space-occupation cost f_i
constexpr double kDemandFloor = 2.0;     // below this a cell leaves the window
constexpr double kMeanDriftPct = 2.0;   // hard mean-drift quality contract
constexpr double kTailDriftPct = 5.0;   // loose guard on the worst epoch
constexpr double kMinSpeedup = 3.0;     // week-long warm/cold wall-time ratio

struct City {
  std::vector<Point> sites;
  std::vector<double> base_weight;  // site's mean expected arrivals
  std::vector<double> phase;        // diurnal phase offset per site
  std::vector<double> weight;       // current expected arrivals per site
};

City make_city(std::uint64_t seed) {
  stats::Rng rng(seed);
  City city;
  city.sites = stats::uniform_points(rng, {{0, 0}, {4000, 4000}}, kSites);
  for (std::size_t i = 0; i < kSites; ++i) {
    city.base_weight.push_back(rng.uniform(3.0, 30.0));
    city.phase.push_back(rng.uniform(0.0, 2.0 * 3.14159265358979));
    city.weight.push_back(city.base_weight[i]);
  }
  return city;
}

/// Advance the demand window by one hour and return the new snapshot.
/// Hourly drift is a DELTA, not a re-roll: ~10% of the cells re-sample
/// their arrival rate against a site-phased diurnal curve (morning and
/// evening cells drift in opposition), the rest keep last hour's value —
/// that is what makes the delta-aware oracle's row reuse meaningful. Cells
/// whose demand falls under the floor drop out of the snapshot entirely,
/// exercising the client/facility remove-and-append channels of
/// diff_colocated when they churn back in.
std::vector<solver::FlClient> demand_at(City& city, int epoch,
                                        stats::Rng& rng) {
  const double hour = static_cast<double>(epoch % 24);
  const std::size_t drifting = kSites / 10;  // ~10% of cells drift per hour
  for (std::size_t n = 0; n < drifting; ++n) {
    const std::size_t i = rng.index(city.sites.size());
    const double diurnal =
        0.8 + 0.4 * std::sin(2.0 * 3.14159265358979 * hour / 24.0 +
                             city.phase[i]);
    const double noise = std::exp(rng.normal(0.0, 0.12));
    city.weight[i] = city.base_weight[i] * diurnal * noise;
  }
  std::vector<solver::FlClient> target;
  for (std::size_t i = 0; i < city.sites.size(); ++i) {
    if (city.weight[i] >= kDemandFloor) {
      target.push_back({city.sites[i], city.weight[i]});
    }
  }
  return target;
}

solver::FlInstance colocated_from(const std::vector<solver::FlClient>& target) {
  std::vector<solver::FlClient> clients = target;
  std::vector<double> costs(clients.size(), kOpeningCost);
  return solver::colocated_instance(std::move(clients), std::move(costs));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::MetricsSession metrics("bench_warm_restart");
  bench::print_title(
      "Warm restart: hourly re-anchoring over one simulated week (" +
      std::to_string(kSites) + " sites, " + std::to_string(kEpochs) +
      " epochs)");

  City city = make_city(20260808);
  stats::Rng demand_rng(7);

  const auto opening_cost = [](Point) { return kOpeningCost; };
  auto initial = demand_at(city, 0, demand_rng);
  solver::ReoptimizationSession session(colocated_from(initial),
                                        solver::ReoptOptions{}, opening_cost);

  std::cout << bench::cell("day", 4) << bench::cell("warm ms", 10)
            << bench::cell("cold ms", 10) << bench::cell("speedup", 9)
            << bench::cell("drift% avg", 11) << bench::cell("drift% max", 11)
            << bench::cell("open", 6) << '\n';
  bench::print_rule(61);

  double warm_total_s = 0.0;
  double cold_total_s = 0.0;
  double worst_drift_pct = 0.0;
  double drift_sum_pct = 0.0;
  bool never_costlier_ok = true;
  double day_warm_s = 0.0;
  double day_cold_s = 0.0;
  double day_drift_sum = 0.0;
  double day_drift_max = 0.0;

  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    const auto target = demand_at(city, epoch, demand_rng);

    const auto w0 = std::chrono::steady_clock::now();
    const solver::FlSolution& warm = session.reoptimize_to(target);
    const double warm_s = seconds_since(w0);

    const auto c0 = std::chrono::steady_clock::now();
    const solver::FlSolution cold = solver::jms_greedy(colocated_from(target));
    const double cold_s = seconds_since(c0);

    const double drift_pct =
        (warm.total_cost() - cold.total_cost()) / cold.total_cost() * 100.0;
    const auto& stats = session.last_stats();
    if (!stats.zero_delta && !stats.cold &&
        stats.final_cost > stats.baseline_cost) {
      never_costlier_ok = false;
    }

    warm_total_s += warm_s;
    cold_total_s += cold_s;
    drift_sum_pct += drift_pct;
    worst_drift_pct = std::max(worst_drift_pct, drift_pct);
    day_warm_s += warm_s;
    day_cold_s += cold_s;
    day_drift_sum += drift_pct;
    day_drift_max = std::max(day_drift_max, drift_pct);

    if (epoch % 24 == 0) {
      std::cout << bench::cell(std::to_string(epoch / 24), 4)
                << bench::cell(day_warm_s * 1e3, 10, 1)
                << bench::cell(day_cold_s * 1e3, 10, 1)
                << bench::cell(day_cold_s / day_warm_s, 9, 1)
                << bench::cell(day_drift_sum / 24.0, 11, 2)
                << bench::cell(day_drift_max, 11, 2)
                << bench::cell(static_cast<double>(warm.num_open()), 6, 0)
                << '\n';
      day_warm_s = day_cold_s = day_drift_sum = day_drift_max = 0.0;
    }
  }

  // A repeated identical snapshot must be a zero-delta cache hit.
  const auto replay = demand_at(city, kEpochs, demand_rng);
  (void)session.reoptimize_to(replay);
  const std::uint64_t rev = session.revision();
  (void)session.reoptimize_to(replay);
  const bool zero_delta_ok =
      session.last_stats().zero_delta && session.revision() == rev;

  bench::print_rule(61);
  const double speedup = cold_total_s / warm_total_s;
  const double mean_drift_pct = drift_sum_pct / kEpochs;
  std::cout << "totals: warm " << bench::fmt(warm_total_s * 1e3, 1)
            << " ms, cold " << bench::fmt(cold_total_s * 1e3, 1)
            << " ms, speedup " << bench::fmt(speedup, 2) << "x (contract >= "
            << bench::fmt(kMinSpeedup, 1) << "x)\n"
            << "drift vs cold: mean " << bench::fmt(mean_drift_pct, 3)
            << "% (contract <= " << bench::fmt(kMeanDriftPct, 1) << "%), max "
            << bench::fmt(worst_drift_pct, 3) << "% (guard <= "
            << bench::fmt(kTailDriftPct, 1) << "%)\n"
            << "never-costlier-than-carry: "
            << (never_costlier_ok ? "held" : "VIOLATED")
            << ", zero-delta replay: " << (zero_delta_ok ? "hit" : "MISS")
            << ", final revision " << session.revision() << '\n';

  bool ok = never_costlier_ok && zero_delta_ok;
  if (mean_drift_pct > kMeanDriftPct) {
    std::cout << "FAIL: mean per-epoch drift exceeded "
              << bench::fmt(kMeanDriftPct, 1) << "%\n";
    ok = false;
  }
  if (worst_drift_pct > kTailDriftPct) {
    std::cout << "FAIL: worst epoch drifted more than "
              << bench::fmt(kTailDriftPct, 1) << "%\n";
    ok = false;
  }
  if (speedup < kMinSpeedup) {
    std::cout << "FAIL: warm path fell under " << bench::fmt(kMinSpeedup, 1)
              << "x the cold path\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
