/// Fig. 4 reproduction: offline (JMS 1.61) vs Meyerson's online facility
/// location on a stream of 100 random arrivals in a 1000 x 1000 m^2 field
/// with opening cost f = 5000 m-equivalent. The paper's instance shows 5
/// offline parkings (cost 16795 / 25000 / 41795) vs 9 online parkings
/// (25400 / 40000 / 65400, a 56% total-cost increase). Absolute values
/// depend on the random draw; the reproduced *shape* is the online
/// algorithm over-opening and paying ~40-70% more in total.

#include <iostream>

#include "bench/util.h"
#include "solver/jms_greedy.h"
#include "solver/meyerson.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stats/summary.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_fig04_offline_vs_meyerson");
  bench::print_title(
      "Fig. 4 -- Offline (JMS 1.61) vs Meyerson online on 100 uniform "
      "arrivals,\n1000x1000 m^2, f = 5000 m");

  const double f = 5000.0;
  const geo::BoundingBox field{{0, 0}, {1000, 1000}};

  std::cout << bench::cell("seed", 6) << bench::cell("algo", 10)
            << bench::cell("#parking", 10) << bench::cell("walking", 12)
            << bench::cell("space", 12) << bench::cell("total", 12)
            << bench::cell("vs offline", 12) << '\n';
  bench::print_rule();

  stats::Accumulator increase;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    stats::Rng rng(seed);
    const auto pts = stats::uniform_points(rng, field, 100);

    std::vector<solver::FlClient> clients;
    std::vector<double> costs;
    for (auto p : pts) {
      clients.push_back({p, 1.0});
      costs.push_back(f);
    }
    const auto offline =
        solver::jms_greedy(solver::colocated_instance(clients, costs));

    solver::MeyersonPlacer meyerson(f, seed * 7919);
    for (auto p : pts) (void)meyerson.process(p);

    const double pct = 100.0 * (meyerson.total_cost() - offline.total_cost()) /
                       offline.total_cost();
    increase.add(pct);
    std::cout << bench::cell(static_cast<double>(seed), 6, 0)
              << bench::cell("offline", 10)
              << bench::cell(static_cast<double>(offline.num_open()), 10, 0)
              << bench::cell(offline.connection_cost, 12, 0)
              << bench::cell(offline.opening_cost, 12, 0)
              << bench::cell(offline.total_cost(), 12, 0)
              << bench::cell("--", 12) << '\n';
    std::cout << bench::cell("", 6) << bench::cell("meyerson", 10)
              << bench::cell(static_cast<double>(meyerson.num_open()), 10, 0)
              << bench::cell(meyerson.total_connection_cost(), 12, 0)
              << bench::cell(meyerson.total_opening_cost(), 12, 0)
              << bench::cell(meyerson.total_cost(), 12, 0)
              << bench::cell("+" + bench::fmt(pct, 1).append("%"), 12)
              << '\n';
  }
  bench::print_rule();
  std::cout << "Mean online total-cost increase over offline: +"
            << bench::fmt(increase.mean(), 1) << "%  (paper instance: +56%)\n";
  return 0;
}
