/// Theorem 1 demonstration: "No online solution for solving the PLP is
/// O(1)-competitive compared to the offline optimal solution."
///
/// The paper's adversarial stream places request i at (2^-i, 2^-i) with
/// opening cost f = 2. The offline optimum opens a single parking at the
/// origin for total cost <= 2 + sqrt(2); any online algorithm opens only
/// finitely many parkings, after which every later request pays a walking
/// cost bounded away from zero relative to the optimum — so the
/// competitive ratio grows without bound as the stream extends. We run
/// Meyerson's algorithm (the strongest constant-f online baseline) on the
/// stream and print the measured ratio growing with n.

#include <cmath>
#include <iostream>

#include "bench/util.h"
#include "solver/meyerson.h"
#include "stats/summary.h"

using namespace esharing;

int main() {
  const bench::MetricsSession metrics("bench_theorem1_lower_bound");
  bench::print_title(
      "Theorem 1 -- no O(1)-competitive online PLP (adversarial stream)");

  const double f = 2.0;
  auto offline_bound = [&](std::size_t n) {
    // One parking at the origin: f + sum sqrt(2) * 2^-i <= 2 + sqrt(2).
    double cost = f;
    for (std::size_t i = 1; i <= n; ++i) {
      cost += std::sqrt(2.0) * std::pow(0.5, static_cast<double>(i));
    }
    return cost;
  };

  std::cout << bench::cell("n", 8) << bench::cell("offline<=", 12)
            << bench::cell("online E[]", 12) << bench::cell("ratio", 10)
            << '\n';
  bench::print_rule(42);
  for (std::size_t n : {5, 10, 20, 40, 80, 160, 320}) {
    stats::Accumulator online;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      solver::MeyersonPlacer placer(f, seed);
      for (std::size_t i = 1; i <= n; ++i) {
        const double c = std::pow(0.5, static_cast<double>(i));
        (void)placer.process({c, c});
      }
      online.add(placer.total_cost());
    }
    std::cout << bench::cell(static_cast<double>(n), 8, 0)
              << bench::cell(offline_bound(n), 12, 3)
              << bench::cell(online.mean(), 12, 3)
              << bench::cell(online.mean() / offline_bound(n), 10, 2) << '\n';
  }
  std::cout << "\nThe ratio keeps growing with n (no constant bound), as\n"
               "Theorem 1 proves. Note the growth is slow -- each halving\n"
               "of the request scale adds only O(1) expected online cost --\n"
               "which is why the paper calls the gap 'expected and not too\n"
               "pessimistic' and motivates offline guidance instead.\n";
  return 0;
}
