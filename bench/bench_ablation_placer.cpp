/// Ablation of the deviation-penalty placer's design knobs (the choices
/// DESIGN.md calls out): the doubling ratio beta, the tolerance L, and the
/// KS-driven penalty switching. Workload: uniform history guides the
/// landmarks; the live stream is half in-distribution, half a shifted
/// cluster (the paper's "event" case), so both stability and adaptivity
/// are exercised.

#include <iostream>

#include "bench/util.h"
#include "core/deviation_placer.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stats/summary.h"

using namespace esharing;
using geo::Point;

namespace {

constexpr double kF = 5000.0;

struct Workload {
  std::vector<Point> history;
  std::vector<Point> live;
  std::vector<Point> landmarks;
};

Workload make_workload(std::uint64_t seed) {
  stats::Rng rng(seed);
  const geo::BoundingBox field{{0, 0}, {1000, 1000}};
  Workload w;
  w.history = stats::uniform_points(rng, field, 150);
  w.live = stats::uniform_points(rng, field, 150);
  const auto surge = stats::normal_points(rng, {900, 100}, 50.0, 150);
  w.live.insert(w.live.end(), surge.begin(), surge.end());

  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (Point p : w.history) {
    clients.push_back({p, 1.0});
    costs.push_back(kF);
  }
  const auto plan =
      solver::jms_greedy(solver::colocated_instance(clients, costs));
  for (std::size_t i : plan.open) w.landmarks.push_back(w.history[i]);
  return w;
}

struct Outcome {
  double parkings{0.0};
  double total_km{0.0};
};

Outcome run(const core::DeviationPlacerConfig& cfg, int trials = 10) {
  stats::Accumulator parkings, total;
  for (int trial = 0; trial < trials; ++trial) {
    const Workload w = make_workload(100 + static_cast<std::uint64_t>(trial));
    core::DeviationPenaltyPlacer placer(
        w.landmarks, w.history, [](Point) { return kF; }, cfg,
        500 + static_cast<std::uint64_t>(trial));
    for (Point p : w.live) (void)placer.process(p);
    parkings.add(static_cast<double>(placer.num_active()));
    total.add(placer.total_cost() / 1000.0);
  }
  return {parkings.mean(), total.mean()};
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_ablation_placer");
  bench::print_title(
      "Ablation -- deviation-penalty placer knobs on a half-shifted stream");

  std::cout << "\n(a) doubling ratio beta (L = 200, adaptive switching on)\n"
            << bench::cell("beta", 8) << bench::cell("#parking", 10)
            << bench::cell("total km", 10) << '\n';
  bench::print_rule(28);
  for (double beta : {1.0, 2.0, 4.0, 8.0}) {
    core::DeviationPlacerConfig cfg;
    cfg.beta = beta;
    cfg.tolerance = 200.0;
    cfg.ks_period = 50;
    const auto o = run(cfg);
    std::cout << bench::cell(beta, 8, 1) << bench::cell(o.parkings, 10, 1)
              << bench::cell(o.total_km, 10, 1) << '\n';
  }

  std::cout << "\n(b) tolerance L (beta = 1, adaptive switching on)\n"
            << bench::cell("L [m]", 8) << bench::cell("#parking", 10)
            << bench::cell("total km", 10) << '\n';
  bench::print_rule(28);
  for (double L : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    core::DeviationPlacerConfig cfg;
    cfg.tolerance = L;
    cfg.ks_period = 50;
    const auto o = run(cfg);
    std::cout << bench::cell(L, 8, 0) << bench::cell(o.parkings, 10, 1)
              << bench::cell(o.total_km, 10, 1) << '\n';
  }

  std::cout << "\n(c) penalty selection policy (L = 200, beta = 1)\n"
            << bench::cell("policy", 22) << bench::cell("#parking", 10)
            << bench::cell("total km", 10) << '\n';
  bench::print_rule(42);
  {
    core::DeviationPlacerConfig adaptive;
    adaptive.tolerance = 200.0;
    adaptive.ks_period = 50;
    const auto o = run(adaptive);
    std::cout << bench::cell("KS-adaptive (paper)", 22)
              << bench::cell(o.parkings, 10, 1)
              << bench::cell(o.total_km, 10, 1) << '\n';
  }
  for (core::PenaltyType type :
       {core::PenaltyType::kTypeI, core::PenaltyType::kTypeII,
        core::PenaltyType::kTypeIII, core::PenaltyType::kNone}) {
    core::DeviationPlacerConfig fixed;
    fixed.tolerance = 200.0;
    fixed.adaptive_type = false;
    fixed.ks_period = 0;
    fixed.initial_penalty = type;
    const auto o = run(fixed);
    std::cout << bench::cell(std::string("fixed ") +
                                 core::penalty_type_name(type), 22)
              << bench::cell(o.parkings, 10, 1)
              << bench::cell(o.total_km, 10, 1) << '\n';
  }

  std::cout << "\nReading: small beta / small L keep the station count near\n"
               "the offline k but pay walking for the shifted cluster; the\n"
               "KS-adaptive policy tracks the better fixed penalties without\n"
               "knowing the shift in advance, while the bad fixed choices\n"
               "(over-strict TypeII, penalty-free) cost noticeably more.\n";
  return 0;
}
