#include "bench/plp_compare.h"

#include <algorithm>
#include <unordered_map>

#include "core/deviation_placer.h"
#include "data/binning.h"
#include "geo/geohash.h"
#include "geo/spatial_index.h"
#include "ml/factory.h"
#include "solver/meyerson.h"
#include "solver/online_kmeans.h"
#include "solver/registry.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::bench {

using geo::Point;

namespace {

constexpr double kKm = 1000.0;

/// Aggregate raw points into per-cell weighted clients on a 100 m grid.
std::vector<solver::FlClient> aggregate(const geo::Grid& grid,
                                        const std::vector<Point>& pts) {
  std::unordered_map<std::size_t, double> counts;
  for (Point p : pts) ++counts[grid.index_of(grid.clamped_cell_of(p))];
  std::vector<solver::FlClient> clients;
  clients.reserve(counts.size());
  // lint-ok: unordered-iter order-independent: clients are sorted by location right below before anything is printed
  for (const auto& [cell, n] : counts) {
    clients.push_back({grid.centroid_of(grid.cell_at(cell)), n});
  }
  std::sort(clients.begin(), clients.end(),
            [](const solver::FlClient& a, const solver::FlClient& b) {
              if (a.location.x != b.location.x) return a.location.x < b.location.x;
              return a.location.y < b.location.y;
            });
  return clients;
}

solver::FlInstance scenario_instance(const std::vector<solver::FlClient>& sites,
                                     const std::function<double(Point)>& f) {
  std::vector<double> costs;
  costs.reserve(sites.size());
  for (const auto& c : sites) costs.push_back(f(c.location));
  return solver::colocated_instance(sites, costs);
}

solver::FlSolution plan(const std::vector<solver::FlClient>& sites,
                        const std::function<double(Point)>& f) {
  // Routed through the unified entry point; solve("jms") is bit-identical
  // to calling jms_greedy directly.
  return solver::solve("jms", scenario_instance(sites, f));
}

std::vector<Point> open_locations(const std::vector<solver::FlClient>& sites,
                                  const solver::FlSolution& sol) {
  std::vector<Point> out;
  out.reserve(sol.open.size());
  for (std::size_t i : sol.open) out.push_back(sites[i].location);
  return out;
}

}  // namespace

std::vector<PlpScenario> make_scenarios(std::size_t n_regions,
                                        std::uint64_t seed) {
  data::CityConfig cfg;
  cfg.num_days = 14;
  cfg.trips_per_weekday = 2400;
  cfg.trips_per_weekend_day = 2000;
  cfg.num_bikes = 400;
  data::SyntheticCity city(cfg, seed);
  const auto trips = city.generate_trips();
  const double window_m = 1200.0;

  stats::Rng rng(seed ^ 0x51c2e5a7ULL);
  std::vector<PlpScenario> scenarios;
  for (int attempt = 0; scenarios.size() < n_regions && attempt < 200;
       ++attempt) {
    const Point corner{
        rng.uniform(0.0, cfg.field_size_m - window_m),
        rng.uniform(0.0, cfg.field_size_m - window_m)};
    const geo::BoundingBox window{corner,
                                  {corner.x + window_m, corner.y + window_m}};
    const geo::Grid grid(window, 100.0);

    PlpScenario s;
    s.history_hourly.assign(7 * 24, 0.0);
    for (const auto& trip : trips) {
      const Point end = city.end_point(trip);
      if (!window.contains(end)) continue;
      if (data::day_index(trip.start_time) < 7) {
        s.history_sample.push_back(end);
        const auto h = data::hour_index(trip.start_time);
        s.history_hourly[static_cast<std::size_t>(h)] += 1.0;
      } else {
        s.live_requests.push_back(end);
      }
    }
    if (s.history_sample.size() < 50 || s.live_requests.size() < 50) {
      continue;  // resample a livelier window
    }
    s.history_sites = aggregate(grid, s.history_sample);
    s.live_sites = aggregate(grid, s.live_requests);
    const double mean_f = 10000.0;
    const std::uint64_t field_seed = seed ^ 0xf1e1d0ULL;
    s.opening_cost = [mean_f, field_seed](Point p) {
      return mean_f * (0.5 + stats::hash_noise(p, 100.0, field_seed));
    };
    s.mean_opening_cost = mean_f;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

MethodResult run_offline_oracle(const PlpScenario& s) {
  const auto sol = plan(s.live_sites, s.opening_cost);
  // Measure walking against the raw request stream (as the online methods
  // do) rather than cell centroids: a colocated instance puts stations on
  // client centroids, so centroid distances under-count real walks.
  const auto open = open_locations(s.live_sites, sol);
  const geo::SpatialIndex open_index(open);
  double walking = 0.0;
  for (Point p : s.live_requests) {
    walking += geo::distance(open[open_index.nearest(p)], p);
  }
  return {"Offline*", static_cast<double>(sol.num_open()), walking / kKm,
          sol.opening_cost / kKm};
}

MethodResult run_offline_solver(const PlpScenario& s,
                                const std::string& solver_name,
                                std::uint64_t seed) {
  solver::SolveOptions options;
  // Only the randomized solvers consume a seed; validate(name) rejects a
  // non-default seed for the deterministic ones.
  if (solver_name == "k_median" || solver_name == "meyerson") {
    options.seed = seed;
  }
  const auto sol = solver::solve(
      solver_name, scenario_instance(s.live_sites, s.opening_cost), options);
  const auto open = open_locations(s.live_sites, sol);
  const geo::SpatialIndex open_index(open);
  double walking = 0.0;
  for (Point p : s.live_requests) {
    walking += geo::distance(open[open_index.nearest(p)], p);
  }
  return {solver_name, static_cast<double>(sol.num_open()), walking / kKm,
          sol.opening_cost / kKm};
}

MethodResult run_meyerson(const PlpScenario& s, std::uint64_t seed) {
  solver::MeyersonPlacer placer(s.mean_opening_cost, seed);
  for (Point p : s.live_requests) (void)placer.process(p);
  return {"Meyerson", static_cast<double>(placer.num_open()),
          placer.total_connection_cost() / kKm,
          placer.total_opening_cost() / kKm};
}

MethodResult run_online_kmeans(const PlpScenario& s, std::uint64_t seed) {
  // k mirrors the offline plan computed on history, as in [26]'s setting.
  const auto guide = plan(s.history_sites, s.opening_cost);
  solver::OnlineKMeans km(std::max<std::size_t>(guide.num_open(), 1),
                          s.live_requests.size(), seed);
  double walking = 0.0;
  for (Point p : s.live_requests) {
    walking += km.process(p).connection_cost;
  }
  return {"Online k-means", static_cast<double>(km.num_open()),
          walking / kKm,
          static_cast<double>(km.num_open()) * s.mean_opening_cost / kKm};
}

MethodResult run_esharing(const PlpScenario& s, bool predicted,
                          std::uint64_t seed) {
  std::vector<solver::FlClient> guide_sites;
  if (!predicted) {
    // Perfect knowledge of the live distribution guides the landmarks.
    guide_sites = s.live_sites;
  } else {
    // Prediction path: per-cell spatial shares from history, volume from an
    // LSTM forecast of the region's hourly demand over the live week.
    ml::ForecasterSpec spec;
    spec.layers = 2;
    spec.hidden = 16;
    spec.lookback = 12;
    spec.epochs = 12;
    spec.seed = seed;
    const auto lstm = ml::make_forecaster("lstm", spec);
    lstm->fit(s.history_hourly);
    const auto forecast =
        lstm->forecast(s.history_hourly, s.history_hourly.size());
    double predicted_volume = 0.0;
    for (double v : forecast) predicted_volume += std::max(v, 0.0);
    double history_volume = 0.0;
    for (const auto& c : s.history_sites) history_volume += c.weight;
    const double scale = history_volume > 0.0
                             ? predicted_volume / history_volume
                             : 1.0;
    guide_sites = s.history_sites;
    for (auto& c : guide_sites) c.weight *= scale;
  }
  const auto guide = plan(guide_sites, s.opening_cost);

  core::DeviationPlacerConfig cfg;
  cfg.tolerance = 200.0;
  cfg.ks_period = 200;
  cfg.w_star_override = guide.num_open() < 2 ? 200.0 : 0.0;
  // Week-long streams: seed the opening scale at a few times the mean space
  // cost (Meyerson-comparable) so the beta*k doubling keeps the station
  // count near the offline k instead of tracking every lattice fluctuation.
  cfg.initial_scale_override = 3.5 * s.mean_opening_cost;
  core::DeviationPenaltyPlacer placer(open_locations(guide_sites, guide),
                                      s.history_sample, s.opening_cost, cfg,
                                      seed ^ 0x77aa55ULL);
  for (Point p : s.live_requests) (void)placer.process(p);
  return {predicted ? "E-sharing (predicted)" : "E-sharing (actual)",
          static_cast<double>(placer.num_active()),
          placer.total_connection_cost() / kKm,
          placer.total_opening_cost() / kKm};
}

}  // namespace esharing::bench
