/// Extension experiment: the rebalancing substrate (the paper's system
/// model assumes "the reserves of E-bikes are balanced" by prior work;
/// this quantifies what that costs). We sweep the truck capacity and the
/// station count and report bikes moved, route length and residual
/// imbalance; plus the CC-CV charge-curve's effect on per-stop time
/// compared to the flat charging constant.

#include <algorithm>
#include <iostream>

#include "bench/util.h"
#include "energy/charge_curve.h"
#include "rebalance/rebalance.h"
#include "stats/rng.h"
#include "stats/summary.h"

using namespace esharing;
using geo::Point;

namespace {

std::vector<rebalance::StationInventory> random_network(std::size_t n,
                                                        std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<rebalance::StationInventory> stations;
  std::vector<double> demand;
  for (std::size_t s = 0; s < n; ++s) {
    stations.push_back({{rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)},
                        static_cast<int>(rng.index(12)), 0});
    demand.push_back(rng.uniform(0.1, 3.0));
  }
  const auto targets = rebalance::proportional_targets(stations, demand);
  for (std::size_t s = 0; s < n; ++s) stations[s].target = targets[s];
  return stations;
}

}  // namespace

int main() {
  const bench::MetricsSession metrics("bench_extension_rebalance");
  bench::print_title(
      "Extension -- rebalancing substrate cost and charge-curve timing");

  std::cout << "\n(a) truck capacity (40 stations, means over 10 seeds)\n"
            << bench::cell("capacity", 10) << bench::cell("moved", 8)
            << bench::cell("stops", 8) << bench::cell("route km", 10)
            << bench::cell("residual", 10) << '\n';
  bench::print_rule(46);
  for (int capacity : {4, 8, 16, 32}) {
    stats::Accumulator moved, stops, route, residual;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto stations = random_network(40, seed);
      rebalance::TruckConfig truck;
      truck.capacity = capacity;
      const auto plan = rebalance::plan_rebalancing(stations, truck);
      moved.add(plan.bikes_moved);
      stops.add(static_cast<double>(plan.stops.size()));
      route.add(plan.route_length_m / 1000.0);
      residual.add(plan.residual_imbalance);
    }
    std::cout << bench::cell(static_cast<double>(capacity), 10, 0)
              << bench::cell(moved.mean(), 8, 1)
              << bench::cell(stops.mean(), 8, 1)
              << bench::cell(route.mean(), 10, 1)
              << bench::cell(residual.mean(), 10, 1) << '\n';
  }
  std::cout << "Larger trucks shorten the route (fewer shuttle legs) while\n"
               "moving the same bikes; residual imbalance is zero whenever\n"
               "targets conserve the fleet.\n";

  std::cout << "\n(b) station count (capacity 16)\n"
            << bench::cell("stations", 10) << bench::cell("moved", 8)
            << bench::cell("route km", 10) << '\n';
  bench::print_rule(28);
  for (std::size_t n : {10, 20, 40, 80}) {
    stats::Accumulator moved, route;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto stations = random_network(n, 100 + seed);
      rebalance::TruckConfig truck;
      truck.capacity = 16;
      const auto plan = rebalance::plan_rebalancing(stations, truck);
      moved.add(plan.bikes_moved);
      route.add(plan.route_length_m / 1000.0);
    }
    std::cout << bench::cell(static_cast<double>(n), 10, 0)
              << bench::cell(moved.mean(), 8, 1)
              << bench::cell(route.mean(), 10, 1) << '\n';
  }

  std::cout << "\n(c) CC-CV charge curve: per-stop time vs the flat constant\n"
            << bench::cell("pile SoC", 12) << bench::cell("1 slot h", 10)
            << bench::cell("4 slots h", 11) << '\n';
  bench::print_rule(33);
  const energy::ChargeCurve curve;
  stats::Rng rng(7);
  for (double mean_soc : {0.05, 0.10, 0.15}) {
    std::vector<double> pile;
    for (int b = 0; b < 8; ++b) {
      pile.push_back(std::clamp(mean_soc + rng.uniform(-0.03, 0.03), 0.02, 0.19));
    }
    std::cout << bench::cell(mean_soc, 12, 2)
              << bench::cell(energy::pile_charge_hours(curve, pile, 0.95, 1), 10, 2)
              << bench::cell(energy::pile_charge_hours(curve, pile, 0.95, 4), 11, 2)
              << '\n';
  }
  std::cout << "Charging a typical 8-bike pile takes hours serially but\n"
               "approaches the slowest single battery with parallel slots --\n"
               "the physics behind OperatorConfig's parallel charge model.\n";
  return 0;
}
