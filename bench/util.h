#pragma once

/// \file util.h
/// Shared formatting helpers for the reproduction benches. Each bench
/// binary regenerates one table or figure of the paper and prints it in a
/// paper-shaped layout; these helpers keep the output consistent.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

namespace esharing::bench {

inline void print_title(const std::string& title) {
  std::cout << '\n' << std::string(78, '=') << '\n'
            << title << '\n'
            << std::string(78, '=') << '\n';
}

inline void print_rule(std::size_t width = 78) {
  std::cout << std::string(width, '-') << '\n';
}

/// Fixed-precision number formatting for table cells.
inline std::string fmt(double v, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Right-aligned cell of fixed width.
inline std::string cell(const std::string& s, int width = 10) {
  std::ostringstream os;
  os << std::setw(width) << s;
  return os.str();
}

inline std::string cell(double v, int width = 10, int precision = 1) {
  return cell(fmt(v, precision), width);
}

}  // namespace esharing::bench
