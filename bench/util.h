#pragma once

/// \file util.h
/// Shared formatting helpers for the reproduction benches. Each bench
/// binary regenerates one table or figure of the paper and prints it in a
/// paper-shaped layout; these helpers keep the output consistent.

#include <cstdlib>
#include <iomanip>
#include <iostream>  // lint-ok: iostream-header bench mains print tables to stdout; every includer is a single-TU binary
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/registry.h"

namespace esharing::bench {

/// RAII metrics scope for a bench main: enables the obs layer on entry and
/// writes `<name>.metrics.json` into the metrics directory on exit. The
/// directory defaults to `./metrics/` (created on demand) and can be
/// redirected with ESHARING_METRICS_DIR. Setting ESHARING_METRICS=0 in the
/// environment keeps metrics disabled (used for overhead A/B measurement;
/// no snapshot is written then).
class MetricsSession {
 public:
  explicit MetricsSession(std::string name) : name_(std::move(name)) {
    const char* env = std::getenv("ESHARING_METRICS");
    enabled_ = env == nullptr || std::string(env) != "0";
    if (enabled_) obs::set_enabled(true);
  }

  MetricsSession(const MetricsSession&) = delete;
  MetricsSession& operator=(const MetricsSession&) = delete;

  ~MetricsSession() {
    if (!enabled_) return;
    obs::set_enabled(false);
    const std::string path = obs::metrics_snapshot_path(name_);
    if (obs::write_snapshot_json(obs::Registry::global(), path)) {
      std::cout << "\nmetrics snapshot: " << path << '\n';
    }
  }

 private:
  std::string name_;
  bool enabled_{false};
};

inline void print_title(const std::string& title) {
  std::cout << '\n' << std::string(78, '=') << '\n'
            << title << '\n'
            << std::string(78, '=') << '\n';
}

inline void print_rule(std::size_t width = 78) {
  std::cout << std::string(width, '-') << '\n';
}

/// Fixed-precision number formatting for table cells.
inline std::string fmt(double v, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Right-aligned cell of fixed width.
inline std::string cell(const std::string& s, int width = 10) {
  std::ostringstream os;
  os << std::setw(width) << s;
  return os.str();
}

inline std::string cell(double v, int width = 10, int precision = 1) {
  return cell(fmt(v, precision), width);
}

}  // namespace esharing::bench
