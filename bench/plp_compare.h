#pragma once

/// \file plp_compare.h
/// Shared harness for the tier-one evaluation (Fig. 10, Table V): solve the
/// same live request stream with the near-optimal offline algorithm,
/// Meyerson, online k-means, and E-sharing guided either by perfect
/// knowledge of the live demand ("actual") or by an LSTM forecast
/// ("predicted"), and report the paper's cost breakdown.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/synthetic_city.h"
#include "geo/point.h"
#include "solver/facility_location.h"

namespace esharing::bench {

/// One PLP evaluation region: a window of the city with a historical week
/// (for guidance/prediction) and a live week (the stream to serve).
struct PlpScenario {
  std::vector<solver::FlClient> history_sites;  ///< per-cell aggregated history
  std::vector<solver::FlClient> live_sites;     ///< per-cell aggregated live
  std::vector<geo::Point> history_sample;       ///< raw historical destinations
  std::vector<geo::Point> live_requests;        ///< raw live stream, in order
  std::vector<double> history_hourly;           ///< region demand per hour (history)
  std::function<double(geo::Point)> opening_cost;
  double mean_opening_cost{10000.0};
};

/// Cost breakdown in km (the paper's Table V units).
struct MethodResult {
  std::string method;
  double parkings{0.0};
  double walking_km{0.0};
  double space_km{0.0};
  [[nodiscard]] double total_km() const { return walking_km + space_km; }
};

/// Build `n_regions` scenarios by windowing a two-week synthetic city.
[[nodiscard]] std::vector<PlpScenario> make_scenarios(std::size_t n_regions,
                                                      std::uint64_t seed);

[[nodiscard]] MethodResult run_offline_oracle(const PlpScenario& s);
/// Offline frontier: solve the live demand with any solver registered in
/// solver::SolverRegistry ("jms", "jv", "local_search", ...), walking
/// measured against the raw request stream like run_offline_oracle.
[[nodiscard]] MethodResult run_offline_solver(const PlpScenario& s,
                                              const std::string& solver_name,
                                              std::uint64_t seed = 0);
[[nodiscard]] MethodResult run_meyerson(const PlpScenario& s, std::uint64_t seed);
[[nodiscard]] MethodResult run_online_kmeans(const PlpScenario& s,
                                             std::uint64_t seed);
/// E-sharing: offline guide from the live demand itself (predicted = false,
/// "perfect knowledge") or from history rescaled by an LSTM volume forecast
/// (predicted = true).
[[nodiscard]] MethodResult run_esharing(const PlpScenario& s, bool predicted,
                                        std::uint64_t seed);

}  // namespace esharing::bench
