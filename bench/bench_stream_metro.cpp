/// \file bench_stream_metro.cpp
/// End-to-end metro-scale ingestion bench: a synthetic 40 km city emitting
/// one trip-end per second (~86k trips/day scaled up by ESHARING_METRO_EVENTS)
/// is replayed through the stream::Pipeline serving path at every point of a
/// (shards × lanes) matrix, plus a transport-only row measuring the raw
/// publish/drain/merge peak rate.
///
/// Printed per serving row: elapsed, events/s, speedup over the 1-shard
/// baseline, KS regime checks, and the pipeline's own obs counters — lane
/// occupancy, merge stalls and backpressure (blocked publishes).
///
/// Contracts (the process exits 1 when one fails):
///   * every (shards, lanes) run produces the bit-identical decision trace;
///   * 8 shards sustain >= 5x the single-shard event rate (lanes = 1, so
///     the win is algorithmic — sharded KS windows — not parallelism);
///   * 8 shards are not slower than 4 shards (the pre-fix exact-Peacock
///     cliff made them ~2x slower; ks_peacock_limit now defaults to 0).
///
/// ESHARING_METRO_EVENTS overrides the event count (CI smoke uses 30000).

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/util.h"
#include "core/esharing.h"
#include "data/binning.h"
#include "solver/facility_location.h"
#include "stats/rng.h"
#include "stream/pipeline.h"

namespace {

using esharing::geo::Point;
namespace stream = esharing::stream;

constexpr double kAreaM = 40000.0;        // 40 km metro bounding box
constexpr std::size_t kHotspots = 200;    // demand centres
constexpr std::size_t kHistorySample = 2000;
constexpr std::size_t kDefaultEvents = 150000;

std::size_t event_count() {
  const char* env = std::getenv("ESHARING_METRO_EVENTS");
  if (env == nullptr || *env == '\0') return kDefaultEvents;
  const long parsed = std::atol(env);
  return parsed < 1000 ? 1000 : static_cast<std::size_t>(parsed);
}

std::vector<Point> hotspots(esharing::stats::Rng& rng) {
  std::vector<Point> centres;
  centres.reserve(kHotspots);
  for (std::size_t i = 0; i < kHotspots; ++i) {
    centres.push_back({rng.uniform(0.0, kAreaM), rng.uniform(0.0, kAreaM)});
  }
  return centres;
}

Point clamp_to_area(Point p) {
  p.x = p.x < 0.0 ? 0.0 : (p.x > kAreaM ? kAreaM : p.x);
  p.y = p.y < 0.0 ? 0.0 : (p.y > kAreaM ? kAreaM : p.y);
  return p;
}

/// One trip-end per simulated second: 70% cluster around a hotspot
/// (sigma 300 m), 30% background noise, sparse battery telemetry.
std::vector<stream::Event> metro_log(const std::vector<Point>& centres,
                                     std::size_t n) {
  esharing::stats::Rng rng(7);
  std::vector<stream::Event> log;
  log.reserve(n + n / 50);
  for (std::size_t i = 0; i < n; ++i) {
    stream::Event e;
    e.kind = stream::EventKind::kTripEnd;
    e.time = static_cast<esharing::data::Seconds>(i);
    if (rng.bernoulli(0.7)) {
      const Point c = centres[rng.index(centres.size())];
      e.where = clamp_to_area(
          {c.x + rng.normal(0.0, 300.0), c.y + rng.normal(0.0, 300.0)});
    } else {
      e.where = {rng.uniform(0.0, kAreaM), rng.uniform(0.0, kAreaM)};
    }
    log.push_back(e);
    if (i % 50 == 13) {
      stream::Event b;
      b.kind = stream::EventKind::kBatteryLevel;
      b.time = e.time;
      b.where = e.where;
      b.bike_id = static_cast<std::int64_t>(i % 5000);
      b.soc = rng.uniform(0.05, 0.95);
      log.push_back(b);
    }
  }
  return log;
}

std::vector<Point> history_sample(const std::vector<Point>& centres) {
  esharing::stats::Rng rng(11);
  std::vector<Point> sample;
  sample.reserve(kHistorySample);
  for (std::size_t i = 0; i < kHistorySample; ++i) {
    const Point c = centres[rng.index(centres.size())];
    sample.push_back(clamp_to_area(
        {c.x + rng.normal(0.0, 300.0), c.y + rng.normal(0.0, 300.0)}));
  }
  return sample;
}

stream::PipelineConfig pipeline_config(std::size_t shards, std::size_t lanes) {
  stream::PipelineConfig cfg;
  cfg.bus.shard_count = shards;
  cfg.bus.queue_capacity = 4096;
  cfg.bus.max_batch = 256;
  cfg.placer.state.window_length = 1800;  // 30 min sliding demand window
  cfg.placer.regime_check_period = 512;
  cfg.placer.regime_min_samples = 32;
  cfg.lanes = lanes;
  return cfg;
}

struct ServingRun {
  double elapsed_ms{0.0};
  double events_per_s{0.0};
  std::uint64_t regime_checks{0};
  std::size_t stations{0};
  stream::PipelineStats stats;
  std::vector<esharing::solver::OnlineDecision> decisions;
};

ServingRun run_serving(std::size_t shards, std::size_t lanes,
                       const std::vector<stream::Event>& log,
                       const std::vector<Point>& centres,
                       const std::vector<Point>& history) {
  esharing::core::ESharingConfig cfg;
  cfg.placer.ks_period = 0;  // the stream-side sharded check replaces it
  cfg.placer.adaptive_type = false;
  esharing::core::ESharing system(cfg, 17);
  esharing::stats::Rng rng(17);
  std::vector<esharing::data::DemandSite> sites;
  sites.reserve(centres.size());
  for (std::size_t i = 0; i < centres.size(); ++i) {
    sites.push_back({centres[i], rng.uniform(2.0, 15.0), i});
  }
  (void)system.plan_offline(sites, [](Point) { return 15000.0; });
  system.start_online(history);

  stream::Pipeline pipeline(system, history, pipeline_config(shards, lanes));
  const auto t0 = std::chrono::steady_clock::now();
  const auto replay = pipeline.replay(log);
  const auto t1 = std::chrono::steady_clock::now();

  ServingRun out;
  out.elapsed_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events_per_s =
      static_cast<double>(replay.consumed) / (out.elapsed_ms / 1000.0);
  const auto& driver = pipeline.placer_driver();
  for (std::size_t s = 0; s < driver.shard_count(); ++s) {
    out.regime_checks += driver.shard_regime(s).checks;
  }
  out.stations = system.placer().active_locations().size();
  out.stats = pipeline.stats();
  out.decisions = replay.decisions;
  return out;
}

double run_transport(std::size_t shards, const std::vector<stream::Event>& log) {
  stream::PipelineConfig cfg;
  cfg.bus.shard_count = shards;
  cfg.bus.queue_capacity = 4096;
  cfg.bus.max_batch = 256;
  stream::Pipeline pipeline(cfg);
  std::size_t consumed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  while (i < log.size()) {
    const std::size_t n = std::min<std::size_t>(4096, log.size() - i);
    pipeline.publish_batch(
        std::span<const stream::Event>(log).subspan(i, n));
    consumed += pipeline.pump_into([](const stream::Event&) {});
    i += n;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(consumed) / elapsed_s;
}

bool same_decisions(const std::vector<esharing::solver::OnlineDecision>& a,
                    const std::vector<esharing::solver::OnlineDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].opened != b[i].opened || a[i].facility != b[i].facility ||
        a[i].connection_cost != b[i].connection_cost) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  esharing::bench::MetricsSession metrics("bench_stream_metro");
  using esharing::bench::cell;
  using esharing::bench::fmt;

  esharing::stats::Rng rng(3);
  const auto centres = hotspots(rng);
  const std::size_t n_events = event_count();
  const auto log = metro_log(centres, n_events);
  const auto history = history_sample(centres);

  esharing::bench::print_title(
      "metro-scale parallel ingestion — " + std::to_string(log.size()) +
      " events over a " + fmt(kAreaM / 1000.0, 0) + " km box (serving path)");
  std::cout << cell("shards", 7) << cell("lanes", 7) << cell("elapsed ms", 12)
            << cell("events/s", 11) << cell("speedup", 9)
            << cell("KS checks", 11) << cell("occupancy", 11)
            << cell("stalls", 8) << cell("blocked", 9) << '\n';
  esharing::bench::print_rule(85);

  bool ok = true;
  double base_rate = 0.0;
  double elapsed_4 = 0.0;
  double elapsed_8 = 0.0;
  double rate_8 = 0.0;
  std::vector<esharing::solver::OnlineDecision> reference;
  // lanes = 1 is the sequential reference; lanes = 0 drains on the full
  // exec pool (ESHARING_THREADS). Both must produce the identical trace.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{0}}) {
      const ServingRun r = run_serving(shards, lanes, log, centres, history);
      if (shards == 1 && lanes == 1) {
        base_rate = r.events_per_s;
        reference = r.decisions;
      } else if (!same_decisions(reference, r.decisions)) {
        std::cerr << "CONTRACT FAILED: decision trace diverged at shards="
                  << shards << " lanes=" << lanes << '\n';
        ok = false;
      }
      if (lanes == 1 && shards == 4) elapsed_4 = r.elapsed_ms;
      if (lanes == 1 && shards == 8) {
        elapsed_8 = r.elapsed_ms;
        rate_8 = r.events_per_s;
      }
      std::cout << cell(static_cast<double>(shards), 7, 0)
                << cell(lanes == 0 ? "pool" : "1", 7)
                << cell(r.elapsed_ms, 12, 1) << cell(r.events_per_s, 11, 0)
                << cell(fmt(r.events_per_s / base_rate, 2) + "x", 9)
                << cell(static_cast<double>(r.regime_checks), 11, 0)
                << cell(fmt(100.0 * r.stats.lane_occupancy, 0) + "%", 11)
                << cell(static_cast<double>(r.stats.merge_stalls), 8, 0)
                << cell(static_cast<double>(r.stats.bus.blocked_publishes), 9,
                        0)
                << '\n';
    }
  }

  esharing::bench::print_title("transport-only peak rate (no serving tier)");
  std::cout << cell("shards", 7) << cell("events/s", 13) << '\n';
  esharing::bench::print_rule(20);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    std::cout << cell(static_cast<double>(shards), 7, 0)
              << cell(run_transport(shards, log), 13, 0) << '\n';
  }

  if (rate_8 < 5.0 * base_rate) {
    std::cerr << "CONTRACT FAILED: 8-shard serving rate " << fmt(rate_8, 0)
              << " events/s is below 5x the 1-shard rate "
              << fmt(base_rate, 0) << '\n';
    ok = false;
  }
  if (elapsed_8 > 1.25 * elapsed_4) {
    std::cerr << "CONTRACT FAILED: 8 shards (" << fmt(elapsed_8, 1)
              << " ms) slower than 4 shards (" << fmt(elapsed_4, 1)
              << " ms) — the exact-Peacock cliff is back\n";
    ok = false;
  }
  std::cout << (ok ? "\nall contracts held\n" : "\nCONTRACTS FAILED\n");
  return ok ? 0 : 1;
}
