#!/usr/bin/env python3
"""Run the project's clang-tidy gate over src/ using compile_commands.json.

Dependency-free stdlib runner (the llvm run-clang-tidy wrapper is not
guaranteed to be installed where clang-tidy is). Reads the compilation
database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS is ON by
default in this repo), filters it to first-party sources under src/ and
tools/ (the flightq binary ships to operators and gets the same gate),
and runs clang-tidy in parallel with the repo-root .clang-tidy config.

Environments without clang-tidy (the default dev container ships GCC
only) get a SKIP exit of 0 so local ctest runs stay green; CI passes
--require so a missing binary fails loudly there instead of silently
skipping the gate.

Usage:
  tools/tidy/run_clang_tidy.py [--build-dir build] [--require]
                               [--clang-tidy BIN] [--jobs N] [paths...]
  paths: optional substrings to filter which files are checked.
Exit: 0 clean (or skipped without --require), 1 findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_database(build_dir: Path):
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        return None, (f"{db_path} not found — configure first: "
                      "cmake -B build -S . "
                      "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    entries = json.loads(db_path.read_text())
    roots = [(REPO_ROOT / d).resolve() for d in ("src", "tools")]
    files = []
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        if path.suffix == ".cpp" and any(r in path.parents for r in roots):
            files.append(path)
    return sorted(set(files)), None


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of skipping when "
                             "clang-tidy or the compilation database is "
                             "missing — set in CI")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY or "
                             "first of clang-tidy / clang-tidy-18..14 on "
                             "PATH)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("paths", nargs="*",
                        help="only check files whose path contains one "
                             "of these substrings")
    args = parser.parse_args(argv)

    candidates = ([args.clang_tidy] if args.clang_tidy
                  else [os.environ.get("CLANG_TIDY"), "clang-tidy",
                        "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                        "clang-tidy-15", "clang-tidy-14"])
    binary = next((shutil.which(c) for c in candidates if c and shutil.which(c)),
                  None)
    if binary is None:
        msg = "clang-tidy not found on PATH"
        if args.require:
            print(f"run_clang_tidy: {msg} (--require set)", file=sys.stderr)
            return 2
        print(f"run_clang_tidy: SKIP — {msg}")
        return 0

    files, err = load_database(args.build_dir)
    if err is not None:
        if args.require:
            print(f"run_clang_tidy: {err} (--require set)", file=sys.stderr)
            return 2
        print(f"run_clang_tidy: SKIP — {err}")
        return 0
    if args.paths:
        files = [f for f in files
                 if any(p in f.as_posix() for p in args.paths)]
    if not files:
        print("run_clang_tidy: no matching src/ or tools/ .cpp entries in "
              "the compilation database", file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary} over {len(files)} files "
          f"({args.jobs} jobs)")

    def check(path: Path):
        proc = subprocess.run(
            [binary, "--quiet", "-p", str(args.build_dir), str(path)],
            capture_output=True, text=True, check=False)
        return path, proc

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, proc in pool.map(check, files):
            rel = path.relative_to(REPO_ROOT)
            if proc.returncode != 0:
                failures += 1
                print(f"-- FAIL {rel}")
                sys.stdout.write(proc.stdout)
                sys.stderr.write(proc.stderr)
            else:
                print(f"-- ok   {rel}")
    if failures:
        print(f"run_clang_tidy: {failures}/{len(files)} files with findings",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
