#!/usr/bin/env python3
"""Project lint: compile-time determinism & hygiene rules for esharing.

Dependency-free (stdlib only). Driven by the RULES table below; each rule
guards one determinism or hygiene contract that the runtime test suite can
only check probabilistically (see DESIGN.md "Static analysis & determinism
contracts"):

  ambient-rng        no ambient randomness outside src/stats/rng.h —
                     seeded stats::Rng is the only randomness source, so
                     every run is replayable from its seed.
  wall-clock         no wall-clock reads in library code — outputs must be
                     functions of (input, seed), never of the current time.
                     Monotonic steady_clock is allowed (obs timers measure
                     durations, never timestamps).
  raw-thread         no raw thread spawning (std::thread/std::jthread,
                     pthread_create, or even #include <thread>) outside
                     src/exec/ — all parallelism flows through the
                     persistent exec::ThreadPool so thread counts, shutdown
                     and instrumentation stay centralized.
  unordered-iter     no range-for over unordered containers in files that
                     feed checkpoints, JSONL sinks or golden outputs; use
                     data/sorted_view.h (hash order is not part of any
                     contract and varies across libstdc++ versions).
  pragma-once        every header starts with #pragma once.
  iostream-header    headers never include <iostream> (it injects the
                     static ios_base initializer into every TU; use
                     <iosfwd>/<ostream>/<istream>).
  metric-name-freeze every obs metric/event name literal in src/ appears in
                     tools/lint/frozen_metric_names.txt and vice versa, so
                     the golden name-freeze test, the registry file and the
                     call sites cannot drift apart.

Waivers: a finding line (or the line directly above it) may carry
`lint-ok: <rule-id> <justification>`; the justification is mandatory.

Usage:
  lint.py [--root DIR]           lint the production trees (src/ tools/ bench/)
  lint.py --rule ID [--metric-names F] FILE  apply one rule to given files
  lint.py --fix [...]            rewrite files for the mechanical rules
                                 (pragma-once, iostream-header), then lint;
                                 running --fix twice changes nothing
  lint.py --list-rules           print the rules table
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Shared helpers


def strip_comments(text: str, strip_strings: bool) -> str:
    """Blank out comments (and optionally string/char literals), preserving
    line structure so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"' if not strip_strings else " ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'" if not strip_strings else " ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("\\" + nxt if not strip_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote if not strip_strings else " ")
            else:
                out.append(c if not strip_strings else " ")
        i += 1
    return "".join(out)


WAIVER_RE = re.compile(r"lint-ok:\s*([\w-]+)(\s+\S.*)?")


def waived(raw_lines: list[str], lineno: int, rule_id: str) -> bool:
    """True if line `lineno` (1-based) or the line above carries a
    `lint-ok: <rule-id> <justification>` waiver with a justification."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            m = WAIVER_RE.search(raw_lines[ln - 1])
            if m and m.group(1) == rule_id and m.group(2):
                return True
    return False


class Finding:
    def __init__(self, path: Path, line: int, rule_id: str, message: str):
        self.path, self.line, self.rule_id, self.message = (
            path, line, rule_id, message)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


# --------------------------------------------------------------------------
# Pattern-table rules (ambient-rng, wall-clock)

AMBIENT_RNG_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brand_r\s*\("), "rand_r()"),
    (re.compile(r"\b[dlm]rand48\s*\("), "*rand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
]

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "high_resolution_clock (wall clock on libstdc++)"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\b(?:localtime|gmtime|strftime|ctime)\s*\("),
     "calendar-time call"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
]


RAW_THREAD_PATTERNS = [
    # `j?thread` cannot match std::this_thread:: (yield/sleep are fine).
    (re.compile(r"\bstd\s*::\s*j?thread\b"), "std::thread/std::jthread"),
    (re.compile(r"\bpthread_create\b"), "pthread_create()"),
    (re.compile(r"#\s*include\s*<thread>"), "#include <thread>"),
]


def check_patterns(patterns, rule_id, hint):
    def run(path: Path, text: str, ctx: "Context") -> list[Finding]:
        findings = []
        code = strip_comments(text, strip_strings=True)
        raw_lines = text.splitlines()
        for line_no, line in enumerate(code.splitlines(), start=1):
            for pat, what in patterns:
                if pat.search(line) and not waived(raw_lines, line_no, rule_id):
                    findings.append(Finding(
                        path, line_no, rule_id, f"{what} is banned: {hint}"))
        return findings
    return run


# --------------------------------------------------------------------------
# unordered-iter

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
IDENT_AFTER_RE = re.compile(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\(|\)|,)")


def match_angle(text: str, open_idx: int) -> int:
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def unordered_decl_names(code: str) -> set:
    """Identifiers declared with an unordered_map/unordered_set type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        close = match_angle(code, m.end() - 1)
        if close < 0:
            continue
        ident = IDENT_AFTER_RE.match(code, close)
        if ident:
            names.add(ident.group(1))
    return names


FOR_RE = re.compile(r"\bfor\s*\(")
ID_EXPR_RE = re.compile(
    r"^\s*(?:\(\s*)?[A-Za-z_][\w]*(?:\s*(?:\.|->)\s*[A-Za-z_][\w]*)*(?:\s*\))?\s*$")


def split_range_for(header: str):
    """For a range-for header, return the range expression, else None."""
    depth = 0
    for i, c in enumerate(header):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i > 0 and header[i - 1] == ":":
                continue
            if i + 1 < len(header) and header[i + 1] == ":":
                continue
            return header[i + 1:]
    return None


def check_unordered_iter(path: Path, text: str, ctx: "Context"):
    rule_id = "unordered-iter"
    code = strip_comments(text, strip_strings=True)
    raw_lines = text.splitlines()
    names = unordered_decl_names(code)
    # Members declared in the paired header count too (foo.cpp <-> foo.h).
    if path.suffix == ".cpp":
        header = path.with_suffix(".h")
        if header.exists():
            names |= unordered_decl_names(
                strip_comments(header.read_text(), strip_strings=True))
    if not names:
        return []
    findings = []
    for m in FOR_RE.finditer(code):
        open_idx = m.end() - 1
        depth, close_idx = 0, -1
        for i in range(open_idx, len(code)):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    close_idx = i
                    break
        if close_idx < 0:
            continue
        range_expr = split_range_for(code[open_idx + 1:close_idx])
        if range_expr is None or not ID_EXPR_RE.match(range_expr):
            continue  # not a range-for, or not a plain id-expression
        last_ident = re.split(r"\.|->", range_expr)[-1].strip(" ()\t\n")
        if last_ident in names:
            line_no = line_of(code, m.start())
            if not waived(raw_lines, line_no, rule_id):
                findings.append(Finding(
                    path, line_no, rule_id,
                    f"range-for over unordered container '{last_ident}' in a "
                    "determinism-critical file; iterate "
                    "data::sorted_items(...) instead (hash order is not "
                    "stable across platforms)"))
    return findings


# --------------------------------------------------------------------------
# Header hygiene

def check_pragma_once(path: Path, text: str, ctx: "Context"):
    rule_id = "pragma-once"
    raw_lines = text.splitlines()
    code = strip_comments(text, strip_strings=True)
    for line_no, line in enumerate(code.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped == "#pragma once":
            return []
        if waived(raw_lines, line_no, rule_id):
            return []
        return [Finding(path, line_no, rule_id,
                        "header must start with #pragma once "
                        "(first non-comment line)")]
    if waived(raw_lines, 1, rule_id):
        return []
    return [Finding(path, 1, rule_id, "empty header lacks #pragma once")]


IOSTREAM_RE = re.compile(r'#\s*include\s*<iostream>')


def check_iostream_header(path: Path, text: str, ctx: "Context"):
    rule_id = "iostream-header"
    findings = []
    raw_lines = text.splitlines()
    code = strip_comments(text, strip_strings=False)
    for line_no, line in enumerate(code.splitlines(), start=1):
        if IOSTREAM_RE.search(line) and not waived(raw_lines, line_no, rule_id):
            findings.append(Finding(
                path, line_no, rule_id,
                "<iostream> in a header drags the static ios_base "
                "initializer into every includer; use <iosfwd>, <ostream> "
                "or <istream>"))
    return findings


# --------------------------------------------------------------------------
# --fix rewrites for the mechanical header-hygiene rules.  Each fixer takes
# the current text and returns the fixed text, or None when there is nothing
# to do — so running --fix twice is a no-op by construction (the first run
# leaves the file in the rule's clean state, which the checker then accepts).


def fix_pragma_once(path: Path, text: str, ctx: "Context"):
    if not check_pragma_once(path, text, ctx):
        return None
    if not text.strip():
        return "#pragma once\n"
    sep = "" if text.startswith("\n") else "\n"
    return "#pragma once\n" + sep + text


OSTREAM_RE = re.compile(r"#\s*include\s*<ostream>")


def fix_iostream_header(path: Path, text: str, ctx: "Context"):
    raw_lines = text.splitlines()
    kept_lines = text.splitlines(keepends=True)
    code_lines = strip_comments(text, strip_strings=False).splitlines()
    has_ostream = any(OSTREAM_RE.search(ln) for ln in code_lines)
    out, changed = [], False
    for i, raw in enumerate(kept_lines, start=1):
        code = code_lines[i - 1] if i <= len(code_lines) else raw
        if IOSTREAM_RE.search(code) and not waived(raw_lines, i,
                                                   "iostream-header"):
            changed = True
            if has_ostream:
                continue  # <ostream> is already included; drop the line
            out.append(raw.replace("<iostream>", "<ostream>", 1))
            has_ostream = True
        else:
            out.append(raw)
    return "".join(out) if changed else None


# --------------------------------------------------------------------------
# metric-name-freeze

METRIC_CALL_RE = re.compile(
    r"\b(counter|gauge|histogram|emit)\s*\(\s*\"([^\"]+)\"", re.S)


def load_metric_names(path: Path):
    exact, prefixes = set(), set()
    for raw in path.read_text().splitlines():
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        (prefixes if entry.endswith(".") else exact).add(entry)
    return exact, prefixes


def frozen_name_ok(name: str, exact: set, prefixes: set) -> bool:
    return name in exact or any(name.startswith(p) or name == p.rstrip(".")
                                for p in prefixes)


def check_metric_name_freeze(path: Path, text: str, ctx: "Context"):
    rule_id = "metric-name-freeze"
    findings = []
    raw_lines = text.splitlines()
    code = strip_comments(text, strip_strings=False)
    for m in METRIC_CALL_RE.finditer(code):
        name = m.group(2)
        ctx.metric_names_seen.add(name)
        if not frozen_name_ok(name, ctx.frozen_exact, ctx.frozen_prefixes):
            line_no = line_of(code, m.start())
            if not waived(raw_lines, line_no, rule_id):
                findings.append(Finding(
                    path, line_no, rule_id,
                    f"obs {m.group(1)} name '{name}' is not in the frozen "
                    f"registry ({ctx.metric_names_path}); add it there and "
                    "to the ObsGolden name-freeze test, or fix the typo"))
    return findings


def check_stale_registry_entries(ctx: "Context"):
    """Tree mode only: registry entries no call site references any more."""
    rule_id = "metric-name-freeze"
    findings = []
    seen = ctx.metric_names_seen
    for entry in sorted(ctx.frozen_exact):
        if entry not in seen:
            findings.append(Finding(
                ctx.metric_names_path, 0, rule_id,
                f"frozen name '{entry}' is no longer referenced from src/; "
                "remove it here and from the golden test, or restore the "
                "call site"))
    for prefix in sorted(ctx.frozen_prefixes):
        if not any(s == prefix or s.startswith(prefix) for s in seen):
            findings.append(Finding(
                ctx.metric_names_path, 0, rule_id,
                f"frozen prefix '{prefix}' is no longer referenced from "
                "src/"))
    return findings


# --------------------------------------------------------------------------
# Rules table

# fnmatch has no recursive '**' semantics: "src/**/*.h" needs two path
# separators and would skip a header sitting directly at src/foo.h.  Its '*'
# does match '/', so the "src/*.h" spellings cover every depth including the
# top level; the "**" forms are kept for readability.
HEADER_GLOBS = ("src/*.h", "src/**/*.h", "tools/*.h", "bench/*.h")
ALL_GLOBS = ("src/*.h", "src/**/*.h", "src/*.cpp", "src/**/*.cpp",
             "tools/*.h", "tools/*.cpp", "bench/*.h", "bench/*.cpp")

# Files on a serialized-output path: checkpoints (wire format), JSONL event
# sinks, or golden snapshot/regression artifacts. Iteration order anywhere
# here becomes bytes somewhere downstream.  Benches and tools qualify
# wholesale: their stdout/CSV artifacts are diffed across runs.
DETERMINISM_CRITICAL_GLOBS = (
    "src/stream/*.cpp", "src/stream/*.h",
    "src/obs/*.cpp", "src/obs/*.h",
    "src/core/esharing.cpp", "src/core/deviation_placer.cpp",
    "src/core/incentive.cpp",
    "src/data/binning.cpp", "src/data/statistics.cpp",
    "src/sim/simulation.cpp",
    "tools/*.h", "tools/*.cpp", "bench/*.h", "bench/*.cpp",
)

RULES = {
    "ambient-rng": {
        "globs": ALL_GLOBS,
        "exempt": ("src/stats/rng.h",),
        "check": check_patterns(
            AMBIENT_RNG_PATTERNS, "ambient-rng",
            "all randomness flows through seeded stats::Rng "
            "(src/stats/rng.h) so runs are replayable"),
        "doc": "ambient randomness outside src/stats/rng.h",
    },
    "wall-clock": {
        "globs": ALL_GLOBS,
        "exempt": ("src/stats/rng.h",),
        "check": check_patterns(
            WALL_CLOCK_PATTERNS, "wall-clock",
            "library outputs are functions of (input, seed), never of the "
            "current time; use event time or steady_clock durations"),
        "doc": "wall-clock reads in library code",
    },
    "raw-thread": {
        "globs": ALL_GLOBS,
        "exempt": ("src/exec/thread_pool.h", "src/exec/thread_pool.cpp"),
        "check": check_patterns(
            RAW_THREAD_PATTERNS, "raw-thread",
            "spawn work on the persistent exec::ThreadPool "
            "(src/exec/thread_pool.h) instead of raw threads; "
            "std::this_thread::yield needs <thread> — waive the include "
            "with a justification"),
        "doc": "raw thread spawning outside src/exec/",
    },
    "unordered-iter": {
        "globs": DETERMINISM_CRITICAL_GLOBS,
        "exempt": (),
        "check": check_unordered_iter,
        "doc": "unordered-container iteration on serialized-output paths",
    },
    "pragma-once": {
        "globs": HEADER_GLOBS,
        "exempt": (),
        "check": check_pragma_once,
        "fix": fix_pragma_once,
        "doc": "headers must start with #pragma once",
    },
    "iostream-header": {
        "globs": HEADER_GLOBS,
        "exempt": (),
        "check": check_iostream_header,
        "fix": fix_iostream_header,
        "doc": "no <iostream> in headers",
    },
    "metric-name-freeze": {
        # src/ only: the frozen registry mirrors the ObsGolden name-freeze
        # test, which covers library call sites — bench/tool metric names
        # are free-form.
        "globs": ("src/*.h", "src/**/*.h", "src/*.cpp", "src/**/*.cpp"),
        "exempt": (),
        "check": check_metric_name_freeze,
        "doc": "obs metric/event names match the frozen registry",
    },
}


class Context:
    def __init__(self, metric_names_path: Path):
        self.metric_names_path = metric_names_path
        self.frozen_exact, self.frozen_prefixes = (
            load_metric_names(metric_names_path)
            if metric_names_path.exists() else (set(), set()))
        self.metric_names_seen = set()


def rel_match(rel: str, globs) -> bool:
    return any(fnmatch.fnmatch(rel, g) for g in globs)


LINTED_TREES = ("src", "tools", "bench")


def tree_files(root: Path) -> list:
    return sorted(p for tree in LINTED_TREES if (root / tree).is_dir()
                  for p in (root / tree).rglob("*")
                  if p.suffix in (".h", ".cpp"))


def lint_tree(root: Path, ctx: Context) -> list:
    findings = []
    for path in tree_files(root):
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        for rule_id, rule in RULES.items():
            if not rel_match(rel, rule["globs"]) or rel in rule["exempt"]:
                continue
            findings.extend(rule["check"](path, text, ctx))
    findings.extend(check_stale_registry_entries(ctx))
    return findings


def fix_tree(root: Path, ctx: Context) -> int:
    """Apply every rule's fixer across the tree; returns files changed."""
    fixed = 0
    for path in tree_files(root):
        rel = path.relative_to(root).as_posix()
        for rule_id, rule in RULES.items():
            fixer = rule.get("fix")
            if (fixer is None or not rel_match(rel, rule["globs"])
                    or rel in rule["exempt"]):
                continue
            new = fixer(path, path.read_text(), ctx)
            if new is not None:
                path.write_text(new)
                fixed += 1
    return fixed


def fix_files(paths, rule_id: str, ctx: Context) -> int:
    fixer = RULES[rule_id].get("fix")
    fixed = 0
    if fixer is None:
        return 0
    for path in paths:
        new = fixer(path, path.read_text(), ctx)
        if new is not None:
            path.write_text(new)
            fixed += 1
    return fixed


def lint_files(paths, rule_id: str, ctx: Context,
               check_stale: bool = False) -> list:
    rule = RULES[rule_id]
    findings = []
    for path in paths:
        findings.extend(rule["check"](path, path.read_text(), ctx))
    if rule_id == "metric-name-freeze" and check_stale:
        # The staleness direction only makes sense when the registry is
        # scoped to the files passed in (an explicit --metric-names, as the
        # fixtures use); against the production registry it would flag every
        # entry the given files happen not to reference.
        findings.extend(check_stale_registry_entries(ctx))
    return findings


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--rule", choices=sorted(RULES),
                        help="apply one rule to the given files")
    parser.add_argument("--metric-names", type=Path, default=None,
                        help="override the frozen metric-name registry file")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite files for the mechanical rules "
                        "(pragma-once, iostream-header) before linting; "
                        "idempotent")
    parser.add_argument("files", nargs="*", type=Path)
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in RULES.items():
            print(f"{rule_id:20s} {rule['doc']}")
        return 0

    root = args.root or Path(__file__).resolve().parents[2]
    metric_names = args.metric_names or (
        root / "tools" / "lint" / "frozen_metric_names.txt")
    ctx = Context(metric_names)

    if args.rule:
        if not args.files:
            print("lint.py: --rule needs explicit files", file=sys.stderr)
            return 2
        if args.fix:
            fixed = fix_files(args.files, args.rule, ctx)
            if fixed:
                print(f"lint: fixed {fixed} file(s)", file=sys.stderr)
        findings = lint_files(args.files, args.rule, ctx,
                              check_stale=args.metric_names is not None)
    else:
        if args.files:
            print("lint.py: pass --rule with explicit files", file=sys.stderr)
            return 2
        if args.fix:
            fixed = fix_tree(root, ctx)
            if fixed:
                print(f"lint: fixed {fixed} file(s)", file=sys.stderr)
        findings = lint_tree(root, ctx)

    for f in findings:
        print(f)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
