/// \file flightq.cpp
/// Incident-window queries over esharing-serve flight-recorder logs
/// (JSONL, one decision per line — see src/serve/flight_recorder.h).
///
/// Usage:
///   flightq <log.jsonl>... [--mode pretty|trace|stats]
///           [--from-seq A] [--to-seq B] [--from-time A] [--to-time B]
///           [--opened-only] [--tail N]
///
/// Modes:
///   pretty (default) — human-readable one-liner per decision.
///   trace  — canonical machine-diffable lines: the per-process fields
///            (idx — restarts each file; ref — internal routing tokens)
///            are dropped, seq and the decision fields kept. Two runs of
///            the same event stream — including a kill-and-restart run
///            whose leg logs are passed in order — produce byte-identical
///            trace output; the serve-smoke CI job diffs exactly this.
///   stats  — window summary: count, opened, cost sum, seq/time ranges.
///
/// Multiple log files are concatenated in argument order (the restart
/// case: leg1.jsonl leg2.jsonl).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace {

struct Record {
  std::int64_t seq{0};
  std::int64_t time{0};
  double dest_x{0.0};
  double dest_y{0.0};
  double weight{0.0};
  bool opened{false};
  std::int64_t facility{0};
  double connection_cost{0.0};
};

/// Extract the value following `"key":` in a flat JSON object line.
/// Returns false when the key is absent.
bool extract_raw(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  auto begin = pos + needle.size();
  auto end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  out = line.substr(begin, end - begin);
  return true;
}

bool parse_record(const std::string& line, Record& r) {
  std::string v;
  if (!extract_raw(line, "seq", v)) return false;
  r.seq = std::strtoll(v.c_str(), nullptr, 10);
  if (!extract_raw(line, "time", v)) return false;
  r.time = std::strtoll(v.c_str(), nullptr, 10);
  if (!extract_raw(line, "dest_x", v)) return false;
  r.dest_x = std::strtod(v.c_str(), nullptr);
  if (!extract_raw(line, "dest_y", v)) return false;
  r.dest_y = std::strtod(v.c_str(), nullptr);
  if (!extract_raw(line, "weight", v)) return false;
  r.weight = std::strtod(v.c_str(), nullptr);
  if (!extract_raw(line, "opened", v)) return false;
  r.opened = v == "1" || v == "true";
  if (!extract_raw(line, "facility", v)) return false;
  r.facility = std::strtoll(v.c_str(), nullptr, 10);
  if (!extract_raw(line, "connection_cost", v)) return false;
  r.connection_cost = std::strtod(v.c_str(), nullptr);
  return true;
}

/// Canonical number formatting matching obs::json_number: integral values
/// print without a decimal point so trace output diffs bytewise.
std::string fmt_num(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

struct Options {
  std::vector<std::string> paths;
  std::string mode{"pretty"};
  std::int64_t from_seq{std::numeric_limits<std::int64_t>::min()};
  std::int64_t to_seq{std::numeric_limits<std::int64_t>::max()};
  std::int64_t from_time{std::numeric_limits<std::int64_t>::min()};
  std::int64_t to_time{std::numeric_limits<std::int64_t>::max()};
  bool opened_only{false};
  std::size_t tail{0};
};

int usage() {
  std::fprintf(
      stderr,
      "usage: flightq <log.jsonl>... [--mode pretty|trace|stats]\n"
      "               [--from-seq A] [--to-seq B] [--from-time A]\n"
      "               [--to-time B] [--opened-only] [--tail N]\n");
  return 2;
}

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--mode" && (v = value())) {
      opt.mode = v;
      if (opt.mode != "pretty" && opt.mode != "trace" && opt.mode != "stats") {
        return false;
      }
    } else if (arg == "--from-seq" && (v = value())) {
      opt.from_seq = std::strtoll(v, nullptr, 10);
    } else if (arg == "--to-seq" && (v = value())) {
      opt.to_seq = std::strtoll(v, nullptr, 10);
    } else if (arg == "--from-time" && (v = value())) {
      opt.from_time = std::strtoll(v, nullptr, 10);
    } else if (arg == "--to-time" && (v = value())) {
      opt.to_time = std::strtoll(v, nullptr, 10);
    } else if (arg == "--opened-only") {
      opt.opened_only = true;
    } else if (arg == "--tail" && (v = value())) {
      opt.tail = std::strtoull(v, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.paths.push_back(arg);
    }
  }
  return !opt.paths.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return usage();

  std::deque<Record> window;
  std::size_t parsed = 0;
  std::size_t skipped = 0;
  for (const auto& path : opt.paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "flightq: cannot open %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      Record r;
      if (!parse_record(line, r)) {
        ++skipped;
        continue;
      }
      ++parsed;
      if (r.seq < opt.from_seq || r.seq > opt.to_seq) continue;
      if (r.time < opt.from_time || r.time > opt.to_time) continue;
      if (opt.opened_only && !r.opened) continue;
      window.push_back(r);
      if (opt.tail > 0 && window.size() > opt.tail) window.pop_front();
    }
  }
  if (skipped > 0) {
    std::fprintf(stderr, "flightq: skipped %zu unparseable lines\n", skipped);
  }

  if (opt.mode == "stats") {
    std::size_t opened = 0;
    double cost = 0.0;
    std::int64_t seq_lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t seq_hi = std::numeric_limits<std::int64_t>::min();
    std::int64_t t_lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t t_hi = std::numeric_limits<std::int64_t>::min();
    for (const auto& r : window) {
      opened += r.opened ? 1 : 0;
      cost += r.connection_cost;
      seq_lo = std::min(seq_lo, r.seq);
      seq_hi = std::max(seq_hi, r.seq);
      t_lo = std::min(t_lo, r.time);
      t_hi = std::max(t_hi, r.time);
    }
    std::printf("decisions: %zu\n", window.size());
    std::printf("opened: %zu\n", opened);
    std::printf("connection_cost_sum: %s\n", fmt_num(cost).c_str());
    if (!window.empty()) {
      std::printf("seq_range: [%lld, %lld]\n",
                  static_cast<long long>(seq_lo),
                  static_cast<long long>(seq_hi));
      std::printf("time_range: [%lld, %lld]\n", static_cast<long long>(t_lo),
                  static_cast<long long>(t_hi));
    }
    return 0;
  }

  for (const auto& r : window) {
    if (opt.mode == "trace") {
      std::printf(
          "{\"seq\":%lld,\"time\":%lld,\"dest_x\":%s,\"dest_y\":%s,"
          "\"weight\":%s,\"opened\":%d,\"facility\":%lld,"
          "\"connection_cost\":%s}\n",
          static_cast<long long>(r.seq), static_cast<long long>(r.time),
          fmt_num(r.dest_x).c_str(), fmt_num(r.dest_y).c_str(),
          fmt_num(r.weight).c_str(), r.opened ? 1 : 0,
          static_cast<long long>(r.facility),
          fmt_num(r.connection_cost).c_str());
    } else {
      std::printf("seq %8lld  t %8lld  dest (%9.2f, %9.2f)  %s facility "
                  "%lld  cost %.3f\n",
                  static_cast<long long>(r.seq),
                  static_cast<long long>(r.time), r.dest_x, r.dest_y,
                  r.opened ? "OPEN " : "reuse", static_cast<long long>(r.facility),
                  r.connection_cost);
    }
  }
  return 0;
}
