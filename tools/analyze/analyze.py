#!/usr/bin/env python3
"""Whole-project contract analyzer: lock order, module layering, frozen formats.

Dependency-free (stdlib only), same contract as tools/lint/lint.py: findings
print as `path:line: [rule-id] message`, exit 0 clean / 1 findings / 2 usage.
Three passes, each independently runnable with --pass (see DESIGN.md "Static
analysis & determinism contracts"):

  lock-order      parse es::Mutex / ES_GUARDED_BY / LockGuard / UniqueLock
                  sites, build the static acquired-while-held graph, fail on
                  cycles (lock-order-cycle), flag blocking operations —
                  socket/file I/O, sleeps, exec::ThreadPool submission —
                  performed under a lock (blocking-under-lock), flag condvar
                  waits holding more than one lock (condvar-double-lock), and
                  flag ES_GUARDED_BY annotations naming a mutex that is not
                  declared anywhere in scope (guarded-by-unknown).
  layering        extract the `#include "..."` graph over src/ and enforce
                  the DAG declared in tools/analyze/layering.txt: no cycles
                  (layering-cycle), every cross-module edge points to a
                  strictly lower layer (layering-upward), every module is
                  declared (layering-undeclared), every declared module still
                  exists (layering-stale), and src/ never includes
                  bench/tools/tests (layering-upward).
  format-freeze   compute canonical layout digests for every serialized
                  surface (wire::write_*/read_* call sequences, protocol.h
                  enum/struct declarations, flight-recorder JSONL keys) and
                  check them in both directions against
                  tools/lint/frozen_formats.txt (format-freeze rule), so any
                  format edit forces an explicit digest refresh — and a
                  version-constant bump when the byte layout changed — in the
                  same diff.  `--update` regenerates the frozen file.

The lock-order pass is intentionally an over-approximation: inter-procedural
edges flow through a name-merged call graph (methods with the same unqualified
name share a node), and mutexes that cannot be attributed to a unique class
collapse into a per-file node.  False positives are waivable; false negatives
are bounded by the single-TU scope of Clang thread-safety analysis that this
pass complements.

Waivers: a finding line (or the line directly above it) may carry
`analyze-ok: <rule-id> <justification>`; the justification is mandatory.

Usage:
  analyze.py [--root DIR] [--pass NAME] [--layers F] [--formats F] [--json]
  analyze.py --update [--root DIR] [--formats F]   regenerate frozen formats
  analyze.py --list-passes
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "lint"))
from lint import Finding, line_of, strip_comments  # noqa: E402

WAIVER_RE = re.compile(r"analyze-ok:\s*([\w-]+)(\s+\S.*)?")


def waived(raw_lines: list[str], lineno: int, rule_id: str) -> bool:
    """True if line `lineno` (1-based) or the line above carries an
    `analyze-ok: <rule-id> <justification>` waiver with a justification."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            m = WAIVER_RE.search(raw_lines[ln - 1])
            if m and m.group(1) == rule_id and m.group(2):
                return True
    return False


def src_files(root: Path) -> list[Path]:
    return sorted(p for p in (root / "src").rglob("*")
                  if p.suffix in (".h", ".cpp"))


# ==========================================================================
# Pass 1: lock-order
#
# A statement-level scope walker over comment/string-stripped code.  Braces
# are classified by their "head" (the text since the last `;`/`{`/`}`):
# class, namespace, enum, lambda, function, or plain block.  Guard objects
# (es::LockGuard / es::UniqueLock) bind to the innermost function-like scope
# and are released when their block closes (or on an explicit .unlock()).
# While at least one guard is held, the walker records acquired-while-held
# edges, blocking operations, condvar waits, and calls (for one level of
# name-based inter-procedural propagation of acquire sets).
# ==========================================================================

MUTEX_DECL_RE = re.compile(r"\bes::(?:Shared)?Mutex\s+(\w+)")
GUARD_RE = re.compile(r"\bes::(?:LockGuard|UniqueLock)\s+(\w+)\s*\(")
GUARDED_BY_RE = re.compile(r"\bES_(?:PT_)?GUARDED_BY\s*\(\s*([^)]*?)\s*\)")
UNLOCK_RE = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(\s*\)")
RELOCK_RE = re.compile(r"\b(\w+)\s*\.\s*lock\s*\(\s*\)")
CONDVAR_WAIT_RE = re.compile(r"\.\s*wait(?:_for|_until)?\s*\(")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
WRITE_EXPR_RE = re.compile(r"(?:^|[;({])\s*([*\w.\->]+?)\s*<<")

CALL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "throw", "new", "delete", "static_cast",
    "const_cast", "reinterpret_cast", "dynamic_cast", "static_assert",
    "assert", "defined", "case", "do", "else", "try", "LockGuard",
    "UniqueLock", "ES_GUARDED_BY", "ES_PT_GUARDED_BY",
})

BLOCKING_PATTERNS = [
    (re.compile(r"\bwrite_frame\s*\("), "socket write (write_frame)"),
    (re.compile(r"\bread_frame\s*\("), "socket read (read_frame)"),
    (re.compile(r"::\s*(?:read|write|recv|send|accept|poll|connect)\s*\("),
     "raw fd syscall"),
    (re.compile(r"\.\s*flush\s*\(\s*\)"), "stream flush"),
    (re.compile(r"\.\s*open\s*\("), "file open"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep"),
    (re.compile(r"\b(?:usleep|nanosleep)\s*\("), "sleep"),
    (re.compile(r"\bsubmit\s*\("), "exec::ThreadPool submission"),
    (re.compile(r"\bparallel_(?:for|reduce)\s*\("), "exec parallel region"),
]

HEAD_CLASS_RE = re.compile(r"\b(?:class|struct|union)\s+([\w:]+)")
HEAD_ENUM_RE = re.compile(r"\benum\b")
HEAD_NAMESPACE_RE = re.compile(r"\bnamespace\b")
HEAD_LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>,&*\s]+)?$")
HEAD_QUALIFIER_RE = re.compile(
    r"(?:\s*(?:const|noexcept|override|final|mutable"
    r"|->\s*[\w:<>,&*\s]+|ES_\w+\s*\([^()]*\)))*\s*$")
FUNC_NAME_RE = re.compile(r"((?:\w+\s*::\s*)*~?\w+)\s*$")
BLOCK_KEYWORDS = frozenset({"if", "for", "while", "switch", "catch"})


class Scope:
    __slots__ = ("kind", "name", "held")

    def __init__(self, kind: str, name: str = ""):
        self.kind = kind      # class | namespace | enum | func | lambda | block
        self.name = name
        self.held = []        # func/lambda only: list of Guard


class Guard:
    __slots__ = ("node", "var", "line", "depth", "active")

    def __init__(self, node: str, var: str, line: int, depth: int):
        self.node, self.var, self.line, self.depth = node, var, line, depth
        self.active = True


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_top_commas(text: str) -> list[str]:
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def strip_init_list(head: str) -> str:
    """Drop a constructor member-initializer list: `C::C(a) : m_(a)` -> the
    part before the top-level single `:` that follows a `)`."""
    depth, seen_paren = 0, False
    i = 0
    while i < len(head):
        c = head[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            seen_paren = seen_paren or c == ")"
        elif c == ":" and depth == 0 and seen_paren:
            if head[i - 1: i] != ":" and head[i + 1: i + 2] != ":":
                return head[:i]
            i += 1  # skip the second ':' of '::'
        i += 1
    return head


def classify_head(head: str):
    """Return (kind, name) for the scope opened by a `{` with this head."""
    h = strip_init_list(head).strip()
    if HEAD_ENUM_RE.search(h):
        return "enum", ""
    m = HEAD_CLASS_RE.search(h)
    if m and "(" not in h.split(m.group(1), 1)[0]:
        # A real class head, not `foo(struct tm x)`; base clauses are fine.
        before_brace = h[m.end():]
        if "(" not in before_brace:
            return "class", m.group(1)
    if HEAD_NAMESPACE_RE.search(h) and "(" not in h:
        return "namespace", ""
    if HEAD_LAMBDA_RE.search(h):
        return "lambda", "<lambda>"
    h2 = HEAD_QUALIFIER_RE.sub("", h)
    if h2.endswith(")"):
        # Walk back over the parameter list to find the callee name.
        depth, i = 0, len(h2) - 1
        while i >= 0:
            if h2[i] == ")":
                depth += 1
            elif h2[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        if i > 0:
            m = FUNC_NAME_RE.search(h2[:i])
            if m:
                name = re.sub(r"\s+", "", m.group(1))
                if name.split("::")[-1] not in BLOCK_KEYWORDS:
                    return "func", name
    return "block", ""


class MutexRegistry:
    """All es::Mutex declarations in the tree, attributed to their class."""

    def __init__(self):
        self.by_class = {}      # class name -> set of mutex member names
        self.by_file = {}       # file stem -> {mutex name -> set of classes}

    def add(self, stem: str, cls: str | None, name: str):
        if cls:
            self.by_class.setdefault(cls, set()).add(name)
        self.by_file.setdefault(stem, {}).setdefault(
            name, set()).add(cls or "")

    def resolve(self, stem: str, cls: str | None, name: str) -> str:
        """Node id for a guard on `name` seen in class `cls` of file `stem`.
        Preference: enclosing class member, then unique class in the same
        file pair, then unique class project-wide, then a per-file node."""
        if cls and name in self.by_class.get(cls, ()):
            return f"{cls}::{name}"
        file_classes = {c for c in self.by_file.get(stem, {}).get(name, ())
                        if c}
        if len(file_classes) == 1:
            return f"{next(iter(file_classes))}::{name}"
        global_classes = {c for c in self.by_class
                          if name in self.by_class[c]}
        if len(global_classes) == 1:
            return f"{next(iter(global_classes))}::{name}"
        return f"{stem}::{name}"


class FileLockFacts:
    """Per-file raw facts collected by the scope walker."""

    def __init__(self, path: Path):
        self.path = path
        self.guard_sites = []     # (func, cls, var, mutex_name, line)
        self.edge_sites = []      # (held_resolver_args, new_args, line)
        self.blocking = []        # (line, what, held_names)
        self.cv_double = []       # (line, held_names)
        self.calls_under_lock = []  # (callee, held_args, line)
        self.calls = []           # (func_key, callee)
        self.guarded_by = []      # (cls, mutex_name, line)
        self.mutex_decls = []     # (cls, name, line)


def nearest(stack: list[Scope], kinds) -> Scope | None:
    for sc in reversed(stack):
        if sc.kind in kinds:
            return sc
        if sc.kind in ("class", "namespace", "enum") and "func" in kinds:
            return None  # left the function context
    return None


def enclosing_class(stack: list[Scope]) -> str | None:
    for sc in reversed(stack):
        if sc.kind == "class":
            return sc.name
    return None


def context_class(stack: list[Scope]) -> str | None:
    """Class context of the current statement: the innermost class scope, or
    the `Class::` qualifier of an out-of-line method definition.  Lambdas
    capture their enclosing object, so they inherit the outer context."""
    for sc in reversed(stack):
        if sc.kind == "class":
            return sc.name
        if sc.kind == "func" and "::" in sc.name:
            return sc.name.rsplit("::", 1)[0]
    return None


def blank_preprocessor(code: str) -> str:
    """Blank out preprocessor directives (and their `\\` continuations) so
    macro definitions never look like declarations or lock sites."""
    lines = code.split("\n")
    cont = False
    for i, ln in enumerate(lines):
        if cont or ln.lstrip().startswith("#"):
            cont = ln.rstrip().endswith("\\")
            lines[i] = " " * len(ln)
        else:
            cont = False
    return "\n".join(lines)


def walk_file(path: Path, stream_members: set) -> FileLockFacts:
    facts = FileLockFacts(path)
    code = blank_preprocessor(
        strip_comments(path.read_text(), strip_strings=True))
    stack: list[Scope] = []
    paren_stack: list[int] = []
    paren_depth = 0
    buf_start = 0
    i, n = 0, len(code)

    def func_scope() -> Scope | None:
        return nearest(stack, ("func", "lambda"))

    def func_key() -> str:
        sc = func_scope()
        return sc.name.split("::")[-1] if sc and sc.kind == "func" else ""

    def held() -> list[Guard]:
        sc = func_scope()
        return [g for g in sc.held if g.active] if sc else []

    def statement(start: int, end: int):
        text = code[start:end]
        if not text.strip():
            return
        stem = path.stem
        cls = context_class(stack)

        for m in MUTEX_DECL_RE.finditer(text):
            facts.mutex_decls.append((enclosing_class(stack), m.group(1),
                                      line_of(code, start + m.start())))
        for m in GUARDED_BY_RE.finditer(text):
            idents = re.findall(r"[A-Za-z_]\w*", m.group(1))
            if idents:
                facts.guarded_by.append((cls, idents[-1],
                                         line_of(code, start + m.start())))

        sc = func_scope()
        if sc is None:
            return
        cur = held()

        for m in GUARD_RE.finditer(text):
            close = match_paren(text, m.end() - 1)
            if close < 0:
                continue
            args = split_top_commas(text[m.end():close])
            idents = re.findall(r"[A-Za-z_]\w*", args[0])
            if not idents:
                continue
            line = line_of(code, start + m.start())
            mutex = idents[-1]
            for g in cur:
                facts.edge_sites.append((g.node, (stem, cls, mutex), line))
            g = Guard(node=(stem, cls, mutex), var=m.group(1), line=line,
                      depth=len(stack))
            sc.held.append(g)
            facts.guard_sites.append((func_key(), cls, m.group(1), mutex,
                                      line))
            cur = held()

        for m in UNLOCK_RE.finditer(text):
            for g in sc.held:
                if g.var == m.group(1):
                    g.active = False
        for m in RELOCK_RE.finditer(text):
            for g in sc.held:
                if g.var == m.group(1):
                    g.active = True
        cur = held()

        if cur:
            names = [g.node for g in cur]
            if len(cur) >= 2 and CONDVAR_WAIT_RE.search(text):
                facts.cv_double.append(
                    (line_of(code, start), list(names)))
            for pat, what in BLOCKING_PATTERNS:
                m = pat.search(text)
                if m:
                    facts.blocking.append(
                        (line_of(code, start + m.start()), what,
                         list(names)))
            m = WRITE_EXPR_RE.search(text)
            if m:
                idents = re.findall(r"[A-Za-z_]\w*", m.group(1))
                if idents and idents[-1] in stream_members:
                    facts.blocking.append(
                        (line_of(code, start + m.start(1)),
                         f"ostream write to '{idents[-1]}'", list(names)))
            for m in CALL_RE.finditer(text):
                callee = m.group(1)
                if callee not in CALL_KEYWORDS and not callee.startswith(
                        "ES_"):
                    facts.calls_under_lock.append(
                        (callee, list(names),
                         line_of(code, start + m.start())))

        if func_key():
            for m in CALL_RE.finditer(text):
                if m.group(1) not in CALL_KEYWORDS:
                    facts.calls.append((func_key(), m.group(1)))

    while i < n:
        c = code[i]
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == "{":
            statement(buf_start, i)
            kind, name = classify_head(code[buf_start:i])
            stack.append(Scope(kind, name))
            paren_stack.append(paren_depth)
            paren_depth = 0
            buf_start = i + 1
        elif c == "}":
            statement(buf_start, i)
            if stack:
                popped_depth = len(stack)
                stack.pop()
                sc = func_scope()
                if sc:
                    sc.held = [g for g in sc.held if g.depth < popped_depth]
            if paren_stack:
                paren_depth = paren_stack.pop()
            buf_start = i + 1
        elif c == ";" and paren_depth == 0:
            statement(buf_start, i + 1)
            buf_start = i + 1
        i += 1
    statement(buf_start, n)
    return facts


def collect_stream_members(paths: list[Path]) -> set:
    members = set()
    for path in paths:
        code = strip_comments(path.read_text(), strip_strings=True)
        for m in re.finditer(r"\bstd::ostream\s*[*&]\s*(\w+)", code):
            members.add(m.group(1))
        for m in re.finditer(r"\bstd::ofstream\s+(\w+)\s*[;\s]", code):
            members.add(m.group(1))
    return members


def lock_order_pass(root: Path) -> list:
    files = src_files(root)
    stream_members = collect_stream_members(files)
    registry = MutexRegistry()
    all_facts = []
    for path in files:
        facts = walk_file(path, stream_members)
        for cls, name, _line in facts.mutex_decls:
            registry.add(path.stem, cls, name)
        all_facts.append(facts)

    findings = []
    raw_cache = {}

    def raw_lines(path: Path) -> list[str]:
        if path not in raw_cache:
            raw_cache[path] = path.read_text().splitlines()
        return raw_cache[path]

    # --- acquire sets + name-merged call graph for one-level propagation
    acquires = {}   # func key -> set of nodes
    calls = {}      # func key -> set of callee keys
    for facts in all_facts:
        for func, cls, _var, mutex, _line in facts.guard_sites:
            if func:
                acquires.setdefault(func, set()).add(
                    registry.resolve(facts.path.stem, cls, mutex))
        for caller, callee in facts.calls:
            calls.setdefault(caller, set()).add(callee)
    trans = {f: set(s) for f, s in acquires.items()}
    changed = True
    while changed:
        changed = False
        for f, callees in calls.items():
            acc = trans.setdefault(f, set())
            before = len(acc)
            for c in callees:
                acc |= trans.get(c, set())
            if len(acc) != before:
                changed = True

    # --- build the acquired-while-held edge set
    edges = {}  # (held_node, new_node) -> list of (path, line, how)
    for facts in all_facts:
        for held_node, new_args, line in facts.edge_sites:
            h = registry.resolve(*held_node)
            v = registry.resolve(*new_args)
            if h != v:
                edges.setdefault((h, v), []).append(
                    (facts.path, line, "direct acquisition"))
        for callee, held_nodes, line in facts.calls_under_lock:
            for target in sorted(trans.get(callee, ())):
                for hn in held_nodes:
                    h = registry.resolve(hn[0], hn[1], hn[2])
                    if h != target:
                        edges.setdefault((h, target), []).append(
                            (facts.path, line, f"via call to {callee}()"))

    # --- cycle detection (SCCs over the mutex digraph)
    graph = {}
    for (u, v) in edges:
        graph.setdefault(u, set()).add(v)
        graph.setdefault(v, set())
    for scc in strongly_connected(graph):
        if len(scc) < 2:
            u = next(iter(scc))
            if u not in graph.get(u, ()):
                continue
        member_edges = [((u, v), sites) for (u, v), sites in edges.items()
                        if u in scc and v in scc]
        waived_cycle = any(
            waived(raw_lines(p), line, "lock-order-cycle")
            for _e, sites in member_edges for p, line, _how in sites)
        if waived_cycle:
            continue
        detail = "; ".join(
            f"{u}->{v} at {p.name}:{line} ({how})"
            for (u, v), sites in sorted(member_edges,
                                        key=lambda e: str(e[0]))
            for p, line, how in sites[:1])
        p0, l0, _ = member_edges[0][1][0]
        findings.append(Finding(
            p0, l0, "lock-order-cycle",
            f"lock acquisition cycle among {{{', '.join(sorted(scc))}}}: "
            f"{detail}; impose a global order or collapse the locks"))

    # --- blocking ops + condvar double-lock + guarded-by validation
    for facts in all_facts:
        stem = facts.path.stem
        for line, what, held_nodes in facts.blocking:
            if not waived(raw_lines(facts.path), line, "blocking-under-lock"):
                names = ", ".join(sorted(
                    registry.resolve(hn[0], hn[1], hn[2])
                    for hn in held_nodes))
                findings.append(Finding(
                    facts.path, line, "blocking-under-lock",
                    f"{what} while holding {{{names}}}; move the blocking "
                    "call outside the critical section or waive with the "
                    "reason the lock must cover it"))
        for line, held_nodes in facts.cv_double:
            if not waived(raw_lines(facts.path), line, "condvar-double-lock"):
                names = ", ".join(sorted(
                    registry.resolve(hn[0], hn[1], hn[2])
                    for hn in held_nodes))
                findings.append(Finding(
                    facts.path, line, "condvar-double-lock",
                    f"condition-variable wait while holding {{{names}}}: "
                    "wait() releases only the lock it was given; the others "
                    "stay held across the sleep"))
        for cls, name, line in facts.guarded_by:
            known = (cls and name in registry.by_class.get(cls, ())) or \
                registry.by_file.get(stem, {}).get(name)
            if not known and not waived(raw_lines(facts.path), line,
                                        "guarded-by-unknown"):
                findings.append(Finding(
                    facts.path, line, "guarded-by-unknown",
                    f"ES_GUARDED_BY({name}) names a mutex not declared as "
                    "an es::Mutex in this class or file; the annotation "
                    "guards nothing"))
    return findings


def strongly_connected(graph: dict) -> list:
    """Tarjan's SCC algorithm, iterative."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(sorted(graph.get(start, ()))))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                low[work[-1][0]] = min(low[work[-1][0]], low[node])
            if low[node] == index[node]:
                scc = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)
    return sccs


# ==========================================================================
# Pass 2: module layering
# ==========================================================================

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
FOREIGN_TREES = ("bench/", "tools/", "tests/", "examples/")


def module_of(rel: str) -> str | None:
    """Module name for a src-relative path like `geo/point.h`.  The two
    annotation headers form their own bottom layer (`core.sync`) because
    every lock-using module includes them."""
    if rel in ("core/sync.h", "core/thread_annotations.h"):
        return "core.sync"
    if "/" not in rel:
        return None
    return rel.split("/", 1)[0]


def load_layers(path: Path):
    """Parse `layer <name> <module...>` lines, bottom-up.  Returns
    (ordered layer names, module -> layer index)."""
    layers, module_layer = [], {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        parts = entry.split()
        if parts[0] != "layer" or len(parts) < 3:
            raise ValueError(f"{path}:{lineno}: expected "
                             "'layer <name> <module...>'")
        layers.append(parts[1])
        for mod in parts[2:]:
            module_layer[mod] = len(layers) - 1
    return layers, module_layer


def layering_pass(root: Path, layers_path: Path) -> list:
    findings = []
    try:
        layers, module_layer = load_layers(layers_path)
    except (OSError, ValueError) as e:
        findings.append(Finding(layers_path, 0, "layering-config", str(e)))
        return findings

    module_files = {}           # module -> set of files
    edges = {}                  # (src_mod, dst_mod) -> [(path, line)]
    undeclared_seen = set()

    for path in src_files(root):
        rel = path.relative_to(root / "src").as_posix()
        mod = module_of(rel)
        if mod is None:
            continue
        module_files.setdefault(mod, set()).add(rel)
        raw = path.read_text()
        raw_lines = raw.splitlines()
        code = strip_comments(raw, strip_strings=False)
        for m in INCLUDE_RE.finditer(code):
            inc = m.group(1)
            line = line_of(code, m.start())
            if inc.startswith(FOREIGN_TREES):
                if not waived(raw_lines, line, "layering-upward"):
                    findings.append(Finding(
                        path, line, "layering-upward",
                        f'src/ must not include "{inc}": bench/tools/tests '
                        "sit above every library layer"))
                continue
            target = inc[4:] if inc.startswith("src/") else inc
            if not (root / "src" / target).exists():
                if not waived(raw_lines, line, "layering-unresolved"):
                    findings.append(Finding(
                        path, line, "layering-unresolved",
                        f'include "{inc}" does not resolve under src/; '
                        "project includes are src-relative"))
                continue
            dst = module_of(target)
            if dst is None or dst == mod:
                continue
            edges.setdefault((mod, dst), []).append((path, line))

    for (src_mod, dst_mod), sites in sorted(edges.items()):
        for mod in (src_mod, dst_mod):
            if mod not in module_layer and mod not in undeclared_seen:
                undeclared_seen.add(mod)
                findings.append(Finding(
                    layers_path, 0, "layering-undeclared",
                    f"module '{mod}' exists in src/ but is not declared in "
                    "any layer; add it to the layering file"))
        if src_mod in module_layer and dst_mod in module_layer:
            if module_layer[src_mod] <= module_layer[dst_mod]:
                for path, line in sites:
                    if not waived(path.read_text().splitlines(), line,
                                  "layering-upward"):
                        findings.append(Finding(
                            path, line, "layering-upward",
                            f"module '{src_mod}' "
                            f"(layer {layers[module_layer[src_mod]]}) may "
                            f"not include '{dst_mod}' (layer "
                            f"{layers[module_layer[dst_mod]]}): edges must "
                            "point to strictly lower layers"))

    graph = {}
    for (u, v) in edges:
        graph.setdefault(u, set()).add(v)
        graph.setdefault(v, set())
    for scc in strongly_connected(graph):
        if len(scc) < 2:
            continue
        member_sites = [(e, edges[e]) for e in edges
                        if e[0] in scc and e[1] in scc]
        if any(waived(p.read_text().splitlines(), line, "layering-cycle")
               for _e, sites in member_sites for p, line in sites):
            continue
        detail = "; ".join(
            f"{u}->{v} at {sites[0][0].name}:{sites[0][1]}"
            for (u, v), sites in sorted(member_sites))
        p0, l0 = member_sites[0][1][0]
        findings.append(Finding(
            p0, l0, "layering-cycle",
            f"include cycle among modules {{{', '.join(sorted(scc))}}}: "
            f"{detail}"))

    for mod in sorted(module_layer):
        if mod == "core.sync":
            present = (root / "src/core/sync.h").exists()
        else:
            present = (root / "src" / mod).is_dir()
        if not present:
            findings.append(Finding(
                layers_path, 0, "layering-stale",
                f"declared module '{mod}' has no files under src/; remove "
                "it from the layering file"))
    return findings


# ==========================================================================
# Pass 3: frozen serialized formats
# ==========================================================================

SURFACES = [
    {"name": "serve.protocol.wire", "file": "src/serve/protocol.cpp",
     "kind": "wire", "vfile": "src/serve/protocol.h",
     "vconst": "kProtocolVersion"},
    {"name": "serve.protocol.decls", "file": "src/serve/protocol.h",
     "kind": "decls", "vfile": "src/serve/protocol.h",
     "vconst": "kProtocolVersion"},
    {"name": "serve.flight_recorder.jsonl",
     "file": "src/serve/flight_recorder.cpp", "kind": "jsonl",
     "vfile": None, "vconst": None},
    {"name": "stream.checkpoint.wire", "file": "src/stream/checkpoint.cpp",
     "kind": "wire", "vfile": "src/stream/checkpoint.cpp",
     "vconst": "kCheckpointVersion"},
    {"name": "stream.drivers.wire", "file": "src/stream/drivers.cpp",
     "kind": "wire", "vfile": "src/stream/drivers.cpp",
     "vconst": "kDriverVersion"},
    {"name": "stream.state.wire", "file": "src/stream/stream_state.cpp",
     "kind": "wire", "vfile": None, "vconst": None},
    {"name": "core.placer.wire", "file": "src/core/deviation_placer.cpp",
     "kind": "wire", "vfile": "src/core/deviation_placer.cpp",
     "vconst": "kPlacerVersion"},
    {"name": "core.incentive.wire", "file": "src/core/incentive.cpp",
     "kind": "wire", "vfile": "src/core/incentive.cpp",
     "vconst": "kIncentiveVersion"},
    {"name": "core.reopt.wire", "file": "src/core/esharing.cpp",
     "kind": "wire", "vfile": "src/core/esharing.cpp",
     "vconst": "kReoptVersion"},
]

WIRE_CALL_RE = re.compile(r"\bwire::((?:write|read)_\w+)\s*\(")
JSONL_KEY_RE = re.compile(r'\\"(\w+)\\"\s*:?')
DECL_HEAD_RE = re.compile(r"\b(enum(?:\s+class)?|struct)\s+(\w+)[^{};]*\{")
CONST_RE = re.compile(r"\bconstexpr\s+[\w:<>\s]+?\b(k\w+)\s*=\s*([^;]+);")


def match_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def norm(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


def extract_wire(text: str) -> list[str]:
    code = strip_comments(text, strip_strings=False)
    out = []
    for m in WIRE_CALL_RE.finditer(code):
        close = match_paren(code, m.end() - 1)
        args = code[m.end():close] if close > 0 else ""
        out.append(f"{m.group(1)}({norm(args)})")
    return out


def extract_decls(text: str) -> list[str]:
    code = strip_comments(text, strip_strings=False)
    out = []
    for m in DECL_HEAD_RE.finditer(code):
        close = match_brace(code, m.end() - 1)
        if close < 0:
            continue
        body = code[m.end():close]
        if m.group(1).startswith("enum"):
            entries = [norm(e) for e in split_top_commas(body) if e.strip()]
            out.append(f"{norm(m.group(1))} {m.group(2)}{{"
                       + ",".join(entries) + "}")
        else:
            fields, depth, start = [], 0, 0
            for i, c in enumerate(body):
                if c in "({[":
                    depth += 1
                elif c in ")}]":
                    depth -= 1
                elif c == ";" and depth == 0:
                    stmt = norm(body[start:i])
                    start = i + 1
                    if stmt and "(" not in stmt and not stmt.startswith(
                            ("public", "private", "protected", "using",
                             "friend")):
                        fields.append(stmt)
            out.append(f"struct {m.group(2)}{{" + ";".join(fields) + "}")
    for m in CONST_RE.finditer(code):
        out.append(f"{m.group(1)}={norm(m.group(2))}")
    return out


def extract_jsonl(text: str) -> list[str]:
    return [m.group(1) for m in JSONL_KEY_RE.finditer(text)]


EXTRACTORS = {"wire": extract_wire, "decls": extract_decls,
              "jsonl": extract_jsonl}


def surface_digest(root: Path, surface: dict) -> str | None:
    path = root / surface["file"]
    if not path.exists():
        return None
    items = EXTRACTORS[surface["kind"]](path.read_text())
    blob = "\n".join(items).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def surface_version(root: Path, surface: dict) -> int | None:
    if not surface["vconst"] or not surface["vfile"]:
        return None
    path = root / surface["vfile"]
    if not path.exists():
        return None
    m = re.search(rf"\b{surface['vconst']}\s*=\s*(\d+)", path.read_text())
    return int(m.group(1)) if m else None


def load_frozen_formats(path: Path) -> dict:
    entries = {}
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        entry = raw.split("#", 1)[0].strip()
        if not entry:
            continue
        parts = dict(
            kv.split("=", 1) for kv in entry.split()[1:] if "=" in kv)
        entries[entry.split()[0]] = {
            "version": parts.get("version", "-"),
            "digest": parts.get("digest", ""),
            "line": lineno,
        }
    return entries


def render_frozen_formats(root: Path) -> str:
    lines = [
        "# Frozen serialized-format digests — tools/analyze/analyze.py "
        "--pass format-freeze.",
        "# Each line: <surface> version=<constant value or -> "
        "digest=<sha256/16 of the canonical layout>.",
        "# Regenerate with `tools/analyze/analyze.py --update` and bump the "
        "surface's version",
        "# constant in the same diff whenever the byte layout changed "
        "(see README).",
    ]
    for surface in sorted(SURFACES, key=lambda s: s["name"]):
        digest = surface_digest(root, surface)
        if digest is None:
            continue
        version = surface_version(root, surface)
        lines.append(f"{surface['name']} "
                     f"version={'-' if version is None else version} "
                     f"digest={digest}")
    return "\n".join(lines) + "\n"


def format_freeze_pass(root: Path, formats_path: Path) -> list:
    findings = []
    frozen = (load_frozen_formats(formats_path)
              if formats_path.exists() else {})
    known = set()
    for surface in SURFACES:
        digest = surface_digest(root, surface)
        if digest is None:
            continue  # surface's file absent under this root (fixture tree)
        known.add(surface["name"])
        version = surface_version(root, surface)
        vtext = "-" if version is None else str(version)
        path = root / surface["file"]
        entry = frozen.get(surface["name"])
        if entry is None:
            findings.append(Finding(
                path, 1, "format-freeze",
                f"serialized surface '{surface['name']}' is not frozen in "
                f"{formats_path}; run analyze.py --update and commit the "
                "result"))
            continue
        if entry["digest"] != digest:
            if entry["version"] == vtext and version is not None:
                extra = (f" — layout changed but {surface['vconst']} is "
                         f"still {vtext}; bump it and refresh the digest "
                         "in the same diff")
            else:
                extra = " — refresh with analyze.py --update"
            findings.append(Finding(
                path, 1, "format-freeze",
                f"serialized layout of '{surface['name']}' drifted from "
                f"the frozen digest ({digest} != {entry['digest']})"
                f"{extra}"))
        elif entry["version"] != vtext:
            findings.append(Finding(
                formats_path, entry["line"], "format-freeze",
                f"'{surface['name']}' records version={entry['version']} "
                f"but {surface['vconst'] or 'the source'} now says "
                f"{vtext}; refresh with analyze.py --update"))
    for name, entry in sorted(frozen.items()):
        if name not in known:
            findings.append(Finding(
                formats_path, entry["line"], "format-freeze",
                f"frozen surface '{name}' does not exist (anymore); remove "
                "the entry or restore the surface"))
    return findings


# ==========================================================================
# Driver
# ==========================================================================

PASSES = {
    "lock-order": "acquired-while-held graph: cycles, blocking ops, "
                  "condvar discipline, ES_GUARDED_BY validity",
    "layering": "module include DAG matches tools/analyze/layering.txt",
    "format-freeze": "serialized layouts match tools/lint/"
                     "frozen_formats.txt",
}


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root (default: two levels above this "
                        "file)")
    parser.add_argument("--pass", dest="passes", action="append",
                        choices=sorted(PASSES),
                        help="run only this pass (repeatable; default all)")
    parser.add_argument("--layers", type=Path, default=None,
                        help="override the layering declaration file")
    parser.add_argument("--formats", type=Path, default=None,
                        help="override the frozen formats file")
    parser.add_argument("--update", action="store_true",
                        help="regenerate the frozen formats file and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array")
    parser.add_argument("--list-passes", action="store_true")
    args = parser.parse_args(argv)

    if args.list_passes:
        for name, doc in sorted(PASSES.items()):
            print(f"{name:15s} {doc}")
        return 0

    root = args.root or Path(__file__).resolve().parents[2]
    if not (root / "src").is_dir():
        print(f"analyze.py: no src/ under {root}", file=sys.stderr)
        return 2
    layers_path = args.layers or (root / "tools/analyze/layering.txt")
    formats_path = args.formats or (root / "tools/lint/frozen_formats.txt")

    if args.update:
        formats_path.write_text(render_frozen_formats(root))
        print(f"analyze.py: wrote {formats_path}", file=sys.stderr)
        return 0

    passes = args.passes or sorted(PASSES)
    findings = []
    if "lock-order" in passes:
        findings.extend(lock_order_pass(root))
    if "layering" in passes:
        findings.extend(layering_pass(root, layers_path))
    if "format-freeze" in passes:
        findings.extend(format_freeze_pass(root, formats_path))

    if args.json:
        print(json.dumps(
            [{"path": str(f.path), "line": f.line, "rule": f.rule_id,
              "message": f.message} for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"analyze: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
