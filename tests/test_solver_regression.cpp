#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/deviation_placer.h"
#include "core/penalty.h"
#include "obs/metrics.h"
#include "solver/cost_oracle.h"
#include "solver/jms_greedy.h"
#include "solver/k_median.h"
#include "solver/local_search.h"
#include "solver/reference.h"
#include "stats/rng.h"
#include "stats/spatial.h"

/// Regression tests for the CostOracle/SpatialIndex refactor: every solver
/// threaded through the shared query layer must return BIT-IDENTICAL open
/// sets, assignments and costs to the frozen pre-refactor implementations
/// in solver::reference, for any thread count.

namespace esharing::solver {
namespace {

using geo::Point;

FlInstance random_colocated(stats::Rng& rng, std::size_t n, double f) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n)) {
    clients.push_back({p, rng.uniform(0.5, 4.0)});
    costs.push_back(f * rng.uniform(0.5, 1.5));
  }
  return colocated_instance(std::move(clients), std::move(costs));
}

FlInstance random_general(stats::Rng& rng, std::size_t nc, std::size_t nf) {
  FlInstance inst;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, nc)) {
    inst.clients.push_back({p, rng.uniform(0.5, 4.0)});
  }
  for (Point p : stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, nf)) {
    inst.facilities.push_back({p, rng.uniform(500.0, 8000.0)});
  }
  return inst;
}

void expect_identical(const FlSolution& got, const FlSolution& want) {
  EXPECT_EQ(got.open, want.open);
  EXPECT_EQ(got.assignment, want.assignment);
  // Exact double equality, not a tolerance: the refactor's contract.
  EXPECT_EQ(got.connection_cost, want.connection_cost);
  EXPECT_EQ(got.opening_cost, want.opening_cost);
}

TEST(SolverRegression, JmsGreedyMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    stats::Rng rng(seed);
    const auto colocated = random_colocated(rng, 60, 4000.0);
    expect_identical(jms_greedy(colocated), reference::jms_greedy(colocated));
    const auto general = random_general(rng, 50, 25);
    expect_identical(jms_greedy(general), reference::jms_greedy(general));
  }
}

TEST(SolverRegression, JmsGreedyOracleOverloadMatchesInstanceOverload) {
  stats::Rng rng(77);
  const auto inst = random_general(rng, 45, 20);
  const CostOracle oracle(inst);
  expect_identical(jms_greedy(oracle), jms_greedy(inst));
}

TEST(SolverRegression, JmsGreedyIsThreadCountInvariant) {
  stats::Rng rng(101);
  const auto inst = random_general(rng, 70, 40);
  const auto sequential = jms_greedy(inst, JmsOptions{1});
  for (std::size_t threads : {2u, 3u, 8u, 64u}) {
    expect_identical(jms_greedy(inst, JmsOptions{threads}), sequential);
  }
}

TEST(SolverRegression, LocalSearchMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    stats::Rng rng(seed * 13);
    const auto inst = random_general(rng, 40, 18);
    const auto initial = assign_to_open(inst, {0});
    for (bool swaps : {true, false}) {
      LocalSearchOptions opts;
      opts.allow_swaps = swaps;
      expect_identical(local_search(inst, initial, opts),
                       reference::local_search(inst, initial, opts));
    }
  }
}

TEST(SolverRegression, LocalSearchIsThreadCountInvariant) {
  stats::Rng rng(55);
  const auto inst = random_general(rng, 60, 24);
  const auto initial = assign_to_open(inst, {3, 11});
  LocalSearchOptions opts;
  const auto sequential = local_search(inst, initial, opts);
  for (std::size_t threads : {2u, 5u, 16u}) {
    opts.num_threads = threads;
    expect_identical(local_search(inst, initial, opts), sequential);
  }
}

/// The obs layer's contract: metrics are strictly observational, so the
/// solvers return bit-identical solutions with instrumentation on or off.
TEST(SolverRegression, SolversAreMetricsInvariant) {
  stats::Rng rng(303);
  const auto inst = random_general(rng, 50, 24);
  const auto initial = assign_to_open(inst, {0});
  const LocalSearchOptions opts;

  obs::set_enabled(false);
  const auto jms_off = jms_greedy(inst);
  const auto ls_off = local_search(inst, initial, opts);

  obs::set_enabled(true);
  const auto jms_on = jms_greedy(inst);
  const auto ls_on = local_search(inst, initial, opts);
  obs::set_enabled(false);

  expect_identical(jms_on, jms_off);
  expect_identical(ls_on, ls_off);
}

TEST(SolverRegression, KMedianMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    stats::Rng rng(seed * 7);
    const auto inst = random_general(rng, 50, 22);
    for (std::size_t k : {1u, 4u, 9u}) {
      expect_identical(k_median(inst, k, seed), reference::k_median(inst, k, seed));
    }
  }
}

}  // namespace
}  // namespace esharing::solver

namespace esharing::core {
namespace {

using geo::Point;

/// A literal Algorithm 2 mirror using linear scans everywhere the placer
/// uses SpatialIndex queries, with its own Rng consuming the same draws.
/// Adaptive penalty switching is disabled in both so neither consults the
/// KS machinery; everything else (scale doubling, weights, removals) runs.
struct LinearScanPlacerMirror {
  struct St {
    Point location;
    bool active;
  };
  std::vector<St> stations;
  std::vector<Point> landmarks;
  std::function<double(Point)> opening_cost_fn;
  double reference_f{0.0};
  double scale{0.0};
  double beta{1.0};
  std::size_t k{0};
  std::size_t opens_since_double{0};
  PenaltyFunction penalty{PenaltyFunction::none()};
  stats::Rng rng;
  double connection_cost{0.0};

  LinearScanPlacerMirror(const std::vector<Point>& parkings,
                         std::function<double(Point)> cost_fn,
                         const DeviationPlacerConfig& config, std::uint64_t seed)
      : landmarks(parkings), opening_cost_fn(std::move(cost_fn)),
        beta(config.beta), k(parkings.size()), rng(seed) {
    penalty = PenaltyFunction::of(config.initial_penalty, config.tolerance);
    double min_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < parkings.size(); ++i) {
      for (std::size_t j = i + 1; j < parkings.size(); ++j) {
        min_d = std::min(min_d, geo::distance(parkings[i], parkings[j]));
      }
    }
    const double w_star = min_d / 2.0;
    for (Point p : parkings) reference_f += opening_cost_fn(p);
    reference_f /= static_cast<double>(parkings.size());
    scale = std::max({config.initial_scale_multiplier * w_star /
                          static_cast<double>(k),
                      reference_f, std::numeric_limits<double>::min()});
    for (Point p : parkings) stations.push_back({p, true});
  }

  std::size_t nearest_active(Point p) const {
    std::size_t best = stations.size();
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < stations.size(); ++i) {
      if (!stations[i].active) continue;
      const double d2 = geo::distance2(stations[i].location, p);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    return best;
  }

  double deviation(Point p) const {
    std::size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < landmarks.size(); ++i) {
      const double d2 = geo::distance2(landmarks[i], p);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    return geo::distance(landmarks[best], p);
  }

  solver::OnlineDecision process(Point dest, double weight) {
    solver::OnlineDecision decision;
    const std::size_t nearest = nearest_active(dest);
    const double c = weight * geo::distance(stations[nearest].location, dest);
    const double f = opening_cost_fn(dest) / reference_f * scale;
    const double prob = std::min(penalty(deviation(dest)) * c / f, 1.0);
    if (rng.bernoulli(prob)) {
      stations.push_back({dest, true});
      decision.opened = true;
      decision.facility = stations.size() - 1;
      if (static_cast<double>(++opens_since_double) >=
          beta * static_cast<double>(k)) {
        opens_since_double = 0;
        scale *= 2.0;
      }
    } else {
      decision.facility = nearest;
      decision.connection_cost = c;
      connection_cost += c;
    }
    return decision;
  }
};

TEST(SolverRegression, DeviationPlacerMatchesLinearScanMirror) {
  const std::uint64_t seed = 2020;
  stats::Rng setup(seed);
  const auto parkings =
      stats::uniform_points(setup, {{0, 0}, {2000, 2000}}, 15);
  const auto opening_cost = [](Point p) {
    return 5000.0 + 0.1 * p.x + 0.05 * p.y;
  };
  DeviationPlacerConfig config;
  config.adaptive_type = false;  // keep both sides off the KS machinery
  config.ks_period = 0;
  DeviationPenaltyPlacer placer(parkings, parkings, opening_cost, config, seed);
  LinearScanPlacerMirror mirror(parkings, opening_cost, config, seed);

  // A wider box than the landmarks so deviations sweep the penalty's
  // tolerance band; every 80th request removes a station (footnote 2).
  stats::Rng stream(seed ^ 0x9e3779b9ULL);
  const auto dests =
      stats::uniform_points(stream, {{-500, -500}, {2500, 2500}}, 600);
  for (std::size_t t = 0; t < dests.size(); ++t) {
    const double weight = stream.uniform(0.5, 2.0);
    const auto got = placer.process(dests[t], weight);
    const auto want = mirror.process(dests[t], weight);
    ASSERT_EQ(got.opened, want.opened) << "t=" << t;
    ASSERT_EQ(got.facility, want.facility) << "t=" << t;
    ASSERT_EQ(got.connection_cost, want.connection_cost) << "t=" << t;
    if (t % 80 == 79 && placer.num_active() > 1) {
      const std::size_t victim = got.facility;
      placer.remove_station(victim);
      mirror.stations[victim].active = false;
    }
  }

  ASSERT_EQ(placer.stations().size(), mirror.stations.size());
  for (std::size_t i = 0; i < mirror.stations.size(); ++i) {
    EXPECT_EQ(placer.stations()[i].location, mirror.stations[i].location);
    EXPECT_EQ(placer.stations()[i].active, mirror.stations[i].active);
  }
  EXPECT_EQ(placer.total_connection_cost(), mirror.connection_cost);
  EXPECT_EQ(placer.cost_scale(), mirror.scale);
}

/// Same contract for the online placer: identical seeded runs with the obs
/// layer on vs off make identical decisions (the Rng draw sequence and all
/// outputs are untouched by instrumentation).
TEST(SolverRegression, DeviationPlacerIsMetricsInvariant) {
  const std::uint64_t seed = 4040;
  stats::Rng setup(seed);
  const auto parkings =
      stats::uniform_points(setup, {{0, 0}, {2000, 2000}}, 12);
  const auto opening_cost = [](Point p) {
    return 6000.0 + 0.05 * p.x + 0.1 * p.y;
  };
  const DeviationPlacerConfig config;  // adaptive KS machinery stays on
  stats::Rng stream(seed + 1);
  const auto dests =
      stats::uniform_points(stream, {{-400, -400}, {2400, 2400}}, 400);

  const auto run = [&](bool metrics_on) {
    obs::set_enabled(metrics_on);
    DeviationPenaltyPlacer placer(parkings, parkings, opening_cost, config,
                                  seed);
    std::vector<solver::OnlineDecision> decisions;
    decisions.reserve(dests.size());
    for (Point p : dests) decisions.push_back(placer.process(p));
    obs::set_enabled(false);
    return std::make_pair(std::move(decisions),
                          placer.total_connection_cost());
  };

  const auto [off, off_cost] = run(false);
  const auto [on, on_cost] = run(true);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t t = 0; t < off.size(); ++t) {
    EXPECT_EQ(on[t].opened, off[t].opened) << "t=" << t;
    EXPECT_EQ(on[t].facility, off[t].facility) << "t=" << t;
    EXPECT_EQ(on[t].connection_cost, off[t].connection_cost) << "t=" << t;
  }
  EXPECT_EQ(on_cost, off_cost);
}

}  // namespace
}  // namespace esharing::core
