#include "solver/exact.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

TEST(ExactSolver, TrivialSingleSite) {
  const auto inst = colocated_instance({{{0, 0}, 1.0}}, {10.0});
  const auto sol = exact_facility_location(inst);
  EXPECT_EQ(sol.num_open(), 1u);
  EXPECT_DOUBLE_EQ(sol.total_cost(), 10.0);
}

TEST(ExactSolver, ChoosesCheaperOfTwoStructures) {
  // Two sites 100 apart, weights 1. Opening both: 2f. One: f + 100.
  // f = 40 -> open both (80 < 140); f = 60 -> open one (160 > 120? no:
  // open both costs 120, one costs 160) -> both again; f = 120 -> one.
  const std::vector<FlClient> clients{{{0, 0}, 1.0}, {{100, 0}, 1.0}};
  const auto both = exact_facility_location(
      colocated_instance(clients, {40.0, 40.0}));
  EXPECT_EQ(both.num_open(), 2u);
  const auto one = exact_facility_location(
      colocated_instance(clients, {120.0, 120.0}));
  EXPECT_EQ(one.num_open(), 1u);
  EXPECT_DOUBLE_EQ(one.total_cost(), 220.0);
}

TEST(ExactSolver, MatchesBruteForceExpectation) {
  // Asymmetric opening costs: the optimum must pick the cheap facility.
  const std::vector<FlClient> clients{{{0, 0}, 1.0}, {{10, 0}, 1.0}};
  const auto sol = exact_facility_location(
      colocated_instance(clients, {1000.0, 5.0}));
  ASSERT_EQ(sol.num_open(), 1u);
  EXPECT_EQ(sol.open[0], 1u);
  EXPECT_DOUBLE_EQ(sol.total_cost(), 15.0);
}

TEST(ExactSolver, NeverWorseThanAnySingleton) {
  stats::Rng rng(3);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {500, 500}}, 10);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 2.0)});
    costs.push_back(rng.uniform(50.0, 500.0));
  }
  const auto inst = colocated_instance(clients, costs);
  const auto best = exact_facility_location(inst);
  for (std::size_t f = 0; f < inst.facilities.size(); ++f) {
    EXPECT_LE(best.total_cost(),
              assign_to_open(inst, {f}).total_cost() + 1e-9);
  }
}

TEST(ExactSolver, RejectsTooManyFacilities) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 25; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    costs.push_back(1.0);
  }
  const auto inst = colocated_instance(clients, costs);
  EXPECT_THROW((void)exact_facility_location(inst), std::invalid_argument);
  // A raised limit accepts larger instances (kept small enough here that
  // the exponential search still finishes instantly).
  std::vector<FlClient> few(clients.begin(), clients.begin() + 14);
  std::vector<double> few_costs(costs.begin(), costs.begin() + 14);
  EXPECT_NO_THROW((void)exact_facility_location(
      colocated_instance(few, few_costs), 14));
}

}  // namespace
}  // namespace esharing::solver
