#include "ml/series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::ml {
namespace {

TEST(Difference, FirstAndSecondOrder) {
  const Series s{1, 3, 6, 10};
  EXPECT_EQ(difference(s, 0), s);
  EXPECT_EQ(difference(s, 1), (Series{2, 3, 4}));
  EXPECT_EQ(difference(s, 2), (Series{1, 1}));
}

TEST(Difference, Validates) {
  EXPECT_THROW((void)difference({1, 2}, -1), std::invalid_argument);
  EXPECT_THROW((void)difference({1, 2}, 2), std::invalid_argument);
}

TEST(Undifference, InvertsDifference) {
  const Series s{5, 7, 4, 9, 9};
  const Series d = difference(s, 1);
  const Series restored = undifference_once(d, s.front());
  const Series expected(s.begin() + 1, s.end());
  ASSERT_EQ(restored.size(), expected.size());
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored[i], expected[i]);
  }
}

TEST(Split, FractionSplitsSizes) {
  const Series s{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto [train, test] = split(s, 0.7);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
  EXPECT_DOUBLE_EQ(train.front(), 1.0);
  EXPECT_DOUBLE_EQ(test.front(), 8.0);
}

TEST(Split, Validates) {
  const Series s{1, 2, 3};
  EXPECT_THROW((void)split(s, 0.0), std::invalid_argument);
  EXPECT_THROW((void)split(s, 1.0), std::invalid_argument);
  EXPECT_THROW((void)split({1}, 0.5), std::invalid_argument);  // empty train
}

TEST(Scaler, StandardizesToZeroMeanUnitVariance) {
  Scaler sc;
  sc.fit({2, 4, 6, 8});
  EXPECT_DOUBLE_EQ(sc.mean(), 5.0);
  const Series z = sc.transform({2, 4, 6, 8});
  double sum = 0.0;
  for (double v : z) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(sc.inverse_one(sc.transform_one(7.0)), 7.0);
}

TEST(Scaler, ConstantSeriesIsSafe) {
  Scaler sc;
  sc.fit({3, 3, 3});
  EXPECT_DOUBLE_EQ(sc.transform_one(3.0), 0.0);
  EXPECT_DOUBLE_EQ(sc.inverse_one(0.0), 3.0);
}

TEST(Scaler, RoundTripVector) {
  Scaler sc;
  sc.fit({1, 5, 9, 2});
  const Series original{0.5, 3.0, 10.0};
  const Series back = sc.inverse(sc.transform(original));
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(back[i], original[i], 1e-12);
  }
}

TEST(SlidingWindows, ProducesAllWindows) {
  const Series s{1, 2, 3, 4, 5};
  const auto w = sliding_windows(s, 2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].input, (Series{1, 2}));
  EXPECT_DOUBLE_EQ(w[0].target, 3.0);
  EXPECT_EQ(w[2].input, (Series{3, 4}));
  EXPECT_DOUBLE_EQ(w[2].target, 5.0);
}

TEST(SlidingWindows, Validates) {
  EXPECT_THROW((void)sliding_windows({1, 2, 3}, 0), std::invalid_argument);
  EXPECT_THROW((void)sliding_windows({1, 2}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::ml
