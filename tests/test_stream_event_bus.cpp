#include "stream/event_bus.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace esharing::stream {
namespace {

using geo::Point;

Event trip_end(double x, double y, data::Seconds t = 0) {
  Event e;
  e.kind = EventKind::kTripEnd;
  e.time = t;
  e.where = {x, y};
  return e;
}

template <typename Config>
void expect_rejects(const Config& config, const std::string& field) {
  try {
    config.validate();
    FAIL() << "expected " << field << " to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(StreamEventBus, ConfigValidation) {
  EXPECT_NO_THROW(EventBusConfig{}.validate());

  EventBusConfig c;
  c.shard_count = 0;
  expect_rejects(c, "shard_count");

  c = {};
  c.queue_capacity = 0;
  expect_rejects(c, "queue_capacity");

  c = {};
  c.max_batch = 0;
  expect_rejects(c, "max_batch");

  c = {};
  c.queue_capacity = 8;
  c.max_batch = 9;
  expect_rejects(c, "max_batch");

  c = {};
  c.route_cell_m = 0.0;
  expect_rejects(c, "route_cell_m");
}

TEST(StreamEventBus, SeqStampsFollowPublishOrder) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  EventBus bus(cfg);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bus.publish(trip_end(i * 10.0, 0)));
  std::vector<Event> out;
  EXPECT_EQ(bus.drain(0, out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i);
    EXPECT_DOUBLE_EQ(out[i].where.x, static_cast<double>(i) * 10.0);
  }
  EXPECT_EQ(bus.next_seq(), 5u);
}

TEST(StreamEventBus, RoutingIsCellLocalAndDeterministic) {
  EventBusConfig cfg;
  cfg.shard_count = 4;
  cfg.route_cell_m = 100.0;
  EventBus bus(cfg);
  // Points in the same 100 m cell always land in the same shard.
  EXPECT_EQ(bus.shard_of({10.0, 10.0}), bus.shard_of({90.0, 90.0}));
  EXPECT_EQ(bus.shard_of({250.0, 130.0}), bus.shard_of({299.0, 199.0}));
  // And an identical bus routes identically.
  EventBus twin(cfg);
  for (double x = 0.0; x < 2000.0; x += 87.0) {
    EXPECT_EQ(bus.shard_of({x, 2.0 * x}), twin.shard_of({x, 2.0 * x}));
  }
}

TEST(StreamEventBus, DrainAllOrderedRestoresPublishOrder) {
  EventBusConfig cfg;
  cfg.shard_count = 4;
  EventBus bus(cfg);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    // Scatter across cells so several shards receive events.
    EXPECT_TRUE(bus.publish(trip_end(137.0 * i, 211.0 * (n - i))));
  }
  std::vector<Event> out;
  EXPECT_EQ(bus.drain_all_ordered(out), static_cast<std::size_t>(n));
  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(bus.pending_total(), 0u);
}

TEST(StreamEventBus, DropOldestKeepsFreshestAndCounts) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 4;
  cfg.max_batch = 4;
  cfg.policy = BackpressurePolicy::kDropOldest;
  EventBus bus(cfg);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(bus.publish(trip_end(0, 0)));
  EXPECT_EQ(bus.stats().dropped_oldest, 2u);
  EXPECT_EQ(bus.stats().rejected, 0u);
  std::vector<Event> out;
  EXPECT_EQ(bus.drain(0, out), 4u);
  // The two oldest (seq 0, 1) were overwritten; the freshest survive.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().seq, 2u);
  EXPECT_EQ(out.back().seq, 5u);
}

TEST(StreamEventBus, RejectShedsNewestAndCounts) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 4;
  cfg.max_batch = 4;
  cfg.policy = BackpressurePolicy::kReject;
  EventBus bus(cfg);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bus.publish(trip_end(0, 0)));
  EXPECT_FALSE(bus.publish(trip_end(0, 0)));
  EXPECT_FALSE(bus.publish(trip_end(0, 0)));
  EXPECT_EQ(bus.stats().rejected, 2u);
  EXPECT_EQ(bus.stats().dropped_oldest, 0u);
  std::vector<Event> out;
  EXPECT_EQ(bus.drain(0, out), 4u);
  // The queued prefix is intact — rejection sheds the newest arrivals.
  EXPECT_EQ(out.front().seq, 0u);
  EXPECT_EQ(out.back().seq, 3u);
}

TEST(StreamEventBus, DrainHonorsBatchCap) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 3;
  EventBus bus(cfg);
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(bus.publish(trip_end(0, 0)));
  std::vector<Event> out;
  EXPECT_EQ(bus.drain(0, out), 3u);
  EXPECT_EQ(bus.drain(0, out), 3u);
  EXPECT_EQ(bus.drain(0, out), 1u);
  EXPECT_EQ(bus.drain(0, out), 0u);
  EXPECT_EQ(out.size(), 7u);
}

TEST(StreamEventBus, GuardsBadShardIndices) {
  EventBus bus(EventBusConfig{});
  std::vector<Event> out;
  EXPECT_THROW((void)bus.drain(1, out), std::out_of_range);
  EXPECT_THROW((void)bus.pending(1), std::out_of_range);
}

TEST(StreamEventBus, ResumeSeqOnlyMovesForward) {
  EventBus bus(EventBusConfig{});
  bus.resume_seq(40);
  EXPECT_EQ(bus.next_seq(), 40u);
  bus.resume_seq(10);  // never rewinds
  EXPECT_EQ(bus.next_seq(), 40u);
  EXPECT_TRUE(bus.publish(trip_end(0, 0)));
  std::vector<Event> out;
  (void)bus.drain(0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 40u);
}

TEST(StreamEventBus, ConcurrentPublishersDeliverEveryEventExactlyOnce) {
  EventBusConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 64;
  cfg.max_batch = 32;
  cfg.policy = BackpressurePolicy::kBlock;
  EventBus bus(cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  constexpr int kTotal = kProducers * kPerProducer;

  std::vector<Event> out;
  std::thread consumer([&] {
    while (out.size() < static_cast<std::size_t>(kTotal)) {
      if (bus.drain_all_ordered(out) == 0) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&bus, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Spread publishes over many cells so every shard sees traffic.
        (void)bus.publish(trip_end(61.0 * (p * kPerProducer + i), 13.0 * i));
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(out.size(), static_cast<std::size_t>(kTotal));
  std::set<std::uint64_t> seqs;
  for (const Event& e : out) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kTotal));  // no duplicates
  EXPECT_EQ(*seqs.rbegin(), static_cast<std::uint64_t>(kTotal - 1));
  const auto st = bus.stats();
  EXPECT_EQ(st.published, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(st.drained, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(st.dropped_oldest, 0u);
  EXPECT_EQ(st.rejected, 0u);
}

TEST(StreamEventBus, BlockedPublisherResumesAfterDrain) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 2;
  cfg.max_batch = 2;
  cfg.policy = BackpressurePolicy::kBlock;
  EventBus bus(cfg);

  constexpr int kTotal = 10;
  std::thread producer([&] {
    for (int i = 0; i < kTotal; ++i) (void)bus.publish(trip_end(0, 0));
  });
  std::vector<Event> out;
  while (out.size() < static_cast<std::size_t>(kTotal)) {
    if (bus.drain(0, out) == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kTotal));
  // The tiny ring forces at least one wait with ten publishes vs capacity 2.
  EXPECT_GE(bus.stats().blocked_publishes, 1u);
}

}  // namespace
}  // namespace esharing::stream
