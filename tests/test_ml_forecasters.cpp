#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "ml/arima.h"
#include "ml/forecaster.h"
#include "ml/moving_average.h"
#include "stats/rng.h"

namespace esharing::ml {
namespace {

Series sine_series(std::size_t n, double period, double amp = 10.0,
                   double offset = 20.0) {
  Series s;
  s.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    s.push_back(offset +
                amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / period));
  }
  return s;
}

TEST(MovingAverage, ValidatesWindow) {
  EXPECT_THROW(MovingAverageForecaster(0), std::invalid_argument);
}

TEST(MovingAverage, PredictsMeanOfWindow) {
  MovingAverageForecaster ma(3);
  ma.fit({1.0});
  const Series h{1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(ma.forecast(h, 1)[0], 5.0);  // mean of {4,5,6}
}

TEST(MovingAverage, ShortHistoryUsesWhatExists) {
  MovingAverageForecaster ma(10);
  ma.fit({1.0});
  EXPECT_DOUBLE_EQ(ma.forecast({2.0, 4.0}, 1)[0], 3.0);
}

TEST(MovingAverage, MultiHorizonIsRecursive) {
  MovingAverageForecaster ma(2);
  ma.fit({1.0});
  const auto f = ma.forecast({2.0, 4.0}, 3);
  EXPECT_DOUBLE_EQ(f[0], 3.0);            // mean(2,4)
  EXPECT_DOUBLE_EQ(f[1], 3.5);            // mean(4,3)
  EXPECT_DOUBLE_EQ(f[2], 3.25);           // mean(3,3.5)
}

TEST(MovingAverage, ConstantSeriesIsExact) {
  MovingAverageForecaster ma(4);
  const Series train(50, 7.0), test(10, 7.0);
  ma.fit(train);
  EXPECT_DOUBLE_EQ(evaluate_rmse(ma, train, test), 0.0);
}

TEST(MovingAverage, EmptyHistoryThrows) {
  MovingAverageForecaster ma(2);
  ma.fit({1.0});
  EXPECT_THROW((void)ma.forecast({}, 1), std::invalid_argument);
}

TEST(Arima, ValidatesParameters) {
  EXPECT_THROW(ArimaForecaster(0, 0), std::invalid_argument);
  EXPECT_THROW(ArimaForecaster(2, -1), std::invalid_argument);
}

TEST(Arima, MustFitBeforeForecast) {
  ArimaForecaster ar(2, 0);
  EXPECT_THROW((void)ar.forecast({1, 2, 3}, 1), std::logic_error);
}

TEST(Arima, RecoversAr1Coefficient) {
  // x_t = 5 + 0.8 x_{t-1} + noise
  stats::Rng rng(1);
  Series s{10.0};
  for (int t = 1; t < 600; ++t) {
    s.push_back(5.0 + 0.8 * s.back() + rng.normal(0.0, 0.3));
  }
  ArimaForecaster ar(1, 0);
  ar.fit(s);
  EXPECT_NEAR(ar.coefficients()[0], 0.8, 0.05);
  EXPECT_NEAR(ar.intercept(), 5.0, 1.5);
}

TEST(Arima, D1HandlesLinearTrendExactly) {
  // Linear trend: first difference is constant; AR on it forecasts the
  // trend continuation.
  Series s;
  for (int t = 0; t < 60; ++t) s.push_back(3.0 * t + 10.0);
  ArimaForecaster ar(2, 1);
  ar.fit(s);
  const auto f = ar.forecast(s, 3);
  EXPECT_NEAR(f[0], 3.0 * 60 + 10.0, 0.5);
  EXPECT_NEAR(f[2], 3.0 * 62 + 10.0, 1.0);
}

TEST(Arima, BeatsNaiveOnAutocorrelatedSeries) {
  stats::Rng rng(2);
  Series s{0.0};
  for (int t = 1; t < 500; ++t) {
    s.push_back(0.9 * s.back() + rng.normal(0.0, 1.0));
  }
  const auto [train, test] = split(s, 0.8);
  ArimaForecaster ar(2, 0);
  ar.fit(train);
  const double ar_rmse = evaluate_rmse(ar, train, test);
  // "Naive mean" forecaster: MA over a huge window collapses to the mean.
  MovingAverageForecaster mean_model(10000);
  mean_model.fit(train);
  const double mean_rmse = evaluate_rmse(mean_model, train, test);
  EXPECT_LT(ar_rmse, mean_rmse);
}

TEST(Arima, ForecastHistoryTooShortThrows) {
  ArimaForecaster ar(4, 1);
  Series s;
  for (int t = 0; t < 60; ++t) s.push_back(static_cast<double>(t % 7));
  ar.fit(s);
  EXPECT_THROW((void)ar.forecast({1.0, 2.0}, 1), std::invalid_argument);
}

TEST(Arima, FitSeriesTooShortThrows) {
  ArimaForecaster ar(5, 2);
  EXPECT_THROW(ar.fit({1, 2, 3, 4, 5, 6}), std::invalid_argument);
}

TEST(RollingEvaluation, UsesActualHistoryEachStep) {
  // A window-1 MA predicts exactly the previous actual value; rolling
  // predictions must therefore equal the test shifted by one.
  MovingAverageForecaster ma(1);
  const Series train{1, 2, 3};
  const Series test{10, 20, 30};
  ma.fit(train);
  const auto preds = rolling_predictions(ma, train, test);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_DOUBLE_EQ(preds[0], 3.0);
  EXPECT_DOUBLE_EQ(preds[1], 10.0);
  EXPECT_DOUBLE_EQ(preds[2], 20.0);
}

TEST(RollingEvaluation, EmptyTestThrows) {
  MovingAverageForecaster ma(1);
  ma.fit({1.0});
  EXPECT_THROW((void)rolling_predictions(ma, {1.0}, {}), std::invalid_argument);
}

TEST(ForecasterNames, AreDescriptive) {
  EXPECT_EQ(MovingAverageForecaster(3).name(), "MA(wz=3)");
  EXPECT_EQ(ArimaForecaster(4, 1).name(), "ARIMA(p=4,d=1)");
}

TEST(HorizonEvaluation, HorizonOneMatchesOneStepRmse) {
  const Series s = sine_series(300, 24.0);
  const auto [train, test] = split(s, 0.8);
  ArimaForecaster ar(6, 0);
  ar.fit(train);
  EXPECT_NEAR(evaluate_rmse_at_horizon(ar, train, test, 1),
              evaluate_rmse(ar, train, test), 1e-9);
}

TEST(HorizonEvaluation, ErrorGrowsWithLead) {
  // Noisy AR process: longer leads must be harder (the paper evaluates
  // "the next 1 to 6 hours").
  stats::Rng rng(9);
  Series s{0.0};
  for (int t = 1; t < 600; ++t) {
    s.push_back(0.85 * s.back() + rng.normal(0.0, 1.0));
  }
  const auto [train, test] = split(s, 0.8);
  ArimaForecaster ar(4, 0);
  ar.fit(train);
  const double h1 = evaluate_rmse_at_horizon(ar, train, test, 1);
  const double h6 = evaluate_rmse_at_horizon(ar, train, test, 6);
  EXPECT_GT(h6, h1);
}

TEST(HorizonEvaluation, Validates) {
  MovingAverageForecaster ma(2);
  ma.fit({1.0});
  EXPECT_THROW((void)evaluate_rmse_at_horizon(ma, {1, 2}, {3, 4}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_rmse_at_horizon(ma, {1, 2}, {3}, 2),
               std::invalid_argument);
}

TEST(Arima, PeriodicSeriesForecastableWithEnoughLags) {
  const Series s = sine_series(400, 24.0);
  const auto [train, test] = split(s, 0.8);
  ArimaForecaster ar(8, 0);
  ar.fit(train);
  // One-step RMSE far below the signal amplitude.
  EXPECT_LT(evaluate_rmse(ar, train, test), 1.0);
}

}  // namespace
}  // namespace esharing::ml
