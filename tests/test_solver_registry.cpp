#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "solver/jms_greedy.h"
#include "solver/jv_primal_dual.h"
#include "solver/registry.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

FlInstance small_instance(std::size_t n, double f, std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, n);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (const geo::Point p : pts) {
    clients.push_back({p, 1.0});
    costs.push_back(f);
  }
  return colocated_instance(std::move(clients), std::move(costs));
}

void expect_valid(const FlInstance& inst, const FlSolution& sol) {
  ASSERT_FALSE(sol.open.empty());
  ASSERT_EQ(sol.assignment.size(), inst.clients.size());
  for (const std::size_t fi : sol.open) ASSERT_LT(fi, inst.facilities.size());
  for (const std::size_t fi : sol.assignment) {
    ASSERT_NE(std::find(sol.open.begin(), sol.open.end(), fi), sol.open.end());
  }
  // recost() throws on inconsistent solutions and returns identical costs
  // for consistent ones. k_median reports opening_cost 0 by convention
  // (the budgeted formulation prices no openings).
  const FlSolution again = recost(inst, sol);
  EXPECT_DOUBLE_EQ(again.connection_cost, sol.connection_cost);
  EXPECT_TRUE(sol.opening_cost == again.opening_cost ||
              sol.opening_cost == 0.0)
      << "opening_cost " << sol.opening_cost << " vs recosted "
      << again.opening_cost;
}

TEST(SolverRegistry, ListsAllBuiltinsSorted) {
  const auto names = solver_names();
  const std::vector<std::string> expected{"exact",    "jms",     "jv",
                                          "k_median", "local_search",
                                          "meyerson"};
  for (const auto& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing builtin " << name;
    EXPECT_TRUE(SolverRegistry::global().contains(name));
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(SolverRegistry, JmsRouteIsBitIdenticalToDirectCall) {
  const auto inst = small_instance(80, 9000.0, 11);
  const FlSolution direct = jms_greedy(inst);
  const FlSolution routed = solve("jms", inst);
  EXPECT_EQ(routed.open, direct.open);
  EXPECT_EQ(routed.assignment, direct.assignment);
  EXPECT_EQ(routed.connection_cost, direct.connection_cost);
  EXPECT_EQ(routed.opening_cost, direct.opening_cost);
}

TEST(SolverRegistry, JvRouteIsBitIdenticalToDirectCall) {
  const auto inst = small_instance(60, 9000.0, 12);
  const FlSolution direct = jv_primal_dual(inst);
  const FlSolution routed = solve("jv", inst);
  EXPECT_EQ(routed.open, direct.open);
  EXPECT_EQ(routed.assignment, direct.assignment);
  EXPECT_EQ(routed.connection_cost, direct.connection_cost);
  EXPECT_EQ(routed.opening_cost, direct.opening_cost);
}

TEST(SolverRegistry, EveryBuiltinReturnsAValidSolution) {
  // Small enough for "exact" (branch-and-bound caps candidate facilities).
  const auto inst = small_instance(16, 8000.0, 13);
  for (const std::string& name : solver_names()) {
    // validate(name) rejects non-default values for fields a solver
    // ignores, so each solver only gets the knobs it consumes.
    SolveOptions opt;
    if (name == "k_median") {
      opt.k = 4;
      opt.seed = 99;
    } else if (name == "meyerson") {
      opt.seed = 99;
    } else if (name == "local_search") {
      opt.max_iterations = 50;
    }
    const FlSolution sol = solve(name, inst, opt);
    SCOPED_TRACE("solver: " + name);
    expect_valid(inst, sol);
  }
}

TEST(SolverRegistry, KMedianRespectsBudgetAndRequiresK) {
  const auto inst = small_instance(40, 8000.0, 14);
  SolveOptions opt;
  opt.k = 3;
  const FlSolution sol = solve("k_median", inst, opt);
  EXPECT_EQ(sol.num_open(), 3u);
  try {
    (void)solve("k_median", inst);  // default options leave k == 0
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("k"), std::string::npos);
  }
}

TEST(SolverRegistry, UnknownNameErrorListsRegisteredSolvers) {
  const auto inst = small_instance(5, 1000.0, 15);
  try {
    (void)solve("simulated_annealing", inst);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulated_annealing"), std::string::npos);
    EXPECT_NE(what.find("jms"), std::string::npos);
    EXPECT_NE(what.find("meyerson"), std::string::npos);
  }
}

TEST(SolverRegistry, RegisterRejectsDuplicatesEmptyNamesAndNullFns) {
  SolverRegistry& reg = SolverRegistry::global();
  EXPECT_THROW(reg.register_solver("jms", [](const FlInstance& inst,
                                             const SolveOptions&) {
                 return jms_greedy(inst);
               }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_solver("", [](const FlInstance& inst,
                                          const SolveOptions&) {
                 return jms_greedy(inst);
               }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_solver("null_fn", SolverFn{}),
               std::invalid_argument);
  EXPECT_FALSE(reg.contains("null_fn"));
}

TEST(SolverRegistry, CustomSolverIsCallableByName) {
  SolverRegistry& reg = SolverRegistry::global();
  if (!reg.contains("first_facility")) {
    reg.register_solver("first_facility",
                        [](const FlInstance& inst, const SolveOptions&) {
                          return assign_to_open(inst, {0});
                        });
  }
  const auto inst = small_instance(20, 5000.0, 16);
  const FlSolution sol = reg.solve("first_facility", inst);
  EXPECT_EQ(sol.open, std::vector<std::size_t>{0});
  expect_valid(inst, sol);
}

TEST(SolverRegistry, ExactCapIsEnforced) {
  const auto inst = small_instance(30, 8000.0, 17);
  SolveOptions opt;
  opt.exact_max_facilities = 8;  // instance has 30 candidates
  EXPECT_THROW((void)solve("exact", inst, opt), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
