#!/usr/bin/env python3
"""Tests for tools/analyze/analyze.py.

Two suites, selectable by class name (this is how CTest invokes them):

  python3 test_analyze.py AnalyzeFixtures        per-pass pass/fail trees
  python3 test_analyze.py AnalyzeProductionTree  all three passes run clean
                                                 over the real src/, and a
                                                 mutated serialized field
                                                 fails format-freeze

AnalyzeFixtures walks tests/lint_fixtures/analyze/<pass>/: every `bad_*`
tree must be flagged by its pass (exit 1, the rule ids listed in that
tree's expect.txt present in the output) and every `good_*` tree must come
back clean (exit 0, no output). Each fixture is a miniature repo — a src/
subtree plus optional layers.txt / frozen_formats.txt config overrides.
"""

import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
ANALYZE = REPO_ROOT / "tools" / "analyze" / "analyze.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures" / "analyze"

# Files the format-freeze pass digests (surface files + version carriers);
# the mutation tests copy exactly these into a scratch tree.
SURFACE_FILES = (
    "src/serve/protocol.h",
    "src/serve/protocol.cpp",
    "src/serve/flight_recorder.cpp",
    "src/stream/checkpoint.cpp",
    "src/stream/drivers.cpp",
    "src/stream/stream_state.cpp",
    "src/core/deviation_placer.cpp",
    "src/core/incentive.cpp",
    "src/core/esharing.cpp",
)


def run_analyze(args):
    return subprocess.run(
        [sys.executable, str(ANALYZE), *args],
        capture_output=True, text=True, check=False)


def tree_args(pass_name, tree: Path):
    args = ["--root", str(tree), "--pass", pass_name]
    if (tree / "layers.txt").exists():
        args += ["--layers", str(tree / "layers.txt")]
    if (tree / "frozen_formats.txt").exists():
        args += ["--formats", str(tree / "frozen_formats.txt")]
    return args


class AnalyzeFixtures(unittest.TestCase):
    def fixture_trees(self, prefix):
        out = []
        for pass_dir in sorted(FIXTURES.iterdir()):
            if pass_dir.is_dir():
                for tree in sorted(pass_dir.glob(f"{prefix}_*")):
                    if tree.is_dir():
                        out.append((pass_dir.name, tree))
        return out

    def test_fixture_tree_is_complete(self):
        """Every pass has at least one bad and one good fixture tree."""
        listed = run_analyze(["--list-passes"])
        self.assertEqual(listed.returncode, 0, listed.stderr)
        passes = {line.split()[0] for line in listed.stdout.splitlines()}
        self.assertTrue(passes, "analyze.py --list-passes printed nothing")
        bad = {p for p, _ in self.fixture_trees("bad")}
        good = {p for p, _ in self.fixture_trees("good")}
        self.assertEqual(passes, bad,
                         "each pass needs a bad_* fixture tree (and each "
                         "fixture dir a matching pass)")
        self.assertEqual(passes, good,
                         "each pass needs a good_* fixture tree (and each "
                         "fixture dir a matching pass)")

    def test_bad_fixtures_are_flagged(self):
        for pass_name, tree in self.fixture_trees("bad"):
            with self.subTest(analysis=pass_name, fixture=tree.name):
                result = run_analyze(tree_args(pass_name, tree))
                self.assertEqual(
                    result.returncode, 1,
                    f"{tree.name} should be flagged by {pass_name}; "
                    f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
                expected = (tree / "expect.txt").read_text().split()
                self.assertTrue(expected,
                                f"{tree.name} needs a non-empty expect.txt")
                for rule_id in expected:
                    self.assertIn(f"[{rule_id}]", result.stdout)

    def test_good_fixtures_are_clean(self):
        for pass_name, tree in self.fixture_trees("good"):
            with self.subTest(analysis=pass_name, fixture=tree.name):
                result = run_analyze(tree_args(pass_name, tree))
                self.assertEqual(
                    result.returncode, 0,
                    f"{tree.name} should be clean under {pass_name}; "
                    f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
                self.assertEqual(result.stdout, "")

    def test_every_finding_is_parseable(self):
        """Findings follow `path:line: [rule-id] message` so editors and CI
        annotations can consume them."""
        for pass_name, tree in self.fixture_trees("bad"):
            result = run_analyze(tree_args(pass_name, tree))
            for line in result.stdout.splitlines():
                with self.subTest(analysis=pass_name, line=line):
                    m = re.match(r"^(.+):(\d+): \[([\w-]+)\] .+$", line)
                    self.assertIsNotNone(m, f"unparseable finding: {line}")

    def test_json_output(self):
        import json
        pass_name, tree = self.fixture_trees("bad")[0]
        result = run_analyze(tree_args(pass_name, tree) + ["--json"])
        self.assertEqual(result.returncode, 1)
        findings = json.loads(result.stdout)
        self.assertTrue(findings)
        for f in findings:
            self.assertEqual(set(f), {"path", "line", "rule", "message"})


class AnalyzeProductionTree(unittest.TestCase):
    def test_all_passes_are_clean(self):
        result = run_analyze(["--root", str(REPO_ROOT)])
        self.assertEqual(
            result.returncode, 0,
            "production tree must analyze clean; findings:\n"
            f"{result.stdout}\n{result.stderr}")
        self.assertEqual(result.stdout, "")

    def scratch_surface_tree(self, td):
        """Copy the serialized-surface files and the production frozen
        registry into a scratch repo root."""
        scratch = Path(td)
        for rel in SURFACE_FILES:
            dst = scratch / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(REPO_ROOT / rel, dst)
        formats = scratch / "frozen_formats.txt"
        shutil.copy(REPO_ROOT / "tools" / "lint" / "frozen_formats.txt",
                    formats)
        return scratch, formats

    def run_freeze(self, scratch, formats):
        return run_analyze(["--root", str(scratch), "--pass",
                            "format-freeze", "--formats", str(formats)])

    def test_unmutated_surfaces_pass(self):
        with tempfile.TemporaryDirectory() as td:
            scratch, formats = self.scratch_surface_tree(td)
            result = self.run_freeze(scratch, formats)
            self.assertEqual(result.returncode, 0, result.stdout)

    def test_protocol_field_mutation_fails(self):
        """Reordering serialized fields in protocol.h without touching
        frozen_formats.txt must fail the format-freeze pass."""
        with tempfile.TemporaryDirectory() as td:
            scratch, formats = self.scratch_surface_tree(td)
            header = scratch / "src" / "serve" / "protocol.h"
            text = header.read_text()
            mutated = text.replace(
                "std::int64_t ref{0};\n  bool opened{false};",
                "bool opened{false};\n  std::int64_t ref{0};")
            self.assertNotEqual(text, mutated,
                                "DecisionReply layout not found; update "
                                "this test alongside protocol.h")
            header.write_text(mutated)
            result = self.run_freeze(scratch, formats)
            self.assertEqual(result.returncode, 1,
                             "field reorder must fail format-freeze")
            self.assertIn("serve.protocol.decls", result.stdout)
            self.assertIn("kProtocolVersion", result.stdout)

    def test_version_bump_without_digest_refresh_fails(self):
        with tempfile.TemporaryDirectory() as td:
            scratch, formats = self.scratch_surface_tree(td)
            header = scratch / "src" / "serve" / "protocol.h"
            text = header.read_text()
            mutated = text.replace("kProtocolVersion = 1",
                                   "kProtocolVersion = 2")
            self.assertNotEqual(text, mutated)
            header.write_text(mutated)
            result = self.run_freeze(scratch, formats)
            self.assertEqual(result.returncode, 1,
                             "a version bump alone must still force a "
                             "frozen-registry refresh")


if __name__ == "__main__":
    unittest.main()
