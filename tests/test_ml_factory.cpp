#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ml/factory.h"
#include "ml/lstm.h"
#include "ml/moving_average.h"

namespace esharing::ml {
namespace {

Series synthetic_series(std::size_t n) {
  Series s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    s.push_back(50.0 + 30.0 * std::sin(t * 2.0 * 3.14159265358979 / 24.0) +
                5.0 * std::sin(t * 0.7));
  }
  return s;
}

TEST(MlFactory, KnownNamesAreSortedAndConstructible) {
  const auto names = forecaster_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    SCOPED_TRACE("model: " + name);
    const auto model = make_forecaster(name);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->name().empty());
  }
}

TEST(MlFactory, EveryModelFitsAndForecasts) {
  const Series series = synthetic_series(240);
  const auto [train, test] = split(series, 0.8);
  ForecasterSpec spec;
  spec.epochs = 3;  // keep the NN models fast; this is a smoke test
  spec.lookback = 6;
  spec.hidden = 8;
  for (const auto& name : forecaster_names()) {
    SCOPED_TRACE("model: " + name);
    const auto model = make_forecaster(name, spec);
    model->fit(train);
    const double rmse = evaluate_rmse(*model, train, test);
    EXPECT_TRUE(std::isfinite(rmse));
    EXPECT_GE(rmse, 0.0);
  }
}

TEST(MlFactory, UnknownNameThrowsWithKnownNamesListed) {
  try {
    (void)make_forecaster("prophet");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("prophet"), std::string::npos);
    EXPECT_NE(what.find("lstm"), std::string::npos);
    EXPECT_NE(what.find("seasonal_naive"), std::string::npos);
  }
}

TEST(MlFactory, FactoryLstmMatchesDirectConstruction) {
  const Series series = synthetic_series(200);
  const auto [train, test] = split(series, 0.8);

  ForecasterSpec spec;
  spec.layers = 1;
  spec.hidden = 8;
  spec.lookback = 6;
  spec.epochs = 4;
  spec.learning_rate = 5e-3;
  spec.seed = 7;
  const auto from_factory = make_forecaster("lstm", spec);

  LstmConfig config;
  config.layers = 1;
  config.hidden = 8;
  config.lookback = 6;
  config.epochs = 4;
  config.learning_rate = 5e-3;
  config.seed = 7;
  LstmForecaster direct(config);

  from_factory->fit(train);
  direct.fit(train);
  // Same config + same seed -> bit-identical training, so the rolling
  // predictions agree exactly.
  const Series a = rolling_predictions(*from_factory, train, test);
  const Series b = rolling_predictions(direct, train, test);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MlFactory, SpecFieldsReachTheModel) {
  ForecasterSpec spec;
  spec.ma_window = 5;
  const auto ma = make_forecaster("ma", spec);
  const Series series = synthetic_series(60);
  ma->fit(series);
  // Same window -> identical one-step forecast.
  MovingAverageForecaster fitted(5);
  fitted.fit(series);
  EXPECT_EQ(ma->forecast(series, 1), fitted.forecast(series, 1));
  EXPECT_EQ(ma->name(), fitted.name());
}

}  // namespace
}  // namespace esharing::ml
