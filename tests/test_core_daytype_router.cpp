#include "core/daytype_router.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::core {
namespace {

using geo::Point;

DayTypeRouter make_router(std::uint64_t seed = 1) {
  // Weekday landmarks west, weekend landmarks east.
  DeviationPlacerConfig cfg;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.initial_scale_multiplier = 1e12;  // assignment only: isolate routing
  return DayTypeRouter({{0, 0}, {0, 100}}, {}, {{1000, 0}, {1000, 100}}, {},
                       [](Point) { return 5000.0; }, cfg, seed);
}

TEST(DayTypeRouter, RoutesByCalendar) {
  auto router = make_router();
  // Epoch day 0 = Wednesday (weekday); day 3 = Saturday.
  const auto wd = router.process(0, {0, 50});
  EXPECT_DOUBLE_EQ(wd.connection_cost, 50.0);  // nearest weekday landmark
  const auto we = router.process(3 * data::kSecondsPerDay, {0, 50});
  // Served by the east (weekend) set: nearest is (1000, 0) or (1000, 100).
  EXPECT_NEAR(we.connection_cost, std::hypot(1000.0, 50.0), 1e-9);
  EXPECT_DOUBLE_EQ(router.weekday().total_connection_cost(), 50.0);
  EXPECT_GT(router.weekend().total_connection_cost(), 900.0);
}

TEST(DayTypeRouter, PlacerForMatchesCalendar) {
  const auto router = make_router(2);
  EXPECT_EQ(&router.placer_for(0), &router.weekday());
  EXPECT_EQ(&router.placer_for(3 * data::kSecondsPerDay), &router.weekend());
  EXPECT_EQ(&router.placer_for(4 * data::kSecondsPerDay), &router.weekend());
  EXPECT_EQ(&router.placer_for(5 * data::kSecondsPerDay), &router.weekday());
}

TEST(DayTypeRouter, UnionOfStations) {
  const auto router = make_router(3);
  EXPECT_EQ(router.all_active_locations().size(), 4u);
}

TEST(DayTypeRouter, IndependentEvolution) {
  // Openings on a weekend never change the weekday set.
  DeviationPlacerConfig cfg;
  cfg.tolerance = 1e9;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.w_star_override = 1.0;
  cfg.initial_scale_multiplier = 1.0;
  cfg.beta = 1e12;
  DayTypeRouter router({{0, 0}, {0, 100}}, {}, {{1000, 0}, {1000, 100}}, {},
                       [](Point) { return 1.0; }, cfg, 4);
  stats::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    (void)router.process(3 * data::kSecondsPerDay,
                         {rng.uniform(900, 1100), rng.uniform(0, 200)});
  }
  EXPECT_GT(router.weekend().num_online_opened(), 0u);
  EXPECT_EQ(router.weekday().num_online_opened(), 0u);
  EXPECT_EQ(router.weekday().requests_seen(), 0u);
}

}  // namespace
}  // namespace esharing::core
