#include "ml/linalg.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"

namespace esharing::ml {
namespace {

TEST(Mat, ZeroInitializedAndIndexed) {
  Mat m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(SolveLinear, SolvesKnownSystem) {
  Mat a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, HandlesPivoting) {
  // Leading zero forces a row swap.
  Mat a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, RejectsSingularAndBadShapes) {
  Mat singular(2, 2);
  singular.at(0, 0) = 1;
  singular.at(0, 1) = 2;
  singular.at(1, 0) = 2;
  singular.at(1, 1) = 4;
  EXPECT_THROW((void)solve_linear(singular, {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)solve_linear(Mat(2, 3), {1, 2}), std::invalid_argument);
  EXPECT_THROW((void)solve_linear(Mat(2, 2), {1}), std::invalid_argument);
}

TEST(SolveLinear, RandomSystemsRoundTrip) {
  stats::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.index(5);
    Mat a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5, 5);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
      a.at(i, i) += static_cast<double>(n);  // diagonally dominant
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    const auto x = solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(LeastSquares, RecoversExactLinearModel) {
  // y = 3 + 2x fitted from noiseless samples.
  Mat x(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    x.at(static_cast<std::size_t>(i), 0) = 1.0;
    x.at(static_cast<std::size_t>(i), 1) = i;
    y[static_cast<std::size_t>(i)] = 3.0 + 2.0 * i;
  }
  const auto beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 3.0, 1e-6);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Conflicting observations: fit must be the average.
  Mat x(2, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 1.0;
  const auto beta = least_squares(x, {1.0, 3.0});
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
}

TEST(LeastSquares, RejectsBadShapes) {
  EXPECT_THROW((void)least_squares(Mat(2, 1), {1.0}), std::invalid_argument);
  EXPECT_THROW((void)least_squares(Mat(0, 0), {}), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::ml
