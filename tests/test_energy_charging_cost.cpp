#include "energy/charging_cost.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include <stdexcept>

namespace esharing::energy {
namespace {

ChargingCostParams paper_params() {
  return {.service_cost_q = 5.0, .delay_cost_d = 5.0, .energy_cost_b = 2.0};
}

TEST(ChargingCost, StationCostFormula) {
  // b*l + q + (t-1)*d for t=3, l=4: 2*4 + 5 + 10 = 23 (first stop pays no
  // delay, so the Eq. 10 total closes).
  EXPECT_DOUBLE_EQ(station_cost(3, 4, paper_params()), 23.0);
  EXPECT_DOUBLE_EQ(station_cost(1, 0, paper_params()), 5.0);
  EXPECT_THROW((void)station_cost(0, 4, paper_params()), std::invalid_argument);
}

TEST(ChargingCost, TotalMatchesEq10) {
  // C = n q + l b + (n^2 - n)/2 d, n=10, l=30:
  // 50 + 60 + 45*5 = 335.
  EXPECT_DOUBLE_EQ(total_charging_cost(10, 30, paper_params()), 335.0);
  EXPECT_DOUBLE_EQ(total_charging_cost(0, 0, paper_params()), 0.0);
  EXPECT_DOUBLE_EQ(total_charging_cost(1, 0, paper_params()), 5.0);
}

TEST(ChargingCost, TotalEqualsSumOfStationCosts) {
  const auto p = paper_params();
  const std::size_t n = 7;
  const std::vector<std::size_t> bikes{3, 1, 4, 1, 5, 9, 2};
  double sum = 0.0;
  std::size_t total_bikes = 0;
  for (std::size_t t = 1; t <= n; ++t) {
    sum += station_cost(t, bikes[t - 1], p);
    total_bikes += bikes[t - 1];
  }
  EXPECT_NEAR(sum, total_charging_cost(n, total_bikes, p), 1e-9);
}

TEST(SavingRatio, MatchesEq11ClosedForm) {
  const auto p = paper_params();
  // m=13, n=20: 1 - (13*5 + 78*5) / (20*5 + 190*5) = 1 - 455/1050.
  EXPECT_NEAR(saving_ratio(13, 20, p), 1.0 - 455.0 / 1050.0, 1e-12);
}

TEST(SavingRatio, BoundaryCases) {
  const auto p = paper_params();
  EXPECT_DOUBLE_EQ(saving_ratio(20, 20, p), 0.0);   // no aggregation
  EXPECT_GT(saving_ratio(0, 20, p), 0.99);          // everything aggregated
  EXPECT_THROW((void)saving_ratio(5, 0, p), std::invalid_argument);
  EXPECT_THROW((void)saving_ratio(21, 20, p), std::invalid_argument);
}

TEST(SavingRatio, MonotoneDecreasingInM) {
  const auto p = paper_params();
  double prev = 1.1;
  for (std::size_t m = 0; m <= 20; ++m) {
    const double r = saving_ratio(m, 20, p);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(SavingRatio, PaperHeadline65PercentOfStationsSavesAboutHalf) {
  // Fig. 7(a): m/n = 0.65 brings about 50% saving (for delay-dominated
  // regimes). With n=40, m=26 and the paper's q=d the quadratic delay term
  // dominates and the saving is close to 0.5.
  const double r = saving_ratio(26, 40, paper_params());
  EXPECT_NEAR(r, 0.5, 0.1);
}

TEST(SavingRatio, GrowsWithDelayCost) {
  ChargingCostParams cheap_delay{.service_cost_q = 5.0, .delay_cost_d = 0.5,
                                 .energy_cost_b = 2.0};
  ChargingCostParams pricey_delay{.service_cost_q = 5.0, .delay_cost_d = 50.0,
                                  .energy_cost_b = 2.0};
  EXPECT_GT(saving_ratio(10, 20, pricey_delay), saving_ratio(10, 20, cheap_delay));
}

TEST(MaxStationSaving, MatchesEq12) {
  EXPECT_DOUBLE_EQ(max_station_saving(1, paper_params()), 5.0);   // q only
  EXPECT_DOUBLE_EQ(max_station_saving(7, paper_params()), 35.0);  // q + 6d
  EXPECT_THROW((void)max_station_saving(0, paper_params()),
               std::invalid_argument);
}

TEST(UniformOffer, FormulaAndBudgetGuarantee) {
  const auto p = paper_params();
  // v = alpha*(q + (t-1) d)/l. alpha=0.4, t=3, l=4 -> 0.4*15/4 = 1.5.
  EXPECT_DOUBLE_EQ(uniform_offer(0.4, 3, 4, p), 1.5);
  // Total payment when all l users accept = alpha*(q+td) <= Delta_i.
  for (double alpha : {0.1, 0.5, 1.0}) {
    const double total_paid = uniform_offer(alpha, 3, 4, p) * 4.0;
    EXPECT_LE(total_paid, max_station_saving(3, p) + 1e-12);
  }
}

TEST(UniformOffer, Validates) {
  const auto p = paper_params();
  EXPECT_THROW((void)uniform_offer(-0.1, 1, 2, p), std::invalid_argument);
  EXPECT_THROW((void)uniform_offer(1.1, 1, 2, p), std::invalid_argument);
  EXPECT_THROW((void)uniform_offer(0.5, 1, 0, p), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::energy
