#include "sim/microsim.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::sim {
namespace {

data::CityConfig small_city() {
  data::CityConfig cfg;
  cfg.num_days = 2;
  cfg.trips_per_weekday = 250;
  cfg.trips_per_weekend_day = 200;
  cfg.num_bikes = 80;
  return cfg;
}

MicroSimConfig fast_config() {
  MicroSimConfig cfg;
  cfg.esharing.placer.ks_period = 0;
  cfg.esharing.charging_operator.work_seconds = 8.0 * 3600.0;
  return cfg;
}

class MicroSimFixture : public ::testing::Test {
 protected:
  MicroSimFixture()
      : city_(small_city(), 71),
        history_(city_.generate_trips()),
        live_(city_.generate_trips()) {}
  data::SyntheticCity city_;
  std::vector<data::TripRecord> history_;
  std::vector<data::TripRecord> live_;
};

TEST_F(MicroSimFixture, LifecycleGuards) {
  MicroSimulation sim(city_, fast_config(), 1);
  EXPECT_THROW((void)sim.run(live_), std::logic_error);
  EXPECT_THROW(sim.bootstrap({}), std::invalid_argument);
  MicroSimConfig bad = fast_config();
  bad.walk_radius_m = 0.0;
  EXPECT_THROW(MicroSimulation(city_, bad, 1), std::invalid_argument);
}

TEST_F(MicroSimFixture, DemandAccountingIsComplete) {
  MicroSimulation sim(city_, fast_config(), 2);
  sim.bootstrap(history_);
  const auto m = sim.run(live_);
  EXPECT_EQ(m.demand, live_.size());
  EXPECT_EQ(m.demand, m.served + m.lost_no_bike + m.lost_low_battery);
  EXPECT_GT(m.served, 0u);
  EXPECT_GE(m.service_rate(), 0.0);
  EXPECT_LE(m.service_rate(), 1.0);
}

TEST_F(MicroSimFixture, ChargingShiftsRunNightly) {
  MicroSimulation sim(city_, fast_config(), 3);
  sim.bootstrap(history_);
  const auto m = sim.run(live_);
  EXPECT_EQ(m.rounds.size(), 2u);  // one shift per simulated day
}

TEST_F(MicroSimFixture, LargerFleetServesMoreDemand) {
  data::CityConfig small = small_city();
  small.num_bikes = 12;
  data::SyntheticCity sparse_city(small, 71);
  const auto hist = sparse_city.generate_trips();
  const auto live = sparse_city.generate_trips();
  MicroSimulation sparse(sparse_city, fast_config(), 4);
  sparse.bootstrap(hist);
  const double sparse_rate = sparse.run(live).service_rate();

  data::CityConfig big = small_city();
  big.num_bikes = 300;
  data::SyntheticCity dense_city(big, 71);
  const auto hist2 = dense_city.generate_trips();
  const auto live2 = dense_city.generate_trips();
  MicroSimulation dense(dense_city, fast_config(), 4);
  dense.bootstrap(hist2);
  const double dense_rate = dense.run(live2).service_rate();

  EXPECT_GT(dense_rate, sparse_rate);
}

TEST_F(MicroSimFixture, WiderWalkRadiusNeverHurtsService) {
  MicroSimConfig narrow = fast_config();
  narrow.walk_radius_m = 120.0;
  MicroSimulation a(city_, narrow, 5);
  a.bootstrap(history_);
  const double narrow_rate = a.run(live_).service_rate();

  MicroSimConfig wide = fast_config();
  wide.walk_radius_m = 1500.0;
  MicroSimulation b(city_, wide, 5);
  b.bootstrap(history_);
  const double wide_rate = b.run(live_).service_rate();
  EXPECT_GE(wide_rate, narrow_rate);
}

TEST_F(MicroSimFixture, EgressWalkMatchesPlacementScale) {
  MicroSimulation sim(city_, fast_config(), 6);
  sim.bootstrap(history_);
  const auto m = sim.run(live_);
  EXPECT_GT(m.mean_egress_walk_m(), 1.0);
  EXPECT_LT(m.mean_egress_walk_m(), 600.0);
}

TEST_F(MicroSimFixture, DeterministicPerSeed) {
  MicroSimulation a(city_, fast_config(), 7);
  MicroSimulation b(city_, fast_config(), 7);
  a.bootstrap(history_);
  b.bootstrap(history_);
  const auto ma = a.run(live_);
  const auto mb = b.run(live_);
  EXPECT_EQ(ma.served, mb.served);
  EXPECT_DOUBLE_EQ(ma.walk_to_bike_m, mb.walk_to_bike_m);
}

TEST(MicroSimMetrics, EmptyEdgeCases) {
  const MicroSimMetrics m;
  EXPECT_DOUBLE_EQ(m.service_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m.mean_egress_walk_m(), 0.0);
}

}  // namespace
}  // namespace esharing::sim
