/// Regression/property tests for behaviours established while reproducing
/// the paper's tables: the landmark-keyed penalty semantics, the Table III
/// winner pattern, the incentive budget discipline, and the no-chain-hop
/// rule.

#include <gtest/gtest.h>

#include <array>

#include "core/deviation_placer.h"
#include "geo/polygon.h"
#include "core/incentive.h"
#include "energy/charging_cost.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::core {
namespace {

using geo::Point;

TEST(PenaltySemantics, KeyedToOfflineLandmarksNotOnlineStations) {
  // Type II with tolerance 200: a destination 150 m from the landmark can
  // open (and with scale 1 deterministically does); a destination 300 m
  // from the landmark can never open, even once an online station sits
  // only 150 m away — the deviation is measured against the offline
  // prediction, not against whatever opened last.
  DeviationPlacerConfig cfg;
  cfg.tolerance = 200.0;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.w_star_override = 1.0;
  cfg.initial_scale_multiplier = 1.0;
  cfg.beta = 1e12;
  DeviationPenaltyPlacer placer({{0.0, 0.0}}, {}, [](Point) { return 1.0; },
                                cfg, 1);
  const auto first = placer.process({150.0, 0.0});
  ASSERT_TRUE(first.opened);  // g(150)*150 = 37.5 >= scale 1 -> prob 1
  for (int i = 0; i < 300; ++i) {
    const auto d = placer.process({300.0, 0.0});
    EXPECT_FALSE(d.opened);  // g(dev=300) = 0 despite c_conn = 150
    EXPECT_DOUBLE_EQ(d.connection_cost, 150.0);
  }
}

/// Table III's winner pattern as a regression test (reduced trial count):
/// Type I wins the uniform field, Type III the mid-range ring, Type II the
/// origin-concentrated normal cloud.
class Table3Pattern : public ::testing::TestWithParam<int> {};

TEST_P(Table3Pattern, ExpectedPenaltyWins) {
  const int workload = GetParam();
  const std::array<PenaltyType, 4> types{PenaltyType::kNone, PenaltyType::kTypeI,
                                         PenaltyType::kTypeII,
                                         PenaltyType::kTypeIII};
  std::array<double, 4> totals{};
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    stats::Rng rng(3000 + trial);
    std::vector<Point> requests;
    switch (workload) {
      case 0:
        requests = stats::uniform_points(rng, {{-1000, -1000}, {1000, 1000}}, 200);
        break;
      case 1:
        requests = stats::radial_poisson_points(rng, {0, 0}, 100.0, 2.8, 200);
        break;
      default:
        requests = stats::normal_points(rng, {0, 0}, 100.0, 200);
        break;
    }
    for (std::size_t pi = 0; pi < types.size(); ++pi) {
      DeviationPlacerConfig cfg;
      cfg.tolerance = 200.0;
      cfg.adaptive_type = false;
      cfg.ks_period = 0;
      cfg.w_star_override = 600.0;
      cfg.initial_scale_multiplier = 1.0;
      cfg.beta = 1e12;
      cfg.initial_penalty = types[pi];
      DeviationPenaltyPlacer placer({{0.0, 0.0}}, {}, [](Point) { return 8.0; },
                                    cfg, static_cast<std::uint64_t>(trial) ^ 0xabcdefULL);
      for (Point p : requests) (void)placer.process(p);
      totals[pi] += placer.total_connection_cost() / 1000.0 +
                    static_cast<double>(placer.num_active()) * 2.0;
    }
  }
  std::size_t best = 0;
  for (std::size_t pi = 1; pi < types.size(); ++pi) {
    if (totals[pi] < totals[best]) best = pi;
  }
  const std::array<PenaltyType, 3> expected{PenaltyType::kTypeI,
                                            PenaltyType::kTypeIII,
                                            PenaltyType::kTypeII};
  EXPECT_EQ(types[best], expected[static_cast<std::size_t>(workload)]);
}

INSTANTIATE_TEST_SUITE_P(UniformPoissonNormal, Table3Pattern,
                         ::testing::Values(0, 1, 2));

TEST(PlacementFilter, ForbiddenZonesNeverGetStations) {
  // Openings are near-certain (tiny scale) but a no-parking zone covers
  // the east half of the field: every online station must fall west.
  geo::ZoneSet zones;
  zones.add_forbidden(geo::Polygon::rectangle({{500, -1e6}, {1e6, 1e6}}));
  DeviationPlacerConfig cfg;
  cfg.tolerance = 1e9;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.w_star_override = 1.0;
  cfg.initial_scale_multiplier = 1.0;
  cfg.beta = 1e12;
  cfg.placement_filter = [&zones](Point p) { return zones.permits(p); };
  DeviationPenaltyPlacer placer({{0.0, 0.0}}, {}, [](Point) { return 1.0; },
                                cfg, 3);
  stats::Rng rng(4);
  for (const Point p :
       stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 400)) {
    (void)placer.process(p);
  }
  EXPECT_GT(placer.num_online_opened(), 10u);  // west half opens freely
  for (const auto& station : placer.stations()) {
    if (station.online_opened) {
      EXPECT_LT(station.location.x, 500.0);
    }
  }
  // East-half requests were all assigned, not opened.
  EXPECT_GT(placer.total_connection_cost(), 0.0);
}

TEST(IncentiveBudget, EmptyingAnyPilePaysAtMostAlphaDelta) {
  // Property over random pile sizes: draining station i completely pays
  // <= alpha * (q + (t-1) d) with t frozen at the first offer.
  stats::Rng rng(7);
  const energy::ChargingCostParams costs{};
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t pile = 1 + rng.index(12);
    std::vector<std::size_t> bikes(pile);
    for (std::size_t b = 0; b < pile; ++b) bikes[b] = b;
    // Target pile at least as large (uphill rule).
    std::vector<std::size_t> target_bikes(pile + 1);
    for (std::size_t b = 0; b < pile + 1; ++b) target_bikes[b] = 100 + b;
    std::vector<EnergyStation> stations{{{0, 0}, bikes},
                                        {{1000, 0}, target_bikes}};
    IncentiveConfig cfg;
    cfg.alpha = rng.uniform(0.1, 1.0);
    cfg.costs = costs;
    cfg.mileage_slack_m = 100.0;
    IncentiveMechanism mech(stations, cfg);
    const std::size_t t = mech.service_position(0);
    const UserBehavior eager{1e9, 0.0};
    while (!mech.stations()[0].low_bikes.empty()) {
      const auto offer = mech.handle_pickup(0, {1000, 0}, eager,
                                            [](std::size_t, double) { return true; });
      ASSERT_TRUE(offer.accepted);
    }
    EXPECT_LE(mech.total_incentives_paid(),
              cfg.alpha * energy::max_station_saving(t, costs) + 1e-9);
  }
}

TEST(IncentiveChainHop, RelocatedBikesAreTerminal) {
  // Bike 5 moves from station 0 to station 1; no later offer may move it
  // again (chain hops would compound payments past the Eq. 12 budget).
  std::vector<EnergyStation> stations{
      {{0, 0}, {5}}, {{1000, 0}, {6, 7}}, {{2000, 0}, {1, 2, 3, 4}}};
  IncentiveConfig cfg;
  cfg.alpha = 1.0;
  cfg.mileage_slack_m = 100.0;
  IncentiveMechanism mech(stations, cfg);
  const UserBehavior eager{1e9, 0.0};
  const auto first = mech.handle_pickup(0, {1000, 0}, eager,
                                        [](std::size_t, double) { return true; });
  ASSERT_TRUE(first.accepted);
  ASSERT_EQ(first.bike, 5u);
  // Station 1 now holds {6, 7, 5}; moving toward station 2 (bigger pile,
  // 1000 m ride) must never pick bike 5 again.
  for (int i = 0; i < 10; ++i) {
    const auto offer = mech.handle_pickup(1, {2000, 0}, eager,
                                          [](std::size_t, double) { return true; });
    if (!offer.made) break;
    EXPECT_NE(offer.bike, 5u);
  }
}

TEST(IncentiveSequenceCap, BoundsOfferValue) {
  std::vector<EnergyStation> far_sequence;
  // Ten stations in a line, each with one bike, so TSP positions reach 10.
  for (int s = 0; s < 10; ++s) {
    far_sequence.push_back(
        {{s * 1000.0, 0.0}, {static_cast<std::size_t>(s)}});
  }
  IncentiveConfig capped;
  capped.alpha = 1.0;
  capped.mileage_slack_m = 100.0;
  capped.max_sequence_position = 2;
  IncentiveMechanism mech(far_sequence, capped);
  const UserBehavior eager{1e9, 0.0};
  // Pick up at the last station in the sequence; its offer value must use
  // t <= 2 even though its true position is ~10.
  for (std::size_t s = 0; s < far_sequence.size(); ++s) {
    const auto offer = mech.handle_pickup(
        s, {far_sequence[(s + 1) % far_sequence.size()].location}, eager,
        [](std::size_t, double) { return true; });
    if (offer.made) {
      EXPECT_LE(offer.incentive,
                energy::uniform_offer(1.0, 2, 1, capped.costs) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace esharing::core
