#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/esharing.h"
#include "data/wire.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stream/drivers.h"
#include "stream/event_bus.h"
#include "stream/replay.h"

namespace esharing::stream {
namespace {

using data::DemandSite;
using geo::Point;

std::vector<DemandSite> two_cluster_sites() {
  std::vector<DemandSite> sites;
  std::size_t cell = 0;
  for (double dx : {0.0, 100.0, 200.0}) {
    sites.push_back({{dx + 100.0, 100.0}, 10.0, cell++});
    sites.push_back({{dx + 2400.0, 2500.0}, 8.0, cell++});
  }
  return sites;
}

core::ESharingConfig system_config() {
  core::ESharingConfig cfg;
  cfg.placer.ks_period = 0;
  cfg.placer.adaptive_type = false;
  return cfg;
}

EventBusConfig bus_config(std::size_t shards) {
  EventBusConfig cfg;
  cfg.shard_count = shards;
  cfg.queue_capacity = 128;
  cfg.max_batch = 64;
  return cfg;
}

PlacerDriverConfig driver_config() {
  PlacerDriverConfig cfg;
  cfg.regime_check_period = 32;
  cfg.regime_min_samples = 8;
  return cfg;
}

/// One complete streaming pipeline: system, bus, drivers — built
/// identically for a given seed so runs are comparable.
struct Pipeline {
  core::ESharing system;
  std::vector<Point> sample;
  EventBus bus;
  OnlinePlacerDriver placer_driver;
  IncentiveDriver incentive_driver;

  explicit Pipeline(std::uint64_t seed, std::size_t shards = 4,
                    const PlacerDriverConfig& dcfg = driver_config())
      : system(system_config(), seed),
        sample(make_sample(seed)),
        bus(bus_config(shards)),
        placer_driver(start(system, seed), bus, sample, dcfg),
        incentive_driver(IncentiveDriverConfig{}) {}

  static std::vector<Point> make_sample(std::uint64_t seed) {
    stats::Rng rng(seed);
    return stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 120);
  }

  static core::ESharing& start(core::ESharing& system, std::uint64_t seed) {
    (void)system.plan_offline(two_cluster_sites(),
                              [](Point) { return 2000.0; });
    stats::Rng rng(seed);
    system.start_online(
        stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 120));
    return system;
  }
};

/// Trip-end requests with battery telemetry sprinkled in so the watchlist
/// (and therefore the incentive blob) is non-trivial.
std::vector<Event> mixed_log(std::uint64_t seed, int n) {
  stats::Rng rng(seed);
  const auto points = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n);
  std::vector<Event> log;
  for (std::size_t i = 0; i < points.size(); ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.time = static_cast<data::Seconds>(i * 20);
    e.where = points[i];
    log.push_back(e);
    if (i % 10 == 3) {
      Event b;
      b.kind = EventKind::kBatteryLevel;
      b.time = e.time + 1;
      b.where = points[i];
      b.bike_id = static_cast<std::int64_t>(i / 10);
      b.soc = 0.1;
      log.push_back(b);
    }
  }
  return log;
}

void expect_same_decisions(const std::vector<solver::OnlineDecision>& a,
                           const std::vector<solver::OnlineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].opened, b[i].opened) << "decision " << i;
    EXPECT_EQ(a[i].facility, b[i].facility) << "decision " << i;
    EXPECT_DOUBLE_EQ(a[i].connection_cost, b[i].connection_cost)
        << "decision " << i;
  }
}

TEST(StreamCheckpoint, HalfwayRestoreContinuesBitIdentically) {
  const auto log = mixed_log(42, 300);
  const std::vector<Event> first(log.begin(), log.begin() + 150);
  const std::vector<Event> second(log.begin() + 150, log.end());

  // Pipeline A runs uninterrupted; checkpoint taken at the halfway mark.
  Pipeline a(9);
  (void)replay_log(a.bus, a.placer_driver, first);
  a.incentive_driver.open_session(a.system.parking_locations(),
                                  a.placer_driver.watchlist());
  std::ostringstream blob;
  save_checkpoint(blob, a.bus, a.placer_driver, a.incentive_driver);
  const auto tail_a = replay_log(a.bus, a.placer_driver, second);

  // Pipeline B is a fresh process restored from the blob.
  Pipeline b(9);
  std::istringstream in(blob.str());
  const CheckpointInfo info = restore_checkpoint(
      in, b.bus, b.system, b.placer_driver, b.incentive_driver);
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.shard_count, 4u);
  EXPECT_EQ(info.events_consumed, first.size());
  EXPECT_EQ(info.last_seq, first.size() - 1);
  EXPECT_TRUE(b.incentive_driver.session_open());
  const auto tail_b = replay_log(b.bus, b.placer_driver, second);

  // The resumed run reproduces the uninterrupted one decision for decision.
  expect_same_decisions(tail_a.decisions, tail_b.decisions);
  const auto stations_a = a.system.placer().active_locations();
  const auto stations_b = b.system.placer().active_locations();
  ASSERT_EQ(stations_a.size(), stations_b.size());
  for (std::size_t i = 0; i < stations_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(stations_a[i].x, stations_b[i].x);
    EXPECT_DOUBLE_EQ(stations_a[i].y, stations_b[i].y);
  }
  EXPECT_EQ(a.system.placer().requests_seen(),
            b.system.placer().requests_seen());
  EXPECT_EQ(a.placer_driver.events_consumed(),
            b.placer_driver.events_consumed());
  EXPECT_EQ(a.placer_driver.last_seq(), b.placer_driver.last_seq());

  // Shard states match exactly — including the window publish seqs, which
  // only line up because the restored bus resumed the seq counter.
  for (std::size_t s = 0; s < a.placer_driver.shard_count(); ++s) {
    EXPECT_TRUE(a.placer_driver.shard_state(s).equals(
        b.placer_driver.shard_state(s)))
        << "shard " << s;
    EXPECT_DOUBLE_EQ(a.placer_driver.shard_regime(s).similarity,
                     b.placer_driver.shard_regime(s).similarity);
    EXPECT_EQ(a.placer_driver.shard_regime(s).checks,
              b.placer_driver.shard_regime(s).checks);
  }

  // Incentive sessions stay in lock-step through identical pickups.
  const auto can_ride = [](std::size_t, double) { return true; };
  stats::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.origin = {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)};
    e.user_max_walk_m = rng.uniform(100.0, 600.0);
    e.user_min_reward = rng.uniform(0.0, 1.0);
    const Point assigned = stations_a[static_cast<std::size_t>(i) %
                                      stations_a.size()];
    const core::Offer oa = a.incentive_driver.handle_trip(e, assigned, can_ride);
    const core::Offer ob = b.incentive_driver.handle_trip(e, assigned, can_ride);
    EXPECT_EQ(oa.made, ob.made) << "trip " << i;
    EXPECT_EQ(oa.accepted, ob.accepted) << "trip " << i;
    EXPECT_DOUBLE_EQ(oa.incentive, ob.incentive) << "trip " << i;
  }
  EXPECT_DOUBLE_EQ(a.incentive_driver.total_incentives_paid(),
                   b.incentive_driver.total_incentives_paid());
  EXPECT_EQ(a.incentive_driver.offers_made(), b.incentive_driver.offers_made());
  EXPECT_EQ(a.incentive_driver.relocations(), b.incentive_driver.relocations());

  // Identical state checkpoints to identical bytes.
  std::ostringstream blob_a, blob_b;
  save_checkpoint(blob_a, a.bus, a.placer_driver, a.incentive_driver);
  save_checkpoint(blob_b, b.bus, b.placer_driver, b.incentive_driver);
  EXPECT_EQ(blob_a.str(), blob_b.str());
}

TEST(StreamCheckpoint, SaveRequiresDrainedQueues) {
  Pipeline p(3);
  Event e;
  e.kind = EventKind::kTripEnd;
  e.where = {10, 10};
  ASSERT_TRUE(p.bus.publish(e));
  std::ostringstream blob;
  EXPECT_THROW(
      save_checkpoint(blob, p.bus, p.placer_driver, p.incentive_driver),
      std::logic_error);
  // Draining and consuming clears the objection.
  (void)p.placer_driver.pump(p.bus);
  EXPECT_NO_THROW(
      save_checkpoint(blob, p.bus, p.placer_driver, p.incentive_driver));
}

TEST(StreamCheckpoint, RestoreRejectsForeignOrCorruptBlobs) {
  Pipeline p(3);

  {  // Not a checkpoint at all.
    std::istringstream junk("definitely not a checkpoint blob");
    EXPECT_THROW((void)restore_checkpoint(junk, p.bus, p.system,
                                          p.placer_driver, p.incentive_driver),
                 std::runtime_error);
  }
  {  // Right magic, unsupported version.
    std::ostringstream os;
    data::wire::write_u64(os, 0x4553545243435031ULL);
    data::wire::write_u64(os, 999);
    std::istringstream is(os.str());
    EXPECT_THROW((void)restore_checkpoint(is, p.bus, p.system,
                                          p.placer_driver, p.incentive_driver),
                 std::runtime_error);
  }
  {  // Truncated mid-body.
    std::ostringstream os;
    save_checkpoint(os, p.bus, p.placer_driver, p.incentive_driver);
    const std::string full = os.str();
    std::istringstream is(full.substr(0, full.size() / 2));
    EXPECT_THROW((void)restore_checkpoint(is, p.bus, p.system,
                                          p.placer_driver, p.incentive_driver),
                 std::runtime_error);
  }
}

TEST(StreamCheckpoint, RestoreRejectsMismatchedBusFingerprint) {
  Pipeline four(3, 4);
  std::ostringstream blob;
  save_checkpoint(blob, four.bus, four.placer_driver, four.incentive_driver);

  {  // Different shard count: shard ownership would not line up.
    Pipeline two(3, 2);
    std::istringstream is(blob.str());
    EXPECT_THROW(
        (void)restore_checkpoint(is, two.bus, two.system, two.placer_driver,
                                 two.incentive_driver),
        std::runtime_error);
  }
  {  // Same shard count but different routing cell: same problem.
    core::ESharing system(system_config(), 3);
    Pipeline::start(system, 3);
    auto cfg = bus_config(4);
    cfg.route_cell_m = 250.0;
    EventBus bus(cfg);
    OnlinePlacerDriver driver(system, bus, Pipeline::make_sample(3),
                              driver_config());
    IncentiveDriver incentives{IncentiveDriverConfig{}};
    std::istringstream is(blob.str());
    EXPECT_THROW(
        (void)restore_checkpoint(is, bus, system, driver, incentives),
        std::runtime_error);
  }
  {  // Wiring error: `system` is not the driver's system.
    Pipeline other(3, 4);
    core::ESharing stranger(system_config(), 3);
    Pipeline::start(stranger, 3);
    std::istringstream is(blob.str());
    EXPECT_THROW(
        (void)restore_checkpoint(is, other.bus, stranger, other.placer_driver,
                                 other.incentive_driver),
        std::logic_error);
  }
}

TEST(StreamCheckpoint, FileWrappersRoundTrip) {
  const std::string path = testing::TempDir() + "esharing_stream_ckpt.bin";
  const auto log = mixed_log(8, 100);

  Pipeline a(21);
  (void)replay_log(a.bus, a.placer_driver, log);
  save_checkpoint_file(path, a.bus, a.placer_driver, a.incentive_driver);

  Pipeline b(21);
  const CheckpointInfo info = restore_checkpoint_file(
      path, b.bus, b.system, b.placer_driver, b.incentive_driver);
  EXPECT_EQ(info.events_consumed, log.size());
  for (std::size_t s = 0; s < a.placer_driver.shard_count(); ++s) {
    EXPECT_TRUE(a.placer_driver.shard_state(s).equals(
        b.placer_driver.shard_state(s)));
  }
  std::remove(path.c_str());

  Pipeline c(21);
  EXPECT_THROW(
      (void)restore_checkpoint_file("/nonexistent/dir/ckpt.bin", c.bus,
                                    c.system, c.placer_driver,
                                    c.incentive_driver),
      std::runtime_error);
}

TEST(StreamCheckpoint, SaveIsCrashAtomicAndTruncatedFilesAreRejected) {
  const std::string path = testing::TempDir() + "esharing_atomic_ckpt.bin";
  const auto log = mixed_log(8, 100);

  Pipeline a(29);
  (void)replay_log(a.bus, a.placer_driver, log);
  save_checkpoint_file(path, a.bus, a.placer_driver, a.incentive_driver);
  // The tmp staging file must be gone after a successful save (renamed
  // onto the target), never left beside it.
  {
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
  }

  // Simulate a crash mid-write of a NON-atomic saver: truncate the file to
  // half. Restore must reject it cleanly instead of half-applying state.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  Pipeline b(29);
  EXPECT_THROW((void)restore_checkpoint_file(path, b.bus, b.system,
                                             b.placer_driver,
                                             b.incentive_driver),
               std::runtime_error);

  // An intact byte-stream written back restores fine — the rejection above
  // was about truncation, not the file wrapper.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Pipeline c(29);
  const CheckpointInfo info = restore_checkpoint_file(
      path, c.bus, c.system, c.placer_driver, c.incentive_driver);
  EXPECT_EQ(info.events_consumed, log.size());
  std::remove(path.c_str());
}

// --- StreamForecastRefresh --------------------------------------------------

/// Re-anchoring with the batched demand forecaster enabled: each re-anchor
/// fits ml::batch::BatchRnn over the driver's per-cell hourly accumulator
/// and anchors on predicted next-hour demand (raw counts until enough
/// completed hours exist).
PlacerDriverConfig forecast_driver_config() {
  PlacerDriverConfig cfg = driver_config();
  cfg.reanchor_period = 48;
  cfg.forecast_history_hours = 10;
  cfg.forecast_rnn.kind = ml::batch::RnnKind::kGru;
  cfg.forecast_rnn.hidden = 4;
  cfg.forecast_rnn.lookback = 3;
  cfg.forecast_rnn.epochs = 4;
  return cfg;
}

/// Trip ends spread over many hours so the accumulator crosses the
/// lookback + 2 completed-hour threshold mid-log.
std::vector<Event> hourly_log(std::uint64_t seed, int n) {
  stats::Rng rng(seed);
  const auto points = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n);
  std::vector<Event> log;
  log.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.time = static_cast<data::Seconds>(i * 240);  // 15 trip ends per hour
    e.where = points[i];
    log.push_back(e);
  }
  return log;
}

TEST(StreamForecastRefresh, ConfigValidatesForecastKnobs) {
  PlacerDriverConfig cfg = forecast_driver_config();
  cfg.forecast_history_hours = 3;  // < lookback + 2
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = forecast_driver_config();
  cfg.forecast_rnn.hidden = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(forecast_driver_config().validate());
}

TEST(StreamForecastRefresh, FiresOnceEnoughHoursAccumulate) {
  const auto log = hourly_log(17, 400);
  Pipeline p(17, 4, forecast_driver_config());
  (void)replay_log(p.bus, p.placer_driver, log);
  EXPECT_GT(p.placer_driver.reanchors(), 0u);
  EXPECT_GT(p.placer_driver.forecast_refreshes(), 0u);
  EXPECT_LE(p.placer_driver.forecast_refreshes(), p.placer_driver.reanchors());
}

TEST(StreamForecastRefresh, ShardCountInvariant) {
  const auto log = hourly_log(21, 400);
  Pipeline one(21, 1, forecast_driver_config());
  Pipeline four(21, 4, forecast_driver_config());
  std::vector<solver::OnlineDecision> da, db;
  for (const Event& e : log) {
    auto d = one.placer_driver.consume(e);
    if (d.has_value()) da.push_back(*d);
  }
  four.placer_driver.consume_batch(log, /*lanes=*/1, &db);
  expect_same_decisions(da, db);
  EXPECT_EQ(one.placer_driver.reanchors(), four.placer_driver.reanchors());
  EXPECT_EQ(one.placer_driver.forecast_refreshes(),
            four.placer_driver.forecast_refreshes());
  EXPECT_GT(one.placer_driver.forecast_refreshes(), 0u);
}

TEST(StreamForecastRefresh, CheckpointRoundTripContinuesBitIdentically) {
  const auto log = hourly_log(33, 400);
  const std::size_t half = log.size() / 2;

  // Uninterrupted reference run.
  Pipeline ref(33, 4, forecast_driver_config());
  std::vector<solver::OnlineDecision> ref_decisions;
  for (const Event& e : log) {
    auto d = ref.placer_driver.consume(e);
    if (d.has_value()) ref_decisions.push_back(*d);
  }

  // Run to the halfway point, checkpoint the driver, restore into a fresh
  // pipeline, and continue — the forecast accumulator must ride along.
  Pipeline a(33, 4, forecast_driver_config());
  std::vector<solver::OnlineDecision> decisions;
  for (std::size_t i = 0; i < half; ++i) {
    auto d = a.placer_driver.consume(log[i]);
    if (d.has_value()) decisions.push_back(*d);
  }
  std::stringstream blob;
  save_checkpoint(blob, a.bus, a.placer_driver, a.incentive_driver);

  Pipeline b(33, 4, forecast_driver_config());
  restore_checkpoint(blob, b.bus, b.system, b.placer_driver,
                     b.incentive_driver);
  EXPECT_EQ(b.placer_driver.forecast_refreshes(),
            a.placer_driver.forecast_refreshes());
  for (std::size_t i = half; i < log.size(); ++i) {
    auto d = b.placer_driver.consume(log[i]);
    if (d.has_value()) decisions.push_back(*d);
  }
  expect_same_decisions(decisions, ref_decisions);
  EXPECT_EQ(b.placer_driver.forecast_refreshes(),
            ref.placer_driver.forecast_refreshes());
  EXPECT_GT(ref.placer_driver.forecast_refreshes(), 0u);
}

}  // namespace
}  // namespace esharing::stream
