#include "solver/facility_location.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::solver {
namespace {

FlInstance two_by_two() {
  // Clients at (0,0) w=1 and (10,0) w=2; facilities at the same spots.
  return colocated_instance({{{0, 0}, 1.0}, {{10, 0}, 2.0}}, {5.0, 7.0});
}

TEST(FlInstance, ConnectionCostIsWeightedDistance) {
  const auto inst = two_by_two();
  EXPECT_DOUBLE_EQ(inst.connection_cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(inst.connection_cost(0, 1), 20.0);  // weight 2 * dist 10
  EXPECT_DOUBLE_EQ(inst.connection_cost(1, 0), 10.0);
}

TEST(FlInstance, ValidateRejectsEmptyAndNegative) {
  FlInstance inst;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.clients.push_back({{0, 0}, -1.0});
  inst.facilities.push_back({{0, 0}, 1.0});
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.clients[0].weight = 1.0;
  inst.facilities[0].opening_cost = -1.0;
  EXPECT_THROW(inst.validate(), std::invalid_argument);
  inst.facilities[0].opening_cost = 0.0;
  EXPECT_NO_THROW(inst.validate());
}

TEST(ColocatedInstance, RejectsSizeMismatch) {
  EXPECT_THROW((void)colocated_instance({{{0, 0}, 1.0}}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(AssignToOpen, PicksCheapestFacilityPerClient) {
  const auto inst = two_by_two();
  const auto sol = assign_to_open(inst, {0, 1});
  EXPECT_EQ(sol.assignment[0], 0u);
  EXPECT_EQ(sol.assignment[1], 1u);
  EXPECT_DOUBLE_EQ(sol.connection_cost, 0.0);
  EXPECT_DOUBLE_EQ(sol.opening_cost, 12.0);
  EXPECT_DOUBLE_EQ(sol.total_cost(), 12.0);
}

TEST(AssignToOpen, SingleOpenFacilityTakesAll) {
  const auto inst = two_by_two();
  const auto sol = assign_to_open(inst, {0});
  EXPECT_EQ(sol.assignment[0], 0u);
  EXPECT_EQ(sol.assignment[1], 0u);
  EXPECT_DOUBLE_EQ(sol.connection_cost, 20.0);
  EXPECT_DOUBLE_EQ(sol.opening_cost, 5.0);
}

TEST(AssignToOpen, DeduplicatesOpenSet) {
  const auto inst = two_by_two();
  const auto sol = assign_to_open(inst, {0, 0, 0});
  EXPECT_EQ(sol.open.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.opening_cost, 5.0);
}

TEST(AssignToOpen, RejectsEmptyOrInvalidOpenSet) {
  const auto inst = two_by_two();
  EXPECT_THROW((void)assign_to_open(inst, {}), std::invalid_argument);
  EXPECT_THROW((void)assign_to_open(inst, {5}), std::invalid_argument);
}

TEST(Recost, RecomputesCostsFromAssignment) {
  const auto inst = two_by_two();
  FlSolution sol;
  sol.open = {1};
  sol.assignment = {1, 1};
  const auto out = recost(inst, sol);
  EXPECT_DOUBLE_EQ(out.connection_cost, 10.0);
  EXPECT_DOUBLE_EQ(out.opening_cost, 7.0);
}

TEST(Recost, RejectsInconsistentSolutions) {
  const auto inst = two_by_two();
  FlSolution bad_size;
  bad_size.open = {0};
  bad_size.assignment = {0};
  EXPECT_THROW((void)recost(inst, bad_size), std::invalid_argument);
  FlSolution closed;
  closed.open = {0};
  closed.assignment = {0, 1};  // client 1 assigned to closed facility
  EXPECT_THROW((void)recost(inst, closed), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
