/// Cross-module integration tests: the paper's qualitative claims verified
/// end-to-end on synthetic workloads (small scale so the suite stays fast).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "core/deviation_placer.h"
#include "core/daytype_router.h"
#include "core/demand_forecast.h"
#include "core/esharing.h"
#include "data/binning.h"
#include "data/csv.h"
#include "data/synthetic_city.h"
#include "solver/jms_greedy.h"
#include "solver/meyerson.h"
#include "stats/ks2d.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing {
namespace {

using geo::Point;

/// Theorem 1's adversarial stream: requests at (2^-i, 2^-i) with f = 2.
/// The offline optimum opens one parking near the origin at bounded cost,
/// while any online algorithm's expected cost keeps growing with n — we
/// verify the cost ratio grows as the stream extends.
TEST(Integration, Theorem1AdversarialStreamHurtsOnline) {
  const double f = 2.0;
  auto run_online = [&](std::size_t n, std::uint64_t seed) {
    solver::MeyersonPlacer placer(f, seed);
    for (std::size_t i = 1; i <= n; ++i) {
      const double c = std::pow(0.5, static_cast<double>(i));
      (void)placer.process({c, c});
    }
    return placer.total_cost();
  };
  auto offline_bound = [&](std::size_t n) {
    // Opening only (0, 0): cost <= 2 + sqrt(2) (geometric series).
    double cost = f;
    for (std::size_t i = 1; i <= n; ++i) {
      cost += std::sqrt(2.0) * std::pow(0.5, static_cast<double>(i));
    }
    return cost;
  };
  // Average online cost over seeds, short vs long stream.
  double short_ratio = 0.0, long_ratio = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    short_ratio += run_online(5, s) / offline_bound(5);
    long_ratio += run_online(40, s) / offline_bound(40);
  }
  EXPECT_GT(long_ratio, short_ratio);
}

/// Fig. 4 / Fig. 6 regime: on a uniform stream, the offline JMS solution is
/// cheapest, the deviation-penalty online algorithm lands in between, and
/// Meyerson is the most expensive — with station counts ordered the same.
TEST(Integration, CostOrderingOfflineEsharingMeyerson) {
  stats::Rng rng(1);
  const geo::BoundingBox field{{0, 0}, {1000, 1000}};
  const double f = 5000.0;

  double offline_total = 0.0, esharing_total = 0.0, meyerson_total = 0.0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto pts = stats::uniform_points(rng, field, 100);

    // Offline on the full knowledge.
    std::vector<solver::FlClient> clients;
    std::vector<double> costs;
    for (Point p : pts) {
      clients.push_back({p, 1.0});
      costs.push_back(f);
    }
    const auto offline =
        solver::jms_greedy(solver::colocated_instance(clients, costs));
    offline_total += offline.total_cost();

    // E-sharing guided by the offline plan of a *previous* (statistically
    // identical) sample.
    const auto history = stats::uniform_points(rng, field, 100);
    std::vector<solver::FlClient> hist_clients;
    std::vector<double> hist_costs;
    for (Point p : history) {
      hist_clients.push_back({p, 1.0});
      hist_costs.push_back(f);
    }
    const auto hist_plan = solver::jms_greedy(
        solver::colocated_instance(hist_clients, hist_costs));
    std::vector<Point> landmarks;
    for (std::size_t i : hist_plan.open) landmarks.push_back(history[i]);

    core::DeviationPlacerConfig cfg;
    cfg.tolerance = 200.0;
    core::DeviationPenaltyPlacer placer(
        landmarks, history, [f](Point) { return f; }, cfg,
        100 + static_cast<std::uint64_t>(trial));
    solver::MeyersonPlacer meyerson(f, 200 + static_cast<std::uint64_t>(trial));
    for (Point p : pts) {
      (void)placer.process(p);
      (void)meyerson.process(p);
    }
    esharing_total += placer.total_cost();
    meyerson_total += meyerson.total_cost();
  }
  EXPECT_LT(offline_total, esharing_total);
  EXPECT_LT(esharing_total, meyerson_total);
}

/// Table IV regime on the synthetic city: same-day-type similarity exceeds
/// cross-day-type similarity.
TEST(Integration, WeekdayWeekendKsBlocks) {
  data::CityConfig cfg;
  cfg.num_days = 12;
  cfg.trips_per_weekday = 500;
  cfg.trips_per_weekend_day = 400;
  cfg.num_bikes = 100;
  data::SyntheticCity city(cfg, 2);
  const auto trips = city.generate_trips();

  auto day_sample = [&](int day) {
    auto pts = data::destinations_in_window(
        city.projection(), trips, day * data::kSecondsPerDay,
        (day + 1) * data::kSecondsPerDay);
    if (pts.size() > 150) pts.resize(150);
    return pts;
  };
  // Days 0..11 start Wed 2017-05-10. Weekdays: 0,1,2 (Wed-Fri); weekend:
  // 3,4 (Sat-Sun); next week weekdays: 5..9; weekend: 10, 11.
  const double wd_wd = stats::ks2d_test(day_sample(1), day_sample(8)).similarity;
  const double we_we = stats::ks2d_test(day_sample(3), day_sample(10)).similarity;
  const double wd_we = stats::ks2d_test(day_sample(1), day_sample(3)).similarity;
  EXPECT_GT(wd_wd, wd_we);
  EXPECT_GT(we_we, wd_we);
}

/// Tier-two end to end: incentivized aggregation must reduce the charging
/// cost actually paid by the operator (the 47% headline, qualitatively).
TEST(Integration, IncentivesReduceOperatorCost) {
  stats::Rng rng(3);
  // 8 stations on a ring, each with a couple of low bikes.
  std::vector<core::EnergyStation> stations;
  std::size_t bike = 0;
  for (int s = 0; s < 8; ++s) {
    const double angle = s * std::numbers::pi / 4.0;
    stations.push_back({{1000 + 800 * std::cos(angle), 1000 + 800 * std::sin(angle)},
                        {bike, bike + 1}});
    bike += 2;
  }
  const energy::ChargingCostParams costs{.service_cost_q = 20.0,
                                         .delay_cost_d = 10.0,
                                         .energy_cost_b = 2.0};
  core::OperatorConfig op;
  op.work_seconds = 1e9;
  op.depot = {1000, 1000};

  const auto baseline = core::run_charging_round(stations, costs, op);

  core::IncentiveConfig icfg;
  icfg.alpha = 0.8;
  icfg.costs = costs;
  icfg.mileage_slack_m = 300.0;
  core::IncentiveMechanism mech(stations, icfg);
  // Simulated cooperative riders picking up all over the ring.
  const core::UserBehavior user{500.0, 0.0};
  for (int round = 0; round < 400; ++round) {
    const std::size_t at = rng.index(8);
    const std::size_t to = rng.index(8);
    (void)mech.handle_pickup(at, mech.stations()[to].location, user,
                             [](std::size_t, double) { return true; });
  }
  ASSERT_GT(mech.relocations(), 0u);
  const auto after = core::run_charging_round(mech.stations(), costs, op);
  EXPECT_LT(after.stations_visited, baseline.stations_visited);
  EXPECT_LT(after.total_cost(mech.total_incentives_paid()),
            baseline.total_cost());
}

/// Forecast-driven planning: bin a week of history, forecast the next day
/// per grid cell, plan offline on the predicted sites and serve the next
/// day online — the parkings must sit near the busiest predicted cells.
TEST(Integration, ForecastDrivenPlanningServesNextDay) {
  data::CityConfig ccfg;
  ccfg.num_days = 7;
  ccfg.trips_per_weekday = 600;
  ccfg.trips_per_weekend_day = 500;
  ccfg.num_bikes = 100;
  data::SyntheticCity city(ccfg, 6);
  const auto history = city.generate_trips();
  const auto grid = city.grid();
  const auto matrix = data::bin_trips(grid, city.projection(), history,
                                      static_cast<std::size_t>(ccfg.num_days) * 24);

  core::GridForecastConfig fcfg;
  fcfg.engine = core::ForecastEngine::kSeasonalNaive;
  const auto forecast = core::forecast_grid_demand(matrix, grid, fcfg);

  core::ESharingConfig scfg;
  scfg.placer.ks_period = 0;
  core::ESharing sys(scfg, 7);
  (void)sys.plan_offline(forecast.sites(grid), [](Point) { return 10000.0; });
  sys.start_online({});
  ASSERT_GE(sys.offline_solution().num_open(), 2u);

  // Serve the next (eighth) day; walking should be modest because the
  // predicted plan anchors the real demand hotspots.
  const auto live = city.generate_trips();
  double walking = 0.0;
  std::size_t served = 0;
  for (const auto& trip : live) {
    if (data::day_index(trip.start_time) != 7) continue;
    const Point dest = city.end_point(trip);
    const auto d = sys.handle_request(dest);
    walking += geo::distance(
        dest, sys.placer().stations()[d.facility].location);
    ++served;
  }
  ASSERT_GT(served, 100u);
  EXPECT_LT(walking / static_cast<double>(served), 300.0);
}

/// Day-type routing end to end: weekday and weekend offline plans built
/// from their own day-type histories serve live requests routed by the
/// calendar, and each placer only ever sees its own day type.
TEST(Integration, DayTypeRoutedPlansOnCityData) {
  data::CityConfig ccfg;
  ccfg.num_days = 14;
  ccfg.trips_per_weekday = 500;
  ccfg.trips_per_weekend_day = 400;
  ccfg.num_bikes = 100;
  data::SyntheticCity city(ccfg, 8);
  const auto history = city.generate_trips();

  const auto grid = city.grid();
  const auto plan_for = [&](bool weekend) {
    // Aggregate this day type's destinations per grid cell (raw points as
    // clients would make the O(N^3) offline greedy needlessly slow).
    std::vector<Point> pts;
    std::unordered_map<std::size_t, double> per_cell;
    for (const auto& t : history) {
      if (data::is_weekend(t.start_time) != weekend) continue;
      const Point end = city.end_point(t);
      pts.push_back(end);
      ++per_cell[grid.index_of(grid.clamped_cell_of(end))];
    }
    std::vector<solver::FlClient> clients;
    std::vector<double> costs;
    for (const auto& [cell, n] : per_cell) {
      clients.push_back({grid.centroid_of(grid.cell_at(cell)), n});
      costs.push_back(10000.0);
    }
    const auto sol =
        solver::jms_greedy(solver::colocated_instance(clients, costs));
    std::vector<Point> landmarks;
    for (std::size_t i : sol.open) landmarks.push_back(clients[i].location);
    if (pts.size() > 200) pts.resize(200);
    return std::pair{landmarks, pts};
  };
  const auto [wd_landmarks, wd_sample] = plan_for(false);
  const auto [we_landmarks, we_sample] = plan_for(true);
  ASSERT_GE(wd_landmarks.size(), 2u);
  ASSERT_GE(we_landmarks.size(), 2u);

  core::DeviationPlacerConfig cfg;
  cfg.ks_period = 200;
  core::DayTypeRouter router(wd_landmarks, wd_sample, we_landmarks, we_sample,
                             [](Point) { return 10000.0; }, cfg, 9);
  const auto live = city.generate_trips();
  std::size_t weekend_requests = 0;
  for (const auto& trip : live) {
    (void)router.process(trip.start_time, city.end_point(trip));
    weekend_requests += data::is_weekend(trip.start_time) ? 1 : 0;
  }
  EXPECT_EQ(router.weekend().requests_seen(), weekend_requests);
  EXPECT_EQ(router.weekday().requests_seen(), live.size() - weekend_requests);
  EXPECT_GT(router.total_connection_cost(), 0.0);
}

/// Full pipeline smoke: city -> CSV round trip -> binning -> offline plan ->
/// online stream -> incentive session -> charging round.
TEST(Integration, FullPipelineEndToEnd) {
  data::CityConfig ccfg;
  ccfg.num_days = 3;
  ccfg.trips_per_weekday = 300;
  ccfg.trips_per_weekend_day = 250;
  ccfg.num_bikes = 60;
  data::SyntheticCity city(ccfg, 4);
  const auto history = city.generate_trips();

  // Persist + reload through the Mobike CSV codec.
  const std::string path = testing::TempDir() + "/esharing_integration.csv";
  data::save_trips_csv(path, history);
  const auto loaded = data::load_trips_csv(path);
  ASSERT_EQ(loaded.size(), history.size());
  std::remove(path.c_str());

  const auto grid = city.grid();
  const auto sites = data::demand_sites_in_window(
      grid, city.projection(), loaded, 0, ccfg.num_days * data::kSecondsPerDay);
  ASSERT_FALSE(sites.empty());

  core::ESharingConfig scfg;
  scfg.placer.ks_period = 100;
  scfg.charging_operator.work_seconds = 1e9;
  core::ESharing sys(scfg, 5);
  (void)sys.plan_offline(sites, [](Point) { return 10000.0; });
  auto hist_pts = data::destinations_in_window(
      city.projection(), loaded, 0, ccfg.num_days * data::kSecondsPerDay);
  hist_pts.resize(std::min<std::size_t>(hist_pts.size(), 200));
  sys.start_online(hist_pts);

  const auto live = city.generate_trips();
  for (const auto& trip : live) {
    (void)sys.handle_request(city.end_point(trip));
  }
  EXPECT_GE(sys.parking_locations().size(),
            sys.offline_solution().num_open());

  energy::BikeFleet fleet(ccfg.num_bikes, energy::EnergyConfig{}, 6);
  std::vector<std::size_t> bike_station(fleet.size());
  const auto parkings = sys.parking_locations();
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    bike_station[b] = b % parkings.size();
  }
  auto session = sys.make_incentive_session(fleet, bike_station);
  const auto round = sys.charge(session);
  EXPECT_EQ(round.bikes_total, fleet.low_battery_bikes().size());
  EXPECT_DOUBLE_EQ(round.pct_charged(), 100.0);
}

}  // namespace
}  // namespace esharing
