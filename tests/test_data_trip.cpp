#include "data/trip.h"

#include <gtest/gtest.h>

namespace esharing::data {
namespace {

TEST(Calendar, DayIndexOfTimestamps) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kSecondsPerDay - 1), 0);
  EXPECT_EQ(day_index(kSecondsPerDay), 1);
  EXPECT_EQ(day_index(14 * kSecondsPerDay + 5), 14);
}

TEST(Calendar, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(kSecondsPerHour * 7 + 100), 7);
  EXPECT_EQ(hour_of_day(kSecondsPerDay + 23 * kSecondsPerHour), 23);
}

TEST(Calendar, HourIndexAccumulatesAcrossDays) {
  EXPECT_EQ(hour_index(0), 0);
  EXPECT_EQ(hour_index(kSecondsPerDay), 24);
  EXPECT_EQ(hour_index(2 * kSecondsPerDay + 5 * kSecondsPerHour), 53);
}

TEST(Calendar, EpochIsWednesday20170510) {
  EXPECT_EQ(weekday_of(0), Weekday::kWednesday);
  EXPECT_EQ(weekday_of(kSecondsPerDay), Weekday::kThursday);
  EXPECT_EQ(weekday_of(2 * kSecondsPerDay), Weekday::kFriday);
  EXPECT_EQ(weekday_of(3 * kSecondsPerDay), Weekday::kSaturday);
  EXPECT_EQ(weekday_of(4 * kSecondsPerDay), Weekday::kSunday);
  EXPECT_EQ(weekday_of(5 * kSecondsPerDay), Weekday::kMonday);
}

TEST(Calendar, WeekendPredicate) {
  EXPECT_FALSE(is_weekend(0));                      // Wed
  EXPECT_TRUE(is_weekend(3 * kSecondsPerDay));      // Sat 2017-05-13
  EXPECT_TRUE(is_weekend(4 * kSecondsPerDay));      // Sun
  EXPECT_FALSE(is_weekend(5 * kSecondsPerDay));     // Mon
  EXPECT_TRUE(is_weekend(10 * kSecondsPerDay));     // Sat 2017-05-20
  EXPECT_TRUE(is_weekend(11 * kSecondsPerDay));     // Sun 2017-05-21
}

TEST(Calendar, WeekdayNames) {
  EXPECT_STREQ(weekday_name(Weekday::kMonday), "Mon");
  EXPECT_STREQ(weekday_name(Weekday::kSunday), "Sun");
}

TEST(Trip, SortByStartTimeWithStableOrderIdTiebreak) {
  std::vector<TripRecord> trips(3);
  trips[0].order_id = 3;
  trips[0].start_time = 100;
  trips[1].order_id = 1;
  trips[1].start_time = 100;
  trips[2].order_id = 2;
  trips[2].start_time = 50;
  sort_by_start_time(trips);
  EXPECT_EQ(trips[0].order_id, 2);
  EXPECT_EQ(trips[1].order_id, 1);
  EXPECT_EQ(trips[2].order_id, 3);
}

}  // namespace
}  // namespace esharing::data
