#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/demand_forecast.h"
#include "core/esharing.h"
#include "sim/simulation.h"

namespace esharing {
namespace {

/// Asserts that validate() throws std::invalid_argument and that the
/// message names the offending field — the "actionable message" contract.
template <typename Config>
void expect_rejects(const Config& config, const std::string& field) {
  try {
    config.validate();
    FAIL() << "expected " << field << " to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(ESharingConfigValidate, DefaultConfigIsValid) {
  const core::ESharingConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(ESharingConfigValidate, RejectsBadPlacerFields) {
  core::ESharingConfig c;
  c.placer.beta = 0.5;
  expect_rejects(c, "placer.beta");

  c = {};
  c.placer.tolerance = 0.0;
  expect_rejects(c, "placer.tolerance");

  c = {};
  c.placer.window_capacity = 0;
  expect_rejects(c, "placer.window_capacity");

  c = {};
  c.placer.ks_min_samples = 0;
  expect_rejects(c, "placer.ks_min_samples");

  c = {};
  c.placer.w_star_override = -1.0;
  expect_rejects(c, "placer.w_star_override");

  c = {};
  c.placer.initial_scale_override = -2.0;
  expect_rejects(c, "placer.initial_scale_override");

  c = {};
  c.placer.initial_scale_override = 0.0;
  c.placer.initial_scale_multiplier = 0.0;
  expect_rejects(c, "placer.initial_scale_multiplier");
}

TEST(ESharingConfigValidate, ScaleMultiplierIgnoredWhenOverrideGiven) {
  core::ESharingConfig c;
  c.placer.initial_scale_override = 500.0;
  c.placer.initial_scale_multiplier = 0.0;  // unused with an override
  EXPECT_NO_THROW(c.validate());
}

TEST(ESharingConfigValidate, RejectsBadIncentiveFields) {
  core::ESharingConfig c;
  c.incentive.alpha = 1.5;
  expect_rejects(c, "incentive.alpha");

  c = {};
  c.incentive.alpha = -0.1;
  expect_rejects(c, "incentive.alpha");

  c = {};
  c.incentive.mileage_slack_m = -1.0;
  expect_rejects(c, "incentive.mileage_slack_m");

  c = {};
  c.incentive.max_sequence_position = 0;
  expect_rejects(c, "incentive.max_sequence_position");

  c = {};
  c.incentive.costs.service_cost_q = -1.0;
  expect_rejects(c, "incentive.costs.service_cost_q");

  c = {};
  c.incentive.costs.delay_cost_d = -1.0;
  expect_rejects(c, "incentive.costs.delay_cost_d");

  c = {};
  c.incentive.costs.energy_cost_b = -1.0;
  expect_rejects(c, "incentive.costs.energy_cost_b");
}

TEST(ESharingConfigValidate, RejectsBadOperatorFields) {
  core::ESharingConfig c;
  c.charging_operator.speed_mps = 0.0;
  expect_rejects(c, "charging_operator.speed_mps");

  c = {};
  c.charging_operator.stop_overhead_s = -1.0;
  expect_rejects(c, "charging_operator.stop_overhead_s");

  c = {};
  c.charging_operator.charge_time_s = -5.0;
  expect_rejects(c, "charging_operator.charge_time_s");

  c = {};
  c.charging_operator.work_seconds = 0.0;
  expect_rejects(c, "charging_operator.work_seconds");
}

TEST(ESharingConfigValidate, ConstructorFailsFast) {
  core::ESharingConfig c;
  c.placer.beta = 0.0;
  EXPECT_THROW(core::ESharing(c, /*seed=*/1), std::invalid_argument);
}

TEST(SimConfigValidate, DefaultConfigIsValid) {
  const sim::SimConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(SimConfigValidate, RejectsBadEnergyFields) {
  sim::SimConfig c;
  c.energy.consumption_per_km = 0.0;
  expect_rejects(c, "energy.consumption_per_km");

  c = {};
  c.energy.low_threshold = 0.0;
  expect_rejects(c, "energy.low_threshold");

  c = {};
  c.energy.low_threshold = 1.5;
  expect_rejects(c, "energy.low_threshold");

  c = {};
  c.energy.low_tail_fraction = 1.2;
  expect_rejects(c, "energy.low_tail_fraction");

  c = {};
  c.energy.min_soc = 1.0;
  expect_rejects(c, "energy.min_soc");
}

TEST(SimConfigValidate, RejectsBadSimulationFields) {
  sim::SimConfig c;
  c.mean_opening_cost = 0.0;
  expect_rejects(c, "mean_opening_cost");

  c = {};
  c.charging_period = 0;
  expect_rejects(c, "charging_period");

  c = {};
  c.user_max_walk_lo_m = -10.0;
  expect_rejects(c, "user_max_walk_lo_m");

  c = {};
  c.user_max_walk_hi_m = 0.0;
  c.user_max_walk_lo_m = 100.0;
  expect_rejects(c, "user_max_walk_hi_m");

  c = {};
  c.user_min_reward_lo = 5.0;
  c.user_min_reward_hi = 1.0;
  expect_rejects(c, "user_min_reward_hi");

  c = {};
  c.history_sample_cap = 0;
  expect_rejects(c, "history_sample_cap");
}

TEST(SimConfigValidate, RejectsBadStreamKnobs) {
  // The nested stream::PipelineConfig carries its own messages; the field
  // names below come from EventBusConfig / PlacerDriverConfig.
  sim::SimConfig c;
  c.stream.bus.shard_count = 0;
  expect_rejects(c, "shard_count");

  c = {};
  c.stream.bus.max_batch = 0;
  expect_rejects(c, "max_batch");

  c = {};
  c.stream.bus.queue_capacity = 8;
  c.stream.bus.max_batch = 9;
  expect_rejects(c, "max_batch");

  c = {};
  c.stream.bus.route_cell_m = 0.0;
  expect_rejects(c, "route_cell_m");

  c = {};
  c.stream.placer.ks_sample_budget = 2;
  expect_rejects(c, "ks_sample_budget");
}

TEST(SimConfigValidate, NestedESharingConfigIsChecked) {
  sim::SimConfig c;
  c.esharing.incentive.alpha = 2.0;
  expect_rejects(c, "incentive.alpha");
}

TEST(GridForecastConfigValidate, DefaultConfigIsValid) {
  const core::GridForecastConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(GridForecastConfigValidate, RejectsBadFields) {
  core::GridForecastConfig c;
  c.horizon_hours = 0;
  expect_rejects(c, "horizon_hours");

  c = {};
  c.engine = core::ForecastEngine::kLstm;
  c.rnn_hidden = 0;
  expect_rejects(c, "rnn_hidden");

  c = {};
  c.engine = core::ForecastEngine::kGru;
  c.rnn_epochs = -1;
  expect_rejects(c, "rnn_epochs");

  c = {};
  c.engine = core::ForecastEngine::kLstm;
  c.rnn_batch_epochs = 0;
  expect_rejects(c, "rnn_batch_epochs");

  // The rnn knobs are only constrained when a recurrent engine is chosen.
  c = {};
  c.engine = core::ForecastEngine::kSeasonalNaive;
  c.rnn_hidden = 0;
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace esharing
