#include "solver/meyerson.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

TEST(Meyerson, RejectsNonPositiveOpeningCost) {
  EXPECT_THROW(MeyersonPlacer(0.0, 1), std::invalid_argument);
  EXPECT_THROW(MeyersonPlacer(-5.0, 1), std::invalid_argument);
}

TEST(Meyerson, FirstRequestAlwaysOpens) {
  MeyersonPlacer placer(1000.0, 1);
  const auto d = placer.process({10, 20});
  EXPECT_TRUE(d.opened);
  EXPECT_EQ(placer.num_open(), 1u);
  EXPECT_DOUBLE_EQ(placer.total_connection_cost(), 0.0);
}

TEST(Meyerson, RepeatAtFacilityNeverOpensAgain) {
  MeyersonPlacer placer(1000.0, 2);
  (void)placer.process({0, 0});
  for (int i = 0; i < 100; ++i) {
    const auto d = placer.process({0, 0});
    EXPECT_FALSE(d.opened);  // d = 0 -> prob 0
    EXPECT_EQ(d.facility, 0u);
  }
  EXPECT_EQ(placer.num_open(), 1u);
}

TEST(Meyerson, FarRequestBeyondFAlwaysOpens) {
  MeyersonPlacer placer(100.0, 3);
  (void)placer.process({0, 0});
  const auto d = placer.process({1000, 0});  // d=1000 >= f=100 -> prob 1
  EXPECT_TRUE(d.opened);
  EXPECT_EQ(placer.num_open(), 2u);
}

TEST(Meyerson, ZeroWeightRequestNeverOpens) {
  MeyersonPlacer placer(100.0, 4);
  (void)placer.process({0, 0});
  const auto d = placer.process({1e6, 1e6}, 0.0);
  EXPECT_FALSE(d.opened);
  EXPECT_DOUBLE_EQ(d.connection_cost, 0.0);
}

TEST(Meyerson, NegativeWeightRejected) {
  MeyersonPlacer placer(100.0, 5);
  EXPECT_THROW((void)placer.process({0, 0}, -1.0), std::invalid_argument);
}

TEST(Meyerson, CostAccountingConsistent) {
  MeyersonPlacer placer(500.0, 6);
  stats::Rng rng(7);
  double expected_conn = 0.0;
  for (const Point p :
       stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 200)) {
    const auto d = placer.process(p);
    if (!d.opened) expected_conn += d.connection_cost;
  }
  EXPECT_DOUBLE_EQ(placer.total_connection_cost(), expected_conn);
  EXPECT_DOUBLE_EQ(placer.total_opening_cost(),
                   500.0 * static_cast<double>(placer.num_open()));
  EXPECT_DOUBLE_EQ(placer.total_cost(),
                   placer.total_connection_cost() + placer.total_opening_cost());
}

TEST(Meyerson, AssignsToNearestFacility) {
  MeyersonPlacer placer(1e9, 8);  // huge f: never open after the first
  (void)placer.process({0, 0});
  (void)placer.process({1000, 0});  // assigned, not opened (prob ~1e-6)
  ASSERT_EQ(placer.num_open(), 1u);
  const auto d = placer.process({100, 0});
  EXPECT_EQ(d.facility, 0u);
  EXPECT_DOUBLE_EQ(d.connection_cost, 100.0);
}

TEST(Meyerson, DeterministicPerSeed) {
  stats::Rng rng(9);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 300);
  MeyersonPlacer a(800.0, 42), b(800.0, 42);
  for (Point p : pts) {
    (void)a.process(p);
    (void)b.process(p);
  }
  EXPECT_EQ(a.num_open(), b.num_open());
  EXPECT_DOUBLE_EQ(a.total_cost(), b.total_cost());
}

TEST(Meyerson, OpensMoreWithCheaperF) {
  stats::Rng rng(10);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 400);
  MeyersonPlacer cheap(200.0, 11), pricey(5000.0, 11);
  for (Point p : pts) {
    (void)cheap.process(p);
    (void)pricey.process(p);
  }
  EXPECT_GT(cheap.num_open(), 2 * pricey.num_open());
}

}  // namespace
}  // namespace esharing::solver
