#include "core/demand_forecast.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "data/synthetic_city.h"

namespace esharing::core {
namespace {

class GridForecastFixture : public ::testing::Test {
 protected:
  GridForecastFixture()
      : city_(make_config(), 81),
        grid_(city_.grid()),
        matrix_(data::bin_trips(grid_, city_.projection(),
                                city_.generate_trips(),
                                static_cast<std::size_t>(make_config().num_days) * 24)) {}

  static data::CityConfig make_config() {
    data::CityConfig cfg;
    cfg.num_days = 7;
    cfg.trips_per_weekday = 700;
    cfg.trips_per_weekend_day = 550;
    cfg.num_bikes = 120;
    return cfg;
  }

  data::SyntheticCity city_;
  geo::Grid grid_;
  data::DemandMatrix matrix_;
};

TEST_F(GridForecastFixture, SeasonalNaivePredictsPlausibleVolume) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kSeasonalNaive;
  cfg.horizon_hours = 24;
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  ASSERT_EQ(fc.predicted_arrivals.size(), grid_.cell_count());
  const double predicted =
      std::accumulate(fc.predicted_arrivals.begin(),
                      fc.predicted_arrivals.end(), 0.0);
  // One day of demand: between half and double the mean historical day.
  const auto hourly = matrix_.total_per_hour();
  const double daily_mean =
      std::accumulate(hourly.begin(), hourly.end(), 0.0) / 7.0;
  EXPECT_GT(predicted, 0.5 * daily_mean);
  EXPECT_LT(predicted, 2.0 * daily_mean);
  EXPECT_GT(fc.modeled_cells, 0u);
  EXPECT_LE(fc.modeled_cells, cfg.top_cells);
}

TEST_F(GridForecastFixture, NoNegativePredictions) {
  for (ForecastEngine engine :
       {ForecastEngine::kSeasonalNaive, ForecastEngine::kMovingAverage,
        ForecastEngine::kArima}) {
    GridForecastConfig cfg;
    cfg.engine = engine;
    cfg.top_cells = 20;
    const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
    for (double v : fc.predicted_arrivals) EXPECT_GE(v, 0.0);
  }
}

TEST_F(GridForecastFixture, BusyCellsStayBusyInTheForecast) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kSeasonalNaive;
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  const auto top = matrix_.top_cells(5);
  const double mean_pred =
      std::accumulate(fc.predicted_arrivals.begin(),
                      fc.predicted_arrivals.end(), 0.0) /
      static_cast<double>(fc.predicted_arrivals.size());
  for (std::size_t cell : top) {
    EXPECT_GT(fc.predicted_arrivals[cell], 3.0 * mean_pred);
  }
}

TEST_F(GridForecastFixture, SitesMatchPositiveCells) {
  GridForecastConfig cfg;
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  const auto sites = fc.sites(grid_);
  std::size_t positive = 0;
  for (double v : fc.predicted_arrivals) positive += v > 0.0 ? 1 : 0;
  EXPECT_EQ(sites.size(), positive);
  for (const auto& s : sites) {
    EXPECT_DOUBLE_EQ(s.arrivals, fc.predicted_arrivals[s.cell]);
    EXPECT_EQ(grid_.centroid_of(grid_.cell_at(s.cell)), s.location);
  }
}

TEST_F(GridForecastFixture, RnnEnginesRunOnTopCells) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kLstm;
  cfg.top_cells = 3;  // keep the per-cell training cheap
  cfg.rnn_epochs = 3;
  cfg.rnn_batch = false;  // the original one-model-per-cell path
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  EXPECT_GT(fc.modeled_cells, 0u);
  EXPECT_LE(fc.modeled_cells, 3u);
  for (double v : fc.predicted_arrivals) EXPECT_GE(v, 0.0);
}

TEST_F(GridForecastFixture, BatchedRnnPathMatchesShapeOfPerCellPath) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kGru;
  cfg.top_cells = 6;
  cfg.rnn_batch = true;
  cfg.rnn_batch_epochs = 10;
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  ASSERT_EQ(fc.predicted_arrivals.size(), grid_.cell_count());
  EXPECT_GT(fc.modeled_cells, 0u);
  EXPECT_LE(fc.modeled_cells, 6u);
  for (double v : fc.predicted_arrivals) EXPECT_GE(v, 0.0);
  const double predicted =
      std::accumulate(fc.predicted_arrivals.begin(),
                      fc.predicted_arrivals.end(), 0.0);
  EXPECT_GT(predicted, 0.0);
}

TEST_F(GridForecastFixture, BatchedInt8PathStaysNonNegative) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kLstm;
  cfg.top_cells = 4;
  cfg.rnn_batch = true;
  cfg.rnn_batch_epochs = 8;
  cfg.rnn_int8 = true;
  const auto fc = forecast_grid_demand(matrix_, grid_, cfg);
  EXPECT_GT(fc.modeled_cells, 0u);
  for (double v : fc.predicted_arrivals) EXPECT_GE(v, 0.0);
}

TEST_F(GridForecastFixture, PerCellPathDeterministicAcrossRuns) {
  GridForecastConfig cfg;
  cfg.engine = ForecastEngine::kLstm;
  cfg.top_cells = 3;
  cfg.rnn_epochs = 2;
  cfg.rnn_batch = false;
  const auto a = forecast_grid_demand(matrix_, grid_, cfg);
  const auto b = forecast_grid_demand(matrix_, grid_, cfg);
  ASSERT_EQ(a.predicted_arrivals.size(), b.predicted_arrivals.size());
  for (std::size_t c = 0; c < a.predicted_arrivals.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.predicted_arrivals[c], b.predicted_arrivals[c]);
  }
}

TEST_F(GridForecastFixture, Validates) {
  GridForecastConfig cfg;
  cfg.horizon_hours = 0;
  EXPECT_THROW((void)forecast_grid_demand(matrix_, grid_, cfg),
               std::invalid_argument);
  const data::DemandMatrix wrong(grid_.cell_count() + 1, 72);
  EXPECT_THROW((void)forecast_grid_demand(wrong, grid_, {}),
               std::invalid_argument);
  const data::DemandMatrix short_history(grid_.cell_count(), 24);
  EXPECT_THROW((void)forecast_grid_demand(short_history, grid_, {}),
               std::invalid_argument);
}

TEST(ForecastEngineName, AllNamed) {
  EXPECT_STREQ(forecast_engine_name(ForecastEngine::kLstm), "lstm");
  EXPECT_STREQ(forecast_engine_name(ForecastEngine::kGru), "gru");
  EXPECT_STREQ(forecast_engine_name(ForecastEngine::kSeasonalNaive),
               "seasonal-naive");
}

}  // namespace
}  // namespace esharing::core
