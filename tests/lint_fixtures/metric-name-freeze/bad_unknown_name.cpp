// Fixture: metric names missing from the frozen registry.
#include "fixture_obs.h"

void instrument(Registry& reg) {
  reg.counter("fixture.counter.hits").add(1);   // known — fine
  reg.counter("fixture.counter.typo").add(1);   // NOT in the registry
  reg.gauge("fixture.gauge.level").set(3.0);    // known — fine
  reg.emit("fixture.unregistered_event", "{}");  // NOT in the registry
  reg.emit("fixture.events.dyn_suffix", "{}");   // prefix match — fine
}
