// Fixture: references only part of the registry, so the unreferenced
// entries (fixture.gauge.level and the fixture.events. prefix) must be
// reported as stale.
#include "fixture_obs.h"

void instrument(Registry& reg) {
  reg.counter("fixture.counter.hits").add(1);
}
