// Fixture: every name is registered and every registry entry referenced.
#include "fixture_obs.h"

void instrument(Registry& reg) {
  reg.counter("fixture.counter.hits").add(1);
  reg.gauge("fixture.gauge.level").set(3.0);
  reg.emit("fixture.events.opened", "{}");
  // Non-obs string literals and calls are ignored:
  reg.describe("not.a.metric.name");
}
