#pragma once
// Fixture: a low-layer module reaching up into the application layer —
// the analyzer must report layering-upward.
#include "app/api.h"
