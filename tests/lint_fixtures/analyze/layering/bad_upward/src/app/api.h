#pragma once
namespace fx {
int answer();
}
