#pragma once
// Fixture: the clean counterpart — the application layer depends downward
// on base, and nothing points back up.
#include "base/impl.h"
