#pragma once
namespace fx {
int base_value();
}
