#pragma once
#include "a/a.h"
