#pragma once
// Fixture: mutual includes across modules — the analyzer must report a
// layering-cycle over {a, b} (and the upward half of the pair).
#include "b/b.h"
