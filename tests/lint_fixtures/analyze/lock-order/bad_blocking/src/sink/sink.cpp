// Fixture: file I/O performed inside a critical section without a waiver.
// The analyzer must report blocking-under-lock for both the ostream write
// and the flush.

namespace fx {

struct Sink {
  es::Mutex mu;
  std::ofstream out;
};

void append(Sink& s) {
  es::LockGuard lock(s.mu);
  s.out << "line";
  s.out.flush();
}

}  // namespace fx
