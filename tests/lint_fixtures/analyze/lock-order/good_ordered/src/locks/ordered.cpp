// Fixture: the clean counterpart — every function acquires Pair::a before
// Pair::b (a consistent global order), scoped blocks release in LIFO order,
// and the one deliberate I/O-under-lock site carries a waiver.

namespace fx {

struct Pair {
  es::Mutex a;
  es::Mutex b;
};

void both(Pair& p) {
  es::LockGuard la(p.a);
  es::LockGuard lb(p.b);
}

void nested(Pair& p) {
  es::LockGuard la(p.a);
  {
    es::LockGuard lb(p.b);
  }
  // b released at block exit; re-acquiring it here is still a->b order.
  es::LockGuard lb2(p.b);
}

struct Rec {
  es::Mutex mu;
  std::ofstream out;
};

void log_line(Rec& r) {
  es::LockGuard lock(r.mu);
  // analyze-ok: blocking-under-lock mu exists to keep lines whole in the file
  r.out << "line";
}

}  // namespace fx
