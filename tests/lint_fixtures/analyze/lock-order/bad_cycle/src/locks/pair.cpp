// Fixture: ab() acquires a then b while ba() acquires b then a — the
// classic AB/BA deadlock once two threads interleave. The analyzer must
// report a lock-order-cycle over {Pair::a, Pair::b}.

namespace fx {

struct Pair {
  es::Mutex a;
  es::Mutex b;
};

void ab(Pair& p) {
  es::LockGuard la(p.a);
  es::LockGuard lb(p.b);
}

void ba(Pair& p) {
  es::LockGuard lb(p.b);
  es::LockGuard la(p.a);
}

}  // namespace fx
