// Fixture: waiting on a condition variable while a second lock is held.
// wait() releases only the lock it was given — Gate::outer stays held
// across the sleep, starving every other outer-lock user.

namespace fx {

struct Gate {
  es::Mutex outer;
  es::Mutex inner;
  es::CondVar cv;
  bool ready{false};
};

void block_until_ready(Gate& g) {
  es::LockGuard hold(g.outer);
  es::UniqueLock lock(g.inner);
  while (!g.ready) {
    g.cv.wait(lock);
  }
}

}  // namespace fx
