// Fixture: the wire call sequence no longer matches the frozen digest —
// as if a field had been added without refreshing frozen_formats.txt.

namespace fx {

void encode(std::ostream& os) {
  wire::write_u8(os, 7);
  wire::write_u64(os, 42);
  wire::write_f64(os, 2.5);
}

}  // namespace fx
