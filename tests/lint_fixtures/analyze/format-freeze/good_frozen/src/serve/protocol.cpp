// Fixture: the clean counterpart — the frozen digest next door matches
// this wire call sequence (regenerate with analyze.py --update --root
// <this fixture> --formats <this fixture>/frozen_formats.txt).

namespace fx {

void encode(std::ostream& os) {
  wire::write_u8(os, 7);
  wire::write_u64(os, 42);
}

}  // namespace fx
