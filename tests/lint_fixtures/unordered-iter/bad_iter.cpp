// Fixture: range-for over unordered containers on a serialized-output path.
#include <cstddef>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

void bad_local_map(std::ostream& os) {
  std::unordered_map<std::size_t, double> counts;
  counts[3] = 1.0;
  for (const auto& [cell, n] : counts) {
    os << cell << ' ' << n << '\n';
  }
}

struct BadState {
  std::unordered_set<int> watch_;
  void save(std::ostream& os) const {
    for (int bike : watch_) {
      os << bike << '\n';
    }
  }
};
