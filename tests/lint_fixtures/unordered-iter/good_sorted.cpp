// Fixture: sorted views and non-serializing iteration the rule must NOT flag.
#include <algorithm>
#include <cstddef>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace {
std::vector<std::pair<std::size_t, double>> sorted_items_of(
    const std::unordered_map<std::size_t, double>& m) {
  std::vector<std::pair<std::size_t, double>> out(m.begin(), m.end());
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

void good_sorted_view(std::ostream& os) {
  std::unordered_map<std::size_t, double> counts;
  counts[3] = 1.0;
  // A call expression as the range is treated as an explicit sorted view.
  for (const auto& [cell, n] : sorted_items_of(counts)) {
    os << cell << ' ' << n << '\n';
  }
}

double good_waived_accumulate(
    const std::unordered_map<std::size_t, double>& counts) {
  double total = 0.0;
  // lint-ok: unordered-iter order-independent reduction, nothing serialized
  for (const auto& [cell, n] : counts) {
    total += n + static_cast<double>(cell) * 0.0;
  }
  return total;
}

void good_vector_iter(std::ostream& os) {
  std::vector<int> bikes{1, 2, 3};
  for (int bike : bikes) {
    os << bike << '\n';
  }
}
