// Fixture: every ambient randomness source the rule must catch.
#include <cstdlib>
#include <random>

int bad_c_rand() {
  srand(42);
  return rand();
}

unsigned bad_random_device() {
  std::random_device rd;
  return rd();
}

long bad_rand48() { return lrand48(); }
