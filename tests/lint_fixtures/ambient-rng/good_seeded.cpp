// Fixture: seeded randomness plus mentions the rule must NOT flag.
// A doc comment may talk about rand() or std::random_device freely.
#include <cstdint>
#include <string>

struct FakeRng {
  explicit FakeRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
};

double draw(FakeRng& rng) {
  rng.state = rng.state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>(rng.state >> 11) / 9007199254740992.0;
}

// String literals are not code either:
const std::string kDoc = "never call rand() or srand() here";

// Identifiers merely containing the token are fine:
int random_device_count = 0;
int strand_id() { return 7; }

// And a justified waiver silences a real hit:
int waived() {
  return rand();  // lint-ok: ambient-rng fixture demonstrating the waiver
}
