// lint-ok: pragma-once generated shim meant to be includable multiple times
struct fixture_waived_shim {
  int value = 0;
};
