// Fixture: classic include guard instead of #pragma once.
#ifndef ESHARING_FIXTURE_BAD_GUARD_MACRO_H_
#define ESHARING_FIXTURE_BAD_GUARD_MACRO_H_

inline int fixture_value() { return 1; }

#endif  // ESHARING_FIXTURE_BAD_GUARD_MACRO_H_
