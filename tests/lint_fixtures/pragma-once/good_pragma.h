// Fixture: a leading comment block is fine; the first non-comment line
// must be #pragma once.
#pragma once

inline int fixture_value() { return 1; }
