// Fixture: monotonic timing and innocuous mentions the rule must NOT flag.
// Comments may discuss wall-clock time, system_clock, or time() freely.
#include <chrono>

// steady_clock is monotonic — durations only, never timestamps — and allowed.
double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  const auto dt = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(dt).count();
}

// `time` as part of a longer identifier is not the C time() call:
double start_time(double t) { return t; }
double event_time_of(double base) { return base + 1.0; }

// A justified waiver silences a real hit:
long waived() {
  return std::chrono::system_clock::now()  // lint-ok: wall-clock fixture demonstrating the waiver
      .time_since_epoch()
      .count();
}
