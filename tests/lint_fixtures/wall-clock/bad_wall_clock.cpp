// Fixture: wall-clock reads the rule must catch.
#include <chrono>
#include <ctime>
#include <sys/time.h>

long bad_system_clock() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_hrc() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long bad_time() { return time(nullptr); }

long bad_gettimeofday() {
  timeval tv{};
  gettimeofday(&tv, nullptr);
  return tv.tv_sec;
}

long bad_calendar() {
  time_t t = time(nullptr);
  return localtime(&t)->tm_hour;
}
