#pragma once
// Fixture: <ostream>/<iosfwd> are the right includes for headers that
// format output; mentioning <iostream> in a comment is fine.
#include <iosfwd>
#include <ostream>

inline void debug_print(std::ostream& os, int v) { os << v << '\n'; }
