#pragma once
// Fixture: <iostream> in a header drags the static ios_base initializer
// into every translation unit that includes it.
#include <iostream>

inline void debug_print(int v) { std::cout << v << '\n'; }
