// Fixture: parallelism through the exec pool is the sanctioned spelling.
#include "exec/thread_pool.h"

void fan_out(std::vector<double>& out) {
  esharing::exec::parallel_for(out.size(), 64,
                               [&](std::size_t b, std::size_t e, std::size_t) {
                                 for (std::size_t i = b; i < e; ++i) out[i] = 0;
                               });
}
