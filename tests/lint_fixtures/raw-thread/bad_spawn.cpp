// Fixture: raw thread spawning outside src/exec/ must be flagged.
#include <thread>
#include <vector>

void fan_out() {
  std::vector<std::thread> workers;
  workers.emplace_back([] {});
  std::jthread j([] {});
  for (auto& w : workers) w.join();
}
