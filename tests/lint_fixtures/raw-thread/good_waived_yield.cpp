// Fixture: <thread> for std::this_thread::yield is allowed with a waiver;
// std::this_thread usage itself is never a finding.
#include <thread>  // lint-ok: raw-thread yield-only spin wait, no spawning

void spin() { std::this_thread::yield(); }
