#include "data/binning.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/synthetic_city.h"
#include "geo/geohash.h"

namespace esharing::data {
namespace {

TEST(DemandMatrix, RejectsEmptyDimensions) {
  EXPECT_THROW(DemandMatrix(0, 5), std::invalid_argument);
  EXPECT_THROW(DemandMatrix(5, 0), std::invalid_argument);
}

TEST(DemandMatrix, AddAndAt) {
  DemandMatrix m(3, 4);
  m.add(1, 2);
  m.add(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(DemandMatrix, BoundsChecked) {
  DemandMatrix m(3, 4);
  EXPECT_THROW((void)m.at(3, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 4), std::out_of_range);
  EXPECT_THROW(m.add(3, 0), std::out_of_range);
  EXPECT_THROW((void)m.cell_series(3), std::out_of_range);
}

TEST(DemandMatrix, CellSeriesExtractsRow) {
  DemandMatrix m(2, 3);
  m.add(1, 0, 5.0);
  m.add(1, 2, 7.0);
  const auto s = m.cell_series(1);
  EXPECT_EQ(s, (std::vector<double>{5.0, 0.0, 7.0}));
}

TEST(DemandMatrix, TotalsAreConsistent) {
  DemandMatrix m(3, 2);
  m.add(0, 0, 1.0);
  m.add(1, 0, 2.0);
  m.add(2, 1, 4.0);
  EXPECT_EQ(m.total_per_hour(), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(m.total_per_cell(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(DemandMatrix, TopCellsOrderedByDemand) {
  DemandMatrix m(4, 1);
  m.add(0, 0, 2.0);
  m.add(1, 0, 9.0);
  m.add(2, 0, 5.0);
  const auto top = m.top_cells(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(m.top_cells(100).size(), 4u);  // clamped to cell count
}

class BinningFixture : public ::testing::Test {
 protected:
  BinningFixture() : city_(make_config(), 21), trips_(city_.generate_trips()) {}

  static CityConfig make_config() {
    CityConfig cfg;
    cfg.num_days = 2;
    cfg.trips_per_weekday = 200;
    cfg.trips_per_weekend_day = 150;
    cfg.num_bikes = 50;
    return cfg;
  }

  SyntheticCity city_;
  std::vector<TripRecord> trips_;
};

TEST_F(BinningFixture, BinTripsConservesTripCount) {
  const auto grid = city_.grid();
  const std::size_t n_hours = 48;
  const auto m = bin_trips(grid, city_.projection(), trips_, n_hours);
  double total = 0.0;
  for (double h : m.total_per_hour()) total += h;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(trips_.size()));
}

TEST_F(BinningFixture, BinTripsDropsOutOfHorizonTrips) {
  const auto grid = city_.grid();
  const auto m = bin_trips(grid, city_.projection(), trips_, /*n_hours=*/24);
  double total = 0.0;
  for (double h : m.total_per_hour()) total += h;
  EXPECT_LT(total, static_cast<double>(trips_.size()));
  EXPECT_GT(total, 0.0);
}

TEST_F(BinningFixture, DestinationsInWindowFiltersByTime) {
  const auto all = destinations_in_window(city_.projection(), trips_, 0,
                                          2 * kSecondsPerDay);
  EXPECT_EQ(all.size(), trips_.size());
  const auto first_day = destinations_in_window(city_.projection(), trips_, 0,
                                                kSecondsPerDay);
  EXPECT_LT(first_day.size(), all.size());
  EXPECT_GT(first_day.size(), 0u);
  const auto none = destinations_in_window(city_.projection(), trips_,
                                           100 * kSecondsPerDay,
                                           101 * kSecondsPerDay);
  EXPECT_TRUE(none.empty());
}

TEST_F(BinningFixture, DemandSitesAggregateArrivals) {
  const auto grid = city_.grid();
  const auto sites = demand_sites_in_window(grid, city_.projection(), trips_,
                                            0, 2 * kSecondsPerDay);
  ASSERT_FALSE(sites.empty());
  double total = 0.0;
  for (const auto& s : sites) {
    EXPECT_GT(s.arrivals, 0.0);
    EXPECT_TRUE(grid.box().inflated(1.0).contains(s.location));
    // Location is the centroid of the reported cell.
    EXPECT_EQ(grid.centroid_of(grid.cell_at(s.cell)), s.location);
    total += s.arrivals;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(trips_.size()));
}

TEST_F(BinningFixture, DemandSitesSortedByCellAndUnique) {
  const auto grid = city_.grid();
  const auto sites = demand_sites_in_window(grid, city_.projection(), trips_,
                                            0, 2 * kSecondsPerDay);
  for (std::size_t i = 1; i < sites.size(); ++i) {
    EXPECT_LT(sites[i - 1].cell, sites[i].cell);
  }
}

TEST_F(BinningFixture, DemandConcentratesNearPois) {
  // POI-anchored generation: the busiest cells should hold far more
  // arrivals than the median cell.
  const auto grid = city_.grid();
  const auto m = bin_trips(grid, city_.projection(), trips_, 48);
  const auto totals = m.total_per_cell();
  const auto top = m.top_cells(5);
  double top_sum = 0.0;
  for (std::size_t c : top) top_sum += totals[c];
  EXPECT_GT(top_sum, 0.1 * static_cast<double>(trips_.size()));
}

}  // namespace
}  // namespace esharing::data
