#include "solver/tsp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <numeric>
#include <stdexcept>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

std::vector<Point> unit_square() {
  return {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
}

TEST(TourLength, SquarePerimeter) {
  const auto sites = unit_square();
  EXPECT_DOUBLE_EQ(tour_length(sites, {0, 1, 2, 3}), 4.0);
  EXPECT_DOUBLE_EQ(tour_length(sites, {0, 1, 2, 3}, /*round_trip=*/false), 3.0);
}

TEST(TourLength, CrossingTourIsLonger) {
  const auto sites = unit_square();
  EXPECT_GT(tour_length(sites, {0, 2, 1, 3}), 4.0);
}

TEST(TourLength, ValidatesPermutation) {
  const auto sites = unit_square();
  EXPECT_THROW((void)tour_length(sites, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)tour_length(sites, {0, 1, 2, 2}), std::invalid_argument);
  EXPECT_THROW((void)tour_length(sites, {0, 1, 2, 7}), std::invalid_argument);
}

TEST(TourLength, SingleAndPairEdgeCases) {
  EXPECT_DOUBLE_EQ(tour_length({{5, 5}}, {0}), 0.0);
  EXPECT_DOUBLE_EQ(tour_length({{0, 0}, {3, 4}}, {0, 1}), 10.0);  // out + back
  EXPECT_DOUBLE_EQ(tour_length({{0, 0}, {3, 4}}, {0, 1}, false), 5.0);
}

TEST(NearestNeighbor, VisitsAllSitesOnce) {
  stats::Rng rng(1);
  const auto sites = stats::uniform_points(rng, {{0, 0}, {100, 100}}, 20);
  const auto order = tsp_nearest_neighbor(sites, 3);
  EXPECT_EQ(order.front(), 3u);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::size_t> expect(20);
  std::iota(expect.begin(), expect.end(), std::size_t{0});
  EXPECT_EQ(sorted, expect);
}

TEST(NearestNeighbor, ValidatesInputs) {
  EXPECT_THROW((void)tsp_nearest_neighbor({}), std::invalid_argument);
  EXPECT_THROW((void)tsp_nearest_neighbor({{0, 0}}, 1), std::invalid_argument);
}

TEST(TwoOpt, NeverIncreasesLength) {
  stats::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sites =
        stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 25);
    const auto initial = tsp_nearest_neighbor(sites);
    const auto improved = tsp_two_opt(sites, initial);
    EXPECT_LE(tour_length(sites, improved), tour_length(sites, initial) + 1e-9);
  }
}

TEST(TwoOpt, UncrossesTheSquare) {
  const auto sites = unit_square();
  const auto improved = tsp_two_opt(sites, {0, 2, 1, 3});
  EXPECT_DOUBLE_EQ(tour_length(sites, improved), 4.0);
}

TEST(HeldKarp, OptimalOnSquare) {
  const auto sites = unit_square();
  const auto order = tsp_held_karp(sites);
  EXPECT_DOUBLE_EQ(tour_length(sites, order), 4.0);
  EXPECT_EQ(order.front(), 0u);
}

TEST(HeldKarp, SingleSiteAndLimits) {
  EXPECT_EQ(tsp_held_karp({{1, 1}}), (std::vector<std::size_t>{0}));
  EXPECT_THROW((void)tsp_held_karp({}), std::invalid_argument);
  std::vector<Point> many(21, Point{0, 0});
  EXPECT_THROW((void)tsp_held_karp(many), std::invalid_argument);
}

/// Property: NN + 2-opt stays close to the exact optimum on small random
/// instances (2-opt on Euclidean instances is typically within a few
/// percent; we assert a generous 25% bound and exactness from below).
class TspHeuristicGap : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TspHeuristicGap, TwoOptWithinBoundOfHeldKarp) {
  stats::Rng rng(GetParam());
  const std::size_t n = 6 + rng.index(5);  // 6..10 sites
  const auto sites = stats::uniform_points(rng, {{0, 0}, {1000, 1000}},
                                           n);
  const double exact = tour_length(sites, tsp_held_karp(sites));
  const double heur =
      tour_length(sites, tsp_two_opt(sites, tsp_nearest_neighbor(sites)));
  EXPECT_GE(heur, exact - 1e-9);
  EXPECT_LE(heur, 1.25 * exact);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TspHeuristicGap,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(SolveTsp, DispatchesBySize) {
  // <= 12 sites: exact; verify the square case again via the dispatcher.
  EXPECT_DOUBLE_EQ(tour_length(unit_square(), solve_tsp(unit_square())), 4.0);
  stats::Rng rng(3);
  const auto big = stats::uniform_points(rng, {{0, 0}, {100, 100}}, 30);
  const auto order = solve_tsp(big);
  EXPECT_EQ(order.size(), big.size());
  EXPECT_THROW((void)solve_tsp({}), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
