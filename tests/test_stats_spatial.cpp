#include "stats/spatial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/summary.h"

namespace esharing::stats {
namespace {

using geo::BoundingBox;
using geo::Point;

TEST(Spatial, UniformPointsStayInBox) {
  Rng rng(1);
  const BoundingBox box{{-10, 5}, {10, 25}};
  for (const Point p : uniform_points(rng, box, 500)) {
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(Spatial, UniformPointsCoverAllQuadrants) {
  Rng rng(2);
  const BoundingBox box{{0, 0}, {100, 100}};
  int q[4] = {0, 0, 0, 0};
  for (const Point p : uniform_points(rng, box, 400)) {
    q[(p.x < 50 ? 0 : 1) + (p.y < 50 ? 0 : 2)]++;
  }
  for (int c : q) EXPECT_GT(c, 50);
}

TEST(Spatial, NormalPointsCenteredWithRequestedSpread) {
  Rng rng(3);
  const auto pts = normal_points(rng, {100, -50}, 20.0, 5000);
  std::vector<double> xs, ys;
  for (Point p : pts) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  EXPECT_NEAR(mean(xs), 100.0, 2.0);
  EXPECT_NEAR(mean(ys), -50.0, 2.0);
  EXPECT_NEAR(stddev(xs), 20.0, 1.5);
}

TEST(Spatial, NormalPointsRejectNegativeSigma) {
  Rng rng(4);
  EXPECT_THROW((void)normal_points(rng, {0, 0}, -1.0, 5), std::invalid_argument);
}

TEST(Spatial, RadialPoissonConcentratesMidRange) {
  // With lambda = 4 and scale = 100, mass should concentrate around radius
  // ~450 (Poisson mean 4 + 0.5 jitter), away from the center — the paper's
  // "requests concentrate in the mid-range" workload.
  Rng rng(5);
  const auto pts = radial_poisson_points(rng, {0, 0}, 4.0, 100.0, 4000);
  std::vector<double> radii;
  for (Point p : pts) radii.push_back(p.norm());
  EXPECT_NEAR(mean(radii), 450.0, 25.0);
  // Few points near the center.
  int near_center = 0;
  for (double r : radii) near_center += r < 100.0 ? 1 : 0;
  EXPECT_LT(near_center, static_cast<int>(0.12 * radii.size()));
}

TEST(Spatial, RadialPoissonRejectsBadScale) {
  Rng rng(6);
  EXPECT_THROW((void)radial_poisson_points(rng, {0, 0}, 1.0, 0.0, 5),
               std::invalid_argument);
}

TEST(Spatial, MixtureRespectsWeights) {
  Rng rng(7);
  const std::vector<GaussianCluster> clusters{
      {{0, 0}, 10.0, 1.0}, {{1000, 1000}, 10.0, 3.0}};
  int near_second = 0;
  const auto pts = mixture_points(rng, clusters, 2000);
  for (Point p : pts) near_second += p.x > 500.0 ? 1 : 0;
  EXPECT_NEAR(near_second / 2000.0, 0.75, 0.04);
}

TEST(Spatial, MixtureRejectsEmptyClusterList) {
  Rng rng(8);
  EXPECT_THROW((void)mixture_points(rng, {}, 5), std::invalid_argument);
}

TEST(Spatial, HashNoiseDeterministicPerCell) {
  const Point a{150.0, 250.0};
  const Point same_cell{199.0, 201.0};
  EXPECT_DOUBLE_EQ(hash_noise(a, 100.0, 42), hash_noise(same_cell, 100.0, 42));
  EXPECT_NE(hash_noise(a, 100.0, 42), hash_noise(a, 100.0, 43));
}

TEST(Spatial, HashNoiseUniformInUnitInterval) {
  double sum = 0.0;
  int n = 0;
  for (int cx = 0; cx < 60; ++cx) {
    for (int cy = 0; cy < 60; ++cy) {
      const double v = hash_noise({cx * 100.0 + 1, cy * 100.0 + 1}, 100.0, 7);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
      sum += v;
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Spatial, HashNoiseRejectsBadCellSize) {
  EXPECT_THROW((void)hash_noise({0, 0}, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::stats
