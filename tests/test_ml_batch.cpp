/// Batched forecasting runtime (ml/batch.h):
///
///   * MlBatchConfig — fail-fast validate() on every field.
///   * MlBatchGradientCheck — batched BPTT vs central finite differences
///     over (kind × depth), through pooled_loss/pooled_gradient.
///   * MlBatchEquivalence — the determinism tentpole: forecast_one
///     (batch = 1) bit-equals any batch row, batches are invariant to
///     batch composition, and fit + forecast are bit-identical at every
///     exec pool width.
///   * MlBatchQuant — the int8 weight path stays within the pinned RMSE
///     envelope of fp32 on a Table II-style rolling evaluation.
///   * MlBatchLearning — the shared-weight model actually learns the
///     common diurnal shape across cells.

#include "ml/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"
#include "stats/rng.h"

namespace esharing::ml::batch {
namespace {

/// Diurnal-style cell series: shared period, per-cell phase and level.
Series cell_series(std::size_t n, double period, double phase, double amp,
                   double offset) {
  Series s;
  s.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    s.push_back(offset +
                amp * std::sin(2.0 * std::numbers::pi *
                                   (static_cast<double>(t) + phase) / period));
  }
  return s;
}

std::vector<Series> city_fixture(std::size_t cells, std::size_t n) {
  std::vector<Series> out;
  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    const double phase = static_cast<double>(c) * 1.7;
    const double amp = 4.0 + static_cast<double>(c % 5);
    const double offset = 10.0 + 3.0 * static_cast<double>(c % 7);
    out.push_back(cell_series(n, 24.0, phase, amp, offset));
  }
  return out;
}

BatchRnnConfig tiny_config(RnnKind kind = RnnKind::kLstm) {
  BatchRnnConfig cfg;
  cfg.kind = kind;
  cfg.layers = 1;
  cfg.hidden = 6;
  cfg.lookback = 4;
  cfg.epochs = 8;
  cfg.seed = 3;
  return cfg;
}

/// RAII width override so a failing assertion cannot leak a wide pool
/// into later tests.
struct ScopedThreads {
  std::size_t original;
  explicit ScopedThreads(std::size_t width) : original(exec::global_threads()) {
    exec::set_global_threads(width);
  }
  ~ScopedThreads() { exec::set_global_threads(original); }
};

// --- MlBatchConfig ----------------------------------------------------------

TEST(MlBatchConfig, ValidateRejectsEveryBadField) {
  const auto expect_rejects = [](auto mutate) {
    BatchRnnConfig bad = tiny_config();
    mutate(bad);
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    EXPECT_THROW(BatchRnn{bad}, std::invalid_argument);
  };
  expect_rejects([](BatchRnnConfig& c) { c.layers = 0; });
  expect_rejects([](BatchRnnConfig& c) { c.hidden = -1; });
  expect_rejects([](BatchRnnConfig& c) { c.lookback = 0; });
  expect_rejects([](BatchRnnConfig& c) { c.epochs = 0; });
  expect_rejects([](BatchRnnConfig& c) { c.learning_rate = 0.0; });
  expect_rejects([](BatchRnnConfig& c) { c.max_fit_windows = 0; });
  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(MlBatchConfig, ValidationErrorsNameTheField) {
  BatchRnnConfig bad = tiny_config();
  bad.hidden = 0;
  try {
    bad.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("hidden"), std::string::npos);
  }
}

TEST(MlBatchConfig, LifecycleGuards) {
  BatchRnn model(tiny_config());
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.forecast({{1, 2, 3, 4}}, 1), std::logic_error);
  EXPECT_THROW(model.fit({}), std::invalid_argument);
  EXPECT_THROW(model.fit({{1.0, 2.0}}), std::invalid_argument);
  model.fit(city_fixture(3, 60));
  EXPECT_TRUE(model.fitted());
  EXPECT_THROW((void)model.forecast({{1.0, 2.0}}, 1), std::invalid_argument);
  EXPECT_TRUE(model.forecast({}, 4).empty());
}

TEST(MlBatchConfig, ParameterCountMatchesScalarLayout) {
  BatchRnnConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.hidden = 5;
  const std::size_t h = 5;
  // Same layout as the per-cell engines: per layer G*h*in + G*h*h + G*h,
  // then h + 1 for the output head.
  cfg.kind = RnnKind::kLstm;
  EXPECT_EQ(BatchRnn(cfg).param_count(),
            (4 * h * 1 + 4 * h * h + 4 * h) + (4 * h * h + 4 * h * h + 4 * h) +
                h + 1);
  cfg.kind = RnnKind::kGru;
  EXPECT_EQ(BatchRnn(cfg).param_count(),
            (3 * h * 1 + 3 * h * h + 3 * h) + (3 * h * h + 3 * h * h + 3 * h) +
                h + 1);
}

TEST(MlBatchConfig, NameEncodesArchitecture) {
  BatchRnnConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.hidden = 12;
  cfg.lookback = 12;
  EXPECT_EQ(BatchRnn(cfg).name(), "BatchLSTM(layers=2,hidden=12,back=12)");
  cfg.kind = RnnKind::kGru;
  EXPECT_EQ(BatchRnn(cfg).name(), "BatchGRU(layers=2,hidden=12,back=12)");
}

// --- MlBatchGradientCheck ---------------------------------------------------

/// Batched analytic BPTT vs central finite differences. Parameters are
/// fp32, so the probe step and tolerances are coarser than the scalar
/// engines' double-precision checks, but the double-accumulated gradient
/// must still track the numeric one to a few percent.
class MlBatchGradientCheck
    : public ::testing::TestWithParam<std::pair<RnnKind, int>> {};

TEST_P(MlBatchGradientCheck, AnalyticMatchesNumeric) {
  const auto [kind, layers] = GetParam();
  BatchRnnConfig cfg;
  cfg.kind = kind;
  cfg.layers = layers;
  cfg.hidden = 4;
  cfg.lookback = 5;
  cfg.seed = 11 + static_cast<std::uint64_t>(layers);
  BatchRnn model(cfg);

  stats::Rng rng(99);
  std::vector<Window> windows(6);
  for (Window& w : windows) {
    for (std::size_t i = 0; i < cfg.lookback; ++i) {
      w.input.push_back(rng.uniform(-1.0, 1.0));
    }
    w.target = rng.uniform(-1.0, 1.0);
  }

  const std::vector<double> analytic = model.pooled_gradient(windows);
  std::vector<float>& params = model.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  const float eps = 5e-3f;
  for (std::size_t k = 0; k < params.size(); k += 5) {
    const float saved = params[k];
    params[k] = saved + eps;
    const double up = model.pooled_loss(windows);
    params[k] = saved - eps;
    const double down = model.pooled_loss(windows);
    params[k] = saved;
    const double numeric = (up - down) / (2.0 * static_cast<double>(eps));
    const double tol = 3e-3 + 0.03 * std::abs(analytic[k]);
    EXPECT_NEAR(analytic[k], numeric, tol) << "parameter index " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDepths, MlBatchGradientCheck,
    ::testing::Values(std::pair{RnnKind::kLstm, 1}, std::pair{RnnKind::kLstm, 2},
                      std::pair{RnnKind::kGru, 1}, std::pair{RnnKind::kGru, 2}));

// --- MlBatchEquivalence -----------------------------------------------------

class MlBatchEquivalence : public ::testing::TestWithParam<RnnKind> {};

TEST_P(MlBatchEquivalence, ForecastOneBitEqualsBatchRows) {
  BatchRnnConfig cfg = tiny_config(GetParam());
  cfg.hidden = 10;
  cfg.lookback = 8;
  const auto cells = city_fixture(7, 80);
  BatchRnn model(cfg);
  model.fit(cells);

  const auto batched = model.forecast(cells, 6);
  ASSERT_EQ(batched.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Series solo = model.forecast_one(cells[c], 6);
    ASSERT_EQ(batched[c].size(), 6u);
    for (std::size_t t = 0; t < 6; ++t) {
      // Bitwise: a cell's forecast must not depend on its batch.
      EXPECT_EQ(batched[c][t], solo[t]) << "cell " << c << " step " << t;
    }
  }
}

TEST_P(MlBatchEquivalence, BatchCompositionDoesNotChangeRows) {
  BatchRnnConfig cfg = tiny_config(GetParam());
  const auto cells = city_fixture(6, 60);
  BatchRnn model(cfg);
  model.fit(cells);

  const auto all = model.forecast(cells, 3);
  const std::vector<Series> subset{cells[4], cells[1]};
  const auto pair = model.forecast(subset, 3);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(pair[0][t], all[4][t]);
    EXPECT_EQ(pair[1][t], all[1][t]);
  }
}

TEST_P(MlBatchEquivalence, FitAndForecastBitIdenticalAcrossPoolWidths) {
  BatchRnnConfig cfg = tiny_config(GetParam());
  cfg.hidden = 12;  // push the gate GEMMs over the serial cutoff
  cfg.lookback = 8;
  cfg.epochs = 4;
  const auto cells = city_fixture(9, 72);

  std::vector<float> base_params;
  std::vector<Series> base_forecast;
  std::vector<std::size_t> widths{1, 2, 4, exec::global_threads()};
  for (const std::size_t width : widths) {
    ScopedThreads scoped(width);
    BatchRnn model(cfg);
    model.fit(cells);
    const auto fc = model.forecast(cells, 4);
    if (base_params.empty()) {
      base_params = model.parameters();
      base_forecast = fc;
      continue;
    }
    ASSERT_EQ(model.parameters().size(), base_params.size());
    for (std::size_t k = 0; k < base_params.size(); ++k) {
      ASSERT_EQ(model.parameters()[k], base_params[k])
          << "width " << width << " parameter " << k;
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t t = 0; t < 4; ++t) {
        ASSERT_EQ(fc[c][t], base_forecast[c][t])
            << "width " << width << " cell " << c << " step " << t;
      }
    }
  }
}

TEST_P(MlBatchEquivalence, ExplicitKernelWidthsAgree) {
  BatchRnnConfig cfg = tiny_config(GetParam());
  const auto cells = city_fixture(5, 60);
  BatchRnn model(cfg);
  model.fit(cells);
  const auto base = model.forecast(cells, 3, /*width=*/1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{3}}) {
    const auto other = model.forecast(cells, 3, width);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t t = 0; t < 3; ++t) {
        EXPECT_EQ(other[c][t], base[c][t]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, MlBatchEquivalence,
                         ::testing::Values(RnnKind::kLstm, RnnKind::kGru));

// --- MlBatchQuant -----------------------------------------------------------

class MlBatchQuant : public ::testing::TestWithParam<RnnKind> {};

TEST_P(MlBatchQuant, Int8StaysWithinRmseEnvelopeOfFp32) {
  // Table II-style rolling one-step evaluation: train on the head of the
  // series, predict each test hour under teacher forcing.
  BatchRnnConfig cfg = tiny_config(GetParam());
  cfg.hidden = 12;
  cfg.lookback = 12;
  cfg.epochs = 40;
  const auto cells = city_fixture(6, 200);
  BatchRnn model(cfg);
  model.fit(cells);

  const Series& probe = cells[2];
  const Series train(probe.begin(), probe.begin() + 160);
  const Series test(probe.begin() + 160, probe.end());
  const double fp32 = batch_rolling_rmse(model, train, test, Precision::kFp32);
  const double int8 = batch_rolling_rmse(model, train, test, Precision::kInt8);

  // The fp32 model must genuinely track the signal (amplitude 6), and the
  // pinned envelope for the quantized path: within 25% relative plus a
  // small absolute allowance.
  EXPECT_LT(fp32, 2.5);
  EXPECT_LT(int8, fp32 * 1.25 + 0.25);
}

TEST_P(MlBatchQuant, RefreshQuantizationIsIdempotent) {
  BatchRnnConfig cfg = tiny_config(GetParam());
  cfg.precision = Precision::kInt8;
  const auto cells = city_fixture(4, 60);
  BatchRnn model(cfg);
  model.fit(cells);
  const auto before = model.forecast(cells, 3);
  model.refresh_quantization();
  const auto after = model.forecast(cells, 3);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t t = 0; t < 3; ++t) EXPECT_EQ(before[c][t], after[c][t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, MlBatchQuant,
                         ::testing::Values(RnnKind::kLstm, RnnKind::kGru));

// --- MlBatchLearning --------------------------------------------------------

TEST(MlBatchLearning, TrainingLossDecreases) {
  BatchRnnConfig cfg = tiny_config();
  cfg.hidden = 12;
  cfg.lookback = 8;
  cfg.epochs = 25;
  BatchRnn model(cfg);
  model.fit(city_fixture(5, 120));
  const auto& losses = model.loss_history();
  ASSERT_EQ(losses.size(), 25u);
  EXPECT_LT(losses.back(), 0.5 * losses.front());
}

TEST(MlBatchLearning, SharedWeightsTrackEachCellsLevel) {
  // Cells share the diurnal shape but differ in phase and level; the
  // shared-weight forecast must come back near each cell's own next value.
  BatchRnnConfig cfg = tiny_config();
  cfg.hidden = 16;
  cfg.lookback = 12;
  cfg.epochs = 50;
  const auto cells = city_fixture(6, 200);
  std::vector<Series> train(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    train[c] = Series(cells[c].begin(), cells[c].end() - 1);
  }
  BatchRnn model(cfg);
  model.fit(train);
  const auto fc = model.forecast(train, 1);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    EXPECT_NEAR(fc[c][0], cells[c].back(), 2.5) << "cell " << c;
  }
}

TEST(MlBatchLearning, FitSubsamplesPastWindowCapDeterministically) {
  BatchRnnConfig cfg = tiny_config();
  cfg.max_fit_windows = 32;  // far fewer than the pooled window count
  const auto cells = city_fixture(4, 80);
  BatchRnn a(cfg), b(cfg);
  a.fit(cells);
  b.fit(cells);
  ASSERT_EQ(a.parameters().size(), b.parameters().size());
  for (std::size_t k = 0; k < a.parameters().size(); ++k) {
    ASSERT_EQ(a.parameters()[k], b.parameters()[k]);
  }
}

TEST(MlBatchLearning, RollingRmseValidatesInputs) {
  BatchRnn model(tiny_config());
  model.fit(city_fixture(2, 60));
  const Series train = cell_series(40, 24.0, 0.0, 4.0, 10.0);
  EXPECT_THROW((void)batch_rolling_rmse(model, train, {}, Precision::kFp32),
               std::invalid_argument);
  EXPECT_THROW(
      (void)batch_rolling_rmse(model, {1.0, 2.0}, train, Precision::kFp32),
      std::invalid_argument);
}

}  // namespace
}  // namespace esharing::ml::batch
