#include "core/incentive.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::core {
namespace {

using geo::Point;

/// Three stations on a line, 1000 m apart; station 0 and 1 hold low bikes.
/// Station 1 holds the bigger pile, so uphill moves flow 0 -> 1.
std::vector<EnergyStation> line_stations() {
  return {{{0, 0}, {10}}, {{1000, 0}, {20, 21}}, {{2000, 0}, {}}};
}

IncentiveConfig config(double alpha = 0.5) {
  IncentiveConfig cfg;
  cfg.alpha = alpha;
  cfg.mileage_slack_m = 150.0;
  return cfg;
}

IncentiveMechanism::CanRideFn always_rideable() {
  return [](std::size_t, double) { return true; };
}

TEST(Incentive, ValidatesConstruction) {
  EXPECT_THROW(IncentiveMechanism({}, config()), std::invalid_argument);
  EXPECT_THROW(IncentiveMechanism(line_stations(), config(1.5)),
               std::invalid_argument);
  IncentiveConfig bad = config();
  bad.mileage_slack_m = -1.0;
  EXPECT_THROW(IncentiveMechanism(line_stations(), bad), std::invalid_argument);
}

TEST(Incentive, StationsNeedingServiceAndPositions) {
  IncentiveMechanism mech(line_stations(), config());
  EXPECT_EQ(mech.stations_needing_service(), (std::vector<std::size_t>{0, 1}));
  // Both are in the TSP sequence with distinct 1-based positions.
  const auto p0 = mech.service_position(0);
  const auto p1 = mech.service_position(1);
  EXPECT_NE(p0, 0u);
  EXPECT_NE(p1, 0u);
  EXPECT_NE(p0, p1);
  EXPECT_EQ(mech.service_position(2), 0u);
  EXPECT_THROW((void)mech.service_position(9), std::out_of_range);
}

TEST(Incentive, AcceptedOfferRelocatesBike) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  // User picks up at station 0 heading to the parking at station 1: the
  // aggregation target at the same mileage is exactly station 1.
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(0, {1000, 0}, eager, always_rideable());
  ASSERT_TRUE(offer.made);
  EXPECT_TRUE(offer.accepted);
  EXPECT_EQ(offer.from_station, 0u);
  EXPECT_EQ(offer.to_station, 1u);
  EXPECT_EQ(offer.bike, 10u);
  EXPECT_DOUBLE_EQ(offer.ride_m, 1000.0);
  EXPECT_DOUBLE_EQ(offer.extra_walk_m, 0.0);
  EXPECT_TRUE(mech.stations()[0].low_bikes.empty());
  EXPECT_EQ(mech.stations()[1].low_bikes.size(), 3u);
  EXPECT_EQ(mech.relocations(), 1u);
  EXPECT_GT(mech.total_incentives_paid(), 0.0);
}

TEST(Incentive, OfferValueFollowsUniformFormula) {
  IncentiveMechanism mech(line_stations(), config(0.4));
  const std::size_t t = mech.service_position(0);
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(0, {1000, 0}, eager, always_rideable());
  ASSERT_TRUE(offer.made);
  EXPECT_DOUBLE_EQ(offer.incentive,
                   energy::uniform_offer(0.4, t, 1, config().costs));
}

TEST(Incentive, DeclinedWhenWalkTooFar) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  // Destination near station 0 itself: relocating to station 1 forces a
  // ~1000 m walk back, above the user's 300 m threshold. But station
  // selection needs |d(i,k) - d(i,j)| <= slack, so use dest at 1000 m with
  // a strict user.
  const UserBehavior strict{/*max_walk_m=*/10.0, /*min_reward=*/0.0};
  const auto offer = mech.handle_pickup(0, {1000, 100}, strict, always_rideable());
  ASSERT_TRUE(offer.made);
  EXPECT_FALSE(offer.accepted);
  EXPECT_EQ(mech.stations()[0].low_bikes.size(), 1u);
  EXPECT_DOUBLE_EQ(mech.total_incentives_paid(), 0.0);
}

TEST(Incentive, DeclinedWhenRewardTooSmall) {
  IncentiveMechanism mech(line_stations(), config(0.1));
  const UserBehavior greedy{1e9, /*min_reward=*/1e6};
  const auto offer = mech.handle_pickup(0, {1000, 0}, greedy, always_rideable());
  ASSERT_TRUE(offer.made);
  EXPECT_FALSE(offer.accepted);
}

TEST(Incentive, NoOfferWithoutMileageMatchedNeighbor) {
  // Destination at 300 m: no other station lies within slack of that ride
  // distance (stations are 1000 and 2000 m away).
  IncentiveMechanism mech(line_stations(), config(1.0));
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(0, {300, 0}, eager, always_rideable());
  EXPECT_FALSE(offer.made);
}

TEST(Incentive, NoOfferFromStationWithoutLowBikes) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(2, {1000, 0}, eager, always_rideable());
  EXPECT_FALSE(offer.made);
}

TEST(Incentive, AlphaZeroDisablesOffers) {
  IncentiveMechanism mech(line_stations(), config(0.0));
  const UserBehavior eager{1e9, 0.0};
  EXPECT_FALSE(mech.handle_pickup(0, {1000, 0}, eager, always_rideable()).made);
}

TEST(Incentive, BatteryFeasibilityBlocksOffer) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(
      0, {1000, 0}, eager, [](std::size_t, double) { return false; });
  EXPECT_FALSE(offer.made);
}

TEST(Incentive, BatteryFeasibilitySelectsRideableBike) {
  // Source and target piles of equal size so the uphill rule permits the
  // move; only bike 21 has enough charge for the 1000 m relocation.
  std::vector<EnergyStation> stations{{{0, 0}, {20, 21}},
                                      {{1000, 0}, {1, 2}}};
  IncentiveMechanism mech(stations, config(1.0));
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(
      0, {1000, 0}, eager,
      [](std::size_t bike, double) { return bike == 21; });
  ASSERT_TRUE(offer.accepted);
  EXPECT_EQ(offer.bike, 21u);
}

TEST(Incentive, EmptyingStationDropsItFromServiceSet) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  const UserBehavior eager{1e9, 0.0};
  // Station 0 has one bike; relocating it to station 1 empties station 0.
  const auto offer = mech.handle_pickup(0, {1000, 0}, eager, always_rideable());
  ASSERT_TRUE(offer.accepted);
  EXPECT_EQ(mech.stations_needing_service(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(mech.service_position(0), 0u);
  EXPECT_EQ(mech.service_position(1), 1u);
}

TEST(Incentive, UphillRuleBlocksDownhillMoves) {
  // Picking up at the big pile: the only mileage-matched neighbours hold
  // smaller piles, so no offer is made (relocating away from an
  // aggregation point would undo the mechanism's work).
  IncentiveMechanism mech(line_stations(), config(1.0));
  const UserBehavior eager{1e9, 0.0};
  EXPECT_FALSE(mech.handle_pickup(1, {0, 0}, eager, always_rideable()).made);
  EXPECT_FALSE(mech.handle_pickup(1, {2000, 0}, eager, always_rideable()).made);
}

TEST(Incentive, PaymentsStayWithinEq12Budget) {
  // Drain station 0 completely; total incentives must stay under the
  // Delta_i = q + t*d budget for its (initial) sequence position.
  IncentiveMechanism mech(line_stations(), config(1.0));
  const std::size_t t0 = mech.service_position(0);
  const double budget = energy::max_station_saving(t0, config().costs);
  const UserBehavior eager{1e9, 0.0};
  while (!mech.stations()[0].low_bikes.empty()) {
    const auto offer = mech.handle_pickup(0, {1000, 0}, eager, always_rideable());
    ASSERT_TRUE(offer.accepted);
  }
  // Position can only shrink as stations empty, so paying by the live
  // position never exceeds the initial budget.
  EXPECT_LE(mech.total_incentives_paid(), budget + 1e-9);
}

TEST(Incentive, PrefersLargerAggregationPile) {
  // Two candidate targets at the same ride distance; the one with more low
  // bikes must win.
  std::vector<EnergyStation> stations{
      {{0, 0}, {1, 2}},            // pickup
      {{1000, 0}, {3}},            // small pile
      {{-1000, 0}, {4, 5, 6}}};    // big pile, same 1000 m ride
  IncentiveMechanism mech(stations, config(1.0));
  const UserBehavior eager{1e9, 0.0};
  const auto offer = mech.handle_pickup(0, {1000, 0}, eager, always_rideable());
  ASSERT_TRUE(offer.made);
  EXPECT_EQ(offer.to_station, 2u);
}

TEST(Incentive, HandlePickupValidatesStation) {
  IncentiveMechanism mech(line_stations(), config(1.0));
  EXPECT_THROW(
      (void)mech.handle_pickup(7, {0, 0}, UserBehavior{}, always_rideable()),
      std::out_of_range);
}

}  // namespace
}  // namespace esharing::core
