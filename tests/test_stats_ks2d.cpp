#include "stats/ks2d.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::stats {
namespace {

using geo::BoundingBox;
using geo::Point;

std::vector<Point> uniform_sample(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  return uniform_points(rng, BoundingBox{{0, 0}, {1000, 1000}}, n);
}

TEST(Ks2d, IdenticalSamplesHaveZeroStatistic) {
  const auto a = uniform_sample(1, 60);
  EXPECT_DOUBLE_EQ(peacock_statistic(a, a), 0.0);
  EXPECT_DOUBLE_EQ(fasano_franceschini_statistic(a, a), 0.0);
}

TEST(Ks2d, DisjointSamplesHaveStatisticNearOne) {
  Rng rng(2);
  const auto a = normal_points(rng, {0, 0}, 1.0, 50);
  const auto b = normal_points(rng, {1e6, 1e6}, 1.0, 50);
  EXPECT_GT(peacock_statistic(a, b), 0.99);
}

TEST(Ks2d, StatisticIsSymmetric) {
  const auto a = uniform_sample(3, 40);
  const auto b = uniform_sample(4, 50);
  EXPECT_DOUBLE_EQ(peacock_statistic(a, b), peacock_statistic(b, a));
  EXPECT_DOUBLE_EQ(fasano_franceschini_statistic(a, b),
                   fasano_franceschini_statistic(b, a));
}

TEST(Ks2d, StatisticWithinUnitInterval) {
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto a = uniform_sample(10 + s, 30);
    const auto b = uniform_sample(20 + s, 35);
    const double d = peacock_statistic(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Ks2d, SameDistributionGivesSmallD) {
  const auto a = uniform_sample(5, 150);
  const auto b = uniform_sample(6, 150);
  EXPECT_LT(peacock_statistic(a, b), 0.25);
}

TEST(Ks2d, DifferentDistributionsGiveLargerD) {
  Rng rng(7);
  const auto uniform = uniform_sample(8, 120);
  const auto clustered = normal_points(rng, {500, 500}, 50.0, 120);
  const double d_diff = peacock_statistic(uniform, clustered);
  const double d_same = peacock_statistic(uniform, uniform_sample(9, 120));
  EXPECT_GT(d_diff, 2.0 * d_same);
}

TEST(Ks2d, FasanoFranceschiniTracksPeacock) {
  // The FF statistic uses a subset of Peacock's origins, so it can only be
  // <= Peacock's D, and in practice stays close.
  for (std::uint64_t s = 0; s < 8; ++s) {
    Rng rng(100 + s);
    const auto a = uniform_sample(200 + s, 60);
    const auto b = normal_points(rng, {500, 500}, 220.0, 60);
    const double dp = peacock_statistic(a, b);
    const double dff = fasano_franceschini_statistic(a, b);
    EXPECT_LE(dff, dp + 1e-12);
    EXPECT_GT(dff, dp * 0.5);
  }
}

TEST(Ks2d, ThrowsOnEmptySamples) {
  const auto a = uniform_sample(10, 5);
  EXPECT_THROW((void)peacock_statistic(a, {}), std::invalid_argument);
  EXPECT_THROW((void)peacock_statistic({}, a), std::invalid_argument);
  EXPECT_THROW((void)fasano_franceschini_statistic({}, a), std::invalid_argument);
  EXPECT_THROW((void)ks2d_test({}, a), std::invalid_argument);
}

TEST(Ks2d, SimilarityPercentFormula) {
  EXPECT_DOUBLE_EQ(ks_similarity_percent(0.0), 100.0);
  EXPECT_DOUBLE_EQ(ks_similarity_percent(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ks_similarity_percent(0.25), 75.0);
}

TEST(Ks2d, TestUsesPeacockBelowLimitAndFfAbove) {
  const auto a = uniform_sample(11, 30);
  const auto b = uniform_sample(12, 30);
  const auto peacock = ks2d_test(a, b, /*peacock_limit=*/100);
  const auto ff = ks2d_test(a, b, /*peacock_limit=*/10);
  EXPECT_DOUBLE_EQ(peacock.d, peacock_statistic(a, b));
  EXPECT_DOUBLE_EQ(ff.d, fasano_franceschini_statistic(a, b));
}

TEST(Ks2d, PValueHighForSameDistribution) {
  const auto a = uniform_sample(13, 120);
  const auto b = uniform_sample(14, 120);
  EXPECT_GT(ks2d_test(a, b).p_value, 0.05);
}

TEST(Ks2d, PValueLowForDifferentDistributions) {
  Rng rng(15);
  const auto a = uniform_sample(16, 120);
  const auto b = normal_points(rng, {200, 800}, 40.0, 120);
  EXPECT_LT(ks2d_test(a, b).p_value, 0.01);
}

TEST(Ks2d, TailProbabilityProperties) {
  EXPECT_DOUBLE_EQ(ks_tail_probability(0.0), 1.0);
  EXPECT_LT(ks_tail_probability(2.0), 0.01);
  // Monotone decreasing.
  double prev = 1.0;
  for (double lambda = 0.1; lambda < 3.0; lambda += 0.1) {
    const double q = ks_tail_probability(lambda);
    EXPECT_LE(q, prev + 1e-12);
    EXPECT_GE(q, 0.0);
    prev = q;
  }
}

TEST(Ks2d, WeekdayWeekendStyleShiftIsDetected) {
  // Two POI mixtures sharing one cluster but differing in the other —
  // the Table IV situation (weekday vs weekend demand).
  Rng rng(17);
  const std::vector<GaussianCluster> weekday{
      {{500, 500}, 80.0, 3.0}, {{2500, 2500}, 80.0, 1.0}};
  const std::vector<GaussianCluster> weekend{
      {{500, 500}, 80.0, 1.0}, {{2500, 2500}, 80.0, 3.0}};
  const auto w1 = mixture_points(rng, weekday, 150);
  const auto w2 = mixture_points(rng, weekday, 150);
  const auto e1 = mixture_points(rng, weekend, 150);
  const double sim_within = ks2d_test(w1, w2).similarity;
  const double sim_across = ks2d_test(w1, e1).similarity;
  EXPECT_GT(sim_within, sim_across + 10.0);
}

}  // namespace
}  // namespace esharing::stats
