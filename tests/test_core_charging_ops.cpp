#include "core/charging_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace esharing::core {
namespace {

using geo::Point;

energy::ChargingCostParams paper_costs() {
  return {.service_cost_q = 5.0, .delay_cost_d = 5.0, .energy_cost_b = 2.0};
}

OperatorConfig relaxed_operator() {
  OperatorConfig op;
  op.work_seconds = 1e9;  // effectively unlimited shift
  return op;
}

std::vector<EnergyStation> three_stations() {
  return {{{100, 0}, {1, 2}}, {{200, 0}, {3}}, {{300, 0}, {4, 5, 6}}};
}

TEST(ChargingRound, ValidatesOperatorConfig) {
  OperatorConfig bad;
  bad.speed_mps = 0.0;
  EXPECT_THROW(
      (void)run_charging_round(three_stations(), paper_costs(), bad),
      std::invalid_argument);
  bad = OperatorConfig{};
  bad.work_seconds = 0.0;
  EXPECT_THROW(
      (void)run_charging_round(three_stations(), paper_costs(), bad),
      std::invalid_argument);
}

TEST(ChargingRound, EmptyWorkloadIsFree) {
  const std::vector<EnergyStation> idle{{{0, 0}, {}}, {{100, 0}, {}}};
  const auto r = run_charging_round(idle, paper_costs(), relaxed_operator());
  EXPECT_EQ(r.stations_total, 0u);
  EXPECT_EQ(r.bikes_total, 0u);
  EXPECT_DOUBLE_EQ(r.total_cost(), 0.0);
  EXPECT_DOUBLE_EQ(r.pct_charged(), 100.0);
}

TEST(ChargingRound, UnlimitedShiftServesEverything) {
  const auto r =
      run_charging_round(three_stations(), paper_costs(), relaxed_operator());
  EXPECT_EQ(r.stations_visited, 3u);
  EXPECT_EQ(r.bikes_charged, 6u);
  EXPECT_DOUBLE_EQ(r.pct_charged(), 100.0);
  // Eq. 10 with n=3, l=6: 3q + 6b + (0+1+2)*d = 15 + 12 + 15 = 42.
  EXPECT_DOUBLE_EQ(r.service_cost, 15.0);
  EXPECT_DOUBLE_EQ(r.energy_cost, 12.0);
  EXPECT_DOUBLE_EQ(r.delay_cost, 15.0);
  EXPECT_DOUBLE_EQ(r.total_cost(),
                   energy::total_charging_cost(3, 6, paper_costs()));
}

TEST(ChargingRound, RouteOnlyContainsStationsNeedingService) {
  std::vector<EnergyStation> stations = three_stations();
  stations.push_back({{1000, 1000}, {}});
  const auto r = run_charging_round(stations, paper_costs(), relaxed_operator());
  EXPECT_EQ(r.route.size(), 3u);
  for (std::size_t s : r.route) EXPECT_LT(s, 3u);
}

TEST(ChargingRound, ShortShiftLimitsCoverage) {
  OperatorConfig op;
  op.speed_mps = 5.0;
  op.stop_overhead_s = 600.0;
  op.charge_time_s = 1800.0;
  // One stop costs >= 2400 s + travel; a 3000 s shift fits exactly one.
  op.work_seconds = 3000.0;
  const auto r = run_charging_round(three_stations(), paper_costs(), op);
  EXPECT_EQ(r.stations_visited, 1u);
  EXPECT_LT(r.pct_charged(), 100.0);
  EXPECT_GT(r.pct_charged(), 0.0);
}

TEST(ChargingRound, ZeroShiftCoverageIsZero) {
  OperatorConfig op;
  op.work_seconds = 1.0;  // can't even reach the first station
  const auto r = run_charging_round(three_stations(), paper_costs(), op);
  EXPECT_EQ(r.stations_visited, 0u);
  EXPECT_DOUBLE_EQ(r.pct_charged(), 0.0);
}

TEST(ChargingRound, MovingDistanceIsRouteLength) {
  // Depot at origin, stations on a line: the optimal open route is
  // depot -> 100 -> 200 -> 300, i.e. 300 m.
  const auto r =
      run_charging_round(three_stations(), paper_costs(), relaxed_operator());
  EXPECT_NEAR(r.moving_distance_m, 300.0, 1e-9);
}

TEST(ChargingRound, AggregationReducesCost) {
  // Same bikes concentrated in one station vs spread across three: the
  // aggregated layout must cost less (Eq. 11's point).
  std::vector<EnergyStation> aggregated{
      {{100, 0}, {1, 2, 3, 4, 5, 6}}, {{200, 0}, {}}, {{300, 0}, {}}};
  const auto spread =
      run_charging_round(three_stations(), paper_costs(), relaxed_operator());
  const auto agg =
      run_charging_round(aggregated, paper_costs(), relaxed_operator());
  EXPECT_LT(agg.total_cost(), spread.total_cost());
  EXPECT_DOUBLE_EQ(agg.energy_cost, spread.energy_cost);  // same bikes
  EXPECT_LT(agg.moving_distance_m, spread.moving_distance_m);
}

TEST(MultiOperatorRound, OneOperatorMatchesSingleRound) {
  const auto single =
      run_charging_round(three_stations(), paper_costs(), relaxed_operator());
  const auto multi = run_charging_round_multi(three_stations(), paper_costs(),
                                              relaxed_operator(), 1);
  EXPECT_DOUBLE_EQ(single.total_cost(), multi.total_cost());
  EXPECT_EQ(single.route, multi.route);
}

TEST(MultiOperatorRound, ParallelismCutsDelayAndRaisesCoverage) {
  // A ring of 12 single-bike piles; a short shift covers few with one
  // operator, more with three — and the quadratic delay shrinks.
  std::vector<EnergyStation> ring;
  for (int s = 0; s < 12; ++s) {
    const double a = s * std::numbers::pi / 6.0;
    ring.push_back({{1000 + 900 * std::cos(a), 1000 + 900 * std::sin(a)},
                    {static_cast<std::size_t>(s)}});
  }
  OperatorConfig op;
  op.depot = {1000, 1000};
  op.stop_overhead_s = 300.0;
  op.charge_time_s = 1200.0;
  op.work_seconds = 2.0 * 3600.0;
  const auto one = run_charging_round_multi(ring, paper_costs(), op, 1);
  const auto three = run_charging_round_multi(ring, paper_costs(), op, 3);
  EXPECT_GT(three.bikes_charged, one.bikes_charged);
  // With everything served, compare full-job delay: restart per operator.
  OperatorConfig longshift = op;
  longshift.work_seconds = 1e9;
  const auto full1 = run_charging_round_multi(ring, paper_costs(), longshift, 1);
  const auto full3 = run_charging_round_multi(ring, paper_costs(), longshift, 3);
  EXPECT_EQ(full3.bikes_charged, full1.bikes_charged);
  EXPECT_LT(full3.delay_cost, 0.5 * full1.delay_cost);
  EXPECT_DOUBLE_EQ(full3.energy_cost, full1.energy_cost);
}

TEST(MultiOperatorRound, MoreOperatorsThanSitesIsFine) {
  const auto r = run_charging_round_multi(three_stations(), paper_costs(),
                                          relaxed_operator(), 10);
  EXPECT_EQ(r.stations_visited, 3u);
  EXPECT_EQ(r.bikes_charged, 6u);
}

TEST(MultiOperatorRound, ValidatesOperatorCount) {
  EXPECT_THROW((void)run_charging_round_multi(three_stations(), paper_costs(),
                                              relaxed_operator(), 0),
               std::invalid_argument);
}

TEST(ChargingRound, TotalCostIncludesIncentives) {
  const auto r =
      run_charging_round(three_stations(), paper_costs(), relaxed_operator());
  EXPECT_DOUBLE_EQ(r.total_cost(100.0), r.total_cost() + 100.0);
}

}  // namespace
}  // namespace esharing::core
