#include "stats/ks1d.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"

namespace esharing::stats {
namespace {

TEST(Ks1d, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks1d_statistic(a, a), 0.0);
}

TEST(Ks1d, DisjointSamplesHaveStatisticOne) {
  EXPECT_DOUBLE_EQ(ks1d_statistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(Ks1d, KnownSmallExample) {
  // a = {1, 3}, b = {2, 4}: CDF gaps of 1/2 at x in [1,2) etc.
  EXPECT_DOUBLE_EQ(ks1d_statistic({1, 3}, {2, 4}), 0.5);
}

TEST(Ks1d, SymmetricAndBounded) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 50; ++i) {
      a.push_back(rng.normal(0, 1));
      b.push_back(rng.normal(0.5, 1.2));
    }
    const double dab = ks1d_statistic(a, b);
    EXPECT_DOUBLE_EQ(dab, ks1d_statistic(b, a));
    EXPECT_GE(dab, 0.0);
    EXPECT_LE(dab, 1.0);
  }
}

TEST(Ks1d, ThrowsOnEmpty) {
  EXPECT_THROW((void)ks1d_statistic({}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)ks1d_statistic({1.0}, {}), std::invalid_argument);
}

TEST(Ks1d, SameDistributionHighPValue) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(0, 1));
  }
  EXPECT_GT(ks1d_test(a, b).p_value, 0.05);
}

TEST(Ks1d, ShiftedDistributionLowPValue) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(1.0, 1));
  }
  EXPECT_LT(ks1d_test(a, b).p_value, 1e-4);
}

TEST(Ks1d, HandlesTiesCorrectly) {
  // Heavy ties: all equal values -> D = 0 between identical multisets,
  // and D = 1 between different constants.
  const std::vector<double> fives(10, 5.0);
  EXPECT_DOUBLE_EQ(ks1d_statistic(fives, fives), 0.0);
  const std::vector<double> sixes(7, 6.0);
  EXPECT_DOUBLE_EQ(ks1d_statistic(fives, sixes), 1.0);
}

}  // namespace
}  // namespace esharing::stats
