#include "data/statistics.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "data/synthetic_city.h"

namespace esharing::data {
namespace {

class StatisticsFixture : public ::testing::Test {
 protected:
  StatisticsFixture() : city_(make_config(), 61), trips_(city_.generate_trips()) {}
  static CityConfig make_config() {
    CityConfig cfg;
    cfg.num_days = 5;  // Wed..Sun
    cfg.trips_per_weekday = 400;
    cfg.trips_per_weekend_day = 300;
    cfg.num_bikes = 80;
    cfg.num_users = 200;
    return cfg;
  }
  SyntheticCity city_;
  std::vector<TripRecord> trips_;
};

TEST_F(StatisticsFixture, SummaryCountsAreConsistent) {
  const auto s = summarize(trips_, city_.projection());
  EXPECT_EQ(s.trips, trips_.size());
  EXPECT_EQ(s.days, 5);
  EXPECT_NEAR(s.trips_per_day, static_cast<double>(trips_.size()) / 5.0, 1e-9);
  EXPECT_LE(s.unique_bikes, make_config().num_bikes);
  EXPECT_GT(s.unique_bikes, make_config().num_bikes / 2);
  EXPECT_LE(s.unique_users, make_config().num_users);
  EXPECT_NEAR(s.trips_per_bike,
              static_cast<double>(s.trips) / static_cast<double>(s.unique_bikes),
              1e-9);
}

TEST_F(StatisticsFixture, SharesSumToOne) {
  const auto s = summarize(trips_, city_.projection());
  EXPECT_NEAR(std::accumulate(s.hourly_share.begin(), s.hourly_share.end(), 0.0),
              1.0, 1e-9);
  EXPECT_NEAR(std::accumulate(s.weekday_share.begin(), s.weekday_share.end(), 0.0),
              1.0, 1e-9);
  // No Monday/Tuesday trips in a Wed..Sun window.
  EXPECT_DOUBLE_EQ(s.weekday_share[static_cast<std::size_t>(Weekday::kMonday)], 0.0);
  EXPECT_GT(s.weekday_share[static_cast<std::size_t>(Weekday::kSaturday)], 0.0);
}

TEST_F(StatisticsFixture, TripLengthQuantilesOrdered) {
  const auto s = summarize(trips_, city_.projection());
  EXPECT_GT(s.mean_trip_m, 0.0);
  EXPECT_LE(s.median_trip_m, s.p90_trip_m);
  // The generator keeps rides within ~3 miles.
  EXPECT_LT(s.p90_trip_m, 5000.0);
}

TEST_F(StatisticsFixture, RushHoursDominateHourlyShare) {
  const auto s = summarize(trips_, city_.projection());
  EXPECT_GT(s.hourly_share[8] + s.hourly_share[18],
            4.0 * (s.hourly_share[2] + s.hourly_share[3] + 1e-6));
}

TEST(Statistics, SummarizeRejectsEmpty) {
  geo::LocalProjection proj({39.86, 116.38});
  EXPECT_THROW((void)summarize({}, proj), std::invalid_argument);
}

TEST_F(StatisticsFixture, TopOdFlowsSortedAndConserved) {
  const auto grid = city_.grid();
  const auto flows = top_od_flows(grid, city_.projection(), trips_, 10);
  ASSERT_LE(flows.size(), 10u);
  ASSERT_FALSE(flows.empty());
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i - 1].count, flows[i].count);
  }
  // Full (unlimited) flow list conserves the trip count.
  const auto all = top_od_flows(grid, city_.projection(), trips_, SIZE_MAX);
  std::size_t total = 0;
  for (const auto& f : all) total += f.count;
  EXPECT_EQ(total, trips_.size());
}

}  // namespace
}  // namespace esharing::data
