#include "solver/local_search.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "solver/exact.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

FlInstance random_instance(std::uint64_t seed, std::size_t n) {
  stats::Rng rng(seed);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, n);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 3.0)});
    costs.push_back(rng.uniform(100.0, 1500.0));
  }
  return colocated_instance(clients, costs);
}

TEST(LocalSearch, NeverWorsensTheInput) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inst = random_instance(seed, 25);
    const auto start = assign_to_open(inst, {0});
    const auto improved = local_search(inst, start);
    EXPECT_LE(improved.total_cost(), start.total_cost() + 1e-9);
  }
}

TEST(LocalSearch, FixesAnObviouslyBadStart) {
  // Two far clusters; starting with only one facility, local search must
  // open a second one near the other cluster.
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 4; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    clients.push_back({{50000.0 + i, 0.0}, 1.0});
    costs.push_back(100.0);
    costs.push_back(100.0);
  }
  const auto inst = colocated_instance(clients, costs);
  const auto improved = local_search(inst, assign_to_open(inst, {0}));
  EXPECT_EQ(improved.num_open(), 2u);
  EXPECT_LT(improved.connection_cost, 50.0);
}

TEST(LocalSearch, ClosesRedundantFacilities) {
  // Start with everything open and expensive openings: close-to-optimal
  // plans keep only a couple of facilities.
  const auto inst = random_instance(3, 15);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) all.push_back(i);
  const auto start = assign_to_open(inst, all);
  const auto improved = local_search(inst, start);
  EXPECT_LT(improved.num_open(), inst.facilities.size());
  EXPECT_LT(improved.total_cost(), start.total_cost());
}

class LocalSearchQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchQuality, WithinFactor3OfExactOptimum) {
  stats::Rng rng(GetParam());
  const std::size_t n = 6 + rng.index(7);
  const auto inst = random_instance(GetParam() ^ 0xf00dULL, n);
  const auto ls = local_search_from_scratch(inst);
  const auto best = exact_facility_location(inst);
  EXPECT_LE(ls.total_cost(), 3.0 * best.total_cost() + 1e-9);
  EXPECT_GE(ls.total_cost(), best.total_cost() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LocalSearchQuality,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(LocalSearch, PolishesJmsSolutions) {
  // Local search on top of the greedy can only help; verify it returns a
  // valid, not-worse solution and stays consistent after recost().
  for (std::uint64_t seed = 20; seed < 25; ++seed) {
    const auto inst = random_instance(seed, 40);
    const auto greedy = jms_greedy(inst);
    const auto polished = local_search(inst, greedy);
    EXPECT_LE(polished.total_cost(), greedy.total_cost() + 1e-9);
    const auto checked = recost(inst, polished);
    EXPECT_NEAR(checked.total_cost(), polished.total_cost(), 1e-9);
  }
}

TEST(LocalSearch, SwapFreeModeStillImproves) {
  const auto inst = random_instance(5, 20);
  LocalSearchOptions opts;
  opts.allow_swaps = false;
  const auto start = assign_to_open(inst, {0});
  const auto improved = local_search(inst, start, opts);
  EXPECT_LE(improved.total_cost(), start.total_cost() + 1e-9);
}

TEST(LocalSearch, Validates) {
  const auto inst = random_instance(6, 5);
  FlSolution empty;
  EXPECT_THROW((void)local_search(inst, empty), std::invalid_argument);
  FlSolution bad;
  bad.open = {99};
  EXPECT_THROW((void)local_search(inst, bad), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
