#include "core/esharing.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::core {
namespace {

using data::DemandSite;
using geo::Point;

std::vector<DemandSite> two_cluster_sites() {
  // Two demand clusters far apart; each cell carries arrivals.
  std::vector<DemandSite> sites;
  std::size_t cell = 0;
  for (double dx : {0.0, 100.0, 200.0}) {
    sites.push_back({{dx + 100.0, 100.0}, 10.0, cell++});
    sites.push_back({{dx + 2400.0, 2500.0}, 8.0, cell++});
  }
  return sites;
}

ESharingConfig default_config() {
  ESharingConfig cfg;
  cfg.placer.ks_period = 0;
  cfg.placer.adaptive_type = false;
  return cfg;
}

std::function<double(Point)> constant_f(double f) {
  return [f](Point) { return f; };
}

TEST(ESharing, LifecycleGuards) {
  ESharing sys(default_config(), 1);
  EXPECT_THROW((void)sys.parking_locations(), std::logic_error);
  EXPECT_THROW((void)sys.offline_solution(), std::logic_error);
  EXPECT_THROW(sys.start_online({}), std::logic_error);
  EXPECT_THROW((void)sys.handle_request({0, 0}), std::logic_error);
  EXPECT_THROW((void)sys.placer(), std::logic_error);
}

TEST(ESharing, PlanOfflineValidatesInput) {
  ESharing sys(default_config(), 2);
  EXPECT_THROW((void)sys.plan_offline({}, constant_f(1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)sys.plan_offline(two_cluster_sites(), nullptr),
               std::invalid_argument);
}

TEST(ESharing, OfflinePlanOpensOneStationPerCluster) {
  ESharing sys(default_config(), 3);
  const auto& sol = sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  EXPECT_EQ(sol.num_open(), 2u);
  const auto locs = sys.parking_locations();
  // One parking near each cluster.
  bool near_a = false, near_b = false;
  for (Point p : locs) {
    near_a |= geo::distance(p, {200, 100}) < 300.0;
    near_b |= geo::distance(p, {2500, 2500}) < 300.0;
  }
  EXPECT_TRUE(near_a);
  EXPECT_TRUE(near_b);
}

TEST(ESharing, OnlinePhaseServesRequests) {
  ESharing sys(default_config(), 4);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  stats::Rng rng(5);
  sys.start_online(stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 100));
  ASSERT_TRUE(sys.online_started());
  const auto d = sys.handle_request({210, 110});
  EXPECT_FALSE(d.opened);  // right next to an offline landmark
  EXPECT_GE(sys.placer().requests_seen(), 1u);
}

TEST(ESharing, ReanchorRequiresPlanAndSites) {
  ESharing sys(default_config(), 40);
  EXPECT_THROW((void)sys.reanchor(two_cluster_sites()), std::logic_error);
  EXPECT_THROW((void)sys.reopt_session(), std::logic_error);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  EXPECT_THROW((void)sys.reanchor({}), std::invalid_argument);
}

TEST(ESharing, ReanchorWithIdenticalDemandIsZeroDelta) {
  ESharing sys(default_config(), 41);
  const auto sites = two_cluster_sites();
  const auto before = sys.plan_offline(sites, constant_f(2000.0));
  const auto& again = sys.reanchor(sites);
  EXPECT_EQ(again.open, before.open);
  EXPECT_EQ(again.connection_cost, before.connection_cost);
  EXPECT_TRUE(sys.reopt_session().last_stats().zero_delta);
  EXPECT_EQ(sys.reopt_session().revision(), 0u);
}

TEST(ESharing, ReanchorFollowsDemandDriftAndReanchorsPlacer) {
  ESharing sys(default_config(), 42);
  auto sites = two_cluster_sites();
  (void)sys.plan_offline(sites, constant_f(2000.0));
  stats::Rng rng(43);
  sys.start_online(stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 50));

  // Demand drifts: the second cluster doubles, a third cluster appears.
  for (auto& s : sites) {
    if (s.location.x > 2000.0) s.arrivals *= 2.0;
  }
  std::size_t cell = 100;
  for (double dx : {0.0, 100.0}) {
    sites.push_back({{dx + 900.0, 2900.0}, 12.0, cell++});
  }
  const auto& sol = sys.reanchor(sites);
  const auto& stats = sys.reopt_session().last_stats();
  EXPECT_FALSE(stats.zero_delta);
  EXPECT_LE(stats.final_cost, stats.baseline_cost);
  EXPECT_EQ(stats.final_cost, sol.total_cost());
  EXPECT_EQ(sys.reopt_session().revision(), 1u);
  // The online placer was re-anchored onto the new plan.
  EXPECT_EQ(sys.placer().reanchors(), 1u);
  EXPECT_GE(sys.placer().num_active(), sol.num_open());
}

TEST(ESharing, ReplanInvalidatesOnlinePhase) {
  ESharing sys(default_config(), 6);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  sys.start_online({});
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  EXPECT_FALSE(sys.online_started());
  EXPECT_THROW((void)sys.handle_request({0, 0}), std::logic_error);
}

TEST(ESharing, IncentiveSessionGroupsLowBikesByStation) {
  ESharing sys(default_config(), 7);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  sys.start_online({});
  const auto parkings = sys.parking_locations();
  ASSERT_EQ(parkings.size(), 2u);

  energy::BikeFleet fleet(6, energy::EnergyConfig{}, 8);
  for (std::size_t b = 0; b < fleet.size(); ++b) fleet.set_soc(b, 0.9);
  fleet.set_soc(1, 0.1);
  fleet.set_soc(4, 0.05);
  const std::vector<std::size_t> bike_station{0, 0, 0, 1, 1, 1};
  const auto session = sys.make_incentive_session(fleet, bike_station);
  ASSERT_EQ(session.stations().size(), 2u);
  EXPECT_EQ(session.stations()[0].low_bikes, (std::vector<std::size_t>{1}));
  EXPECT_EQ(session.stations()[1].low_bikes, (std::vector<std::size_t>{4}));
}

TEST(ESharing, IncentiveSessionValidatesBikeStation) {
  ESharing sys(default_config(), 9);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  energy::BikeFleet fleet(3, energy::EnergyConfig{}, 10);
  EXPECT_THROW((void)sys.make_incentive_session(fleet, {0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)sys.make_incentive_session(fleet, {0, 0, 99}),
               std::invalid_argument);
}

TEST(ESharing, ChargeRunsOperatorRound) {
  ESharingConfig cfg = default_config();
  cfg.charging_operator.work_seconds = 1e9;
  ESharing sys(cfg, 11);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(2000.0));
  energy::BikeFleet fleet(4, energy::EnergyConfig{}, 12);
  for (std::size_t b = 0; b < fleet.size(); ++b) fleet.set_soc(b, 0.05);
  const auto session = sys.make_incentive_session(fleet, {0, 0, 1, 1});
  const auto round = sys.charge(session);
  EXPECT_EQ(round.bikes_total, 4u);
  EXPECT_EQ(round.bikes_charged, 4u);
  EXPECT_EQ(round.stations_visited, 2u);
}

TEST(ESharing, OnlineOpeningExtendsParkingList) {
  ESharingConfig cfg = default_config();
  cfg.placer.tolerance = 1e9;  // no deviation penalty
  ESharing sys(cfg, 13);
  (void)sys.plan_offline(two_cluster_sites(), constant_f(1.0));  // tiny f
  sys.start_online({});
  stats::Rng rng(14);
  const std::size_t before = sys.parking_locations().size();
  for (int i = 0; i < 2000; ++i) {
    (void)sys.handle_request(
        {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)});
  }
  EXPECT_GT(sys.parking_locations().size(), before);
}

}  // namespace
}  // namespace esharing::core
