#!/usr/bin/env python3
"""Tests for tools/lint/lint.py.

Three suites, selectable by class name (this is how CTest invokes them):

  python3 test_lint.py LintFixtures        per-rule pass/fail fixtures
  python3 test_lint.py LintFix             --fix rewrites and is idempotent
  python3 test_lint.py LintProductionTree  src/ tools/ bench/ lint clean

LintFixtures walks tests/lint_fixtures/<rule-id>/: every `bad_*` file must
be flagged by its rule (exit 1, the file named in the output) and every
`good_*` file must come back clean (exit 0, no output). The fixture set is
the executable spec of each rule — counterexamples live next to the
positives so a lint regression in either direction fails here first.
"""

import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT = REPO_ROOT / "tools" / "lint" / "lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
FIXTURE_METRIC_NAMES = FIXTURES / "metric-name-freeze" / "names.txt"


def run_lint(args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def rule_args(rule_id, path):
    args = ["--rule", rule_id]
    if rule_id == "metric-name-freeze":
        args += ["--metric-names", str(FIXTURE_METRIC_NAMES)]
    return args + [str(path)]


class LintFixtures(unittest.TestCase):
    def fixture_files(self, prefix):
        out = []
        for rule_dir in sorted(FIXTURES.iterdir()):
            if not rule_dir.is_dir():
                continue
            if rule_dir.name == "analyze":
                continue  # whole-tree analyzer fixtures; see test_analyze.py
            for path in sorted(rule_dir.glob(f"{prefix}_*")):
                if path.suffix in (".h", ".cpp"):
                    out.append((rule_dir.name, path))
        return out

    def test_fixture_tree_is_complete(self):
        """Every rule has at least one bad and one good fixture."""
        listed = run_lint(["--list-rules"])
        self.assertEqual(listed.returncode, 0, listed.stderr)
        rules = {line.split()[0] for line in listed.stdout.splitlines()}
        self.assertTrue(rules, "lint.py --list-rules printed nothing")
        bad_rules = {rule for rule, _ in self.fixture_files("bad")}
        good_rules = {rule for rule, _ in self.fixture_files("good")}
        self.assertEqual(rules, bad_rules,
                         "each rule needs a bad_* fixture (and each fixture "
                         "dir a matching rule)")
        self.assertEqual(rules, good_rules,
                         "each rule needs a good_* fixture (and each fixture "
                         "dir a matching rule)")

    def test_bad_fixtures_are_flagged(self):
        for rule_id, path in self.fixture_files("bad"):
            with self.subTest(rule=rule_id, fixture=path.name):
                result = run_lint(rule_args(rule_id, path))
                self.assertEqual(
                    result.returncode, 1,
                    f"{path.name} should be flagged by {rule_id}; "
                    f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
                self.assertIn(f"[{rule_id}]", result.stdout)

    def test_bad_fixtures_name_the_offending_file(self):
        for rule_id, path in self.fixture_files("bad"):
            # The stale-registry direction reports against the registry
            # file, not the source file, so exempt it from this check.
            if path.name == "bad_stale_registry.cpp":
                continue
            with self.subTest(rule=rule_id, fixture=path.name):
                result = run_lint(rule_args(rule_id, path))
                self.assertIn(path.name, result.stdout)

    def test_stale_registry_names_the_registry(self):
        path = FIXTURES / "metric-name-freeze" / "bad_stale_registry.cpp"
        result = run_lint(rule_args("metric-name-freeze", path))
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("names.txt", result.stdout)
        self.assertIn("fixture.gauge.level", result.stdout)
        self.assertIn("fixture.events.", result.stdout)

    def test_good_fixtures_are_clean(self):
        for rule_id, path in self.fixture_files("good"):
            with self.subTest(rule=rule_id, fixture=path.name):
                result = run_lint(rule_args(rule_id, path))
                self.assertEqual(
                    result.returncode, 0,
                    f"{path.name} should be clean under {rule_id}; "
                    f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}")
                self.assertEqual(result.stdout, "")

    def test_every_finding_is_parseable(self):
        """Findings follow `path:line: [rule-id] message` so editors and CI
        annotations can consume them."""
        for rule_id, path in self.fixture_files("bad"):
            result = run_lint(rule_args(rule_id, path))
            for line in result.stdout.splitlines():
                with self.subTest(rule=rule_id, line=line):
                    head, _, rest = line.partition(f" [{rule_id}] ")
                    self.assertTrue(rest, f"unparseable finding: {line}")
                    fname, _, lineno = head.rstrip(":").rpartition(":")
                    self.assertTrue(fname)
                    self.assertTrue(lineno.isdigit())


class LintFix(unittest.TestCase):
    """--fix rewrites the mechanical rules in place; a second run is a
    no-op (the fixed file is the rule's clean state)."""

    def fix_twice(self, rule_id, fixture_name):
        src = FIXTURES / rule_id / fixture_name
        with tempfile.TemporaryDirectory() as td:
            work = Path(td) / fixture_name
            shutil.copy(src, work)
            first = run_lint(["--rule", rule_id, "--fix", str(work)])
            self.assertEqual(
                first.returncode, 0,
                f"--fix must leave {fixture_name} clean under {rule_id}:\n"
                f"{first.stdout}\n{first.stderr}")
            after_first = work.read_text()
            second = run_lint(["--rule", rule_id, "--fix", str(work)])
            self.assertEqual(second.returncode, 0, second.stdout)
            self.assertEqual(after_first, work.read_text(),
                             "--fix must be idempotent")
            return after_first

    def test_fix_pragma_once(self):
        fixed = self.fix_twice("pragma-once", "bad_guard_macro.h")
        self.assertTrue(fixed.startswith("#pragma once\n"), fixed)

    def test_fix_iostream_header(self):
        fixed = self.fix_twice("iostream-header", "bad_iostream.h")
        self.assertNotIn("#include <iostream>", fixed)
        self.assertIn("#include <ostream>", fixed)

    def test_fix_respects_waivers(self):
        src = FIXTURES / "pragma-once" / "good_waived.h"
        with tempfile.TemporaryDirectory() as td:
            work = Path(td) / src.name
            shutil.copy(src, work)
            result = run_lint(["--rule", "pragma-once", "--fix", str(work)])
            self.assertEqual(result.returncode, 0, result.stdout)
            self.assertEqual(work.read_text(), src.read_text(),
                             "--fix must not touch waived files")


class LintProductionTree(unittest.TestCase):
    def test_src_tree_is_clean(self):
        result = run_lint(["--root", str(REPO_ROOT)])
        self.assertEqual(
            result.returncode, 0,
            "production tree must lint clean; findings:\n"
            f"{result.stdout}\n{result.stderr}")
        self.assertEqual(result.stdout, "")


if __name__ == "__main__":
    unittest.main()
