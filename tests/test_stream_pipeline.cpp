#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/esharing.h"
#include "sim/microsim.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stream/drivers.h"
#include "stream/event_bus.h"
#include "stream/replay.h"

namespace esharing::stream {
namespace {

using data::DemandSite;
using geo::Point;

std::vector<DemandSite> two_cluster_sites() {
  std::vector<DemandSite> sites;
  std::size_t cell = 0;
  for (double dx : {0.0, 100.0, 200.0}) {
    sites.push_back({{dx + 100.0, 100.0}, 10.0, cell++});
    sites.push_back({{dx + 2400.0, 2500.0}, 8.0, cell++});
  }
  return sites;
}

core::ESharingConfig system_config() {
  core::ESharingConfig cfg;
  cfg.placer.ks_period = 0;
  cfg.placer.adaptive_type = false;
  return cfg;
}

/// A planned, online system plus the KS sample it was started with.
struct OnlineSystem {
  core::ESharing system;
  std::vector<Point> sample;

  explicit OnlineSystem(std::uint64_t seed) : system(system_config(), seed) {
    (void)system.plan_offline(two_cluster_sites(),
                              [](Point) { return 2000.0; });
    stats::Rng rng(seed);
    sample = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 120);
    system.start_online(sample);
  }
};

std::vector<Event> request_log(std::uint64_t seed, int n) {
  stats::Rng rng(seed);
  const auto points = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, n);
  std::vector<Event> log;
  log.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.time = static_cast<data::Seconds>(i * 30);
    e.where = points[i];
    log.push_back(e);
  }
  return log;
}

/// Batch reference: the same requests fed straight into handle_request.
std::vector<solver::OnlineDecision> batch_decisions(
    core::ESharing& system, const std::vector<Event>& log) {
  std::vector<solver::OnlineDecision> decisions;
  for (const Event& e : log) {
    decisions.push_back(system.handle_request(e.where, e.weight));
  }
  return decisions;
}

void expect_same_decisions(const std::vector<solver::OnlineDecision>& a,
                           const std::vector<solver::OnlineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].opened, b[i].opened) << "decision " << i;
    EXPECT_EQ(a[i].facility, b[i].facility) << "decision " << i;
    EXPECT_DOUBLE_EQ(a[i].connection_cost, b[i].connection_cost)
        << "decision " << i;
  }
}

void expect_same_stations(const std::vector<Point>& a,
                          const std::vector<Point>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x) << "station " << i;
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y) << "station " << i;
  }
}

TEST(StreamPipeline, DriverRequiresOnlineSystem) {
  core::ESharing offline_only(system_config(), 1);
  (void)offline_only.plan_offline(two_cluster_sites(),
                                  [](Point) { return 2000.0; });
  const EventBus bus(EventBusConfig{});
  EXPECT_THROW(OnlinePlacerDriver(offline_only, bus, {}, PlacerDriverConfig{}),
               std::logic_error);
}

TEST(StreamPipeline, DriverConfigValidation) {
  PlacerDriverConfig cfg;
  cfg.regime_min_samples = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.regime_check_period = 0;  // disabled check: min samples may be 0
  EXPECT_NO_THROW(cfg.validate());
  cfg.reanchor_period = 64;
  cfg.reanchor_min_cells = 0;  // a re-anchor needs at least one cell
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reanchor_min_cells = 2;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(StreamPipeline, ReanchorCadenceIsShardCountInvariant) {
  const auto log = request_log(55, 400);
  PlacerDriverConfig cfg;
  cfg.reanchor_period = 100;  // re-anchor every 100 trip ends

  const auto run_with_shards = [&](std::size_t shards) {
    OnlineSystem sys(19);
    EventBusConfig bus_cfg;
    bus_cfg.shard_count = shards;
    bus_cfg.queue_capacity = 64;
    bus_cfg.max_batch = 32;
    EventBus bus(bus_cfg);
    auto driver = std::make_unique<OnlinePlacerDriver>(
        sys.system, bus, sys.sample, cfg);
    const auto result = replay_log(bus, *driver, log);
    struct Out {
      std::uint64_t reanchors;
      std::uint64_t placer_reanchors;
      std::uint64_t revision;
      std::vector<Point> stations;
      std::vector<solver::OnlineDecision> decisions;
    };
    return Out{driver->reanchors(), sys.system.placer().reanchors(),
               sys.system.reopt_session().revision(),
               sys.system.placer().active_locations(), result.decisions};
  };

  const auto one = run_with_shards(1);
  EXPECT_EQ(one.reanchors, 4u);  // 400 trip ends / period 100
  EXPECT_EQ(one.placer_reanchors, one.reanchors);
  // The re-anchored plan and every post-re-anchor decision are identical
  // at any shard count: the cadence counts globally consumed trip ends and
  // the snapshot is taken at the global max clock.
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const auto many = run_with_shards(shards);
    EXPECT_EQ(many.reanchors, one.reanchors) << shards << " shards";
    EXPECT_EQ(many.revision, one.revision) << shards << " shards";
    expect_same_stations(one.stations, many.stations);
    expect_same_decisions(one.decisions, many.decisions);
  }
}

TEST(StreamPipeline, StreamedDecisionsMatchBatchSingleShard) {
  OnlineSystem batch(7);
  OnlineSystem streamed(7);
  const auto log = request_log(99, 300);

  const auto expected = batch_decisions(batch.system, log);

  EventBusConfig bus_cfg;
  bus_cfg.shard_count = 1;
  bus_cfg.queue_capacity = 64;
  bus_cfg.max_batch = 32;
  EventBus bus(bus_cfg);
  OnlinePlacerDriver driver(streamed.system, bus, streamed.sample,
                            PlacerDriverConfig{});
  const auto result = replay_log(bus, driver, log);

  EXPECT_EQ(result.published, log.size());
  EXPECT_EQ(result.consumed, log.size());
  expect_same_decisions(expected, result.decisions);
  expect_same_stations(batch.system.placer().active_locations(),
                       streamed.system.placer().active_locations());
  EXPECT_EQ(batch.system.placer().requests_seen(),
            streamed.system.placer().requests_seen());
}

TEST(StreamPipeline, FourShardsMatchBatchAndSingleShard) {
  OnlineSystem batch(11);
  OnlineSystem one_shard(11);
  OnlineSystem four_shard(11);
  const auto log = request_log(123, 400);

  const auto expected = batch_decisions(batch.system, log);

  EventBusConfig cfg1;
  cfg1.shard_count = 1;
  EventBus bus1(cfg1);
  OnlinePlacerDriver driver1(one_shard.system, bus1, one_shard.sample,
                             PlacerDriverConfig{});
  const auto r1 = replay_log(bus1, driver1, log);

  EventBusConfig cfg4;
  cfg4.shard_count = 4;
  EventBus bus4(cfg4);
  OnlinePlacerDriver driver4(four_shard.system, bus4, four_shard.sample,
                             PlacerDriverConfig{});
  const auto r4 = replay_log(bus4, driver4, log);

  expect_same_decisions(expected, r1.decisions);
  expect_same_decisions(r1.decisions, r4.decisions);
  expect_same_stations(one_shard.system.placer().active_locations(),
                       four_shard.system.placer().active_locations());
  expect_same_stations(batch.system.placer().active_locations(),
                       four_shard.system.placer().active_locations());

  // The merged stream views are also shard-count invariant.
  const auto m1 = driver1.merged_snapshot();
  const auto m4 = driver4.merged_snapshot();
  ASSERT_EQ(m1.window.size(), m4.window.size());
  for (std::size_t i = 0; i < m1.window.size(); ++i) {
    EXPECT_EQ(m1.window[i].seq, m4.window[i].seq);
  }
}

TEST(StreamPipeline, RegimeChecksRunFromShardWindows) {
  OnlineSystem sys(13);
  const auto log = request_log(5, 256);

  EventBusConfig cfg;
  cfg.shard_count = 2;
  EventBus bus(cfg);
  PlacerDriverConfig driver_cfg;
  driver_cfg.regime_check_period = 16;
  driver_cfg.regime_min_samples = 8;
  OnlinePlacerDriver driver(sys.system, bus, sys.sample, driver_cfg);
  (void)replay_log(bus, driver, log);

  std::uint64_t checks = 0;
  for (std::size_t s = 0; s < driver.shard_count(); ++s) {
    const auto& regime = driver.shard_regime(s);
    checks += regime.checks;
    EXPECT_GE(regime.similarity, 0.0);
    EXPECT_LE(regime.similarity, 100.0);
  }
  EXPECT_GT(checks, 0u);
  EXPECT_EQ(driver.events_consumed(), log.size());
}

TEST(StreamPipeline, IncentiveDriverMatchesDirectSession) {
  // Parkings on a line, watchlisted bikes near them, trips picking up at
  // the stations: the driver must reproduce a hand-built Algorithm 3
  // session offer for offer.
  std::vector<Point> parkings;
  for (int i = 0; i < 6; ++i) parkings.push_back({i * 400.0, 0.0});
  std::vector<WatchEntry> watchlist;
  for (int b = 0; b < 8; ++b) {
    watchlist.push_back({b, {b % 6 * 400.0 + 10.0, 5.0}, 0.1, 0});
  }

  core::IncentiveConfig icfg;
  icfg.alpha = 0.5;
  IncentiveDriverConfig dcfg;
  dcfg.incentive = icfg;
  IncentiveDriver driver(dcfg);
  driver.open_session(parkings, watchlist);
  ASSERT_TRUE(driver.session_open());

  // Hand-built twin: identical stations and piles.
  std::vector<core::EnergyStation> stations;
  for (Point p : parkings) stations.push_back({p, {}});
  const geo::SpatialIndex index(parkings);
  for (const auto& w : watchlist) {
    stations[index.nearest(w.where)].low_bikes.push_back(
        static_cast<std::size_t>(w.bike_id));
  }
  core::IncentiveMechanism twin(stations, icfg);

  const auto can_ride = [](std::size_t, double) { return true; };
  stats::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.origin = {rng.uniform(0.0, 2000.0), rng.uniform(-20.0, 20.0)};
    e.user_max_walk_m = rng.uniform(100.0, 600.0);
    e.user_min_reward = rng.uniform(0.0, 1.0);
    const Point assigned = parkings[static_cast<std::size_t>(i) % parkings.size()];

    const core::Offer got = driver.handle_trip(e, assigned, can_ride);
    const core::UserBehavior user{e.user_max_walk_m, e.user_min_reward};
    const core::Offer want = twin.handle_pickup(index.nearest(e.origin),
                                                assigned, user, can_ride);
    EXPECT_EQ(got.made, want.made) << "trip " << i;
    EXPECT_EQ(got.accepted, want.accepted) << "trip " << i;
    EXPECT_DOUBLE_EQ(got.incentive, want.incentive) << "trip " << i;
    EXPECT_EQ(got.bike, want.bike) << "trip " << i;
  }
  EXPECT_DOUBLE_EQ(driver.total_incentives_paid(),
                   twin.total_incentives_paid());
  EXPECT_EQ(driver.offers_made(), twin.offers_made());
  EXPECT_EQ(driver.relocations(), twin.relocations());
  EXPECT_GT(driver.offers_made(), 0u);  // the scenario exercises offers

  // Re-opening folds the closed session's totals into the running counts.
  const double paid_before = driver.total_incentives_paid();
  driver.open_session(parkings, watchlist);
  EXPECT_DOUBLE_EQ(driver.total_incentives_paid(), paid_before);
}

TEST(StreamPipeline, IncentiveDriverGuards) {
  IncentiveDriverConfig bad;
  bad.assign_radius_m = 0.0;
  EXPECT_THROW(IncentiveDriver{bad}, std::invalid_argument);

  IncentiveDriver driver{IncentiveDriverConfig{}};
  EXPECT_FALSE(driver.session_open());
  EXPECT_THROW((void)driver.session(), std::logic_error);
  EXPECT_THROW(driver.open_session({}, {}), std::invalid_argument);
  // Without a session a trip is a no-op, not an error.
  Event e;
  const auto offer =
      driver.handle_trip(e, {0, 0}, [](std::size_t, double) { return true; });
  EXPECT_FALSE(offer.made);
}

TEST(StreamPipeline, WatchlistFeedsIncentiveSessions) {
  OnlineSystem sys(17);
  EventBusConfig cfg;
  cfg.shard_count = 2;
  EventBus bus(cfg);
  StreamStateConfig state_cfg;
  state_cfg.low_soc_threshold = 0.25;
  PlacerDriverConfig driver_cfg;
  driver_cfg.state = state_cfg;
  OnlinePlacerDriver driver(sys.system, bus, sys.sample, driver_cfg);

  // Telemetry: four low bikes, one healthy.
  for (int b = 0; b < 5; ++b) {
    Event e;
    e.kind = EventKind::kBatteryLevel;
    e.time = b;
    e.where = {b * 700.0, b * 300.0};
    e.bike_id = b;
    e.soc = b == 4 ? 0.9 : 0.1;
    ASSERT_TRUE(bus.publish(e));
  }
  (void)driver.pump(bus);

  const auto watchlist = driver.watchlist();
  ASSERT_EQ(watchlist.size(), 4u);
  IncentiveDriver incentives{IncentiveDriverConfig{}};
  incentives.open_session(sys.system.parking_locations(), watchlist);
  std::size_t piled = 0;
  for (const auto& s : incentives.session().stations()) {
    piled += s.low_bikes.size();
  }
  EXPECT_EQ(piled, 4u);  // every watchlisted bike lands in some pile
}

TEST(StreamPipeline, MicrosimPublishesTelemetryOntoBus) {
  data::CityConfig city_cfg;
  city_cfg.num_days = 1;
  city_cfg.trips_per_weekday = 150;
  city_cfg.trips_per_weekend_day = 120;
  city_cfg.num_bikes = 40;
  city_cfg.num_users = 80;
  data::SyntheticCity city(city_cfg, 21);
  const auto history = city.generate_trips();
  const auto live = city.generate_trips();

  sim::MicroSimConfig cfg;
  cfg.esharing.placer.ks_period = 0;
  sim::MicroSimulation microsim(city, cfg, 3);
  microsim.bootstrap(history);

  EventBusConfig bus_cfg;
  bus_cfg.shard_count = 2;
  bus_cfg.queue_capacity = 128;
  bus_cfg.max_batch = 64;
  EventBus bus(bus_cfg);
  std::vector<Event> seen;
  microsim.attach_stream(&bus, [&seen](const std::vector<Event>& batch) {
    seen.insert(seen.end(), batch.begin(), batch.end());
  });
  const auto metrics = microsim.run(live);

  std::size_t trip_ends = 0, battery_reports = 0;
  for (const Event& e : seen) {
    if (e.kind == EventKind::kTripEnd) ++trip_ends;
    if (e.kind == EventKind::kBatteryLevel) ++battery_reports;
  }
  // Every demand request publishes its tier-one signal; every completed
  // ride reports the bike's residual battery.
  EXPECT_EQ(trip_ends, metrics.demand);
  EXPECT_EQ(battery_reports, metrics.served);
  EXPECT_EQ(bus.pending_total(), 0u);
  // Seqs arrive in merged publish order.
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1].seq, seen[i].seq);
  }
}

}  // namespace
}  // namespace esharing::stream
