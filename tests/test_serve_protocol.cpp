#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/event.h"

namespace esharing::serve {
namespace {

stream::Event sample_event(std::int64_t i) {
  stream::Event e;
  e.kind = i % 3 == 2 ? stream::EventKind::kBatteryLevel
                      : stream::EventKind::kTripEnd;
  e.time = 100 + i;
  e.seq = static_cast<std::uint64_t>(41 + i);
  e.where = {10.5 + static_cast<double>(i), -3.25};
  e.origin = {-7.0, 2.5 * static_cast<double>(i)};
  e.bike_id = 9000 + i;
  e.weight = 1.5;
  e.soc = 0.25;
  e.user_max_walk_m = 400.0;
  e.user_min_reward = 0.05;
  e.ref = 1000 + i;
  return e;
}

void expect_event_eq(const stream::Event& a, const stream::Event& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_DOUBLE_EQ(a.where.x, b.where.x);
  EXPECT_DOUBLE_EQ(a.where.y, b.where.y);
  EXPECT_DOUBLE_EQ(a.origin.x, b.origin.x);
  EXPECT_DOUBLE_EQ(a.origin.y, b.origin.y);
  EXPECT_EQ(a.bike_id, b.bike_id);
  EXPECT_DOUBLE_EQ(a.weight, b.weight);
  EXPECT_DOUBLE_EQ(a.soc, b.soc);
  EXPECT_DOUBLE_EQ(a.user_max_walk_m, b.user_max_walk_m);
  EXPECT_DOUBLE_EQ(a.user_min_reward, b.user_min_reward);
  EXPECT_EQ(a.ref, b.ref);
}

TEST(ServeProtocol, RequestPayloadsRoundTrip) {
  {
    const Message m = decode_message(encode_ping());
    EXPECT_EQ(m.type, MsgType::kPing);
  }
  {
    std::vector<stream::Event> events;
    for (std::int64_t i = 0; i < 5; ++i) events.push_back(sample_event(i));
    const Message m = decode_message(encode_publish_events(events));
    EXPECT_EQ(m.type, MsgType::kPublishEvents);
    ASSERT_EQ(m.events.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      expect_event_eq(m.events[i], events[i]);
    }
  }
  {
    const Message m = decode_message(encode_decide(sample_event(7)));
    EXPECT_EQ(m.type, MsgType::kDecide);
    ASSERT_EQ(m.events.size(), 1u);
    expect_event_eq(m.events.front(), sample_event(7));
  }
  {
    ServeTunables t;
    t.checkpoint_every_events = 512;
    t.pump_idle_micros = 50;
    const Message m = decode_message(encode_reload_tunables(t));
    EXPECT_EQ(m.type, MsgType::kReloadTunables);
    EXPECT_EQ(m.tunables.checkpoint_every_events, 512u);
    EXPECT_EQ(m.tunables.pump_idle_micros, 50u);
  }
  EXPECT_EQ(decode_message(encode_scrape_metrics()).type,
            MsgType::kScrapeMetrics);
  EXPECT_EQ(decode_message(encode_status()).type, MsgType::kStatus);
  EXPECT_EQ(decode_message(encode_checkpoint_now()).type,
            MsgType::kCheckpointNow);
  EXPECT_EQ(decode_message(encode_shutdown()).type, MsgType::kShutdown);
}

TEST(ServeProtocol, ResponsePayloadsRoundTrip) {
  EXPECT_EQ(decode_message(encode_ok()).type, MsgType::kOk);
  {
    const Message m = decode_message(encode_publish_ack(1234));
    EXPECT_EQ(m.type, MsgType::kPublishAck);
    EXPECT_EQ(m.accepted, 1234u);
  }
  {
    DecisionReply d;
    d.ref = -17;
    d.opened = true;
    d.facility = 42;
    d.connection_cost = 123.625;
    const Message m = decode_message(encode_decision(d));
    EXPECT_EQ(m.type, MsgType::kDecision);
    EXPECT_EQ(m.decision.ref, -17);
    EXPECT_TRUE(m.decision.opened);
    EXPECT_EQ(m.decision.facility, 42u);
    EXPECT_DOUBLE_EQ(m.decision.connection_cost, 123.625);
  }
  {
    const Message m =
        decode_message(encode_metrics_json("{\"counters\":{}}"));
    EXPECT_EQ(m.type, MsgType::kMetricsJson);
    EXPECT_EQ(m.text, "{\"counters\":{}}");
  }
  {
    ServeStatus s;
    s.state = DaemonState::kDraining;
    s.events_consumed = 7;
    s.decisions = 5;
    s.checkpoints = 2;
    s.reloads = 1;
    s.connections_accepted = 3;
    s.next_seq = 8;
    const Message m = decode_message(encode_status_reply(s));
    EXPECT_EQ(m.type, MsgType::kStatusReply);
    EXPECT_EQ(m.status.state, DaemonState::kDraining);
    EXPECT_EQ(m.status.events_consumed, 7u);
    EXPECT_EQ(m.status.decisions, 5u);
    EXPECT_EQ(m.status.checkpoints, 2u);
    EXPECT_EQ(m.status.reloads, 1u);
    EXPECT_EQ(m.status.connections_accepted, 3u);
    EXPECT_EQ(m.status.next_seq, 8u);
  }
  {
    const Message m = decode_message(encode_error("boom"));
    EXPECT_EQ(m.type, MsgType::kError);
    EXPECT_EQ(m.text, "boom");
  }
}

TEST(ServeProtocol, CorruptPayloadsNeverHalfDecode) {
  // Unknown type byte.
  EXPECT_THROW((void)decode_message(std::string(1, '\x7f')),
               std::runtime_error);
  // Empty payload has no type byte at all.
  EXPECT_THROW((void)decode_message(std::string()), std::runtime_error);
  // Truncated body: chop bytes off a valid decision payload.
  const std::string good = encode_decision(DecisionReply{1, true, 2, 3.0});
  EXPECT_THROW((void)decode_message(good.substr(0, good.size() - 3)),
               std::runtime_error);
  // Trailing garbage after a complete body.
  EXPECT_THROW((void)decode_message(good + "x"), std::runtime_error);
}

TEST(ServeProtocol, TunablesValidateBounds) {
  ServeTunables ok;
  EXPECT_NO_THROW(ok.validate());
  ServeTunables zero_idle;
  zero_idle.pump_idle_micros = 0;
  EXPECT_THROW(zero_idle.validate(), std::invalid_argument);
  ServeTunables huge_idle;
  huge_idle.pump_idle_micros = 2'000'000;
  EXPECT_THROW(huge_idle.validate(), std::invalid_argument);
}

TEST(ServeProtocol, FrameIoRoundTripsOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = encode_publish_ack(99);
  ASSERT_TRUE(write_frame(fds[1], payload));
  std::string back;
  ASSERT_TRUE(read_frame(fds[0], back));
  EXPECT_EQ(back, payload);

  // Clean EOF at a frame boundary reads false, not a throw.
  ::close(fds[1]);
  EXPECT_FALSE(read_frame(fds[0], back));
  ::close(fds[0]);
}

TEST(ServeProtocol, TornAndOversizedFramesThrow) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A length prefix promising 4 bytes followed by EOF after 1: torn frame.
  const unsigned char torn[5] = {4, 0, 0, 0, 1};
  ASSERT_EQ(::write(fds[1], torn, sizeof(torn)), 5);
  ::close(fds[1]);
  std::string back;
  EXPECT_THROW((void)read_frame(fds[0], back), std::runtime_error);
  ::close(fds[0]);

  ASSERT_EQ(::pipe(fds), 0);
  // An implausible length prefix is protocol corruption, not an alloc.
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::write(fds[1], huge, sizeof(huge)), 4);
  ::close(fds[1]);
  EXPECT_THROW((void)read_frame(fds[0], back), std::runtime_error);
  ::close(fds[0]);

  // Oversized writes are rejected before touching the descriptor.
  EXPECT_THROW(
      (void)write_frame(-1, std::string(kMaxFrameBytes + 1, 'x')),
      std::invalid_argument);
}

}  // namespace
}  // namespace esharing::serve
