/// Bit-identity regression suite for every parallelized hot path: solver
/// outputs, oracle rows and spatial batch queries must be byte-equal for
/// num_threads in {1, 2, 4, hardware} and for the SoA kernels vs their
/// scalar definitions. This is the executable form of the exec runtime's
/// determinism contract (DESIGN.md "Execution runtime"). Suite names
/// contain "Exec" so the CI TSan job picks them up; the concurrent
/// same-row oracle test is the TSan target for the atomic row-publication
/// protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "geo/spatial_index.h"
#include "solver/cost_oracle.h"
#include "solver/jms_greedy.h"
#include "solver/local_search.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace {

using esharing::geo::Point;
using esharing::geo::SpatialIndex;
using esharing::solver::CostOracle;
using esharing::solver::FlClient;
using esharing::solver::FlInstance;
using esharing::solver::FlSolution;

std::vector<Point> points(std::size_t n, std::uint64_t seed) {
  esharing::stats::Rng rng(seed);
  return esharing::stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, n);
}

FlInstance instance(std::size_t n, std::uint64_t seed) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  std::size_t i = 0;
  for (Point p : points(n, seed)) {
    clients.push_back({p, 1.0 + static_cast<double>(i++ % 5)});
    costs.push_back(5000.0);
  }
  return esharing::solver::colocated_instance(std::move(clients),
                                              std::move(costs));
}

std::vector<std::size_t> widths() {
  return {1, 2, 4,
          std::max<std::size_t>(1, std::thread::hardware_concurrency())};
}

void expect_same_solution(const FlSolution& a, const FlSolution& b,
                          std::size_t width) {
  EXPECT_EQ(a.open, b.open) << "width " << width;
  EXPECT_EQ(a.assignment, b.assignment) << "width " << width;
  EXPECT_EQ(a.connection_cost, b.connection_cost) << "width " << width;
  EXPECT_EQ(a.opening_cost, b.opening_cost) << "width " << width;
}

TEST(ExecBitIdentity, JmsGreedyAcrossThreadCounts) {
  const auto inst = instance(90, 11);
  const auto ref = esharing::solver::jms_greedy(inst, {.num_threads = 1});
  for (const std::size_t w : widths()) {
    expect_same_solution(esharing::solver::jms_greedy(inst, {.num_threads = w}),
                         ref, w);
  }
}

TEST(ExecBitIdentity, LocalSearchAcrossThreadCounts) {
  const auto inst = instance(60, 12);
  esharing::solver::LocalSearchOptions opts;
  opts.num_threads = 1;
  const auto ref = esharing::solver::local_search_from_scratch(inst, opts);
  for (const std::size_t w : widths()) {
    opts.num_threads = w;
    expect_same_solution(
        esharing::solver::local_search_from_scratch(inst, opts), ref, w);
  }
}

TEST(ExecBitIdentity, OracleRowsAcrossThreadCounts) {
  const auto inst = instance(80, 13);
  const CostOracle lazy(inst);  // sequential lazy materialization
  for (std::size_t f = 0; f < lazy.num_facilities(); ++f) {
    ASSERT_FALSE(lazy.row(f).empty());
  }
  for (const std::size_t w : widths()) {
    const CostOracle batch(inst);
    batch.ensure_all_rows(w);
    for (std::size_t f = 0; f < lazy.num_facilities(); ++f) {
      EXPECT_EQ(batch.row(f), lazy.row(f)) << "width " << w << " row " << f;
    }
  }
}

TEST(ExecBitIdentity, OracleRowsMatchScalarConnectionCost) {
  // SoA-vs-scalar: the packed-plane row kernel must reproduce the very
  // double FlInstance::connection_cost computes from the Point structs.
  const auto inst = instance(70, 14);
  const CostOracle oracle(inst);
  oracle.ensure_all_rows();
  for (std::size_t f = 0; f < oracle.num_facilities(); ++f) {
    const auto& row = oracle.row(f);
    for (std::size_t c = 0; c < oracle.num_clients(); ++c) {
      EXPECT_EQ(row[c], inst.connection_cost(f, c)) << f << "," << c;
    }
  }
}

TEST(ExecBitIdentity, NearestBatchAcrossThreadCounts) {
  const auto pts = points(3000, 15);
  const auto queries = points(500, 16);
  const SpatialIndex index(pts);
  std::vector<std::size_t> ref(queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    ref[k] = index.nearest(queries[k]);  // scalar definition
  }
  for (const std::size_t w : widths()) {
    EXPECT_EQ(index.nearest_batch(queries, w), ref) << "width " << w;
  }
}

TEST(ExecBitIdentity, WithinRadiusBatchAcrossThreadCounts) {
  const auto pts = points(2000, 17);
  const auto queries = points(200, 18);
  const SpatialIndex index(pts);
  std::vector<std::vector<std::size_t>> ref(queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    ref[k] = index.within_radius(queries[k], 150.0);
  }
  for (const std::size_t w : widths()) {
    EXPECT_EQ(index.within_radius_batch(queries, 150.0, w), ref)
        << "width " << w;
  }
}

TEST(ExecBitIdentity, ConcurrentSameRowMaterialization) {
  // TSan target: many pool lanes race to materialize the SAME rows. The
  // empty->building->ready protocol must hand every caller the one
  // published vector (no torn reads, no double builds).
  const auto inst = instance(16, 19);
  for (int round = 0; round < 8; ++round) {
    const CostOracle oracle(inst);
    esharing::exec::ThreadPool pool(4);
    std::vector<const std::vector<double>*> seen(64);
    pool.parallel_for(seen.size(), 1,
                      [&](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i) {
                          // All lanes hammer row (i % 4): heavy same-row
                          // contention on a handful of slots.
                          seen[i] = &oracle.row(i % 4);
                          ASSERT_EQ(seen[i]->size(), oracle.num_clients());
                        }
                      });
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], &oracle.row(i % 4));  // one published row object
      EXPECT_EQ(*seen[i], oracle.row(i % 4));
    }
    // Sorted rows run the same protocol on their own state array.
    pool.parallel_for(32, 1, [&](std::size_t b, std::size_t e, std::size_t) {
      for (std::size_t i = b; i < e; ++i) {
        ASSERT_EQ(oracle.sorted_row(i % 4).size(), oracle.num_clients());
      }
    });
  }
}

}  // namespace
