#include "solver/online_kmeans.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

TEST(OnlineKMeans, RejectsBadParameters) {
  EXPECT_THROW(OnlineKMeans(0, 100, 1), std::invalid_argument);
  EXPECT_THROW(OnlineKMeans(5, 0, 1), std::invalid_argument);
}

TEST(OnlineKMeans, WarmupTakesFirstKPlusOnePoints) {
  OnlineKMeans km(3, 100, 1);
  for (int i = 0; i < 4; ++i) {
    const auto d = km.process({i * 10.0, 0.0});
    EXPECT_TRUE(d.opened);
  }
  EXPECT_EQ(km.num_open(), 4u);
  EXPECT_GT(km.facility_cost(), 0.0);
}

TEST(OnlineKMeans, RepeatedPointNeverBecomesNewCenter) {
  OnlineKMeans km(2, 100, 2);
  for (int i = 0; i < 3; ++i) (void)km.process({i * 100.0, 0.0});
  for (int i = 0; i < 50; ++i) {
    const auto d = km.process({0, 0});
    EXPECT_FALSE(d.opened);
    EXPECT_EQ(d.facility, 0u);
  }
}

TEST(OnlineKMeans, FarPointOpensWithProbabilityOne) {
  OnlineKMeans km(2, 100, 3);
  for (int i = 0; i < 3; ++i) (void)km.process({i * 10.0, 0.0});
  const auto d = km.process({1e6, 1e6});
  EXPECT_TRUE(d.opened);
}

TEST(OnlineKMeans, PhaseAdvancesAndCostDoubles) {
  // Stream widely scattered points so centers keep opening until the phase
  // budget trips.
  OnlineKMeans km(1, 8, 4);  // budget = ceil(3 * (1 + ln 8)) = 10
  stats::Rng rng(5);
  const double f0_phasecost[1] = {0.0};
  (void)f0_phasecost;
  double f_after_warmup = 0.0;
  int opened = 0;
  for (int i = 0; i < 4000 && km.phase() == 1; ++i) {
    const Point p{rng.uniform(0.0, 1e7), rng.uniform(0.0, 1e7)};
    const auto d = km.process(p);
    if (km.num_open() == 2 && f_after_warmup == 0.0) {
      f_after_warmup = km.facility_cost();
    }
    opened += d.opened ? 1 : 0;
  }
  EXPECT_GE(km.phase(), 2);
  EXPECT_DOUBLE_EQ(km.facility_cost(), 2.0 * f_after_warmup);
}

TEST(OnlineKMeans, ConnectionCostIsLinearDistance) {
  OnlineKMeans km(1, 100, 6);
  (void)km.process({0, 0});
  (void)km.process({10, 0});
  // With huge f (tiny warmup dist would give small f; instead test via a
  // non-opened decision's reported cost against the nearest center).
  for (int i = 0; i < 200; ++i) {
    const auto d = km.process({3, 4});
    if (!d.opened) {
      const double dist_to_center =
          geo::distance(km.centers()[d.facility], {3, 4});
      EXPECT_DOUBLE_EQ(d.connection_cost, dist_to_center);
      return;
    }
  }
  FAIL() << "point at distance 5 was always opened";
}

TEST(OnlineKMeans, OverOpensComparedToMeyersonStyleTarget) {
  // Table V's qualitative finding: online k-means opens the most stations.
  OnlineKMeans km(5, 500, 7);
  stats::Rng rng(8);
  for (const Point p :
       stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 500)) {
    (void)km.process(p);
  }
  EXPECT_GT(km.num_open(), 10u);  // far above the k=5 target
}

TEST(OnlineKMeans, NegativeWeightRejected) {
  OnlineKMeans km(2, 10, 9);
  EXPECT_THROW((void)km.process({0, 0}, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
