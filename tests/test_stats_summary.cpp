#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include <stdexcept>

namespace esharing::stats {
namespace {

TEST(Summary, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(mean({7.0}), 7.0);
}

TEST(Summary, MeanThrowsOnEmpty) {
  EXPECT_THROW((void)mean({}), std::invalid_argument);
}

TEST(Summary, VarianceIsUnbiased) {
  // Sample variance of {2,4,4,4,5,5,7,9} with n-1 = 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
}

TEST(Summary, StddevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(stddev({1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(stddev({0.0, 2.0}), std::sqrt(2.0), 1e-12);
}

TEST(Summary, RmseOfKnownVectors) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(Summary, RmseRejectsMismatchedSizes) {
  EXPECT_THROW((void)rmse({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)rmse({}, {}), std::invalid_argument);
}

TEST(Summary, MaeOfKnownVectors) {
  EXPECT_DOUBLE_EQ(mae({1, 2}, {2, 4}), 1.5);
  EXPECT_THROW((void)mae({1.0}, {}), std::invalid_argument);
}

TEST(Summary, QuantileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Summary, QuantileValidatesInput) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Summary, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Summary, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 5, 9}), 0.0);
}

TEST(Summary, PearsonValidatesInput) {
  EXPECT_THROW((void)pearson({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Accumulator, MatchesBatchStatistics) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  Accumulator acc;
  for (double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), mean(v), 1e-12);
  EXPECT_NEAR(acc.variance(), variance(v), 1e-12);
  EXPECT_NEAR(acc.stddev(), stddev(v), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, EmptyThrows) {
  const Accumulator acc;
  EXPECT_THROW((void)acc.mean(), std::logic_error);
  EXPECT_THROW((void)acc.min(), std::logic_error);
  EXPECT_THROW((void)acc.max(), std::logic_error);
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

}  // namespace
}  // namespace esharing::stats
