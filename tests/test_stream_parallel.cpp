/// Parallel sharded ingestion (stream::Pipeline on the exec pool):
///
///   * StreamBatchPublish — EventBus::publish_batch semantics: one seq
///     range, per-shard FIFO, policy-faithful backpressure, and exact
///     equivalence with per-event publish.
///   * StreamParallelMatrix — the determinism tentpole: placer decisions
///     and checkpoint bytes across (shards 1/4/8 × pool widths 1/2/8),
///     with regime checks and re-anchoring enabled.
///   * StreamPipelineFacade — the unified config/facade: validation
///     propagation, transport vs serving modes, replay equivalence with
///     replay_log, checkpoint round-trips, merge-stall accounting.
///   * StreamPeacockFix — the 8-shard cliff: the stream default never
///     takes the O((n+m)^3) exact Peacock path, and neither the FF-only
///     default nor the stratified sample budget changes decisions or KS
///     verdicts.
///   * StreamLaneHammer — TSan target: concurrent batch publishers against
///     parallel lane drains on a small kBlock bus.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/esharing.h"
#include "exec/thread_pool.h"
#include "stats/rng.h"
#include "stats/spatial.h"
#include "stream/pipeline.h"
#include "stream/replay.h"

namespace esharing::stream {
namespace {

using data::DemandSite;
using geo::Point;

std::vector<DemandSite> two_cluster_sites() {
  std::vector<DemandSite> sites;
  std::size_t cell = 0;
  for (double dx : {0.0, 100.0, 200.0}) {
    sites.push_back({{dx + 100.0, 100.0}, 10.0, cell++});
    sites.push_back({{dx + 2400.0, 2500.0}, 8.0, cell++});
  }
  return sites;
}

core::ESharingConfig system_config() {
  core::ESharingConfig cfg;
  cfg.placer.ks_period = 0;
  cfg.placer.adaptive_type = false;
  return cfg;
}

/// A planned, online system plus the KS sample it was started with.
struct OnlineSystem {
  core::ESharing system;
  std::vector<Point> sample;

  explicit OnlineSystem(std::uint64_t seed) : system(system_config(), seed) {
    (void)system.plan_offline(two_cluster_sites(),
                              [](Point) { return 2000.0; });
    stats::Rng rng(seed);
    sample = stats::uniform_points(rng, {{0, 0}, {3000, 3000}}, 120);
    system.start_online(sample);
  }
};

/// Trip-end requests with sparse battery telemetry woven in.
std::vector<Event> mixed_log(std::uint64_t seed, int n) {
  stats::Rng rng(seed);
  const auto points =
      stats::uniform_points(rng, {{0, 0}, {3000, 3000}},
                            static_cast<std::size_t>(n));
  std::vector<Event> log;
  log.reserve(points.size() + points.size() / 9);
  for (std::size_t i = 0; i < points.size(); ++i) {
    Event e;
    e.kind = EventKind::kTripEnd;
    e.time = static_cast<data::Seconds>(i * 30);
    e.where = points[i];
    log.push_back(e);
    if (i % 9 == 4) {
      Event b;
      b.kind = EventKind::kBatteryLevel;
      b.time = e.time + 1;
      b.where = e.where;
      b.bike_id = static_cast<std::int64_t>(i % 40);
      b.soc = 0.05 + 0.01 * static_cast<double>(i % 11);
      log.push_back(b);
    }
  }
  return log;
}

void expect_same_decisions(const std::vector<solver::OnlineDecision>& a,
                           const std::vector<solver::OnlineDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].opened, b[i].opened) << "decision " << i;
    EXPECT_EQ(a[i].facility, b[i].facility) << "decision " << i;
    EXPECT_DOUBLE_EQ(a[i].connection_cost, b[i].connection_cost)
        << "decision " << i;
  }
}

void expect_same_stations(const std::vector<Point>& a,
                          const std::vector<Point>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x) << "station " << i;
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y) << "station " << i;
  }
}

/// RAII width override so a failing assertion cannot leak a wide pool
/// into later tests.
struct ScopedThreads {
  std::size_t original;
  explicit ScopedThreads(std::size_t width) : original(exec::global_threads()) {
    exec::set_global_threads(width);
  }
  ~ScopedThreads() { exec::set_global_threads(original); }
};

// --- StreamBatchPublish -----------------------------------------------------

TEST(StreamBatchPublish, MatchesPerEventPublishExactly) {
  const auto log = mixed_log(3, 120);
  EventBusConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 256;
  cfg.max_batch = 64;
  EventBus one_by_one(cfg);
  EventBus batched(cfg);

  for (const Event& e : log) ASSERT_TRUE(one_by_one.publish(e));
  EXPECT_EQ(batched.publish_batch(log), log.size());

  std::vector<Event> a;
  std::vector<Event> b;
  EXPECT_EQ(one_by_one.drain_all_ordered(a), log.size());
  EXPECT_EQ(batched.drain_all_ordered(b), log.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq) << "event " << i;
    EXPECT_DOUBLE_EQ(a[i].where.x, b[i].where.x) << "event " << i;
    EXPECT_DOUBLE_EQ(a[i].where.y, b[i].where.y) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
  }
  EXPECT_EQ(one_by_one.stats().published, batched.stats().published);
  EXPECT_EQ(batched.next_seq(), log.size());
}

TEST(StreamBatchPublish, StampsOneContiguousRangeInSpanOrder) {
  const auto log = mixed_log(9, 80);
  EventBusConfig cfg;
  cfg.shard_count = 8;
  EventBus bus(cfg);
  EXPECT_EQ(bus.publish_batch(log), log.size());

  // Per shard: FIFO in ascending seq; merged: exactly 0..n-1.
  std::vector<Event> merged;
  for (std::size_t s = 0; s < bus.shard_count(); ++s) {
    std::vector<Event> shard_events;
    while (bus.drain(s, shard_events) > 0) {
    }
    for (std::size_t i = 1; i < shard_events.size(); ++i) {
      EXPECT_LT(shard_events[i - 1].seq, shard_events[i].seq)
          << "shard " << s << " event " << i;
    }
    merged.insert(merged.end(), shard_events.begin(), shard_events.end());
  }
  ASSERT_EQ(merged.size(), log.size());
  std::sort(merged.begin(), merged.end(), BySeq{});
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, i);
  }
}

TEST(StreamBatchPublish, RejectShedsTheOverflowingTail) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 8;
  cfg.policy = BackpressurePolicy::kReject;
  EventBus bus(cfg);
  const auto log = mixed_log(1, 20);
  ASSERT_GT(log.size(), 8u);

  EXPECT_EQ(bus.publish_batch(log), 8u);
  EXPECT_EQ(bus.stats().rejected, log.size() - 8);
  EXPECT_EQ(bus.pending(0), 8u);

  // The accepted prefix is the first 8 events; a drained ring accepts the
  // next batch again.
  std::vector<Event> out;
  while (bus.drain(0, out) > 0) {
  }
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].seq, i);
  EXPECT_EQ(bus.publish_batch(std::span<const Event>(log).subspan(0, 4)), 4u);
}

TEST(StreamBatchPublish, DropOldestKeepsTheNewestEvents) {
  EventBusConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 8;
  cfg.max_batch = 8;
  cfg.policy = BackpressurePolicy::kDropOldest;
  EventBus bus(cfg);
  const auto log = mixed_log(2, 20);

  EXPECT_EQ(bus.publish_batch(log), log.size());
  EXPECT_EQ(bus.stats().dropped_oldest, log.size() - 8);
  std::vector<Event> out;
  while (bus.drain(0, out) > 0) {
  }
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, log.size() - 8 + i);
  }
}

TEST(StreamBatchPublish, EmptyBatchIsANoOp) {
  EventBus bus(EventBusConfig{});
  EXPECT_EQ(bus.publish_batch({}), 0u);
  EXPECT_EQ(bus.next_seq(), 0u);
  EXPECT_EQ(bus.stats().published, 0u);
}

// --- StreamParallelMatrix ---------------------------------------------------

struct MatrixRun {
  std::vector<solver::OnlineDecision> decisions;
  std::vector<Point> stations;
  std::string checkpoint;
  std::uint64_t reanchors{0};
  std::uint64_t regime_checks{0};
};

MatrixRun run_matrix(std::size_t shards, std::size_t width,
                     const std::vector<Event>& log) {
  const ScopedThreads threads(width);
  OnlineSystem sys(31);
  PipelineConfig cfg;
  cfg.bus.shard_count = shards;
  cfg.bus.queue_capacity = 64;  // forces many mid-stream pump rounds
  cfg.bus.max_batch = 32;
  cfg.placer.regime_check_period = 16;
  cfg.placer.regime_min_samples = 8;
  cfg.placer.reanchor_period = 100;
  cfg.lanes = 0;  // lanes follow the pool width under test
  Pipeline pipeline(sys.system, sys.sample, cfg);

  const auto result = pipeline.replay(log);
  MatrixRun out;
  out.decisions = result.decisions;
  out.stations = sys.system.placer().active_locations();
  std::ostringstream blob;
  pipeline.save_checkpoint(blob);
  out.checkpoint = blob.str();
  out.reanchors = pipeline.placer_driver().reanchors();
  for (std::size_t s = 0; s < pipeline.placer_driver().shard_count(); ++s) {
    out.regime_checks += pipeline.placer_driver().shard_regime(s).checks;
  }
  return out;
}

TEST(StreamParallelMatrix, DecisionsBitIdenticalAtEveryShardAndThreadCount) {
  const auto log = mixed_log(77, 400);
  const auto baseline = run_matrix(1, 1, log);
  EXPECT_GT(baseline.reanchors, 0u);    // the cadence actually fired
  EXPECT_GT(baseline.regime_checks, 0u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    // Checkpoint bytes depend on the shard layout (per-shard states), so
    // byte-identity is asserted across thread widths within a shard count;
    // decisions and stations are identical across the whole matrix.
    std::string reference_checkpoint;
    for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
      const auto run = run_matrix(shards, width, log);
      expect_same_decisions(baseline.decisions, run.decisions);
      expect_same_stations(baseline.stations, run.stations);
      EXPECT_EQ(run.reanchors, baseline.reanchors)
          << shards << " shards, " << width << " threads";
      if (reference_checkpoint.empty()) {
        reference_checkpoint = run.checkpoint;
      } else {
        EXPECT_TRUE(run.checkpoint == reference_checkpoint)
            << "checkpoint bytes diverged at " << shards << " shards, "
            << width << " threads";
      }
    }
  }
}

TEST(StreamParallelMatrix, ConsumeBatchMatchesPerEventConsume) {
  const auto log = mixed_log(13, 250);
  OnlineSystem a(41);
  OnlineSystem b(41);
  EventBusConfig bus_cfg;
  bus_cfg.shard_count = 4;
  EventBus bus_a(bus_cfg);
  EventBus bus_b(bus_cfg);
  PlacerDriverConfig cfg;
  cfg.regime_check_period = 16;
  cfg.regime_min_samples = 8;
  cfg.reanchor_period = 75;
  OnlinePlacerDriver per_event(a.system, bus_a, a.sample, cfg);
  OnlinePlacerDriver batched(b.system, bus_b, b.sample, cfg);

  // Stamp one shared seq order through bus A, consume it both ways.
  ASSERT_EQ(bus_a.publish_batch(log), log.size());
  std::vector<Event> stamped;
  bus_a.drain_all_ordered(stamped);

  std::vector<solver::OnlineDecision> one_by_one;
  for (const Event& e : stamped) {
    const auto d = per_event.consume(e);
    if (d.has_value()) one_by_one.push_back(*d);
  }
  std::vector<solver::OnlineDecision> in_batches;
  // Uneven batch boundaries, including mid-reanchor-window cuts.
  const std::size_t cuts[] = {37, 118, 119, 240, stamped.size()};
  std::size_t from = 0;
  for (const std::size_t to : cuts) {
    batched.consume_batch(
        std::span<const Event>(stamped).subspan(from, to - from),
        /*lanes=*/2, &in_batches);
    from = to;
  }

  expect_same_decisions(one_by_one, in_batches);
  expect_same_stations(a.system.placer().active_locations(),
                       b.system.placer().active_locations());
  EXPECT_EQ(per_event.reanchors(), batched.reanchors());
  EXPECT_EQ(per_event.events_consumed(), batched.events_consumed());
  for (std::size_t s = 0; s < per_event.shard_count(); ++s) {
    EXPECT_EQ(per_event.shard_regime(s).checks, batched.shard_regime(s).checks)
        << "shard " << s;
    EXPECT_DOUBLE_EQ(per_event.shard_regime(s).similarity,
                     batched.shard_regime(s).similarity)
        << "shard " << s;
  }
}

// --- StreamPipelineFacade ---------------------------------------------------

TEST(StreamPipelineFacade, ValidatesEveryNestedConfig) {
  PipelineConfig bad_bus;
  bad_bus.bus.shard_count = 0;
  EXPECT_THROW(Pipeline{bad_bus}, std::invalid_argument);

  PipelineConfig bad_placer;
  bad_placer.placer.ks_sample_budget = 2;
  EXPECT_THROW(Pipeline{bad_placer}, std::invalid_argument);

  PipelineConfig bad_incentive;
  bad_incentive.incentive.assign_radius_m = 0.0;
  EXPECT_THROW(Pipeline{bad_incentive}, std::invalid_argument);

  EXPECT_NO_THROW(PipelineConfig{}.validate());
}

TEST(StreamPipelineFacade, TransportModeGuardsTheServingSurface) {
  PipelineConfig cfg;
  cfg.bus.shard_count = 2;
  Pipeline pipeline(cfg);
  EXPECT_FALSE(pipeline.serving());
  EXPECT_THROW((void)pipeline.placer_driver(), std::logic_error);
  EXPECT_THROW((void)pipeline.incentive_driver(), std::logic_error);
  EXPECT_THROW((void)pipeline.pump(), std::logic_error);
  EXPECT_THROW((void)pipeline.replay({}), std::logic_error);
  std::ostringstream blob;
  EXPECT_THROW(pipeline.save_checkpoint(blob), std::logic_error);

  // pump_into delivers merged seq order.
  const auto log = mixed_log(21, 90);
  EXPECT_EQ(pipeline.publish_batch(log), log.size());
  std::vector<std::uint64_t> seqs;
  EXPECT_EQ(pipeline.pump_into([&](const Event& e) { seqs.push_back(e.seq); }),
            log.size());
  ASSERT_EQ(seqs.size(), log.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.merged_events, log.size());
  EXPECT_EQ(stats.lane_events, log.size());
  EXPECT_EQ(stats.merge_stalls, 0u);
  EXPECT_GT(stats.pump_rounds, 0u);
  EXPECT_GT(stats.lane_occupancy, 0.0);
}

TEST(StreamPipelineFacade, MergeStallsCountSeqGaps) {
  PipelineConfig cfg;
  cfg.bus.shard_count = 1;
  cfg.bus.queue_capacity = 8;
  cfg.bus.max_batch = 8;
  cfg.bus.policy = BackpressurePolicy::kReject;
  Pipeline pipeline(cfg);
  const auto log = mixed_log(8, 20);

  // 8 accepted, the rest shed: their seqs are consumed but never arrive.
  EXPECT_EQ(pipeline.publish_batch(log), 8u);
  EXPECT_EQ(pipeline.pump_into([](const Event&) {}), 8u);
  EXPECT_EQ(pipeline.stats().merge_stalls, 0u);

  // The next accepted event starts past the shed range — one gap.
  EXPECT_EQ(pipeline.publish_batch(std::span<const Event>(log).subspan(0, 2)),
            2u);
  EXPECT_EQ(pipeline.pump_into([](const Event&) {}), 2u);
  EXPECT_EQ(pipeline.stats().merge_stalls, 1u);
}

TEST(StreamPipelineFacade, ReplayMatchesReplayLogBitForBit) {
  const auto log = mixed_log(63, 300);

  OnlineSystem manual(53);
  EventBusConfig bus_cfg;
  bus_cfg.shard_count = 4;
  bus_cfg.queue_capacity = 64;
  bus_cfg.max_batch = 32;
  EventBus bus(bus_cfg);
  PlacerDriverConfig driver_cfg;
  driver_cfg.regime_check_period = 16;
  driver_cfg.regime_min_samples = 8;
  OnlinePlacerDriver driver(manual.system, bus, manual.sample, driver_cfg);
  const auto expected = replay_log(bus, driver, log);

  OnlineSystem facade(53);
  PipelineConfig cfg;
  cfg.bus = bus_cfg;
  cfg.placer = driver_cfg;
  cfg.lanes = 2;
  Pipeline pipeline(facade.system, facade.sample, cfg);
  const auto got = pipeline.replay(log);

  EXPECT_EQ(got.published, expected.published);
  EXPECT_EQ(got.consumed, expected.consumed);
  expect_same_decisions(expected.decisions, got.decisions);
  expect_same_stations(manual.system.placer().active_locations(),
                       facade.system.placer().active_locations());
}

TEST(StreamPipelineFacade, CheckpointRoundTripContinuesBitIdentically) {
  const auto log = mixed_log(5, 300);
  const std::size_t cut = 150;
  const std::vector<Event> prefix(log.begin(), log.begin() + cut);
  const std::vector<Event> suffix(log.begin() + cut, log.end());

  PipelineConfig cfg;
  cfg.bus.shard_count = 4;
  cfg.bus.queue_capacity = 64;
  cfg.bus.max_batch = 32;
  cfg.placer.regime_check_period = 16;
  cfg.placer.regime_min_samples = 8;
  cfg.placer.reanchor_period = 100;
  cfg.lanes = 2;

  OnlineSystem sys_a(29);
  Pipeline a(sys_a.system, sys_a.sample, cfg);
  (void)a.replay(prefix);
  std::stringstream blob;
  a.save_checkpoint(blob);

  OnlineSystem sys_b(29);
  Pipeline b(sys_b.system, sys_b.sample, cfg);
  const auto info = b.restore_checkpoint(blob);
  EXPECT_EQ(info.events_consumed, prefix.size());
  EXPECT_EQ(info.shard_count, 4u);

  const auto rest_a = a.replay(suffix);
  const auto rest_b = b.replay(suffix);
  expect_same_decisions(rest_a.decisions, rest_b.decisions);

  std::ostringstream final_a;
  std::ostringstream final_b;
  a.save_checkpoint(final_a);
  b.save_checkpoint(final_b);
  const std::string bytes_a = final_a.str();
  const std::string bytes_b = final_b.str();
  std::size_t diverge = 0;
  while (diverge < bytes_a.size() && diverge < bytes_b.size() &&
         bytes_a[diverge] == bytes_b[diverge]) {
    ++diverge;
  }
  EXPECT_TRUE(bytes_a == bytes_b)
      << "post-restore checkpoints diverged at byte " << diverge << " of "
      << bytes_a.size() << " / " << bytes_b.size();
}

// --- StreamPeacockFix -------------------------------------------------------

struct RegimeOut {
  std::vector<solver::OnlineDecision> decisions;
  std::vector<double> similarities;
  std::vector<std::uint64_t> checks;
};

RegimeOut run_regimes(std::size_t peacock_limit, std::size_t budget,
                      const std::vector<Event>& log) {
  OnlineSystem sys(23);
  PipelineConfig cfg;
  cfg.bus.shard_count = 2;
  cfg.placer.regime_check_period = 32;
  cfg.placer.regime_min_samples = 8;
  cfg.placer.ks_peacock_limit = peacock_limit;
  cfg.placer.ks_sample_budget = budget;
  cfg.lanes = 1;
  Pipeline pipeline(sys.system, sys.sample, cfg);
  RegimeOut out;
  out.decisions = pipeline.replay(log).decisions;
  const auto& driver = pipeline.placer_driver();
  for (std::size_t s = 0; s < driver.shard_count(); ++s) {
    out.similarities.push_back(driver.shard_regime(s).similarity);
    out.checks.push_back(driver.shard_regime(s).checks);
  }
  return out;
}

TEST(StreamPeacockFix, FfOnlyDefaultPinsTheExactPathVerdicts) {
  const auto log = mixed_log(42, 240);
  const auto ff_only = run_regimes(0, 0, log);       // the stream default
  const auto exact = run_regimes(1 << 20, 0, log);   // legacy cubic path

  // Regime checks never influence decisions — and the two statistics agree
  // on the verdict: similarities within a few points on every shard.
  expect_same_decisions(exact.decisions, ff_only.decisions);
  ASSERT_EQ(ff_only.checks.size(), exact.checks.size());
  for (std::size_t s = 0; s < ff_only.checks.size(); ++s) {
    EXPECT_EQ(ff_only.checks[s], exact.checks[s]) << "shard " << s;
    EXPECT_GT(ff_only.checks[s], 0u) << "shard " << s;
    EXPECT_NEAR(ff_only.similarities[s], exact.similarities[s], 10.0)
        << "shard " << s;
  }
}

TEST(StreamPeacockFix, SampleBudgetKeepsDecisionsAndVerdicts) {
  const auto log = mixed_log(47, 240);
  const auto full = run_regimes(0, 0, log);
  const auto budgeted = run_regimes(0, 48, log);

  expect_same_decisions(full.decisions, budgeted.decisions);
  ASSERT_EQ(full.checks.size(), budgeted.checks.size());
  for (std::size_t s = 0; s < full.checks.size(); ++s) {
    EXPECT_EQ(full.checks[s], budgeted.checks[s]) << "shard " << s;
    EXPECT_NEAR(full.similarities[s], budgeted.similarities[s], 12.0)
        << "shard " << s;
  }
}

TEST(StreamPeacockFix, StratifiedSampleIsDeterministicAndOrdered) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back({static_cast<double>(i), static_cast<double>(i * 2)});
  }
  const auto a = ks_stratified_sample(points, 16);
  const auto b = ks_stratified_sample(points, 16);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    if (i > 0) {
      EXPECT_LT(a[i - 1].x, a[i].x);  // strata ascend in time
    }
  }
  // Within budget or disabled: the input passes through unchanged.
  EXPECT_EQ(ks_stratified_sample(points, 100).size(), points.size());
  EXPECT_EQ(ks_stratified_sample(points, 0).size(), points.size());
  EXPECT_EQ(ks_stratified_sample({}, 8).size(), 0u);
}

// --- StreamLaneHammer -------------------------------------------------------

TEST(StreamLaneHammer, ConcurrentBatchPublishersAgainstParallelDrains) {
  // TSan target: 4 producer threads batch-publish onto a tiny kBlock bus
  // (so they block on backpressure) while the consumer runs parallel lane
  // drains. Conservation is exact: nothing lost, nothing duplicated.
  const ScopedThreads threads(4);
  PipelineConfig cfg;
  cfg.bus.shard_count = 4;
  cfg.bus.queue_capacity = 32;
  cfg.bus.max_batch = 16;
  cfg.lanes = 0;
  Pipeline pipeline(cfg);

  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kPerPublisher = 600;
  constexpr std::size_t kChunk = 25;
  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (std::size_t t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&pipeline, t] {
      stats::Rng rng(100 + t);
      std::vector<Event> chunk;
      chunk.reserve(kChunk);
      for (std::size_t i = 0; i < kPerPublisher; i += kChunk) {
        chunk.clear();
        for (std::size_t j = 0; j < kChunk; ++j) {
          Event e;
          e.kind = EventKind::kTripEnd;
          e.time = static_cast<data::Seconds>(i + j);
          e.where = {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)};
          chunk.push_back(e);
        }
        pipeline.publish_batch(chunk);  // kBlock: waits for the pump
      }
    });
  }

  constexpr std::size_t kExpected = kPublishers * kPerPublisher;
  std::atomic<std::size_t> seen{0};
  std::size_t consumed = 0;
  while (consumed < kExpected) {
    consumed += pipeline.pump_into(
        [&seen](const Event&) { seen.fetch_add(1, std::memory_order_relaxed); });
  }
  for (auto& publisher : publishers) publisher.join();
  consumed += pipeline.pump_into(
      [&seen](const Event&) { seen.fetch_add(1, std::memory_order_relaxed); });

  EXPECT_EQ(consumed, kExpected);
  EXPECT_EQ(seen.load(), kExpected);
  EXPECT_EQ(pipeline.bus().pending_total(), 0u);
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.bus.published, kExpected);
  EXPECT_EQ(stats.merged_events, kExpected);
  EXPECT_EQ(stats.bus.dropped_oldest, 0u);
  EXPECT_EQ(stats.bus.rejected, 0u);
}

}  // namespace
}  // namespace esharing::stream
