#include "geo/geohash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include <set>
#include <stdexcept>

#include "stats/rng.h"

namespace esharing::geo {
namespace {

TEST(Geohash, KnownReferenceValue) {
  // Canonical example: 57.64911, 10.40744 -> u4pruydqqvj
  EXPECT_EQ(geohash_encode({57.64911, 10.40744}, 11), "u4pruydqqvj");
}

TEST(Geohash, BeijingCellPrefix) {
  // Downtown Beijing hashes start with "wx4" at precision >= 3.
  const std::string h = geohash_encode({39.9042, 116.4074}, 7);
  EXPECT_EQ(h.substr(0, 3), "wx4");
  EXPECT_EQ(h.size(), 7u);
}

TEST(Geohash, DecodeRecoversCenterWithinCellError) {
  const LatLon original{39.9042, 116.4074};
  const auto cell = geohash_decode(geohash_encode(original, 7));
  EXPECT_LE(std::abs(cell.center.lat - original.lat), cell.lat_err);
  EXPECT_LE(std::abs(cell.center.lon - original.lon), cell.lon_err);
}

TEST(Geohash, SevenCharCellIsAbout153By117MetersAtBeijing) {
  const auto cell = geohash_decode(geohash_encode({39.9, 116.4}, 7));
  // 7 chars = 18 lon bits + 17 lat bits: 180/2^17 deg tall, 360/2^18 wide.
  const double lat_m = 2.0 * cell.lat_err * 111195.0;
  const double lon_m = 2.0 * cell.lon_err * 111195.0 *
                       std::cos(39.9 * std::numbers::pi / 180.0);
  EXPECT_NEAR(lat_m, 152.7, 5.0);
  EXPECT_NEAR(lon_m, 117.2, 5.0);
}

TEST(Geohash, LongerPrecisionShrinksCell) {
  const LatLon c{39.9, 116.4};
  const auto c5 = geohash_decode(geohash_encode(c, 5));
  const auto c9 = geohash_decode(geohash_encode(c, 9));
  EXPECT_LT(c9.lat_err, c5.lat_err);
  EXPECT_LT(c9.lon_err, c5.lon_err);
}

TEST(Geohash, PrefixPropertyHolds) {
  // A shorter geohash is a prefix of the longer one for the same point.
  const LatLon c{-33.8675, 151.207};
  EXPECT_EQ(geohash_encode(c, 4), geohash_encode(c, 9).substr(0, 4));
}

TEST(Geohash, RoundTripPropertyRandomPoints) {
  stats::Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const LatLon c{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
    const std::string h = geohash_encode(c, 8);
    ASSERT_TRUE(geohash_valid(h));
    const auto cell = geohash_decode(h);
    EXPECT_LE(std::abs(cell.center.lat - c.lat), cell.lat_err * 1.0000001);
    EXPECT_LE(std::abs(cell.center.lon - c.lon), cell.lon_err * 1.0000001);
    // Re-encoding the center reproduces the hash.
    EXPECT_EQ(geohash_encode(cell.center, 8), h);
  }
}

TEST(Geohash, EncodeRejectsBadInputs) {
  EXPECT_THROW(geohash_encode({91.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geohash_encode({0.0, 181.0}), std::invalid_argument);
  EXPECT_THROW(geohash_encode({0.0, 0.0}, 0), std::invalid_argument);
  EXPECT_THROW(geohash_encode({0.0, 0.0}, 23), std::invalid_argument);
}

TEST(Geohash, DecodeRejectsBadInputs) {
  EXPECT_THROW(static_cast<void>(geohash_decode("")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(geohash_decode("wx4a")), std::invalid_argument);  // 'a' invalid
  EXPECT_THROW(static_cast<void>(geohash_decode("wx4!")), std::invalid_argument);
}

TEST(Geohash, ValidityPredicate) {
  EXPECT_TRUE(geohash_valid("wx4g0bm"));
  EXPECT_FALSE(geohash_valid(""));
  EXPECT_FALSE(geohash_valid("aio"));  // a, i, o are not geohash digits
  EXPECT_FALSE(geohash_valid("wx4 g"));
}


TEST(GeohashNeighbors, AdjacentCellsAreOneCellApart) {
  const std::string h = geohash_encode({39.9, 116.4}, 7);
  const auto cell = geohash_decode(h);
  const std::string east = geohash_neighbor(h, 1, 0);
  const auto ecell = geohash_decode(east);
  EXPECT_NEAR(ecell.center.lon - cell.center.lon, 2.0 * cell.lon_err, 1e-9);
  EXPECT_NEAR(ecell.center.lat, cell.center.lat, 1e-9);
  const std::string north = geohash_neighbor(h, 0, 1);
  const auto ncell = geohash_decode(north);
  EXPECT_NEAR(ncell.center.lat - cell.center.lat, 2.0 * cell.lat_err, 1e-9);
}

TEST(GeohashNeighbors, RoundTripReturnsToStart) {
  const std::string h = geohash_encode({-12.34, 45.67}, 6);
  std::string walked = h;
  walked = geohash_neighbor(walked, 1, 0);
  walked = geohash_neighbor(walked, 0, 1);
  walked = geohash_neighbor(walked, -1, 0);
  walked = geohash_neighbor(walked, 0, -1);
  EXPECT_EQ(walked, h);
}

TEST(GeohashNeighbors, EightDistinctNeighbors) {
  const std::string h = geohash_encode({39.9, 116.4}, 7);
  const auto nbrs = geohash_neighbors(h);
  ASSERT_EQ(nbrs.size(), 8u);
  std::set<std::string> unique(nbrs.begin(), nbrs.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(unique.count(h), 0u);
  for (const auto& n : nbrs) {
    EXPECT_EQ(n.size(), h.size());
    EXPECT_TRUE(geohash_valid(n));
  }
}

TEST(GeohashNeighbors, WrapsAcrossDateline) {
  const std::string h = geohash_encode({0.0, 179.999}, 5);
  const std::string east = geohash_neighbor(h, 1, 0);
  const auto cell = geohash_decode(east);
  EXPECT_LT(cell.center.lon, 0.0);  // crossed into the western hemisphere
}

TEST(GeohashNeighbors, ClampsAtPole) {
  const std::string h = geohash_encode({89.99, 0.0}, 4);
  const std::string north = geohash_neighbor(h, 0, 5);
  const auto cell = geohash_decode(north);
  EXPECT_LE(cell.center.lat + cell.lat_err, 90.0 + 1e-9);
}

}  // namespace
}  // namespace esharing::geo
