#include "energy/battery.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::energy {
namespace {

EnergyConfig default_config() { return EnergyConfig{}; }

TEST(BikeFleet, ValidatesConstruction) {
  EXPECT_THROW(BikeFleet(0, default_config(), 1), std::invalid_argument);
  EnergyConfig bad = default_config();
  bad.consumption_per_km = 0.0;
  EXPECT_THROW(BikeFleet(10, bad, 1), std::invalid_argument);
  bad = default_config();
  bad.low_threshold = 1.5;
  EXPECT_THROW(BikeFleet(10, bad, 1), std::invalid_argument);
  bad = default_config();
  bad.low_tail_fraction = -0.1;
  EXPECT_THROW(BikeFleet(10, bad, 1), std::invalid_argument);
}

TEST(BikeFleet, InitialSocWithinBounds) {
  const BikeFleet fleet(500, default_config(), 2);
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    EXPECT_GE(fleet.soc(b), default_config().min_soc);
    EXPECT_LE(fleet.soc(b), 1.0);
  }
}

TEST(BikeFleet, InitialDistributionHasLowTail) {
  // Fig. 2(d): a majority healthy plus a visible low-battery tail.
  const BikeFleet fleet(2000, default_config(), 3);
  const double low = fleet.low_fraction();
  EXPECT_GT(low, 0.05);
  EXPECT_LT(low, 0.40);
}

TEST(BikeFleet, RideDrainsProportionallyToDistance) {
  BikeFleet fleet(3, default_config(), 4);
  fleet.set_soc(0, 0.8);
  const double after = fleet.ride(0, 5000.0);  // 5 km * 2%/km = 10%
  EXPECT_NEAR(after, 0.7, 1e-12);
  EXPECT_NEAR(fleet.soc(0), 0.7, 1e-12);
}

TEST(BikeFleet, RideClampsAtMinSoc) {
  BikeFleet fleet(2, default_config(), 5);
  fleet.set_soc(0, 0.05);
  EXPECT_DOUBLE_EQ(fleet.ride(0, 1e6), default_config().min_soc);
}

TEST(BikeFleet, RideRejectsNegativeDistance) {
  BikeFleet fleet(1, default_config(), 6);
  EXPECT_THROW((void)fleet.ride(0, -1.0), std::invalid_argument);
}

TEST(BikeFleet, CanRideChecksRemainingRange) {
  BikeFleet fleet(2, default_config(), 7);
  fleet.set_soc(0, 0.10);  // 10% - min 2% = 8% => 4 km range
  EXPECT_TRUE(fleet.can_ride(0, 3000.0));
  EXPECT_FALSE(fleet.can_ride(0, 5000.0));
}

TEST(BikeFleet, RechargeRestoresFull) {
  BikeFleet fleet(2, default_config(), 8);
  fleet.set_soc(1, 0.1);
  fleet.recharge(1);
  EXPECT_DOUBLE_EQ(fleet.soc(1), 1.0);
  EXPECT_FALSE(fleet.is_low(1));
}

TEST(BikeFleet, LowBatteryDetection) {
  BikeFleet fleet(4, default_config(), 9);
  fleet.set_soc(0, 0.10);
  fleet.set_soc(1, 0.19);
  fleet.set_soc(2, 0.20);  // exactly at threshold: not low (strict <)
  fleet.set_soc(3, 0.90);
  EXPECT_TRUE(fleet.is_low(0));
  EXPECT_TRUE(fleet.is_low(1));
  EXPECT_FALSE(fleet.is_low(2));
  EXPECT_FALSE(fleet.is_low(3));
  EXPECT_EQ(fleet.low_battery_bikes(), (std::vector<std::size_t>{0, 1}));
}

TEST(BikeFleet, SetSocClamps) {
  BikeFleet fleet(1, default_config(), 10);
  fleet.set_soc(0, 2.0);
  EXPECT_DOUBLE_EQ(fleet.soc(0), 1.0);
  fleet.set_soc(0, -1.0);
  EXPECT_DOUBLE_EQ(fleet.soc(0), default_config().min_soc);
}

TEST(BikeFleet, IndexBoundsChecked) {
  BikeFleet fleet(2, default_config(), 11);
  EXPECT_THROW((void)fleet.soc(2), std::out_of_range);
  EXPECT_THROW(fleet.set_soc(2, 0.5), std::out_of_range);
  EXPECT_THROW((void)fleet.ride(2, 1.0), std::out_of_range);
  EXPECT_THROW((void)fleet.can_ride(2, 1.0), std::out_of_range);
  EXPECT_THROW(fleet.recharge(2), std::out_of_range);
}

TEST(BikeFleet, DeterministicPerSeed) {
  const BikeFleet a(50, default_config(), 12), b(50, default_config(), 12);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.soc(i), b.soc(i));
  }
}

}  // namespace
}  // namespace esharing::energy
