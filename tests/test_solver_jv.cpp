#include "solver/jv_primal_dual.h"

#include <gtest/gtest.h>

#include "solver/exact.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

TEST(JvPrimalDual, SingleClusterOpensOne) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 5; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    costs.push_back(100.0);
  }
  const auto sol = jv_primal_dual(colocated_instance(clients, costs));
  EXPECT_EQ(sol.num_open(), 1u);
}

TEST(JvPrimalDual, DistantClustersOpenSeparately) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 4; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    clients.push_back({{100000.0 + i, 0.0}, 1.0});
    costs.push_back(50.0);
    costs.push_back(50.0);
  }
  const auto sol = jv_primal_dual(colocated_instance(clients, costs));
  EXPECT_EQ(sol.num_open(), 2u);
  EXPECT_LT(sol.connection_cost, 20.0);
}

TEST(JvPrimalDual, ZeroOpeningCostOpensEverywhere) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 4; ++i) {
    clients.push_back({{i * 100.0, 0.0}, 1.0});
    costs.push_back(0.0);
  }
  const auto sol = jv_primal_dual(colocated_instance(clients, costs));
  EXPECT_DOUBLE_EQ(sol.connection_cost, 0.0);
}

TEST(JvPrimalDual, AssignsToNearestOpen) {
  stats::Rng rng(1);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 30);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 2.0)});
    costs.push_back(rng.uniform(300.0, 1500.0));
  }
  const auto inst = colocated_instance(clients, costs);
  const auto sol = jv_primal_dual(inst);
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    const double assigned = inst.connection_cost(sol.assignment[j], j);
    for (std::size_t f : sol.open) {
      EXPECT_LE(assigned, inst.connection_cost(f, j) + 1e-9);
    }
  }
}

/// Property: within the proven factor 3 of the exact optimum (the refined
/// bound is 1.861; we assert 3 plus float slack).
class JvApproximationRatio : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JvApproximationRatio, WithinFactor3OfOptimum) {
  stats::Rng rng(GetParam());
  const std::size_t n = 6 + rng.index(7);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, n);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 4.0)});
    costs.push_back(rng.uniform(100.0, 2000.0));
  }
  const auto inst = colocated_instance(clients, costs);
  const auto jv = jv_primal_dual(inst);
  const auto best = exact_facility_location(inst);
  EXPECT_LE(jv.total_cost(), 3.0 * best.total_cost() + 1e-9);
  EXPECT_GE(jv.total_cost(), best.total_cost() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JvApproximationRatio,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(JvPrimalDual, ComparableToJmsOnLargerInstances) {
  // Both approximation algorithms should land in the same cost ballpark
  // (JMS typically wins — 1.61 vs 1.861 — but JV must stay within 2x).
  stats::Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pts = stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 80);
    std::vector<FlClient> clients;
    std::vector<double> costs;
    for (Point p : pts) {
      clients.push_back({p, 1.0});
      costs.push_back(rng.uniform(2000.0, 8000.0));
    }
    const auto inst = colocated_instance(clients, costs);
    const auto jv = jv_primal_dual(inst);
    const auto jms = jms_greedy(inst);
    EXPECT_LT(jv.total_cost(), 2.0 * jms.total_cost());
    EXPECT_LT(jms.total_cost(), 2.0 * jv.total_cost());
  }
}

TEST(JvPrimalDual, ValidatesInstance) {
  FlInstance empty;
  EXPECT_THROW((void)jv_primal_dual(empty), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::solver
