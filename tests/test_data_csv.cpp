#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace esharing::data {
namespace {

TripRecord sample_trip() {
  TripRecord t;
  t.order_id = 42;
  t.user_id = 7;
  t.bike_id = 99;
  t.bike_type = 2;
  t.start_time = 123456;
  t.start_geohash = "wx4g0bm";
  t.end_geohash = "wx4g5d2";
  return t;
}

TEST(TripCsv, RowRoundTrip) {
  const TripRecord t = sample_trip();
  const TripRecord back = from_csv_row(to_csv_row(t));
  EXPECT_EQ(back.order_id, t.order_id);
  EXPECT_EQ(back.user_id, t.user_id);
  EXPECT_EQ(back.bike_id, t.bike_id);
  EXPECT_EQ(back.bike_type, t.bike_type);
  EXPECT_EQ(back.start_time, t.start_time);
  EXPECT_EQ(back.start_geohash, t.start_geohash);
  EXPECT_EQ(back.end_geohash, t.end_geohash);
}

TEST(TripCsv, RowFormatMatchesMobikeLayout) {
  EXPECT_EQ(to_csv_row(sample_trip()), "42,7,99,2,123456,wx4g0bm,wx4g5d2");
  EXPECT_EQ(trip_csv_header(),
            "orderid,userid,bikeid,biketype,starttime,"
            "geohashed_start_loc,geohashed_end_loc");
}

TEST(TripCsv, StreamRoundTripPreservesAllTrips) {
  std::vector<TripRecord> trips;
  for (int i = 0; i < 10; ++i) {
    TripRecord t = sample_trip();
    t.order_id = i;
    t.start_time = i * 100;
    trips.push_back(t);
  }
  std::stringstream ss;
  write_trips_csv(ss, trips);
  const auto back = read_trips_csv(ss);
  ASSERT_EQ(back.size(), trips.size());
  for (std::size_t i = 0; i < trips.size(); ++i) {
    EXPECT_EQ(back[i].order_id, trips[i].order_id);
    EXPECT_EQ(back[i].start_time, trips[i].start_time);
  }
}

TEST(TripCsv, ReadSkipsBlankLines) {
  std::stringstream ss(trip_csv_header() + "\n\n" + to_csv_row(sample_trip()) +
                       "\n\n");
  EXPECT_EQ(read_trips_csv(ss).size(), 1u);
}

TEST(TripCsv, RejectsWrongColumnCount) {
  EXPECT_THROW((void)from_csv_row("1,2,3"), std::invalid_argument);
  EXPECT_THROW((void)from_csv_row("1,2,3,4,5,wx4g0bm,wx4g5d2,extra"),
               std::invalid_argument);
}

TEST(TripCsv, RejectsNonNumericIds) {
  EXPECT_THROW((void)from_csv_row("abc,7,99,2,0,wx4g0bm,wx4g5d2"),
               std::invalid_argument);
  EXPECT_THROW((void)from_csv_row("1,7,99,2,12x,wx4g0bm,wx4g5d2"),
               std::invalid_argument);
}

TEST(TripCsv, RejectsInvalidGeohash) {
  EXPECT_THROW((void)from_csv_row("1,7,99,2,0,alpha!!,wx4g5d2"),
               std::invalid_argument);
  EXPECT_THROW((void)from_csv_row("1,7,99,2,0,wx4g0bm,"),
               std::invalid_argument);
}

TEST(TripCsv, RejectsMissingOrWrongHeader) {
  std::stringstream empty;
  EXPECT_THROW((void)read_trips_csv(empty), std::invalid_argument);
  std::stringstream wrong("id,stuff\n");
  EXPECT_THROW((void)read_trips_csv(wrong), std::invalid_argument);
}

TEST(TripCsv, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/esharing_trips_test.csv";
  const std::vector<TripRecord> trips{sample_trip()};
  save_trips_csv(path, trips);
  const auto back = load_trips_csv(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].order_id, 42);
  std::remove(path.c_str());
}

TEST(TripCsv, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trips_csv("/nonexistent/path/trips.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace esharing::data
