#include "privacy/privacy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "data/synthetic_city.h"
#include "geo/geohash.h"
#include "stats/summary.h"

namespace esharing::privacy {
namespace {

using geo::Point;

TEST(Pseudonymize, StablePerSaltUnlinkableAcrossSalts) {
  EXPECT_EQ(pseudonymize(42, 1), pseudonymize(42, 1));
  EXPECT_NE(pseudonymize(42, 1), pseudonymize(42, 2));
  EXPECT_NE(pseudonymize(42, 1), pseudonymize(43, 1));
}

TEST(Pseudonymize, NoCollisionsOverDenseRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 20000; ++id) {
    seen.insert(pseudonymize(id, 7));
  }
  EXPECT_EQ(seen.size(), 20000u);  // bijective per salt
}

TEST(LambertWMinus1, KnownValues) {
  // W_{-1}(-1/e) = -1.
  EXPECT_NEAR(lambert_w_minus1(-1.0 / std::numbers::e), -1.0, 1e-6);
  // W_{-1}(-0.1) ~ -3.577152.
  EXPECT_NEAR(lambert_w_minus1(-0.1), -3.577152, 1e-5);
  // Defining identity w * e^w = x across the domain.
  for (double x : {-0.36, -0.3, -0.2, -0.1, -0.01, -1e-4}) {
    const double w = lambert_w_minus1(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10 + 1e-8 * std::abs(x));
    EXPECT_LE(w, -1.0 + 1e-9);  // branch -1 stays below -1
  }
}

TEST(LambertWMinus1, RejectsOutsideDomain) {
  EXPECT_THROW((void)lambert_w_minus1(0.0), std::invalid_argument);
  EXPECT_THROW((void)lambert_w_minus1(0.5), std::invalid_argument);
  EXPECT_THROW((void)lambert_w_minus1(-0.5), std::invalid_argument);
}

TEST(PlanarLaplace, ValidatesEpsilon) {
  EXPECT_THROW(PlanarLaplace(0.0), std::invalid_argument);
  EXPECT_THROW(PlanarLaplace(-1.0), std::invalid_argument);
}

TEST(PlanarLaplace, DisplacementMatchesGammaMean) {
  // Radius ~ Gamma(2, 1/eps): mean 2/eps, std sqrt(2)/eps.
  const double eps = 0.01;
  PlanarLaplace mech(eps);
  stats::Rng rng(3);
  std::vector<double> radii;
  for (int i = 0; i < 20000; ++i) {
    const Point q = mech.obfuscate({0, 0}, rng);
    radii.push_back(q.norm());
  }
  EXPECT_NEAR(stats::mean(radii), 2.0 / eps, 5.0);
  EXPECT_NEAR(stats::stddev(radii), std::sqrt(2.0) / eps, 5.0);
  EXPECT_DOUBLE_EQ(mech.expected_displacement(), 200.0);
}

TEST(PlanarLaplace, DirectionIsUniform) {
  PlanarLaplace mech(0.05);
  stats::Rng rng(4);
  int quadrant[4] = {0, 0, 0, 0};
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const Point q = mech.obfuscate({0, 0}, rng);
    quadrant[(q.x < 0 ? 0 : 1) + (q.y < 0 ? 0 : 2)]++;
  }
  for (int c : quadrant) EXPECT_NEAR(c, n / 4, n / 16);
}

TEST(PlanarLaplace, StrongerEpsilonMeansSmallerNoise) {
  stats::Rng rng(5);
  PlanarLaplace strong(0.001), weak(0.1);
  double d_strong = 0.0, d_weak = 0.0;
  for (int i = 0; i < 2000; ++i) {
    d_strong += strong.obfuscate({0, 0}, rng).norm();
    d_weak += weak.obfuscate({0, 0}, rng).norm();
  }
  EXPECT_GT(d_strong, 20.0 * d_weak);
}

class AnonymizeFixture : public ::testing::Test {
 protected:
  AnonymizeFixture() : city_(make_config(), 11), trips_(city_.generate_trips()) {}
  static data::CityConfig make_config() {
    data::CityConfig cfg;
    cfg.num_days = 2;
    cfg.trips_per_weekday = 300;
    cfg.trips_per_weekend_day = 250;
    cfg.num_bikes = 60;
    return cfg;
  }
  data::SyntheticCity city_;
  std::vector<data::TripRecord> trips_;
};

TEST_F(AnonymizeFixture, IdsArePseudonymizedConsistently) {
  stats::Rng rng(6);
  AnonymizeConfig cfg;
  cfg.epsilon = 0.0;  // no location noise: isolate id handling
  const auto anon = anonymize_trips(trips_, city_.projection(), cfg, rng);
  ASSERT_EQ(anon.size(), trips_.size());
  std::unordered_map<std::int64_t, std::int64_t> mapping;
  for (std::size_t i = 0; i < trips_.size(); ++i) {
    EXPECT_NE(anon[i].user_id, trips_[i].user_id);
    const auto [it, inserted] =
        mapping.emplace(trips_[i].user_id, anon[i].user_id);
    if (!inserted) {
      EXPECT_EQ(it->second, anon[i].user_id);  // stable
    }
    EXPECT_EQ(anon[i].order_id, trips_[i].order_id);
    EXPECT_EQ(anon[i].start_time, trips_[i].start_time);
  }
}

TEST_F(AnonymizeFixture, ZeroEpsilonKeepsLocations) {
  stats::Rng rng(7);
  AnonymizeConfig cfg;
  cfg.epsilon = 0.0;
  const auto anon = anonymize_trips(trips_, city_.projection(), cfg, rng);
  for (std::size_t i = 0; i < trips_.size(); ++i) {
    EXPECT_EQ(anon[i].end_geohash, trips_[i].end_geohash);
  }
}

TEST_F(AnonymizeFixture, ObfuscationDisplacesByExpectedScale) {
  stats::Rng rng(8);
  AnonymizeConfig cfg;
  cfg.epsilon = 0.02;  // expected displacement 100 m
  const auto anon = anonymize_trips(trips_, city_.projection(), cfg, rng);
  std::vector<double> displacement;
  for (std::size_t i = 0; i < trips_.size(); ++i) {
    const Point a = city_.projection().to_local(
        geo::geohash_decode(trips_[i].end_geohash).center);
    const Point b = city_.projection().to_local(
        geo::geohash_decode(anon[i].end_geohash).center);
    displacement.push_back(geo::distance(a, b));
    EXPECT_TRUE(geo::geohash_valid(anon[i].end_geohash));
  }
  EXPECT_NEAR(stats::mean(displacement), 100.0, 30.0);
}

TEST_F(AnonymizeFixture, ObfuscationImprovesKAnonymityGranularity) {
  // With strong noise the OD groups on a coarse grid blur together; the
  // audit utility must at least run and report sane values.
  const auto grid = city_.grid();
  const std::size_t k_raw = min_od_group_size(grid, city_.projection(), trips_);
  EXPECT_GE(k_raw, 1u);
  EXPECT_EQ(min_od_group_size(grid, city_.projection(), {}), 0u);
}

}  // namespace
}  // namespace esharing::privacy
