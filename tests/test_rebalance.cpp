#include "rebalance/rebalance.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "stats/rng.h"

namespace esharing::rebalance {
namespace {

using geo::Point;

TEST(ProportionalTargets, SplitsFleetByDemand) {
  const std::vector<StationInventory> stations{
      {{0, 0}, 6, 0}, {{100, 0}, 4, 0}, {{200, 0}, 0, 0}};
  const auto targets = proportional_targets(stations, {1.0, 1.0, 2.0});
  EXPECT_EQ(std::accumulate(targets.begin(), targets.end(), 0), 10);
  EXPECT_EQ(targets[2], 5);
  // 5 bikes over two equal-demand stations: a 3/2 split either way.
  EXPECT_EQ(targets[0] + targets[1], 5);
  EXPECT_LE(std::abs(targets[0] - targets[1]), 1);
}

TEST(ProportionalTargets, ZeroDemandStationsGetZero) {
  const std::vector<StationInventory> stations{{{0, 0}, 5, 0}, {{1, 0}, 5, 0}};
  const auto targets = proportional_targets(stations, {3.0, 0.0});
  EXPECT_EQ(targets[0], 10);
  EXPECT_EQ(targets[1], 0);
}

TEST(ProportionalTargets, RoundingConservesFleet) {
  stats::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<StationInventory> stations;
    std::vector<double> demand;
    int fleet = 0;
    const std::size_t n = 3 + rng.index(10);
    for (std::size_t i = 0; i < n; ++i) {
      const int bikes = static_cast<int>(rng.index(15));
      stations.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, bikes, 0});
      demand.push_back(rng.uniform(0.0, 5.0));
      fleet += bikes;
    }
    const auto targets = proportional_targets(stations, demand);
    EXPECT_EQ(std::accumulate(targets.begin(), targets.end(), 0), fleet);
    for (int t : targets) EXPECT_GE(t, 0);
  }
}

TEST(ProportionalTargets, Validates) {
  const std::vector<StationInventory> stations{{{0, 0}, 1, 0}};
  EXPECT_THROW((void)proportional_targets(stations, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)proportional_targets(stations, {-1.0}),
               std::invalid_argument);
}

TEST(PlanRebalancing, BalancedInputNeedsNoWork) {
  const std::vector<StationInventory> stations{{{0, 0}, 3, 3}, {{100, 0}, 2, 2}};
  const auto plan = plan_rebalancing(stations, {});
  EXPECT_TRUE(plan.stops.empty());
  EXPECT_TRUE(plan.balanced());
  EXPECT_EQ(plan.bikes_moved, 0);
}

TEST(PlanRebalancing, SimpleSurplusToDeficit) {
  const std::vector<StationInventory> stations{
      {{0, 0}, 10, 4}, {{500, 0}, 0, 6}};
  TruckConfig truck;
  truck.capacity = 10;
  const auto plan = plan_rebalancing(stations, truck);
  EXPECT_TRUE(plan.balanced());
  EXPECT_EQ(plan.bikes_moved, 6);
  const auto after = apply_plan(stations, plan, truck);
  EXPECT_EQ(after[0], 4);
  EXPECT_EQ(after[1], 6);
}

TEST(PlanRebalancing, CapacityForcesMultipleTrips) {
  const std::vector<StationInventory> stations{
      {{0, 0}, 12, 0}, {{500, 0}, 0, 12}};
  TruckConfig truck;
  truck.capacity = 4;
  const auto plan = plan_rebalancing(stations, truck);
  EXPECT_TRUE(plan.balanced());
  EXPECT_EQ(plan.bikes_moved, 12);
  // Three load/unload round trips: route at least 5 legs of 500 m.
  EXPECT_GE(plan.stops.size(), 6u);
  EXPECT_GE(plan.route_length_m, 2500.0);
}

TEST(PlanRebalancing, SurplusBeyondDeficitStaysPut) {
  // 8 surplus but only 3 deficit: exactly 3 move.
  const std::vector<StationInventory> stations{
      {{0, 0}, 10, 2}, {{500, 0}, 1, 4}};
  const auto plan = plan_rebalancing(stations, {});
  EXPECT_EQ(plan.bikes_moved, 3);
  const auto after = apply_plan(stations, plan, {});
  EXPECT_EQ(after[0], 7);  // keeps 5 extra
  EXPECT_EQ(after[1], 4);
  EXPECT_EQ(plan.residual_imbalance, 5);
}

TEST(PlanRebalancing, DeficitBeyondSurplusPartiallyFilled) {
  const std::vector<StationInventory> stations{
      {{0, 0}, 5, 2}, {{500, 0}, 0, 10}};
  const auto plan = plan_rebalancing(stations, {});
  EXPECT_EQ(plan.bikes_moved, 3);
  const auto after = apply_plan(stations, plan, {});
  EXPECT_EQ(after[1], 3);
  EXPECT_EQ(plan.residual_imbalance, 7);
}

TEST(PlanRebalancing, Validates) {
  const std::vector<StationInventory> ok{{{0, 0}, 1, 1}};
  TruckConfig bad;
  bad.capacity = 0;
  EXPECT_THROW((void)plan_rebalancing(ok, bad), std::invalid_argument);
  const std::vector<StationInventory> negative{{{0, 0}, -1, 0}};
  EXPECT_THROW((void)plan_rebalancing(negative, {}), std::invalid_argument);
}

TEST(PlanRebalancing, RandomInstancesAlwaysFeasibleAndTight) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<StationInventory> stations;
    const std::size_t n = 2 + rng.index(12);
    int fleet = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const int bikes = static_cast<int>(rng.index(10));
      stations.push_back(
          {{rng.uniform(0, 2000), rng.uniform(0, 2000)}, bikes, 0});
      fleet += bikes;
    }
    // Random demand-proportional targets conserve the fleet.
    std::vector<double> demand;
    for (std::size_t i = 0; i < n; ++i) demand.push_back(rng.uniform(0.0, 3.0));
    const auto targets = proportional_targets(stations, demand);
    for (std::size_t i = 0; i < n; ++i) stations[i].target = targets[i];

    TruckConfig truck;
    truck.capacity = 1 + static_cast<int>(rng.index(8));
    const auto plan = plan_rebalancing(stations, truck);
    // apply_plan validates loads/capacity internally — it must not throw.
    const auto after = apply_plan(stations, plan, truck);
    // Conserved fleet and a fully balanced outcome (targets conserve the
    // total, so a capacity-limited truck can always finish eventually).
    EXPECT_EQ(std::accumulate(after.begin(), after.end(), 0), fleet);
    int residual = 0;
    for (std::size_t i = 0; i < n; ++i) {
      residual += std::abs(after[i] - stations[i].target);
    }
    EXPECT_EQ(residual, plan.residual_imbalance);
    EXPECT_TRUE(plan.balanced()) << "trial " << trial;
  }
}

TEST(TotalImbalance, SumsAbsoluteDifferences) {
  EXPECT_EQ(total_imbalance({{{0, 0}, 5, 2}, {{1, 0}, 0, 3}}), 6);
  EXPECT_EQ(total_imbalance({}), 0);
}

}  // namespace
}  // namespace esharing::rebalance
