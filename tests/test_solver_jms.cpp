#include "solver/jms_greedy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "solver/exact.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

TEST(JmsGreedy, SingleClusterOpensOneFacility) {
  // Tight cluster with expensive openings: one facility should serve all.
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 5; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    costs.push_back(100.0);
  }
  const auto sol = jms_greedy(colocated_instance(clients, costs));
  EXPECT_EQ(sol.num_open(), 1u);
  EXPECT_DOUBLE_EQ(sol.opening_cost, 100.0);
}

TEST(JmsGreedy, CheapOpeningsOpenEverywhere) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 5; ++i) {
    clients.push_back({{i * 100.0, 0.0}, 1.0});
    costs.push_back(0.001);
  }
  const auto sol = jms_greedy(colocated_instance(clients, costs));
  EXPECT_EQ(sol.num_open(), 5u);
  EXPECT_DOUBLE_EQ(sol.connection_cost, 0.0);
}

TEST(JmsGreedy, TwoDistantClustersOpenTwoFacilities) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 4; ++i) {
    clients.push_back({{static_cast<double>(i), 0.0}, 1.0});
    clients.push_back({{10000.0 + i, 0.0}, 1.0});
    costs.push_back(50.0);
    costs.push_back(50.0);
  }
  const auto sol = jms_greedy(colocated_instance(clients, costs));
  EXPECT_EQ(sol.num_open(), 2u);
  EXPECT_LT(sol.connection_cost, 20.0);
}

TEST(JmsGreedy, EveryClientAssignedToNearestOpen) {
  stats::Rng rng(1);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 40);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 3.0)});
    costs.push_back(rng.uniform(500.0, 1500.0));
  }
  const auto inst = colocated_instance(clients, costs);
  const auto sol = jms_greedy(inst);
  ASSERT_EQ(sol.assignment.size(), inst.clients.size());
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    const double assigned = inst.connection_cost(sol.assignment[j], j);
    for (std::size_t f : sol.open) {
      EXPECT_LE(assigned, inst.connection_cost(f, j) + 1e-9);
    }
  }
}

TEST(JmsGreedy, NoUselessOpenFacility) {
  stats::Rng rng(2);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 30);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, 1.0});
    costs.push_back(800.0);
  }
  const auto sol = jms_greedy(colocated_instance(clients, costs));
  std::vector<bool> used(pts.size(), false);
  for (std::size_t f : sol.assignment) used[f] = true;
  for (std::size_t f : sol.open) EXPECT_TRUE(used[f]);
}

TEST(JmsGreedy, ClientWeightsShiftTheChoice) {
  // A heavy client far from the cluster pulls a facility open next to it.
  std::vector<FlClient> light{{{0, 0}, 1.0}, {{10, 0}, 1.0}, {{2000, 0}, 0.01}};
  std::vector<FlClient> heavy{{{0, 0}, 1.0}, {{10, 0}, 1.0}, {{2000, 0}, 50.0}};
  const std::vector<double> costs{100.0, 100.0, 100.0};
  const auto sol_light = jms_greedy(colocated_instance(light, costs));
  const auto sol_heavy = jms_greedy(colocated_instance(heavy, costs));
  EXPECT_EQ(sol_light.num_open(), 1u);
  EXPECT_EQ(sol_heavy.num_open(), 2u);
}

/// Property: the greedy is within its proven 1.61 approximation factor of
/// the exact optimum on random small instances (we allow 1.62 for float
/// slack). This is the paper's Algorithm 1 guarantee.
class JmsApproximationRatio : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JmsApproximationRatio, WithinFactorOfExactOptimum) {
  stats::Rng rng(GetParam());
  const std::size_t n = 8 + rng.index(6);  // 8..13 colocated sites
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, n);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 4.0)});
    costs.push_back(rng.uniform(100.0, 2000.0));
  }
  const auto inst = colocated_instance(clients, costs);
  const auto greedy = jms_greedy(inst);
  const auto exact = exact_facility_location(inst);
  EXPECT_LE(greedy.total_cost(), 1.62 * exact.total_cost())
      << "greedy=" << greedy.total_cost() << " exact=" << exact.total_cost();
  EXPECT_GE(greedy.total_cost(), exact.total_cost() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, JmsApproximationRatio,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace esharing::solver
