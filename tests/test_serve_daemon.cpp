#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/esharing.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/workload.h"

namespace esharing::serve {
namespace {

/// One daemon with its own deterministically bootstrapped system. Every
/// instance built from the same seed has bit-identical tier-one state —
/// the restart tests rely on exactly that.
struct TestDaemon {
  explicit TestDaemon(std::uint64_t seed, ServeConfig cfg = {})
      : system(core::ESharingConfig{}, seed) {
    const auto ks = bootstrap_system(system, seed, 600, 3000.0);
    daemon.emplace(system, ks, cfg);
    daemon->start();
  }

  ServeClient connect() { return ServeClient::connect(daemon->port()); }

  void stop() {
    daemon->request_stop();
    daemon->wait();
  }

  core::ESharing system;
  std::optional<ServeDaemon> daemon;
};

std::vector<stream::Event> trip_ends(std::uint64_t seed, std::size_t count) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.count = count;
  cfg.area_m = 3000.0;
  cfg.telemetry_every = 0;
  return make_workload(cfg);
}

void wait_for_consumed(ServeClient& client, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (client.status().events_consumed < want) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "daemon never consumed " << want << " events";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Flight-log line minus the per-process fields: idx (restarts with each
/// log file) and ref (internal routing tokens) — what tools/flightq calls
/// the canonical trace.
std::string canonical(std::string line) {
  const auto idx_end = line.find(',');
  if (line.rfind("{\"idx\":", 0) == 0 && idx_end != std::string::npos) {
    line = "{" + line.substr(idx_end + 1);
  }
  const auto ref_pos = line.find(",\"ref\":");
  if (ref_pos != std::string::npos) {
    const auto close = line.find('}', ref_pos);
    if (close != std::string::npos) {
      line = line.substr(0, ref_pos) + line.substr(close);
    }
  }
  return line;
}

std::vector<std::string> canonical_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(canonical(line));
  }
  return lines;
}

void copy_file(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
}

/// Restores the obs flag on scope exit (scrape assertions need live
/// metrics; the registration itself is gated on obs::enabled()).
struct ObsEnabledGuard {
  ObsEnabledGuard() { obs::set_enabled(true); }
  ~ObsEnabledGuard() { obs::set_enabled(false); }
};

TEST(ServeDaemon, ControlPlaneRoundTrip) {
  const ObsEnabledGuard obs_guard;
  TestDaemon td(31);
  ServeClient client = td.connect();
  client.ping();

  ServeStatus status = client.status();
  EXPECT_EQ(status.state, DaemonState::kServing);
  EXPECT_EQ(status.events_consumed, 0u);

  // Fire-and-forget ingestion: mixed trip ends + telemetry.
  WorkloadConfig wl;
  wl.seed = 32;
  wl.count = 50;
  wl.area_m = 3000.0;
  wl.telemetry_every = 5;
  const auto events = make_workload(wl);
  EXPECT_EQ(client.publish(events), events.size());
  wait_for_consumed(client, events.size());

  // The scrape endpoint returns the live registry as JSON.
  const std::string json = client.scrape_metrics();
  EXPECT_NE(json.find("\"serve.daemon.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.daemon.published_events\""),
            std::string::npos);

  // Hot reload: valid tunables apply, invalid ones are rejected wholesale.
  ServeTunables t;
  t.pump_idle_micros = 100;
  client.reload_tunables(t);
  EXPECT_EQ(client.status().reloads, 1u);
  ServeTunables bad;
  bad.pump_idle_micros = 0;
  EXPECT_THROW(client.reload_tunables(bad), std::runtime_error);
  EXPECT_EQ(client.status().reloads, 1u);

  // No checkpoint path configured: kCheckpointNow must refuse.
  EXPECT_THROW(client.checkpoint_now(), std::runtime_error);

  client.shutdown();
  td.daemon->wait();
  EXPECT_EQ(td.daemon->state(), DaemonState::kStopped);
}

TEST(ServeDaemon, DecidePathEchoesRefsAndCountsDecisions) {
  TestDaemon td(33);
  ServeClient client = td.connect();
  const auto events = trip_ends(34, 40);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const DecisionReply d = client.decide(events[i]);
    EXPECT_EQ(d.ref, events[i].ref);
    EXPECT_GE(d.connection_cost, 0.0);
  }
  const ServeStatus status = client.status();
  EXPECT_EQ(status.decisions, events.size());
  EXPECT_EQ(status.events_consumed, events.size());
  client.shutdown();
  td.daemon->wait();
}

TEST(ServeDaemon, ShutdownTakesAFinalCheckpointAndRestartRestores) {
  const std::string dir = testing::TempDir();
  const std::string ckpt = dir + "serve_restart_ckpt.bin";
  std::remove(ckpt.c_str());
  const auto events = trip_ends(36, 30);

  ServeConfig cfg;
  cfg.checkpoint_path = ckpt;
  {
    TestDaemon td(35, cfg);
    EXPECT_FALSE(td.daemon->restored().has_value());
    ServeClient client = td.connect();
    for (const auto& e : events) (void)client.decide(e);
    client.shutdown();
    td.daemon->wait();
  }
  {
    TestDaemon td(35, cfg);
    ASSERT_TRUE(td.daemon->restored().has_value());
    EXPECT_EQ(td.daemon->restored()->events_consumed, events.size());
    ServeClient client = td.connect();
    const ServeStatus status = client.status();
    EXPECT_EQ(status.next_seq, events.size());
    client.shutdown();
    td.daemon->wait();
  }
  std::remove(ckpt.c_str());
}

TEST(ServeDaemon, RestartFromMidStreamCheckpointIsBitIdentical) {
  const std::string dir = testing::TempDir();
  const std::string ckpt_live = dir + "serve_bi_live.bin";
  const std::string ckpt_crash = dir + "serve_bi_crash.bin";
  const std::string log_full = dir + "serve_bi_full.jsonl";
  const std::string log_resumed = dir + "serve_bi_resumed.jsonl";
  for (const auto& p : {ckpt_live, ckpt_crash, log_full, log_resumed}) {
    std::remove(p.c_str());
  }

  const std::size_t kTotal = 90;
  const std::size_t kCut = 45;  // "crash" point: last surviving checkpoint
  const auto events = trip_ends(38, kTotal);

  // Uninterrupted run: all events through one daemon, checkpoint taken at
  // the cut so a later process can resume from exactly that state.
  {
    ServeConfig cfg;
    cfg.checkpoint_path = ckpt_live;
    cfg.flight_recorder_path = log_full;
    TestDaemon td(37, cfg);
    ServeClient client = td.connect();
    for (std::size_t i = 0; i < kCut; ++i) (void)client.decide(events[i]);
    client.checkpoint_now();
    copy_file(ckpt_live, ckpt_crash);  // what a crash at the cut leaves
    for (std::size_t i = kCut; i < kTotal; ++i) {
      (void)client.decide(events[i]);
    }
    client.shutdown();
    td.daemon->wait();
  }

  // Restarted process: fresh OS process stand-in (same bootstrap seed),
  // restores the mid-stream checkpoint, replays the suffix.
  {
    ServeConfig cfg;
    cfg.checkpoint_path = ckpt_crash;
    cfg.flight_recorder_path = log_resumed;
    TestDaemon td(37, cfg);
    ASSERT_TRUE(td.daemon->restored().has_value());
    EXPECT_EQ(td.daemon->restored()->events_consumed, kCut);
    ServeClient client = td.connect();
    EXPECT_EQ(client.status().next_seq, kCut);
    for (std::size_t i = kCut; i < kTotal; ++i) {
      (void)client.decide(events[i]);
    }
    client.shutdown();
    td.daemon->wait();
  }

  // restore + replay of the suffix must be bit-identical to the
  // uninterrupted run — the checkpoint contract, held across processes.
  const auto full = canonical_lines(log_full);
  const auto resumed = canonical_lines(log_resumed);
  ASSERT_EQ(full.size(), kTotal);
  ASSERT_EQ(resumed.size(), kTotal - kCut);
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i], full[kCut + i]) << "diverged at suffix line " << i;
  }

  for (const auto& p : {ckpt_live, ckpt_crash, log_full, log_resumed}) {
    std::remove(p.c_str());
  }
}

TEST(ServeDaemon, FlightRecorderWritesOneLinePerDecision) {
  const std::string log = testing::TempDir() + "serve_fl_lines.jsonl";
  std::remove(log.c_str());
  ServeConfig cfg;
  cfg.flight_recorder_path = log;
  TestDaemon td(39, cfg);
  ServeClient client = td.connect();
  const auto events = trip_ends(40, 25);
  for (const auto& e : events) (void)client.decide(e);
  client.shutdown();
  td.daemon->wait();

  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("\"event\":\"serve.decision\""), std::string::npos);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, events.size());
  std::remove(log.c_str());
}

TEST(ServeDaemon, GracefulShutdownDrainsPublishedEvents) {
  TestDaemon td(41);
  ServeClient client = td.connect();
  const auto events = trip_ends(42, 200);
  EXPECT_EQ(client.publish(events), events.size());
  // Stop immediately after publishing: the drain must consume everything
  // already accepted onto the bus before the daemon stops.
  client.shutdown();
  td.daemon->wait();
  EXPECT_EQ(td.daemon->state(), DaemonState::kStopped);
  EXPECT_EQ(td.daemon->status().events_consumed, events.size());
}

TEST(ServeDaemon, ConfigValidationRejectsBadKnobs) {
  ServeConfig bad;
  bad.listen_backlog = 0;
  core::ESharing system(core::ESharingConfig{}, 43);
  const auto ks = bootstrap_system(system, 43, 600, 3000.0);
  EXPECT_THROW(ServeDaemon(system, ks, bad), std::invalid_argument);
}

}  // namespace
}  // namespace esharing::serve
