#include "core/stations_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace esharing::core {
namespace {

std::vector<Station> sample_network() {
  return {{{100.5, 200.25}, false, true},
          {{300.0, 400.0}, true, true},
          {{500.0, 600.0}, true, false}};
}

TEST(StationsIo, StreamRoundTrip) {
  std::stringstream ss;
  write_stations_csv(ss, sample_network());
  const auto back = read_stations_csv(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(back[i].location.x, sample_network()[i].location.x);
    EXPECT_DOUBLE_EQ(back[i].location.y, sample_network()[i].location.y);
    EXPECT_EQ(back[i].online_opened, sample_network()[i].online_opened);
    EXPECT_EQ(back[i].active, sample_network()[i].active);
  }
}

TEST(StationsIo, PreservesFullDoublePrecision) {
  const std::vector<Station> net{{{1.0 / 3.0, 2.0 / 7.0}, false, true}};
  std::stringstream ss;
  write_stations_csv(ss, net);
  const auto back = read_stations_csv(ss);
  EXPECT_DOUBLE_EQ(back[0].location.x, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(back[0].location.y, 2.0 / 7.0);
}

TEST(StationsIo, RejectsBadInput) {
  std::stringstream missing_header("1,2,3,0,1\n");
  EXPECT_THROW((void)read_stations_csv(missing_header), std::invalid_argument);
  std::stringstream short_row(station_csv_header() + "\n0,1,2\n");
  EXPECT_THROW((void)read_stations_csv(short_row), std::invalid_argument);
  std::stringstream bad_number(station_csv_header() + "\n0,abc,2,0,1\n");
  EXPECT_THROW((void)read_stations_csv(bad_number), std::invalid_argument);
}

TEST(StationsIo, EmptyNetworkRoundTrips) {
  std::stringstream ss;
  write_stations_csv(ss, {});
  EXPECT_TRUE(read_stations_csv(ss).empty());
}

TEST(StationsIo, FileRoundTripAndMissingFile) {
  const std::string path = testing::TempDir() + "/esharing_stations_test.csv";
  save_stations_csv(path, sample_network());
  EXPECT_EQ(load_stations_csv(path).size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_stations_csv("/nonexistent/stations.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace esharing::core
