#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace esharing::sim {
namespace {

TEST(EventEngine, RunsEventsInTimeOrder) {
  EventEngine engine;
  std::vector<int> order;
  engine.schedule(30, [&] { order.push_back(3); });
  engine.schedule(10, [&] { order.push_back(1); });
  engine.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(EventEngine, SimultaneousEventsAreFifo) {
  EventEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule(100, [&order, i] { order.push_back(i); });
  }
  (void)engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngine, HandlersCanScheduleMoreEvents) {
  EventEngine engine;
  std::vector<Seconds> fire_times;
  // A self-rescheduling heartbeat that stops after 3 beats.
  std::function<void()> beat = [&] {
    fire_times.push_back(engine.now());
    if (fire_times.size() < 3) engine.schedule_in(10, beat);
  };
  engine.schedule(5, beat);
  (void)engine.run();
  EXPECT_EQ(fire_times, (std::vector<Seconds>{5, 15, 25}));
}

TEST(EventEngine, RunUntilHorizonLeavesLaterEventsPending) {
  EventEngine engine;
  int fired = 0;
  engine.schedule(10, [&] { ++fired; });
  engine.schedule(20, [&] { ++fired; });
  engine.schedule(30, [&] { ++fired; });
  EXPECT_EQ(engine.run(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(engine.now(), 20);
  EXPECT_EQ(engine.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventEngine, StepExecutesExactlyOne) {
  EventEngine engine;
  int fired = 0;
  engine.schedule(1, [&] { ++fired; });
  engine.schedule(2, [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(engine.executed(), 2u);
}

TEST(EventEngine, RejectsPastAndNullEvents) {
  EventEngine engine;
  engine.schedule(100, [] {});
  (void)engine.run();
  EXPECT_THROW(engine.schedule(50, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule(200, nullptr), std::invalid_argument);
  EXPECT_THROW(engine.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(EventEngine, SchedulingAtCurrentTimeIsAllowed) {
  EventEngine engine;
  int fired = 0;
  engine.schedule(10, [&] {
    engine.schedule(10, [&] { ++fired; });  // same-time follow-up
  });
  (void)engine.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace esharing::sim
