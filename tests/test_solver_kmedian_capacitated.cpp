#include <gtest/gtest.h>

#include <stdexcept>

#include "solver/capacitated.h"
#include "solver/k_median.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

FlInstance cluster_instance() {
  // Two tight clusters far apart, colocated candidates.
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (int i = 0; i < 5; ++i) {
    clients.push_back({{static_cast<double>(i * 10), 0.0}, 1.0});
    clients.push_back({{10000.0 + i * 10, 0.0}, 1.0});
    costs.push_back(123.0);  // k-median must ignore these
    costs.push_back(123.0);
  }
  return colocated_instance(clients, costs);
}

TEST(KMedian, ValidatesK) {
  const auto inst = cluster_instance();
  EXPECT_THROW((void)k_median(inst, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)k_median(inst, 11, 1), std::invalid_argument);
}

TEST(KMedian, OpensExactlyKAndIgnoresOpeningCosts) {
  const auto inst = cluster_instance();
  const auto sol = k_median(inst, 2, 1);
  EXPECT_EQ(sol.num_open(), 2u);
  EXPECT_DOUBLE_EQ(sol.opening_cost, 0.0);
}

TEST(KMedian, KEquals2SplitsTheClusters) {
  const auto inst = cluster_instance();
  const auto sol = k_median(inst, 2, 2);
  // One median per cluster keeps every walk within the 40 m cluster span.
  EXPECT_LT(sol.connection_cost, 200.0);
  const double x0 = inst.facilities[sol.open[0]].location.x;
  const double x1 = inst.facilities[sol.open[1]].location.x;
  EXPECT_NE(x0 < 5000.0, x1 < 5000.0);  // different clusters
}

TEST(KMedian, MoreMediansNeverIncreaseCost) {
  stats::Rng rng(3);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 30);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : pts) {
    clients.push_back({p, rng.uniform(0.5, 2.0)});
    costs.push_back(0.0);
  }
  const auto inst = colocated_instance(clients, costs);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k : {1, 2, 4, 8, 16}) {
    const double c = k_median(inst, k, 4).connection_cost;
    EXPECT_LE(c, prev + 1e-9);
    prev = c;
  }
  // k = #facilities: everything is a median, walking cost 0.
  EXPECT_DOUBLE_EQ(k_median(inst, pts.size(), 4).connection_cost, 0.0);
}

TEST(KMedian, SwapSearchBeatsBadSeeds) {
  // Regardless of the random seed, the swap search should land both
  // medians correctly on the two-cluster instance.
  const auto inst = cluster_instance();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_LT(k_median(inst, 2, seed).connection_cost, 200.0);
  }
}

// --- capacitated assignment ----------------------------------------------

TEST(Capacitated, Validates) {
  EXPECT_THROW((void)assign_capacitated({}, {{{0, 0}, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)assign_capacitated({{{0, 0}, 1.0}}, {}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)assign_capacitated({{{0, 0}, -1.0}}, {{{0, 0}, 1.0}}),
      std::invalid_argument);
}

TEST(Capacitated, UnconstrainedMatchesNearest) {
  const std::vector<CapacitatedStation> stations{{{0, 0}, 100.0},
                                                 {{1000, 0}, 100.0}};
  const std::vector<CapacitatedDemand> demands{{{100, 0}, 2.0},
                                               {{900, 0}, 3.0}};
  const auto a = assign_capacitated(stations, demands);
  EXPECT_TRUE(a.feasible());
  EXPECT_DOUBLE_EQ(a.walking_cost,
                   uncapacitated_walking_cost(stations, demands));
  EXPECT_DOUBLE_EQ(a.walking_cost, 2.0 * 100.0 + 3.0 * 100.0);
}

TEST(Capacitated, CapacitySqueezePushesDemandToSecondChoice) {
  // Both demands prefer station 0 but it only fits one unit.
  const std::vector<CapacitatedStation> stations{{{0, 0}, 1.0},
                                                 {{1000, 0}, 10.0}};
  const std::vector<CapacitatedDemand> demands{{{10, 0}, 1.0},
                                               {{20, 0}, 1.0}};
  const auto a = assign_capacitated(stations, demands);
  EXPECT_TRUE(a.feasible());
  // The demand with the larger regret (closer to 0, farther from 1000)
  // keeps the scarce slot; exactly one unit travels to station 1.
  double at_far = 0.0;
  for (const auto& share : a.shares) {
    if (share.station == 1) at_far += share.amount;
  }
  EXPECT_DOUBLE_EQ(at_far, 1.0);
  EXPECT_GT(a.walking_cost, uncapacitated_walking_cost(stations, demands));
}

TEST(Capacitated, DemandSplitsAcrossStations) {
  const std::vector<CapacitatedStation> stations{{{0, 0}, 2.0},
                                                 {{100, 0}, 2.0}};
  const std::vector<CapacitatedDemand> demands{{{50, 0}, 3.0}};
  const auto a = assign_capacitated(stations, demands);
  EXPECT_TRUE(a.feasible());
  EXPECT_EQ(a.shares.size(), 2u);
  double total = 0.0;
  for (const auto& share : a.shares) total += share.amount;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(Capacitated, OverflowReportedWhenCapacityShort) {
  const std::vector<CapacitatedStation> stations{{{0, 0}, 1.5}};
  const std::vector<CapacitatedDemand> demands{{{10, 0}, 4.0}};
  const auto a = assign_capacitated(stations, demands);
  EXPECT_FALSE(a.feasible());
  EXPECT_DOUBLE_EQ(a.overflow, 2.5);
}

TEST(Capacitated, ConservationProperty) {
  stats::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<CapacitatedStation> stations;
    std::vector<CapacitatedDemand> demands;
    double cap_total = 0.0, dem_total = 0.0;
    for (int s = 0; s < 6; ++s) {
      const double cap = rng.uniform(0.0, 5.0);
      stations.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, cap});
      cap_total += cap;
    }
    for (int d = 0; d < 10; ++d) {
      const double amt = rng.uniform(0.0, 3.0);
      demands.push_back({{rng.uniform(0, 1000), rng.uniform(0, 1000)}, amt});
      dem_total += amt;
    }
    const auto a = assign_capacitated(stations, demands);
    double placed = 0.0;
    for (const auto& share : a.shares) placed += share.amount;
    EXPECT_NEAR(placed + a.overflow, dem_total, 1e-9);
    EXPECT_LE(placed, cap_total + 1e-9);
    if (a.feasible()) {
      // Capacities can only worsen walking — but only comparable when all
      // demand was actually placed.
      EXPECT_GE(a.walking_cost,
                uncapacitated_walking_cost(stations, demands) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace esharing::solver
