#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/synthetic_city.h"
#include "sim/simulation.h"
#include "stream/event_bus.h"

namespace esharing::sim {
namespace {

data::CityConfig small_city() {
  data::CityConfig cfg;
  cfg.num_days = 2;
  cfg.trips_per_weekday = 250;
  cfg.trips_per_weekend_day = 200;
  cfg.num_bikes = 60;
  cfg.num_users = 150;
  return cfg;
}

SimConfig fast_sim() {
  SimConfig cfg;
  cfg.esharing.placer.ks_period = 0;
  cfg.esharing.charging_operator.work_seconds = 8.0 * 3600.0;
  return cfg;
}

void expect_identical_metrics(const SimMetrics& batch,
                              const SimMetrics& streamed) {
  EXPECT_EQ(batch.trips, streamed.trips);
  EXPECT_DOUBLE_EQ(batch.walking_cost_m, streamed.walking_cost_m);
  EXPECT_EQ(batch.stations_final, streamed.stations_final);
  EXPECT_EQ(batch.stations_online_opened, streamed.stations_online_opened);
  EXPECT_EQ(batch.stations_removed, streamed.stations_removed);
  EXPECT_DOUBLE_EQ(batch.incentives_paid, streamed.incentives_paid);
  EXPECT_EQ(batch.offers_made, streamed.offers_made);
  EXPECT_EQ(batch.relocations, streamed.relocations);
  ASSERT_EQ(batch.charging_rounds.size(), streamed.charging_rounds.size());
  for (std::size_t i = 0; i < batch.charging_rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.charging_rounds[i].total_cost(),
                     streamed.charging_rounds[i].total_cost());
    EXPECT_DOUBLE_EQ(batch.charging_rounds[i].moving_distance_m,
                     streamed.charging_rounds[i].moving_distance_m);
    EXPECT_EQ(batch.charging_rounds[i].bikes_charged,
              streamed.charging_rounds[i].bikes_charged);
  }
}

void expect_identical_systems(const Simulation& batch,
                              const Simulation& streamed) {
  const auto a = batch.system().placer().active_locations();
  const auto b = streamed.system().placer().active_locations();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x) << "station " << i;
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y) << "station " << i;
  }
  EXPECT_EQ(batch.system().placer().requests_seen(),
            streamed.system().placer().requests_seen());
  EXPECT_DOUBLE_EQ(batch.system().placer().total_connection_cost(),
                   streamed.system().placer().total_connection_cost());
}

class StreamRegression : public ::testing::Test {
 protected:
  StreamRegression() : city_(small_city(), 31) {
    history_ = city_.generate_trips();
    live_ = city_.generate_trips();
  }

  SimMetrics run_batch(const SimConfig& cfg, Simulation** out = nullptr) {
    static_sims_.push_back(std::make_unique<Simulation>(city_, cfg, 7));
    Simulation& sim = *static_sims_.back();
    sim.bootstrap(history_);
    if (out != nullptr) *out = &sim;
    return sim.run(live_);
  }

  SimMetrics run_streamed(const SimConfig& cfg,
                          stream::BusStats* stats = nullptr,
                          Simulation** out = nullptr) {
    static_sims_.push_back(std::make_unique<Simulation>(city_, cfg, 7));
    Simulation& sim = *static_sims_.back();
    sim.bootstrap(history_);
    if (out != nullptr) *out = &sim;
    return sim.run_streamed(live_, stats);
  }

  data::SyntheticCity city_;
  std::vector<data::TripRecord> history_;
  std::vector<data::TripRecord> live_;
  std::vector<std::unique_ptr<Simulation>> static_sims_;
};

TEST_F(StreamRegression, SingleShardMatchesBatchBitForBit) {
  const SimConfig cfg = fast_sim();
  Simulation* batch_sim = nullptr;
  Simulation* stream_sim = nullptr;
  const SimMetrics batch = run_batch(cfg, &batch_sim);

  SimConfig streamed_cfg = cfg;
  streamed_cfg.stream.bus.shard_count = 1;
  stream::BusStats stats;
  const SimMetrics streamed = run_streamed(streamed_cfg, &stats, &stream_sim);

  expect_identical_metrics(batch, streamed);
  expect_identical_systems(*batch_sim, *stream_sim);
  EXPECT_EQ(stats.published, live_.size());
  EXPECT_EQ(stats.drained, live_.size());
  EXPECT_EQ(stats.dropped_oldest, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(StreamRegression, FourShardsMatchBatchBitForBit) {
  const SimConfig cfg = fast_sim();
  Simulation* batch_sim = nullptr;
  Simulation* stream_sim = nullptr;
  const SimMetrics batch = run_batch(cfg, &batch_sim);

  SimConfig streamed_cfg = cfg;
  streamed_cfg.stream.bus.shard_count = 4;
  streamed_cfg.stream.bus.queue_capacity = 64;  // forces many mid-stream pumps
  streamed_cfg.stream.bus.max_batch = 16;
  stream::BusStats stats;
  const SimMetrics streamed = run_streamed(streamed_cfg, &stats, &stream_sim);

  expect_identical_metrics(batch, streamed);
  expect_identical_systems(*batch_sim, *stream_sim);
  EXPECT_EQ(stats.published, live_.size());
}

TEST_F(StreamRegression, ShardCountDoesNotChangeTheStreamedRun) {
  SimConfig one = fast_sim();
  one.stream.bus.shard_count = 1;
  SimConfig eight = fast_sim();
  eight.stream.bus.shard_count = 8;
  eight.stream.bus.route_cell_m = 250.0;  // different routing must not matter
  eight.stream.lanes = 2;  // parallel lane drains must not matter either

  const SimMetrics a = run_streamed(one);
  const SimMetrics b = run_streamed(eight);
  expect_identical_metrics(a, b);
}

TEST_F(StreamRegression, KsSwitchingSurvivesTheStreamPath) {
  // With the KS check enabled the placer consults its sliding window and
  // RNG-backed regime state — the strongest determinism stressor we have.
  SimConfig cfg = fast_sim();
  cfg.esharing.placer.ks_period = 64;
  cfg.esharing.placer.adaptive_type = true;

  Simulation* batch_sim = nullptr;
  Simulation* stream_sim = nullptr;
  const SimMetrics batch = run_batch(cfg, &batch_sim);
  SimConfig streamed_cfg = cfg;
  streamed_cfg.stream.bus.shard_count = 4;
  const SimMetrics streamed = run_streamed(streamed_cfg, nullptr, &stream_sim);
  expect_identical_metrics(batch, streamed);
  expect_identical_systems(*batch_sim, *stream_sim);
}

TEST_F(StreamRegression, ReanchoringSurvivesTheStreamPathBitForBit) {
  // Scheduled landmark re-anchors run in the shared per-trip path, so
  // run() and run_streamed() must keep producing identical results — the
  // re-anchor mutates the placer's landmark set AND the station universe.
  SimConfig cfg = fast_sim();
  cfg.reanchor_period = 6 * 3600;  // every six sim hours
  cfg.reanchor_state.window_length = 6 * 3600;

  Simulation* batch_sim = nullptr;
  Simulation* stream_sim = nullptr;
  const SimMetrics batch = run_batch(cfg, &batch_sim);
  EXPECT_GT(batch.reanchors, 0u);

  SimConfig streamed_cfg = cfg;
  streamed_cfg.stream.bus.shard_count = 4;
  streamed_cfg.stream.bus.queue_capacity = 64;
  streamed_cfg.stream.bus.max_batch = 16;
  const SimMetrics streamed = run_streamed(streamed_cfg, nullptr, &stream_sim);
  EXPECT_EQ(streamed.reanchors, batch.reanchors);
  expect_identical_metrics(batch, streamed);
  expect_identical_systems(*batch_sim, *stream_sim);
  EXPECT_EQ(batch_sim->system().reopt_session().revision(),
            stream_sim->system().reopt_session().revision());
}

TEST_F(StreamRegression, RepeatedStreamedRunsAdvanceTime) {
  // run_streamed composes like run(): a second call continues the clock.
  SimConfig cfg = fast_sim();
  cfg.stream.bus.shard_count = 2;
  Simulation sim(city_, cfg, 7);
  sim.bootstrap(history_);
  const SimMetrics first = sim.run_streamed(live_);
  const auto more = city_.generate_trips();
  const SimMetrics second = sim.run_streamed(more);
  EXPECT_EQ(first.trips, live_.size());
  EXPECT_EQ(second.trips, more.size());
  EXPECT_GE(second.charging_rounds.size(), 1u);
}

}  // namespace
}  // namespace esharing::sim
