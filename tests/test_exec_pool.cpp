/// Unit tests for the shared execution runtime (exec::ThreadPool): task
/// drain on shutdown, chunking determinism, nested-region serialization,
/// zero-size ranges, exception propagation and width resolution. Suite
/// names contain "Exec" so the CI TSan job picks them up.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/sync.h"
#include "exec/thread_pool.h"

namespace {

using esharing::exec::ThreadPool;

TEST(ExecPool, SizeIsAtLeastOne) {
  EXPECT_EQ(ThreadPool(1).size(), 1U);
  EXPECT_EQ(ThreadPool(4).size(), 4U);
  EXPECT_EQ(ThreadPool(0).size(), 1U);  // clamped
}

TEST(ExecPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No barrier here: the destructor must run every queued task before
    // joining, even with submissions still outstanding.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ExecPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 7, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ExecPool, ChunkBoundariesDependOnlyOnNAndGrain) {
  // Record (begin, end, chunk) triples at several widths; the sets must be
  // identical — scheduling may reorder execution, never reshape chunks.
  const std::size_t n = 103;
  const std::size_t grain = 10;
  auto chunks_at = [&](std::size_t width) {
    ThreadPool pool(width);
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen;
    es::Mutex mu;
    pool.parallel_for(n, grain,
                      [&](std::size_t b, std::size_t e, std::size_t c) {
                        const es::LockGuard lock(mu);
                        seen.insert({b, e, c});
                      });
    return seen;
  };
  const auto ref = chunks_at(1);
  EXPECT_EQ(ref.size(), (n + grain - 1) / grain);
  EXPECT_EQ(chunks_at(2), ref);
  EXPECT_EQ(chunks_at(4), ref);
  EXPECT_EQ(chunks_at(8), ref);
}

TEST(ExecPool, ZeroSizeRangeInvokesNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
  const double sum = pool.parallel_reduce<double>(
      0, 4, 1.5, [](std::size_t, std::size_t) { return 100.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(sum, 1.5);  // init returned untouched
}

TEST(ExecPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_inline{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      if (ThreadPool::on_pool_thread()) nested_inline.fetch_add(1);
      pool.parallel_for(4, 1, [&](std::size_t ib, std::size_t ie,
                                  std::size_t) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
  // At least the worker-executed outer chunks observed pool-thread state
  // (the caller lane legitimately reports false).
  EXPECT_GE(nested_inline.load(), 0);
}

TEST(ExecPool, ParallelReduceIsBitIdenticalAcrossWidths) {
  // Non-associative FP sum: ascending-chunk fold must give the same double
  // at every width.
  const std::size_t n = 4096;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = 1.0 / static_cast<double>(3 * i + 1);
  }
  auto sum_at = [&](std::size_t width) {
    ThreadPool pool(width);
    return pool.parallel_reduce<double>(
        n, 33, 0.0,
        [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) acc += xs[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double ref = sum_at(1);
  EXPECT_EQ(sum_at(2), ref);
  EXPECT_EQ(sum_at(4), ref);
  EXPECT_EQ(sum_at(8), ref);
}

TEST(ExecPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t b, std::size_t, std::size_t) {
                          ran.fetch_add(1);
                          if (b == 50) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the exception and stays usable.
  std::atomic<int> after{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t, std::size_t) {
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(ExecPool, WidthFromEnvValueParsing) {
  using esharing::exec::width_from_env_value;
  EXPECT_EQ(width_from_env_value("4", 9), 4U);
  EXPECT_EQ(width_from_env_value("1", 9), 1U);
  EXPECT_EQ(width_from_env_value("0", 9), 9U);    // non-positive -> fallback
  EXPECT_EQ(width_from_env_value("", 9), 9U);     // empty -> fallback
  EXPECT_EQ(width_from_env_value("abc", 9), 9U);  // garbage -> fallback
  EXPECT_EQ(width_from_env_value("4x", 9), 9U);   // trailing junk -> fallback
  EXPECT_EQ(width_from_env_value("-2", 9), 9U);   // sign is junk -> fallback
  EXPECT_EQ(width_from_env_value(nullptr, 9), 9U);
}

TEST(ExecPool, GlobalWidthOverride) {
  using esharing::exec::global_threads;
  using esharing::exec::resolve_width;
  using esharing::exec::set_global_threads;
  const std::size_t original = global_threads();
  set_global_threads(3);
  EXPECT_EQ(global_threads(), 3U);
  EXPECT_EQ(resolve_width(0), 3U);
  EXPECT_EQ(resolve_width(7), 7U);
  set_global_threads(original);
  EXPECT_EQ(global_threads(), original);
}

TEST(ExecPool, FreeParallelForUsesGlobalPool) {
  std::vector<int> out(257, 0);
  esharing::exec::parallel_for(out.size(), 16,
                               [&](std::size_t b, std::size_t e, std::size_t) {
                                 for (std::size_t i = b; i < e; ++i) out[i] = 1;
                               });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0),
            static_cast<int>(out.size()));
}

}  // namespace
