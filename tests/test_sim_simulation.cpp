#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::sim {
namespace {

data::CityConfig small_city() {
  data::CityConfig cfg;
  cfg.num_days = 2;
  cfg.trips_per_weekday = 250;
  cfg.trips_per_weekend_day = 200;
  cfg.num_bikes = 60;
  cfg.num_users = 150;
  return cfg;
}

SimConfig fast_sim() {
  SimConfig cfg;
  cfg.esharing.placer.ks_period = 0;  // keep tests fast: no periodic KS
  cfg.esharing.charging_operator.work_seconds = 8.0 * 3600.0;
  return cfg;
}

class SimulationFixture : public ::testing::Test {
 protected:
  SimulationFixture()
      : city_(small_city(), 31),
        history_(city_.generate_trips()),
        live_(city_.generate_trips()) {}

  data::SyntheticCity city_;
  std::vector<data::TripRecord> history_;
  std::vector<data::TripRecord> live_;
};

TEST_F(SimulationFixture, RunRequiresBootstrap) {
  Simulation sim(city_, fast_sim(), 1);
  EXPECT_THROW((void)sim.run(live_), std::logic_error);
}

TEST_F(SimulationFixture, BootstrapRejectsEmptyHistory) {
  Simulation sim(city_, fast_sim(), 2);
  EXPECT_THROW(sim.bootstrap({}), std::invalid_argument);
}

TEST_F(SimulationFixture, BootstrapPlansOfflineParkings) {
  Simulation sim(city_, fast_sim(), 3);
  sim.bootstrap(history_);
  EXPECT_GE(sim.system().offline_solution().num_open(), 2u);
  EXPECT_TRUE(sim.system().online_started());
}

TEST_F(SimulationFixture, RunProcessesEveryTrip) {
  Simulation sim(city_, fast_sim(), 4);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_EQ(metrics.trips, live_.size());
  EXPECT_GT(metrics.walking_cost_m, 0.0);
  EXPECT_GT(metrics.stations_final, 0u);
}

TEST_F(SimulationFixture, AverageWalkIsPlausible) {
  // Table V scale: "average walking distance (about 180 m of 2-min walk)".
  // Our synthetic city should land in the same order of magnitude.
  Simulation sim(city_, fast_sim(), 5);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_GT(metrics.avg_walk_m(), 10.0);
  EXPECT_LT(metrics.avg_walk_m(), 1000.0);
}

TEST_F(SimulationFixture, ChargingRoundsHappenPerPeriod) {
  SimConfig cfg = fast_sim();
  cfg.charging_period = data::kSecondsPerDay;
  Simulation sim(city_, cfg, 6);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);  // two more days of trips
  // At least the end-of-run flush, plus the in-run daily rounds.
  EXPECT_GE(metrics.charging_rounds.size(), 2u);
}

TEST_F(SimulationFixture, IncentivesAggregateAndPay) {
  SimConfig cfg = fast_sim();
  cfg.esharing.incentive.alpha = 1.0;
  cfg.esharing.incentive.mileage_slack_m = 400.0;
  cfg.user_min_reward_lo = 0.0;
  cfg.user_min_reward_hi = 0.1;  // users accept almost any reward
  cfg.user_max_walk_lo_m = 400.0;
  cfg.user_max_walk_hi_m = 800.0;
  Simulation sim(city_, cfg, 7);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_GT(metrics.offers_made, 0u);
  EXPECT_GT(metrics.relocations, 0u);
  EXPECT_GT(metrics.incentives_paid, 0.0);
}

TEST_F(SimulationFixture, AlphaZeroPaysNothing) {
  SimConfig cfg = fast_sim();
  cfg.esharing.incentive.alpha = 0.0;
  Simulation sim(city_, cfg, 8);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_EQ(metrics.relocations, 0u);
  EXPECT_DOUBLE_EQ(metrics.incentives_paid, 0.0);
}

TEST_F(SimulationFixture, DeterministicPerSeed) {
  SimConfig cfg = fast_sim();
  Simulation a(city_, cfg, 9);
  Simulation b(city_, cfg, 9);
  a.bootstrap(history_);
  b.bootstrap(history_);
  const auto ma = a.run(live_);
  const auto mb = b.run(live_);
  EXPECT_EQ(ma.trips, mb.trips);
  EXPECT_DOUBLE_EQ(ma.walking_cost_m, mb.walking_cost_m);
  EXPECT_EQ(ma.stations_final, mb.stations_final);
  EXPECT_DOUBLE_EQ(ma.incentives_paid, mb.incentives_paid);
}

TEST_F(SimulationFixture, MetricsHelpersConsistent) {
  Simulation sim(city_, fast_sim(), 10);
  sim.bootstrap(history_);
  const auto m = sim.run(live_);
  double charging = m.incentives_paid;
  double moving = 0.0;
  for (const auto& r : m.charging_rounds) {
    charging += r.total_cost(0.0);
    moving += r.moving_distance_m;
  }
  EXPECT_DOUBLE_EQ(m.total_charging_cost(), charging);
  EXPECT_DOUBLE_EQ(m.total_moving_distance_m(), moving);
  EXPECT_GE(m.mean_pct_charged(), 0.0);
  EXPECT_LE(m.mean_pct_charged(), 100.0);
}

TEST_F(SimulationFixture, EmptiedStationsAreRemovedAndReestablished) {
  // Footnote 2: few bikes over many stations means pickups repeatedly
  // empty stations; removal must fire, yet the system keeps serving and
  // may re-establish parkings online.
  SimConfig cfg = fast_sim();
  cfg.remove_empty_stations = true;
  Simulation sim(city_, cfg, 11);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_GT(metrics.stations_removed, 0u);
  EXPECT_GE(metrics.stations_final, 1u);
  EXPECT_EQ(metrics.trips, live_.size());
}

TEST_F(SimulationFixture, RemovalCanBeDisabled) {
  SimConfig cfg = fast_sim();
  cfg.remove_empty_stations = false;
  Simulation sim(city_, cfg, 12);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);
  EXPECT_EQ(metrics.stations_removed, 0u);
}

TEST_F(SimulationFixture, ReanchorCadenceRunsAndCountsEpochs) {
  SimConfig cfg = fast_sim();
  cfg.reanchor_period = 6 * 3600;
  cfg.reanchor_state.window_length = 6 * 3600;
  Simulation sim(city_, cfg, 13);
  sim.bootstrap(history_);
  const auto metrics = sim.run(live_);  // two days of trips
  EXPECT_GT(metrics.reanchors, 0u);
  EXPECT_EQ(metrics.trips, live_.size());
  EXPECT_GE(metrics.stations_final, 1u);
  // Disabled cadence: no re-anchors, field stays zero.
  Simulation off(city_, fast_sim(), 13);
  off.bootstrap(history_);
  EXPECT_EQ(off.run(live_).reanchors, 0u);
}

TEST(SimConfigValidate, ReanchorKnobs) {
  SimConfig cfg;
  cfg.reanchor_period = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reanchor_period = 3600;
  cfg.reanchor_min_cells = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reanchor_min_cells = 2;
  cfg.reanchor_state.cell_m = 0.0;  // nested window config must validate
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reanchor_state.cell_m = 100.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(SimMetrics, EmptyMetricsEdgeCases) {
  const SimMetrics m;
  EXPECT_DOUBLE_EQ(m.avg_walk_m(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_charging_cost(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_pct_charged(), 100.0);
}

}  // namespace
}  // namespace esharing::sim
