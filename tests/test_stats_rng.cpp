#include "stats/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace esharing::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of {2,3,4} appear
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, IndexCoversRangeAndRejectsEmpty) {
  Rng rng(6);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.index(4));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, PoissonMeanMatchesLambda) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonEdgeCases) {
  Rng rng(10);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_THROW((void)rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliClampsProbability) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(13);
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(14);
  EXPECT_THROW((void)rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)rng.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ExponentialPositiveAndMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.fork();
  // The child stream should not equal the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == child.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace esharing::stats
