#include "geo/grid.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace esharing::geo {
namespace {

Grid make_grid() { return Grid({{0, 0}, {3000, 3000}}, 100.0); }

TEST(Grid, DimensionsFromBoxAndCellSize) {
  const Grid g = make_grid();
  EXPECT_EQ(g.cols(), 30);
  EXPECT_EQ(g.rows(), 30);
  EXPECT_EQ(g.cell_count(), 900u);
}

TEST(Grid, NonDivisibleExtentRoundsUp) {
  const Grid g({{0, 0}, {250, 130}}, 100.0);
  EXPECT_EQ(g.cols(), 3);
  EXPECT_EQ(g.rows(), 2);
}

TEST(Grid, RejectsDegenerateInputs) {
  EXPECT_THROW(Grid({{0, 0}, {0, 10}}, 100.0), std::invalid_argument);
  EXPECT_THROW(Grid({{0, 0}, {10, 10}}, 0.0), std::invalid_argument);
  EXPECT_THROW(Grid({{0, 0}, {10, 10}}, -5.0), std::invalid_argument);
}

TEST(Grid, CellOfInteriorPoint) {
  const Grid g = make_grid();
  const auto c = g.cell_of({250.0, 1730.0});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->col, 2);
  EXPECT_EQ(c->row, 17);
}

TEST(Grid, CellOfOutsideReturnsNullopt) {
  const Grid g = make_grid();
  EXPECT_FALSE(g.cell_of({-1.0, 100.0}).has_value());
  EXPECT_FALSE(g.cell_of({100.0, 3000.5}).has_value());
}

TEST(Grid, MaxEdgePointsClampIntoLastCell) {
  const Grid g = make_grid();
  const auto c = g.cell_of({3000.0, 3000.0});
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->col, 29);
  EXPECT_EQ(c->row, 29);
}

TEST(Grid, ClampedCellOfFarPoints) {
  const Grid g = make_grid();
  EXPECT_EQ(g.clamped_cell_of({-500.0, 99999.0}), (CellId{0, 29}));
  EXPECT_EQ(g.clamped_cell_of({99999.0, -500.0}), (CellId{29, 0}));
}

TEST(Grid, IndexRoundTrip) {
  const Grid g = make_grid();
  for (std::size_t i : {std::size_t{0}, std::size_t{29}, std::size_t{30},
                        std::size_t{450}, std::size_t{899}}) {
    EXPECT_EQ(g.index_of(g.cell_at(i)), i);
  }
}

TEST(Grid, IndexOfRejectsOutsideCells) {
  const Grid g = make_grid();
  EXPECT_THROW(static_cast<void>(g.index_of({30, 0})), std::out_of_range);
  EXPECT_THROW(static_cast<void>(g.index_of({0, -1})), std::out_of_range);
  EXPECT_THROW(static_cast<void>(g.cell_at(900)), std::out_of_range);
}

TEST(Grid, CentroidIsCellCenter) {
  const Grid g = make_grid();
  EXPECT_EQ(g.centroid_of({0, 0}), (Point{50.0, 50.0}));
  EXPECT_EQ(g.centroid_of({29, 29}), (Point{2950.0, 2950.0}));
}

TEST(Grid, CentroidRoundTripsThroughCellOf) {
  const Grid g = make_grid();
  for (std::size_t i = 0; i < g.cell_count(); i += 37) {
    const CellId c = g.cell_at(i);
    EXPECT_EQ(g.clamped_cell_of(g.centroid_of(c)), c);
  }
}

TEST(Grid, AllCentroidsCountAndOrder) {
  const Grid g({{0, 0}, {200, 200}}, 100.0);
  const auto cs = g.all_centroids();
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0], (Point{50, 50}));
  EXPECT_EQ(cs[1], (Point{150, 50}));   // row-major: col varies first
  EXPECT_EQ(cs[2], (Point{50, 150}));
  EXPECT_EQ(cs[3], (Point{150, 150}));
}

TEST(Grid, HistogramCountsAndClamps) {
  const Grid g({{0, 0}, {200, 200}}, 100.0);
  const auto h = g.histogram({{10, 10}, {20, 20}, {150, 50}, {-99, -99}});
  EXPECT_EQ(h[0], 3u);  // two interior + one clamped
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 0u);
}

}  // namespace
}  // namespace esharing::geo
