#include "energy/charge_curve.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"

namespace esharing::energy {
namespace {

ChargeCurve curve() { return ChargeCurve{}; }

TEST(ChargeCurve, CcPhaseIsLinear) {
  // 0.2 -> 0.6 entirely below the knee: 0.4 SoC at 0.8 SoC/h = 0.5 h.
  EXPECT_NEAR(charge_time_hours(curve(), 0.2, 0.6), 0.5, 1e-12);
  EXPECT_NEAR(charge_time_hours(curve(), 0.0, 0.8), 1.0, 1e-12);
}

TEST(ChargeCurve, CvPhaseSlowsDown) {
  // Equal SoC gains cost more time above the knee.
  const double below = charge_time_hours(curve(), 0.60, 0.70);
  const double above = charge_time_hours(curve(), 0.85, 0.95);
  EXPECT_GT(above, 2.0 * below);
}

TEST(ChargeCurve, TargetsClampAtMaxSoc) {
  const double to_max = charge_time_hours(curve(), 0.5, 1.0);
  const double to_clamp = charge_time_hours(curve(), 0.5, curve().max_soc);
  EXPECT_DOUBLE_EQ(to_max, to_clamp);
  EXPECT_TRUE(std::isfinite(to_max));
}

TEST(ChargeCurve, TimeAndSocAreInverses) {
  stats::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const double from = rng.uniform(0.0, 0.9);
    const double to = rng.uniform(from, 0.99);
    const double t = charge_time_hours(curve(), from, to);
    EXPECT_NEAR(soc_after_charging(curve(), from, t), std::min(to, curve().max_soc),
                1e-9);
  }
}

TEST(ChargeCurve, SocAfterChargingMonotoneAndBounded) {
  double prev = 0.1;
  for (double h = 0.0; h <= 8.0; h += 0.25) {
    const double s = soc_after_charging(curve(), 0.1, h);
    EXPECT_GE(s, prev - 1e-12);
    EXPECT_LE(s, curve().max_soc + 1e-12);
    prev = s;
  }
}

TEST(ChargeCurve, Validates) {
  EXPECT_THROW((void)charge_time_hours(curve(), -0.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)charge_time_hours(curve(), 0.9, 0.5), std::invalid_argument);
  EXPECT_THROW((void)soc_after_charging(curve(), 0.5, -1.0), std::invalid_argument);
  ChargeCurve bad = curve();
  bad.cc_rate_per_hour = 0.0;
  EXPECT_THROW((void)charge_time_hours(bad, 0.1, 0.5), std::invalid_argument);
  bad = curve();
  bad.knee_soc = 1.5;
  EXPECT_THROW((void)charge_time_hours(bad, 0.1, 0.5), std::invalid_argument);
}

TEST(PileChargeHours, ParallelismBoundedBySlowestBattery) {
  const std::vector<double> socs{0.1, 0.5, 0.7};
  const double serial = pile_charge_hours(curve(), socs, 0.95, 1);
  const double parallel = pile_charge_hours(curve(), socs, 0.95, 3);
  const double slowest = charge_time_hours(curve(), 0.1, 0.95);
  EXPECT_GT(serial, parallel);
  EXPECT_NEAR(parallel, slowest, 1e-9);  // 3 slots: makespan = slowest
  EXPECT_THROW((void)pile_charge_hours(curve(), socs, 0.95, 0),
               std::invalid_argument);
}

TEST(PileChargeHours, EmptyPileIsFree) {
  EXPECT_DOUBLE_EQ(pile_charge_hours(curve(), {}, 0.95, 2), 0.0);
}

}  // namespace
}  // namespace esharing::energy
