#include "solver/cost_oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

/// A general (non-colocated) instance: weighted clients and candidate
/// facilities drawn independently.
FlInstance random_instance(stats::Rng& rng, std::size_t nc, std::size_t nf) {
  FlInstance inst;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, nc)) {
    inst.clients.push_back({p, rng.uniform(0.5, 3.0)});
  }
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, nf)) {
    inst.facilities.push_back({p, rng.uniform(100.0, 5000.0)});
  }
  return inst;
}

TEST(CostOracle, RowsEqualConnectionCostExactly) {
  stats::Rng rng(5);
  const auto inst = random_instance(rng, 60, 35);
  const CostOracle oracle(inst);
  ASSERT_EQ(oracle.num_facilities(), inst.facilities.size());
  ASSERT_EQ(oracle.num_clients(), inst.clients.size());
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    const auto& row = oracle.row(i);
    ASSERT_EQ(row.size(), inst.clients.size());
    for (std::size_t j = 0; j < inst.clients.size(); ++j) {
      // Bit-identical, not approximately equal: the oracle's contract is
      // that it caches the very same double the solvers used to recompute.
      EXPECT_EQ(row[j], inst.connection_cost(i, j)) << i << "," << j;
      EXPECT_EQ(oracle.cost(i, j), inst.connection_cost(i, j));
    }
  }
}

TEST(CostOracle, RowsAreCachedAcrossAccessOrders) {
  stats::Rng rng(9);
  const auto inst = random_instance(rng, 40, 20);
  const CostOracle oracle(inst);
  // Touch rows out of order, interleaved with sorted rows; repeated access
  // must return the same cached data.
  const auto& r7 = oracle.row(7);
  const auto& s7 = oracle.sorted_row(7);
  const auto& r0 = oracle.row(0);
  EXPECT_EQ(&oracle.row(7), &r7);
  EXPECT_EQ(&oracle.sorted_row(7), &s7);
  EXPECT_EQ(&oracle.row(0), &r0);
  EXPECT_EQ(r7, oracle.row(7));
}

TEST(CostOracle, SortedRowIsSortedPermutationWithIndexTieBreak) {
  stats::Rng rng(13);
  auto inst = random_instance(rng, 50, 12);
  // Force exact cost ties: clients 10..13 duplicate client 2 (same point,
  // same weight), so their costs against every facility are identical.
  for (std::size_t j = 10; j <= 13; ++j) inst.clients[j] = inst.clients[2];
  const CostOracle oracle(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    const auto& sorted = oracle.sorted_row(i);
    ASSERT_EQ(sorted.size(), inst.clients.size());
    std::vector<char> seen(inst.clients.size(), 0);
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      const auto [cost, client] = sorted[k];
      EXPECT_EQ(cost, inst.connection_cost(i, client));
      EXPECT_FALSE(seen[client]);
      seen[client] = 1;
      if (k > 0) {
        // (cost, client) strictly increasing lexicographically.
        EXPECT_TRUE(sorted[k - 1].first < cost ||
                    (sorted[k - 1].first == cost && sorted[k - 1].second < client));
      }
    }
  }
}

TEST(CostOracle, AssignToOpenMatchesInstanceVersion) {
  stats::Rng rng(21);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto inst = random_instance(rng, 80, 30);
    const CostOracle oracle(inst);
    // Unsorted open sets with duplicates: both versions canonicalize.
    std::vector<std::size_t> open{17, 3, 3, 22, 0, 17};
    const auto via_oracle = assign_to_open(oracle, open);
    const auto via_instance = assign_to_open(inst, open);
    EXPECT_EQ(via_oracle.open, via_instance.open);
    EXPECT_EQ(via_oracle.assignment, via_instance.assignment);
    EXPECT_EQ(via_oracle.connection_cost, via_instance.connection_cost);
    EXPECT_EQ(via_oracle.opening_cost, via_instance.opening_cost);
  }
}

TEST(CostOracle, WorksOnColocatedInstances) {
  stats::Rng rng(31);
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {800, 800}}, 25)) {
    clients.push_back({p, rng.uniform(1.0, 2.0)});
    costs.push_back(500.0);
  }
  const auto inst = colocated_instance(clients, costs);
  const CostOracle oracle(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    // A colocated facility's own client costs nothing; the sorted row must
    // lead with it (cost 0 ties break toward the smallest client index,
    // and i is the unique zero-cost client here).
    EXPECT_EQ(oracle.cost(i, i), 0.0);
    EXPECT_EQ(oracle.sorted_row(i).front().second, i);
  }
}

}  // namespace
}  // namespace esharing::solver
