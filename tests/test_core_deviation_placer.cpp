#include "core/deviation_placer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "solver/meyerson.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::core {
namespace {

using geo::Point;

std::vector<Point> square_landmarks() {
  return {{250, 250}, {750, 250}, {750, 750}, {250, 750}};
}

std::function<double(Point)> constant_f(double f) {
  return [f](Point) { return f; };
}

DeviationPenaltyPlacer make_placer(DeviationPlacerConfig cfg = {},
                                   double f = 5000.0, std::uint64_t seed = 1) {
  stats::Rng rng(99);
  return DeviationPenaltyPlacer(square_landmarks(),
                                stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 100),
                                constant_f(f), cfg, seed);
}

TEST(DeviationPlacer, ValidatesConstruction) {
  DeviationPlacerConfig cfg;
  EXPECT_THROW(DeviationPenaltyPlacer({{0, 0}}, {}, constant_f(1.0), cfg, 1),
               std::invalid_argument);
  cfg.beta = 0.5;
  EXPECT_THROW(make_placer(cfg), std::invalid_argument);
  cfg = {};
  cfg.tolerance = 0.0;
  EXPECT_THROW(make_placer(cfg), std::invalid_argument);
  EXPECT_THROW(DeviationPenaltyPlacer(square_landmarks(), {}, nullptr, {}, 1),
               std::invalid_argument);
}

TEST(DeviationPlacer, StartsWithOfflineLandmarks) {
  const auto placer = make_placer();
  EXPECT_EQ(placer.num_active(), 4u);
  EXPECT_EQ(placer.num_online_opened(), 0u);
  EXPECT_EQ(placer.penalty_type(), PenaltyType::kTypeII);
}

TEST(DeviationPlacer, InitialScaleIsWStarOverK) {
  // Landmarks form a 500-side square: min pairwise distance 500, w* = 250,
  // k = 4 -> w*/k = 62.5, times the configured multiplier. Base f is set
  // tiny so the mean-opening-cost floor does not engage.
  DeviationPlacerConfig cfg;
  cfg.initial_scale_multiplier = 1.0;
  EXPECT_DOUBLE_EQ(make_placer(cfg, /*f=*/1.0).cost_scale(), 62.5);
  DeviationPlacerConfig scaled;
  scaled.initial_scale_multiplier = 8.0;
  EXPECT_DOUBLE_EQ(make_placer(scaled, /*f=*/1.0).cost_scale(), 500.0);
}

TEST(DeviationPlacer, InitialScaleFlooredAtMeanOpeningCost) {
  // With a realistic f (5 km) the w*/k seed would be far too small for
  // long streams; the scale starts at the mean landmark opening cost.
  DeviationPlacerConfig cfg;
  cfg.initial_scale_multiplier = 1.0;
  EXPECT_DOUBLE_EQ(make_placer(cfg, /*f=*/5000.0).cost_scale(), 5000.0);
}

TEST(DeviationPlacer, InitialScaleOverrideWins) {
  DeviationPlacerConfig cfg;
  cfg.initial_scale_override = 1234.0;
  EXPECT_DOUBLE_EQ(make_placer(cfg, /*f=*/5000.0).cost_scale(), 1234.0);
}

TEST(DeviationPlacer, RequestAtLandmarkNeverOpens) {
  auto placer = make_placer();
  for (int i = 0; i < 200; ++i) {
    const auto d = placer.process({250, 250});
    EXPECT_FALSE(d.opened);
    EXPECT_DOUBLE_EQ(d.connection_cost, 0.0);
  }
  EXPECT_EQ(placer.num_active(), 4u);
}

TEST(DeviationPlacer, TypeIIBlocksOpeningBeyondTolerance) {
  // With the Type II penalty, destinations farther than L from every
  // landmark have g = 0 and can never open.
  DeviationPlacerConfig cfg;
  cfg.tolerance = 200.0;
  cfg.adaptive_type = false;  // pin Type II
  cfg.ks_period = 0;
  auto placer = make_placer(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto d = placer.process({500, 500});  // ~354 m from landmarks
    EXPECT_FALSE(d.opened);
  }
}

TEST(DeviationPlacer, NearbyDeviationsCanOpen) {
  DeviationPlacerConfig cfg;
  cfg.tolerance = 200.0;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  auto placer = make_placer(cfg, /*f=*/5000.0, /*seed=*/3);
  // 100 m from a landmark: g = 0.5, c = 100, f = 5000*62.5 -> prob small
  // but positive; with many requests an opening eventually happens.
  int opened = 0;
  for (int i = 0; i < 4000 && opened == 0; ++i) {
    opened += placer.process({250 + 100, 250}).opened ? 1 : 0;
  }
  EXPECT_GT(opened, 0);
}

TEST(DeviationPlacer, ConnectionCostAccumulates) {
  DeviationPlacerConfig cfg;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.initial_scale_multiplier = 1e12;  // effectively never open
  auto placer = make_placer(cfg);
  (void)placer.process({250, 350});  // 100 m from (250,250)
  (void)placer.process({750, 250});  // at a landmark
  EXPECT_DOUBLE_EQ(placer.total_connection_cost(), 100.0);
}

TEST(DeviationPlacer, WeightScalesConnectionCost) {
  DeviationPlacerConfig cfg;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.initial_scale_multiplier = 1e12;
  auto placer = make_placer(cfg);
  const auto d = placer.process({250, 350}, 5.0);
  EXPECT_DOUBLE_EQ(d.connection_cost, 500.0);
  EXPECT_THROW((void)placer.process({0, 0}, -1.0), std::invalid_argument);
}

TEST(DeviationPlacer, OpeningCostDoublesAfterBetaKOpens) {
  DeviationPlacerConfig cfg;
  cfg.beta = 1.0;
  cfg.tolerance = 1e9;       // no penalty in practice (g ~ 1)
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  // Tiny f so openings are frequent.
  auto placer = make_placer(cfg, /*f=*/1.0, /*seed=*/5);
  const double scale0 = placer.cost_scale();
  stats::Rng rng(6);
  int guard = 0;
  while (placer.num_online_opened() < 4 && ++guard < 10000) {
    (void)placer.process({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  ASSERT_GE(placer.num_online_opened(), 4u);  // beta*k = 4 openings
  EXPECT_GE(placer.cost_scale(), 2.0 * scale0);
}

TEST(DeviationPlacer, TotalOpeningCostCountsActiveStations) {
  auto placer = make_placer();
  EXPECT_DOUBLE_EQ(placer.total_opening_cost(), 4.0 * 5000.0);
}

TEST(DeviationPlacer, RemoveStationReassignsFutureRequests) {
  DeviationPlacerConfig cfg;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  cfg.initial_scale_multiplier = 1e12;  // never open
  auto placer = make_placer(cfg);
  placer.remove_station(0);  // (250, 250) gone
  EXPECT_EQ(placer.num_active(), 3u);
  const auto d = placer.process({250, 250});
  EXPECT_FALSE(d.opened);
  // Nearest remaining landmark is 500 m away.
  EXPECT_DOUBLE_EQ(d.connection_cost, 500.0);
}

TEST(DeviationPlacer, RemoveStationValidation) {
  auto placer = make_placer();
  EXPECT_THROW(placer.remove_station(99), std::out_of_range);
  placer.remove_station(0);
  placer.remove_station(0);  // idempotent
  placer.remove_station(1);
  placer.remove_station(2);
  EXPECT_THROW(placer.remove_station(3), std::logic_error);  // last one
}

TEST(DeviationPlacer, AllRemovedFallbackReestablishes) {
  // After removals, an opening can re-establish service near old demand.
  DeviationPlacerConfig cfg;
  cfg.adaptive_type = false;
  cfg.ks_period = 0;
  auto placer = make_placer(cfg, /*f=*/1.0, /*seed=*/7);
  // Remove three of four stations; the fourth still forbids removal of all.
  placer.remove_station(0);
  placer.remove_station(1);
  placer.remove_station(2);
  EXPECT_EQ(placer.num_active(), 1u);
  stats::Rng rng(8);
  int guard = 0;
  while (placer.num_online_opened() == 0 && ++guard < 10000) {
    (void)placer.process({rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
  }
  EXPECT_GT(placer.num_online_opened(), 0u);
}

TEST(DeviationPlacer, KsTestSwitchesPenaltyOnDistributionShift) {
  // Historical data uniform over the field; live requests clustered far in
  // a corner -> low similarity -> Type I (tolerant) should be selected.
  DeviationPlacerConfig cfg;
  cfg.ks_period = 50;
  cfg.ks_min_samples = 30;
  cfg.adaptive_type = true;
  cfg.initial_penalty = PenaltyType::kTypeII;
  stats::Rng rng(9);
  DeviationPenaltyPlacer placer(
      square_landmarks(),
      stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 150),
      constant_f(1e9), cfg, 10);
  stats::Rng live(11);
  for (const Point p : stats::normal_points(live, {950, 950}, 15.0, 120)) {
    (void)placer.process(p);
  }
  EXPECT_LT(placer.last_similarity(), 80.0);
  EXPECT_EQ(placer.penalty_type(), PenaltyType::kTypeI);
}

TEST(DeviationPlacer, KsTestKeepsTypeIIWhenDistributionMatches) {
  DeviationPlacerConfig cfg;
  cfg.ks_period = 50;
  cfg.ks_min_samples = 30;
  cfg.adaptive_type = true;
  stats::Rng rng(12);
  const auto history = stats::normal_points(rng, {500, 500}, 60.0, 200);
  DeviationPenaltyPlacer placer(square_landmarks(), history, constant_f(1e9),
                                cfg, 13);
  stats::Rng live(14);
  for (const Point p : stats::normal_points(live, {500, 500}, 60.0, 150)) {
    (void)placer.process(p);
  }
  EXPECT_GT(placer.last_similarity(), 80.0);
  EXPECT_NE(placer.penalty_type(), PenaltyType::kTypeI);
}

TEST(DeviationPlacer, OpensFewerStationsThanMeyerson) {
  // The headline Table V behaviour on a uniform stream.
  stats::Rng rng(15);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 600);
  DeviationPlacerConfig cfg;
  cfg.tolerance = 200.0;
  auto placer = make_placer(cfg, /*f=*/5000.0, /*seed=*/16);
  solver::MeyersonPlacer meyerson(5000.0, 16);
  for (const Point p : pts) {
    (void)placer.process(p);
    (void)meyerson.process(p);
  }
  EXPECT_LT(placer.num_active(), meyerson.num_open() + 4);
}

TEST(DeviationPlacer, ReanchorReplacesLandmarksAndKeepsStations) {
  auto placer = make_placer();
  stats::Rng rng(23);
  for (const Point p :
       stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 150)) {
    (void)placer.process(p);
  }
  const std::size_t active_before = placer.num_active();
  const double scale_before = placer.cost_scale();

  // Two re-anchored landmarks coincide with existing stations, one is new.
  const std::vector<Point> plan{{250, 250}, {750, 750}, {111, 888}};
  placer.reanchor(plan);
  EXPECT_EQ(placer.reanchors(), 1u);
  // Existing stations persist; the one genuinely new landmark is
  // established as an offline (not online-opened) station.
  EXPECT_EQ(placer.num_active(), active_before + 1);
  bool found_new = false;
  for (const Station& s : placer.stations()) {
    if (s.location.x == 111.0 && s.location.y == 888.0) {
      found_new = true;
      EXPECT_FALSE(s.online_opened);
      EXPECT_TRUE(s.active);
    }
  }
  EXPECT_TRUE(found_new);
  // The adapted opening scale carries over — no replay of the aggressive
  // early-opening phase.
  EXPECT_DOUBLE_EQ(placer.cost_scale(), scale_before);
  // A request exactly at a new landmark deviates by zero: never opens.
  const auto before_active = placer.num_active();
  (void)placer.process({111, 888});
  EXPECT_EQ(placer.num_active(), before_active);
}

TEST(DeviationPlacer, ReanchorValidation) {
  auto placer = make_placer();
  EXPECT_THROW(placer.reanchor({}), std::invalid_argument);
  // A single landmark is fine: w* only seeds the initial scale, and a
  // re-anchor carries the adapted scale over.
  EXPECT_NO_THROW(placer.reanchor({{500, 500}}));
  EXPECT_EQ(placer.reanchors(), 1u);
}

TEST(DeviationPlacer, CheckpointRoundTripsReanchoredLandmarks) {
  auto placer = make_placer();
  stats::Rng rng(29);
  const auto warmup =
      stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 120);
  for (const Point p : warmup) (void)placer.process(p);
  placer.reanchor({{100, 100}, {900, 100}, {500, 900}});

  std::stringstream blob;
  placer.save(blob);
  auto restored =
      DeviationPenaltyPlacer::restore(blob, constant_f(5000.0), {});
  EXPECT_EQ(restored.reanchors(), placer.reanchors());
  ASSERT_EQ(restored.stations().size(), placer.stations().size());

  // The restored placer continues the stream bit-identically — including
  // penalties keyed to the RE-ANCHORED landmark set, which v1 blobs (first
  // k stations as landmarks) could not represent.
  const auto tail = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 150);
  for (const Point p : tail) {
    const auto a = placer.process(p);
    const auto b = restored.process(p);
    EXPECT_EQ(a.opened, b.opened);
    EXPECT_EQ(a.facility, b.facility);
    EXPECT_EQ(a.connection_cost, b.connection_cost);
  }
  EXPECT_EQ(placer.num_active(), restored.num_active());
  EXPECT_EQ(placer.total_connection_cost(), restored.total_connection_cost());
}

TEST(DeviationPlacer, DeterministicPerSeed) {
  stats::Rng rng(17);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 300);
  auto a = make_placer({}, 5000.0, 42);
  auto b = make_placer({}, 5000.0, 42);
  for (const Point p : pts) {
    (void)a.process(p);
    (void)b.process(p);
  }
  EXPECT_EQ(a.num_active(), b.num_active());
  EXPECT_DOUBLE_EQ(a.total_connection_cost(), b.total_connection_cost());
}

}  // namespace
}  // namespace esharing::core
