#include "data/synthetic_city.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <stdexcept>
#include <unordered_map>

#include "geo/geohash.h"
#include "stats/ks2d.h"

namespace esharing::data {
namespace {

CityConfig small_config() {
  CityConfig cfg;
  cfg.num_days = 4;  // Wed..Sat: three weekdays + one weekend day
  cfg.trips_per_weekday = 300;
  cfg.trips_per_weekend_day = 240;
  cfg.num_bikes = 80;
  cfg.num_users = 200;
  return cfg;
}

TEST(SyntheticCity, DeterministicForSameSeed) {
  SyntheticCity a(small_config(), 7);
  SyntheticCity b(small_config(), 7);
  const auto ta = a.generate_trips();
  const auto tb = b.generate_trips();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].start_time, tb[i].start_time);
    EXPECT_EQ(ta[i].end_geohash, tb[i].end_geohash);
    EXPECT_EQ(ta[i].bike_id, tb[i].bike_id);
  }
}

TEST(SyntheticCity, TripCountMatchesDayTypes) {
  SyntheticCity city(small_config(), 1);
  const auto trips = city.generate_trips();
  // 3 weekdays (Wed, Thu, Fri) * 300 + 1 weekend day (Sat) * 240.
  EXPECT_EQ(trips.size(), 3u * 300u + 240u);
}

TEST(SyntheticCity, TripsAreChronologicalWithUniqueOrderIds) {
  SyntheticCity city(small_config(), 2);
  const auto trips = city.generate_trips();
  std::set<std::int64_t> ids;
  for (std::size_t i = 0; i < trips.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(trips[i - 1].start_time, trips[i].start_time);
    }
    ids.insert(trips[i].order_id);
  }
  EXPECT_EQ(ids.size(), trips.size());
}

TEST(SyntheticCity, LocationsDecodeInsideField) {
  SyntheticCity city(small_config(), 3);
  const auto margin_box = city.field().inflated(150.0);  // geohash cell slack
  for (const auto& t : city.generate_trips()) {
    EXPECT_TRUE(geo::geohash_valid(t.start_geohash));
    EXPECT_TRUE(geo::geohash_valid(t.end_geohash));
    EXPECT_TRUE(margin_box.contains(city.start_point(t)));
    EXPECT_TRUE(margin_box.contains(city.end_point(t)));
  }
}

TEST(SyntheticCity, BikeContinuityAcrossTrips) {
  // A bike's next trip starts within one geohash cell of where its previous
  // trip ended.
  SyntheticCity city(small_config(), 4);
  const auto trips = city.generate_trips();
  std::unordered_map<std::int64_t, std::string> last_end;
  int checked = 0;
  for (const auto& t : trips) {
    const auto it = last_end.find(t.bike_id);
    if (it != last_end.end()) {
      const auto prev = geo::geohash_decode(it->second).center;
      const auto start = geo::geohash_decode(t.start_geohash).center;
      EXPECT_NEAR(prev.lat, start.lat, 1e-9);
      EXPECT_NEAR(prev.lon, start.lon, 1e-9);
      ++checked;
    }
    last_end[t.bike_id] = t.end_geohash;
  }
  EXPECT_GT(checked, 100);
}

TEST(SyntheticCity, RushHoursDominateWeekdays) {
  CityConfig cfg = small_config();
  cfg.num_days = 3;  // Wed..Fri, all weekdays
  SyntheticCity city(cfg, 5);
  std::array<int, 24> per_hour{};
  for (const auto& t : city.generate_trips()) {
    ++per_hour[static_cast<std::size_t>(hour_of_day(t.start_time))];
  }
  const int rush = per_hour[8] + per_hour[18];
  const int night = per_hour[2] + per_hour[3];
  EXPECT_GT(rush, 5 * std::max(night, 1));
}

TEST(SyntheticCity, WeekdayWeekendDistributionsDiffer) {
  CityConfig cfg = small_config();
  cfg.num_days = 12;
  SyntheticCity city(cfg, 6);
  const auto trips = city.generate_trips();
  std::vector<geo::Point> weekday, weekend;
  for (const auto& t : trips) {
    // Compare the same hours (midday) across day types.
    const int h = hour_of_day(t.start_time);
    if (h < 10 || h > 16) continue;
    auto& bucket = is_weekend(t.start_time) ? weekend : weekday;
    if (bucket.size() < 150) bucket.push_back(city.end_point(t));
  }
  ASSERT_GE(weekday.size(), 100u);
  ASSERT_GE(weekend.size(), 100u);
  const auto result = stats::ks2d_test(weekday, weekend);
  EXPECT_LT(result.similarity, 95.0);  // the Table IV cross-block regime
}

TEST(SyntheticCity, RepeatedGenerationContinuesTime) {
  SyntheticCity city(small_config(), 8);
  const auto first = city.generate_trips();
  const auto second = city.generate_trips();
  EXPECT_GT(second.front().start_time, first.back().start_time - kSecondsPerDay);
  EXPECT_GT(second.front().order_id, first.back().order_id);
  EXPECT_EQ(day_index(second.front().start_time), 4);
}

TEST(SyntheticCity, EventBurstClustersAtRequestedLocation) {
  SyntheticCity city(small_config(), 9);
  (void)city.generate_trips();
  const geo::Point center{2600.0, 300.0};
  const auto burst = city.generate_event_burst(
      5 * kSecondsPerDay, kSecondsPerHour, center, 60.0, 100);
  ASSERT_EQ(burst.size(), 100u);
  double mean_dist = 0.0;
  for (const auto& t : burst) {
    mean_dist += geo::distance(city.end_point(t), center);
  }
  mean_dist /= 100.0;
  EXPECT_LT(mean_dist, 220.0);  // sigma 60 + geohash quantization
}

TEST(SyntheticCity, EventBurstRejectsNonPositiveDuration) {
  SyntheticCity city(small_config(), 10);
  EXPECT_THROW((void)city.generate_event_burst(0, 0, {0, 0}, 10.0, 5),
               std::invalid_argument);
}

TEST(SyntheticCity, ValidatesConfig) {
  CityConfig bad = small_config();
  bad.num_bikes = 0;
  EXPECT_THROW(SyntheticCity(bad, 1), std::invalid_argument);
  CityConfig bad2 = small_config();
  bad2.field_size_m = 0.0;
  EXPECT_THROW(SyntheticCity(bad2, 1), std::invalid_argument);
}

TEST(SyntheticCity, PoiCategoriesAllPresent) {
  SyntheticCity city(small_config(), 11);
  std::set<PoiCategory> cats;
  for (const auto& poi : city.pois()) cats.insert(poi.category);
  EXPECT_EQ(cats.size(), static_cast<std::size_t>(kNumPoiCategories));
  EXPECT_EQ(city.pois().size(),
            small_config().pois_per_category * kNumPoiCategories);
}

TEST(CategoryWeight, OfficePeaksOnWeekdayMorning) {
  EXPECT_GT(category_weight(PoiCategory::kOffice, false, 8),
            category_weight(PoiCategory::kOffice, false, 22));
  EXPECT_GT(category_weight(PoiCategory::kOffice, false, 8),
            category_weight(PoiCategory::kOffice, true, 8));
}

TEST(CategoryWeight, RecreationPeaksOnWeekend) {
  EXPECT_GT(category_weight(PoiCategory::kRecreation, true, 14),
            category_weight(PoiCategory::kRecreation, false, 14));
}

TEST(CategoryWeight, RejectsBadHour) {
  EXPECT_THROW((void)category_weight(PoiCategory::kSubway, false, 24),
               std::invalid_argument);
  EXPECT_THROW((void)category_weight(PoiCategory::kSubway, false, -1),
               std::invalid_argument);
}

TEST(Profiles, WeekdayDoublePeaked) {
  const auto& p = weekday_profile();
  EXPECT_GT(p[8], p[12]);
  EXPECT_GT(p[18], p[12]);
  EXPECT_GT(p[12], p[3]);
}

}  // namespace
}  // namespace esharing::data
