#include "geo/point.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace esharing::geo {
namespace {

TEST(Point, ArithmeticOperators) {
  const Point a{3.0, 4.0};
  const Point b{1.0, -2.0};
  EXPECT_EQ(a + b, (Point{4.0, 2.0}));
  EXPECT_EQ(a - b, (Point{2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Point{6.0, 8.0}));
  EXPECT_EQ(2.0 * a, (Point{6.0, 8.0}));
  EXPECT_EQ(a / 2.0, (Point{1.5, 2.0}));
}

TEST(Point, NormAndNorm2) {
  const Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(p.norm(), 5.0);
  EXPECT_DOUBLE_EQ((Point{}).norm(), 0.0);
}

TEST(Point, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance2({0, 0}, {3, 4}), 25.0);
}

TEST(Point, DistanceIsSymmetric) {
  const Point a{-10.5, 20.25};
  const Point b{7.0, -3.5};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Point, StreamOutput) {
  std::ostringstream os;
  os << Point{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(BoundingBox, ContainsHalfOpenSemantics) {
  const BoundingBox box{{0, 0}, {10, 10}};
  EXPECT_TRUE(box.contains({0, 0}));
  EXPECT_TRUE(box.contains({9.999, 9.999}));
  EXPECT_FALSE(box.contains({10, 5}));
  EXPECT_FALSE(box.contains({5, 10}));
  EXPECT_FALSE(box.contains({-0.001, 5}));
}

TEST(BoundingBox, WidthHeightCenter) {
  const BoundingBox box{{2, 3}, {12, 7}};
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
  EXPECT_EQ(box.center(), (Point{7.0, 5.0}));
}

TEST(BoundingBox, ExpandedToCoversNewPoint) {
  BoundingBox box{{0, 0}, {1, 1}};
  box = box.expanded_to({5, -2});
  EXPECT_EQ(box.min, (Point{0, -2}));
  EXPECT_EQ(box.max, (Point{5, 1}));
}

TEST(BoundingBox, InflatedGrowsAllSides) {
  const BoundingBox box = BoundingBox{{0, 0}, {2, 2}}.inflated(1.0);
  EXPECT_EQ(box.min, (Point{-1, -1}));
  EXPECT_EQ(box.max, (Point{3, 3}));
}

TEST(BoundingBoxOfSet, MatchesExtremes) {
  const std::vector<Point> pts{{1, 5}, {-3, 2}, {4, -1}};
  const BoundingBox box = bounding_box(pts);
  EXPECT_EQ(box.min, (Point{-3, -1}));
  EXPECT_EQ(box.max, (Point{4, 5}));
}

TEST(BoundingBoxOfSet, ThrowsOnEmpty) {
  EXPECT_THROW(static_cast<void>(bounding_box({})), std::invalid_argument);
}

TEST(Centroid, AveragesPoints) {
  const std::vector<Point> pts{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_EQ(centroid(pts), (Point{1, 1}));
}

TEST(Centroid, ThrowsOnEmpty) {
  EXPECT_THROW(static_cast<void>(centroid({})), std::invalid_argument);
}

TEST(NearestIndex, FindsClosest) {
  const std::vector<Point> pts{{0, 0}, {10, 0}, {5, 5}};
  EXPECT_EQ(nearest_index(pts, {9, 1}), 1u);
  EXPECT_EQ(nearest_index(pts, {0.1, -0.1}), 0u);
  EXPECT_EQ(nearest_index(pts, {5, 4}), 2u);
}

TEST(NearestIndex, ThrowsOnEmpty) {
  EXPECT_THROW(static_cast<void>(nearest_index({}, {0, 0})), std::invalid_argument);
}

TEST(NearestIndex, TiePrefersFirst) {
  const std::vector<Point> pts{{-1, 0}, {1, 0}};
  EXPECT_EQ(nearest_index(pts, {0, 0}), 0u);
}

}  // namespace
}  // namespace esharing::geo
