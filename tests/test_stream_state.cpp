#include "stream/stream_state.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/event_bus.h"

namespace esharing::stream {
namespace {

using geo::Point;

Event trip_end(Point where, data::Seconds t, std::uint64_t seq = 0) {
  Event e;
  e.kind = EventKind::kTripEnd;
  e.time = t;
  e.seq = seq;
  e.where = where;
  return e;
}

Event battery(std::int64_t bike, double soc, Point where, data::Seconds t) {
  Event e;
  e.kind = EventKind::kBatteryLevel;
  e.time = t;
  e.where = where;
  e.bike_id = bike;
  e.soc = soc;
  return e;
}

template <typename Config>
void expect_rejects(const Config& config, const std::string& field) {
  try {
    config.validate();
    FAIL() << "expected " << field << " to be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message does not name the field: " << e.what();
  }
}

TEST(StreamState, ConfigValidation) {
  EXPECT_NO_THROW(StreamStateConfig{}.validate());

  StreamStateConfig c;
  c.window_length = 0;
  expect_rejects(c, "window_length");

  c = {};
  c.rate_halflife_s = 0.0;
  expect_rejects(c, "rate_halflife_s");

  c = {};
  c.low_soc_threshold = 0.0;
  expect_rejects(c, "low_soc_threshold");

  c = {};
  c.low_soc_threshold = 1.5;
  expect_rejects(c, "low_soc_threshold");

  c = {};
  c.cell_m = -1.0;
  expect_rejects(c, "cell_m");
}

TEST(StreamState, WindowSlidesWithEventTime) {
  StreamStateConfig cfg;
  cfg.window_length = 100;
  StreamState st(cfg);
  st.ingest(trip_end({10, 10}, 0, 0));
  st.ingest(trip_end({20, 20}, 50, 1));
  EXPECT_EQ(st.window_size(), 2u);
  // t=150: entries at 0 and 50 are both stale (time <= now - length).
  st.ingest(trip_end({30, 30}, 150, 2));
  EXPECT_EQ(st.window_size(), 1u);
  const auto pts = st.window_points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].x, 30.0);
  EXPECT_EQ(st.events_ingested(), 3u);
  EXPECT_EQ(st.now(), 150);
}

TEST(StreamState, CellCountsTrackTheWindow) {
  StreamStateConfig cfg;
  cfg.window_length = 100;
  cfg.cell_m = 100.0;
  StreamState st(cfg);
  st.ingest(trip_end({10, 10}, 0, 0));
  st.ingest(trip_end({50, 50}, 10, 1));   // same cell (0, 0)
  st.ingest(trip_end({250, 250}, 20, 2)); // cell (2, 2)
  auto snap = st.snapshot();
  ASSERT_EQ(snap.cells.size(), 2u);
  EXPECT_EQ(snap.cells[0].cx, 0);
  EXPECT_EQ(snap.cells[0].count, 2u);
  EXPECT_EQ(snap.cells[1].cx, 2);
  EXPECT_EQ(snap.cells[1].count, 1u);
  // After both cell-(0,0) entries age out the count drops to zero.
  st.ingest(trip_end({250, 210}, 110, 3));
  snap = st.snapshot();
  ASSERT_EQ(snap.cells.size(), 2u);
  EXPECT_EQ(snap.cells[0].count, 0u);
  EXPECT_EQ(snap.cells[1].count, 2u);
}

TEST(StreamState, ArrivalRateDecaysWithHalfLife) {
  StreamStateConfig cfg;
  cfg.rate_halflife_s = 100.0;
  cfg.window_length = 100000;
  StreamState st(cfg);
  st.ingest(trip_end({10, 10}, 0, 0));
  const double r0 = st.arrival_rate({10, 10}, 0);
  EXPECT_GT(r0, 0.0);
  EXPECT_DOUBLE_EQ(st.arrival_rate({10, 10}, 100), r0 / 2.0);
  EXPECT_DOUBLE_EQ(st.arrival_rate({10, 10}, 200), r0 / 4.0);
  EXPECT_DOUBLE_EQ(st.arrival_rate({900, 900}, 0), 0.0);  // untouched cell
  // A second arrival raises the estimate above the decayed value.
  st.ingest(trip_end({20, 20}, 100, 1));
  EXPECT_GT(st.arrival_rate({10, 10}, 100), r0 / 2.0);
}

TEST(StreamState, WatchlistFollowsTelemetry) {
  StreamStateConfig cfg;
  cfg.low_soc_threshold = 0.2;
  StreamState st(cfg);
  st.ingest(battery(7, 0.15, {10, 10}, 0));
  st.ingest(battery(9, 0.5, {20, 20}, 1));   // healthy: not listed
  st.ingest(battery(3, 0.05, {30, 30}, 2));
  EXPECT_EQ(st.watchlist_size(), 2u);
  auto snap = st.snapshot();
  ASSERT_EQ(snap.watchlist.size(), 2u);
  EXPECT_EQ(snap.watchlist[0].bike_id, 3);  // sorted by bike id
  EXPECT_EQ(snap.watchlist[1].bike_id, 7);
  // A fresh report updates in place; recharge clears the entry.
  st.ingest(battery(7, 0.1, {40, 40}, 3));
  EXPECT_EQ(st.watchlist_size(), 2u);
  st.ingest(battery(7, 0.9, {40, 40}, 4));
  EXPECT_EQ(st.watchlist_size(), 1u);
  EXPECT_EQ(st.snapshot().watchlist[0].bike_id, 3);
}

TEST(StreamState, MergedViewIsShardCountInvariant) {
  // Route one event log through 1 shard and through 4 shards; the merged
  // snapshots must be identical (cells, window seq order, watchlist).
  EventBusConfig route1;
  route1.shard_count = 1;
  EventBusConfig route4;
  route4.shard_count = 4;
  const EventBus bus1(route1);
  const EventBus bus4(route4);

  std::vector<Event> log;
  for (int i = 0; i < 120; ++i) {
    log.push_back(trip_end({73.0 * i, 157.0 * (120 - i)}, i,
                           static_cast<std::uint64_t>(i)));
  }
  for (int b = 0; b < 10; ++b) {
    log.push_back(battery(b, 0.1, {40.0 * b, 11.0 * b}, 120 + b));
    log.back().seq = static_cast<std::uint64_t>(120 + b);
  }

  StreamStateConfig cfg;
  cfg.window_length = 100000;
  StreamState single(cfg);
  std::vector<StreamState> sharded(4, StreamState(cfg));
  for (const Event& e : log) {
    single.ingest(e);
    sharded[bus4.shard_of(e.where)].ingest(e);
  }
  (void)bus1;

  // Shards evict and decay lazily, so every snapshot is taken at the
  // global clock — the invariance contract of snapshot(as_of).
  const data::Seconds global_now = single.now();
  const StateSnapshot merged_single =
      StreamState::merge({single.snapshot(global_now)});
  std::vector<StateSnapshot> snaps;
  for (const auto& s : sharded) snaps.push_back(s.snapshot(global_now));
  const StateSnapshot merged_sharded = StreamState::merge(snaps);

  ASSERT_EQ(merged_single.cells.size(), merged_sharded.cells.size());
  for (std::size_t i = 0; i < merged_single.cells.size(); ++i) {
    EXPECT_EQ(merged_single.cells[i].cx, merged_sharded.cells[i].cx);
    EXPECT_EQ(merged_single.cells[i].cy, merged_sharded.cells[i].cy);
    EXPECT_EQ(merged_single.cells[i].count, merged_sharded.cells[i].count);
    EXPECT_DOUBLE_EQ(merged_single.cells[i].rate_per_s,
                     merged_sharded.cells[i].rate_per_s);
  }
  ASSERT_EQ(merged_single.window.size(), merged_sharded.window.size());
  for (std::size_t i = 0; i < merged_single.window.size(); ++i) {
    EXPECT_EQ(merged_single.window[i].seq, merged_sharded.window[i].seq);
    EXPECT_DOUBLE_EQ(merged_single.window[i].where.x,
                     merged_sharded.window[i].where.x);
  }
  ASSERT_EQ(merged_single.watchlist.size(), merged_sharded.watchlist.size());
  for (std::size_t i = 0; i < merged_single.watchlist.size(); ++i) {
    EXPECT_EQ(merged_single.watchlist[i].bike_id,
              merged_sharded.watchlist[i].bike_id);
  }
}

TEST(StreamState, SaveRestoreRoundTripIsExactAndByteStable) {
  StreamStateConfig cfg;
  cfg.window_length = 500;
  StreamState st(cfg);
  for (int i = 0; i < 40; ++i) {
    st.ingest(trip_end({31.0 * i, 17.0 * i}, i * 7,
                       static_cast<std::uint64_t>(i)));
  }
  st.ingest(battery(5, 0.1, {100, 100}, 300));
  st.ingest(battery(8, 0.12, {200, 200}, 301));

  std::ostringstream blob;
  st.save(blob);
  std::istringstream in(blob.str());
  const StreamState restored = StreamState::restore(in, cfg);
  EXPECT_TRUE(st.equals(restored));
  EXPECT_TRUE(restored.equals(st));

  // Identical state writes identical bytes (the checkpoint-diff property).
  std::ostringstream blob2;
  restored.save(blob2);
  EXPECT_EQ(blob.str(), blob2.str());

  // And the restored state keeps evolving identically.
  StreamState a = restored;
  StreamState b = restored;
  a.ingest(trip_end({999, 999}, 400, 77));
  b.ingest(trip_end({999, 999}, 400, 77));
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(restored));
}

TEST(StreamState, RestoreRejectsTruncatedBlob) {
  StreamStateConfig cfg;
  StreamState st(cfg);
  st.ingest(trip_end({1, 1}, 0, 0));
  std::ostringstream blob;
  st.save(blob);
  const std::string full = blob.str();
  std::istringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)StreamState::restore(truncated, cfg), std::runtime_error);
}

}  // namespace
}  // namespace esharing::stream
