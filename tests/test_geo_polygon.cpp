#include "geo/polygon.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::geo {
namespace {

Polygon unit_square() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(Polygon, RejectsDegenerate) {
  EXPECT_THROW(Polygon({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(Polygon, ContainsInteriorExcludesExterior) {
  const Polygon sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_TRUE(sq.contains({0.01, 0.99}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
  EXPECT_FALSE(sq.contains({0.5, 2.0}));
}

TEST(Polygon, ConcaveShapeHandled) {
  // An L-shape: the notch must be outside.
  const Polygon ell({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(ell.contains({0.5, 1.5}));
  EXPECT_TRUE(ell.contains({1.5, 0.5}));
  EXPECT_FALSE(ell.contains({1.5, 1.5}));  // the notch
  EXPECT_DOUBLE_EQ(ell.area(), 3.0);
}

TEST(Polygon, SignedAreaOrientation) {
  EXPECT_DOUBLE_EQ(unit_square().signed_area(), 1.0);  // CCW
  const Polygon cw({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(cw.signed_area(), -1.0);
  EXPECT_DOUBLE_EQ(cw.area(), 1.0);
}

TEST(Polygon, BoundsAndRectangleFactory) {
  const Polygon rect = Polygon::rectangle({{10, 20}, {30, 50}});
  EXPECT_DOUBLE_EQ(rect.area(), 600.0);
  const BoundingBox b = rect.bounds();
  EXPECT_EQ(b.min, (Point{10, 20}));
  EXPECT_EQ(b.max, (Point{30, 50}));
  EXPECT_TRUE(rect.contains({15, 35}));
}

TEST(Polygon, MonteCarloAreaAgreement) {
  // contains() integrates to the polygon's area.
  const Polygon tri({{0, 0}, {4, 0}, {0, 4}});
  stats::Rng rng(1);
  int inside = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    inside += tri.contains({rng.uniform(0.0, 4.0), rng.uniform(0.0, 4.0)}) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(inside) / n * 16.0, tri.area(), 0.2);
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  const auto hull = convex_hull(
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.7}});
  EXPECT_EQ(hull.vertices().size(), 4u);
  EXPECT_DOUBLE_EQ(hull.area(), 1.0);
}

TEST(ConvexHull, HullContainsAllInputPoints) {
  stats::Rng rng(2);
  auto pts = stats::uniform_points(rng, {{0, 0}, {100, 100}}, 60);
  const auto hull = convex_hull(pts);
  // Interior points (shrunk slightly toward the centroid) are inside.
  const Point c = centroid(pts);
  for (Point p : pts) {
    EXPECT_TRUE(hull.contains({c.x + 0.99 * (p.x - c.x),
                               c.y + 0.99 * (p.y - c.y)}));
  }
}

TEST(ConvexHull, RejectsCollinear) {
  EXPECT_THROW((void)convex_hull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}),
               std::invalid_argument);
  EXPECT_THROW((void)convex_hull({{0, 0}, {0, 0}, {1, 1}}),
               std::invalid_argument);
}

TEST(ZoneSet, EmptyPermitsEverything) {
  const ZoneSet zones;
  EXPECT_TRUE(zones.permits({123, 456}));
}

TEST(ZoneSet, ForbiddenZonesWin) {
  ZoneSet zones;
  zones.add_allowed(Polygon::rectangle({{0, 0}, {100, 100}}));
  zones.add_forbidden(Polygon::rectangle({{40, 40}, {60, 60}}));
  EXPECT_TRUE(zones.permits({10, 10}));
  EXPECT_FALSE(zones.permits({50, 50}));   // forbidden inside allowed
  EXPECT_FALSE(zones.permits({200, 200})); // outside every allowed zone
}

TEST(ZoneSet, MultipleAllowedZones) {
  ZoneSet zones;
  zones.add_allowed(Polygon::rectangle({{0, 0}, {10, 10}}));
  zones.add_allowed(Polygon::rectangle({{90, 90}, {100, 100}}));
  EXPECT_TRUE(zones.permits({5, 5}));
  EXPECT_TRUE(zones.permits({95, 95}));
  EXPECT_FALSE(zones.permits({50, 50}));
}

}  // namespace
}  // namespace esharing::geo
