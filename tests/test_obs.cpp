#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "geo/spatial_index.h"
#include "ml/batch.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "solver/jms_greedy.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::obs {
namespace {

/// Restores the global enabled flag on scope exit so tests cannot leak an
/// enabled obs layer into each other.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

TEST(ObsMetrics, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetsAndAdds) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(1.5);
  EXPECT_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsObservations) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (le is inclusive)
  h.observe(5.0);   // bucket 1
  h.observe(1e6);   // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 1e6);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(ObsMetrics, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  // No finite buckets is legal: everything lands in the overflow bucket.
  Histogram overflow_only({});
  overflow_only.observe(3.0);
  EXPECT_EQ(overflow_only.bucket_counts(), (std::vector<std::uint64_t>{1}));
}

TEST(ObsMetrics, QuantileInterpolatesInsideTheRankBucket) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  // 25 observations per finite bucket, 100 total, uniform by construction.
  for (int i = 0; i < 25; ++i) {
    h.observe(0.5);
    h.observe(1.5);
    h.observe(2.5);
    h.observe(3.5);
  }
  // rank 50 exhausts bucket 1 exactly: interpolation hits its upper edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 2.0);
  // rank 99 lands 24/25ths into bucket 3 ([3, 4]).
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.0 + 24.0 / 25.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // q = 0 selects rank 1, still inside the first bucket, never below 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0 / 25.0);
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(ObsMetrics, QuantileEdgeCases) {
  // Empty histogram: every quantile is 0.
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.999), 0.0);

  // Single finite bucket: interpolates from a lower edge of 0.
  Histogram single({10.0});
  for (int i = 0; i < 100; ++i) single.observe(5.0);
  EXPECT_DOUBLE_EQ(single.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 10.0);

  // Observations beyond the largest bound live in the overflow bucket,
  // which has no finite upper edge: the estimate clamps to the largest
  // finite bound rather than inventing a value.
  Histogram overflow({1.0});
  for (int i = 0; i < 10; ++i) overflow.observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.999), 1.0);

  // No finite buckets at all: 0 is the only honest answer.
  Histogram unbounded({});
  unbounded.observe(3.0);
  EXPECT_DOUBLE_EQ(unbounded.quantile(0.5), 0.0);
}

TEST(ObsMetrics, QuantileUnderConcurrentRecording) {
  Histogram h(default_latency_buckets());
  constexpr std::size_t kN = 20000;
  // Deterministic observation set, recorded from parallel exec-pool chunks;
  // bucket counts are atomic so the final tallies are exact.
  exec::parallel_for(kN, 256, [&](std::size_t begin, std::size_t end,
                                  std::size_t) {
    for (std::size_t i = begin; i < end; ++i) {
      h.observe(1e-6 + 1e-4 * static_cast<double>(i % 100));
    }
  });
  EXPECT_EQ(h.count(), kN);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  const double p999 = h.quantile(0.999);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // Every observation is < 10.1 ms, so no estimate may leave that range.
  EXPECT_LE(p999, 2e-2);
}

TEST(ObsMetrics, CounterShardBatchesAndFlushes) {
  Counter c;
  {
    CounterShard shard(c, /*batch=*/4);
    shard.add();
    shard.add();
    EXPECT_EQ(c.value(), 0u);  // below the batch threshold: still local
    EXPECT_EQ(shard.pending(), 2u);
    shard.add(2);  // reaches the threshold
    EXPECT_EQ(c.value(), 4u);
    EXPECT_EQ(shard.pending(), 0u);
    shard.add(100);  // >= batch flushes immediately
    EXPECT_EQ(c.value(), 104u);
    shard.add();  // left pending...
  }
  EXPECT_EQ(c.value(), 105u);  // ...and flushed by the destructor
}

TEST(ObsRegistry, FindOrCreateReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x.y.z");
  Counter& b = reg.counter("x.y.z");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsRegistry, RejectsKindCollisionsAndEmptyNames) {
  Registry reg;
  reg.counter("dual.use");
  EXPECT_THROW(reg.gauge("dual.use"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dual.use"), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(ObsRegistry, HistogramBoundsApplyOnFirstRegistrationOnly) {
  Registry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {9.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  // Empty bounds select the default time buckets.
  EXPECT_EQ(reg.histogram("t").upper_bounds(), default_time_buckets());
}

TEST(ObsRegistry, ResetZeroesEverythingButKeepsRegistrations) {
  Registry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(1.0);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.reset();
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 0.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(ObsExport, GoldenJsonShape) {
  // This string is the frozen machine-readable contract of the snapshot
  // artifact; bench tooling and CI parse it. Change it deliberately.
  Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.level").set(2.5);
  reg.histogram("c.seconds", {0.1, 1.0}).observe(0.05);
  EXPECT_EQ(to_json(reg.snapshot()),
            "{\"counters\":{\"a.count\":3},"
            "\"gauges\":{\"b.level\":2.5},"
            "\"histograms\":{\"c.seconds\":{\"upper_bounds\":[0.1,1],"
            "\"buckets\":[1,0,0],\"count\":1,\"sum\":0.05}}}");
}

TEST(ObsExport, GoldenCsvShape) {
  Registry reg;
  reg.counter("a.count").add(3);
  reg.histogram("c.seconds", {0.5}).observe(2.0);
  EXPECT_EQ(to_csv(reg.snapshot()),
            "kind,name,value\n"
            "counter,a.count,3\n"
            "histogram,c.seconds.count,1\n"
            "histogram,c.seconds.sum,2\n"
            "histogram,c.seconds.le_0.5,0\n"
            "histogram,c.seconds.overflow,1\n");
}

TEST(ObsExport, JsonSortsMetricsByName) {
  Registry reg;
  reg.counter("z.last");
  reg.counter("a.first");
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "z.last");
}

TEST(ObsEvents, EmitWritesGoldenJsonlLines) {
  const EnabledGuard on(true);
  Registry reg;
  auto sink = std::make_shared<MemoryEventSink>();
  reg.set_event_sink(sink);
  reg.emit("placer.penalty_switch",
           {{"similarity", 72.5}, {"to", "type_iii"}});
  reg.emit("sim.charging_round", {{"bikes", std::size_t{12}}});
  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "{\"seq\":0,\"event\":\"placer.penalty_switch\","
            "\"similarity\":72.5,\"to\":\"type_iii\"}");
  EXPECT_EQ(lines[1], "{\"seq\":1,\"event\":\"sim.charging_round\",\"bikes\":12}");
}

TEST(ObsEvents, EmitIsNoOpWhenDisabledOrSinkless) {
  Registry reg;
  auto sink = std::make_shared<MemoryEventSink>();
  reg.set_event_sink(sink);
  reg.emit("quiet", {});  // disabled -> dropped
  {
    const EnabledGuard on(true);
    Registry no_sink;
    no_sink.emit("also.quiet", {});  // no sink -> dropped, no crash
    reg.emit("loud", {});
  }
  ASSERT_EQ(sink->lines().size(), 1u);
  EXPECT_EQ(sink->lines()[0], "{\"seq\":0,\"event\":\"loud\"}");
}

TEST(ObsEvents, JsonEscapingAndNumberFormats) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(-17.0), "-17");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

TEST(ObsScopedTimer, ObservesOnlyWhenEnabled) {
  Histogram h({1e9});  // everything lands in the first bucket
  {
    const ScopedTimer t(h);  // disabled -> null handle
  }
  EXPECT_EQ(h.count(), 0u);
  {
    const EnabledGuard on(true);
    const ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ObsGating, DisabledIsDefaultAndTogglable) {
  EXPECT_FALSE(enabled());
  {
    const EnabledGuard on(true);
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

/// Freezes the instrumented metric names: these strings are the public
/// surface of the obs layer (DESIGN.md naming convention) and dashboards /
/// snapshot consumers depend on them. Renaming one is a breaking change —
/// update this test deliberately when doing so.
TEST(ObsGolden, InstrumentedHotPathsUseTheFrozenMetricNames) {
  const EnabledGuard on(true);
  Registry& reg = Registry::global();

  stats::Rng rng(71);
  const auto pts = stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 64);
  const geo::SpatialIndex index(pts);
  // The per-query counters are thread-locally batched (CounterShard), so
  // drive enough queries to force at least one flush of each shard.
  const auto queries = stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 8192);
  for (const geo::Point q : queries) (void)index.nearest(q);
  (void)index.within_radius({500, 500}, 300.0);

  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  for (const geo::Point p : pts) {
    clients.push_back({p, 1.0});
    costs.push_back(8000.0);
  }
  const auto inst =
      solver::colocated_instance(std::move(clients), std::move(costs));
  (void)solver::jms_greedy(inst);

  // One tiny batched fit + refresh drives every ml.forecast.* metric.
  ml::batch::BatchRnnConfig bcfg;
  bcfg.hidden = 4;
  bcfg.lookback = 3;
  bcfg.epochs = 2;
  ml::batch::BatchRnn brnn(bcfg);
  const ml::Series series{3, 4, 5, 6, 5, 4, 3, 4, 5, 6};
  brnn.fit({series});
  (void)brnn.forecast({series}, 2);

  for (const char* name : {
           "geo.spatial_index.nearest_queries",
           "geo.spatial_index.nearest_cells_scanned",
           "geo.spatial_index.radius_queries",
           "geo.spatial_index.rebuilds",
           "solver.cost_oracle.row_materializations",
           "solver.jms_greedy.solves",
           "solver.jms_greedy.iterations",
           "ml.forecast.fits",
           "ml.forecast.batch_refreshes",
           "ml.forecast.steps",
           "ml.forecast.cells",
       }) {
    EXPECT_GT(reg.counter(name).value(), 0u) << "metric not bumped: " << name;
  }
  EXPECT_GT(reg.histogram("solver.jms_greedy.solve_seconds").count(), 0u);
  EXPECT_GT(reg.histogram("ml.forecast.fit_seconds").count(), 0u);
  EXPECT_GT(reg.histogram("ml.forecast.batch_refresh_seconds").count(), 0u);
  EXPECT_GT(reg.gauge("solver.jms_greedy.num_threads").value(), 0.0);
}

TEST(ObsConcurrency, ParallelUpdatesAndRegistrationsAreConsistent) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Every thread registers the shared metrics itself (find-or-create
      // under contention) plus one private counter, then hammers updates.
      Counter& shared = reg.counter("conc.shared");
      Gauge& gauge = reg.gauge("conc.gauge");
      Histogram& hist = reg.histogram("conc.hist", {0.5});
      Counter& own = reg.counter("conc.thread." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared.add();
        own.add();
        gauge.add(1.0);
        hist.observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(reg.counter("conc.shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(reg.gauge("conc.gauge").value(),
                   static_cast<double>(kThreads) * kIters);
  Histogram& hist = reg.histogram("conc.hist");
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads) * kIters / 2);
  EXPECT_EQ(buckets[1], static_cast<std::uint64_t>(kThreads) * kIters / 2);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("conc.thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
}

TEST(ObsConcurrency, ConcurrentEmitProducesUniqueSequenceNumbers) {
  const EnabledGuard on(true);
  Registry reg;
  auto sink = std::make_shared<MemoryEventSink>();
  reg.set_event_sink(sink);
  constexpr int kThreads = 4;
  constexpr int kEvents = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kEvents; ++i) reg.emit("tick", {});
    });
  }
  for (auto& w : workers) w.join();
  const auto lines = sink->lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * kEvents);
  std::vector<bool> seen(lines.size(), false);
  for (const std::string& line : lines) {
    const auto start = line.find(":") + 1;
    const auto end = line.find(",");
    const auto seq = std::stoul(line.substr(start, end - start));
    ASSERT_LT(seq, seen.size());
    EXPECT_FALSE(seen[seq]);
    seen[seq] = true;
  }
}

}  // namespace
}  // namespace esharing::obs
