#include "geo/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::geo {
namespace {

constexpr std::size_t kNpos = SpatialIndex::npos;

/// Brute-force mirror of SpatialIndex::nearest: first strict minimum of
/// squared distance over ids in insertion order (ties -> smallest id).
std::size_t brute_nearest(const std::vector<Point>& pts,
                          const std::vector<char>& active, Point q,
                          std::size_t exclude = kNpos) {
  std::size_t best = kNpos;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!active[i] || i == exclude) continue;
    const double d2 = distance2(pts[i], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

/// Brute-force mirror of within_radius: active ids with d^2 <= r^2,
/// ascending.
std::vector<std::size_t> brute_within(const std::vector<Point>& pts,
                                      const std::vector<char>& active, Point q,
                                      double radius) {
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (active[i] && distance2(pts[i], q) <= r2) out.push_back(i);
  }
  return out;
}

/// A randomized point set with exact duplicates sprinkled in (every sixth
/// point repeats an earlier one) and a detached far cluster, so queries
/// cross duplicate ids, empty buckets, and large inter-cluster gaps.
std::vector<Point> make_points(stats::Rng& rng, std::size_t n) {
  auto pts = stats::uniform_points(rng, {{0.0, 0.0}, {1000.0, 1000.0}}, n);
  for (std::size_t i = 5; i < pts.size(); i += 6) pts[i] = pts[i / 2];
  const auto far = stats::uniform_points(
      rng, {{50000.0, 50000.0}, {50200.0, 50200.0}}, std::max<std::size_t>(n / 10, 1));
  pts.insert(pts.end(), far.begin(), far.end());
  return pts;
}

std::vector<Point> make_queries(stats::Rng& rng, std::size_t n) {
  auto qs = stats::uniform_points(rng, {{-200.0, -200.0}, {1200.0, 1200.0}}, n);
  // Probes inside the empty gap and beyond both clusters.
  qs.push_back({20000.0, 20000.0});
  qs.push_back({-1e6, 3.0});
  qs.push_back({50100.0, 50100.0});
  return qs;
}

TEST(SpatialIndex, EmptyIndexReturnsNposAndNoNeighbors) {
  const SpatialIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.nearest({1.0, 2.0}), kNpos);
  EXPECT_TRUE(index.within_radius({1.0, 2.0}, 1e9).empty());
}

TEST(SpatialIndex, NonPositiveCellSizeThrows) {
  EXPECT_THROW(SpatialIndex(0.0), std::invalid_argument);
  EXPECT_THROW(SpatialIndex(-5.0), std::invalid_argument);
}

TEST(SpatialIndex, NearestMatchesBruteForceAcrossCellSizes) {
  stats::Rng rng(42);
  const auto pts = make_points(rng, 400);
  const auto queries = make_queries(rng, 200);
  const std::vector<char> active(pts.size(), 1);
  // 0.0 = auto sizing; the fixed sizes are deliberately mismatched to the
  // data extent (tiny cells and one-bucket-for-everything cells).
  for (double cell : {0.0, 0.5, 37.0, 1e6}) {
    const SpatialIndex index(pts, cell);
    ASSERT_EQ(index.size(), pts.size());
    for (Point q : queries) {
      EXPECT_EQ(index.nearest(q), brute_nearest(pts, active, q))
          << "cell=" << cell << " q=" << q;
    }
  }
}

TEST(SpatialIndex, WithinRadiusMatchesBruteForceAcrossCellSizes) {
  stats::Rng rng(7);
  const auto pts = make_points(rng, 300);
  const auto queries = make_queries(rng, 60);
  const std::vector<char> active(pts.size(), 1);
  for (double cell : {0.0, 2.0, 111.0}) {
    const SpatialIndex index(pts, cell);
    for (Point q : queries) {
      for (double r : {0.0, 1.0, 55.0, 400.0, 80000.0}) {
        EXPECT_EQ(index.within_radius(q, r), brute_within(pts, active, q, r))
            << "cell=" << cell << " r=" << r << " q=" << q;
      }
    }
  }
}

TEST(SpatialIndex, WithinRadiusBoundaryIsInclusive) {
  const std::vector<Point> pts{{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  const SpatialIndex index(pts);
  // d((0,0),(3,4)) = 5 exactly: the boundary point must be included.
  EXPECT_EQ(index.within_radius({0.0, 0.0}, 5.0),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(index.within_radius({0.0, 0.0}, 10.0),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SpatialIndex, DeactivatedEntriesAreInvisibleUntilReactivated) {
  stats::Rng rng(3);
  const auto pts = make_points(rng, 250);
  const auto queries = make_queries(rng, 80);
  SpatialIndex index(pts);
  std::vector<char> active(pts.size(), 1);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (rng.bernoulli(0.4)) {
      index.deactivate(i);
      active[i] = 0;
    }
  }
  EXPECT_EQ(index.active_count(),
            static_cast<std::size_t>(
                std::count(active.begin(), active.end(), char{1})));
  for (Point q : queries) {
    EXPECT_EQ(index.nearest(q), brute_nearest(pts, active, q));
    EXPECT_EQ(index.within_radius(q, 150.0), brute_within(pts, active, q, 150.0));
  }
  // Reactivate half of the removed ids and re-check.
  for (std::size_t i = 0; i < pts.size(); i += 2) {
    if (!active[i]) {
      index.activate(i);
      active[i] = 1;
    }
  }
  for (Point q : queries) {
    EXPECT_EQ(index.nearest(q), brute_nearest(pts, active, q));
    EXPECT_EQ(index.within_radius(q, 90.0), brute_within(pts, active, q, 90.0));
  }
}

TEST(SpatialIndex, AllDeactivatedBehavesLikeEmpty) {
  SpatialIndex index;
  index.insert({1.0, 1.0});
  index.insert({2.0, 2.0});
  index.deactivate(0);
  index.deactivate(1);
  EXPECT_EQ(index.active_count(), 0u);
  EXPECT_EQ(index.nearest({1.5, 1.5}), kNpos);
  EXPECT_TRUE(index.within_radius({1.5, 1.5}, 100.0).empty());
}

TEST(SpatialIndex, ExcludeSkipsSelfMatches) {
  stats::Rng rng(11);
  const auto pts = make_points(rng, 120);
  const std::vector<char> active(pts.size(), 1);
  const SpatialIndex index(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(index.nearest(pts[i], i), brute_nearest(pts, active, pts[i], i));
  }
}

TEST(SpatialIndex, TiesBreakTowardSmallestInsertionId) {
  // Exact duplicates: the query at the shared location must return the
  // first-inserted id, matching a first-strict-minimum linear scan.
  SpatialIndex index;
  index.insert({5.0, 5.0});
  index.insert({9.0, 9.0});
  index.insert({5.0, 5.0});
  EXPECT_EQ(index.nearest({5.0, 5.0}), 0u);
  // Four corners equidistant from the center: smallest id wins even when
  // the tied candidates sit in different grid cells.
  SpatialIndex corners(1.0);
  corners.insert({-1.0, -1.0});
  corners.insert({1.0, -1.0});
  corners.insert({-1.0, 1.0});
  corners.insert({1.0, 1.0});
  EXPECT_EQ(corners.nearest({0.0, 0.0}), 0u);
}

TEST(SpatialIndex, IncrementalInsertMatchesBruteForceThroughRebuilds) {
  stats::Rng rng(19);
  const auto pts = make_points(rng, 500);
  const auto queries = make_queries(rng, 40);
  SpatialIndex index;  // auto-sized: grows through several rebuilds
  std::vector<Point> seen;
  std::vector<char> active;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(index.insert(pts[i]), i);
    seen.push_back(pts[i]);
    active.push_back(1);
    if (i % 97 == 0 || i + 1 == pts.size()) {
      for (Point q : queries) {
        ASSERT_EQ(index.nearest(q), brute_nearest(seen, active, q)) << "n=" << i;
      }
    }
  }
  EXPECT_EQ(index.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(index.point(i), pts[i]);
}

TEST(SpatialIndex, MinPairwiseDistanceMatchesQuadraticScan) {
  stats::Rng rng(23);
  for (std::size_t n : {2u, 3u, 17u, 300u}) {
    const auto pts = make_points(rng, n);
    double brute = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        brute = std::min(brute, distance(pts[i], pts[j]));
      }
    }
    EXPECT_EQ(min_pairwise_distance(pts), brute) << "n=" << n;
  }
}

TEST(SpatialIndex, MinPairwiseDistanceDegenerateSets) {
  EXPECT_TRUE(std::isinf(min_pairwise_distance({})));
  EXPECT_TRUE(std::isinf(min_pairwise_distance({{1.0, 2.0}})));
  EXPECT_EQ(min_pairwise_distance({{1.0, 2.0}, {1.0, 2.0}}), 0.0);
}

}  // namespace
}  // namespace esharing::geo
