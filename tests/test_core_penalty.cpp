#include "core/penalty.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace esharing::core {
namespace {

constexpr double kL = 200.0;

TEST(Penalty, FactoriesValidateTolerance) {
  EXPECT_THROW((void)PenaltyFunction::type1(0.0), std::invalid_argument);
  EXPECT_THROW((void)PenaltyFunction::type2(-1.0), std::invalid_argument);
  EXPECT_THROW((void)PenaltyFunction::type3(0.0), std::invalid_argument);
  EXPECT_THROW((void)PenaltyFunction::polynomial(0.0, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)PenaltyFunction::polynomial(kL, {}),
               std::invalid_argument);
}

TEST(Penalty, AllTypesAreOneAtZero) {
  // "If destination i falls into the grid of established parking j,
  // c(i,j) = 0 and g(i,j) = 1 for all three cases."
  EXPECT_DOUBLE_EQ(PenaltyFunction::none()(0.0), 1.0);
  EXPECT_DOUBLE_EQ(PenaltyFunction::type1(kL)(0.0), 1.0);
  EXPECT_DOUBLE_EQ(PenaltyFunction::type2(kL)(0.0), 1.0);
  EXPECT_DOUBLE_EQ(PenaltyFunction::type3(kL)(0.0), 1.0);
}

TEST(Penalty, TypeIFormulaEq6) {
  const auto g = PenaltyFunction::type1(kL);
  EXPECT_DOUBLE_EQ(g(kL), 0.5);
  EXPECT_DOUBLE_EQ(g(3.0 * kL), 0.25);
  // "Type I ... maintains the probability over 0.2 even when the cost goes
  // beyond 3L."
  EXPECT_GT(g(3.0 * kL), 0.2);
}

TEST(Penalty, TypeIIFormulaEq7HardCutoff) {
  const auto g = PenaltyFunction::type2(kL);
  EXPECT_DOUBLE_EQ(g(kL / 2.0), 0.5);
  EXPECT_DOUBLE_EQ(g(kL), 0.0);
  EXPECT_DOUBLE_EQ(g(5.0 * kL), 0.0);
}

TEST(Penalty, TypeIIIFormulaEq8) {
  const auto g = PenaltyFunction::type3(kL);
  EXPECT_NEAR(g(kL), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(g(2.0 * kL), std::exp(-4.0), 1e-12);
}

TEST(Penalty, OrderingMatchesFig5) {
  // Beyond L: Type II < Type III < Type I ("Type II plunges much faster;
  // Type III is between the other two").
  const auto g1 = PenaltyFunction::type1(kL);
  const auto g2 = PenaltyFunction::type2(kL);
  const auto g3 = PenaltyFunction::type3(kL);
  for (double c : {1.2 * kL, 1.5 * kL, 2.0 * kL, 3.0 * kL}) {
    EXPECT_LE(g2(c), g3(c));
    EXPECT_LT(g3(c), g1(c));
  }
}

TEST(Penalty, AllTypesMonotoneNonIncreasing) {
  for (const auto& g :
       {PenaltyFunction::type1(kL), PenaltyFunction::type2(kL),
        PenaltyFunction::type3(kL)}) {
    double prev = 1.0 + 1e-12;
    for (double c = 0.0; c <= 4.0 * kL; c += 10.0) {
      const double v = g(c);
      EXPECT_LE(v, prev + 1e-12);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      prev = v;
    }
  }
}

TEST(Penalty, DerivativesAreNonPositive) {
  for (const auto& g :
       {PenaltyFunction::type1(kL), PenaltyFunction::type2(kL),
        PenaltyFunction::type3(kL)}) {
    for (double c = 0.0; c <= 3.0 * kL; c += 25.0) {
      EXPECT_LE(g.derivative(c), 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(PenaltyFunction::none().derivative(123.0), 0.0);
}

TEST(Penalty, DerivativesMatchFiniteDifferences) {
  const double eps = 1e-6;
  for (const auto& g :
       {PenaltyFunction::type1(kL), PenaltyFunction::type3(kL)}) {
    for (double c : {10.0, 100.0, 250.0, 500.0}) {
      const double numeric = (g(c + eps) - g(c - eps)) / (2.0 * eps);
      EXPECT_NEAR(g.derivative(c), numeric, 1e-6);
    }
  }
  // Type II inside the tolerance (away from the kink).
  const auto g2 = PenaltyFunction::type2(kL);
  const double numeric = (g2(100.0 + eps) - g2(100.0 - eps)) / (2.0 * eps);
  EXPECT_NEAR(g2.derivative(100.0), numeric, 1e-6);
  EXPECT_DOUBLE_EQ(g2.derivative(2.0 * kL), 0.0);
}

TEST(Penalty, TypeIIDropsFastestNearOrigin) {
  // Fig. 5(b): Type II has the steepest constant decline inside L.
  const auto g1 = PenaltyFunction::type1(kL);
  const auto g2 = PenaltyFunction::type2(kL);
  const auto g3 = PenaltyFunction::type3(kL);
  EXPECT_LT(g2.derivative(kL * 0.9), g1.derivative(kL * 0.9));
  EXPECT_LT(g2.derivative(kL * 0.9), g3.derivative(kL * 0.9) + 1e-9);
}

TEST(Penalty, RejectsNegativeCost) {
  EXPECT_THROW((void)PenaltyFunction::type1(kL)(-1.0), std::invalid_argument);
  EXPECT_THROW((void)PenaltyFunction::type2(kL).derivative(-1.0),
               std::invalid_argument);
}

TEST(Penalty, PolynomialExtensionClampsAndDifferentiates) {
  // g(c) = 1 - (c/L)^2, clamped to [0, 1].
  const auto g = PenaltyFunction::polynomial(kL, {1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(g(0.0), 1.0);
  EXPECT_DOUBLE_EQ(g(kL / 2.0), 0.75);
  EXPECT_DOUBLE_EQ(g(2.0 * kL), 0.0);  // clamped
  EXPECT_NEAR(g.derivative(kL / 2.0), -2.0 * 0.5 / kL, 1e-12);
}

TEST(Penalty, FactoryOfByType) {
  EXPECT_EQ(PenaltyFunction::of(PenaltyType::kTypeI, kL).type(),
            PenaltyType::kTypeI);
  EXPECT_EQ(PenaltyFunction::of(PenaltyType::kNone, kL).type(),
            PenaltyType::kNone);
  EXPECT_THROW((void)PenaltyFunction::of(PenaltyType::kPolynomial, kL),
               std::invalid_argument);
}

TEST(Penalty, NamesAndSimilarityPolicy) {
  EXPECT_STREQ(penalty_type_name(PenaltyType::kTypeII), "TypeII");
  // Section V-C thresholds: >=95 -> II, 80..95 -> III, <80 -> I.
  EXPECT_EQ(penalty_type_for_similarity(97.0), PenaltyType::kTypeII);
  EXPECT_EQ(penalty_type_for_similarity(95.0), PenaltyType::kTypeII);
  EXPECT_EQ(penalty_type_for_similarity(90.0), PenaltyType::kTypeIII);
  EXPECT_EQ(penalty_type_for_similarity(80.0), PenaltyType::kTypeIII);
  EXPECT_EQ(penalty_type_for_similarity(60.0), PenaltyType::kTypeI);
}

}  // namespace
}  // namespace esharing::core
