#include "solver/reopt.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "solver/cost_oracle.h"
#include "solver/instance_delta.h"
#include "solver/jms_greedy.h"
#include "solver/local_search.h"
#include "solver/registry.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing::solver {
namespace {

using geo::Point;

/// Counter reads need the obs layer on (it is off by default in tests).
struct ScopedObsEnabled {
  ScopedObsEnabled() { obs::set_enabled(true); }
  ~ScopedObsEnabled() { obs::set_enabled(false); }
};

FlInstance random_instance(stats::Rng& rng, std::size_t nc, std::size_t nf) {
  FlInstance inst;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, nc)) {
    inst.clients.push_back({p, rng.uniform(0.5, 3.0)});
  }
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, nf)) {
    inst.facilities.push_back({p, rng.uniform(100.0, 5000.0)});
  }
  return inst;
}

FlInstance random_colocated(stats::Rng& rng, std::size_t n,
                            double opening_cost = 2000.0) {
  std::vector<FlClient> clients;
  std::vector<double> costs;
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, n)) {
    clients.push_back({p, rng.uniform(0.5, 3.0)});
    costs.push_back(opening_cost);
  }
  return colocated_instance(std::move(clients), std::move(costs));
}

/// A drift touching every delta channel against `inst`.
InstanceDelta mixed_delta(const FlInstance& inst, stats::Rng& rng) {
  InstanceDelta delta;
  delta.weight_updates.push_back({0, 4.5});
  delta.weight_updates.push_back({inst.clients.size() / 2, 0.25});
  delta.remove_clients.push_back(1);
  delta.remove_clients.push_back(inst.clients.size() - 1);
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 3)) {
    delta.add_clients.push_back({p, rng.uniform(0.5, 3.0)});
  }
  delta.remove_facilities.push_back(2);
  for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 2)) {
    delta.add_facilities.push_back({p, rng.uniform(100.0, 5000.0)});
  }
  return delta;
}

void expect_bit_identical(const FlSolution& a, const FlSolution& b) {
  EXPECT_EQ(a.open, b.open);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.connection_cost, b.connection_cost);
  EXPECT_EQ(a.opening_cost, b.opening_cost);
}

// ---------------------------------------------------------------------------
// InstanceDelta: validation, application, remapping, diffing.
// ---------------------------------------------------------------------------

TEST(ReoptDelta, ValidateRejectsBadDeltas) {
  stats::Rng rng(3);
  const auto inst = random_instance(rng, 10, 6);

  InstanceDelta d;
  d.remove_clients = {10};  // out of range
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  d.remove_clients = {3, 3};  // duplicate removal
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  d.weight_updates = {{10, 1.0}};  // names a missing client
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  d.weight_updates = {{2, 1.0}, {2, 2.0}};  // ambiguous double update
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  d.weight_updates = {{2, 1.0}};
  d.remove_clients = {2};  // re-weighted AND removed
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  d.weight_updates = {{2, -1.0}};  // negative weight
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    d.remove_clients.push_back(j);  // would leave zero clients
  }
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
  d = {};
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    d.remove_facilities.push_back(i);  // would leave zero facilities
  }
  EXPECT_THROW(d.validate(inst), std::invalid_argument);
}

TEST(ReoptDelta, ApplyFollowsCanonicalOrder) {
  stats::Rng rng(5);
  auto inst = random_instance(rng, 8, 4);
  const auto before = inst;

  InstanceDelta delta;
  delta.weight_updates = {{7, 9.0}};  // pre-delta index of the last client
  delta.remove_clients = {0, 3};
  delta.add_clients = {{{50, 50}, 1.5}};
  delta.remove_facilities = {1};
  delta.add_facilities = {{{60, 60}, 700.0}};
  apply_delta(inst, delta);

  ASSERT_EQ(inst.clients.size(), 8u - 2u + 1u);
  ASSERT_EQ(inst.facilities.size(), 4u - 1u + 1u);
  // Weight updates name PRE-delta indices: the old client 7 survives the
  // removal of 0 and 3 and lands at post-delta index 5.
  EXPECT_EQ(inst.clients[5].weight, 9.0);
  EXPECT_EQ(inst.clients[5].location.x, before.clients[7].location.x);
  // Removals shift the survivors down, appends land at the end.
  EXPECT_EQ(inst.clients[0].location.x, before.clients[1].location.x);
  EXPECT_EQ(inst.clients.back().weight, 1.5);
  EXPECT_EQ(inst.facilities[0].location.x, before.facilities[0].location.x);
  EXPECT_EQ(inst.facilities[1].location.x, before.facilities[2].location.x);
  EXPECT_EQ(inst.facilities.back().opening_cost, 700.0);
}

TEST(ReoptDelta, RemapFacilityAndOpenSet) {
  InstanceDelta delta;
  delta.remove_facilities = {1, 4};
  EXPECT_EQ(remap_facility(0, delta), 0u);
  EXPECT_EQ(remap_facility(1, delta), kRemovedIndex);
  EXPECT_EQ(remap_facility(2, delta), 1u);
  EXPECT_EQ(remap_facility(3, delta), 2u);
  EXPECT_EQ(remap_facility(4, delta), kRemovedIndex);
  EXPECT_EQ(remap_facility(5, delta), 3u);
  EXPECT_EQ(remap_open_set({0, 1, 3, 4, 5}, delta),
            (std::vector<std::size_t>{0, 2, 3}));
  // A delta that removes every open facility yields an empty carry-over.
  EXPECT_TRUE(remap_open_set({1, 4}, delta).empty());
}

TEST(ReoptDelta, DiffColocatedCoversAllThreeChannels) {
  stats::Rng rng(7);
  const auto inst = random_colocated(rng, 6);
  const auto price = [](Point) { return 1234.0; };

  // Target: client 0 re-weighted, client 2 gone, one new centroid; the rest
  // carried verbatim.
  std::vector<FlClient> target;
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    if (j == 2) continue;
    FlClient c = inst.clients[j];
    if (j == 0) c.weight += 1.0;
    target.push_back(c);
  }
  target.push_back({{999.0, 111.0}, 2.0});

  const InstanceDelta delta = diff_colocated(inst, target, price);
  ASSERT_EQ(delta.weight_updates.size(), 1u);
  EXPECT_EQ(delta.weight_updates[0].client, 0u);
  EXPECT_EQ(delta.remove_clients, (std::vector<std::size_t>{2}));
  EXPECT_EQ(delta.remove_facilities, (std::vector<std::size_t>{2}));
  ASSERT_EQ(delta.add_clients.size(), 1u);
  EXPECT_EQ(delta.add_clients[0].location.x, 999.0);
  ASSERT_EQ(delta.add_facilities.size(), 1u);
  EXPECT_EQ(delta.add_facilities[0].opening_cost, 1234.0);

  // Applying the diff reproduces the target demand exactly (and keeps the
  // instance colocated).
  auto patched = inst;
  apply_delta(patched, delta);
  ASSERT_EQ(patched.clients.size(), target.size());
  ASSERT_EQ(patched.facilities.size(), target.size());
  // Identical target -> empty diff, the zero-delta fast path's trigger.
  EXPECT_TRUE(diff_colocated(patched,
                             [&] {
                               std::vector<FlClient> t = patched.clients;
                               return t;
                             }(),
                             price)
                  .empty());
}

TEST(ReoptDelta, DiffColocatedCoalescesDuplicateTargetsAndRejectsBadInput) {
  stats::Rng rng(11);
  const auto inst = random_colocated(rng, 4);
  const auto price = [](Point) { return 10.0; };

  // The same new centroid twice: weights sum into one append.
  std::vector<FlClient> target = inst.clients;
  target.push_back({{5.0, 5.0}, 1.0});
  target.push_back({{5.0, 5.0}, 2.5});
  const auto delta = diff_colocated(inst, target, price);
  ASSERT_EQ(delta.add_clients.size(), 1u);
  EXPECT_EQ(delta.add_clients[0].weight, 3.5);

  EXPECT_THROW(diff_colocated(inst, target, nullptr), std::invalid_argument);
  const auto non_colocated = [&] {
    stats::Rng r2(13);
    return random_instance(r2, 4, 3);
  }();
  EXPECT_THROW(diff_colocated(non_colocated, target, price),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CostOracle::apply_delta: bit-identity with a fresh oracle, reuse counters,
// revision, and the size-disagreement guard.
// ---------------------------------------------------------------------------

TEST(ReoptOracle, PatchedRowsMatchFreshOracleBitIdentically) {
  stats::Rng rng(17);
  auto inst = random_instance(rng, 40, 18);
  CostOracle oracle(inst);
  oracle.ensure_all_rows();  // materialize everything pre-delta
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    (void)oracle.sorted_row(i);
  }

  const InstanceDelta delta = mixed_delta(inst, rng);
  apply_delta(inst, delta);
  oracle.apply_delta(delta);
  EXPECT_EQ(oracle.revision(), 1u);
  ASSERT_EQ(oracle.num_facilities(), inst.facilities.size());
  ASSERT_EQ(oracle.num_clients(), inst.clients.size());

  const CostOracle fresh(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    // Bit-identical, not approximately equal: patched entries recompute the
    // exact fresh-oracle kernel expression.
    EXPECT_EQ(oracle.row(i), fresh.row(i)) << "row " << i;
    EXPECT_EQ(oracle.sorted_row(i), fresh.sorted_row(i)) << "sorted " << i;
  }
}

TEST(ReoptOracle, FacilityOnlyDeltaCarriesSortedRowsVerbatim) {
  stats::Rng rng(19);
  auto inst = random_instance(rng, 30, 10);
  CostOracle oracle(inst);
  oracle.ensure_all_rows();
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    (void)oracle.sorted_row(i);
  }

  const ScopedObsEnabled on;
  auto& reg = obs::Registry::global();
  const auto reused0 = reg.counter("solver.cost_oracle.rows_reused").value();
  const auto inval0 = reg.counter("solver.cost_oracle.rows_invalidated").value();
  const auto sort0 = reg.counter("solver.cost_oracle.sorted_invalidated").value();

  InstanceDelta delta;  // clients untouched: pure facility churn
  delta.remove_facilities = {0, 7};
  delta.add_facilities = {{{123.0, 456.0}, 900.0}};
  apply_delta(inst, delta);
  oracle.apply_delta(delta);

  // 8 surviving ready rows carried, 2 dropped with their sorted orderings;
  // no client changed, so no sorted row of a survivor was invalidated.
  EXPECT_EQ(reg.counter("solver.cost_oracle.rows_reused").value() - reused0, 8u);
  EXPECT_EQ(reg.counter("solver.cost_oracle.rows_invalidated").value() - inval0,
            2u);
  EXPECT_EQ(reg.counter("solver.cost_oracle.sorted_invalidated").value() - sort0,
            2u);

  const CostOracle fresh(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    EXPECT_EQ(oracle.row(i), fresh.row(i));
    EXPECT_EQ(oracle.sorted_row(i), fresh.sorted_row(i));
  }
}

TEST(ReoptOracle, ClientChangeInvalidatesSurvivingSortedRows) {
  stats::Rng rng(23);
  auto inst = random_instance(rng, 20, 6);
  CostOracle oracle(inst);
  oracle.ensure_all_rows();
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    (void)oracle.sorted_row(i);
  }

  const ScopedObsEnabled on;
  auto& reg = obs::Registry::global();
  const auto sort0 = reg.counter("solver.cost_oracle.sorted_invalidated").value();

  InstanceDelta delta;
  delta.weight_updates = {{3, 99.0}};
  apply_delta(inst, delta);
  oracle.apply_delta(delta);

  // Every ready sorted ordering is dropped when any client changes (rows
  // themselves are patched and carried).
  EXPECT_EQ(reg.counter("solver.cost_oracle.sorted_invalidated").value() - sort0,
            6u);
  const CostOracle fresh(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    EXPECT_EQ(oracle.sorted_row(i), fresh.sorted_row(i));
  }
}

TEST(ReoptOracle, LazyRowsStayLazyAcrossDeltas) {
  stats::Rng rng(29);
  auto inst = random_instance(rng, 25, 8);
  CostOracle oracle(inst);
  (void)oracle.row(2);  // only one row materialized

  InstanceDelta delta = mixed_delta(inst, rng);
  apply_delta(inst, delta);
  oracle.apply_delta(delta);

  const CostOracle fresh(inst);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    EXPECT_EQ(oracle.row(i), fresh.row(i));
  }
}

TEST(ReoptOracle, ApplyDeltaRejectsUnsyncedInstance) {
  stats::Rng rng(31);
  auto inst = random_instance(rng, 12, 5);
  CostOracle oracle(inst);
  InstanceDelta delta;
  delta.remove_clients = {0};
  // The delta was NOT applied to the instance: post-delta sizes disagree.
  EXPECT_THROW(oracle.apply_delta(delta), std::logic_error);
  EXPECT_EQ(oracle.revision(), 0u);
}

// ---------------------------------------------------------------------------
// Warm-started solvers.
// ---------------------------------------------------------------------------

TEST(ReoptWarmStart, EmptySeedIsColdJmsBitIdentically) {
  stats::Rng rng(37);
  const auto inst = random_instance(rng, 50, 20);
  const CostOracle oracle(inst);
  expect_bit_identical(jms_greedy_warm(oracle, {}, {}), jms_greedy(oracle, {}));
}

TEST(ReoptWarmStart, SeededJmsIsValidAndRejectsBadSeeds) {
  stats::Rng rng(41);
  const auto inst = random_instance(rng, 50, 20);
  const CostOracle oracle(inst);
  const auto cold = jms_greedy(oracle, {});
  const auto warm = jms_greedy_warm(oracle, cold.open, {});
  ASSERT_EQ(warm.assignment.size(), inst.clients.size());
  for (std::size_t f : warm.open) EXPECT_LT(f, inst.facilities.size());
  // Seeding from the optimum-so-far cannot invent negative costs.
  EXPECT_GT(warm.total_cost(), 0.0);
  EXPECT_THROW(jms_greedy_warm(oracle, {inst.facilities.size()}, {}),
               std::invalid_argument);
}

TEST(ReoptWarmStart, RegistryWarmStartRoutesToBothWarmPaths) {
  stats::Rng rng(43);
  const auto inst = random_instance(rng, 40, 16);
  const auto cold = solve("jms", inst);

  SolveOptions opt;
  opt.warm_start = &cold;
  const auto warm_jms = solve("jms", inst, opt);
  ASSERT_EQ(warm_jms.assignment.size(), inst.clients.size());

  const auto polished = solve("local_search", inst, opt);
  // local_search resuming from a solution is never worse than it.
  EXPECT_LE(polished.total_cost(), cold.total_cost());
}

// ---------------------------------------------------------------------------
// SolveOptions::validate — one test per rejection rule.
// ---------------------------------------------------------------------------

TEST(ReoptValidateOptions, RejectsKForSolversWithoutABudget) {
  SolveOptions opt;
  opt.k = 4;
  try {
    opt.validate("jms");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jms"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("k"), std::string::npos);
  }
}

TEST(ReoptValidateOptions, RejectsSeedForDeterministicSolvers) {
  SolveOptions opt;
  opt.seed = 7;
  EXPECT_THROW(opt.validate("jv"), std::invalid_argument);
  EXPECT_NO_THROW(opt.validate("meyerson"));
  opt.k = 2;  // k_median consumes the seed but also demands a budget
  EXPECT_NO_THROW(opt.validate("k_median"));
}

TEST(ReoptValidateOptions, RejectsThreadLanesForSequentialSolvers) {
  SolveOptions opt;
  opt.num_threads = 4;
  EXPECT_THROW(opt.validate("exact"), std::invalid_argument);
  EXPECT_NO_THROW(opt.validate("jms"));
  EXPECT_NO_THROW(opt.validate("local_search"));
}

TEST(ReoptValidateOptions, RejectsLocalSearchKnobsElsewhere) {
  SolveOptions opt;
  opt.max_iterations = 5;
  EXPECT_THROW(opt.validate("jms"), std::invalid_argument);
  opt = {};
  opt.allow_swaps = false;
  EXPECT_THROW(opt.validate("meyerson"), std::invalid_argument);
}

TEST(ReoptValidateOptions, RejectsMissingKAndZeroIterations) {
  SolveOptions opt;  // k == 0
  try {
    opt.validate("k_median");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("k"), std::string::npos);
  }
  opt = {};
  opt.max_iterations = 0;
  EXPECT_THROW(opt.validate("local_search"), std::invalid_argument);
}

TEST(ReoptValidateOptions, RejectsWarmStartWithoutAWarmPath) {
  stats::Rng rng(47);
  const auto inst = random_instance(rng, 10, 5);
  const auto sol = jms_greedy(CostOracle(inst), {});
  SolveOptions opt;
  opt.warm_start = &sol;
  EXPECT_THROW(opt.validate("jv"), std::invalid_argument);
  EXPECT_THROW(opt.validate("exact"), std::invalid_argument);
  EXPECT_NO_THROW(opt.validate("jms"));
  EXPECT_NO_THROW(opt.validate("local_search"));
}

TEST(ReoptValidateOptions, UnknownNamesPassAndSolveStillValidates) {
  // The registry cannot know a user-registered solver's contract.
  SolveOptions opt;
  opt.k = 3;
  opt.seed = 1;
  EXPECT_NO_THROW(opt.validate("my_custom_solver"));
  // But solve() on a builtin rejects before dispatch.
  stats::Rng rng(53);
  const auto inst = random_instance(rng, 8, 4);
  EXPECT_THROW((void)solve("jms", inst, opt), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// recost / assign_to_open error paths.
// ---------------------------------------------------------------------------

TEST(ReoptErrorPaths, AssignToOpenRejectsEmptyAndOutOfRangeOpenSets) {
  stats::Rng rng(59);
  const auto inst = random_instance(rng, 10, 4);
  const CostOracle oracle(inst);
  EXPECT_THROW((void)assign_to_open(inst, {}), std::invalid_argument);
  EXPECT_THROW((void)assign_to_open(oracle, {}), std::invalid_argument);
  EXPECT_THROW((void)assign_to_open(inst, {4}), std::invalid_argument);
  EXPECT_THROW((void)assign_to_open(oracle, {0, 17}), std::invalid_argument);
}

TEST(ReoptErrorPaths, RecostRejectsInconsistentSolutions) {
  stats::Rng rng(61);
  const auto inst = random_instance(rng, 10, 4);
  const auto good = assign_to_open(inst, {0, 2});

  FlSolution wrong_size = good;
  wrong_size.assignment.pop_back();
  EXPECT_THROW((void)recost(inst, wrong_size), std::invalid_argument);

  FlSolution closed = good;
  closed.assignment[0] = 1;  // facility 1 is not open
  EXPECT_THROW((void)recost(inst, closed), std::invalid_argument);

  FlSolution ghost = good;
  ghost.open.push_back(99);  // beyond the instance
  ghost.assignment[0] = 99;
  EXPECT_THROW((void)recost(inst, ghost), std::invalid_argument);

  // And the happy path round-trips the costs exactly.
  const auto again = recost(inst, good);
  EXPECT_EQ(again.connection_cost, good.connection_cost);
  EXPECT_EQ(again.opening_cost, good.opening_cost);
}

// ---------------------------------------------------------------------------
// ReoptimizationSession contracts.
// ---------------------------------------------------------------------------

TEST(ReoptSession, ConstructionColdSolveMatchesJmsBitIdentically) {
  stats::Rng rng(67);
  auto inst = random_colocated(rng, 30);
  const auto direct = jms_greedy(CostOracle(inst), {});
  const ReoptimizationSession session(inst);
  expect_bit_identical(session.solution(), direct);
  EXPECT_EQ(session.revision(), 0u);
  EXPECT_TRUE(session.last_stats().cold);
}

TEST(ReoptSession, ZeroDeltaReturnsCachedSolutionUntouched) {
  stats::Rng rng(71);
  ReoptimizationSession session(random_colocated(rng, 30));
  const FlSolution before = session.solution();
  const FlSolution& again = session.reoptimize(InstanceDelta{});
  // Same object, not merely equal: the zero-delta path does no work.
  EXPECT_EQ(&again, &session.solution());
  expect_bit_identical(again, before);
  EXPECT_EQ(session.revision(), 0u);
  EXPECT_TRUE(session.last_stats().zero_delta);
  EXPECT_EQ(session.last_stats().final_cost, before.total_cost());
}

TEST(ReoptSession, ReoptimizeToIdenticalSnapshotIsZeroDelta) {
  stats::Rng rng(73);
  const auto price = [](Point) { return 2000.0; };
  ReoptimizationSession session(random_colocated(rng, 30), {}, price);
  const FlSolution before = session.solution();
  const std::vector<FlClient> same = session.instance().clients;
  const FlSolution& again = session.reoptimize_to(same);
  EXPECT_EQ(&again, &session.solution());
  expect_bit_identical(again, before);
  EXPECT_TRUE(session.last_stats().zero_delta);
}

TEST(ReoptSession, WarmResolveIsNeverCostlierThanCarriedPlan) {
  stats::Rng rng(79);
  const auto price = [](Point) { return 2000.0; };
  ReoptimizationSession session(random_colocated(rng, 60), {}, price);
  // A sequence of drifting snapshots: re-weights, churned cells.
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<FlClient> target = session.instance().clients;
    for (std::size_t j = 0; j < target.size(); j += 3) {
      target[j].weight = rng.uniform(0.5, 4.0);
    }
    target.erase(target.begin() + static_cast<std::ptrdiff_t>(epoch));
    for (Point p :
         stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 2)) {
      target.push_back({p, rng.uniform(0.5, 3.0)});
    }
    const FlSolution& sol = session.reoptimize_to(target);
    const ReoptStats& stats = session.last_stats();
    EXPECT_FALSE(stats.zero_delta);
    // The contract of the issue: warm re-solve never costlier than the
    // carried "keep yesterday's plan" baseline.
    EXPECT_LE(stats.final_cost, stats.baseline_cost) << "epoch " << epoch;
    EXPECT_EQ(stats.final_cost, sol.total_cost());
    EXPECT_EQ(session.revision(), static_cast<std::uint64_t>(epoch + 1));
    // The re-solve stays in sync with a from-scratch recost of itself.
    const auto audited = recost(session.instance(), sol);
    EXPECT_EQ(audited.total_cost(), sol.total_cost());
  }
}

TEST(ReoptSession, RemovingEveryOpenFacilityFallsBackToColdSolve) {
  stats::Rng rng(83);
  ReoptimizationSession session(random_colocated(rng, 20));
  InstanceDelta delta;
  // Remove exactly the open facilities (and their colocated clients would
  // remain — only the candidate sites disappear).
  delta.remove_facilities = session.solution().open;
  const FlSolution& sol = session.reoptimize(delta);
  EXPECT_TRUE(session.last_stats().cold);
  ASSERT_EQ(sol.assignment.size(), session.instance().clients.size());
  for (std::size_t f : sol.open) {
    EXPECT_LT(f, session.instance().facilities.size());
  }
}

TEST(ReoptSession, ReoptimizeToRequiresOpeningCostFn) {
  stats::Rng rng(89);
  ReoptimizationSession session(random_colocated(rng, 10));
  EXPECT_THROW((void)session.reoptimize_to(session.instance().clients),
               std::logic_error);
}

TEST(ReoptSession, WarmJmsCandidateKeepsNeverWorseContract) {
  stats::Rng rng(97);
  ReoptOptions opt;
  opt.warm_jms = true;
  const auto price = [](Point) { return 2000.0; };
  ReoptimizationSession session(random_colocated(rng, 40), opt, price);
  std::vector<FlClient> target = session.instance().clients;
  for (auto& c : target) c.weight *= 1.7;
  (void)session.reoptimize_to(target);
  EXPECT_LE(session.last_stats().final_cost,
            session.last_stats().baseline_cost);
}

// ---------------------------------------------------------------------------
// Determinism across thread widths (suite name matches the CI thread-matrix
// and TSan leg regexes).
// ---------------------------------------------------------------------------

TEST(ReoptThreads, ResolveSequenceBitIdenticalAtEveryWidth) {
  const auto run_epochs = [](std::size_t num_threads) {
    stats::Rng rng(101);
    ReoptOptions opt;
    opt.num_threads = num_threads;
    const auto price = [](Point) { return 2000.0; };
    auto session = std::make_unique<ReoptimizationSession>(
        [&] {
          stats::Rng city(103);
          return random_colocated(city, 50);
        }(),
        opt, price);
    std::vector<FlSolution> history;
    history.push_back(session->solution());
    for (int epoch = 0; epoch < 3; ++epoch) {
      std::vector<FlClient> target = session->instance().clients;
      for (std::size_t j = 0; j < target.size(); j += 2) {
        target[j].weight = rng.uniform(0.5, 4.0);
      }
      for (Point p : stats::uniform_points(rng, {{0, 0}, {2000, 2000}}, 2)) {
        target.push_back({p, 1.0});
      }
      history.push_back(session->reoptimize_to(target));
    }
    return history;
  };

  const auto sequential = run_epochs(1);
  for (const std::size_t width : {std::size_t{2}, std::size_t{4}}) {
    const auto parallel = run_epochs(width);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t e = 0; e < sequential.size(); ++e) {
      SCOPED_TRACE("width " + std::to_string(width) + " epoch " +
                   std::to_string(e));
      expect_bit_identical(parallel[e], sequential[e]);
    }
  }
}

TEST(ReoptThreads, OracleDeltaThenParallelEnsureMatchesLazy) {
  stats::Rng rng(107);
  auto inst = random_instance(rng, 60, 24);
  CostOracle parallel_oracle(inst);
  CostOracle lazy_oracle(inst);
  parallel_oracle.ensure_all_rows(4);

  InstanceDelta delta = mixed_delta(inst, rng);
  apply_delta(inst, delta);
  parallel_oracle.apply_delta(delta);
  lazy_oracle.apply_delta(delta);

  parallel_oracle.ensure_all_rows(4);
  for (std::size_t i = 0; i < inst.facilities.size(); ++i) {
    EXPECT_EQ(parallel_oracle.row(i), lazy_oracle.row(i));
  }
}

}  // namespace
}  // namespace esharing::solver
