#include "ml/lstm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "ml/moving_average.h"
#include "stats/rng.h"

namespace esharing::ml {
namespace {

Series sine_series(std::size_t n, double period, double amp = 10.0,
                   double offset = 20.0) {
  Series s;
  s.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    s.push_back(offset + amp * std::sin(2.0 * std::numbers::pi *
                                        static_cast<double>(t) / period));
  }
  return s;
}

LstmConfig tiny_config() {
  LstmConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 6;
  cfg.lookback = 4;
  cfg.epochs = 5;
  cfg.seed = 3;
  return cfg;
}

TEST(Lstm, ValidatesConfig) {
  LstmConfig bad = tiny_config();
  bad.layers = 0;
  EXPECT_THROW(LstmForecaster{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.hidden = 0;
  EXPECT_THROW(LstmForecaster{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.lookback = 0;
  EXPECT_THROW(LstmForecaster{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.epochs = 0;
  EXPECT_THROW(LstmForecaster{bad}, std::invalid_argument);
}

TEST(Lstm, MustFitBeforeForecast) {
  LstmForecaster lstm(tiny_config());
  EXPECT_THROW((void)lstm.forecast({1, 2, 3, 4, 5}, 1), std::logic_error);
}

TEST(Lstm, FitRejectsTooShortSeries) {
  LstmForecaster lstm(tiny_config());
  EXPECT_THROW(lstm.fit({1, 2, 3}), std::invalid_argument);
}

TEST(Lstm, ForecastRejectsShortHistory) {
  LstmForecaster lstm(tiny_config());
  lstm.fit(sine_series(40, 8.0));
  EXPECT_THROW((void)lstm.forecast({1, 2}, 1), std::invalid_argument);
}

TEST(Lstm, ParameterCountMatchesArchitecture) {
  LstmConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.hidden = 5;
  const LstmForecaster lstm(cfg);
  // Layer 0: 4H*1 + 4H*H + 4H; layer 1: 4H*H + 4H*H + 4H; head: H + 1.
  const std::size_t h = 5;
  const std::size_t expected = (4 * h * 1 + 4 * h * h + 4 * h) +
                               (4 * h * h + 4 * h * h + 4 * h) + h + 1;
  EXPECT_EQ(lstm.parameters().size(), expected);
}

/// The critical correctness test: analytic BPTT gradients must match
/// central finite differences on random parameters.
class LstmGradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(LstmGradientCheck, AnalyticMatchesNumeric) {
  LstmConfig cfg;
  cfg.layers = GetParam();  // checks 1-, 2- and 3-layer stacks
  cfg.hidden = 4;
  cfg.lookback = 5;
  cfg.epochs = 1;
  cfg.seed = 11 + static_cast<std::uint64_t>(GetParam());
  LstmForecaster lstm(cfg);

  stats::Rng rng(99);
  Window w;
  for (std::size_t i = 0; i < cfg.lookback; ++i) {
    w.input.push_back(rng.uniform(-1.0, 1.0));
  }
  w.target = rng.uniform(-1.0, 1.0);

  const auto analytic = lstm.sample_gradient(w);
  auto& params = lstm.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  const double eps = 1e-6;
  // Probe a spread of parameters (every 7th) rather than all of them.
  for (std::size_t k = 0; k < params.size(); k += 7) {
    const double saved = params[k];
    params[k] = saved + eps;
    const double up = lstm.sample_loss(w);
    params[k] = saved - eps;
    const double down = lstm.sample_loss(w);
    params[k] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[k], numeric, 1e-5)
        << "parameter index " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LstmGradientCheck, ::testing::Values(1, 2, 3));

TEST(Lstm, TrainingLossDecreases) {
  LstmConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 12;
  cfg.lookback = 8;
  cfg.epochs = 15;
  cfg.seed = 5;
  LstmForecaster lstm(cfg);
  lstm.fit(sine_series(200, 24.0));
  const auto& losses = lstm.loss_history();
  ASSERT_EQ(losses.size(), 15u);
  EXPECT_LT(losses.back(), 0.5 * losses.front());
}

TEST(Lstm, LearnsSineWaveBetterThanMovingAverage) {
  const Series s = sine_series(260, 24.0);
  const auto [train, test] = split(s, 0.8);

  LstmConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 16;
  cfg.lookback = 12;
  cfg.epochs = 30;
  cfg.seed = 7;
  LstmForecaster lstm(cfg);
  lstm.fit(train);
  const double lstm_rmse = evaluate_rmse(lstm, train, test);

  MovingAverageForecaster ma(3);
  ma.fit(train);
  const double ma_rmse = evaluate_rmse(ma, train, test);

  EXPECT_LT(lstm_rmse, ma_rmse);
  EXPECT_LT(lstm_rmse, 2.0);  // amplitude is 10; good fits land well below
}

TEST(Lstm, DeterministicForSameSeed) {
  const Series train = sine_series(80, 12.0);
  LstmForecaster a(tiny_config()), b(tiny_config());
  a.fit(train);
  b.fit(train);
  const auto fa = a.forecast(train, 3);
  const auto fb = b.forecast(train, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(fa[i], fb[i]);
}

TEST(Lstm, MultiHorizonForecastHasRequestedLength) {
  LstmForecaster lstm(tiny_config());
  const Series train = sine_series(60, 12.0);
  lstm.fit(train);
  EXPECT_EQ(lstm.forecast(train, 6).size(), 6u);
}

TEST(Lstm, NameEncodesArchitecture) {
  LstmConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.lookback = 12;
  EXPECT_EQ(LstmForecaster(cfg).name(), "LSTM(layers=2,back=12)");
}

TEST(Lstm, ForecastScaleMatchesSeriesScale) {
  // Forecasts of a series centered at 20 must come back near 20, proving
  // the scaler round-trip works.
  LstmConfig cfg = tiny_config();
  cfg.epochs = 10;
  LstmForecaster lstm(cfg);
  const Series train = sine_series(120, 24.0, 2.0, 20.0);
  lstm.fit(train);
  const double f = lstm.forecast(train, 1)[0];
  EXPECT_GT(f, 10.0);
  EXPECT_LT(f, 30.0);
}

}  // namespace
}  // namespace esharing::ml
