#include "geo/latlon.h"

#include <gtest/gtest.h>

namespace esharing::geo {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{39.9, 116.4};
  EXPECT_DOUBLE_EQ(haversine_m(p, p), 0.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const double d = haversine_m({0.0, 0.0}, {1.0, 0.0});
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(Haversine, SymmetricInArguments) {
  const LatLon a{39.9, 116.4};
  const LatLon b{40.0, 116.5};
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
}

TEST(Haversine, KnownCityPairDistance) {
  // Beijing <-> Shanghai, great-circle roughly 1070 km.
  const double d = haversine_m({39.9042, 116.4074}, {31.2304, 121.4737});
  EXPECT_NEAR(d, 1.07e6, 3e4);
}

TEST(LocalProjection, RoundTripsCoordinates) {
  const LocalProjection proj({39.86, 116.38});
  const LatLon original{39.8723, 116.4041};
  const LatLon back = proj.to_geo(proj.to_local(original));
  EXPECT_NEAR(back.lat, original.lat, 1e-9);
  EXPECT_NEAR(back.lon, original.lon, 1e-9);
}

TEST(LocalProjection, OriginMapsToZero) {
  const LatLon origin{39.86, 116.38};
  const LocalProjection proj(origin);
  const Point p = proj.to_local(origin);
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(LocalProjection, AgreesWithHaversineOverCityExtent) {
  // Within a ~3 km metropolitan field the equirectangular error must stay
  // far below the 100 m grid granularity.
  const LatLon origin{39.86, 116.38};
  const LocalProjection proj(origin);
  const LatLon far{39.887, 116.415};
  const double planar = distance(proj.to_local(origin), proj.to_local(far));
  const double sphere = haversine_m(origin, far);
  EXPECT_NEAR(planar, sphere, 5.0);
}

TEST(LocalProjection, NorthIsPositiveYEastIsPositiveX) {
  const LocalProjection proj({39.86, 116.38});
  const Point north = proj.to_local({39.87, 116.38});
  const Point east = proj.to_local({39.86, 116.39});
  EXPECT_GT(north.y, 0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-9);
  EXPECT_GT(east.x, 0.0);
  EXPECT_NEAR(east.y, 0.0, 1e-9);
}

}  // namespace
}  // namespace esharing::geo
