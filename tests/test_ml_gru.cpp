#include "ml/gru.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "ml/moving_average.h"
#include "ml/seasonal_naive.h"
#include "stats/rng.h"

namespace esharing::ml {
namespace {

Series sine_series(std::size_t n, double period, double amp = 10.0,
                   double offset = 20.0) {
  Series s;
  s.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    s.push_back(offset + amp * std::sin(2.0 * std::numbers::pi *
                                        static_cast<double>(t) / period));
  }
  return s;
}

GruConfig tiny_config() {
  GruConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 6;
  cfg.lookback = 4;
  cfg.epochs = 5;
  cfg.seed = 3;
  return cfg;
}

TEST(Gru, ValidatesConfig) {
  GruConfig bad = tiny_config();
  bad.layers = 0;
  EXPECT_THROW(GruForecaster{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.hidden = 0;
  EXPECT_THROW(GruForecaster{bad}, std::invalid_argument);
  bad = tiny_config();
  bad.lookback = 0;
  EXPECT_THROW(GruForecaster{bad}, std::invalid_argument);
}

TEST(Gru, LifecycleGuards) {
  GruForecaster gru(tiny_config());
  EXPECT_THROW((void)gru.forecast({1, 2, 3, 4, 5}, 1), std::logic_error);
  EXPECT_THROW(gru.fit({1, 2, 3}), std::invalid_argument);
}

TEST(Gru, ParameterCountMatchesArchitecture) {
  GruConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.hidden = 5;
  const GruForecaster gru(cfg);
  const std::size_t h = 5;
  const std::size_t expected = (3 * h * 1 + 3 * h * h + 3 * h) +
                               (3 * h * h + 3 * h * h + 3 * h) + h + 1;
  EXPECT_EQ(gru.parameters().size(), expected);
}

/// The critical test: analytic BPTT gradients vs central finite
/// differences, for 1-3 stacked layers.
class GruGradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(GruGradientCheck, AnalyticMatchesNumeric) {
  GruConfig cfg;
  cfg.layers = GetParam();
  cfg.hidden = 4;
  cfg.lookback = 5;
  cfg.epochs = 1;
  cfg.seed = 21 + static_cast<std::uint64_t>(GetParam());
  GruForecaster gru(cfg);

  stats::Rng rng(77);
  Window w;
  for (std::size_t i = 0; i < cfg.lookback; ++i) {
    w.input.push_back(rng.uniform(-1.0, 1.0));
  }
  w.target = rng.uniform(-1.0, 1.0);

  const auto analytic = gru.sample_gradient(w);
  auto& params = gru.parameters();
  ASSERT_EQ(analytic.size(), params.size());
  const double eps = 1e-6;
  for (std::size_t k = 0; k < params.size(); k += 5) {
    const double saved = params[k];
    params[k] = saved + eps;
    const double up = gru.sample_loss(w);
    params[k] = saved - eps;
    const double down = gru.sample_loss(w);
    params[k] = saved;
    EXPECT_NEAR(analytic[k], (up - down) / (2.0 * eps), 1e-5)
        << "parameter index " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, GruGradientCheck, ::testing::Values(1, 2, 3));

TEST(Gru, TrainingLossDecreases) {
  GruConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 12;
  cfg.lookback = 8;
  cfg.epochs = 15;
  cfg.seed = 5;
  GruForecaster gru(cfg);
  gru.fit(sine_series(200, 24.0));
  const auto& losses = gru.loss_history();
  ASSERT_EQ(losses.size(), 15u);
  EXPECT_LT(losses.back(), 0.5 * losses.front());
}

TEST(Gru, LearnsSineBetterThanMovingAverage) {
  const Series s = sine_series(260, 24.0);
  const auto [train, test] = split(s, 0.8);
  GruConfig cfg;
  cfg.layers = 1;
  cfg.hidden = 16;
  cfg.lookback = 12;
  cfg.epochs = 30;
  cfg.seed = 7;
  GruForecaster gru(cfg);
  gru.fit(train);
  MovingAverageForecaster ma(3);
  ma.fit(train);
  EXPECT_LT(evaluate_rmse(gru, train, test), evaluate_rmse(ma, train, test));
}

TEST(Gru, DeterministicPerSeed) {
  const Series train = sine_series(80, 12.0);
  GruForecaster a(tiny_config()), b(tiny_config());
  a.fit(train);
  b.fit(train);
  const auto fa = a.forecast(train, 3);
  const auto fb = b.forecast(train, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(fa[i], fb[i]);
}

TEST(Gru, NameEncodesArchitecture) {
  GruConfig cfg = tiny_config();
  cfg.layers = 2;
  cfg.lookback = 12;
  EXPECT_EQ(GruForecaster(cfg).name(), "GRU(layers=2,back=12)");
}

TEST(SeasonalNaive, RepeatsLastSeason) {
  SeasonalNaiveForecaster sn(3);
  sn.fit({1.0});
  const auto f = sn.forecast({10, 20, 30, 40, 50, 60}, 4);
  EXPECT_DOUBLE_EQ(f[0], 40.0);
  EXPECT_DOUBLE_EQ(f[1], 50.0);
  EXPECT_DOUBLE_EQ(f[2], 60.0);
  EXPECT_DOUBLE_EQ(f[3], 40.0);  // recursion wraps into its own forecasts
}

TEST(SeasonalNaive, PerfectOnExactlyPeriodicSeries) {
  const Series s = sine_series(96, 24.0);
  const auto [train, test] = split(s, 0.75);
  SeasonalNaiveForecaster sn(24);
  sn.fit(train);
  EXPECT_NEAR(evaluate_rmse(sn, train, test), 0.0, 1e-9);
}

TEST(SeasonalNaive, Validates) {
  EXPECT_THROW(SeasonalNaiveForecaster(0), std::invalid_argument);
  SeasonalNaiveForecaster sn(24);
  sn.fit({1.0});
  EXPECT_THROW((void)sn.forecast({1, 2, 3}, 1), std::invalid_argument);
  EXPECT_THROW(sn.fit({}), std::invalid_argument);
  EXPECT_EQ(sn.name(), "SeasonalNaive(period=24)");
}

}  // namespace
}  // namespace esharing::ml
