/// Robustness suite: malformed-input fuzzing (parsers must throw, never
/// crash or accept garbage silently) and randomized structural properties
/// that complement the per-module unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include <sstream>

#include "core/stations_io.h"
#include "data/csv.h"
#include "geo/geohash.h"
#include "geo/grid.h"
#include "geo/polygon.h"
#include "sim/event_engine.h"
#include "solver/tsp.h"
#include "stats/rng.h"
#include "stats/spatial.h"

namespace esharing {
namespace {

using geo::Point;

TEST(Robustness, TripCsvRowMutationsNeverCrash) {
  // Mutate a valid row byte-by-byte: every variant must either parse into
  // a record with valid geohashes or throw invalid_argument.
  const std::string valid = "42,7,99,2,123456,wx4g0bm,wx4g5d2";
  stats::Rng rng(1);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string row = valid;
    const int mutations = 1 + static_cast<int>(rng.index(4));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = rng.index(row.size());
      row[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    try {
      const auto trip = data::from_csv_row(row);
      EXPECT_TRUE(geo::geohash_valid(trip.start_geohash));
      EXPECT_TRUE(geo::geohash_valid(trip.end_geohash));
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed, 0);  // some mutations stay valid (digit swaps etc.)
}

TEST(Robustness, GeohashDecodeRandomStringsNeverCrash) {
  stats::Rng rng(2);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string hash;
    const auto len = rng.index(12);
    for (std::size_t i = 0; i < len; ++i) {
      hash.push_back(static_cast<char>(rng.uniform_int(33, 126)));
    }
    if (geo::geohash_valid(hash)) {
      const auto cell = geo::geohash_decode(hash);
      EXPECT_GE(cell.center.lat, -90.0);
      EXPECT_LE(cell.center.lat, 90.0);
      EXPECT_GE(cell.center.lon, -180.0);
      EXPECT_LE(cell.center.lon, 180.0);
    } else {
      EXPECT_THROW((void)geo::geohash_decode(hash), std::invalid_argument);
    }
  }
}

TEST(Robustness, RandomGridsRoundTripEveryCell) {
  stats::Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const double w = rng.uniform(50.0, 5000.0);
    const double h = rng.uniform(50.0, 5000.0);
    const double cell = rng.uniform(10.0, 400.0);
    const geo::Point min{rng.uniform(-1000, 1000), rng.uniform(-1000, 1000)};
    const geo::Grid grid({min, {min.x + w, min.y + h}}, cell);
    for (std::size_t i = 0; i < grid.cell_count();
         i += 1 + grid.cell_count() / 17) {
      const auto c = grid.cell_at(i);
      EXPECT_EQ(grid.index_of(c), i);
      EXPECT_EQ(grid.clamped_cell_of(grid.centroid_of(c)), c);
    }
  }
}

TEST(Robustness, ConvexHullContainsStrictInteriorSamples) {
  stats::Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pts =
        stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, 8 + rng.index(40));
    geo::Polygon hull = geo::convex_hull(pts);
    // Random convex combinations of input points are inside (shrunk a hair
    // to dodge boundary ambiguity).
    const Point c = geo::centroid(pts);
    for (int s = 0; s < 50; ++s) {
      const Point a = pts[rng.index(pts.size())];
      const Point b = pts[rng.index(pts.size())];
      const double t = rng.uniform(0.0, 1.0);
      const Point mix{a.x * t + b.x * (1 - t), a.y * t + b.y * (1 - t)};
      const Point inner{c.x + 0.98 * (mix.x - c.x), c.y + 0.98 * (mix.y - c.y)};
      EXPECT_TRUE(hull.contains(inner));
    }
  }
}

TEST(Robustness, TspToursAlwaysPermutationsUnderRandomSizes) {
  stats::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.index(40);
    const auto sites = stats::uniform_points(rng, {{0, 0}, {1000, 1000}}, n);
    const auto order = solver::solve_tsp(sites);
    // tour_length validates the permutation internally.
    EXPECT_GE(solver::tour_length(sites, order), 0.0);
  }
}

TEST(Robustness, EventEngineStressKeepsTimeMonotone) {
  sim::EventEngine engine;
  stats::Rng rng(6);
  std::vector<sim::Seconds> fire_order;
  for (int i = 0; i < 5000; ++i) {
    const auto when = static_cast<sim::Seconds>(rng.uniform_int(0, 100000));
    engine.schedule(when, [&fire_order, &engine] {
      fire_order.push_back(engine.now());
    });
  }
  EXPECT_EQ(engine.run(), 5000u);
  EXPECT_TRUE(std::is_sorted(fire_order.begin(), fire_order.end()));
}

TEST(Robustness, StationsCsvGarbageRejected) {
  for (const char* garbage :
       {"", "random text", "id,x,y\n0,1,2", "id,x,y,online_opened,active\n0,nan,inf,2,9,extra"}) {
    std::stringstream ss{std::string(garbage)};
    EXPECT_THROW((void)core::read_stations_csv(ss), std::invalid_argument)
        << garbage;
  }
}

}  // namespace
}  // namespace esharing
