#include "ml/linalg_batch.h"

#include "exec/thread_pool.h"
#include "ml/linalg.h"

namespace esharing::ml {

namespace {

/// Serial under the shared cutoff, pool width above it; explicit widths
/// pass through untouched. Only ever selects the lane count.
std::size_t pick_width(std::size_t flops, std::size_t width) {
  if (width != 0) return width;
  return flops < kSerialFlops ? 1 : 0;
}

/// Generic plane product: z[r][c] (=|+=) init + sum_j wload(r, j) * x[j][c]
/// with j ascending. The blocked body and both tails execute the identical
/// per-element statement sequence (this file is built with
/// -ffp-contract=off), so an element's value never depends on its batch
/// position, the batch size, or the pool width.
template <bool kAccumulate, typename LoadW>
void plane_matmul(LoadW&& wload, std::size_t out_rows, std::size_t inner,
                  const float* x, std::size_t batch, const float* bias,
                  float* z, std::size_t width) {
  exec::parallel_for(
      out_rows, kRowGrain,
      [&](std::size_t rb, std::size_t re, std::size_t) {
        for (std::size_t r = rb; r < re; ++r) {
          float* zr = z + r * batch;
          if (!kAccumulate) {
            const float init = bias != nullptr ? bias[r] : 0.0f;
            for (std::size_t c = 0; c < batch; ++c) zr[c] = init;
          }
          std::size_t j = 0;
          for (; j + 4 <= inner; j += 4) {
            const float w0 = wload(r, j);
            const float w1 = wload(r, j + 1);
            const float w2 = wload(r, j + 2);
            const float w3 = wload(r, j + 3);
            const float* x0 = x + j * batch;
            const float* x1 = x0 + batch;
            const float* x2 = x1 + batch;
            const float* x3 = x2 + batch;
            std::size_t c = 0;
            for (; c + kPlaneLanes <= batch; c += kPlaneLanes) {
              for (std::size_t l = 0; l < kPlaneLanes; ++l) {
                float acc = zr[c + l];
                acc += w0 * x0[c + l];
                acc += w1 * x1[c + l];
                acc += w2 * x2[c + l];
                acc += w3 * x3[c + l];
                zr[c + l] = acc;
              }
            }
            for (; c < batch; ++c) {
              float acc = zr[c];
              acc += w0 * x0[c];
              acc += w1 * x1[c];
              acc += w2 * x2[c];
              acc += w3 * x3[c];
              zr[c] = acc;
            }
          }
          for (; j < inner; ++j) {
            const float wj = wload(r, j);
            const float* xj = x + j * batch;
            std::size_t c = 0;
            for (; c + kPlaneLanes <= batch; c += kPlaneLanes) {
              for (std::size_t l = 0; l < kPlaneLanes; ++l) {
                zr[c + l] += wj * xj[c + l];
              }
            }
            for (; c < batch; ++c) zr[c] += wj * xj[c];
          }
        }
      },
      pick_width(out_rows * inner * batch, width));
}

}  // namespace

void batch_matmul_bias(const float* w, std::size_t rows, std::size_t cols,
                       const float* x, std::size_t batch, const float* bias,
                       float* z, std::size_t width) {
  plane_matmul<false>(
      [&](std::size_t r, std::size_t k) { return w[r * cols + k]; }, rows,
      cols, x, batch, bias, z, width);
}

void batch_matmul_acc(const float* w, std::size_t rows, std::size_t cols,
                      const float* x, std::size_t batch, float* z,
                      std::size_t width) {
  plane_matmul<true>(
      [&](std::size_t r, std::size_t k) { return w[r * cols + k]; }, rows,
      cols, x, batch, nullptr, z, width);
}

void batch_matmul_bias_i8(const std::int8_t* w, const float* row_scale,
                          std::size_t rows, std::size_t cols, const float* x,
                          std::size_t batch, const float* bias, float* z,
                          std::size_t width) {
  plane_matmul<false>(
      [&](std::size_t r, std::size_t k) {
        return row_scale[r] * static_cast<float>(w[r * cols + k]);
      },
      rows, cols, x, batch, bias, z, width);
}

void batch_matmul_acc_i8(const std::int8_t* w, const float* row_scale,
                         std::size_t rows, std::size_t cols, const float* x,
                         std::size_t batch, float* z, std::size_t width) {
  plane_matmul<true>(
      [&](std::size_t r, std::size_t k) {
        return row_scale[r] * static_cast<float>(w[r * cols + k]);
      },
      rows, cols, x, batch, nullptr, z, width);
}

void batch_matmul_transpose_acc(const float* w, std::size_t rows,
                                std::size_t cols, const float* z,
                                std::size_t batch, float* out,
                                std::size_t width) {
  // Output rows are the weight columns; the inner (ascending) dimension is
  // the weight rows, loaded with stride cols.
  plane_matmul<true>(
      [&](std::size_t k, std::size_t r) { return w[r * cols + k]; }, cols,
      rows, z, batch, nullptr, out, width);
}

void batch_outer_acc(const float* dz, std::size_t rows, const float* x,
                     std::size_t cols, std::size_t batch, double* g,
                     std::size_t width) {
  exec::parallel_for(
      rows, kRowGrain,
      [&](std::size_t rb, std::size_t re, std::size_t) {
        for (std::size_t r = rb; r < re; ++r) {
          const float* zr = dz + r * batch;
          double* gr = g + r * cols;
          for (std::size_t k = 0; k < cols; ++k) {
            const float* xk = x + k * batch;
            double acc = 0.0;
            for (std::size_t c = 0; c < batch; ++c) {
              acc += static_cast<double>(zr[c]) * static_cast<double>(xk[c]);
            }
            gr[k] += acc;
          }
        }
      },
      pick_width(rows * cols * batch, width));
}

void batch_rowsum_acc(const float* dz, std::size_t rows, std::size_t batch,
                      double* g, std::size_t width) {
  exec::parallel_for(
      rows, kRowGrain,
      [&](std::size_t rb, std::size_t re, std::size_t) {
        for (std::size_t r = rb; r < re; ++r) {
          const float* zr = dz + r * batch;
          double acc = 0.0;
          for (std::size_t c = 0; c < batch; ++c) {
            acc += static_cast<double>(zr[c]);
          }
          g[r] += acc;
        }
      },
      pick_width(rows * batch, width));
}

}  // namespace esharing::ml
