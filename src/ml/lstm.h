#pragma once

/// \file lstm.h
/// From-scratch multi-layer LSTM forecaster — the paper's prediction engine
/// (Section V-A), replacing its TensorFlow implementation. A stack of LSTM
/// layers reads the last `lookback` hourly counts and a linear head emits
/// the next hour's forecast; training is full BPTT with Adam on
/// z-score-standardized windows. Table II's axes (number of layers,
/// lookback "back") map directly onto LstmConfig.
///
/// All parameters live in one flat vector, which keeps the Adam update
/// trivial and lets tests do finite-difference gradient checks against the
/// analytic BPTT gradients (tests/ml_lstm_test.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "ml/forecaster.h"
#include "ml/series.h"

namespace esharing::ml {

struct LstmConfig {
  int layers{2};          ///< stacked LSTM layers (paper sweeps 1..3)
  int hidden{32};         ///< hidden units per layer (paper uses 128)
  std::size_t lookback{12};  ///< the paper's "back" parameter, in hours
  int epochs{40};
  double learning_rate{5e-3};
  double grad_clip{5.0};  ///< global-norm clip; <= 0 disables
  std::uint64_t seed{1};
};

class LstmForecaster final : public Forecaster {
 public:
  /// \throws std::invalid_argument for non-positive layers/hidden/lookback.
  explicit LstmForecaster(LstmConfig config);

  /// Standardizes the series, builds sliding windows and trains with Adam.
  /// \throws std::invalid_argument if train has < lookback + 2 points.
  void fit(const Series& train) override;

  [[nodiscard]] Series forecast(const Series& history,
                                std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const LstmConfig& config() const { return config_; }
  /// Mean training loss per epoch (filled by fit()).
  [[nodiscard]] const std::vector<double>& loss_history() const {
    return loss_history_;
  }

  // --- low-level access for tests (gradient checking) -------------------
  /// MSE/2 loss of one standardized window under current parameters.
  [[nodiscard]] double sample_loss(const Window& w) const;
  /// Analytic gradient of sample_loss via BPTT.
  [[nodiscard]] std::vector<double> sample_gradient(const Window& w) const;
  [[nodiscard]] std::vector<double>& parameters() { return params_; }
  [[nodiscard]] const std::vector<double>& parameters() const { return params_; }

 private:
  struct Forward;  // per-sample activation caches

  [[nodiscard]] double predict_window(const std::vector<double>& input) const;
  [[nodiscard]] Forward run_forward(const std::vector<double>& input) const;
  void init_params(std::uint64_t seed);

  // Flat-parameter layout helpers.
  [[nodiscard]] std::size_t input_size(int layer) const;
  [[nodiscard]] std::size_t wx_off(int layer) const;
  [[nodiscard]] std::size_t wh_off(int layer) const;
  [[nodiscard]] std::size_t b_off(int layer) const;
  [[nodiscard]] std::size_t wy_off() const;
  [[nodiscard]] std::size_t by_off() const;
  [[nodiscard]] std::size_t param_count() const;

  LstmConfig config_;
  std::vector<double> params_;
  Scaler scaler_;
  bool fitted_{false};
  std::vector<double> loss_history_;
};

}  // namespace esharing::ml
