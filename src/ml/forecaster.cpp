#include "ml/forecaster.h"

#include <stdexcept>

#include "stats/summary.h"

namespace esharing::ml {

Series rolling_predictions(const Forecaster& model, const Series& train,
                           const Series& test) {
  if (test.empty()) {
    throw std::invalid_argument("rolling_predictions: empty test series");
  }
  Series history = train;
  Series predictions;
  predictions.reserve(test.size());
  for (double actual : test) {
    predictions.push_back(model.forecast(history, 1).at(0));
    history.push_back(actual);
  }
  return predictions;
}

double evaluate_rmse(const Forecaster& model, const Series& train,
                     const Series& test) {
  return stats::rmse(rolling_predictions(model, train, test), test);
}

double evaluate_rmse_at_horizon(const Forecaster& model, const Series& train,
                                const Series& test, std::size_t horizon) {
  if (horizon == 0) {
    throw std::invalid_argument("evaluate_rmse_at_horizon: zero horizon");
  }
  if (test.size() < horizon) {
    throw std::invalid_argument(
        "evaluate_rmse_at_horizon: test shorter than horizon");
  }
  Series history = train;
  Series predictions, actuals;
  for (std::size_t t = 0; t + horizon <= test.size(); ++t) {
    predictions.push_back(model.forecast(history, horizon).at(horizon - 1));
    actuals.push_back(test[t + horizon - 1]);
    history.push_back(test[t]);
  }
  return stats::rmse(predictions, actuals);
}

}  // namespace esharing::ml
