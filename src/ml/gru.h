#pragma once

/// \file gru.h
/// From-scratch multi-layer GRU forecaster — an alternative recurrent
/// predictor for E-Sharing's engine ("It can be integrated with any
/// prediction engine", Section I). Mirrors LstmForecaster's interface and
/// training loop (standardized sliding windows, BPTT, Adam, flat parameter
/// vector for finite-difference gradient checks). Gate equations (single-
/// bias variant):
///
///   z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)        update gate
///   r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)        reset gate
///   n_t = tanh  (Wn x_t + r_t .* (Un h_{t-1}) + bn) candidate
///   h_t = (1 - z_t) .* n_t + z_t .* h_{t-1}

#include <cstdint>
#include <string>
#include <vector>

#include "ml/forecaster.h"
#include "ml/series.h"

namespace esharing::ml {

struct GruConfig {
  int layers{2};
  int hidden{32};
  std::size_t lookback{12};
  int epochs{40};
  double learning_rate{5e-3};
  double grad_clip{5.0};
  std::uint64_t seed{1};
};

class GruForecaster final : public Forecaster {
 public:
  /// \throws std::invalid_argument for non-positive layers/hidden/lookback.
  explicit GruForecaster(GruConfig config);

  void fit(const Series& train) override;
  [[nodiscard]] Series forecast(const Series& history,
                                std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const GruConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<double>& loss_history() const {
    return loss_history_;
  }

  // --- low-level access for tests (gradient checking) -------------------
  [[nodiscard]] double sample_loss(const Window& w) const;
  [[nodiscard]] std::vector<double> sample_gradient(const Window& w) const;
  [[nodiscard]] std::vector<double>& parameters() { return params_; }
  [[nodiscard]] const std::vector<double>& parameters() const { return params_; }

 private:
  struct Forward;

  [[nodiscard]] double predict_window(const std::vector<double>& input) const;
  [[nodiscard]] Forward run_forward(const std::vector<double>& input) const;
  void init_params(std::uint64_t seed);

  [[nodiscard]] std::size_t input_size(int layer) const;
  [[nodiscard]] std::size_t wx_off(int layer) const;
  [[nodiscard]] std::size_t wh_off(int layer) const;
  [[nodiscard]] std::size_t b_off(int layer) const;
  [[nodiscard]] std::size_t wy_off() const;
  [[nodiscard]] std::size_t by_off() const;
  [[nodiscard]] std::size_t param_count() const;

  GruConfig config_;
  std::vector<double> params_;
  Scaler scaler_;
  bool fitted_{false};
  std::vector<double> loss_history_;
};

}  // namespace esharing::ml
