#include "ml/gru.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/rnn_step.h"
#include "stats/rng.h"

namespace esharing::ml {

// Per-layer, per-step caches for BPTT.
struct GruForecaster::Forward {
  struct Step {
    std::vector<double> x;        // layer input
    std::vector<double> z, r, n;  // gate activations
    std::vector<double> q;        // Un * h_prev (pre reset gating)
    std::vector<double> h;
  };
  std::vector<std::vector<Step>> steps;  // [layer][time]
  double output{0.0};
};

GruForecaster::GruForecaster(GruConfig config) : config_(config) {
  if (config_.layers <= 0) throw std::invalid_argument("GruForecaster: layers <= 0");
  if (config_.hidden <= 0) throw std::invalid_argument("GruForecaster: hidden <= 0");
  if (config_.lookback == 0) throw std::invalid_argument("GruForecaster: lookback == 0");
  if (config_.epochs <= 0) throw std::invalid_argument("GruForecaster: epochs <= 0");
  init_params(config_.seed);
}

std::size_t GruForecaster::input_size(int layer) const {
  return layer == 0 ? 1 : static_cast<std::size_t>(config_.hidden);
}

std::size_t GruForecaster::wx_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  std::size_t off = 0;
  for (int l = 0; l < layer; ++l) {
    off += 3 * h * input_size(l) + 3 * h * h + 3 * h;
  }
  return off;
}

std::size_t GruForecaster::wh_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wx_off(layer) + 3 * h * input_size(layer);
}

std::size_t GruForecaster::b_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wh_off(layer) + 3 * h * h;
}

std::size_t GruForecaster::wy_off() const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return b_off(config_.layers - 1) + 3 * h;
}

std::size_t GruForecaster::by_off() const {
  return wy_off() + static_cast<std::size_t>(config_.hidden);
}

std::size_t GruForecaster::param_count() const { return by_off() + 1; }

void GruForecaster::init_params(std::uint64_t seed) {
  params_.assign(param_count(), 0.0);
  stats::Rng rng(seed);
  const auto h = static_cast<std::size_t>(config_.hidden);
  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    const double sx = 1.0 / std::sqrt(static_cast<double>(in));
    const double sh = 1.0 / std::sqrt(static_cast<double>(h));
    for (std::size_t k = 0; k < 3 * h * in; ++k) {
      params_[wx_off(l) + k] = rng.uniform(-sx, sx);
    }
    for (std::size_t k = 0; k < 3 * h * h; ++k) {
      params_[wh_off(l) + k] = rng.uniform(-sh, sh);
    }
    // Update-gate bias +1 keeps early h_t close to h_{t-1} (the GRU analog
    // of the LSTM forget-bias trick); gate blocks are [z | r | n].
    for (std::size_t k = 0; k < h; ++k) params_[b_off(l) + k] = 1.0;
  }
  const double sy = 1.0 / std::sqrt(static_cast<double>(h));
  for (std::size_t k = 0; k < h; ++k) {
    params_[wy_off() + k] = rng.uniform(-sy, sy);
  }
}

GruForecaster::Forward GruForecaster::run_forward(
    const std::vector<double>& input) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t t_len = input.size();
  Forward fw;
  fw.steps.resize(static_cast<std::size_t>(config_.layers));

  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    auto& layer_steps = fw.steps[static_cast<std::size_t>(l)];
    layer_steps.resize(t_len);
    std::vector<double> h_prev(h, 0.0);
    const double* wx = &params_[wx_off(l)];
    const double* wh = &params_[wh_off(l)];
    const double* b = &params_[b_off(l)];
    for (std::size_t t = 0; t < t_len; ++t) {
      auto& st = layer_steps[t];
      st.x = (l == 0) ? std::vector<double>{input[t]}
                      : fw.steps[static_cast<std::size_t>(l - 1)][t].h;
      st.z.resize(h); st.r.resize(h); st.n.resize(h);
      st.q.resize(h); st.h.resize(h);
      // Shared step kernel (rnn_step.h) — the exact arithmetic the old
      // inline gate loops produced, bit-identical.
      gru_step(wx, wh, b, in, h, st.x.data(), h_prev.data(), st.z.data(),
               st.r.data(), st.n.data(), st.q.data(), st.h.data());
      h_prev = st.h;
    }
  }

  const auto& h_last = fw.steps.back().back().h;
  fw.output =
      rnn_output_head(&params_[wy_off()], params_[by_off()], h_last.data(), h);
  return fw;
}

double GruForecaster::predict_window(const std::vector<double>& input) const {
  return run_forward(input).output;
}

double GruForecaster::sample_loss(const Window& w) const {
  const double e = predict_window(w.input) - w.target;
  return 0.5 * e * e;
}

std::vector<double> GruForecaster::sample_gradient(const Window& w) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t t_len = w.input.size();
  const Forward fw = run_forward(w.input);

  std::vector<double> grad(param_count(), 0.0);
  const double dy = fw.output - w.target;
  const auto& h_last = fw.steps.back().back().h;
  for (std::size_t u = 0; u < h; ++u) grad[wy_off() + u] += dy * h_last[u];
  grad[by_off()] += dy;

  std::vector<std::vector<double>> dh_inject(
      static_cast<std::size_t>(config_.layers) * t_len, std::vector<double>());
  auto inject = [&](int layer, std::size_t t) -> std::vector<double>& {
    auto& v = dh_inject[static_cast<std::size_t>(layer) * t_len + t];
    if (v.empty()) v.assign(h, 0.0);
    return v;
  };
  {
    auto& top = inject(config_.layers - 1, t_len - 1);
    for (std::size_t u = 0; u < h; ++u) top[u] = dy * params_[wy_off() + u];
  }

  for (int l = config_.layers - 1; l >= 0; --l) {
    const std::size_t in = input_size(l);
    const double* wx = &params_[wx_off(l)];
    const double* wh = &params_[wh_off(l)];
    double* gwx = &grad[wx_off(l)];
    double* gwh = &grad[wh_off(l)];
    double* gb = &grad[b_off(l)];
    const auto& steps = fw.steps[static_cast<std::size_t>(l)];

    std::vector<double> dh_next(h, 0.0);
    for (std::size_t ti = t_len; ti-- > 0;) {
      const auto& st = steps[ti];
      std::vector<double> dh = dh_next;
      const auto& injected = dh_inject[static_cast<std::size_t>(l) * t_len + ti];
      if (!injected.empty()) {
        for (std::size_t u = 0; u < h; ++u) dh[u] += injected[u];
      }
      const std::vector<double>* h_prev = ti > 0 ? &steps[ti - 1].h : nullptr;

      std::vector<double> daz(h), dar(h), dan(h), dq(h), dh_prev(h, 0.0);
      for (std::size_t u = 0; u < h; ++u) {
        const double hp = h_prev ? (*h_prev)[u] : 0.0;
        const double dz = dh[u] * (hp - st.n[u]);
        const double dn = dh[u] * (1.0 - st.z[u]);
        dh_prev[u] += dh[u] * st.z[u];
        dan[u] = dn * (1.0 - st.n[u] * st.n[u]);
        const double dr = dan[u] * st.q[u];
        dq[u] = dan[u] * st.r[u];
        daz[u] = dz * st.z[u] * (1.0 - st.z[u]);
        dar[u] = dr * st.r[u] * (1.0 - st.r[u]);
      }

      std::vector<double> dx(in, 0.0);
      for (std::size_t u = 0; u < h; ++u) {
        const std::size_t rows[3] = {u, h + u, 2 * h + u};
        const double deltas[3] = {daz[u], dar[u], dan[u]};
        for (int g = 0; g < 3; ++g) {
          const double d = deltas[g];
          if (d == 0.0) continue;
          double* gwx_row = gwx + rows[g] * in;
          const double* wx_row = wx + rows[g] * in;
          for (std::size_t k = 0; k < in; ++k) {
            gwx_row[k] += d * st.x[k];
            dx[k] += wx_row[k] * d;
          }
          gb[rows[g]] += d;
        }
        // Recurrent parts: Uz/Ur act on h_prev through az/ar; Un through q.
        if (h_prev != nullptr) {
          double* gwz_row = gwh + u * h;
          double* gwr_row = gwh + (h + u) * h;
          double* gwn_row = gwh + (2 * h + u) * h;
          for (std::size_t k = 0; k < h; ++k) {
            gwz_row[k] += daz[u] * (*h_prev)[k];
            gwr_row[k] += dar[u] * (*h_prev)[k];
            gwn_row[k] += dq[u] * (*h_prev)[k];
          }
        }
        const double* whz_row = wh + u * h;
        const double* whr_row = wh + (h + u) * h;
        const double* whn_row = wh + (2 * h + u) * h;
        for (std::size_t k = 0; k < h; ++k) {
          dh_prev[k] += whz_row[k] * daz[u] + whr_row[k] * dar[u] +
                        whn_row[k] * dq[u];
        }
      }

      dh_next = dh_prev;
      if (l > 0) {
        auto& below = inject(l - 1, ti);
        for (std::size_t k = 0; k < in; ++k) below[k] += dx[k];
      }
    }
  }
  return grad;
}

void GruForecaster::fit(const Series& train) {
  if (train.size() < config_.lookback + 2) {
    throw std::invalid_argument("GruForecaster::fit: series too short");
  }
  scaler_.fit(train);
  const Series z = scaler_.transform(train);
  std::vector<Window> windows = sliding_windows(z, config_.lookback);

  std::vector<double> m(param_count(), 0.0), v(param_count(), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  stats::Rng rng(config_.seed ^ 0xc2b2ae35ULL);
  std::vector<std::size_t> order(windows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  loss_history_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const Window& w = windows[idx];
      epoch_loss += sample_loss(w);
      std::vector<double> grad = sample_gradient(w);
      if (config_.grad_clip > 0.0) {
        double norm2 = 0.0;
        for (double g : grad) norm2 += g * g;
        const double norm = std::sqrt(norm2);
        if (norm > config_.grad_clip) {
          const double scale = config_.grad_clip / norm;
          for (double& g : grad) g *= scale;
        }
      }
      beta1_t *= beta1;
      beta2_t *= beta2;
      for (std::size_t k = 0; k < params_.size(); ++k) {
        m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
        v[k] = beta2 * v[k] + (1.0 - beta2) * grad[k] * grad[k];
        params_[k] -= config_.learning_rate * (m[k] / (1.0 - beta1_t)) /
                      (std::sqrt(v[k] / (1.0 - beta2_t)) + eps);
      }
    }
    loss_history_.push_back(epoch_loss / static_cast<double>(windows.size()));
  }
  fitted_ = true;
}

Series GruForecaster::forecast(const Series& history,
                               std::size_t horizon) const {
  if (!fitted_) throw std::logic_error("GruForecaster::forecast: not fitted");
  if (history.size() < config_.lookback) {
    throw std::invalid_argument("GruForecaster::forecast: history shorter than lookback");
  }
  std::vector<double> window(history.end() - static_cast<std::ptrdiff_t>(config_.lookback),
                             history.end());
  for (double& x : window) x = scaler_.transform_one(x);
  Series out;
  out.reserve(horizon);
  for (std::size_t hstep = 0; hstep < horizon; ++hstep) {
    const double z = predict_window(window);
    out.push_back(scaler_.inverse_one(z));
    window.erase(window.begin());
    window.push_back(z);
  }
  return out;
}

std::string GruForecaster::name() const {
  return "GRU(layers=" + std::to_string(config_.layers) +
         ",back=" + std::to_string(config_.lookback) + ")";
}

}  // namespace esharing::ml
