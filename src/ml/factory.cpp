#include "ml/factory.h"

#include <stdexcept>

#include "ml/arima.h"
#include "ml/gru.h"
#include "ml/lstm.h"
#include "ml/moving_average.h"
#include "ml/seasonal_naive.h"

namespace esharing::ml {

std::unique_ptr<Forecaster> make_forecaster(std::string_view name,
                                            const ForecasterSpec& spec) {
  if (name == "ma") {
    return std::make_unique<MovingAverageForecaster>(spec.ma_window);
  }
  if (name == "arima") {
    return std::make_unique<ArimaForecaster>(spec.arima_p, spec.arima_d);
  }
  if (name == "lstm") {
    LstmConfig config;
    config.layers = spec.layers;
    config.hidden = spec.hidden;
    config.lookback = spec.lookback;
    config.epochs = spec.epochs;
    config.learning_rate = spec.learning_rate;
    config.seed = spec.seed;
    return std::make_unique<LstmForecaster>(config);
  }
  if (name == "gru") {
    GruConfig config;
    config.layers = spec.layers;
    config.hidden = spec.hidden;
    config.lookback = spec.lookback;
    config.epochs = spec.epochs;
    config.learning_rate = spec.learning_rate;
    config.seed = spec.seed;
    return std::make_unique<GruForecaster>(config);
  }
  if (name == "seasonal_naive") {
    return std::make_unique<SeasonalNaiveForecaster>(spec.period);
  }
  std::string known;
  for (const std::string& n : forecaster_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("make_forecaster: unknown model '" +
                              std::string(name) + "'; known: " + known);
}

std::vector<std::string> forecaster_names() {
  return {"arima", "gru", "lstm", "ma", "seasonal_naive"};
}

}  // namespace esharing::ml
