#pragma once

/// \file factory.h
/// Unified forecaster entry point: `make_forecaster(name, spec)` builds any
/// of the prediction-engine models by name, so benches and examples that
/// compare forecaster families (Table II) iterate over names instead of
/// hard-coding one constructor per model.
///
/// Names: "ma", "arima", "lstm", "gru", "seasonal_naive".

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ml/forecaster.h"

namespace esharing::ml {

/// Superset of the per-model hyperparameters; each model reads only the
/// fields it understands. Defaults match the individual model defaults.
struct ForecasterSpec {
  std::uint64_t seed{1};       ///< "lstm", "gru"
  std::size_t ma_window{3};    ///< "ma": the paper's wz parameter
  int arima_p{3};              ///< "arima" AR order
  int arima_d{1};              ///< "arima" differencing order
  int layers{2};               ///< "lstm", "gru"
  int hidden{32};              ///< "lstm", "gru"
  std::size_t lookback{12};    ///< "lstm", "gru": the paper's back parameter
  int epochs{40};              ///< "lstm", "gru"
  double learning_rate{5e-3};  ///< "lstm", "gru"
  std::size_t period{24};      ///< "seasonal_naive" season length in hours
};

/// \throws std::invalid_argument for unknown names (the message lists the
///         known ones) and for model-specific spec errors.
[[nodiscard]] std::unique_ptr<Forecaster> make_forecaster(
    std::string_view name, const ForecasterSpec& spec = {});

/// The names make_forecaster accepts, in sorted order.
[[nodiscard]] std::vector<std::string> forecaster_names();

}  // namespace esharing::ml
