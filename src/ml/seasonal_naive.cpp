#include "ml/seasonal_naive.h"

#include <stdexcept>

namespace esharing::ml {

SeasonalNaiveForecaster::SeasonalNaiveForecaster(std::size_t period)
    : period_(period) {
  if (period == 0) {
    throw std::invalid_argument("SeasonalNaiveForecaster: period == 0");
  }
}

void SeasonalNaiveForecaster::fit(const Series& train) {
  if (train.empty()) {
    throw std::invalid_argument("SeasonalNaiveForecaster::fit: empty series");
  }
}

Series SeasonalNaiveForecaster::forecast(const Series& history,
                                         std::size_t horizon) const {
  if (history.size() < period_) {
    throw std::invalid_argument(
        "SeasonalNaiveForecaster: history shorter than one season");
  }
  Series extended = history;
  Series out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const double pred = extended[extended.size() - period_];
    out.push_back(pred);
    extended.push_back(pred);
  }
  return out;
}

std::string SeasonalNaiveForecaster::name() const {
  return "SeasonalNaive(period=" + std::to_string(period_) + ")";
}

}  // namespace esharing::ml
