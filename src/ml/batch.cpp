#include "ml/batch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/thread_pool.h"
#include "ml/linalg.h"
#include "ml/linalg_batch.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "stats/rng.h"

namespace esharing::ml::batch {

namespace {

/// ml.forecast.* metric handles, resolved once (registry.h idiom).
struct ForecastObs {
  obs::Counter& fits;
  obs::Counter& batch_refreshes;
  obs::Counter& steps;
  obs::Counter& cells;
  obs::Histogram& fit_seconds;
  obs::Histogram& batch_refresh_seconds;

  static ForecastObs& get() {
    static ForecastObs m{
        obs::Registry::global().counter("ml.forecast.fits"),
        obs::Registry::global().counter("ml.forecast.batch_refreshes"),
        obs::Registry::global().counter("ml.forecast.steps"),
        obs::Registry::global().counter("ml.forecast.cells"),
        obs::Registry::global().histogram("ml.forecast.fit_seconds"),
        obs::Registry::global().histogram("ml.forecast.batch_refresh_seconds"),
    };
    return m;
  }
};

/// Gate activations route through the rational plane_tanhf/plane_sigmoidf
/// of linalg_batch.h: pure fp32 arithmetic the compiler vectorizes across
/// the contiguous batch dimension (a libm call here serializes the whole
/// pointwise pass and dominates the refresh).
float sigmoidf(float x) { return plane_sigmoidf(x); }
float tanhf_(float x) { return plane_tanhf(x); }

/// Lane pick for the pointwise gate updates: the rational activations make
/// one element an order costlier than a MAC, hence the weighting against
/// the shared cutoff. Elementwise updates are per-element independent, so the
/// result is identical at every width either way.
std::size_t pointwise_width(std::size_t h, std::size_t b, std::size_t width) {
  if (width != 0) return width;
  return h * b * 16 < kSerialFlops ? 1 : 0;
}

/// Fused LSTM gate update over `[h × batch]` planes: consumes the gate
/// pre-activation plane z ([4h × batch], blocks [i|f|g|o]), updates the
/// cell/hidden planes in place, and optionally records activations into
/// the BPTT cache planes (all-or-none: pass ci == nullptr to skip).
void lstm_pointwise(const float* z, std::size_t h, std::size_t b,
                    std::size_t width, float* cplane, float* hplane, float* ci,
                    float* cf, float* cg, float* co, float* cc, float* ctc,
                    float* ch) {
  exec::parallel_for(
      h, /*grain=*/1,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          const float* zi = z + u * b;
          const float* zf = z + (h + u) * b;
          const float* zg = z + (2 * h + u) * b;
          const float* zo = z + (3 * h + u) * b;
          float* cu = cplane + u * b;
          float* hu = hplane + u * b;
          if (ci == nullptr) {
            for (std::size_t k = 0; k < b; ++k) {
              const float iv = sigmoidf(zi[k]);
              const float fv = sigmoidf(zf[k]);
              const float gv = tanhf_(zg[k]);
              const float ov = sigmoidf(zo[k]);
              const float cn = fv * cu[k] + iv * gv;
              const float tc = tanhf_(cn);
              cu[k] = cn;
              hu[k] = ov * tc;
            }
          } else {
            for (std::size_t k = 0; k < b; ++k) {
              const std::size_t at = u * b + k;
              const float iv = sigmoidf(zi[k]);
              const float fv = sigmoidf(zf[k]);
              const float gv = tanhf_(zg[k]);
              const float ov = sigmoidf(zo[k]);
              const float cn = fv * cu[k] + iv * gv;
              const float tc = tanhf_(cn);
              cu[k] = cn;
              hu[k] = ov * tc;
              ci[at] = iv;
              cf[at] = fv;
              cg[at] = gv;
              co[at] = ov;
              cc[at] = cn;
              ctc[at] = tc;
              ch[at] = hu[k];
            }
          }
        }
      },
      pointwise_width(h, b, width));
}

/// Fused GRU gate update: consumes the pre-activation plane a ([3h × batch],
/// blocks [z|r|n], with the z/r blocks already holding Wh·h_prev) and the
/// pre-reset candidate product q ([h × batch]); updates the hidden plane in
/// place. Optional cache planes as in lstm_pointwise.
void gru_pointwise(const float* a, const float* q, std::size_t h,
                   std::size_t b, std::size_t width, float* hplane, float* cz,
                   float* cr, float* cn, float* cq, float* ch) {
  exec::parallel_for(
      h, /*grain=*/1,
      [&](std::size_t ub, std::size_t ue, std::size_t) {
        for (std::size_t u = ub; u < ue; ++u) {
          const float* az = a + u * b;
          const float* ar = a + (h + u) * b;
          const float* an = a + (2 * h + u) * b;
          const float* qu = q + u * b;
          float* hu = hplane + u * b;
          if (cz == nullptr) {
            for (std::size_t k = 0; k < b; ++k) {
              const float zv = sigmoidf(az[k]);
              const float rv = sigmoidf(ar[k]);
              const float nv = tanhf_(an[k] + rv * qu[k]);
              hu[k] = (1.0f - zv) * nv + zv * hu[k];
            }
          } else {
            for (std::size_t k = 0; k < b; ++k) {
              const std::size_t at = u * b + k;
              const float zv = sigmoidf(az[k]);
              const float rv = sigmoidf(ar[k]);
              const float nv = tanhf_(an[k] + rv * qu[k]);
              const float hv = (1.0f - zv) * nv + zv * hu[k];
              hu[k] = hv;
              cz[at] = zv;
              cr[at] = rv;
              cn[at] = nv;
              cq[at] = qu[k];
              ch[at] = hv;
            }
          }
        }
      },
      pointwise_width(h, b, width));
}

/// Output head: y[c] = by + Wy·h_top[.][c], terms added in ascending unit
/// order per cell (the plane transpose of rnn_output_head).
void output_head(const float* wy, float by, const float* htop, std::size_t h,
                 std::size_t b, float* y) {
  for (std::size_t k = 0; k < b; ++k) y[k] = by;
  for (std::size_t u = 0; u < h; ++u) {
    const float wu = wy[u];
    const float* hu = htop + u * b;
    for (std::size_t k = 0; k < b; ++k) y[k] += wu * hu[k];
  }
}

}  // namespace

// --- config / layout --------------------------------------------------------

void BatchRnnConfig::validate() const {
  if (layers <= 0) {
    throw std::invalid_argument(
        "BatchRnnConfig: layers = " + std::to_string(layers) +
        " is invalid: the batch engine needs at least one recurrent layer");
  }
  if (hidden <= 0) {
    throw std::invalid_argument(
        "BatchRnnConfig: hidden = " + std::to_string(hidden) +
        " is invalid: each layer needs at least one hidden unit");
  }
  if (lookback == 0) {
    throw std::invalid_argument(
        "BatchRnnConfig: lookback = 0 is invalid: forecasts condition on at "
        "least one trailing observation");
  }
  if (epochs <= 0) {
    throw std::invalid_argument(
        "BatchRnnConfig: epochs = " + std::to_string(epochs) +
        " is invalid: fitting needs at least one full-batch Adam step");
  }
  if (!(learning_rate > 0.0)) {
    throw std::invalid_argument(
        "BatchRnnConfig: learning_rate = " + std::to_string(learning_rate) +
        " is invalid: the Adam step size must be positive");
  }
  if (max_fit_windows == 0) {
    throw std::invalid_argument(
        "BatchRnnConfig: max_fit_windows = 0 is invalid: the pooled-window "
        "cap must admit at least one training window");
  }
}

struct BatchRnn::QuantLayer {
  std::vector<std::int8_t> wx, wh;
  std::vector<float> wx_scale, wh_scale;  ///< one fp32 scale per row
};

struct BatchRnn::Scratch {
  std::vector<float> z;                ///< [gates*h × batch] pre-activations
  std::vector<float> q;                ///< [h × batch] GRU candidate product
  std::vector<std::vector<float>> h;   ///< per layer [h × batch]
  std::vector<std::vector<float>> c;   ///< per layer [h × batch] (LSTM)
  std::vector<float> tile_win;         ///< [lookback × tile] window copy
};

/// Cells per inference tile (see run_batch_forward): sized so one tile's
/// pre-activation, hidden and cell planes fit comfortably in a typical L2
/// at the hidden sizes the forecasting configs use. A pure blocking
/// constant — results are bit-identical at every value.
constexpr std::size_t kForwardTile = 512;

struct BatchRnn::FitCaches {
  struct Step {
    std::vector<float> i, f, g, o, c, tanh_c;  // LSTM gates and cell
    std::vector<float> z, r, n, q;             // GRU gates
    std::vector<float> h;                      // layer output (both kinds)
  };
  std::size_t t_len{0};
  std::vector<Step> steps;  ///< [layer * t_len + t]

  Step& at(std::size_t l, std::size_t t) { return steps[l * t_len + t]; }
  [[nodiscard]] const Step& at(std::size_t l, std::size_t t) const {
    return steps[l * t_len + t];
  }
};

BatchRnn::BatchRnn(BatchRnnConfig config) : config_(config) {
  config_.validate();
  init_params(config_.seed);
}

BatchRnn::~BatchRnn() = default;
BatchRnn::BatchRnn(BatchRnn&&) noexcept = default;
BatchRnn& BatchRnn::operator=(BatchRnn&&) noexcept = default;

std::size_t BatchRnn::gates() const {
  return config_.kind == RnnKind::kLstm ? 4 : 3;
}

std::size_t BatchRnn::input_size(int layer) const {
  return layer == 0 ? 1 : static_cast<std::size_t>(config_.hidden);
}

std::size_t BatchRnn::wx_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t g = gates();
  std::size_t off = 0;
  for (int l = 0; l < layer; ++l) {
    off += g * h * input_size(l) + g * h * h + g * h;
  }
  return off;
}

std::size_t BatchRnn::wh_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wx_off(layer) + gates() * h * input_size(layer);
}

std::size_t BatchRnn::b_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wh_off(layer) + gates() * h * h;
}

std::size_t BatchRnn::wy_off() const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return b_off(config_.layers - 1) + gates() * h;
}

std::size_t BatchRnn::by_off() const {
  return wy_off() + static_cast<std::size_t>(config_.hidden);
}

std::size_t BatchRnn::param_count() const { return by_off() + 1; }

void BatchRnn::init_params(std::uint64_t seed) {
  params_.assign(param_count(), 0.0f);
  stats::Rng rng(seed);
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t g = gates();
  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    const double sx = 1.0 / std::sqrt(static_cast<double>(in));
    const double sh = 1.0 / std::sqrt(static_cast<double>(h));
    for (std::size_t k = 0; k < g * h * in; ++k) {
      params_[wx_off(l) + k] = static_cast<float>(rng.uniform(-sx, sx));
    }
    for (std::size_t k = 0; k < g * h * h; ++k) {
      params_[wh_off(l) + k] = static_cast<float>(rng.uniform(-sh, sh));
    }
    // Same stabilizing bias tricks as the per-cell engines: LSTM forget
    // block (+h) at +1, GRU update block (first) at +1.
    const std::size_t bias_block = config_.kind == RnnKind::kLstm ? h : 0;
    for (std::size_t k = 0; k < h; ++k) {
      params_[b_off(l) + bias_block + k] = 1.0f;
    }
  }
  const double sy = 1.0 / std::sqrt(static_cast<double>(h));
  for (std::size_t k = 0; k < h; ++k) {
    params_[wy_off() + k] = static_cast<float>(rng.uniform(-sy, sy));
  }
  quant_.clear();
}

std::string BatchRnn::name() const {
  return std::string(config_.kind == RnnKind::kLstm ? "BatchLSTM" : "BatchGRU") +
         "(layers=" + std::to_string(config_.layers) +
         ",hidden=" + std::to_string(config_.hidden) +
         ",back=" + std::to_string(config_.lookback) + ")";
}

// --- quantization -----------------------------------------------------------

void BatchRnn::refresh_quantization() {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t g = gates();
  quant_.assign(static_cast<std::size_t>(config_.layers), QuantLayer{});
  // Per gate block and matrix: scale = max|w| / 127, weights rounded to the
  // nearest int8 step. A zero block keeps scale 1 (all-zero codes).
  const auto quantize_block = [&](const float* w, std::size_t rows,
                                  std::size_t cols, std::int8_t* q,
                                  float* row_scale) {
    for (std::size_t gi = 0; gi < g; ++gi) {
      float maxabs = 0.0f;
      for (std::size_t r = gi * h; r < (gi + 1) * h; ++r) {
        for (std::size_t k = 0; k < cols; ++k) {
          maxabs = std::max(maxabs, std::abs(w[r * cols + k]));
        }
      }
      const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
      for (std::size_t r = gi * h; r < (gi + 1) * h; ++r) {
        row_scale[r] = scale;
        for (std::size_t k = 0; k < cols; ++k) {
          const long code = std::lround(w[r * cols + k] / scale);
          q[r * cols + k] = static_cast<std::int8_t>(
              std::clamp(code, -127L, 127L));
        }
      }
    }
    (void)rows;
  };
  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    QuantLayer& ql = quant_[static_cast<std::size_t>(l)];
    ql.wx.resize(g * h * in);
    ql.wx_scale.resize(g * h);
    ql.wh.resize(g * h * h);
    ql.wh_scale.resize(g * h);
    quantize_block(&params_[wx_off(l)], g * h, in, ql.wx.data(),
                   ql.wx_scale.data());
    quantize_block(&params_[wh_off(l)], g * h, h, ql.wh.data(),
                   ql.wh_scale.data());
  }
}

// --- fused forward ----------------------------------------------------------

void BatchRnn::run_batch_forward(const float* win, std::size_t batch,
                                 Precision precision, std::size_t width,
                                 float* y, Scratch& s,
                                 FitCaches* caches) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t g = gates();
  const std::size_t t_len = config_.lookback;
  const auto layers = static_cast<std::size_t>(config_.layers);
  const bool lstm = config_.kind == RnnKind::kLstm;

  if (precision == Precision::kInt8 && quant_.size() != layers) {
    throw std::logic_error(
        "BatchRnn: int8 inference requested before quantization tables were "
        "built (fit() builds them; refresh_quantization() after parameter "
        "edits)");
  }

  // Cache-blocked inference: cells are independent across the whole
  // recurrence, so large batches run one kForwardTile-cell tile at a time —
  // the tile's z/h/c planes stay L2-resident across all timesteps instead
  // of streaming through DRAM once per step. Per-element arithmetic is
  // identical whatever the tile boundaries (each cell's chain never reads
  // another cell), so tiling preserves the bit-identity contract. The fit
  // path (caches != nullptr) stays untiled: BPTT wants full-batch
  // activation planes, and training is gradient-bound anyway.
  if (caches == nullptr && batch > kForwardTile) {
    for (std::size_t start = 0; start < batch; start += kForwardTile) {
      const std::size_t tile = std::min(kForwardTile, batch - start);
      s.tile_win.resize(t_len * tile);
      for (std::size_t t = 0; t < t_len; ++t) {
        const float* row = win + t * batch + start;
        std::copy(row, row + tile, s.tile_win.data() + t * tile);
      }
      run_batch_forward(s.tile_win.data(), tile, precision, width, y + start,
                        s, nullptr);
    }
    return;
  }

  s.z.resize(g * h * batch);
  if (!lstm) s.q.resize(h * batch);
  s.h.resize(layers);
  if (lstm) s.c.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    s.h[l].assign(h * batch, 0.0f);
    if (lstm) s.c[l].assign(h * batch, 0.0f);
  }
  if (caches != nullptr) {
    caches->t_len = t_len;
    caches->steps.resize(layers * t_len);
    for (auto& st : caches->steps) {
      st.h.resize(h * batch);
      if (lstm) {
        st.i.resize(h * batch);
        st.f.resize(h * batch);
        st.g.resize(h * batch);
        st.o.resize(h * batch);
        st.c.resize(h * batch);
        st.tanh_c.resize(h * batch);
      } else {
        st.z.resize(h * batch);
        st.r.resize(h * batch);
        st.n.resize(h * batch);
        st.q.resize(h * batch);
      }
    }
  }

  for (std::size_t t = 0; t < t_len; ++t) {
    const float* x = win + t * batch;
    std::size_t in = 1;
    for (std::size_t l = 0; l < layers; ++l) {
      const float* wx = params_.data() + wx_off(static_cast<int>(l));
      const float* wh = params_.data() + wh_off(static_cast<int>(l));
      const float* b = params_.data() + b_off(static_cast<int>(l));
      float* hp = s.h[l].data();
      FitCaches::Step* st =
          caches != nullptr ? &caches->at(l, t) : nullptr;
      if (lstm) {
        if (precision == Precision::kFp32) {
          batch_matmul_bias(wx, 4 * h, in, x, batch, b, s.z.data(), width);
          batch_matmul_acc(wh, 4 * h, h, hp, batch, s.z.data(), width);
        } else {
          const QuantLayer& ql = quant_[l];
          batch_matmul_bias_i8(ql.wx.data(), ql.wx_scale.data(), 4 * h, in, x,
                               batch, b, s.z.data(), width);
          batch_matmul_acc_i8(ql.wh.data(), ql.wh_scale.data(), 4 * h, h, hp,
                              batch, s.z.data(), width);
        }
        lstm_pointwise(s.z.data(), h, batch, width, s.c[l].data(), hp,
                       st != nullptr ? st->i.data() : nullptr,
                       st != nullptr ? st->f.data() : nullptr,
                       st != nullptr ? st->g.data() : nullptr,
                       st != nullptr ? st->o.data() : nullptr,
                       st != nullptr ? st->c.data() : nullptr,
                       st != nullptr ? st->tanh_c.data() : nullptr,
                       st != nullptr ? st->h.data() : nullptr);
      } else {
        if (precision == Precision::kFp32) {
          batch_matmul_bias(wx, 3 * h, in, x, batch, b, s.z.data(), width);
          batch_matmul_acc(wh, 2 * h, h, hp, batch, s.z.data(), width);
          batch_matmul_bias(wh + 2 * h * h, h, h, hp, batch, nullptr,
                            s.q.data(), width);
        } else {
          const QuantLayer& ql = quant_[l];
          batch_matmul_bias_i8(ql.wx.data(), ql.wx_scale.data(), 3 * h, in, x,
                               batch, b, s.z.data(), width);
          batch_matmul_acc_i8(ql.wh.data(), ql.wh_scale.data(), 2 * h, h, hp,
                              batch, s.z.data(), width);
          batch_matmul_bias_i8(ql.wh.data() + 2 * h * h,
                               ql.wh_scale.data() + 2 * h, h, h, hp, batch,
                               nullptr, s.q.data(), width);
        }
        gru_pointwise(s.z.data(), s.q.data(), h, batch, width, hp,
                      st != nullptr ? st->z.data() : nullptr,
                      st != nullptr ? st->r.data() : nullptr,
                      st != nullptr ? st->n.data() : nullptr,
                      st != nullptr ? st->q.data() : nullptr,
                      st != nullptr ? st->h.data() : nullptr);
      }
      x = hp;
      in = h;
    }
  }
  if (obs::enabled()) ForecastObs::get().steps.add(t_len * layers);
  output_head(params_.data() + wy_off(), params_[by_off()],
              s.h[layers - 1].data(), h, batch, y);
}

// --- batched BPTT -----------------------------------------------------------

void BatchRnn::run_batch_backward(const float* win, std::size_t batch,
                                  const float* dy, const FitCaches& caches,
                                  std::vector<double>& grad) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t t_len = config_.lookback;
  const auto layers = static_cast<std::size_t>(config_.layers);
  const bool lstm = config_.kind == RnnKind::kLstm;

  // Output head.
  const float* htop = caches.at(layers - 1, t_len - 1).h.data();
  batch_outer_acc(htop, h, dy, 1, batch, grad.data() + wy_off());
  batch_rowsum_acc(dy, 1, batch, grad.data() + by_off());

  // dh injected into the layer being processed: [t] planes of [h × batch].
  // Top layer: dy through the head at the final step only.
  std::vector<std::vector<float>> inject(t_len);
  for (auto& plane : inject) plane.assign(h * batch, 0.0f);
  {
    std::vector<float>& top = inject[t_len - 1];
    const float* wy = params_.data() + wy_off();
    for (std::size_t u = 0; u < h; ++u) {
      for (std::size_t k = 0; k < batch; ++k) {
        top[u * batch + k] = wy[u] * dy[k];
      }
    }
  }

  std::vector<float> dh(h * batch), dh_prev(h * batch), dh_next(h * batch);
  std::vector<float> dc_next(h * batch);
  std::vector<float> dz(gates() * h * batch);
  std::vector<float> dq(lstm ? 0 : h * batch);

  for (std::size_t li = layers; li-- > 0;) {
    const int l = static_cast<int>(li);
    const std::size_t in = input_size(l);
    const float* wx = params_.data() + wx_off(l);
    const float* wh = params_.data() + wh_off(l);
    double* gwx = grad.data() + wx_off(l);
    double* gwh = grad.data() + wh_off(l);
    double* gb = grad.data() + b_off(l);

    std::vector<std::vector<float>> below;
    if (li > 0) {
      below.resize(t_len);
      for (auto& plane : below) plane.assign(in * batch, 0.0f);
    }
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    if (lstm) std::fill(dc_next.begin(), dc_next.end(), 0.0f);

    for (std::size_t t = t_len; t-- > 0;) {
      const FitCaches::Step& st = caches.at(li, t);
      const float* x = li == 0 ? win + t * batch : caches.at(li - 1, t).h.data();
      const float* h_prev = t > 0 ? caches.at(li, t - 1).h.data() : nullptr;
      const std::vector<float>& inj = inject[t];
      for (std::size_t e = 0; e < h * batch; ++e) dh[e] = dh_next[e] + inj[e];

      if (lstm) {
        const float* c_prev = t > 0 ? caches.at(li, t - 1).c.data() : nullptr;
        for (std::size_t u = 0; u < h; ++u) {
          for (std::size_t k = 0; k < batch; ++k) {
            const std::size_t at = u * batch + k;
            const float iv = st.i[at], fv = st.f[at], gv = st.g[at];
            const float ov = st.o[at], tc = st.tanh_c[at];
            const float d_o = dh[at] * tc;
            const float dc =
                dc_next[at] + dh[at] * ov * (1.0f - tc * tc);
            const float d_i = dc * gv;
            const float d_g = dc * iv;
            const float d_f = dc * (c_prev != nullptr ? c_prev[at] : 0.0f);
            dz[u * batch + k] = d_i * iv * (1.0f - iv);
            dz[(h + u) * batch + k] = d_f * fv * (1.0f - fv);
            dz[(2 * h + u) * batch + k] = d_g * (1.0f - gv * gv);
            dz[(3 * h + u) * batch + k] = d_o * ov * (1.0f - ov);
            dc_next[at] = dc * fv;
          }
        }
        batch_outer_acc(dz.data(), 4 * h, x, in, batch, gwx);
        batch_rowsum_acc(dz.data(), 4 * h, batch, gb);
        if (h_prev != nullptr) {
          batch_outer_acc(dz.data(), 4 * h, h_prev, h, batch, gwh);
        }
        std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
        batch_matmul_transpose_acc(wh, 4 * h, h, dz.data(), batch,
                                   dh_prev.data());
        if (li > 0) {
          batch_matmul_transpose_acc(wx, 4 * h, in, dz.data(), batch,
                                     below[t].data());
        }
      } else {
        for (std::size_t u = 0; u < h; ++u) {
          for (std::size_t k = 0; k < batch; ++k) {
            const std::size_t at = u * batch + k;
            const float hp = h_prev != nullptr ? h_prev[at] : 0.0f;
            const float zv = st.z[at], rv = st.r[at], nv = st.n[at];
            const float qv = st.q[at];
            const float d_z = dh[at] * (hp - nv);
            const float d_n = dh[at] * (1.0f - zv);
            const float dan = d_n * (1.0f - nv * nv);
            const float d_r = dan * qv;
            dz[u * batch + k] = d_z * zv * (1.0f - zv);
            dz[(h + u) * batch + k] = d_r * rv * (1.0f - rv);
            dz[(2 * h + u) * batch + k] = dan;
            dq[at] = dan * rv;
            dh_prev[at] = dh[at] * zv;
          }
        }
        batch_outer_acc(dz.data(), 3 * h, x, in, batch, gwx);
        batch_rowsum_acc(dz.data(), 3 * h, batch, gb);
        if (h_prev != nullptr) {
          batch_outer_acc(dz.data(), 2 * h, h_prev, h, batch, gwh);
          batch_outer_acc(dq.data(), h, h_prev, h, batch, gwh + 2 * h * h);
        }
        batch_matmul_transpose_acc(wh, 2 * h, h, dz.data(), batch,
                                   dh_prev.data());
        batch_matmul_transpose_acc(wh + 2 * h * h, h, h, dq.data(), batch,
                                   dh_prev.data());
        if (li > 0) {
          batch_matmul_transpose_acc(wx, 3 * h, in, dz.data(), batch,
                                     below[t].data());
        }
      }
      std::swap(dh_next, dh_prev);
    }
    if (li > 0) inject = std::move(below);
  }
}

// --- test hooks -------------------------------------------------------------

namespace {

/// Pack standardized windows into a `[lookback × n]` time-major plane.
std::vector<float> window_plane(const std::vector<Window>& windows,
                                std::size_t lookback) {
  const std::size_t n = windows.size();
  std::vector<float> plane(lookback * n);
  for (std::size_t j = 0; j < n; ++j) {
    if (windows[j].input.size() != lookback) {
      throw std::invalid_argument(
          "BatchRnn: window " + std::to_string(j) + " has " +
          std::to_string(windows[j].input.size()) + " inputs, lookback is " +
          std::to_string(lookback));
    }
    for (std::size_t t = 0; t < lookback; ++t) {
      plane[t * n + j] = static_cast<float>(windows[j].input[t]);
    }
  }
  return plane;
}

}  // namespace

double BatchRnn::pooled_loss(const std::vector<Window>& windows) const {
  if (windows.empty()) {
    throw std::invalid_argument("BatchRnn::pooled_loss: no windows");
  }
  const std::size_t n = windows.size();
  const std::vector<float> plane = window_plane(windows, config_.lookback);
  std::vector<float> y(n);
  Scratch s;
  run_batch_forward(plane.data(), n, Precision::kFp32, 0, y.data(), s,
                    nullptr);
  double loss = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double e = static_cast<double>(y[j]) - windows[j].target;
    loss += 0.5 * e * e;
  }
  return loss / static_cast<double>(n);
}

std::vector<double> BatchRnn::pooled_gradient(
    const std::vector<Window>& windows) const {
  if (windows.empty()) {
    throw std::invalid_argument("BatchRnn::pooled_gradient: no windows");
  }
  const std::size_t n = windows.size();
  const std::vector<float> plane = window_plane(windows, config_.lookback);
  std::vector<float> y(n);
  Scratch s;
  FitCaches caches;
  run_batch_forward(plane.data(), n, Precision::kFp32, 0, y.data(), s,
                    &caches);
  std::vector<float> dy(n);
  for (std::size_t j = 0; j < n; ++j) {
    dy[j] = static_cast<float>(
        (static_cast<double>(y[j]) - windows[j].target) /
        static_cast<double>(n));
  }
  std::vector<double> grad(param_count(), 0.0);
  run_batch_backward(plane.data(), n, dy.data(), caches, grad);
  return grad;
}

// --- fit --------------------------------------------------------------------

void BatchRnn::fit(const std::vector<Series>& cells) {
  if (cells.empty()) {
    throw std::invalid_argument("BatchRnn::fit: no cell series");
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].size() < config_.lookback + 2) {
      throw std::invalid_argument(
          "BatchRnn::fit: cell " + std::to_string(c) + " series has " +
          std::to_string(cells[c].size()) + " points, need at least " +
          std::to_string(config_.lookback + 2));
    }
  }
  obs::ScopedTimer timer(ForecastObs::get().fit_seconds);
  if (obs::enabled()) ForecastObs::get().fits.add();

  // Pool per-cell-standardized windows; the shared weights see every cell
  // as the same zero-mean unit-variance shape.
  std::vector<Window> pooled;
  for (const Series& series : cells) {
    Scaler scaler;
    scaler.fit(series);
    const Series z = scaler.transform(series);
    std::vector<Window> windows = sliding_windows(z, config_.lookback);
    pooled.insert(pooled.end(), std::make_move_iterator(windows.begin()),
                  std::make_move_iterator(windows.end()));
  }
  if (pooled.size() > config_.max_fit_windows) {
    // Deterministic even-stride subsample (cell/time order preserved).
    const std::size_t stride =
        (pooled.size() + config_.max_fit_windows - 1) / config_.max_fit_windows;
    std::vector<Window> kept;
    kept.reserve(pooled.size() / stride + 1);
    for (std::size_t j = 0; j < pooled.size(); j += stride) {
      kept.push_back(std::move(pooled[j]));
    }
    pooled = std::move(kept);
  }

  const std::size_t n = pooled.size();
  const std::vector<float> plane = window_plane(pooled, config_.lookback);
  std::vector<double> targets(n);
  for (std::size_t j = 0; j < n; ++j) targets[j] = pooled[j].target;

  init_params(config_.seed);
  loss_history_.clear();

  std::vector<double> m(param_count(), 0.0), v(param_count(), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  Scratch s;
  FitCaches caches;
  std::vector<float> y(n), dy(n);
  std::vector<double> grad(param_count());
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    run_batch_forward(plane.data(), n, Precision::kFp32, 0, y.data(), s,
                      &caches);
    double loss = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double e = static_cast<double>(y[j]) - targets[j];
      loss += 0.5 * e * e;
      dy[j] = static_cast<float>(e / static_cast<double>(n));
    }
    loss_history_.push_back(loss / static_cast<double>(n));

    std::fill(grad.begin(), grad.end(), 0.0);
    run_batch_backward(plane.data(), n, dy.data(), caches, grad);

    if (config_.grad_clip > 0.0) {
      double norm2 = 0.0;
      for (double gk : grad) norm2 += gk * gk;
      const double norm = std::sqrt(norm2);
      if (norm > config_.grad_clip) {
        const double scale = config_.grad_clip / norm;
        for (double& gk : grad) gk *= scale;
      }
    }

    beta1_t *= beta1;
    beta2_t *= beta2;
    for (std::size_t k = 0; k < params_.size(); ++k) {
      m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
      v[k] = beta2 * v[k] + (1.0 - beta2) * grad[k] * grad[k];
      const double mhat = m[k] / (1.0 - beta1_t);
      const double vhat = v[k] / (1.0 - beta2_t);
      params_[k] = static_cast<float>(
          static_cast<double>(params_[k]) -
          config_.learning_rate * mhat / (std::sqrt(vhat) + eps));
    }
  }
  fitted_ = true;
  refresh_quantization();
}

// --- forecast ---------------------------------------------------------------

std::vector<Series> BatchRnn::forecast(const std::vector<Series>& histories,
                                       std::size_t horizon,
                                       std::size_t width) const {
  return forecast_with(histories, horizon, config_.precision, width);
}

std::vector<Series> BatchRnn::forecast_with(
    const std::vector<Series>& histories, std::size_t horizon,
    Precision precision, std::size_t width) const {
  if (!fitted_) {
    throw std::logic_error("BatchRnn::forecast: not fitted");
  }
  if (histories.empty()) return {};
  const std::size_t n = histories.size();
  const std::size_t t_len = config_.lookback;
  for (std::size_t c = 0; c < n; ++c) {
    if (histories[c].size() < t_len) {
      throw std::invalid_argument(
          "BatchRnn::forecast: cell " + std::to_string(c) + " history has " +
          std::to_string(histories[c].size()) + " points, lookback is " +
          std::to_string(t_len));
    }
  }
  obs::ScopedTimer timer(ForecastObs::get().batch_refresh_seconds);
  if (obs::enabled()) {
    ForecastObs::get().batch_refreshes.add();
    ForecastObs::get().cells.add(n);
  }

  // Per-cell scalers on the provided histories; the batch plane holds the
  // standardized trailing window of every cell.
  std::vector<Scaler> scalers(n);
  std::vector<float> win(t_len * n);
  for (std::size_t c = 0; c < n; ++c) {
    scalers[c].fit(histories[c]);
    const std::size_t base = histories[c].size() - t_len;
    for (std::size_t t = 0; t < t_len; ++t) {
      win[t * n + c] = static_cast<float>(
          scalers[c].transform_one(histories[c][base + t]));
    }
  }

  std::vector<Series> out(n);
  for (auto& series : out) series.reserve(horizon);
  Scratch s;
  std::vector<float> y(n);
  for (std::size_t hstep = 0; hstep < horizon; ++hstep) {
    run_batch_forward(win.data(), n, precision, width, y.data(), s, nullptr);
    for (std::size_t c = 0; c < n; ++c) {
      out[c].push_back(scalers[c].inverse_one(static_cast<double>(y[c])));
    }
    if (hstep + 1 < horizon) {
      // Slide the window: drop the oldest row, append the (standardized)
      // prediction — the batched transpose of the scalar engines' loop.
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        std::copy(win.begin() + static_cast<std::ptrdiff_t>((t + 1) * n),
                  win.begin() + static_cast<std::ptrdiff_t>((t + 2) * n),
                  win.begin() + static_cast<std::ptrdiff_t>(t * n));
      }
      std::copy(y.begin(), y.end(),
                win.begin() + static_cast<std::ptrdiff_t>((t_len - 1) * n));
    }
  }
  return out;
}

Series BatchRnn::forecast_one(const Series& history,
                              std::size_t horizon) const {
  std::vector<Series> out = forecast_with({history}, horizon,
                                          config_.precision, /*width=*/1);
  return std::move(out.front());
}

double batch_rolling_rmse(const BatchRnn& model, const Series& train,
                          const Series& test, Precision precision,
                          std::size_t width) {
  if (test.empty()) {
    throw std::invalid_argument("batch_rolling_rmse: empty test series");
  }
  if (train.size() < model.config().lookback) {
    throw std::invalid_argument(
        "batch_rolling_rmse: train shorter than the model lookback");
  }
  // Teacher forcing: row i of the batch conditions on train + test[0..i).
  std::vector<Series> histories(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    Series& hs = histories[i];
    hs.reserve(train.size() + i);
    hs.insert(hs.end(), train.begin(), train.end());
    hs.insert(hs.end(), test.begin(),
              test.begin() + static_cast<std::ptrdiff_t>(i));
  }
  const std::vector<Series> preds =
      model.forecast_with(histories, 1, precision, width);
  double se = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double e = preds[i][0] - test[i];
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(test.size()));
}

}  // namespace esharing::ml::batch
