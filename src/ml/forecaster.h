#pragma once

/// \file forecaster.h
/// Common interface of the prediction engine. The paper's Table II compares
/// an LSTM against Moving Average and ARIMA on per-grid hourly request
/// counts with RMSE (Eq. 14) as the measure; evaluate_rmse() implements the
/// rolling one-step protocol used there (each test hour is predicted from
/// the true history up to that hour).

#include <memory>
#include <string>

#include "ml/series.h"

namespace esharing::ml {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Fit on a training series.
  /// \throws std::invalid_argument if the series is too short for the model.
  virtual void fit(const Series& train) = 0;

  /// Forecast `horizon` future values given the most recent history (which
  /// must include at least the model's required context).
  [[nodiscard]] virtual Series forecast(const Series& history,
                                        std::size_t horizon) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Rolling one-step-ahead RMSE over `test`, starting from `train` history.
/// \throws std::invalid_argument if test is empty.
[[nodiscard]] double evaluate_rmse(const Forecaster& model, const Series& train,
                                   const Series& test);

/// Rolling one-step-ahead predictions over `test` (same protocol).
[[nodiscard]] Series rolling_predictions(const Forecaster& model,
                                         const Series& train,
                                         const Series& test);

/// Rolling h-step-ahead RMSE: at each test position t the model sees the
/// true history up to t and its forecast for t + horizon - 1 is scored
/// against the actual value there. horizon = 1 reduces to evaluate_rmse.
/// The paper's Table II covers "the next 1 to 6 hours"; this is the
/// evaluation for the longer leads.
/// \throws std::invalid_argument if horizon == 0 or test shorter than it.
[[nodiscard]] double evaluate_rmse_at_horizon(const Forecaster& model,
                                              const Series& train,
                                              const Series& test,
                                              std::size_t horizon);

}  // namespace esharing::ml
