#pragma once

/// \file arima.h
/// ARIMA(p, d) baseline from Table II (the paper sweeps lag order p and
/// degree of differencing d; no MA term is used). The series is differenced
/// d times, an AR(p) model with intercept is fitted by least squares, and
/// forecasts are produced recursively then integrated back.

#include "ml/forecaster.h"

namespace esharing::ml {

class ArimaForecaster final : public Forecaster {
 public:
  /// \throws std::invalid_argument if p == 0 or d < 0.
  ArimaForecaster(int p, int d);

  void fit(const Series& train) override;
  [[nodiscard]] Series forecast(const Series& history,
                                std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] double intercept() const { return intercept_; }

 private:
  int p_;
  int d_;
  std::vector<double> coef_;  ///< AR coefficients, lag 1..p
  double intercept_{0.0};
  bool fitted_{false};
};

}  // namespace esharing::ml
