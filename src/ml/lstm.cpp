#include "ml/lstm.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/rnn_step.h"
#include "stats/rng.h"

namespace esharing::ml {

// Per-layer, per-step activation caches kept for BPTT.
struct LstmForecaster::Forward {
  // layer-major: act[l][t] holds vectors of size H (and x of input size).
  struct Step {
    std::vector<double> x;       // layer input at t
    std::vector<double> i, f, g, o;
    std::vector<double> c, tanh_c, h;
  };
  std::vector<std::vector<Step>> steps;  // [layer][time]
  double output{0.0};
};

LstmForecaster::LstmForecaster(LstmConfig config) : config_(config) {
  if (config_.layers <= 0) throw std::invalid_argument("LstmForecaster: layers <= 0");
  if (config_.hidden <= 0) throw std::invalid_argument("LstmForecaster: hidden <= 0");
  if (config_.lookback == 0) throw std::invalid_argument("LstmForecaster: lookback == 0");
  if (config_.epochs <= 0) throw std::invalid_argument("LstmForecaster: epochs <= 0");
  init_params(config_.seed);
}

std::size_t LstmForecaster::input_size(int layer) const {
  return layer == 0 ? 1 : static_cast<std::size_t>(config_.hidden);
}

std::size_t LstmForecaster::wx_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  std::size_t off = 0;
  for (int l = 0; l < layer; ++l) {
    off += 4 * h * input_size(l) + 4 * h * h + 4 * h;
  }
  return off;
}

std::size_t LstmForecaster::wh_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wx_off(layer) + 4 * h * input_size(layer);
}

std::size_t LstmForecaster::b_off(int layer) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return wh_off(layer) + 4 * h * h;
}

std::size_t LstmForecaster::wy_off() const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  return b_off(config_.layers - 1) + 4 * h;
}

std::size_t LstmForecaster::by_off() const {
  return wy_off() + static_cast<std::size_t>(config_.hidden);
}

std::size_t LstmForecaster::param_count() const { return by_off() + 1; }

void LstmForecaster::init_params(std::uint64_t seed) {
  params_.assign(param_count(), 0.0);
  stats::Rng rng(seed);
  const auto h = static_cast<std::size_t>(config_.hidden);
  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    const double sx = 1.0 / std::sqrt(static_cast<double>(in));
    const double sh = 1.0 / std::sqrt(static_cast<double>(h));
    for (std::size_t k = 0; k < 4 * h * in; ++k) {
      params_[wx_off(l) + k] = rng.uniform(-sx, sx);
    }
    for (std::size_t k = 0; k < 4 * h * h; ++k) {
      params_[wh_off(l) + k] = rng.uniform(-sh, sh);
    }
    // Bias layout per gate block [i | f | g | o]; forget-gate bias starts
    // at +1 (standard trick so early training does not wash out the cell).
    for (std::size_t k = 0; k < h; ++k) {
      params_[b_off(l) + h + k] = 1.0;
    }
  }
  const double sy = 1.0 / std::sqrt(static_cast<double>(h));
  for (std::size_t k = 0; k < h; ++k) {
    params_[wy_off() + k] = rng.uniform(-sy, sy);
  }
}

LstmForecaster::Forward LstmForecaster::run_forward(
    const std::vector<double>& input) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t t_len = input.size();
  Forward fw;
  fw.steps.resize(static_cast<std::size_t>(config_.layers));

  for (int l = 0; l < config_.layers; ++l) {
    const std::size_t in = input_size(l);
    auto& layer_steps = fw.steps[static_cast<std::size_t>(l)];
    layer_steps.resize(t_len);
    std::vector<double> h_prev(h, 0.0), c_prev(h, 0.0);
    const double* wx = &params_[wx_off(l)];
    const double* wh = &params_[wh_off(l)];
    const double* b = &params_[b_off(l)];
    for (std::size_t t = 0; t < t_len; ++t) {
      auto& st = layer_steps[t];
      st.x = (l == 0) ? std::vector<double>{input[t]}
                      : fw.steps[static_cast<std::size_t>(l - 1)][t].h;
      st.i.resize(h); st.f.resize(h); st.g.resize(h); st.o.resize(h);
      st.c.resize(h); st.tanh_c.resize(h); st.h.resize(h);
      // Shared step kernel (rnn_step.h) — the exact arithmetic the old
      // inline gate loops produced, bit-identical.
      lstm_step(wx, wh, b, in, h, st.x.data(), h_prev.data(), c_prev.data(),
                st.i.data(), st.f.data(), st.g.data(), st.o.data(),
                st.c.data(), st.tanh_c.data(), st.h.data());
      h_prev = st.h;
      c_prev = st.c;
    }
  }

  const auto& h_last = fw.steps.back().back().h;
  fw.output =
      rnn_output_head(&params_[wy_off()], params_[by_off()], h_last.data(), h);
  return fw;
}

double LstmForecaster::predict_window(const std::vector<double>& input) const {
  return run_forward(input).output;
}

double LstmForecaster::sample_loss(const Window& w) const {
  const double y = predict_window(w.input);
  const double e = y - w.target;
  return 0.5 * e * e;
}

std::vector<double> LstmForecaster::sample_gradient(const Window& w) const {
  const auto h = static_cast<std::size_t>(config_.hidden);
  const std::size_t t_len = w.input.size();
  const Forward fw = run_forward(w.input);

  std::vector<double> grad(param_count(), 0.0);
  const double dy = fw.output - w.target;

  // Output head.
  const auto& h_last = fw.steps.back().back().h;
  for (std::size_t u = 0; u < h; ++u) {
    grad[wy_off() + u] += dy * h_last[u];
  }
  grad[by_off()] += dy;

  // dh injected into the top layer at the final step only.
  std::vector<std::vector<double>> dh_inject(
      static_cast<std::size_t>(config_.layers) * t_len,
      std::vector<double>());
  auto inject = [&](int layer, std::size_t t) -> std::vector<double>& {
    auto& v = dh_inject[static_cast<std::size_t>(layer) * t_len + t];
    if (v.empty()) v.assign(h, 0.0);
    return v;
  };
  {
    auto& top = inject(config_.layers - 1, t_len - 1);
    for (std::size_t u = 0; u < h; ++u) top[u] = dy * params_[wy_off() + u];
  }

  // Backward through layers, top to bottom; each layer runs full BPTT and
  // deposits dx into the layer below's dh injections.
  for (int l = config_.layers - 1; l >= 0; --l) {
    const std::size_t in = input_size(l);
    const double* wx = &params_[wx_off(l)];
    const double* wh = &params_[wh_off(l)];
    double* gwx = &grad[wx_off(l)];
    double* gwh = &grad[wh_off(l)];
    double* gb = &grad[b_off(l)];
    const auto& steps = fw.steps[static_cast<std::size_t>(l)];

    std::vector<double> dh_next(h, 0.0), dc_next(h, 0.0);
    for (std::size_t ti = t_len; ti-- > 0;) {
      const auto& st = steps[ti];
      std::vector<double> dh = dh_next;
      const auto& injected = dh_inject[static_cast<std::size_t>(l) * t_len + ti];
      if (!injected.empty()) {
        for (std::size_t u = 0; u < h; ++u) dh[u] += injected[u];
      }
      const std::vector<double>* c_prev = ti > 0 ? &steps[ti - 1].c : nullptr;
      const std::vector<double>* h_prev = ti > 0 ? &steps[ti - 1].h : nullptr;

      std::vector<double> dz(4 * h, 0.0);
      std::vector<double> dc(h, 0.0);
      for (std::size_t u = 0; u < h; ++u) {
        const double d_o = dh[u] * st.tanh_c[u];
        dc[u] = dc_next[u] + dh[u] * st.o[u] * (1.0 - st.tanh_c[u] * st.tanh_c[u]);
        const double d_i = dc[u] * st.g[u];
        const double d_g = dc[u] * st.i[u];
        const double d_f = dc[u] * (c_prev ? (*c_prev)[u] : 0.0);
        dz[u] = d_i * st.i[u] * (1.0 - st.i[u]);
        dz[h + u] = d_f * st.f[u] * (1.0 - st.f[u]);
        dz[2 * h + u] = d_g * (1.0 - st.g[u] * st.g[u]);
        dz[3 * h + u] = d_o * st.o[u] * (1.0 - st.o[u]);
      }

      // Parameter gradients and upstream deltas.
      std::vector<double> dx(in, 0.0);
      std::vector<double> dh_prev(h, 0.0);
      for (std::size_t row = 0; row < 4 * h; ++row) {
        const double dzr = dz[row];
        if (dzr == 0.0) continue;
        double* gwx_row = gwx + row * in;
        const double* wx_row = wx + row * in;
        for (std::size_t k = 0; k < in; ++k) {
          gwx_row[k] += dzr * st.x[k];
          dx[k] += wx_row[k] * dzr;
        }
        double* gwh_row = gwh + row * h;
        const double* wh_row = wh + row * h;
        if (h_prev != nullptr) {
          for (std::size_t k = 0; k < h; ++k) {
            gwh_row[k] += dzr * (*h_prev)[k];
            dh_prev[k] += wh_row[k] * dzr;
          }
        } else {
          for (std::size_t k = 0; k < h; ++k) dh_prev[k] += wh_row[k] * dzr;
        }
        gb[row] += dzr;
      }

      // dc_{t-1} = dc_t * f_t
      for (std::size_t u = 0; u < h; ++u) dc_next[u] = dc[u] * st.f[u];
      dh_next = dh_prev;

      if (l > 0) {
        auto& below = inject(l - 1, ti);
        for (std::size_t k = 0; k < in; ++k) below[k] += dx[k];
      }
    }
  }
  return grad;
}

void LstmForecaster::fit(const Series& train) {
  if (train.size() < config_.lookback + 2) {
    throw std::invalid_argument("LstmForecaster::fit: series too short");
  }
  scaler_.fit(train);
  const Series z = scaler_.transform(train);
  std::vector<Window> windows = sliding_windows(z, config_.lookback);

  // Adam state.
  std::vector<double> m(param_count(), 0.0), v(param_count(), 0.0);
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  stats::Rng rng(config_.seed ^ 0x5bd1e995ULL);
  std::vector<std::size_t> order(windows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  loss_history_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t idx : order) {
      const Window& w = windows[idx];
      epoch_loss += sample_loss(w);
      std::vector<double> grad = sample_gradient(w);

      if (config_.grad_clip > 0.0) {
        double norm2 = 0.0;
        for (double g : grad) norm2 += g * g;
        const double norm = std::sqrt(norm2);
        if (norm > config_.grad_clip) {
          const double scale = config_.grad_clip / norm;
          for (double& g : grad) g *= scale;
        }
      }

      beta1_t *= beta1;
      beta2_t *= beta2;
      for (std::size_t k = 0; k < params_.size(); ++k) {
        m[k] = beta1 * m[k] + (1.0 - beta1) * grad[k];
        v[k] = beta2 * v[k] + (1.0 - beta2) * grad[k] * grad[k];
        const double mhat = m[k] / (1.0 - beta1_t);
        const double vhat = v[k] / (1.0 - beta2_t);
        params_[k] -= config_.learning_rate * mhat / (std::sqrt(vhat) + eps);
      }
    }
    loss_history_.push_back(epoch_loss / static_cast<double>(windows.size()));
  }
  fitted_ = true;
}

Series LstmForecaster::forecast(const Series& history,
                                std::size_t horizon) const {
  if (!fitted_) throw std::logic_error("LstmForecaster::forecast: not fitted");
  if (history.size() < config_.lookback) {
    throw std::invalid_argument("LstmForecaster::forecast: history shorter than lookback");
  }
  std::vector<double> window(history.end() - static_cast<std::ptrdiff_t>(config_.lookback),
                             history.end());
  for (double& x : window) x = scaler_.transform_one(x);
  Series out;
  out.reserve(horizon);
  for (std::size_t hstep = 0; hstep < horizon; ++hstep) {
    const double z = predict_window(window);
    out.push_back(scaler_.inverse_one(z));
    window.erase(window.begin());
    window.push_back(z);
  }
  return out;
}

std::string LstmForecaster::name() const {
  return "LSTM(layers=" + std::to_string(config_.layers) +
         ",back=" + std::to_string(config_.lookback) + ")";
}

}  // namespace esharing::ml
