#pragma once

/// \file linalg_batch.h
/// Batched fp32 "plane" kernels behind the multi-cell forecasting runtime
/// (batch.h). A plane is a row-major `[rows × batch]` array whose batch
/// (cell) dimension is contiguous, so broadcasting one weight against the
/// whole batch is a unit-stride loop the compiler turns into SIMD — the
/// hand-vectorization lives in fixed-lane blocked loops (kPlaneLanes), not
/// in pragmas, per the lint rules.
///
/// Determinism contract (the same one linalg.h documents for the scalar
/// matvecs): every output element accumulates its terms in ascending
/// weight-column order through an identical per-element expression in the
/// blocked body and the tail, so a cell's result is bit-identical whatever
/// its batch position, whatever the batch size (batch=1 equals any larger
/// batch elementwise), and whatever the exec-pool width (rows fan out with
/// disjoint writes; the kSerialFlops cutoff from linalg.h only picks the
/// lane count). linalg_batch.cpp is compiled with -ffp-contract=off so no
/// platform fuses the multiply-add chain differently between the SIMD body
/// and the scalar tail.
///
/// The int8 variants implement the quantized weight path: weights are
/// stored as int8 with one fp32 scale per row (callers expand per-gate
/// scales to rows) and dequantized on load — activations stay fp32, so the
/// kernels differ from the fp32 path only in the weight load.

#include <cstddef>
#include <cstdint>

namespace esharing::ml {

/// Lanes per unrolled block in the plane kernels: one AVX register or two
/// SSE registers of fp32. Public so tests can probe body/tail boundaries.
inline constexpr std::size_t kPlaneLanes = 8;

/// Deterministic vectorizable tanh for the batched gate loops: the classic
/// float-precision 13/6 rational minimax on the clamped interval
/// |x| <= 7.90531 (beyond it tanh is ±1 to within fp32), evaluated in a
/// fixed Horner order with plain fp32 arithmetic. No libm call — so the
/// batch-contiguous pointwise loops auto-vectorize instead of serializing
/// on scalar exp — and no table lookup or fused multiply-add, so results
/// are bit-identical at every batch size and lane width as long as the
/// calling TU is compiled with -ffp-contract=off (batch.cpp is; see the
/// file-level contract above). Error vs libm tanhf is a few ulp.
inline float plane_tanhf(float x) {
  constexpr float kClamp = 7.90531111f;
  x = x > kClamp ? kClamp : x;
  x = x < -kClamp ? -kClamp : x;
  const float x2 = x * x;
  float p = -2.76076847742355e-16f;
  p = x2 * p + 2.00018790482477e-13f;
  p = x2 * p + -8.60467152213735e-11f;
  p = x2 * p + 5.12229709037114e-08f;
  p = x2 * p + 1.48572235717979e-05f;
  p = x2 * p + 6.37261928875436e-04f;
  p = x2 * p + 4.89352455891786e-03f;
  p = x * p;
  float q = 1.19825839466702e-06f;
  q = x2 * q + 1.18534705686654e-04f;
  q = x2 * q + 2.26843463243900e-03f;
  q = x2 * q + 4.89352518554385e-03f;
  return p / q;
}

/// Sigmoid through the same rational core: 0.5 * tanh(x/2) + 0.5. Shares
/// plane_tanhf's determinism and vectorization properties.
inline float plane_sigmoidf(float x) {
  return 0.5f * plane_tanhf(0.5f * x) + 0.5f;
}

/// z[r][c] = bias[r] + sum_k w[r*cols + k] * x[k][c] over a `[cols × batch]`
/// input plane, terms added in ascending k. bias may be nullptr (rows start
/// from 0). `width` 0 = auto: serial under the kSerialFlops cutoff, pool
/// width above it; explicit widths are honored as-is.
void batch_matmul_bias(const float* w, std::size_t rows, std::size_t cols,
                       const float* x, std::size_t batch, const float* bias,
                       float* z, std::size_t width = 0);

/// z[r][c] += sum_k w[r*cols + k] * x[k][c], ascending k.
void batch_matmul_acc(const float* w, std::size_t rows, std::size_t cols,
                      const float* x, std::size_t batch, float* z,
                      std::size_t width = 0);

/// Quantized batch_matmul_bias: the weight load is
/// row_scale[r] * float(w[r*cols + k]), everything else identical.
void batch_matmul_bias_i8(const std::int8_t* w, const float* row_scale,
                          std::size_t rows, std::size_t cols, const float* x,
                          std::size_t batch, const float* bias, float* z,
                          std::size_t width = 0);

/// Quantized batch_matmul_acc.
void batch_matmul_acc_i8(const std::int8_t* w, const float* row_scale,
                         std::size_t rows, std::size_t cols, const float* x,
                         std::size_t batch, float* z, std::size_t width = 0);

/// Transposed product for BPTT upstream deltas:
/// out[k][c] += sum_r w[r*cols + k] * z[r][c], ascending r. Fans out over
/// k (disjoint output rows), so it is width-deterministic like the rest.
void batch_matmul_transpose_acc(const float* w, std::size_t rows,
                                std::size_t cols, const float* z,
                                std::size_t batch, float* out,
                                std::size_t width = 0);

/// Weight-gradient outer product, accumulated in double for full-batch
/// training stability: g[r*cols + k] += sum_c dz[r][c] * x[k][c], the
/// batch reduction folded in ascending c. Rows fan out with disjoint
/// writes; the per-element fold order is fixed, so gradients are
/// bit-identical at every width.
void batch_outer_acc(const float* dz, std::size_t rows, const float* x,
                     std::size_t cols, std::size_t batch, double* g,
                     std::size_t width = 0);

/// Bias gradient row sums: g[r] += sum_c dz[r][c], ascending c, double
/// accumulation, disjoint row writes.
void batch_rowsum_acc(const float* dz, std::size_t rows, std::size_t batch,
                      double* g, std::size_t width = 0);

}  // namespace esharing::ml
