#pragma once

/// \file rnn_step.h
/// Shared scalar recurrence step kernels for the from-scratch LSTM/GRU
/// forecasters. One call advances one layer by one timestep for a single
/// sequence; the per-cell forecasters (lstm.cpp, gru.cpp) call these from
/// their forward passes, and tests can drive them directly.
///
/// Both kernels are the exact arithmetic the forecasters used inline
/// before the extraction: gate pre-activations come from the row-parallel
/// matvec kernels (linalg.h) with their per-row ascending-k addition
/// order, and the pointwise updates run in ascending unit order — so the
/// refactor is bit-identical and the finite-difference gradient checks
/// stay green unchanged. The batched multi-cell runtime (batch.h) mirrors
/// the same recurrences over fp32 planes; these kernels are its
/// one-sequence double-precision reference semantics.

#include <cmath>
#include <cstddef>

namespace esharing::ml {

/// Logistic gate nonlinearity shared by the LSTM and GRU steps.
[[nodiscard]] inline double sigmoid(double x) {
  return 1.0 / (1.0 + std::exp(-x));
}

/// One LSTM step. Weight rows are the gate blocks [i | f | g | o] (4h rows
/// of wx over `in` inputs and of wh over `h` recurrent units; bias b has
/// 4h entries). All output arrays hold `h` values; `c_prev` may be read
/// equal to `c` only if they do not alias (callers pass distinct buffers).
///
///   z        = b + Wx·x + Wh·h_prev          (gate pre-activations)
///   i, f, o  = sigmoid(z_i), sigmoid(z_f), sigmoid(z_o)
///   g        = tanh(z_g)
///   c        = f * c_prev + i * g
///   h        = o * tanh(c)
///
/// `tanh_c` receives tanh(c) (cached by BPTT callers).
void lstm_step(const double* wx, const double* wh, const double* b,
               std::size_t in, std::size_t h, const double* x,
               const double* h_prev, const double* c_prev, double* i,
               double* f, double* g, double* o, double* c, double* tanh_c,
               double* h_out);

/// One GRU step. Weight rows are the gate blocks [z | r | n] (3h rows);
/// the candidate block's recurrent product q = Wh_n·h_prev is computed
/// before reset gating and returned for BPTT callers.
///
///   a        = b + Wx·x, with a_z/a_r also accumulating Wh_{z,r}·h_prev
///   z, r     = sigmoid(a_z), sigmoid(a_r)
///   q        = Wh_n·h_prev
///   n        = tanh(a_n + r * q)
///   h        = (1 - z) * n + z * h_prev
void gru_step(const double* wx, const double* wh, const double* b,
              std::size_t in, std::size_t h, const double* x,
              const double* h_prev, double* z, double* r, double* n,
              double* q, double* h_out);

/// Linear output head shared by both forecasters: by + Wy·h_last with the
/// terms added in ascending unit order.
[[nodiscard]] double rnn_output_head(const double* wy, double by,
                                     const double* h_last, std::size_t h);

}  // namespace esharing::ml
