#pragma once

/// \file seasonal_naive.h
/// Seasonal-naive baseline: the forecast for hour t is the value observed
/// one season (default 24 hours) earlier. The standard sanity floor for
/// periodic demand series — any learned model should beat it.

#include "ml/forecaster.h"

namespace esharing::ml {

class SeasonalNaiveForecaster final : public Forecaster {
 public:
  /// \throws std::invalid_argument if period == 0.
  explicit SeasonalNaiveForecaster(std::size_t period = 24);

  void fit(const Series& train) override;
  [[nodiscard]] Series forecast(const Series& history,
                                std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t period_;
};

}  // namespace esharing::ml
