#include "ml/rnn_step.h"

#include <vector>

#include "ml/linalg.h"

namespace esharing::ml {

void lstm_step(const double* wx, const double* wh, const double* b,
               std::size_t in, std::size_t h, const double* x,
               const double* h_prev, const double* c_prev, double* i,
               double* f, double* g, double* o, double* c, double* tanh_c,
               double* h_out) {
  // Gate pre-activations for all 4h rows [i | f | g | o] as two
  // row-parallel matvecs: z[row] = b[row] + Wx[row]·x + Wh[row]·h_prev
  // with the per-row ascending-k addition order of linalg.h.
  std::vector<double> z(4 * h);
  matvec_bias(wx, 4 * h, in, x, b, z.data());
  matvec_acc(wh, 4 * h, h, h_prev, z.data());
  for (std::size_t u = 0; u < h; ++u) {
    i[u] = sigmoid(z[u]);
    f[u] = sigmoid(z[h + u]);
    g[u] = std::tanh(z[2 * h + u]);
    o[u] = sigmoid(z[3 * h + u]);
    c[u] = f[u] * c_prev[u] + i[u] * g[u];
    tanh_c[u] = std::tanh(c[u]);
    h_out[u] = o[u] * tanh_c[u];
  }
}

void gru_step(const double* wx, const double* wh, const double* b,
              std::size_t in, std::size_t h, const double* x,
              const double* h_prev, double* z, double* r, double* n,
              double* q, double* h_out) {
  // Pre-activations for the 3h rows [z | r | n]: a[0..2h) gets
  // b + Wx·x + Wh·h_prev, a[2h..3h) only b + Wx·x, and q is the bare
  // Wh_n·h_prev product (pre reset gating, cached for BPTT).
  std::vector<double> a(3 * h);
  std::vector<double> qv(h);
  matvec_bias(wx, 3 * h, in, x, b, a.data());
  matvec_acc(wh, 2 * h, h, h_prev, a.data());
  matvec_bias(wh + 2 * h * h, h, h, h_prev, nullptr, qv.data());
  for (std::size_t u = 0; u < h; ++u) {
    z[u] = sigmoid(a[u]);
    r[u] = sigmoid(a[h + u]);
    q[u] = qv[u];
    n[u] = std::tanh(a[2 * h + u] + r[u] * qv[u]);
    h_out[u] = (1.0 - z[u]) * n[u] + z[u] * h_prev[u];
  }
}

double rnn_output_head(const double* wy, double by, const double* h_last,
                       std::size_t h) {
  double y = by;
  for (std::size_t u = 0; u < h; ++u) y += wy[u] * h_last[u];
  return y;
}

}  // namespace esharing::ml
