#include "ml/arima.h"

#include <stdexcept>

#include "ml/linalg.h"

namespace esharing::ml {

ArimaForecaster::ArimaForecaster(int p, int d) : p_(p), d_(d) {
  if (p <= 0) throw std::invalid_argument("ArimaForecaster: p must be positive");
  if (d < 0) throw std::invalid_argument("ArimaForecaster: d must be >= 0");
}

void ArimaForecaster::fit(const Series& train) {
  const Series z = difference(train, d_);
  const auto p = static_cast<std::size_t>(p_);
  if (z.size() < p + 2) {
    throw std::invalid_argument("ArimaForecaster::fit: series too short for p/d");
  }
  // Design: row t has [1, z[t-1], ..., z[t-p]] predicting z[t].
  const std::size_t rows = z.size() - p;
  Mat x(rows, p + 1);
  std::vector<double> y(rows);
  for (std::size_t t = 0; t < rows; ++t) {
    x.at(t, 0) = 1.0;
    for (std::size_t lag = 1; lag <= p; ++lag) {
      x.at(t, lag) = z[t + p - lag];
    }
    y[t] = z[t + p];
  }
  const auto beta = least_squares(x, y);
  intercept_ = beta[0];
  coef_.assign(beta.begin() + 1, beta.end());
  fitted_ = true;
}

Series ArimaForecaster::forecast(const Series& history,
                                 std::size_t horizon) const {
  if (!fitted_) throw std::logic_error("ArimaForecaster::forecast: not fitted");
  const auto p = static_cast<std::size_t>(p_);
  Series z = difference(history, d_);
  if (z.size() < p) {
    throw std::invalid_argument("ArimaForecaster::forecast: history too short");
  }
  // Recursive AR forecasts on the differenced scale.
  Series zf;
  zf.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double pred = intercept_;
    for (std::size_t lag = 1; lag <= p; ++lag) {
      pred += coef_[lag - 1] * z[z.size() - lag];
    }
    z.push_back(pred);
    zf.push_back(pred);
  }
  // Integrate back d times: each level needs the tail of the corresponding
  // partially-differenced history.
  Series out = zf;
  for (int level = d_; level >= 1; --level) {
    const Series base = difference(history, level - 1);
    out = undifference_once(out, base.back());
  }
  return out;
}

std::string ArimaForecaster::name() const {
  return "ARIMA(p=" + std::to_string(p_) + ",d=" + std::to_string(d_) + ")";
}

}  // namespace esharing::ml
