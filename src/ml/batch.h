#pragma once

/// \file batch.h
/// Batched multi-cell LSTM/GRU runtime — ROADMAP's "batched forecasting
/// runtime". The per-cell forecasters (lstm.h, gru.h) fit one model per
/// grid cell and step it with tiny per-cell matvecs; this engine instead
/// trains ONE shared-weight recurrence over the pooled standardized
/// windows of every cell and advances all cells together: hidden/cell
/// state lives in SoA planes `[hidden × n_cells]` (cell dimension
/// contiguous), and each timestep is one big GEMM per gate block across
/// the whole batch through the hand-vectorized plane kernels of
/// linalg_batch.h. Per-cell z-score scalers are retained, so the shared
/// weights learn the common diurnal shape while each cell keeps its own
/// level — the accuracy trade against per-cell models is pinned by the
/// Table II A/B (EXPERIMENTS.md).
///
/// Determinism: fitting and forecasting are bit-identical at every exec
/// pool width and for every batch size — a cell forecast does not depend
/// on which other cells share the batch (see linalg_batch.h for the
/// kernel-level contract; forecast_one is the batch=1 reference the
/// equivalence tests compare against). Inference runs in fp32; an
/// optional int8 weight path (per-gate scales, activations fp32,
/// quantized from the fp32 weights after fit) trades accuracy for
/// footprint and is A/B-gated in tests and bench_forecast_batch.

#include <cstdint>
#include <string>
#include <vector>

#include "ml/series.h"

namespace esharing::ml::batch {

/// Which recurrence the batch engine runs. Weight layout and arithmetic
/// mirror the per-cell forecasters (gate blocks [i|f|g|o] / [z|r|n]).
enum class RnnKind { kLstm, kGru };

/// Inference weight precision. Training always runs fp32; kInt8 stores
/// weights as int8 with one fp32 scale per gate block per matrix and
/// dequantizes on load (the output head stays fp32 either way).
enum class Precision { kFp32, kInt8 };

struct BatchRnnConfig {
  RnnKind kind{RnnKind::kLstm};
  int layers{1};
  int hidden{12};
  std::size_t lookback{12};  ///< the paper's "back" parameter, in hours
  /// Full-batch Adam steps (one gradient over all pooled windows per
  /// epoch — unlike the per-window SGD of the scalar forecasters, so the
  /// budget is not comparable 1:1).
  int epochs{60};
  double learning_rate{2e-2};
  double grad_clip{5.0};  ///< global-norm clip; <= 0 disables
  /// Cap on pooled training windows; above it fit() takes a deterministic
  /// even-stride subsample (bounds the BPTT cache memory).
  std::size_t max_fit_windows{8000};
  Precision precision{Precision::kFp32};
  std::uint64_t seed{1};

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

class BatchRnn {
 public:
  /// \throws std::invalid_argument on invalid config.
  explicit BatchRnn(BatchRnnConfig config);
  // Out of line: members hold vectors of private types declared below.
  ~BatchRnn();
  BatchRnn(BatchRnn&&) noexcept;
  BatchRnn& operator=(BatchRnn&&) noexcept;

  /// Fit the shared weights: per-cell z-score scalers, pooled sliding
  /// windows (deterministically subsampled past max_fit_windows), then
  /// `epochs` full-batch Adam steps of batched BPTT.
  /// \throws std::invalid_argument if `cells` is empty or any series has
  ///         fewer than lookback + 2 points.
  void fit(const std::vector<Series>& cells);

  /// Batched recursive forecast: out[cell] holds `horizon` hourly values.
  /// Each cell's scaler is refit on its provided history (histories need
  /// not be the fit series); every horizon step advances all cells in one
  /// fused pass at `config().precision`. `width` 0 = auto lanes.
  /// \throws std::logic_error before fit(), std::invalid_argument if any
  ///         history is shorter than lookback.
  [[nodiscard]] std::vector<Series> forecast(
      const std::vector<Series>& histories, std::size_t horizon,
      std::size_t width = 0) const;

  /// forecast() with an explicit weight precision — lets one fitted model
  /// A/B fp32 against its int8 quantization.
  [[nodiscard]] std::vector<Series> forecast_with(
      const std::vector<Series>& histories, std::size_t horizon,
      Precision precision, std::size_t width = 0) const;

  /// Single-cell reference path: a batch of one through the same kernels.
  /// The equivalence contract tests pin: bit-identical to the cell's row
  /// of any forecast() batch containing the same history.
  [[nodiscard]] Series forecast_one(const Series& history,
                                    std::size_t horizon) const;

  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] const BatchRnnConfig& config() const { return config_; }
  /// Mean full-batch training loss per epoch (filled by fit()).
  [[nodiscard]] const std::vector<double>& loss_history() const {
    return loss_history_;
  }
  [[nodiscard]] std::string name() const;
  [[nodiscard]] std::size_t param_count() const;

  // --- low-level access for tests (gradient checking) -------------------
  /// Mean half-squared-error over already-standardized windows under the
  /// current fp32 parameters.
  [[nodiscard]] double pooled_loss(const std::vector<Window>& windows) const;
  /// Analytic gradient of pooled_loss via batched BPTT (double-precision
  /// accumulation; finite-difference-checked in tests/test_ml_batch.cpp).
  [[nodiscard]] std::vector<double> pooled_gradient(
      const std::vector<Window>& windows) const;
  [[nodiscard]] std::vector<float>& parameters() { return params_; }
  [[nodiscard]] const std::vector<float>& parameters() const { return params_; }
  /// Rebuild the int8 tables from the current fp32 parameters (fit() does
  /// this automatically; call after poking parameters() directly).
  void refresh_quantization();

 private:
  struct Scratch;     // inference planes, reused across horizon steps
  struct FitCaches;   // per-(layer, timestep) activation planes for BPTT
  struct QuantLayer;  // int8 weights + per-row (per-gate) scales

  void init_params(std::uint64_t seed);
  [[nodiscard]] std::size_t gates() const;
  [[nodiscard]] std::size_t input_size(int layer) const;
  [[nodiscard]] std::size_t wx_off(int layer) const;
  [[nodiscard]] std::size_t wh_off(int layer) const;
  [[nodiscard]] std::size_t b_off(int layer) const;
  [[nodiscard]] std::size_t wy_off() const;
  [[nodiscard]] std::size_t by_off() const;

  /// One fused pass over a `[lookback × batch]` standardized window plane:
  /// recurrence from zero state through all layers and timesteps, output
  /// head into y[batch]. With `caches` non-null, gate activations are
  /// recorded for BPTT (fp32 path only).
  void run_batch_forward(const float* win, std::size_t batch,
                         Precision precision, std::size_t width, float* y,
                         Scratch& scratch, FitCaches* caches) const;
  /// Batched BPTT over the cached forward; accumulates into `grad`.
  void run_batch_backward(const float* win, std::size_t batch,
                          const float* dy, const FitCaches& caches,
                          std::vector<double>& grad) const;

  BatchRnnConfig config_;
  std::vector<float> params_;
  std::vector<QuantLayer> quant_;
  bool fitted_{false};
  std::vector<double> loss_history_;
};

/// Rolling one-step RMSE under the Table II protocol (teacher forcing:
/// prediction i conditions on train + test[0..i)). Every test hour becomes
/// one row of a single batched forward, so the whole evaluation is one
/// fused pass — this is the harness the int8-vs-fp32 accuracy gate runs on.
/// \throws std::invalid_argument if test is empty or train is shorter than
///         the model's lookback.
[[nodiscard]] double batch_rolling_rmse(const BatchRnn& model,
                                        const Series& train,
                                        const Series& test,
                                        Precision precision,
                                        std::size_t width = 0);

}  // namespace esharing::ml::batch
