#include "ml/series.h"

#include <cmath>
#include <stdexcept>

#include "stats/summary.h"

namespace esharing::ml {

Series difference(const Series& s, int d) {
  if (d < 0) throw std::invalid_argument("difference: d < 0");
  if (s.size() <= static_cast<std::size_t>(d)) {
    throw std::invalid_argument("difference: series shorter than d");
  }
  Series out = s;
  for (int round = 0; round < d; ++round) {
    Series next;
    next.reserve(out.size() - 1);
    for (std::size_t i = 1; i < out.size(); ++i) {
      next.push_back(out[i] - out[i - 1]);
    }
    out = std::move(next);
  }
  return out;
}

Series undifference_once(const Series& diffed, double last_value) {
  Series out;
  out.reserve(diffed.size());
  double acc = last_value;
  for (double dv : diffed) {
    acc += dv;
    out.push_back(acc);
  }
  return out;
}

std::pair<Series, Series> split(const Series& s, double train_fraction) {
  if (!(train_fraction > 0.0) || !(train_fraction < 1.0)) {
    throw std::invalid_argument("split: fraction outside (0, 1)");
  }
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(s.size()) * train_fraction);
  if (cut == 0 || cut >= s.size()) {
    throw std::invalid_argument("split: empty side");
  }
  return {Series(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(cut)),
          Series(s.begin() + static_cast<std::ptrdiff_t>(cut), s.end())};
}

void Scaler::fit(const Series& s) {
  mean_ = stats::mean(s);
  std_ = stats::stddev(s);
  if (std_ <= 0.0) std_ = 1.0;
}

double Scaler::transform_one(double x) const { return (x - mean_) / std_; }
double Scaler::inverse_one(double z) const { return z * std_ + mean_; }

Series Scaler::transform(const Series& s) const {
  Series out;
  out.reserve(s.size());
  for (double x : s) out.push_back(transform_one(x));
  return out;
}

Series Scaler::inverse(const Series& s) const {
  Series out;
  out.reserve(s.size());
  for (double z : s) out.push_back(inverse_one(z));
  return out;
}

std::vector<Window> sliding_windows(const Series& s, std::size_t lookback) {
  if (lookback == 0) throw std::invalid_argument("sliding_windows: lookback == 0");
  if (s.size() < lookback + 1) {
    throw std::invalid_argument("sliding_windows: series too short");
  }
  std::vector<Window> out;
  out.reserve(s.size() - lookback);
  for (std::size_t t = lookback; t < s.size(); ++t) {
    Window w;
    w.input.assign(s.begin() + static_cast<std::ptrdiff_t>(t - lookback),
                   s.begin() + static_cast<std::ptrdiff_t>(t));
    w.target = s[t];
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace esharing::ml
