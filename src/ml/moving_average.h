#pragma once

/// \file moving_average.h
/// Moving-average baseline from Table II: the forecast for the next hour is
/// the mean of the last `window` observed hours, extended recursively for
/// longer horizons.

#include "ml/forecaster.h"

namespace esharing::ml {

class MovingAverageForecaster final : public Forecaster {
 public:
  /// \param window the paper's "wz" parameter, >= 1.
  /// \throws std::invalid_argument if window == 0.
  explicit MovingAverageForecaster(std::size_t window);

  void fit(const Series& train) override;
  [[nodiscard]] Series forecast(const Series& history,
                                std::size_t horizon) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t window_;
};

}  // namespace esharing::ml
