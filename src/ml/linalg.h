#pragma once

/// \file linalg.h
/// Minimal dense linear algebra for the statistical forecasters: a small
/// row-major matrix and the least-squares solve used to fit AR
/// coefficients (normal equations with ridge-stabilized Gaussian
/// elimination).

#include <cstddef>
#include <vector>

namespace esharing::ml {

/// Below this many multiply-adds a parallel region costs more than it
/// saves (forecaster defaults are tiny). Shared by the scalar matvec
/// kernels here and the batched plane kernels (linalg_batch.h); the cutoff
/// only ever picks the lane count, never the arithmetic, so results are
/// identical either way.
inline constexpr std::size_t kSerialFlops = 1 << 14;

/// Rows per chunk for row-parallel kernels.
inline constexpr std::size_t kRowGrain = 8;

/// Dense row-major matrix of doubles.
class Mat {
 public:
  Mat() = default;
  /// Zero-initialized r x c matrix.
  Mat(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// y[r] = bias[r] + sum_k w[r*cols + k] * x[k], terms added in ascending k
/// into a local accumulator — the exact per-row sequence the LSTM/GRU gate
/// loops used inline, so extracting them here is bit-identical. bias may
/// be nullptr (rows start from 0.0). Rows fan out on the exec pool once
/// rows*cols crosses a fixed serial cutoff; per-row writes are disjoint,
/// so the result never depends on the width.
void matvec_bias(const double* w, std::size_t rows, std::size_t cols,
                 const double* x, const double* bias, double* y);

/// y[r] += sum_k w[r*cols + k] * x[k]: loads y[r], adds terms in ascending
/// k, stores back — the same addition sequence as accumulating into a live
/// register (a double store/load round-trip is exact).
void matvec_acc(const double* w, std::size_t rows, std::size_t cols,
                const double* x, double* y);

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// \throws std::invalid_argument on shape mismatch or singular A.
[[nodiscard]] std::vector<double> solve_linear(Mat a, std::vector<double> b);

/// Least-squares solve of X beta ~= y via the normal equations
/// (X'X + ridge*I) beta = X'y. A tiny ridge keeps near-collinear designs
/// solvable.
/// \throws std::invalid_argument on shape mismatch or empty design.
[[nodiscard]] std::vector<double> least_squares(const Mat& x,
                                                const std::vector<double>& y,
                                                double ridge = 1e-8);

}  // namespace esharing::ml
