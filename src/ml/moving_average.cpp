#include "ml/moving_average.h"

#include <numeric>
#include <stdexcept>

namespace esharing::ml {

MovingAverageForecaster::MovingAverageForecaster(std::size_t window)
    : window_(window) {
  if (window == 0) {
    throw std::invalid_argument("MovingAverageForecaster: window == 0");
  }
}

void MovingAverageForecaster::fit(const Series& train) {
  if (train.empty()) {
    throw std::invalid_argument("MovingAverageForecaster::fit: empty series");
  }
}

Series MovingAverageForecaster::forecast(const Series& history,
                                         std::size_t horizon) const {
  if (history.empty()) {
    throw std::invalid_argument("MovingAverageForecaster: empty history");
  }
  Series extended = history;
  Series out;
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t w = std::min(window_, extended.size());
    const double sum = std::accumulate(extended.end() - static_cast<std::ptrdiff_t>(w),
                                       extended.end(), 0.0);
    const double pred = sum / static_cast<double>(w);
    out.push_back(pred);
    extended.push_back(pred);
  }
  return out;
}

std::string MovingAverageForecaster::name() const {
  return "MA(wz=" + std::to_string(window_) + ")";
}

}  // namespace esharing::ml
