#pragma once

/// \file series.h
/// Time-series utilities shared by the prediction engine: differencing
/// (for ARIMA's "I"), train/test splitting, z-score scaling, and sliding
/// supervised windows (for the LSTM's lookback inputs).

#include <cstddef>
#include <utility>
#include <vector>

namespace esharing::ml {

using Series = std::vector<double>;

/// d-th order differencing; output shrinks by d.
/// \throws std::invalid_argument if d < 0 or the series is too short.
[[nodiscard]] Series difference(const Series& s, int d);

/// Invert one differencing step given the last original value.
[[nodiscard]] Series undifference_once(const Series& diffed, double last_value);

/// Split into (train, test) with `train_fraction` of samples in train.
/// \throws std::invalid_argument if the fraction is outside (0, 1) or
///         either side would be empty.
[[nodiscard]] std::pair<Series, Series> split(const Series& s,
                                              double train_fraction);

/// Z-score scaler fitted on a training series. A zero-variance series maps
/// to zeros and inverse-transforms back to the mean.
class Scaler {
 public:
  /// \throws std::invalid_argument on empty input.
  void fit(const Series& s);
  [[nodiscard]] double transform_one(double x) const;
  [[nodiscard]] double inverse_one(double z) const;
  [[nodiscard]] Series transform(const Series& s) const;
  [[nodiscard]] Series inverse(const Series& s) const;
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double stddev() const { return std_; }

 private:
  double mean_{0.0};
  double std_{1.0};
};

/// One supervised sample: `lookback` consecutive values and the next value.
struct Window {
  Series input;
  double target{0.0};
};

/// All sliding windows of the series.
/// \throws std::invalid_argument if lookback == 0 or the series has fewer
///         than lookback + 1 points.
[[nodiscard]] std::vector<Window> sliding_windows(const Series& s,
                                                  std::size_t lookback);

}  // namespace esharing::ml
