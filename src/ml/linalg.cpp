#include "ml/linalg.h"

#include <cmath>
#include <stdexcept>

namespace esharing::ml {

Mat::Mat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

double& Mat::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Mat::at");
  return data_[r * cols_ + c];
}

double Mat::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Mat::at");
  return data_[r * cols_ + c];
}

std::vector<double> solve_linear(Mat a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-14) {
      throw std::invalid_argument("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * x[c];
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

std::vector<double> least_squares(const Mat& x, const std::vector<double>& y,
                                  double ridge) {
  if (x.rows() == 0 || x.cols() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("least_squares: shape mismatch");
  }
  const std::size_t p = x.cols();
  Mat xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += x.at(r, i) * y[r];
      for (std::size_t j = i; j < p; ++j) {
        xtx.at(i, j) += x.at(r, i) * x.at(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    xtx.at(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) xtx.at(i, j) = xtx.at(j, i);
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace esharing::ml
