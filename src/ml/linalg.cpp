#include "ml/linalg.h"

#include <cmath>
#include <stdexcept>

#include "exec/thread_pool.h"

namespace esharing::ml {

void matvec_bias(const double* w, std::size_t rows, std::size_t cols,
                 const double* x, const double* bias, double* y) {
  const std::size_t width = rows * cols < kSerialFlops ? 1 : 0;
  exec::parallel_for(
      rows, kRowGrain,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t r = b; r < e; ++r) {
          double acc = bias != nullptr ? bias[r] : 0.0;
          const double* wr = w + r * cols;
          for (std::size_t k = 0; k < cols; ++k) acc += wr[k] * x[k];
          y[r] = acc;
        }
      },
      width);
}

void matvec_acc(const double* w, std::size_t rows, std::size_t cols,
                const double* x, double* y) {
  const std::size_t width = rows * cols < kSerialFlops ? 1 : 0;
  exec::parallel_for(
      rows, kRowGrain,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t r = b; r < e; ++r) {
          double acc = y[r];
          const double* wr = w + r * cols;
          for (std::size_t k = 0; k < cols; ++k) acc += wr[k] * x[k];
          y[r] = acc;
        }
      },
      width);
}

Mat::Mat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

double& Mat::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Mat::at");
  return data_[r * cols_ + c];
}

double Mat::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Mat::at");
  return data_[r * cols_ + c];
}

std::vector<double> solve_linear(Mat a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-14) {
      throw std::invalid_argument("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * x[c];
    x[ri] = sum / a.at(ri, ri);
  }
  return x;
}

std::vector<double> least_squares(const Mat& x, const std::vector<double>& y,
                                  double ridge) {
  if (x.rows() == 0 || x.cols() == 0 || x.rows() != y.size()) {
    throw std::invalid_argument("least_squares: shape mismatch");
  }
  const std::size_t p = x.cols();
  const std::size_t n = x.rows();
  Mat xtx(p, p);
  std::vector<double> xty(p, 0.0);
  // Blocked X'X / X'y: lanes own disjoint i-columns, and every element
  // still accumulates its products in ascending r — the identical
  // per-element addition sequence the old r-outer loop produced, just
  // reordered across independent accumulators (bit-identity-tested).
  const double* xd = x.data().data();
  double* xtxd = xtx.data().data();
  const std::size_t width = n * p * p < kSerialFlops ? 1 : 0;
  exec::parallel_for(
      p, /*grain=*/1,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i) {
          double acc_y = 0.0;
          for (std::size_t r = 0; r < n; ++r) acc_y += xd[r * p + i] * y[r];
          xty[i] = acc_y;
          for (std::size_t j = i; j < p; ++j) {
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
              acc += xd[r * p + i] * xd[r * p + j];
            }
            xtxd[i * p + j] = acc;
          }
        }
      },
      width);
  for (std::size_t i = 0; i < p; ++i) {
    xtx.at(i, i) += ridge;
    for (std::size_t j = 0; j < i; ++j) xtx.at(i, j) = xtx.at(j, i);
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace esharing::ml
