#pragma once

/// \file battery.h
/// Battery model for the E-bike fleet. The paper crawled live energy status
/// from the XQBike app and observed that "though a majority of the E-bikes
/// have sufficient residual energy, the distribution features a tail of
/// low-battery bikes" (Fig. 2(d)). This model reproduces that shape: state
/// of charge (SoC) starts from a high-mass/low-tail mixture and drains
/// linearly with ridden distance; bikes under the operator threshold (20%)
/// are the charging workload of tier two.

#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace esharing::energy {

struct EnergyConfig {
  double consumption_per_km{0.02};  ///< SoC drained per km (2% -> 50 km range)
  double low_threshold{0.2};        ///< operator refills below this (paper: 20%)
  double low_tail_fraction{0.25};   ///< share of fleet starting in the low tail
  double min_soc{0.02};             ///< bikes never report fully dead
};

/// Per-bike state of charge, indexed by 0-based bike index.
class BikeFleet {
 public:
  /// \throws std::invalid_argument for empty fleets or bad config.
  BikeFleet(std::size_t n_bikes, EnergyConfig config, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return soc_.size(); }
  [[nodiscard]] const EnergyConfig& config() const { return config_; }

  /// \throws std::out_of_range for bad indices.
  [[nodiscard]] double soc(std::size_t bike) const;
  void set_soc(std::size_t bike, double soc);

  /// Drain the battery for a ride of `distance_m` meters (clamped at
  /// min_soc). Returns the SoC after the ride.
  double ride(std::size_t bike, double distance_m);

  /// Whether a ride of `distance_m` is feasible without dropping below the
  /// minimum SoC — used by the incentive mechanism, which must "ensure the
  /// mileage between i and k does not deplete the residual battery".
  [[nodiscard]] bool can_ride(std::size_t bike, double distance_m) const;

  /// Recharge to full (operators "replace or charge the batteries").
  void recharge(std::size_t bike);

  [[nodiscard]] bool is_low(std::size_t bike) const;
  [[nodiscard]] std::vector<std::size_t> low_battery_bikes() const;
  /// Fraction of the fleet below the threshold.
  [[nodiscard]] double low_fraction() const;

 private:
  EnergyConfig config_;
  std::vector<double> soc_;
};

}  // namespace esharing::energy
