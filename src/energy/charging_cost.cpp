#include "energy/charging_cost.h"

#include <stdexcept>

namespace esharing::energy {

double station_cost(std::size_t position, std::size_t bikes,
                    const ChargingCostParams& p) {
  if (position == 0) {
    throw std::invalid_argument("station_cost: positions are 1-based");
  }
  return p.energy_cost_b * static_cast<double>(bikes) + p.service_cost_q +
         static_cast<double>(position - 1) * p.delay_cost_d;
}

double total_charging_cost(std::size_t n_stations, std::size_t n_bikes,
                           const ChargingCostParams& p) {
  const auto n = static_cast<double>(n_stations);
  const auto l = static_cast<double>(n_bikes);
  return n * p.service_cost_q + l * p.energy_cost_b +
         (n * n - n) / 2.0 * p.delay_cost_d;
}

double saving_ratio(std::size_t m, std::size_t n,
                    const ChargingCostParams& p) {
  if (n == 0) throw std::invalid_argument("saving_ratio: n == 0");
  if (m > n) throw std::invalid_argument("saving_ratio: m > n");
  const auto md = static_cast<double>(m);
  const auto nd = static_cast<double>(n);
  const double numer = md * p.service_cost_q + (md * md - md) / 2.0 * p.delay_cost_d;
  const double denom = nd * p.service_cost_q + (nd * nd - nd) / 2.0 * p.delay_cost_d;
  return 1.0 - numer / denom;
}

double max_station_saving(std::size_t position, const ChargingCostParams& p) {
  if (position == 0) {
    throw std::invalid_argument("max_station_saving: positions are 1-based");
  }
  return p.service_cost_q + static_cast<double>(position - 1) * p.delay_cost_d;
}

double uniform_offer(double alpha, std::size_t position, std::size_t l_i,
                     const ChargingCostParams& p) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("uniform_offer: alpha outside [0, 1]");
  }
  if (l_i == 0) throw std::invalid_argument("uniform_offer: empty station");
  return alpha * max_station_saving(position, p) / static_cast<double>(l_i);
}

}  // namespace esharing::energy
