#pragma once

/// \file charging_cost.h
/// Tier-two charging cost model (Section IV-A/B). Serving station i in the
/// t-th position of the charging sequence costs b*l_i + q + t*d where q is
/// the per-stop service cost, d the per-position delay cost and b the
/// per-bike energy cost. Totals and the aggregation saving ratio follow
/// Eq. 10-12:
///
///   C            = n q + l b + (n^2 - n)/2 d                     (Eq. 10)
///   (C - C*)/C   = 1 - (m q + (m^2-m) d/2) / (n q + (n^2-n) d/2) (Eq. 11)
///   Delta_i      = q + t d                                       (Eq. 12)
///
/// Note on indexing: the paper writes the per-station cost as
/// "b l_i + q + t d for the t-th position" but its total (Eq. 10) sums the
/// delay to (n^2-n)/2 d, which corresponds to zero delay for the first
/// stop. We follow the total: a station in 1-based position t pays
/// (t-1) * d of delay, so summing station_cost over t = 1..n reproduces
/// Eq. 10 exactly, and Eq. 12's "t d" is read as that same (t-1) * d delay
/// plus q.

#include <cstddef>

namespace esharing::energy {

/// Monetary parameters ($); defaults follow the paper's evaluation (unit
/// delay cost $5, unit energy cost $2).
struct ChargingCostParams {
  double service_cost_q{5.0};  ///< per-stop service cost (parking etc.)
  double delay_cost_d{5.0};    ///< per-sequence-position delay cost
  double energy_cost_b{2.0};   ///< per-bike charging cost
};

/// Cost of serving station `position` (1-based t) holding `bikes` bikes.
[[nodiscard]] double station_cost(std::size_t position, std::size_t bikes,
                                  const ChargingCostParams& p);

/// Total cost of serving `n_stations` with `n_bikes` total (Eq. 10).
[[nodiscard]] double total_charging_cost(std::size_t n_stations,
                                         std::size_t n_bikes,
                                         const ChargingCostParams& p);

/// Aggregation saving ratio (Eq. 11) when n stations collapse to m
/// (the bike count, and so the energy term, cancels out).
/// \throws std::invalid_argument if n == 0 or m > n.
[[nodiscard]] double saving_ratio(std::size_t m, std::size_t n,
                                  const ChargingCostParams& p);

/// Upper bound on the saving from emptying station at sequence position t
/// (1-based): Delta_i = q + t*d (Eq. 12).
[[nodiscard]] double max_station_saving(std::size_t position,
                                        const ChargingCostParams& p);

/// The paper's uniform incentive offer v = alpha * (q + t*d) / |L_i|.
/// \throws std::invalid_argument if alpha outside [0, 1] or l_i == 0.
[[nodiscard]] double uniform_offer(double alpha, std::size_t position,
                                   std::size_t l_i,
                                   const ChargingCostParams& p);

}  // namespace esharing::energy
