#include "energy/battery.h"

#include <algorithm>
#include <stdexcept>

namespace esharing::energy {

BikeFleet::BikeFleet(std::size_t n_bikes, EnergyConfig config,
                     std::uint64_t seed)
    : config_(config) {
  if (n_bikes == 0) throw std::invalid_argument("BikeFleet: empty fleet");
  if (!(config.consumption_per_km > 0.0)) {
    throw std::invalid_argument("BikeFleet: consumption must be positive");
  }
  if (!(config.low_threshold > 0.0) || !(config.low_threshold < 1.0)) {
    throw std::invalid_argument("BikeFleet: threshold outside (0, 1)");
  }
  if (config.low_tail_fraction < 0.0 || config.low_tail_fraction > 1.0) {
    throw std::invalid_argument("BikeFleet: tail fraction outside [0, 1]");
  }
  stats::Rng rng(seed);
  soc_.reserve(n_bikes);
  for (std::size_t b = 0; b < n_bikes; ++b) {
    // Majority healthy, a tail near/below the threshold (Fig. 2(d) shape).
    const double s = rng.bernoulli(config.low_tail_fraction)
                         ? rng.uniform(config.min_soc, config.low_threshold + 0.1)
                         : rng.uniform(0.45, 1.0);
    soc_.push_back(std::clamp(s, config.min_soc, 1.0));
  }
}

double BikeFleet::soc(std::size_t bike) const {
  if (bike >= soc_.size()) throw std::out_of_range("BikeFleet::soc");
  return soc_[bike];
}

void BikeFleet::set_soc(std::size_t bike, double soc) {
  if (bike >= soc_.size()) throw std::out_of_range("BikeFleet::set_soc");
  soc_[bike] = std::clamp(soc, config_.min_soc, 1.0);
}

double BikeFleet::ride(std::size_t bike, double distance_m) {
  if (bike >= soc_.size()) throw std::out_of_range("BikeFleet::ride");
  if (distance_m < 0.0) throw std::invalid_argument("BikeFleet::ride: negative distance");
  soc_[bike] = std::max(config_.min_soc,
                        soc_[bike] - config_.consumption_per_km * distance_m / 1000.0);
  return soc_[bike];
}

bool BikeFleet::can_ride(std::size_t bike, double distance_m) const {
  if (bike >= soc_.size()) throw std::out_of_range("BikeFleet::can_ride");
  return soc_[bike] - config_.consumption_per_km * distance_m / 1000.0 >
         config_.min_soc;
}

void BikeFleet::recharge(std::size_t bike) {
  if (bike >= soc_.size()) throw std::out_of_range("BikeFleet::recharge");
  soc_[bike] = 1.0;
}

bool BikeFleet::is_low(std::size_t bike) const {
  return soc(bike) < config_.low_threshold;
}

std::vector<std::size_t> BikeFleet::low_battery_bikes() const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < soc_.size(); ++b) {
    if (soc_[b] < config_.low_threshold) out.push_back(b);
  }
  return out;
}

double BikeFleet::low_fraction() const {
  return static_cast<double>(low_battery_bikes().size()) /
         static_cast<double>(soc_.size());
}

}  // namespace esharing::energy
