#include "energy/charge_curve.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esharing::energy {

namespace {

void validate_curve(const ChargeCurve& curve) {
  if (!(curve.cc_rate_per_hour > 0.0) || !(curve.cv_tau_hours > 0.0)) {
    throw std::invalid_argument("ChargeCurve: non-positive rate or tau");
  }
  if (!(curve.knee_soc > 0.0) || !(curve.knee_soc < 1.0)) {
    throw std::invalid_argument("ChargeCurve: knee outside (0, 1)");
  }
  if (!(curve.max_soc > curve.knee_soc) || !(curve.max_soc < 1.0)) {
    throw std::invalid_argument("ChargeCurve: max_soc outside (knee, 1)");
  }
}

void validate_soc(double soc) {
  if (soc < 0.0 || soc > 1.0) {
    throw std::invalid_argument("ChargeCurve: SoC outside [0, 1]");
  }
}

}  // namespace

double charge_time_hours(const ChargeCurve& curve, double from_soc,
                         double to_soc) {
  validate_curve(curve);
  validate_soc(from_soc);
  validate_soc(to_soc);
  to_soc = std::min(to_soc, curve.max_soc);
  if (to_soc < from_soc) {
    throw std::invalid_argument("charge_time_hours: to < from");
  }
  double hours = 0.0;
  double soc = from_soc;
  // Constant-current phase.
  if (soc < curve.knee_soc) {
    const double cc_end = std::min(to_soc, curve.knee_soc);
    hours += (cc_end - soc) / curve.cc_rate_per_hour;
    soc = cc_end;
  }
  // Constant-voltage phase: 1 - soc decays exponentially toward 0.
  if (to_soc > soc) {
    hours += curve.cv_tau_hours * std::log((1.0 - soc) / (1.0 - to_soc));
  }
  return hours;
}

double soc_after_charging(const ChargeCurve& curve, double from_soc,
                          double hours) {
  validate_curve(curve);
  validate_soc(from_soc);
  if (hours < 0.0) {
    throw std::invalid_argument("soc_after_charging: negative hours");
  }
  double soc = from_soc;
  if (soc < curve.knee_soc) {
    const double cc_hours = (curve.knee_soc - soc) / curve.cc_rate_per_hour;
    if (hours <= cc_hours) {
      return soc + hours * curve.cc_rate_per_hour;
    }
    soc = curve.knee_soc;
    hours -= cc_hours;
  }
  const double end = 1.0 - (1.0 - soc) * std::exp(-hours / curve.cv_tau_hours);
  return std::min(end, curve.max_soc);
}

double pile_charge_hours(const ChargeCurve& curve,
                         const std::vector<double>& socs, double to_soc,
                         std::size_t parallel_slots) {
  if (parallel_slots == 0) {
    throw std::invalid_argument("pile_charge_hours: zero charger slots");
  }
  double total = 0.0;
  double slowest = 0.0;
  for (double soc : socs) {
    const double t = charge_time_hours(curve, soc, to_soc);
    total += t;
    slowest = std::max(slowest, t);
  }
  return std::max(slowest, total / static_cast<double>(parallel_slots));
}

}  // namespace esharing::energy
