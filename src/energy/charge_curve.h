#pragma once

/// \file charge_curve.h
/// Charging-time model. Swap-based operators (XQBike "replace") pay a
/// constant per-bike time, but charge-based operators (Qee "charge") wait
/// on battery physics: lithium cells charge linearly under constant
/// current up to a knee (~80% SoC) and exponentially slower in the
/// constant-voltage phase above it. This model turns a pile's SoC deficits
/// into shift time, refining the flat charge_time_s of OperatorConfig.

#include <vector>

namespace esharing::energy {

struct ChargeCurve {
  double cc_rate_per_hour{0.8};  ///< SoC gained per hour below the knee
  double knee_soc{0.8};          ///< CC/CV transition point
  double cv_tau_hours{0.75};     ///< CV-phase exponential time constant
  double max_soc{0.995};         ///< asymptote cutoff (never exactly 1.0)
};

/// Hours to charge one battery from `from_soc` to `to_soc` (targets above
/// max_soc are clamped).
/// \throws std::invalid_argument for SoC outside [0, 1], to < from, or a
///         non-positive rate/tau.
[[nodiscard]] double charge_time_hours(const ChargeCurve& curve,
                                       double from_soc, double to_soc);

/// SoC after charging from `from_soc` for `hours`.
/// \throws std::invalid_argument for invalid SoC or negative hours.
[[nodiscard]] double soc_after_charging(const ChargeCurve& curve,
                                        double from_soc, double hours);

/// Total charger-hours to bring every SoC in `socs` to `to_soc` when the
/// stop has `parallel_slots` chargers: ceil-free makespan approximation
/// sum/slots bounded below by the slowest single battery.
/// \throws std::invalid_argument if parallel_slots == 0.
[[nodiscard]] double pile_charge_hours(const ChargeCurve& curve,
                                       const std::vector<double>& socs,
                                       double to_soc,
                                       std::size_t parallel_slots);

}  // namespace esharing::energy
