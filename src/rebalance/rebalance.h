#pragma once

/// \file rebalance.h
/// Static fleet rebalancing — the substrate the paper assumes away in its
/// system model ("We assume that the reserves of E-bikes are balanced,
/// which satisfy the demand and do not overwhelm the capacity by executing
/// the procedures in [9]-[11]"). This module implements that procedure:
/// given current station inventories and per-station targets (from the
/// demand forecast), a truck of limited capacity collects surplus bikes
/// and drops them at deficit stations along a single route (the static
/// rebalancing problem of Chemla et al. [9], solved here with a greedy
/// nearest-feasible construction plus 2-opt-style route improvement,
/// matching the scale the tier-one pipeline needs).

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace esharing::rebalance {

/// One station's rebalancing state.
struct StationInventory {
  geo::Point location;
  int bikes{0};    ///< bikes currently parked
  int target{0};   ///< desired bikes after rebalancing
  /// Positive = surplus to collect, negative = deficit to fill.
  [[nodiscard]] int imbalance() const { return bikes - target; }
};

/// Compute per-station targets proportional to expected demand, conserving
/// the current fleet total. Stations with zero demand get zero target;
/// rounding drift is assigned to the highest-demand stations.
/// \throws std::invalid_argument on size mismatch or negative demand.
[[nodiscard]] std::vector<int> proportional_targets(
    const std::vector<StationInventory>& stations,
    const std::vector<double>& expected_demand);

/// One stop of the rebalancing route.
struct RebalanceStop {
  std::size_t station{0};
  int delta{0};  ///< bikes loaded (+) onto or unloaded (-) from the truck
};

/// A rebalancing plan: route, per-stop loads and summary statistics.
struct RebalancePlan {
  std::vector<RebalanceStop> stops;
  double route_length_m{0.0};
  int bikes_moved{0};          ///< total bikes loaded over the route
  int residual_imbalance{0};   ///< sum |imbalance| remaining after the plan

  [[nodiscard]] bool balanced() const { return residual_imbalance == 0; }
};

struct TruckConfig {
  int capacity{20};
  geo::Point depot{0.0, 0.0};
};

/// Plan a single-truck rebalancing route. The truck starts empty at the
/// depot, may only unload bikes it has collected (no external supply), and
/// visits each station at most twice (once to collect, once to fill).
/// A station overfull beyond what deficits absorb keeps its surplus.
/// \throws std::invalid_argument if capacity <= 0 or any inventory or
///         target is negative.
[[nodiscard]] RebalancePlan plan_rebalancing(
    const std::vector<StationInventory>& stations, const TruckConfig& truck);

/// Apply a plan to inventories (for simulation): returns the post-plan
/// bike counts.
/// \throws std::invalid_argument if the plan references invalid stations,
///         overdraws the truck or a station.
[[nodiscard]] std::vector<int> apply_plan(
    const std::vector<StationInventory>& stations, const RebalancePlan& plan,
    const TruckConfig& truck);

/// Total absolute imbalance of a station set (the quantity rebalancing
/// minimizes).
[[nodiscard]] int total_imbalance(const std::vector<StationInventory>& stations);

}  // namespace esharing::rebalance
