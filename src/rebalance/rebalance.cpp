#include "rebalance/rebalance.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace esharing::rebalance {

using geo::Point;

std::vector<int> proportional_targets(
    const std::vector<StationInventory>& stations,
    const std::vector<double>& expected_demand) {
  if (stations.size() != expected_demand.size()) {
    throw std::invalid_argument("proportional_targets: size mismatch");
  }
  double demand_total = 0.0;
  for (double d : expected_demand) {
    if (d < 0.0) {
      throw std::invalid_argument("proportional_targets: negative demand");
    }
    demand_total += d;
  }
  int fleet = 0;
  for (const auto& s : stations) fleet += s.bikes;

  std::vector<int> targets(stations.size(), 0);
  if (demand_total <= 0.0 || fleet == 0) return targets;

  // Floor allocation, then hand out the rounding remainder to the stations
  // with the largest fractional parts (ties: higher demand first).
  std::vector<double> exact(stations.size());
  int assigned = 0;
  for (std::size_t i = 0; i < stations.size(); ++i) {
    exact[i] = static_cast<double>(fleet) * expected_demand[i] / demand_total;
    targets[i] = static_cast<int>(exact[i]);
    assigned += targets[i];
  }
  std::vector<std::size_t> order(stations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double fa = exact[a] - static_cast<double>(targets[a]);
    const double fb = exact[b] - static_cast<double>(targets[b]);
    if (fa != fb) return fa > fb;
    return expected_demand[a] > expected_demand[b];
  });
  for (std::size_t k = 0; assigned < fleet; ++k) {
    ++targets[order[k % order.size()]];
    ++assigned;
  }
  return targets;
}

int total_imbalance(const std::vector<StationInventory>& stations) {
  int sum = 0;
  for (const auto& s : stations) sum += std::abs(s.imbalance());
  return sum;
}

RebalancePlan plan_rebalancing(const std::vector<StationInventory>& stations,
                               const TruckConfig& truck) {
  if (truck.capacity <= 0) {
    throw std::invalid_argument("plan_rebalancing: capacity must be positive");
  }
  for (const auto& s : stations) {
    if (s.bikes < 0 || s.target < 0) {
      throw std::invalid_argument("plan_rebalancing: negative inventory/target");
    }
  }

  std::vector<int> surplus(stations.size(), 0);
  std::vector<int> deficit(stations.size(), 0);
  int total_deficit = 0;
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const int imb = stations[i].imbalance();
    if (imb > 0) surplus[i] = imb;
    if (imb < 0) deficit[i] = -imb;
    total_deficit += deficit[i];
  }

  RebalancePlan plan;
  Point at = truck.depot;
  int load = 0;
  while (true) {
    // Useful actions: load from a surplus station (if the truck has space
    // and outstanding deficits exceed the current load) or unload at a
    // deficit station (if the truck carries bikes).
    const bool can_load = load < truck.capacity && total_deficit > load;
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_i = stations.size();
    bool best_is_load = false;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      const bool loadable = can_load && surplus[i] > 0;
      const bool unloadable = load > 0 && deficit[i] > 0;
      if (!loadable && !unloadable) continue;
      const double d = geo::distance(at, stations[i].location);
      if (d < best_d) {
        best_d = d;
        best_i = i;
        best_is_load = loadable && (!unloadable || load < truck.capacity / 2);
      }
    }
    if (best_i == stations.size()) break;

    plan.route_length_m += best_d;
    at = stations[best_i].location;
    if (best_is_load) {
      const int take = std::min({truck.capacity - load, surplus[best_i],
                                 total_deficit - load});
      load += take;
      surplus[best_i] -= take;
      plan.bikes_moved += take;
      plan.stops.push_back({best_i, take});
    } else {
      const int drop = std::min(load, deficit[best_i]);
      load -= drop;
      deficit[best_i] -= drop;
      total_deficit -= drop;
      plan.stops.push_back({best_i, -drop});
    }
  }

  for (std::size_t i = 0; i < stations.size(); ++i) {
    plan.residual_imbalance += surplus[i] + deficit[i];
  }
  return plan;
}

std::vector<int> apply_plan(const std::vector<StationInventory>& stations,
                            const RebalancePlan& plan,
                            const TruckConfig& truck) {
  std::vector<int> bikes(stations.size());
  for (std::size_t i = 0; i < stations.size(); ++i) bikes[i] = stations[i].bikes;
  int load = 0;
  for (const auto& stop : plan.stops) {
    if (stop.station >= stations.size()) {
      throw std::invalid_argument("apply_plan: invalid station index");
    }
    if (stop.delta > 0) {
      if (bikes[stop.station] < stop.delta) {
        throw std::invalid_argument("apply_plan: station overdrawn");
      }
      if (load + stop.delta > truck.capacity) {
        throw std::invalid_argument("apply_plan: truck over capacity");
      }
      bikes[stop.station] -= stop.delta;
      load += stop.delta;
    } else {
      if (load < -stop.delta) {
        throw std::invalid_argument("apply_plan: truck overdrawn");
      }
      bikes[stop.station] += -stop.delta;
      load += stop.delta;
    }
  }
  return bikes;
}

}  // namespace esharing::rebalance
