#pragma once

/// \file daemon.h
/// The long-lived serving process of the online tier: a ServeDaemon owns a
/// serving-mode stream::Pipeline and exposes it over the length-prefixed
/// socket protocol (protocol.h). This is ROADMAP item "serving daemon" —
/// the resident process that turns the batch reproduction into a system
/// live trip streams can hit.
///
/// Thread model (all locks are es::Mutex with ES_GUARDED_BY; the only raw
/// threads outside src/exec/, waived because blocking socket I/O must not
/// occupy exec-pool compute lanes):
///
///   * accept thread — poll+accept on the listening socket; one reader
///     thread per connection.
///   * reader threads — decode frames; publishes go to
///     EventBus::publish_batch under the checkpoint quiescence gate and are
///     acked immediately; decide requests register a pending token, ride
///     the same bus, and are answered later by the pump thread.
///   * pump thread — the single pipeline consumer: drains/merges/consumes
///     in seq order via Pipeline::pump_decisions, routes decide responses
///     back by token, feeds the flight recorder, and takes the periodic
///     crash-atomic checkpoints.
///
/// Lifecycle state machine:
///
///   kStarting --start()--> kServing --request_stop()--> kDraining
///     kDraining --(readers exited, queues pumped dry, final checkpoint)-->
///   kStopped
///
/// Crash-recovery guarantee: checkpoints are taken at queues-drained points
/// through the existing ESTRCCP1 v2 format, saved crash-atomically
/// (tmp+rename), so restore + replay of the post-checkpoint suffix is
/// bit-identical to an uninterrupted run — the PR 7 contract, now held by a
/// process that can actually crash.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

// Blocking socket reads/writes park OS threads; running them on the exec
// pool would starve compute lanes, so the daemon owns its I/O threads.
#include <chrono>
#include <thread>  // lint-ok: raw-thread daemon I/O threads block on sockets, not compute; see file comment

#include "core/esharing.h"
#include "core/sync.h"
#include "core/thread_annotations.h"
#include "serve/flight_recorder.h"
#include "serve/protocol.h"
#include "stream/pipeline.h"

namespace esharing::serve {

struct ServeConfig {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back with ServeDaemon::port().
  std::uint16_t port{0};
  int listen_backlog{64};
  /// Checkpoint file; empty disables checkpointing entirely (the daemon
  /// then refuses kCheckpointNow and skips the shutdown checkpoint). When
  /// the file exists at start(), the daemon restores from it.
  std::string checkpoint_path;
  /// JSONL decision log; empty disables the flight recorder.
  std::string flight_recorder_path;
  stream::PipelineConfig pipeline;
  ServeTunables tunables;

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

class ServeDaemon {
 public:
  /// Serving-mode construction, mirroring stream::Pipeline: `system` must
  /// be online, `historical_sample` is the KS reference.
  /// \throws std::invalid_argument on invalid config,
  ///         std::logic_error if the system is not online.
  ServeDaemon(core::ESharing& system,
              std::vector<geo::Point> historical_sample, ServeConfig config);

  /// Stops and joins if still running.
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Bind, restore the checkpoint if one exists, and spawn the accept and
  /// pump threads. \throws std::runtime_error on socket errors or a
  /// corrupt checkpoint, std::logic_error if already started.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begin graceful shutdown: stop accepting, half-close readers, let the
  /// pump drain everything published, take the final checkpoint. Safe to
  /// call from any thread (including a reader handling kShutdown) and more
  /// than once. Does not block — pair with wait().
  void request_stop();

  /// Join all daemon threads. Returns once state() == kStopped.
  void wait();

  [[nodiscard]] DaemonState state() const {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] ServeStatus status() const;
  /// Info of the checkpoint restored at start(), if any.
  [[nodiscard]] const std::optional<stream::CheckpointInfo>& restored() const {
    return restored_;
  }
  [[nodiscard]] const stream::Pipeline& pipeline() const { return pipeline_; }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /// Frame a payload onto the socket; returns false once the peer is
    /// gone. Serialized by `write_mu` so reader-thread acks and pump-thread
    /// decisions never interleave mid-frame.
    bool send(const std::string& payload);
    /// Half-close the read side to pop the reader out of read_frame.
    void shutdown_read();

    const int fd;
    es::Mutex write_mu;
    bool broken ES_GUARDED_BY(write_mu){false};
  };

  struct PendingDecide {
    std::shared_ptr<Connection> conn;
    std::int64_t client_ref{0};
    std::chrono::steady_clock::time_point received{};
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void pump_loop();
  /// Dispatch one decoded request; every branch sends exactly one response
  /// (the decide branch defers it to the pump thread).
  void handle_message(const std::shared_ptr<Connection>& conn, Message msg);
  void handle_decide(const std::shared_ptr<Connection>& conn,
                     stream::Event event);
  /// Pause publishers, pump the queues dry, save crash-atomically, resume.
  /// Runs on the pump thread only. Returns false when saving failed.
  bool do_checkpoint();
  void on_decision(const stream::Event& e, const solver::OnlineDecision& d);
  void set_state(DaemonState s);
  [[nodiscard]] ServeTunables tunables() const;

  // Publisher-side quiescence gate around bus publishes: checkpoints need
  // the queues-drained invariant, so the pump pauses the gate, waits out
  // in-flight publishes, drains, saves, resumes.
  void publish_gate_enter();
  void publish_gate_exit();

  ServeConfig config_;
  core::ESharing* system_;
  stream::Pipeline pipeline_;
  std::optional<FlightRecorder> recorder_;
  std::optional<stream::CheckpointInfo> restored_;

  mutable es::Mutex tunables_mu_;
  ServeTunables tunables_ ES_GUARDED_BY(tunables_mu_);

  int listen_fd_{-1};
  std::uint16_t port_{0};
  bool started_{false};
  std::atomic<DaemonState> state_{DaemonState::kStarting};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> accept_done_{false};

  es::Mutex conn_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ ES_GUARDED_BY(conn_mu_);
  // lint-ok: raw-thread reader threads block in read_frame; see file comment
  std::vector<std::thread> reader_threads_ ES_GUARDED_BY(conn_mu_);
  std::atomic<std::size_t> active_readers_{0};

  es::Mutex pending_mu_;
  std::map<std::int64_t, PendingDecide> pending_ ES_GUARDED_BY(pending_mu_);
  std::atomic<std::int64_t> next_token_{1};

  es::Mutex gate_mu_;
  es::CondVar gate_cv_;
  bool gate_paused_ ES_GUARDED_BY(gate_mu_){false};
  std::size_t in_flight_publishes_ ES_GUARDED_BY(gate_mu_){0};

  mutable es::Mutex ckpt_mu_;
  es::CondVar ckpt_cv_;
  std::uint64_t checkpoints_done_ ES_GUARDED_BY(ckpt_mu_){0};
  std::uint64_t checkpoint_failures_ ES_GUARDED_BY(ckpt_mu_){0};
  std::atomic<bool> checkpoint_requested_{false};

  std::thread accept_thread_;  // lint-ok: raw-thread blocks in poll/accept
  std::thread pump_thread_;    // lint-ok: raw-thread resident consumer loop

  std::atomic<std::uint64_t> events_consumed_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> consumed_since_checkpoint_{0};
};

}  // namespace esharing::serve
