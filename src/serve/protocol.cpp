#include "serve/protocol.h"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "data/wire.h"

namespace esharing::serve {

namespace {

namespace wire = data::wire;

void write_event(std::ostream& os, const stream::Event& e) {
  wire::write_u8(os, static_cast<std::uint8_t>(e.kind));
  wire::write_i64(os, e.time);
  wire::write_u64(os, e.seq);
  wire::write_f64(os, e.where.x);
  wire::write_f64(os, e.where.y);
  wire::write_f64(os, e.origin.x);
  wire::write_f64(os, e.origin.y);
  wire::write_i64(os, e.bike_id);
  wire::write_f64(os, e.weight);
  wire::write_f64(os, e.soc);
  wire::write_f64(os, e.user_max_walk_m);
  wire::write_f64(os, e.user_min_reward);
  wire::write_i64(os, e.ref);
}

[[nodiscard]] stream::Event read_event(std::istream& is) {
  stream::Event e;
  const std::uint8_t kind = wire::read_u8(is);
  if (kind > static_cast<std::uint8_t>(stream::EventKind::kBatteryLevel)) {
    throw std::runtime_error("serve protocol: unknown event kind " +
                             std::to_string(kind));
  }
  e.kind = static_cast<stream::EventKind>(kind);
  e.time = wire::read_i64(is);
  e.seq = wire::read_u64(is);
  e.where.x = wire::read_f64(is);
  e.where.y = wire::read_f64(is);
  e.origin.x = wire::read_f64(is);
  e.origin.y = wire::read_f64(is);
  e.bike_id = wire::read_i64(is);
  e.weight = wire::read_f64(is);
  e.soc = wire::read_f64(is);
  e.user_max_walk_m = wire::read_f64(is);
  e.user_min_reward = wire::read_f64(is);
  e.ref = wire::read_i64(is);
  return e;
}

[[nodiscard]] std::string with_type(MsgType type, const std::string& body) {
  std::string out;
  out.reserve(1 + body.size());
  out.push_back(static_cast<char>(type));
  out += body;
  return out;
}

[[nodiscard]] std::string type_only(MsgType type) {
  return std::string(1, static_cast<char>(type));
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kPublishEvents: return "publish_events";
    case MsgType::kDecide: return "decide";
    case MsgType::kScrapeMetrics: return "scrape_metrics";
    case MsgType::kStatus: return "status";
    case MsgType::kReloadTunables: return "reload_tunables";
    case MsgType::kCheckpointNow: return "checkpoint_now";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kOk: return "ok";
    case MsgType::kPublishAck: return "publish_ack";
    case MsgType::kDecision: return "decision";
    case MsgType::kMetricsJson: return "metrics_json";
    case MsgType::kStatusReply: return "status_reply";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

const char* daemon_state_name(DaemonState s) {
  switch (s) {
    case DaemonState::kStarting: return "starting";
    case DaemonState::kServing: return "serving";
    case DaemonState::kDraining: return "draining";
    case DaemonState::kStopped: return "stopped";
  }
  return "unknown";
}

void ServeTunables::validate() const {
  if (pump_idle_micros < 1 || pump_idle_micros > 1'000'000) {
    throw std::invalid_argument(
        "ServeTunables: pump_idle_micros is " +
        std::to_string(pump_idle_micros) +
        " but must be in [1, 1000000] — 0 would spin a core, more than a "
        "second would stall the decide path");
  }
  // checkpoint_every_events: every value is legal (0 = shutdown-only).
}

std::string encode_ping() { return type_only(MsgType::kPing); }
std::string encode_scrape_metrics() { return type_only(MsgType::kScrapeMetrics); }
std::string encode_status() { return type_only(MsgType::kStatus); }
std::string encode_checkpoint_now() { return type_only(MsgType::kCheckpointNow); }
std::string encode_shutdown() { return type_only(MsgType::kShutdown); }
std::string encode_ok() { return type_only(MsgType::kOk); }

std::string encode_publish_events(std::span<const stream::Event> events) {
  std::ostringstream os;
  wire::write_u64(os, events.size());
  for (const stream::Event& e : events) write_event(os, e);
  return with_type(MsgType::kPublishEvents, os.str());
}

std::string encode_decide(const stream::Event& event) {
  std::ostringstream os;
  write_event(os, event);
  return with_type(MsgType::kDecide, os.str());
}

std::string encode_reload_tunables(const ServeTunables& t) {
  std::ostringstream os;
  wire::write_u64(os, t.checkpoint_every_events);
  wire::write_u64(os, t.pump_idle_micros);
  return with_type(MsgType::kReloadTunables, os.str());
}

std::string encode_publish_ack(std::uint64_t accepted) {
  std::ostringstream os;
  wire::write_u64(os, accepted);
  return with_type(MsgType::kPublishAck, os.str());
}

std::string encode_decision(const DecisionReply& d) {
  std::ostringstream os;
  wire::write_i64(os, d.ref);
  wire::write_u8(os, d.opened ? 1 : 0);
  wire::write_u64(os, d.facility);
  wire::write_f64(os, d.connection_cost);
  return with_type(MsgType::kDecision, os.str());
}

std::string encode_metrics_json(const std::string& json) {
  std::ostringstream os;
  wire::write_string(os, json);
  return with_type(MsgType::kMetricsJson, os.str());
}

std::string encode_status_reply(const ServeStatus& s) {
  std::ostringstream os;
  wire::write_u8(os, static_cast<std::uint8_t>(s.state));
  wire::write_u64(os, s.events_consumed);
  wire::write_u64(os, s.decisions);
  wire::write_u64(os, s.checkpoints);
  wire::write_u64(os, s.reloads);
  wire::write_u64(os, s.connections_accepted);
  wire::write_u64(os, s.next_seq);
  return with_type(MsgType::kStatusReply, os.str());
}

std::string encode_error(const std::string& what) {
  std::ostringstream os;
  wire::write_string(os, what);
  return with_type(MsgType::kError, os.str());
}

Message decode_message(const std::string& payload) {
  if (payload.empty()) {
    throw std::runtime_error("serve protocol: empty frame payload");
  }
  Message m;
  const auto raw_type = static_cast<std::uint8_t>(payload[0]);
  std::istringstream is(payload.substr(1));
  switch (raw_type) {
    case static_cast<std::uint8_t>(MsgType::kPing):
    case static_cast<std::uint8_t>(MsgType::kScrapeMetrics):
    case static_cast<std::uint8_t>(MsgType::kStatus):
    case static_cast<std::uint8_t>(MsgType::kCheckpointNow):
    case static_cast<std::uint8_t>(MsgType::kShutdown):
    case static_cast<std::uint8_t>(MsgType::kOk):
      m.type = static_cast<MsgType>(raw_type);
      break;
    case static_cast<std::uint8_t>(MsgType::kPublishEvents): {
      m.type = MsgType::kPublishEvents;
      const std::uint64_t n =
          wire::read_count(is, kMaxFrameBytes / sizeof(stream::Event));
      m.events.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) m.events.push_back(read_event(is));
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kDecide):
      m.type = MsgType::kDecide;
      m.events.push_back(read_event(is));
      break;
    case static_cast<std::uint8_t>(MsgType::kReloadTunables):
      m.type = MsgType::kReloadTunables;
      m.tunables.checkpoint_every_events = wire::read_u64(is);
      m.tunables.pump_idle_micros = wire::read_u64(is);
      break;
    case static_cast<std::uint8_t>(MsgType::kPublishAck):
      m.type = MsgType::kPublishAck;
      m.accepted = wire::read_u64(is);
      break;
    case static_cast<std::uint8_t>(MsgType::kDecision):
      m.type = MsgType::kDecision;
      m.decision.ref = wire::read_i64(is);
      m.decision.opened = wire::read_u8(is) != 0;
      m.decision.facility = wire::read_u64(is);
      m.decision.connection_cost = wire::read_f64(is);
      break;
    case static_cast<std::uint8_t>(MsgType::kMetricsJson):
      m.type = MsgType::kMetricsJson;
      m.text = wire::read_string(is);
      break;
    case static_cast<std::uint8_t>(MsgType::kStatusReply): {
      m.type = MsgType::kStatusReply;
      const std::uint8_t state = wire::read_u8(is);
      if (state > static_cast<std::uint8_t>(DaemonState::kStopped)) {
        throw std::runtime_error("serve protocol: unknown daemon state " +
                                 std::to_string(state));
      }
      m.status.state = static_cast<DaemonState>(state);
      m.status.events_consumed = wire::read_u64(is);
      m.status.decisions = wire::read_u64(is);
      m.status.checkpoints = wire::read_u64(is);
      m.status.reloads = wire::read_u64(is);
      m.status.connections_accepted = wire::read_u64(is);
      m.status.next_seq = wire::read_u64(is);
      break;
    }
    case static_cast<std::uint8_t>(MsgType::kError):
      m.type = MsgType::kError;
      m.text = wire::read_string(is);
      break;
    default:
      throw std::runtime_error("serve protocol: unknown message type " +
                               std::to_string(raw_type));
  }
  // A payload longer than its message is as corrupt as a truncated one.
  if (is.peek() != std::istringstream::traits_type::eof()) {
    throw std::runtime_error(
        std::string("serve protocol: trailing bytes after ") +
        msg_type_name(m.type) + " payload");
  }
  return m;
}

namespace {

/// True when errno after a failed send/recv means "peer is gone" rather
/// than "the call itself is broken".
[[nodiscard]] bool peer_gone(int err) {
  return err == EPIPE || err == ECONNRESET || err == EBADF ||
         err == ENOTCONN || err == ESHUTDOWN;
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (peer_gone(errno)) return false;
      throw std::runtime_error(std::string("serve protocol: write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// 0 = clean EOF before any byte, 1 = all read; throws on a torn read.
int read_all(int fd, char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (!peer_gone(errno)) {
        throw std::runtime_error(std::string("serve protocol: read failed: ") +
                                 std::strerror(errno));
      }
      r = 0;  // a vanished peer reads as EOF
    }
    if (r == 0) {
      if (off == 0) return 0;
      throw std::runtime_error(
          "serve protocol: connection closed mid-frame (" +
          std::to_string(off) + " of " + std::to_string(n) + " bytes)");
    }
    off += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::invalid_argument("serve protocol: frame of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds kMaxFrameBytes");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xffU);
  }
  // One assembled buffer per frame: a single write keeps frames contiguous
  // even when several daemon threads answer on the same connection (each
  // holds the connection's write mutex around this call).
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.append(prefix, 4);
  buf += payload;
  return write_all(fd, buf.data(), buf.size());
}

bool read_frame(int fd, std::string& payload) {
  char prefix[4];
  if (read_all(fd, prefix, 4) == 0) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[i]))
           << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) {
    throw std::runtime_error("serve protocol: implausible frame length " +
                             std::to_string(len));
  }
  payload.assign(len, '\0');
  if (read_all(fd, payload.data(), len) == 0) {
    throw std::runtime_error("serve protocol: connection closed before frame "
                             "body");
  }
  return true;
}

}  // namespace esharing::serve
