#pragma once

/// \file workload.h
/// Deterministic synthetic request streams for the serving daemon: the
/// load generator, the serve-smoke CI job and the daemon tests all need the
/// same property — two processes given (seed, count) produce byte-identical
/// event sequences, so decision traces can be diffed across restarts and
/// machines. Events are generated from one seeded stats::Rng; `ref` is the
/// 0-based event index, which doubles as the client-side correlation token.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/esharing.h"
#include "geo/point.h"
#include "stream/event.h"

namespace esharing::serve {

struct WorkloadConfig {
  std::uint64_t seed{17};
  std::size_t count{1000};
  /// Requests land uniformly in [0, area_m) x [0, area_m).
  double area_m{4000.0};
  /// Seconds between consecutive requests (event time advances linearly).
  double inter_arrival_s{2.0};
  /// Every n-th event is battery telemetry instead of a trip end (0 = all
  /// trip ends — the decide-path shape).
  std::size_t telemetry_every{0};

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// Generate the full workload for `config`. Pure function of the config —
/// the entire stream is materialized so callers can slice prefix/suffix
/// windows for restart experiments (make_workload(c) with count n is a
/// prefix of make_workload(c) with count m for n < m).
[[nodiscard]] std::vector<stream::Event> make_workload(
    const WorkloadConfig& config);

/// Bootstrap demand for the daemon's offline tier: the same generator
/// shape, reduced to weighted trip-end destinations. Used by serve_main and
/// the benches so a restarted process rebuilds the identical offline plan
/// before restoring its checkpoint.
[[nodiscard]] std::vector<stream::Event> make_bootstrap_history(
    std::uint64_t seed, std::size_t count, double area_m);

/// Deterministically bootstrap `system` for serving: aggregate the
/// bootstrap history into coarse demand cells, plan offline with a flat
/// opening cost, start the online tier, and return the KS reference sample
/// (first min(count, 400) destinations). Two processes calling this with
/// the same (seed, count, area_m) build bit-identical tier-one state —
/// the precondition for checkpoint restore across restarts.
/// \throws std::invalid_argument on degenerate arguments (count == 0 or
///         area_m <= 0).
std::vector<geo::Point> bootstrap_system(core::ESharing& system,
                                         std::uint64_t seed,
                                         std::size_t count, double area_m);

}  // namespace esharing::serve
