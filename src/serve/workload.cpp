#include "serve/workload.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "data/binning.h"
#include "stats/rng.h"

namespace esharing::serve {

void WorkloadConfig::validate() const {
  if (count == 0) {
    throw std::invalid_argument("WorkloadConfig: count must be >= 1");
  }
  if (!(area_m > 0.0)) {
    throw std::invalid_argument("WorkloadConfig: area_m is " +
                                std::to_string(area_m) +
                                " but must be positive");
  }
  if (!(inter_arrival_s >= 0.0)) {
    throw std::invalid_argument("WorkloadConfig: inter_arrival_s is " +
                                std::to_string(inter_arrival_s) +
                                " but must be non-negative");
  }
}

std::vector<stream::Event> make_workload(const WorkloadConfig& config) {
  config.validate();
  stats::Rng rng(config.seed);
  std::vector<stream::Event> events;
  events.reserve(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    stream::Event e;
    e.time = static_cast<data::Seconds>(
        static_cast<double>(i) * config.inter_arrival_s);
    e.origin = {rng.uniform(0.0, config.area_m),
                rng.uniform(0.0, config.area_m)};
    e.where = {rng.uniform(0.0, config.area_m),
               rng.uniform(0.0, config.area_m)};
    e.bike_id = static_cast<std::int64_t>(i % 997);
    e.ref = static_cast<std::int64_t>(i);
    const bool telemetry =
        config.telemetry_every != 0 && i % config.telemetry_every ==
                                           config.telemetry_every - 1;
    if (telemetry) {
      e.kind = stream::EventKind::kBatteryLevel;
      e.soc = rng.uniform(0.05, 0.5);
    } else {
      e.kind = stream::EventKind::kTripEnd;
      e.weight = 1.0;
      e.user_max_walk_m = 400.0;
      e.user_min_reward = 0.05;
    }
    events.push_back(e);
  }
  return events;
}

std::vector<stream::Event> make_bootstrap_history(std::uint64_t seed,
                                                  std::size_t count,
                                                  double area_m) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.count = count;
  cfg.area_m = area_m;
  cfg.telemetry_every = 0;
  return make_workload(cfg);
}

std::vector<geo::Point> bootstrap_system(core::ESharing& system,
                                         std::uint64_t seed,
                                         std::size_t count, double area_m) {
  const auto history = make_bootstrap_history(seed, count, area_m);
  // Coarse 16x16 aggregation of destinations into demand cells — enough
  // structure for a sensible offline plan, fully determined by the inputs.
  constexpr std::size_t kCellsPerSide = 16;
  const double cell_m = area_m / static_cast<double>(kCellsPerSide);
  std::vector<double> arrivals(kCellsPerSide * kCellsPerSide, 0.0);
  for (const auto& e : history) {
    auto col = static_cast<std::size_t>(e.where.x / cell_m);
    auto row = static_cast<std::size_t>(e.where.y / cell_m);
    col = std::min(col, kCellsPerSide - 1);
    row = std::min(row, kCellsPerSide - 1);
    arrivals[row * kCellsPerSide + col] += e.weight;
  }
  std::vector<data::DemandSite> sites;
  for (std::size_t cell = 0; cell < arrivals.size(); ++cell) {
    if (arrivals[cell] <= 0.0) continue;
    const auto row = cell / kCellsPerSide;
    const auto col = cell % kCellsPerSide;
    data::DemandSite site;
    site.location = {(static_cast<double>(col) + 0.5) * cell_m,
                     (static_cast<double>(row) + 0.5) * cell_m};
    site.arrivals = arrivals[cell];
    site.cell = cell;
    sites.push_back(site);
  }
  (void)system.plan_offline(sites, [](geo::Point) { return 10000.0; });
  std::vector<geo::Point> ks_reference;
  ks_reference.reserve(std::min<std::size_t>(history.size(), 400));
  for (const auto& e : history) {
    ks_reference.push_back(e.where);
    if (ks_reference.size() == 400) break;
  }
  system.start_online(ks_reference);
  return ks_reference;
}

}  // namespace esharing::serve
