#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace esharing::serve {

ServeClient ServeClient::connect(std::uint16_t port) {
  ::signal(SIGPIPE, SIG_IGN);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("ServeClient: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("ServeClient: connect 127.0.0.1:" +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  return ServeClient(fd);
}

ServeClient::~ServeClient() {
  if (fd_ != -1) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

void ServeClient::send(const std::string& payload) {
  const es::LockGuard lock(send_mu_);
  // analyze-ok: blocking-under-lock send_mu_ exists to keep senders from interleaving partial frames; the write IS the critical section
  if (!write_frame(fd_, payload)) {
    throw std::runtime_error("ServeClient: daemon closed the connection");
  }
}

Message ServeClient::recv() {
  std::string payload;
  {
    const es::LockGuard lock(recv_mu_);
    // analyze-ok: blocking-under-lock recv_mu_ keeps receivers from tearing a frame apart; the read IS the critical section
    if (!read_frame(fd_, payload)) {
      throw std::runtime_error(
          "ServeClient: connection closed while awaiting a response");
    }
  }
  return decode_message(payload);
}

Message ServeClient::request(const std::string& payload) {
  send(payload);
  return recv();
}

Message ServeClient::expect(const std::string& payload, MsgType want) {
  Message reply = request(payload);
  if (reply.type == MsgType::kError) {
    throw std::runtime_error("ServeClient: daemon error: " + reply.text);
  }
  if (reply.type != want) {
    throw std::runtime_error(std::string("ServeClient: expected ") +
                             msg_type_name(want) + " but got " +
                             msg_type_name(reply.type));
  }
  return reply;
}

void ServeClient::ping() { expect(encode_ping(), MsgType::kOk); }

std::uint64_t ServeClient::publish(std::span<const stream::Event> events) {
  return expect(encode_publish_events(events), MsgType::kPublishAck).accepted;
}

DecisionReply ServeClient::decide(const stream::Event& event) {
  return expect(encode_decide(event), MsgType::kDecision).decision;
}

std::string ServeClient::scrape_metrics() {
  return expect(encode_scrape_metrics(), MsgType::kMetricsJson).text;
}

ServeStatus ServeClient::status() {
  return expect(encode_status(), MsgType::kStatusReply).status;
}

void ServeClient::reload_tunables(const ServeTunables& tunables) {
  expect(encode_reload_tunables(tunables), MsgType::kOk);
}

void ServeClient::checkpoint_now() {
  expect(encode_checkpoint_now(), MsgType::kOk);
}

void ServeClient::shutdown() { expect(encode_shutdown(), MsgType::kOk); }

}  // namespace esharing::serve
