#pragma once

/// \file flight_recorder.h
/// The daemon's black box: every tier-one decision appended as one JSONL
/// line, so a production incident can be interrogated offline with
/// tools/flightq long after the process (and its metrics registry) is gone.
///
/// Line shape (stable field order, obs JSON escaping/number rules):
///
///   {"idx":0,"event":"serve.decision","seq":17,"time":3600,
///    "dest_x":812.5,"dest_y":90.25,"weight":1,"opened":1,"facility":3,
///    "connection_cost":42.75,"ref":12}
///
/// `idx` is the recorder's own monotonic index (0-based append order), not
/// the obs event seq — the recorder is deliberately independent of the
/// registry's sink so a flight log never interleaves with unrelated emits
/// and two runs of the same event stream produce byte-identical logs (no
/// wall-clock timestamps, same determinism contract as checkpoints).
/// Records are flushed per line: after a crash the log is complete up to
/// the last decision the pump loop finished.

#include <cstdint>
#include <fstream>
#include <string>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "solver/meyerson.h"
#include "stream/event.h"

namespace esharing::serve {

class FlightRecorder {
 public:
  /// Opens `path` for appending (the restart-after-crash case continues the
  /// same log). \throws std::runtime_error when the file cannot be opened.
  explicit FlightRecorder(const std::string& path);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one decision record. Thread-safe; lines are never torn.
  void record(const stream::Event& event, const solver::OnlineDecision& d);

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable es::Mutex mu_;
  std::ofstream out_ ES_GUARDED_BY(mu_);
  std::uint64_t idx_ ES_GUARDED_BY(mu_){0};
};

}  // namespace esharing::serve
