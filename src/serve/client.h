#pragma once

/// \file client.h
/// Blocking client for the esharing-serve protocol: one TCP connection,
/// synchronous request/response helpers for control-plane calls, and the
/// raw send()/recv() split for callers that pipeline the decide path (the
/// load generator keeps many decide frames in flight and matches responses
/// by the echoed ref token).
///
/// Thread contract: send() and recv() are individually serialized by
/// internal locks, so one writer thread and one reader thread can share a
/// client; the synchronous helpers (ping(), decide(), ...) assume they own
/// both directions of the connection while they run.

#include <cstdint>
#include <span>
#include <string>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "serve/protocol.h"
#include "stream/event.h"

namespace esharing::serve {

class ServeClient {
 public:
  /// Connect to a daemon on loopback. \throws std::runtime_error when the
  /// connection is refused.
  static ServeClient connect(std::uint16_t port);

  /// Adopt an already-connected stream socket (tests use socketpair).
  explicit ServeClient(int fd) : fd_(fd) {}
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Frame one encoded payload onto the socket.
  /// \throws std::runtime_error when the daemon is gone.
  void send(const std::string& payload);
  /// Read and decode the next response frame.
  /// \throws std::runtime_error on EOF or a torn frame.
  Message recv();
  /// send() + recv(): the synchronous call shape.
  Message request(const std::string& payload);

  // Control-plane helpers. Each throws std::runtime_error if the daemon
  // answers kError (the error text is the exception message) or replies
  // with an unexpected type.
  void ping();
  /// \returns the number of events the bus accepted.
  std::uint64_t publish(std::span<const stream::Event> events);
  /// Synchronous decide: sends one trip-end and blocks for its decision.
  DecisionReply decide(const stream::Event& event);
  std::string scrape_metrics();
  ServeStatus status();
  void reload_tunables(const ServeTunables& tunables);
  void checkpoint_now();
  void shutdown();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  Message expect(const std::string& payload, MsgType want);

  int fd_;
  es::Mutex send_mu_;
  es::Mutex recv_mu_;
};

}  // namespace esharing::serve
