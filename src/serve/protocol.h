#pragma once

/// \file protocol.h
/// The wire protocol of the `esharing-serve` daemon: length-prefixed binary
/// frames over a byte stream (TCP in production, a pipe in the unit tests).
///
/// Frame layout (little-endian, data/wire.h conventions):
///
///   u32 length | u8 type | payload (length - 1 bytes)
///
/// Every request receives exactly one response on the same connection. The
/// publish path (kPublishEvents) is acknowledged immediately by the reader
/// thread; the decide path (kDecide) is answered by the pump loop once the
/// event has travelled through the serving pipeline in seq order, so on a
/// connection that interleaves the two, responses can arrive out of request
/// order — clients correlate decisions by the echoed `ref` token. All
/// payload (de)serialization is pure and stream-free so the protocol is
/// testable without sockets; frame I/O over file descriptors lives in
/// read_frame/write_frame.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "solver/meyerson.h"
#include "stream/event.h"

namespace esharing::serve {

/// Wire-protocol revision. Any change to the frame layout, the MsgType
/// values, or a payload's field order must bump this constant and refresh
/// tools/lint/frozen_formats.txt in the same diff (enforced by the
/// format-freeze pass of tools/analyze/analyze.py).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a frame payload; a length prefix beyond this is treated as
/// protocol corruption, not an allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class MsgType : std::uint8_t {
  // Requests.
  kPing = 1,
  kPublishEvents = 2,   ///< fire-and-forget ingestion batch -> kPublishAck
  kDecide = 3,          ///< one trip-end request -> kDecision (seq order)
  kScrapeMetrics = 4,   ///< obs registry snapshot -> kMetricsJson
  kStatus = 5,          ///< lifecycle + counters -> kStatusReply
  kReloadTunables = 6,  ///< hot config reload -> kOk or kError
  kCheckpointNow = 7,   ///< force a checkpoint -> kOk or kError
  kShutdown = 8,        ///< graceful drain-then-checkpoint stop -> kOk
  // Responses.
  kOk = 64,
  kPublishAck = 65,
  kDecision = 66,
  kMetricsJson = 67,
  kStatusReply = 68,
  kError = 69,
};

[[nodiscard]] const char* msg_type_name(MsgType t);

/// Daemon lifecycle states (DESIGN.md "Serving daemon" state machine).
enum class DaemonState : std::uint8_t {
  kStarting = 0,  ///< constructed; sockets not yet accepting
  kServing = 1,   ///< accept loop + pump loop live
  kDraining = 2,  ///< no new work accepted; draining queues
  kStopped = 3,   ///< drained, final checkpoint written, threads joined
};

[[nodiscard]] const char* daemon_state_name(DaemonState s);

/// The hot-reloadable subset of the daemon's configuration. Reloads arrive
/// over the protocol (kReloadTunables), pass validate() before being
/// applied, and are rejected wholesale with kError when invalid — the
/// running configuration is never half-updated.
struct ServeTunables {
  /// Checkpoint after this many consumed events (0 = only at shutdown).
  std::uint64_t checkpoint_every_events{0};
  /// Pump-loop sleep when a round drains nothing, in microseconds.
  std::uint64_t pump_idle_micros{200};

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// Tier-one answer sent back on the decide path. `ref` echoes the value the
/// client put on its request event, untouched by the daemon's internal
/// routing tokens.
struct DecisionReply {
  std::int64_t ref{0};
  bool opened{false};
  std::uint64_t facility{0};
  double connection_cost{0.0};
};

/// Point-in-time daemon facts (kStatusReply).
struct ServeStatus {
  DaemonState state{DaemonState::kStarting};
  std::uint64_t events_consumed{0};
  std::uint64_t decisions{0};
  std::uint64_t checkpoints{0};
  std::uint64_t reloads{0};
  std::uint64_t connections_accepted{0};
  std::uint64_t next_seq{0};
};

/// One decoded frame payload: `type` plus the fields of that message kind.
struct Message {
  MsgType type{MsgType::kPing};
  std::vector<stream::Event> events;  ///< kPublishEvents / kDecide (size 1)
  std::uint64_t accepted{0};          ///< kPublishAck
  DecisionReply decision;             ///< kDecision
  std::string text;                   ///< kMetricsJson / kError
  ServeTunables tunables;             ///< kReloadTunables
  ServeStatus status;                 ///< kStatusReply
};

// --- payload builders (the returned string starts with the type byte) -----
[[nodiscard]] std::string encode_ping();
[[nodiscard]] std::string encode_publish_events(
    std::span<const stream::Event> events);
[[nodiscard]] std::string encode_decide(const stream::Event& event);
[[nodiscard]] std::string encode_scrape_metrics();
[[nodiscard]] std::string encode_status();
[[nodiscard]] std::string encode_reload_tunables(const ServeTunables& t);
[[nodiscard]] std::string encode_checkpoint_now();
[[nodiscard]] std::string encode_shutdown();
[[nodiscard]] std::string encode_ok();
[[nodiscard]] std::string encode_publish_ack(std::uint64_t accepted);
[[nodiscard]] std::string encode_decision(const DecisionReply& d);
[[nodiscard]] std::string encode_metrics_json(const std::string& json);
[[nodiscard]] std::string encode_status_reply(const ServeStatus& s);
[[nodiscard]] std::string encode_error(const std::string& what);

/// Decode one frame payload (type byte + body).
/// \throws std::runtime_error on an unknown type, truncated body, or
///         trailing garbage — corrupt frames never half-decode.
[[nodiscard]] Message decode_message(const std::string& payload);

// --- frame I/O over file descriptors --------------------------------------

/// Write `payload` as one frame (u32 length prefix + bytes), looping over
/// partial writes. Returns false when the peer is gone (EPIPE/ECONNRESET);
/// \throws std::invalid_argument when payload exceeds kMaxFrameBytes,
///         std::runtime_error on other I/O errors.
bool write_frame(int fd, const std::string& payload);

/// Read one frame into `payload`. Returns false on clean EOF at a frame
/// boundary. \throws std::runtime_error on a torn frame, an implausible
///         length prefix, or other I/O errors.
bool read_frame(int fd, std::string& payload);

}  // namespace esharing::serve
