/// \file serve_main.cpp
/// The `esharing-serve` binary: bootstrap a deterministic tier-one system,
/// start the ServeDaemon, and run until SIGINT/SIGTERM or a protocol
/// kShutdown — then drain, take the final checkpoint and drop a metrics
/// snapshot. Restarting with the same --seed/--bootstrap-events/--area-m
/// and the same --checkpoint path resumes bit-identically from the last
/// checkpoint (DESIGN.md "Serving daemon").
///
/// Usage:
///   esharing-serve [--port N] [--checkpoint PATH] [--flight-log PATH]
///                  [--seed N] [--bootstrap-events N] [--area-m F]
///                  [--shards N] [--checkpoint-every N] [--port-file PATH]
///
/// --port 0 (default) binds an ephemeral port; --port-file writes the bound
/// port as a single line so scripts (the serve-smoke CI job) can find it.
///
/// Control mode (a protocol client against a running daemon):
///   esharing-serve ctl --port N <status|scrape|checkpoint|shutdown|drive>
///                      [--out PATH] [--seed N] [--count N] [--from N]
///
/// `drive` sends the deterministic serve::make_workload(seed, count) slice
/// [from, count) down the decide path one request at a time — the exact
/// stream a previous invocation sent, so restart experiments can resend a
/// suffix and diff flight-recorder traces.

#include <pthread.h>
#include <signal.h>  // sigset_t/sigtimedwait; <csignal> lacks them on POSIX

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/workload.h"

using namespace esharing;

namespace {

struct Args {
  std::uint16_t port{0};
  std::string checkpoint;
  std::string flight_log;
  std::string port_file;
  std::uint64_t seed{17};
  std::size_t bootstrap_events{2000};
  double area_m{4000.0};
  std::size_t shards{2};
  std::uint64_t checkpoint_every{0};
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--checkpoint PATH] [--flight-log PATH]\n"
               "          [--seed N] [--bootstrap-events N] [--area-m F]\n"
               "          [--shards N] [--checkpoint-every N] "
               "[--port-file PATH]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--port" && (v = value())) {
      args.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--checkpoint" && (v = value())) {
      args.checkpoint = v;
    } else if (flag == "--flight-log" && (v = value())) {
      args.flight_log = v;
    } else if (flag == "--port-file" && (v = value())) {
      args.port_file = v;
    } else if (flag == "--seed" && (v = value())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--bootstrap-events" && (v = value())) {
      args.bootstrap_events = std::strtoull(v, nullptr, 10);
    } else if (flag == "--area-m" && (v = value())) {
      args.area_m = std::strtod(v, nullptr);
    } else if (flag == "--shards" && (v = value())) {
      args.shards = std::strtoull(v, nullptr, 10);
    } else if (flag == "--checkpoint-every" && (v = value())) {
      args.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else {
      return false;
    }
  }
  return true;
}

struct CtlArgs {
  std::uint16_t port{0};
  std::string command;
  std::string out;
  std::uint64_t seed{7};
  std::size_t count{100};
  std::size_t from{0};
};

int ctl_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ctl --port N <status|scrape|checkpoint|shutdown|"
               "drive>\n"
               "          [--out PATH] [--seed N] [--count N] [--from N]\n",
               argv0);
  return 2;
}

bool parse_ctl_args(int argc, char** argv, CtlArgs& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--port" && (v = value())) {
      args.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--out" && (v = value())) {
      args.out = v;
    } else if (flag == "--seed" && (v = value())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--count" && (v = value())) {
      args.count = std::strtoull(v, nullptr, 10);
    } else if (flag == "--from" && (v = value())) {
      args.from = std::strtoull(v, nullptr, 10);
    } else if (args.command.empty() && flag.rfind("--", 0) != 0) {
      args.command = flag;
    } else {
      return false;
    }
  }
  return !args.command.empty() && args.port != 0;
}

/// `esharing-serve ctl ...`: one protocol request against a running daemon,
/// so shell scripts (the serve-smoke CI job) can scrape, checkpoint, drive
/// a deterministic decide stream, and shut down without a bespoke client.
int run_ctl(int argc, char** argv) {
  CtlArgs args;
  if (!parse_ctl_args(argc, argv, args)) return ctl_usage(argv[0]);
  try {
    serve::ServeClient client = serve::ServeClient::connect(args.port);
    if (args.command == "status") {
      const serve::ServeStatus s = client.status();
      std::printf("state=%d events_consumed=%llu decisions=%llu "
                  "checkpoints=%llu next_seq=%llu reloads=%llu\n",
                  static_cast<int>(s.state),
                  static_cast<unsigned long long>(s.events_consumed),
                  static_cast<unsigned long long>(s.decisions),
                  static_cast<unsigned long long>(s.checkpoints),
                  static_cast<unsigned long long>(s.next_seq),
                  static_cast<unsigned long long>(s.reloads));
    } else if (args.command == "scrape") {
      const std::string json = client.scrape_metrics();
      if (args.out.empty()) {
        std::printf("%s\n", json.c_str());
      } else if (std::FILE* f = std::fopen(args.out.c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "ctl: cannot write %s\n", args.out.c_str());
        return 1;
      }
    } else if (args.command == "checkpoint") {
      client.checkpoint_now();
      std::printf("ctl: checkpoint taken\n");
    } else if (args.command == "shutdown") {
      client.shutdown();
      std::printf("ctl: shutdown requested\n");
    } else if (args.command == "drive") {
      serve::WorkloadConfig wl;
      wl.seed = args.seed;
      wl.count = args.count;
      wl.telemetry_every = 0;
      const auto events = serve::make_workload(wl);
      if (args.from > events.size()) {
        std::fprintf(stderr, "ctl: --from %zu past --count %zu\n", args.from,
                     args.count);
        return 1;
      }
      std::size_t opened = 0;
      for (std::size_t i = args.from; i < events.size(); ++i) {
        const serve::DecisionReply d = client.decide(events[i]);
        if (d.opened) ++opened;
      }
      std::printf("ctl: drove %zu decide requests (seed %llu, [%zu, %zu)), "
                  "%zu opened\n",
                  events.size() - args.from,
                  static_cast<unsigned long long>(args.seed), args.from,
                  events.size(), opened);
    } else {
      return ctl_usage(argv[0]);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "ctl: %s\n", ex.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "ctl") == 0) {
    return run_ctl(argc, argv);
  }
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  // Block the shutdown signals before any daemon thread exists so every
  // thread inherits the mask and only this one consumes them (sigtimedwait).
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  obs::set_enabled(true);
  try {
    core::ESharing system(core::ESharingConfig{}, args.seed);
    auto ks_reference = serve::bootstrap_system(
        system, args.seed, args.bootstrap_events, args.area_m);
    std::printf("esharing-serve: bootstrapped %zu parkings (seed %llu)\n",
                system.parking_locations().size(),
                static_cast<unsigned long long>(args.seed));

    serve::ServeConfig cfg;
    cfg.port = args.port;
    cfg.checkpoint_path = args.checkpoint;
    cfg.flight_recorder_path = args.flight_log;
    cfg.pipeline.bus.shard_count = args.shards;
    cfg.tunables.checkpoint_every_events = args.checkpoint_every;
    serve::ServeDaemon daemon(system, std::move(ks_reference), cfg);
    daemon.start();
    if (daemon.restored()) {
      std::printf("esharing-serve: restored checkpoint v%llu (%llu events, "
                  "seq %llu)\n",
                  static_cast<unsigned long long>(daemon.restored()->version),
                  static_cast<unsigned long long>(
                      daemon.restored()->events_consumed),
                  static_cast<unsigned long long>(daemon.restored()->last_seq));
    }
    std::printf("esharing-serve: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(daemon.port()));
    std::fflush(stdout);
    if (!args.port_file.empty()) {
      if (std::FILE* f = std::fopen(args.port_file.c_str(), "w")) {
        std::fprintf(f, "%u\n", static_cast<unsigned>(daemon.port()));
        std::fclose(f);
      }
    }

    // Run until a signal lands or a kShutdown frame stops the daemon.
    while (daemon.state() != serve::DaemonState::kStopped) {
      timespec tick{0, 100 * 1000 * 1000};
      const int sig = sigtimedwait(&sigs, nullptr, &tick);
      if (sig == SIGINT || sig == SIGTERM) {
        std::printf("esharing-serve: %s — draining\n", strsignal(sig));
        std::fflush(stdout);
        daemon.request_stop();
        break;
      }
    }
    daemon.request_stop();
    daemon.wait();

    const auto status = daemon.status();
    std::printf("esharing-serve: stopped after %llu events, %llu decisions, "
                "%llu checkpoints\n",
                static_cast<unsigned long long>(status.events_consumed),
                static_cast<unsigned long long>(status.decisions),
                static_cast<unsigned long long>(status.checkpoints));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "esharing-serve: fatal: %s\n", ex.what());
    return 1;
  }

  obs::set_enabled(false);
  const std::string snapshot = obs::metrics_snapshot_path("esharing_serve");
  if (obs::write_snapshot_json(obs::Registry::global(), snapshot)) {
    std::printf("esharing-serve: metrics snapshot: %s\n", snapshot.c_str());
  }
  return 0;
}
