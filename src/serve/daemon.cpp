#include "serve/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/registry.h"

namespace esharing::serve {

namespace {

/// Metric handles resolved once (registry convention; names frozen in
/// tools/lint/frozen_metric_names.txt).
struct ServeMetricsRefs {
  obs::Counter& connections;
  obs::Counter& requests;
  obs::Counter& published_events;
  obs::Counter& decisions;
  obs::Counter& checkpoints;
  obs::Counter& config_reloads;
  obs::Gauge& state;
  obs::Histogram& decide_latency;
};

ServeMetricsRefs& metrics() {
  static ServeMetricsRefs m{
      obs::Registry::global().counter("serve.daemon.connections"),
      obs::Registry::global().counter("serve.daemon.requests"),
      obs::Registry::global().counter("serve.daemon.published_events"),
      obs::Registry::global().counter("serve.daemon.decisions"),
      obs::Registry::global().counter("serve.daemon.checkpoints"),
      obs::Registry::global().counter("serve.daemon.config_reloads"),
      obs::Registry::global().gauge("serve.daemon.state"),
      obs::Registry::global().histogram("serve.decide.latency_seconds",
                                        obs::default_latency_buckets()),
  };
  return m;
}

ServeConfig validated(ServeConfig config) {
  config.validate();
  return config;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("ServeDaemon: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

void ServeConfig::validate() const {
  if (listen_backlog < 1) {
    throw std::invalid_argument("ServeConfig: listen_backlog is " +
                                std::to_string(listen_backlog) +
                                " but must be >= 1");
  }
  pipeline.validate();
  tunables.validate();
}

// --- Connection ------------------------------------------------------------

ServeDaemon::Connection::~Connection() { ::close(fd); }

bool ServeDaemon::Connection::send(const std::string& payload) {
  const es::LockGuard lock(write_mu);
  if (broken) return false;
  try {
    // analyze-ok: blocking-under-lock write_mu serializes whole frames onto one socket; a slow client stalls only its own connection
    if (!write_frame(fd, payload)) broken = true;
  } catch (const std::exception&) {
    broken = true;
  }
  return !broken;
}

void ServeDaemon::Connection::shutdown_read() { ::shutdown(fd, SHUT_RD); }

// --- lifecycle -------------------------------------------------------------

ServeDaemon::ServeDaemon(core::ESharing& system,
                         std::vector<geo::Point> historical_sample,
                         ServeConfig config)
    : config_(validated(std::move(config))),
      system_(&system),
      pipeline_(system, std::move(historical_sample), config_.pipeline),
      tunables_(config_.tunables) {}

ServeDaemon::~ServeDaemon() {
  request_stop();
  wait();
  if (listen_fd_ != -1) ::close(listen_fd_);
}

void ServeDaemon::start() {
  if (started_) throw std::logic_error("ServeDaemon: already started");
  started_ = true;

  // A peer vanishing mid-reply must surface as EPIPE on the write, not kill
  // the process.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind 127.0.0.1:" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (!config_.checkpoint_path.empty()) {
    const std::ifstream probe(config_.checkpoint_path, std::ios::binary);
    if (probe.good()) {
      restored_ = pipeline_.restore_checkpoint_file(config_.checkpoint_path);
      events_consumed_.store(restored_->events_consumed,
                             std::memory_order_relaxed);
    }
  }
  if (!config_.flight_recorder_path.empty()) {
    recorder_.emplace(config_.flight_recorder_path);
  }

  set_state(DaemonState::kServing);
  // lint-ok: raw-thread socket I/O threads must not occupy exec-pool lanes
  accept_thread_ = std::thread(&ServeDaemon::accept_loop, this);
  pump_thread_ = std::thread(&ServeDaemon::pump_loop, this);  // lint-ok: raw-thread resident consumer
}

void ServeDaemon::request_stop() {
  bool expected = false;
  if (!stop_requested_.compare_exchange_strong(expected, true)) return;
  if (!started_) {
    set_state(DaemonState::kStopped);
    return;
  }
  set_state(DaemonState::kDraining);
  // Pop the accept loop out of poll/accept and every reader out of
  // read_frame; half-close keeps the write sides alive so in-flight decide
  // responses still go out during the drain.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const es::LockGuard lock(conn_mu_);
  for (const auto& conn : conns_) conn->shutdown_read();
}

void ServeDaemon::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (;;) {
    // lint-ok: raw-thread joining the daemon's own reader threads
    std::vector<std::thread> grab;
    {
      const es::LockGuard lock(conn_mu_);
      grab.swap(reader_threads_);
    }
    if (grab.empty()) break;
    for (auto& t : grab) t.join();
  }
  if (pump_thread_.joinable()) pump_thread_.join();
}

void ServeDaemon::set_state(DaemonState s) {
  state_.store(s, std::memory_order_release);
  if (obs::enabled()) {
    metrics().state.set(static_cast<double>(static_cast<std::uint8_t>(s)));
  }
}

ServeTunables ServeDaemon::tunables() const {
  const es::LockGuard lock(tunables_mu_);
  return tunables_;
}

ServeStatus ServeDaemon::status() const {
  ServeStatus s;
  s.state = state();
  s.events_consumed = events_consumed_.load(std::memory_order_relaxed);
  s.decisions = decisions_.load(std::memory_order_relaxed);
  {
    const es::LockGuard lock(ckpt_mu_);
    s.checkpoints = checkpoints_done_;
  }
  s.reloads = reloads_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.next_seq = pipeline_.bus().next_seq();
  return s;
}

// --- accept + reader threads ----------------------------------------------

void ServeDaemon::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: recheck the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // raced with shutdown or transient accept error
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) metrics().connections.add(1);
    auto conn = std::make_shared<Connection>(fd);
    // Count the reader before its thread exists so the pump's drain
    // condition can never observe a spawned-but-uncounted reader.
    active_readers_.fetch_add(1, std::memory_order_acq_rel);
    const es::LockGuard lock(conn_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back(&ServeDaemon::reader_loop, this,
                                 std::move(conn));
  }
  accept_done_.store(true, std::memory_order_release);
}

void ServeDaemon::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  try {
    while (read_frame(conn->fd, payload)) {
      handle_message(conn, decode_message(payload));
    }
  } catch (const std::exception& ex) {
    // Framing is untrustworthy after a protocol error: answer once, then
    // drop the connection.
    conn->send(encode_error(std::string("protocol error: ") + ex.what()));
  }
  {
    const es::LockGuard lock(conn_mu_);
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == conn) {
        conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  active_readers_.fetch_sub(1, std::memory_order_acq_rel);
}

void ServeDaemon::handle_message(const std::shared_ptr<Connection>& conn,
                                 Message msg) {
  if (obs::enabled()) metrics().requests.add(1);
  const DaemonState st = state();
  switch (msg.type) {
    case MsgType::kPing:
      conn->send(encode_ok());
      return;
    case MsgType::kPublishEvents: {
      if (st != DaemonState::kServing) {
        conn->send(encode_error("not serving (state " +
                                std::string(daemon_state_name(st)) + ")"));
        return;
      }
      // Ingested events never carry routing tokens; ref is reserved for the
      // decide path (and checkpoint-consistent seq is stamped by the bus).
      for (auto& e : msg.events) {
        e.ref = 0;
        e.seq = 0;
      }
      publish_gate_enter();
      const std::size_t accepted = pipeline_.publish_batch(msg.events);
      publish_gate_exit();
      if (obs::enabled() && accepted > 0) {
        metrics().published_events.add(accepted);
      }
      conn->send(encode_publish_ack(accepted));
      return;
    }
    case MsgType::kDecide: {
      if (st != DaemonState::kServing) {
        conn->send(encode_error("not serving (state " +
                                std::string(daemon_state_name(st)) + ")"));
        return;
      }
      if (msg.events.size() != 1 ||
          msg.events.front().kind != stream::EventKind::kTripEnd) {
        conn->send(encode_error("decide requires exactly one trip-end event"));
        return;
      }
      handle_decide(conn, msg.events.front());
      return;
    }
    case MsgType::kScrapeMetrics:
      conn->send(encode_metrics_json(
          obs::to_json(obs::Registry::global().snapshot())));
      return;
    case MsgType::kStatus:
      conn->send(encode_status_reply(status()));
      return;
    case MsgType::kReloadTunables: {
      try {
        msg.tunables.validate();
      } catch (const std::exception& ex) {
        conn->send(encode_error(std::string("tunables rejected: ") +
                                ex.what()));
        return;
      }
      {
        const es::LockGuard lock(tunables_mu_);
        tunables_ = msg.tunables;
      }
      reloads_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) metrics().config_reloads.add(1);
      conn->send(encode_ok());
      return;
    }
    case MsgType::kCheckpointNow: {
      if (config_.checkpoint_path.empty()) {
        conn->send(encode_error("no checkpoint_path configured"));
        return;
      }
      if (st != DaemonState::kServing) {
        conn->send(encode_error("not serving (state " +
                                std::string(daemon_state_name(st)) + ")"));
        return;
      }
      std::uint64_t before_ok = 0;
      std::uint64_t before_fail = 0;
      {
        const es::LockGuard lock(ckpt_mu_);
        before_ok = checkpoints_done_;
        before_fail = checkpoint_failures_;
      }
      checkpoint_requested_.store(true, std::memory_order_release);
      bool ok = false;
      {
        es::UniqueLock lock(ckpt_mu_);
        while (checkpoints_done_ == before_ok &&
               checkpoint_failures_ == before_fail &&
               state() != DaemonState::kStopped) {
          ckpt_cv_.wait(lock);
        }
        ok = checkpoints_done_ > before_ok;
      }
      conn->send(ok ? encode_ok() : encode_error("checkpoint failed"));
      return;
    }
    case MsgType::kShutdown:
      conn->send(encode_ok());
      request_stop();
      return;
    default:
      conn->send(encode_error(std::string("unexpected message type: ") +
                              msg_type_name(msg.type)));
      return;
  }
}

void ServeDaemon::handle_decide(const std::shared_ptr<Connection>& conn,
                                stream::Event event) {
  const std::int64_t token =
      next_token_.fetch_add(1, std::memory_order_relaxed);
  {
    const es::LockGuard lock(pending_mu_);
    pending_.emplace(token, PendingDecide{conn, event.ref,
                                          std::chrono::steady_clock::now()});
  }
  event.ref = token;
  event.seq = 0;
  publish_gate_enter();
  const bool accepted = pipeline_.publish(event);
  publish_gate_exit();
  if (!accepted) {
    {
      const es::LockGuard lock(pending_mu_);
      pending_.erase(token);
    }
    conn->send(encode_error("bus rejected event (overload policy)"));
  }
}

// --- pump thread -----------------------------------------------------------

void ServeDaemon::publish_gate_enter() {
  es::UniqueLock lock(gate_mu_);
  while (gate_paused_) gate_cv_.wait(lock);
  ++in_flight_publishes_;
}

void ServeDaemon::publish_gate_exit() {
  {
    const es::LockGuard lock(gate_mu_);
    --in_flight_publishes_;
  }
  gate_cv_.notify_all();
}

void ServeDaemon::on_decision(const stream::Event& e,
                              const solver::OnlineDecision& d) {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) metrics().decisions.add(1);
  if (recorder_) recorder_->record(e, d);
  if (e.ref <= 0) return;  // ingested event, nobody waiting
  PendingDecide pending;
  {
    const es::LockGuard lock(pending_mu_);
    const auto it = pending_.find(e.ref);
    if (it == pending_.end()) return;
    pending = std::move(it->second);
    pending_.erase(it);
  }
  if (obs::enabled()) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - pending.received;
    metrics().decide_latency.observe(elapsed.count());
  }
  DecisionReply reply;
  reply.ref = pending.client_ref;
  reply.opened = d.opened;
  reply.facility = static_cast<std::uint64_t>(d.facility);
  reply.connection_cost = d.connection_cost;
  pending.conn->send(encode_decision(reply));
}

bool ServeDaemon::do_checkpoint() {
  const auto cb = [this](const stream::Event& e,
                         const solver::OnlineDecision& d) {
    on_decision(e, d);
  };
  // Quiesce publishers, then pump the queues dry: save_checkpoint's
  // queues-drained contract (checkpoint.h) demands an empty bus.
  {
    es::UniqueLock lock(gate_mu_);
    gate_paused_ = true;
    while (in_flight_publishes_ > 0) gate_cv_.wait(lock);
  }
  for (;;) {
    const std::size_t n = pipeline_.pump_decisions(cb);
    if (n == 0) break;
    events_consumed_.fetch_add(n, std::memory_order_relaxed);
    consumed_since_checkpoint_.fetch_add(n, std::memory_order_relaxed);
  }
  bool ok = true;
  try {
    pipeline_.save_checkpoint_file(config_.checkpoint_path);
  } catch (const std::exception& ex) {
    ok = false;
    std::fprintf(stderr, "esharing-serve: checkpoint failed: %s\n", ex.what());
  }
  {
    const es::LockGuard lock(gate_mu_);
    gate_paused_ = false;
  }
  gate_cv_.notify_all();
  {
    const es::LockGuard lock(ckpt_mu_);
    if (ok) {
      ++checkpoints_done_;
    } else {
      ++checkpoint_failures_;
    }
  }
  ckpt_cv_.notify_all();
  if (ok) {
    consumed_since_checkpoint_.store(0, std::memory_order_relaxed);
    if (obs::enabled()) metrics().checkpoints.add(1);
  }
  return ok;
}

void ServeDaemon::pump_loop() {
  const auto cb = [this](const stream::Event& e,
                         const solver::OnlineDecision& d) {
    on_decision(e, d);
  };
  for (;;) {
    const std::size_t n = pipeline_.pump_decisions(cb);
    if (n > 0) {
      events_consumed_.fetch_add(n, std::memory_order_relaxed);
      consumed_since_checkpoint_.fetch_add(n, std::memory_order_relaxed);
    }
    const ServeTunables t = tunables();
    const bool has_path = !config_.checkpoint_path.empty();
    if (checkpoint_requested_.exchange(false, std::memory_order_acq_rel)) {
      if (has_path) do_checkpoint();
    } else if (has_path && t.checkpoint_every_events > 0 &&
               consumed_since_checkpoint_.load(std::memory_order_relaxed) >=
                   t.checkpoint_every_events) {
      do_checkpoint();
    }
    if (n > 0) continue;
    const bool drained =
        stop_requested_.load(std::memory_order_acquire) &&
        accept_done_.load(std::memory_order_acquire) &&
        active_readers_.load(std::memory_order_acquire) == 0;
    if (drained) {
      // One confirming pump: everything published before the last reader
      // exited must be consumed before the final checkpoint.
      const std::size_t tail = pipeline_.pump_decisions(cb);
      if (tail == 0) break;
      events_consumed_.fetch_add(tail, std::memory_order_relaxed);
      consumed_since_checkpoint_.fetch_add(tail, std::memory_order_relaxed);
      continue;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(t.pump_idle_micros));
  }
  // Any survivors here rode an event the bus dropped (overload policy):
  // answer them so no client hangs forever.
  std::map<std::int64_t, PendingDecide> leftovers;
  {
    const es::LockGuard lock(pending_mu_);
    leftovers.swap(pending_);
  }
  for (const auto& [token, pending] : leftovers) {
    (void)token;
    pending.conn->send(
        encode_error("daemon stopped before the decision was made"));
  }
  if (!config_.checkpoint_path.empty()) do_checkpoint();
  set_state(DaemonState::kStopped);
  ckpt_cv_.notify_all();  // release kCheckpointNow waiters observing kStopped
}

}  // namespace esharing::serve
