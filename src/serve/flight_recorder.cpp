#include "serve/flight_recorder.h"

#include <stdexcept>

#include "obs/event_sink.h"

namespace esharing::serve {

FlightRecorder::FlightRecorder(const std::string& path)
    : path_(path), out_(path, std::ios::app) {
  if (!out_) {
    throw std::runtime_error("FlightRecorder: cannot open " + path +
                             " for appending");
  }
}

void FlightRecorder::record(const stream::Event& event,
                            const solver::OnlineDecision& d) {
  std::string line;
  line.reserve(192);
  const es::LockGuard lock(mu_);
  line += "{\"idx\":";
  line += std::to_string(idx_++);
  line += ",\"event\":\"serve.decision\",\"seq\":";
  line += std::to_string(event.seq);
  line += ",\"time\":";
  line += std::to_string(event.time);
  line += ",\"dest_x\":";
  line += obs::json_number(event.where.x);
  line += ",\"dest_y\":";
  line += obs::json_number(event.where.y);
  line += ",\"weight\":";
  line += obs::json_number(event.weight);
  line += ",\"opened\":";
  line += d.opened ? '1' : '0';
  line += ",\"facility\":";
  line += std::to_string(d.facility);
  line += ",\"connection_cost\":";
  line += obs::json_number(d.connection_cost);
  line += ",\"ref\":";
  line += std::to_string(event.ref);
  line += "}\n";
  // analyze-ok: blocking-under-lock mu_ keeps decision lines whole and in seq order in the JSONL; the append IS the critical section
  out_ << line;
  // Per-line flush: the whole point of a flight recorder is surviving the
  // crash that loses everything buffered.
  // analyze-ok: blocking-under-lock per-line durability is the contract; flushing outside mu_ could reorder against a concurrent append
  out_.flush();
}

std::uint64_t FlightRecorder::recorded() const {
  const es::LockGuard lock(mu_);
  return idx_;
}

}  // namespace esharing::serve
