#include "data/trip.h"

#include <algorithm>

namespace esharing::data {

const char* weekday_name(Weekday w) {
  switch (w) {
    case Weekday::kMonday: return "Mon";
    case Weekday::kTuesday: return "Tue";
    case Weekday::kWednesday: return "Wed";
    case Weekday::kThursday: return "Thu";
    case Weekday::kFriday: return "Fri";
    case Weekday::kSaturday: return "Sat";
    case Weekday::kSunday: return "Sun";
  }
  return "???";
}

void sort_by_start_time(std::vector<TripRecord>& trips) {
  std::sort(trips.begin(), trips.end(),
            [](const TripRecord& a, const TripRecord& b) {
              if (a.start_time != b.start_time) return a.start_time < b.start_time;
              return a.order_id < b.order_id;
            });
}

}  // namespace esharing::data
