#pragma once

/// \file statistics.h
/// Dataset summary statistics — the exploratory numbers a paper's
/// "Dataset" paragraph quotes (trip counts, diurnal profile, trip-length
/// distribution, fleet utilization) and the top origin-destination flows
/// used to sanity-check a synthetic workload against the real one.

#include <array>
#include <cstddef>
#include <vector>

#include "data/trip.h"
#include "geo/grid.h"
#include "geo/latlon.h"

namespace esharing::data {

struct DatasetSummary {
  std::size_t trips{0};
  int days{0};                       ///< distinct day indices touched
  double trips_per_day{0.0};
  std::array<double, 24> hourly_share{};  ///< fraction of trips per hour
  std::array<double, 7> weekday_share{};  ///< fraction per weekday (Mon..Sun)
  double mean_trip_m{0.0};
  double median_trip_m{0.0};
  double p90_trip_m{0.0};
  std::size_t unique_bikes{0};
  std::size_t unique_users{0};
  double trips_per_bike{0.0};
};

/// Summarize a trip stream. Distances are straight-line start->end in the
/// local frame.
/// \throws std::invalid_argument on an empty stream.
[[nodiscard]] DatasetSummary summarize(const std::vector<TripRecord>& trips,
                                       const geo::LocalProjection& proj);

/// One aggregated origin-destination flow between grid cells.
struct OdFlow {
  std::size_t from_cell{0};
  std::size_t to_cell{0};
  std::size_t count{0};
};

/// The `k` heaviest OD flows on `grid`, descending by count.
[[nodiscard]] std::vector<OdFlow> top_od_flows(
    const geo::Grid& grid, const geo::LocalProjection& proj,
    const std::vector<TripRecord>& trips, std::size_t k);

}  // namespace esharing::data
