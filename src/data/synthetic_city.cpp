#include "data/synthetic_city.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/geohash.h"

namespace esharing::data {

using geo::Point;

const char* poi_category_name(PoiCategory c) {
  switch (c) {
    case PoiCategory::kSubway: return "subway";
    case PoiCategory::kOffice: return "office";
    case PoiCategory::kResidential: return "residential";
    case PoiCategory::kRecreation: return "recreation";
    case PoiCategory::kUniversity: return "university";
  }
  return "???";
}

const std::array<double, 24>& weekday_profile() {
  // Double-peaked commuting day: 7-9 am and 5-7 pm rush hours.
  static const std::array<double, 24> p = {
      0.3, 0.2, 0.15, 0.1, 0.15, 0.5, 1.5, 3.5, 4.0, 2.5, 1.5, 1.8,
      2.2, 1.8, 1.5, 1.6, 2.0, 3.8, 4.2, 3.0, 2.0, 1.5, 1.0, 0.5};
  return p;
}

const std::array<double, 24>& weekend_profile() {
  // Late start, broad midday/afternoon hump, livelier evening.
  static const std::array<double, 24> p = {
      0.5, 0.3, 0.2, 0.15, 0.15, 0.25, 0.5, 0.9, 1.5, 2.2, 2.8, 3.2,
      3.3, 3.2, 3.0, 2.9, 2.8, 2.6, 2.4, 2.2, 2.0, 1.6, 1.2, 0.8};
  return p;
}

double category_weight(PoiCategory c, bool weekend, int hour) {
  if (hour < 0 || hour >= 24) {
    throw std::invalid_argument("category_weight: hour outside [0, 24)");
  }
  const bool morning_rush = hour >= 7 && hour <= 9;
  const bool evening_rush = hour >= 17 && hour <= 19;
  const bool daytime = hour >= 9 && hour <= 17;
  const bool evening = hour >= 18 && hour <= 23;
  switch (c) {
    case PoiCategory::kSubway:
      if (weekend) return 1.0;
      return (morning_rush || evening_rush) ? 4.0 : 1.2;
    case PoiCategory::kOffice:
      if (weekend) return 0.3;
      if (morning_rush) return 5.0;
      return daytime ? 1.5 : 0.4;
    case PoiCategory::kResidential:
      if (weekend) return evening ? 2.5 : 1.2;
      if (evening_rush || evening) return 4.0;
      return 0.8;
    case PoiCategory::kRecreation:
      if (weekend) return daytime || evening ? 4.5 : 1.5;
      return evening ? 1.5 : 0.5;
    case PoiCategory::kUniversity:
      return weekend ? 0.8 : 1.5;
  }
  return 1.0;
}

SyntheticCity::SyntheticCity(CityConfig config, std::uint64_t seed)
    : config_(config), rng_(seed), proj_(config.sw_corner) {
  if (!(config_.field_size_m > 0.0)) {
    throw std::invalid_argument("SyntheticCity: field_size_m must be positive");
  }
  if (config_.num_bikes == 0) {
    throw std::invalid_argument("SyntheticCity: need at least one bike");
  }
  // Lay out POIs: uniformly scattered, with per-category spread/popularity.
  const double margin = config_.field_size_m * 0.1;
  for (int ci = 0; ci < kNumPoiCategories; ++ci) {
    const auto cat = static_cast<PoiCategory>(ci);
    for (std::size_t k = 0; k < config_.pois_per_category; ++k) {
      Poi poi;
      poi.category = cat;
      poi.location = {rng_.uniform(margin, config_.field_size_m - margin),
                      rng_.uniform(margin, config_.field_size_m - margin)};
      poi.sigma = rng_.uniform(80.0, 180.0);
      poi.popularity = rng_.uniform(0.6, 1.4);
      pois_.push_back(poi);
    }
  }
  // Bikes start scattered around POIs, as a rebalanced fleet would be.
  bike_pos_.reserve(config_.num_bikes);
  for (std::size_t b = 0; b < config_.num_bikes; ++b) {
    const Poi& poi = pois_[rng_.index(pois_.size())];
    bike_pos_.push_back(clamp_to_field({rng_.normal(poi.location.x, poi.sigma),
                                        rng_.normal(poi.location.y, poi.sigma)}));
  }
}

Point SyntheticCity::clamp_to_field(Point p) const {
  return {std::clamp(p.x, 0.0, config_.field_size_m - 1.0),
          std::clamp(p.y, 0.0, config_.field_size_m - 1.0)};
}

std::string SyntheticCity::hash_of(Point p) const {
  return geo::geohash_encode(proj_.to_geo(p), config_.geohash_precision);
}

Point SyntheticCity::sample_destination(bool weekend, int hour) {
  std::vector<double> weights;
  weights.reserve(pois_.size());
  for (const Poi& poi : pois_) {
    weights.push_back(poi.popularity * category_weight(poi.category, weekend, hour));
  }
  const Poi& poi = pois_[rng_.weighted_index(weights)];
  return clamp_to_field({rng_.normal(poi.location.x, poi.sigma),
                         rng_.normal(poi.location.y, poi.sigma)});
}

TripRecord SyntheticCity::make_trip(Seconds when, Point dest_hint) {
  // Pick the nearest of a few random bikes to an origin sampled from the
  // same demand model — users walk to a nearby available bike.
  const bool weekend = is_weekend(when);
  const int hour = hour_of_day(when);
  const Point origin_hint = sample_destination(weekend, hour);
  std::size_t bike = rng_.index(bike_pos_.size());
  for (int k = 0; k < 4; ++k) {
    const std::size_t cand = rng_.index(bike_pos_.size());
    if (geo::distance2(bike_pos_[cand], origin_hint) <
        geo::distance2(bike_pos_[bike], origin_hint)) {
      bike = cand;
    }
  }
  const Point start = bike_pos_[bike];

  // Keep rides within the paper's ~3 mile envelope by resampling a few
  // times, then accepting whatever remains (long tails exist in reality).
  Point dest = dest_hint;
  for (int attempt = 0; attempt < 8 && geo::distance(start, dest) > config_.max_trip_m;
       ++attempt) {
    dest = sample_destination(weekend, hour);
  }

  TripRecord trip;
  trip.order_id = next_order_id_++;
  trip.user_id = static_cast<std::int64_t>(rng_.index(std::max<std::size_t>(config_.num_users, 1))) + 1;
  trip.bike_id = static_cast<std::int64_t>(bike) + 1;
  trip.bike_type = rng_.bernoulli(0.15) ? 2 : 1;
  trip.start_time = when;
  trip.start_geohash = hash_of(start);
  trip.end_geohash = hash_of(dest);
  bike_pos_[bike] = dest;
  return trip;
}

std::vector<TripRecord> SyntheticCity::generate_trips() {
  // Draw all start times first, then replay chronologically so that bike
  // positions evolve consistently.
  std::vector<Seconds> times;
  for (std::int64_t day = next_day_; day < next_day_ + config_.num_days; ++day) {
    const Seconds day_start = day * kSecondsPerDay;
    const bool weekend = is_weekend(day_start);
    const auto& profile = weekend ? weekend_profile() : weekday_profile();
    const std::size_t n = weekend ? config_.trips_per_weekend_day
                                  : config_.trips_per_weekday;
    std::vector<double> hour_weights(profile.begin(), profile.end());
    for (std::size_t i = 0; i < n; ++i) {
      const auto hour = static_cast<Seconds>(rng_.weighted_index(hour_weights));
      const auto offset = static_cast<Seconds>(rng_.uniform_int(0, kSecondsPerHour - 1));
      times.push_back(day_start + hour * kSecondsPerHour + offset);
    }
  }
  next_day_ += config_.num_days;
  std::sort(times.begin(), times.end());

  std::vector<TripRecord> trips;
  trips.reserve(times.size());
  for (Seconds when : times) {
    trips.push_back(make_trip(when, sample_destination(is_weekend(when),
                                                       hour_of_day(when))));
  }
  return trips;
}

std::vector<TripRecord> SyntheticCity::generate_event_burst(
    Seconds start, Seconds duration, Point center, double sigma,
    std::size_t n_trips) {
  if (duration <= 0) {
    throw std::invalid_argument("generate_event_burst: duration must be positive");
  }
  std::vector<Seconds> times;
  times.reserve(n_trips);
  for (std::size_t i = 0; i < n_trips; ++i) {
    times.push_back(start + static_cast<Seconds>(rng_.uniform_int(0, duration - 1)));
  }
  std::sort(times.begin(), times.end());
  std::vector<TripRecord> trips;
  trips.reserve(n_trips);
  for (Seconds when : times) {
    const Point dest = clamp_to_field(
        {rng_.normal(center.x, sigma), rng_.normal(center.y, sigma)});
    trips.push_back(make_trip(when, dest));
  }
  return trips;
}

Point SyntheticCity::start_point(const TripRecord& trip) const {
  return proj_.to_local(geo::geohash_decode(trip.start_geohash).center);
}

Point SyntheticCity::end_point(const TripRecord& trip) const {
  return proj_.to_local(geo::geohash_decode(trip.end_geohash).center);
}

}  // namespace esharing::data
